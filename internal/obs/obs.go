// Package obs is the flight recorder: a metrics registry whose
// instruments — counters, gauges, polled gauges, and quantile
// histograms, grouped into labeled families — are periodically sampled
// into bounded time series on the *backend clock*, then exported as
// Prometheus text, JSONL/CSV time-series dumps, or served live over
// HTTP (see export.go and http.go).
//
// Where internal/metrics holds the figures themselves and
// internal/trace records every event, obs sits in between: cheap
// always-on counters plus a clock-driven sampler that turns them into
// "occupancy vs time" series at a chosen resolution. On the simulator
// the clock is virtual, so a dump is a pure function of the seed
// (byte-identical across runs and across -parallel settings, via
// Merge); on the live backend it is compressed wall time.
//
// Like the tracer, the whole API is nil-safe: a nil *Registry yields
// nil scopes and nil instruments, and every hot-path method (Inc, Add,
// Set, Observe) on a nil instrument is a single pointer check with
// zero allocations — asserted by this package's benchmarks and the
// `make obs-smoke` CI gate. Instrumentation is therefore wired
// unconditionally and costs nothing until a registry is armed.
//
// Concurrency: instrument writes are atomic (histograms take a small
// private mutex), and the registry's structure plus every sampled
// series is guarded by the registry mutex, so live-backend cells can
// share one registry while an HTTP exporter reads it mid-run. On the
// simulator everything additionally runs under the engine token, as
// usual.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Kind classifies an instrument family for exposition.
type Kind uint8

// Family kinds, matching the Prometheus exposition types.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram // exposed as a Prometheus summary (quantiles)
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	}
	return "untyped"
}

// DefaultSeriesCap bounds every sampled series (see metrics.Series
// SetCap): at most this many retained points per series, with
// count-driven downsampling past it, so even a million-client run's
// flight record stays small.
const DefaultSeriesCap = 4096

// Registry is an ordered collection of instrument families. Create one
// with New, carve per-cell Scopes with NewScope, and export with
// WriteProm / WriteJSONL / WriteCSV. The zero registry is not valid;
// a nil *Registry is, and disables everything downstream.
type Registry struct {
	mu        sync.Mutex
	fams      []*Family
	byName    map[string]*Family
	seriesCap int
}

// New returns an empty registry with the default series cap.
func New() *Registry {
	return &Registry{byName: make(map[string]*Family), seriesCap: DefaultSeriesCap}
}

// SetSeriesCap bounds every series created from now on to at most n
// retained points (n <= 0 means unbounded). Call before instrumenting.
func (r *Registry) SetSeriesCap(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seriesCap = n
	r.mu.Unlock()
}

// Family is one named group of instruments sharing label keys.
type Family struct {
	name, help string
	kind       Kind
	keys       []string
	children   []instrument
	byKey      map[string]instrument
}

// instrument is the family-internal contract every concrete instrument
// satisfies.
type instrument interface {
	labelVals() []string
	// sample appends the instrument's current value(s) to its series
	// at clock offset t. Registry lock held.
	sample(t time.Duration)
	// current is the instantaneous scalar used by CurrentTotal and the
	// sweep progress reporter (for histograms, the observation count).
	current() float64
	// allSeries lists the instrument's sampled series for export.
	allSeries() []*metrics.Series
	// mergeFrom folds another cell's instrument of the same identity
	// into this one (same concrete type by construction).
	mergeFrom(o instrument)
}

// family finds or creates a family under the registry lock.
func (r *Registry) family(name, help string, kind Kind, keys []string) *Family {
	f, ok := r.byName[name]
	if !ok {
		f = &Family{name: name, help: help, kind: kind, keys: keys, byKey: make(map[string]instrument)}
		r.fams = append(r.fams, f)
		r.byName[name] = f
	}
	return f
}

// labelKey joins label values into the family's child-lookup key.
func labelKey(vals []string) string { return strings.Join(vals, "\xff") }

// seriesName renders the instrument's fully-qualified series name:
// family name plus {k=v,...} when labeled.
func seriesName(name string, keys, vals []string) string {
	if len(keys) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(vals[i])
	}
	b.WriteByte('}')
	return b.String()
}

// newSeries mints a bounded series for one instrument. Registry lock
// held.
func (r *Registry) newSeries(name string, keys, vals []string, suffix string) *metrics.Series {
	s := metrics.NewSeries(seriesName(name+suffix, keys, vals))
	s.SetCap(r.seriesCap)
	return s
}

// meta is the label identity and sampled series shared by the scalar
// instruments.
type meta struct {
	vals   []string
	series *metrics.Series
}

func (m *meta) labelVals() []string               { return m.vals }
func (m *meta) allSeries() []*metrics.Series      { return []*metrics.Series{m.series} }
func (m *meta) record(t time.Duration, v float64) { m.series.Add(t, v) }

// Counter is a monotonically increasing count. All methods are nil-safe
// and allocation-free.
type Counter struct {
	n atomic.Int64
	meta
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds n (negative deltas are a caller bug; they are not checked
// on the hot path).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.n.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

func (c *Counter) sample(t time.Duration) { c.record(t, float64(c.n.Load())) }
func (c *Counter) current() float64       { return float64(c.n.Load()) }
func (c *Counter) mergeFrom(o instrument) {
	oc := o.(*Counter)
	c.n.Add(oc.n.Load())
	appendPoints(c.series, oc.series)
}

// Gauge is an instantaneous value. All methods are nil-safe and
// allocation-free.
type Gauge struct {
	bits atomic.Uint64
	meta
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) sample(t time.Duration) { g.record(t, g.Value()) }
func (g *Gauge) current() float64       { return g.Value() }
func (g *Gauge) mergeFrom(o instrument) {
	og := o.(*Gauge)
	g.bits.Store(og.bits.Load())
	appendPoints(g.series, og.series)
}

// FuncGauge polls a callback at sample time. The callback runs under
// whatever lock protects the sampled state (on a backend, the engine
// token — Scope.Sample is driven by backend timers); exposition never
// calls it, reading the cached last sample instead, so an HTTP
// exporter cannot race the engine.
type FuncGauge struct {
	fn   func() float64
	last atomic.Uint64
	meta
}

// Value returns the last sampled value (0 on nil or before the first
// sample).
func (g *FuncGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.last.Load())
}

func (g *FuncGauge) sample(t time.Duration) {
	v := g.fn()
	g.last.Store(math.Float64bits(v))
	g.record(t, v)
}
func (g *FuncGauge) current() float64 { return g.Value() }
func (g *FuncGauge) mergeFrom(o instrument) {
	og := o.(*FuncGauge)
	g.last.Store(og.last.Load())
	appendPoints(g.series, og.series)
}

// Histogram accumulates observations into summary statistics plus a
// deterministic fixed-size reservoir (metrics.Histogram); sampling
// records its P50/P95/P99 and count as four series. Observe is
// nil-safe; when enabled it takes a private mutex, so it is safe from
// concurrent live-backend processes.
type Histogram struct {
	mu   sync.Mutex
	h    *metrics.Histogram
	vals []string
	q    [4]*metrics.Series // p50, p95, p99, count
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Count
}

// Quantile returns the q-th quantile of the observations (0 on nil).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Quantile(q)
}

func (h *Histogram) labelVals() []string { return h.vals }
func (h *Histogram) sample(t time.Duration) {
	h.mu.Lock()
	p50, p95, p99, n := h.h.P50(), h.h.P95(), h.h.P99(), h.h.Count
	h.mu.Unlock()
	h.q[0].Add(t, p50)
	h.q[1].Add(t, p95)
	h.q[2].Add(t, p99)
	h.q[3].Add(t, float64(n))
}
func (h *Histogram) current() float64 { return float64(h.Count()) }
func (h *Histogram) allSeries() []*metrics.Series {
	return []*metrics.Series{h.q[0], h.q[1], h.q[2], h.q[3]}
}
func (h *Histogram) mergeFrom(o instrument) {
	oh := o.(*Histogram)
	oh.mu.Lock()
	// Fold the summary moments; the reservoir keeps this cell's samples.
	h.h.Count += oh.h.Count
	h.h.Sum += oh.h.Sum
	h.h.SumSquares += oh.h.SumSquares
	if oh.h.MinV < h.h.MinV {
		h.h.MinV = oh.h.MinV
	}
	if oh.h.MaxV > h.h.MaxV {
		h.h.MaxV = oh.h.MaxV
	}
	oh.mu.Unlock()
	for i := range h.q {
		appendPoints(h.q[i], oh.q[i])
	}
}

// appendPoints appends o's retained points to s (merge path only; the
// per-series cap applies to future Adds, not to an explicit merge).
func appendPoints(s, o *metrics.Series) {
	s.Points = append(s.Points, o.Points...)
}

// Scope is the per-cell instrumentation handle: a clock (the cell
// backend's Elapsed), a base label set stamped onto every instrument
// (the cell identity), and the list of instruments Sample walks. A nil
// Scope — from a nil Registry — returns nil instruments and samples
// nothing.
type Scope struct {
	r     *Registry
	clock func() time.Duration
	base  []string // alternating key, value
	items []instrument
}

// NewScope returns an instrumentation scope whose samples are stamped
// with the clock's offsets and whose instruments all carry the base
// labels (alternating key, value — L is a readable way to build them).
func (r *Registry) NewScope(clock func() time.Duration, base ...string) *Scope {
	if r == nil {
		return nil
	}
	if len(base)%2 != 0 {
		panic("obs: odd base label list")
	}
	return &Scope{r: r, clock: clock, base: base}
}

// L builds an alternating key-value label list; it exists purely to
// make call sites read as L("disc", "Ethernet", "n", "400").
func L(kv ...string) []string { return kv }

// labels merges the scope's base labels with kv into parallel key and
// value slices.
func (s *Scope) labels(kv []string) (keys, vals []string) {
	if len(kv)%2 != 0 {
		panic("obs: odd label list")
	}
	n := (len(s.base) + len(kv)) / 2
	keys = make([]string, 0, n)
	vals = make([]string, 0, n)
	for i := 0; i < len(s.base); i += 2 {
		keys = append(keys, s.base[i])
		vals = append(vals, s.base[i+1])
	}
	for i := 0; i < len(kv); i += 2 {
		keys = append(keys, kv[i])
		vals = append(vals, kv[i+1])
	}
	return keys, vals
}

// child finds or creates the instrument for (name, labels), returning
// (existing, true) when it was already registered. Registry lock held.
func (f *Family) child(vals []string) (instrument, bool) {
	c, ok := f.byKey[labelKey(vals)]
	return c, ok
}

func (f *Family) addChild(vals []string, c instrument) {
	f.children = append(f.children, c)
	f.byKey[labelKey(vals)] = c
}

// Counter registers (or finds) a counter in the named family, with the
// scope's base labels plus kv.
func (s *Scope) Counter(name, help string, kv ...string) *Counter {
	if s == nil {
		return nil
	}
	keys, vals := s.labels(kv)
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	f := s.r.family(name, help, KindCounter, keys)
	if c, ok := f.child(vals); ok {
		return s.track(c).(*Counter)
	}
	c := &Counter{meta: meta{vals: vals, series: s.r.newSeries(name, keys, vals, "")}}
	f.addChild(vals, c)
	return s.track(c).(*Counter)
}

// Gauge registers (or finds) a gauge in the named family.
func (s *Scope) Gauge(name, help string, kv ...string) *Gauge {
	if s == nil {
		return nil
	}
	keys, vals := s.labels(kv)
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	f := s.r.family(name, help, KindGauge, keys)
	if c, ok := f.child(vals); ok {
		return s.track(c).(*Gauge)
	}
	g := &Gauge{meta: meta{vals: vals, series: s.r.newSeries(name, keys, vals, "")}}
	f.addChild(vals, g)
	return s.track(g).(*Gauge)
}

// GaugeFunc registers a polled gauge: fn is called at each Sample (and
// only then — see FuncGauge).
func (s *Scope) GaugeFunc(name, help string, fn func() float64, kv ...string) *FuncGauge {
	if s == nil {
		return nil
	}
	keys, vals := s.labels(kv)
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	f := s.r.family(name, help, KindGauge, keys)
	if c, ok := f.child(vals); ok {
		return s.track(c).(*FuncGauge)
	}
	g := &FuncGauge{fn: fn, meta: meta{vals: vals, series: s.r.newSeries(name, keys, vals, "")}}
	f.addChild(vals, g)
	return s.track(g).(*FuncGauge)
}

// Histogram registers (or finds) a quantile histogram in the named
// family.
func (s *Scope) Histogram(name, help string, kv ...string) *Histogram {
	if s == nil {
		return nil
	}
	keys, vals := s.labels(kv)
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	f := s.r.family(name, help, KindHistogram, keys)
	if c, ok := f.child(vals); ok {
		return s.track(c).(*Histogram)
	}
	h := &Histogram{h: metrics.NewHistogram(name), vals: vals}
	h.q[0] = s.r.newSeries(name, keys, vals, "_p50")
	h.q[1] = s.r.newSeries(name, keys, vals, "_p95")
	h.q[2] = s.r.newSeries(name, keys, vals, "_p99")
	h.q[3] = s.r.newSeries(name, keys, vals, "_count")
	f.addChild(vals, h)
	return s.track(h).(*Histogram)
}

// track adds the instrument to the scope's sample list.
func (s *Scope) track(c instrument) instrument {
	s.items = append(s.items, c)
	return c
}

// Sample appends every scoped instrument's current value to its series
// at the scope clock's current offset. Call it from a backend timer so
// polled gauges read engine state under the engine token.
func (s *Scope) Sample() {
	if s == nil {
		return
	}
	t := s.clock()
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	for _, it := range s.items {
		it.sample(t)
	}
}

// Merge folds another registry's families into r in o's registration
// order: a sweep's per-cell registries merged in cell order yield the
// same bytes as one registry written to serially, which is how the
// parallel runner keeps -metrics dumps byte-identical at any worker
// count. o must be quiescent (its cell finished).
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, of := range o.fams {
		f := r.family(of.name, of.help, of.kind, of.keys)
		for _, oc := range of.children {
			if c, ok := f.child(oc.labelVals()); ok {
				c.mergeFrom(oc)
				continue
			}
			f.addChild(oc.labelVals(), oc)
		}
	}
}

// CurrentTotal sums the instantaneous values of every instrument in
// the named family (0 when absent): the sweep progress reporter reads
// engine event totals through it.
func (r *Registry) CurrentTotal(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		return 0
	}
	var sum float64
	for _, c := range f.children {
		sum += c.current()
	}
	return sum
}

// SeriesCount reports the total number of sampled series (for /healthz).
func (r *Registry) SeriesCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, f := range r.fams {
		for _, c := range f.children {
			n += len(c.allSeries())
		}
	}
	return n
}

// sortedFams returns the families sorted by name (the Prometheus
// exposition convention). Registry lock held.
func (r *Registry) sortedFams() []*Family {
	fams := make([]*Family, len(r.fams))
	copy(fams, r.fams)
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
