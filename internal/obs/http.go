package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Server is the live observability endpoint: /metrics (Prometheus
// text), /healthz (JSON), and the net/http/pprof handlers under
// /debug/pprof/. It is only meaningful on the live backend — the
// simulator has no wall-clock concurrency to observe — and is the
// embryo of the ROADMAP's gridd daemon.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Serve binds addr (":0" picks a free port; read it back with Addr)
// and serves the registry in the background. health, if non-nil, is
// polled on each /healthz request and its pairs are folded into the
// response JSON; it must be safe to call from the HTTP goroutine.
func Serve(addr string, reg *Registry, health func() map[string]string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var b strings.Builder
		b.WriteString(`{"status":"ok","uptime_seconds":`)
		b.WriteString(fmtFloat(time.Since(s.start).Seconds()))
		b.WriteString(`,"series":`)
		b.WriteString(strconv.Itoa(reg.SeriesCount()))
		if health != nil {
			m := health()
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				b.WriteByte(',')
				b.WriteString(strconv.Quote(k))
				b.WriteByte(':')
				b.WriteString(strconv.Quote(m[k]))
			}
		}
		b.WriteString("}\n")
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down and stops serving.
func (s *Server) Close() error { return s.srv.Close() }
