package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// fakeClock is a hand-cranked scope clock.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration { return c.t }

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	s := r.NewScope(func() time.Duration { return 0 }, "cell", "x")
	if s != nil {
		t.Fatalf("nil registry produced non-nil scope")
	}
	c := s.Counter("c_total", "help")
	g := s.Gauge("g", "help")
	fg := s.GaugeFunc("fg", "help", func() float64 { t.Fatal("fn called on nil scope"); return 0 })
	h := s.Histogram("h", "help")
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	g.Inc()
	g.Dec()
	h.Observe(1.5)
	s.Sample()
	if c.Value() != 0 || g.Value() != 0 || fg.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil instruments reported values")
	}
	if err := r.WriteProm(io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(io.Discard); err != nil {
		t.Fatal(err)
	}
	if got := r.CurrentTotal("c_total"); got != 0 {
		t.Fatalf("CurrentTotal on nil = %v", got)
	}
	r.Merge(New()) // must not panic
}

func TestScopeSampleAndSeries(t *testing.T) {
	r := New()
	clk := &fakeClock{}
	s := r.NewScope(clk.now, "disc", "Ethernet")
	c := s.Counter("grid_attempts_total", "attempts")
	g := s.Gauge("grid_busy", "busy units")
	depth := 0.0
	fg := s.GaugeFunc("grid_depth", "queue depth", func() float64 { return depth })
	h := s.Histogram("grid_wait_seconds", "wait time")

	c.Inc()
	c.Add(2)
	g.Set(4)
	g.Dec()
	depth = 7
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	clk.t = 10 * time.Millisecond
	s.Sample()

	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if g.Value() != 3 {
		t.Fatalf("gauge = %v, want 3", g.Value())
	}
	if fg.Value() != 7 {
		t.Fatalf("func gauge cached = %v, want 7", fg.Value())
	}
	if got := h.Quantile(0.5); got < 49 || got > 52 {
		t.Fatalf("histogram p50 = %v, want ~50", got)
	}
	names := r.SeriesNames()
	want := []string{
		`grid_attempts_total{disc=Ethernet}`,
		`grid_busy{disc=Ethernet}`,
		`grid_depth{disc=Ethernet}`,
		`grid_wait_seconds_p50{disc=Ethernet}`,
		`grid_wait_seconds_p95{disc=Ethernet}`,
		`grid_wait_seconds_p99{disc=Ethernet}`,
		`grid_wait_seconds_count{disc=Ethernet}`,
	}
	if len(names) != len(want) {
		t.Fatalf("series = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("series[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if got := r.CurrentTotal("grid_attempts_total"); got != 3 {
		t.Fatalf("CurrentTotal = %v, want 3", got)
	}
	// A second registration with the same labels returns the same child.
	if c2 := s.Counter("grid_attempts_total", "attempts"); c2 != c {
		t.Fatalf("re-registration minted a new counter")
	}
}

func TestMergeEqualsSerial(t *testing.T) {
	// Simulate one registry written by two "cells" serially versus two
	// per-cell registries merged in cell order: byte-identical JSONL.
	build := func(regs []*Registry) string {
		for cell, r := range regs {
			clk := &fakeClock{}
			s := r.NewScope(clk.now, "cell", fmt.Sprint(cell))
			c := s.Counter("events_total", "events")
			h := s.Histogram("wait", "wait")
			for i := 0; i < 50; i++ {
				c.Inc()
				h.Observe(float64(cell*100 + i))
				clk.t += time.Millisecond
				s.Sample()
			}
		}
		parent := regs[0]
		for _, r := range regs[1:] {
			if r != parent {
				parent.Merge(r)
			}
		}
		var b strings.Builder
		if err := parent.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := New()
	got1 := build([]*Registry{serial, serial}) // same registry twice = serial order
	got2 := build([]*Registry{New(), New()})   // per-cell, then merged
	if got1 != got2 {
		t.Fatalf("merged dump differs from serial dump:\nserial:\n%s\nmerged:\n%s", got1, got2)
	}
}

func TestMergeSameIdentityFoldsValues(t *testing.T) {
	a, b := New(), New()
	clk := &fakeClock{}
	sa := a.NewScope(clk.now, "disc", "Aloha")
	sb := b.NewScope(clk.now, "disc", "Aloha")
	sa.Counter("n_total", "n").Add(3)
	sb.Counter("n_total", "n").Add(4)
	a.Merge(b)
	if got := a.CurrentTotal("n_total"); got != 7 {
		t.Fatalf("merged counter total = %v, want 7", got)
	}
}

func TestWriteProm(t *testing.T) {
	r := New()
	clk := &fakeClock{}
	s := r.NewScope(clk.now, "disc", "Ethernet")
	s.Counter("grid_attempts_total", "Total attempts.").Add(5)
	h := s.Histogram("grid_wait", "Wait time.")
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP grid_attempts_total Total attempts.",
		"# TYPE grid_attempts_total counter",
		`grid_attempts_total{disc="Ethernet"} 5`,
		"# TYPE grid_wait summary",
		`grid_wait{disc="Ethernet",quantile="0.5"}`,
		`grid_wait_sum{disc="Ethernet"} 55`,
		`grid_wait_count{disc="Ethernet"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONLAndCSV(t *testing.T) {
	r := New()
	clk := &fakeClock{}
	s := r.NewScope(clk.now, "fig", "2")
	g := s.Gauge("occupancy", "carrier occupancy")
	g.Set(0.5)
	clk.t = time.Second
	s.Sample()
	g.Set(0.75)
	clk.t = 2 * time.Second
	s.Sample()

	var jb strings.Builder
	if err := r.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{"name":"occupancy{fig=2}","family":"occupancy","kind":"gauge","labels":{"fig":"2"},"points":[[1000000000,0.5],[2000000000,0.75]]}` + "\n"
	if jb.String() != wantJSON {
		t.Fatalf("jsonl:\n got %q\nwant %q", jb.String(), wantJSON)
	}

	var cb strings.Builder
	if err := r.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	wantCSV := "series,t_ns,value\n" +
		"occupancy{fig=2},1000000000,0.5\n" +
		"occupancy{fig=2},2000000000,0.75\n"
	if cb.String() != wantCSV {
		t.Fatalf("csv:\n got %q\nwant %q", cb.String(), wantCSV)
	}
}

func TestSeriesCapAppliesToSampledSeries(t *testing.T) {
	r := New()
	r.SetSeriesCap(64)
	clk := &fakeClock{}
	s := r.NewScope(clk.now)
	g := s.Gauge("g", "g")
	for i := 0; i < 100000; i++ {
		g.Set(float64(i))
		clk.t += time.Millisecond
		s.Sample()
	}
	r.mu.Lock()
	n := len(r.fams[0].children[0].allSeries()[0].Points)
	r.mu.Unlock()
	if n > 64 {
		t.Fatalf("sampled series grew to %d points, cap 64", n)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := New()
	clk := &fakeClock{}
	s := r.NewScope(clk.now, "disc", "Ethernet")
	s.Counter("grid_attempts_total", "attempts").Add(9)
	srv, err := Serve("127.0.0.1:0", r, func() map[string]string {
		return map[string]string{"backend": "live", "fig": "1"}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, `grid_attempts_total{disc="Ethernet"} 9`) {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	hz := get("/healthz")
	for _, want := range []string{`"status":"ok"`, `"backend":"live"`, `"fig":"1"`, `"series":1`} {
		if !strings.Contains(hz, want) {
			t.Fatalf("/healthz missing %q: %s", want, hz)
		}
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestConcurrentWritesWithExposition(t *testing.T) {
	// Live-backend shape: several goroutines hammer shared instruments
	// while another samples and a third exports. Run under -race in CI.
	r := New()
	clk := &fakeClock{}
	s := r.NewScope(clk.now, "cell", "0")
	c := s.Counter("c_total", "c")
	g := s.Gauge("g", "g")
	h := s.Histogram("h", "h")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func(i int) {
			for j := 0; j < 5000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i * j % 97))
			}
			done <- struct{}{}
		}(i)
	}
	go func() {
		for j := 0; j < 200; j++ {
			s.Sample()
			_ = r.WriteProm(io.Discard)
			_ = r.CurrentTotal("c_total")
		}
		done <- struct{}{}
	}()
	for i := 0; i < 5; i++ {
		<-done
	}
	if c.Value() != 20000 {
		t.Fatalf("counter = %d, want 20000", c.Value())
	}
}
