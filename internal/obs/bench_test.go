package obs

import (
	"io"
	"testing"
	"time"
)

// The nil-instrument path is the always-on cost paid by every
// instrumented hot loop when observability is off. The obs-smoke CI
// gate asserts it stays at 0 allocs/op (and TestNilHotPathZeroAlloc
// enforces it as a plain test, so plain `go test` catches regressions
// too).

func TestNilHotPathZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Fatalf("nil Counter: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1); g.Add(2); g.Inc(); g.Dec() }); n != 0 {
		t.Fatalf("nil Gauge: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(1.5) }); n != 0 {
		t.Fatalf("nil Histogram: %v allocs/op, want 0", n)
	}
	var s *Scope
	if n := testing.AllocsPerRun(1000, func() { s.Sample() }); n != 0 {
		t.Fatalf("nil Scope.Sample: %v allocs/op, want 0", n)
	}
}

func TestEnabledHotPathZeroAlloc(t *testing.T) {
	r := New()
	clk := &fakeClock{}
	sc := r.NewScope(clk.now)
	c := sc.Counter("c_total", "c")
	g := sc.Gauge("g", "g")
	h := sc.Histogram("h", "h")
	// Warm the reservoir past its growth phase.
	for i := 0; i < 2048; i++ {
		h.Observe(float64(i))
	}
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("enabled Counter.Inc: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(2) }); n != 0 {
		t.Fatalf("enabled Gauge.Set: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3) }); n != 0 {
		t.Fatalf("enabled Histogram.Observe: %v allocs/op, want 0", n)
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilGaugeSet(b *testing.B) {
	var g *Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.NewScope(func() time.Duration { return 0 }).Counter("c_total", "c")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	r := New()
	g := r.NewScope(func() time.Duration { return 0 }).Gauge("g", "g")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.NewScope(func() time.Duration { return 0 }).Histogram("h", "h")
	for i := 0; i < 2048; i++ {
		h.Observe(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkScopeSample(b *testing.B) {
	r := New()
	clk := &fakeClock{}
	sc := r.NewScope(clk.now, "disc", "Ethernet")
	sc.Counter("c_total", "c").Inc()
	sc.Gauge("g", "g").Set(1)
	sc.GaugeFunc("fg", "fg", func() float64 { return 2 })
	h := sc.Histogram("h", "h")
	for i := 0; i < 1024; i++ {
		h.Observe(float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.t += time.Millisecond
		sc.Sample()
	}
}

func BenchmarkWriteProm(b *testing.B) {
	r := New()
	clk := &fakeClock{}
	for i := 0; i < 8; i++ {
		sc := r.NewScope(clk.now, "cell", string(rune('a'+i)))
		sc.Counter("c_total", "c").Add(int64(i))
		sc.Gauge("g", "g").Set(float64(i))
		h := sc.Histogram("h", "h")
		for j := 0; j < 256; j++ {
			h.Observe(float64(j))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.WriteProm(io.Discard)
	}
}
