package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// fmtFloat renders a float the same way everywhere (shortest
// round-trippable form), so dumps are byte-stable.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promLabels renders {k="v",...} (empty string when unlabeled).
func promLabels(keys, vals []string, extra ...string) string {
	if len(keys) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	for i, k := range keys {
		emit(k, vals[i])
	}
	for i := 0; i < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm writes the registry's current state in the Prometheus text
// exposition format, families sorted by name. Counters and gauges
// expose their instantaneous value; histograms are exposed as a
// summary (quantile-labeled samples plus _sum and _count). Polled
// gauges expose their cached last sample and never call their
// callback here, so exposition cannot race the engine.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.sortedFams() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, c := range f.children {
			if err := writePromChild(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromChild(w io.Writer, f *Family, c instrument) error {
	switch h := c.(type) {
	case *Histogram:
		h.mu.Lock()
		qs := [3]float64{h.h.P50(), h.h.P95(), h.h.P99()}
		sum, n := h.h.Sum, h.h.Count
		h.mu.Unlock()
		for i, q := range []string{"0.5", "0.95", "0.99"} {
			v := qs[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(f.keys, h.vals, "quantile", q), fmtFloat(v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, promLabels(f.keys, h.vals), fmtFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(f.keys, h.vals), n)
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(f.keys, c.labelVals()), fmtFloat(c.current()))
		return err
	}
}

// WriteJSONL dumps every sampled series, one JSON object per line, in
// registration order. The JSON is built by hand with a fixed key
// order and fixed float formatting, so same-seed sim runs produce
// byte-identical files at any -parallel value. Points are
// [t_nanoseconds, value] pairs; non-finite values become null.
func (r *Registry) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.fams {
		for _, c := range f.children {
			for _, s := range c.allSeries() {
				b.Reset()
				writeSeriesJSON(&b, f, c, s)
				if _, err := io.WriteString(w, b.String()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeSeriesJSON(b *strings.Builder, f *Family, c instrument, s *metrics.Series) {
	b.WriteString(`{"name":`)
	b.WriteString(strconv.Quote(s.Name))
	b.WriteString(`,"family":`)
	b.WriteString(strconv.Quote(f.name))
	b.WriteString(`,"kind":"`)
	b.WriteString(f.kind.String())
	b.WriteString(`","labels":{`)
	vals := c.labelVals()
	for i, k := range f.keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(k))
		b.WriteByte(':')
		b.WriteString(strconv.Quote(vals[i]))
	}
	b.WriteString(`},"points":[`)
	for i, p := range s.Points {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('[')
		b.WriteString(strconv.FormatInt(int64(p.T), 10))
		b.WriteByte(',')
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			b.WriteString("null")
		} else {
			b.WriteString(fmtFloat(p.V))
		}
		b.WriteByte(']')
	}
	b.WriteString("]}\n")
}

// WriteCSV dumps every sampled point as series,t_ns,value rows (header
// first), series in registration order, points in time order within a
// series. Same determinism contract as WriteJSONL.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := io.WriteString(w, "series,t_ns,value\n"); err != nil {
		return err
	}
	var b strings.Builder
	for _, f := range r.fams {
		for _, c := range f.children {
			for _, s := range c.allSeries() {
				b.Reset()
				name := s.Name
				if strings.ContainsAny(name, ",\"\n") {
					name = `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
				}
				for _, p := range s.Points {
					b.WriteString(name)
					b.WriteByte(',')
					b.WriteString(strconv.FormatInt(int64(p.T), 10))
					b.WriteByte(',')
					if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
						b.WriteString("NaN")
					} else {
						b.WriteString(fmtFloat(p.V))
					}
					b.WriteByte('\n')
				}
				if _, err := io.WriteString(w, b.String()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// SeriesNames returns every sampled series name in registration order
// (test helper).
func (r *Registry) SeriesNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for _, f := range r.fams {
		for _, c := range f.children {
			for _, s := range c.allSeries() {
				names = append(names, s.Name)
			}
		}
	}
	return names
}

// FamilyNames returns the registered family names, sorted (test
// helper).
func (r *Registry) FamilyNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
