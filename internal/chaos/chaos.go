// Package chaos is a deterministic fault-injection subsystem for the
// simulated grid. The paper's argument is that the Ethernet discipline
// survives failure regimes nobody anticipated; the substrates, left
// alone, only fail in the three ways we baked in (FD exhaustion,
// ENOSPC, black holes). This package lets an experiment *program*
// adverse conditions — transient error bursts, latency spikes,
// capacity squeezes, server flapping, schedd crashes — as a composable
// Plan, and replays them bit-for-bit: every decision is driven by the
// sim engine's virtual clock and a seeded RNG, never the wall clock.
//
// A Plan is pure data. Arming it against a concrete universe (Targets)
// schedules its actions on the engine and yields an Armed injector that
// the substrates consult at their failure sites (core.Injector). The
// companion Invariants type (invariants.go) runs alongside any
// experiment and mechanically asserts the paper's safety and liveness
// properties under the injected faults.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/channel"
	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/fsbuffer"
	"repro/internal/replica"
	"repro/internal/trace"
)

// Plan is a named, seeded composition of fault specs. It is inert data
// until armed; the same plan can be armed against many universes and
// always produces the same schedule for the same seed.
type Plan struct {
	// Name labels the plan in reports and CLI output.
	Name string
	// Seed drives every random choice the plan makes (window jitter,
	// per-operation error draws). Zero selects 1.
	Seed int64
	// Specs are the composed faults, armed in order.
	Specs []Spec
}

// Spec is one composable fault. Implementations schedule themselves on
// the engine and/or register fault windows on the Armed injector.
type Spec interface {
	arm(a *Armed, t Targets)
}

// Targets names the substrate objects a plan may act on. Nil fields are
// simply skipped, so one plan can be armed against any scenario: specs
// aimed at absent substrates do nothing.
type Targets struct {
	// Window is the experiment horizon; fractional window fields
	// resolve against it.
	Window time.Duration
	// Cluster is the job-submission substrate (FD squeezes, schedd
	// crashes, condor/* sites).
	Cluster *condor.Cluster
	// Buffer is the shared-filesystem substrate (capacity squeezes,
	// fsbuffer/* sites).
	Buffer *fsbuffer.Buffer
	// Allocator is the space-reservation service in front of Buffer
	// (stuck-holder hangs at fsbuffer/hold).
	Allocator *fsbuffer.Allocator
	// Servers are the replica servers (flap toggling, replica/* sites).
	Servers []*replica.Server
	// Channel is the broadcast medium (channel/* sites).
	Channel *channel.Channel
	// Trace, when non-nil, records the plan's scheduled interventions
	// (squeezes, flaps, kills) on a dedicated "chaos" process whose
	// thread name carries the plan name and seed.
	Trace *trace.Tracer
}

// Window locates a fault in virtual time. Absolute fields (Start,
// Duration) are used as-is; when FracDuration > 0 the window is instead
// resolved as fractions of the experiment horizon, which lets presets
// bite at any scale. StartJitter (or FracStartJitter) shifts the start
// by a uniform random amount drawn from the plan's seeded RNG at arm
// time, so different plan seeds exercise different schedules.
type Window struct {
	Start, Duration time.Duration
	StartJitter     time.Duration

	FracStart, FracDuration float64
	FracStartJitter         float64
}

// resolve materializes the window against the horizon using the armed
// plan's RNG. It always draws exactly one random value, so a plan's
// arm-time random consumption is independent of which fields are set.
func (w Window) resolve(a *Armed, horizon time.Duration) (from, to time.Duration) {
	u := a.rng.Float64()
	if w.FracDuration > 0 {
		from = time.Duration(float64(horizon) * (w.FracStart + w.FracStartJitter*u))
		return from, from + time.Duration(float64(horizon)*w.FracDuration)
	}
	from = w.Start + time.Duration(u*float64(w.StartJitter))
	return from, from + w.Duration
}

// ---------------------------------------------------------------------
// Site-fault specs (consulted via the Injector at failure sites)
// ---------------------------------------------------------------------

// ErrorBurst fails operations at Site with probability Prob while the
// window is open — a transient fault storm: refused connections, I/O
// errors, dropped transfers, noise on the wire.
type ErrorBurst struct {
	Window
	// Site is the substrate failure site (condor.InjectConnect, ...).
	Site string
	// Prob is the per-operation failure probability; values >= 1 fail
	// every operation in the window.
	Prob float64
	// Err overrides the injected error (default core.ErrInjected).
	Err error
}

func (s ErrorBurst) arm(a *Armed, t Targets) {
	from, to := s.resolve(a, t.Window)
	err := s.Err
	if err == nil {
		err = core.ErrInjected
	}
	a.addWindow(s.Site, &siteWindow{from: from, to: to, prob: s.Prob, err: err})
}

// LatencySpike adds Extra (plus up to Jitter of seeded random) latency
// to operations at Site while the window is open — a congested link, a
// paging server, a saturated accept queue.
type LatencySpike struct {
	Window
	Site string
	// Extra is the added latency per operation.
	Extra time.Duration
	// Jitter adds a uniform random extra in [0, Jitter) per operation.
	Jitter time.Duration
}

func (s LatencySpike) arm(a *Armed, t Targets) {
	from, to := s.resolve(a, t.Window)
	a.addWindow(s.Site, &siteWindow{from: from, to: to, delay: s.Extra, jitter: s.Jitter})
}

// StuckHolder wedges clients at a hold site with probability Prob while
// the window is open: the victim freezes while owning a contended
// resource — FDs, reserved buffer space, a replica's service lane — and
// never voluntarily lets go. This is the failure mode limited
// allocation exists for: without a lease watchdog the resource is
// pinned until the victim's own outer timeout fires (if it ever does);
// with one, the tenure is revoked and the units reclaimed.
type StuckHolder struct {
	Window
	// Site is a hold site (condor.InjectHold, fsbuffer.InjectHold,
	// replica.InjectHold).
	Site string
	// Prob is the per-operation hang probability; values >= 1 wedge
	// every holder in the window.
	Prob float64
}

func (s StuckHolder) arm(a *Armed, t Targets) {
	from, to := s.resolve(a, t.Window)
	a.addWindow(s.Site, &siteWindow{from: from, to: to, prob: s.Prob, hang: true})
}

// ---------------------------------------------------------------------
// Channel-fault specs (the client<->resource boundary)
// ---------------------------------------------------------------------

// MsgDrop swallows messages at a channel Site with probability Prob
// while the window is open: requests that never arrive, replies and
// release notices that never make it back. The sender observes only
// that the operation did not complete (core.ErrLost at operation
// sites; a silent leak at lease wires, healed by the watchdog).
type MsgDrop struct {
	Window
	// Site is a channel site (condor.InjectNet, fsbuffer.InjectNet,
	// replica.InjectNet, or a substrate's reply site).
	Site string
	// Prob is the per-message drop probability; >= 1 drops every one.
	Prob float64
}

func (s MsgDrop) arm(a *Armed, t Targets) {
	from, to := s.resolve(a, t.Window)
	a.addWindow(s.Site, &siteWindow{from: from, to: to, prob: s.Prob, drop: true})
}

// MsgDup delivers messages at a channel Site twice with probability
// Prob while the window is open: a retransmission whose original was
// not lost after all. Receivers without idempotency keys or fencing
// apply the effect twice — the at-most-once violation this subsystem
// exists to defend against.
type MsgDup struct {
	Window
	Site string
	// Prob is the per-message duplication probability.
	Prob float64
}

func (s MsgDup) arm(a *Armed, t Targets) {
	from, to := s.resolve(a, t.Window)
	a.addWindow(s.Site, &siteWindow{from: from, to: to, prob: s.Prob, dup: true})
}

// MsgDelay holds messages at a channel Site in flight for Extra (plus
// up to Jitter of seeded random) while the window is open. Because
// each message draws its own jitter, adjacent messages can overtake
// one another — delay with jitter is also the reordering fault, and a
// delivery can arrive after the receiver has moved on (where fencing
// decides its fate).
type MsgDelay struct {
	Window
	Site string
	// Extra is the added in-flight time per message.
	Extra time.Duration
	// Jitter adds a uniform random extra in [0, Jitter) per message.
	Jitter time.Duration
}

func (s MsgDelay) arm(a *Armed, t Targets) {
	from, to := s.resolve(a, t.Window)
	a.addWindow(s.Site, &siteWindow{from: from, to: to, delay: s.Extra, jitter: s.Jitter})
}

// Partition severs the named channel sites outright: every message is
// dropped while a severed phase is open, and the window's close is the
// heal. Flaps > 1 splits the window into that many alternating
// sever/heal phases — a flapping link rather than one clean cut. Sites
// lists only the directions cut: naming a substrate's request site but
// not its reply site (or vice versa) models an asymmetric link.
type Partition struct {
	Window
	// Sites are the channel sites the partition severs.
	Sites []string
	// Flaps is the number of severed phases inside the window
	// (alternating with healed phases); <= 1 means one clean cut for
	// the whole window.
	Flaps int
}

func (s Partition) arm(a *Armed, t Targets) {
	from, to := s.resolve(a, t.Window)
	flaps := s.Flaps
	if flaps <= 1 {
		for _, site := range s.Sites {
			a.addWindow(site, &siteWindow{from: from, to: to, prob: 1, drop: true})
		}
		return
	}
	// 2*flaps-1 equal phases: severed, healed, severed, ... severed.
	phase := (to - from) / time.Duration(2*flaps-1)
	for i := 0; i < flaps; i++ {
		start := from + time.Duration(2*i)*phase
		for _, site := range s.Sites {
			a.addWindow(site, &siteWindow{from: start, to: start + phase, prob: 1, drop: true})
		}
	}
}

// ---------------------------------------------------------------------
// Scheduled-action specs (act on substrate state via engine timers)
// ---------------------------------------------------------------------

// FDSqueeze shrinks the kernel FD table to Factor of its capacity for
// the window, then restores it — an administrator lowering fs.file-max,
// or another daemon leaking descriptors.
type FDSqueeze struct {
	Window
	// Factor is the squeezed capacity as a fraction of the original.
	Factor float64
}

func (s FDSqueeze) arm(a *Armed, t Targets) {
	if t.Cluster == nil {
		a.rng.Float64() // keep arm-time random consumption uniform
		return
	}
	from, to := s.resolve(a, t.Window)
	fds := t.Cluster.FDs
	orig := -1
	a.eng.Schedule(from, func() {
		orig = fds.Capacity()
		fds.SetCapacity(int(float64(orig) * s.Factor))
		a.action("chaos/fd-squeeze")
	})
	a.eng.Schedule(to, func() {
		if orig >= 0 {
			fds.SetCapacity(orig)
		}
	})
}

// BufferSqueeze shrinks the shared filesystem buffer to Factor of its
// capacity for the window, then restores it — another tenant filling
// the disk.
type BufferSqueeze struct {
	Window
	Factor float64
}

func (s BufferSqueeze) arm(a *Armed, t Targets) {
	if t.Buffer == nil {
		a.rng.Float64()
		return
	}
	from, to := s.resolve(a, t.Window)
	b := t.Buffer
	orig := int64(-1)
	a.eng.Schedule(from, func() {
		orig = b.Config().Capacity
		b.SetCapacity(int64(float64(orig) * s.Factor))
		a.action("chaos/buffer-squeeze")
	})
	a.eng.Schedule(to, func() {
		if orig >= 0 {
			b.SetCapacity(orig)
		}
	})
}

// ServerFlap toggles a replica server's black-hole state while the
// window is open: the server wedges for one Period, recovers for the
// next, and so on — a service bouncing in and out of health. The
// original health is restored when the window closes.
type ServerFlap struct {
	Window
	// Server indexes Targets.Servers; out-of-range flaps are skipped.
	Server int
	// Period is one sick (or healthy) phase. When FracPeriod > 0 the
	// period is that fraction of the horizon instead.
	Period     time.Duration
	FracPeriod float64
}

func (s ServerFlap) arm(a *Armed, t Targets) {
	if s.Server < 0 || s.Server >= len(t.Servers) {
		a.rng.Float64()
		return
	}
	from, to := s.resolve(a, t.Window)
	period := s.Period
	if s.FracPeriod > 0 {
		period = time.Duration(float64(t.Window) * s.FracPeriod)
	}
	if period <= 0 {
		return
	}
	srv := t.Servers[s.Server]
	orig := srv.BlackHole
	sick := false
	var flip func()
	flip = func() {
		if a.eng.Elapsed() >= to {
			srv.SetBlackHole(orig)
			return
		}
		sick = !sick
		srv.SetBlackHole(sick)
		a.action("chaos/server-flap")
		a.eng.Schedule(period, flip)
	}
	a.eng.Schedule(from, flip)
	a.eng.Schedule(to, func() { srv.SetBlackHole(orig) })
}

// ScheddCrash kills the schedd at a point in time (and optionally again
// on a cadence): the broadcast jam on demand, without waiting for FD
// starvation to produce it.
type ScheddCrash struct {
	// At is the first kill. When FracAt > 0 it is that fraction of the
	// horizon instead.
	At     time.Duration
	FracAt float64
	// Every repeats the kill (FracEvery as a fraction of the horizon);
	// zero means no repeat.
	Every     time.Duration
	FracEvery float64
	// Count bounds the kills; zero means 1.
	Count int
}

func (s ScheddCrash) arm(a *Armed, t Targets) {
	if t.Cluster == nil {
		return
	}
	at := s.At
	if s.FracAt > 0 {
		at = time.Duration(float64(t.Window) * s.FracAt)
	}
	every := s.Every
	if s.FracEvery > 0 {
		every = time.Duration(float64(t.Window) * s.FracEvery)
	}
	count := s.Count
	if count <= 0 {
		count = 1
	}
	schedd := t.Cluster.Schedd
	for i := 0; i < count; i++ {
		when := at + time.Duration(i)*every
		a.eng.Schedule(when, func() {
			schedd.Kill()
			a.action("chaos/schedd-crash")
		})
		if every <= 0 {
			break
		}
	}
}

// ---------------------------------------------------------------------
// Armed plan
// ---------------------------------------------------------------------

// siteWindow is one materialized fault window at one site.
type siteWindow struct {
	from, to time.Duration
	prob     float64 // error/hang/drop/dup probability (>= 1 always fires)
	err      error   // nil for latency-only windows
	delay    time.Duration
	jitter   time.Duration
	hang     bool // wedge the holder instead of erroring
	drop     bool // swallow the message at a channel site
	dup      bool // deliver the message twice at a channel site
}

// Armed is a plan bound to an engine and a universe. It implements
// core.Injector; Arm installs it on every target substrate, so the
// substrates' failure sites consult it for the rest of the run.
type Armed struct {
	plan    *Plan
	eng     core.Backend
	rng     *rand.Rand
	windows map[string][]*siteWindow
	tr      *trace.Client

	// Injected tallies, for reports: errors, delays, and hangs handed
	// out at sites, message drops/duplications at channel sites, and
	// scheduled actions (squeezes, flaps, kills) performed.
	Errors  int64
	Delays  int64
	Hangs   int64
	Drops   int64
	Dups    int64
	Actions int64
	perSite map[string]int64
}

// Arm schedules the plan's actions on engine e, installs the resulting
// injector on every non-nil target substrate, and returns it. Arm must
// be called before e.Run (or under the engine token). Identical plans,
// seeds, and targets always produce identical schedules.
func (p *Plan) Arm(e core.Backend, t Targets) *Armed {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	a := &Armed{
		plan:    p,
		eng:     e,
		rng:     rand.New(rand.NewSource(seed)),
		windows: make(map[string][]*siteWindow),
		perSite: make(map[string]int64),
	}
	if t.Trace != nil {
		a.tr = t.Trace.NewClient("chaos", fmt.Sprintf("%s seed=%d", p.Name, seed), e.Elapsed)
	}
	for _, s := range p.Specs {
		s.arm(a, t)
	}
	if t.Cluster != nil {
		t.Cluster.SetInjector(a)
	}
	if t.Buffer != nil {
		t.Buffer.SetInjector(a)
	}
	if t.Allocator != nil {
		t.Allocator.SetInjector(a)
	}
	for _, srv := range t.Servers {
		srv.SetInjector(a)
	}
	if t.Channel != nil {
		t.Channel.SetInjector(a)
	}
	return a
}

// action records one scheduled intervention against the site label,
// tracing it when the plan was armed with a tracer.
func (a *Armed) action(site string) {
	a.Actions++
	a.tr.FaultInjected(site)
}

// addWindow registers a fault window for a site.
func (a *Armed) addWindow(site string, w *siteWindow) {
	a.windows[site] = append(a.windows[site], w)
}

// Inject implements core.Injector: it folds every open window at the
// site into one Fault. Probabilistic draws come from the plan's own
// seeded RNG, so fault schedules never perturb the clients' randomness.
func (a *Armed) Inject(site string) core.Fault {
	var f core.Fault
	now := a.eng.Elapsed()
	for _, w := range a.windows[site] {
		if now < w.from || now >= w.to {
			continue
		}
		if w.delay > 0 || w.jitter > 0 {
			d := w.delay
			if w.jitter > 0 {
				d += time.Duration(a.rng.Float64() * float64(w.jitter))
			}
			f.Delay += d
			a.Delays++
			a.perSite[site]++
		}
		if w.err != nil && (w.prob >= 1 || a.rng.Float64() < w.prob) {
			f.Err = w.err
			a.Errors++
			a.perSite[site]++
		}
		if w.hang && (w.prob >= 1 || a.rng.Float64() < w.prob) {
			f.Hang = true
			a.Hangs++
			a.perSite[site]++
		}
		if w.drop && (w.prob >= 1 || a.rng.Float64() < w.prob) {
			f.Drop = true
			a.Drops++
			a.perSite[site]++
		}
		if w.dup && (w.prob >= 1 || a.rng.Float64() < w.prob) {
			f.Dup = true
			a.Dups++
			a.perSite[site]++
		}
	}
	return f
}

// Summary renders a one-line deterministic report of what the armed
// plan actually did, site tallies in sorted order.
func (a *Armed) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos[%s seed=%d]: %d errors, %d delays, %d actions",
		a.plan.Name, a.plan.Seed, a.Errors, a.Delays, a.Actions)
	if a.Hangs > 0 {
		fmt.Fprintf(&b, ", %d hangs", a.Hangs)
	}
	if a.Drops > 0 {
		fmt.Fprintf(&b, ", %d drops", a.Drops)
	}
	if a.Dups > 0 {
		fmt.Fprintf(&b, ", %d dups", a.Dups)
	}
	if len(a.perSite) > 0 {
		sites := make([]string, 0, len(a.perSite))
		for s := range a.perSite {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		for _, s := range sites {
			fmt.Fprintf(&b, " %s=%d", s, a.perSite[s])
		}
	}
	return b.String()
}
