package chaos

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/condor"
	"repro/internal/fsbuffer"
	"repro/internal/replica"
	"repro/internal/sim"
)

// compose merges two presets into one plan, the way a scenario that
// wants both regimes at once would.
func compose(a, b string, seed int64) *Plan {
	pa, err := Preset(a, seed)
	if err != nil {
		panic(err)
	}
	pb, err := Preset(b, seed)
	if err != nil {
		panic(err)
	}
	specs := make([]Spec, 0, len(pa.Specs)+len(pb.Specs))
	specs = append(specs, pa.Specs...)
	specs = append(specs, pb.Specs...)
	return &Plan{Name: a + "+" + b, Seed: seed, Specs: specs}
}

// windowFingerprint renders every materialized site window of an armed
// plan in deterministic order, for schedule comparison.
func windowFingerprint(a *Armed) string {
	sites := make([]string, 0, len(a.windows))
	for s := range a.windows {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	out := ""
	for _, s := range sites {
		for _, w := range a.windows[s] {
			out += fmt.Sprintf("%s %v-%v p=%v d=%v j=%v h=%v dr=%v du=%v\n",
				s, w.from, w.to, w.prob, w.delay, w.jitter, w.hang, w.drop, w.dup)
		}
	}
	return out
}

// TestPresetPairsCompose: every pair of presets must merge into one
// armable plan whose materialized fault windows are all well-formed —
// open before they close, inside the experiment horizon, with sane
// probabilities — against a fully populated universe as well as an
// empty one. Overlap between the two plans' windows at a site is legal
// (Inject folds them); a window that inverts or escapes the horizon is
// a scheduling collision and would fire faults outside the run (or
// never).
func TestPresetPairsCompose(t *testing.T) {
	const horizon = 10 * time.Minute
	names := Names()
	for i, an := range names {
		for _, bn := range names[i+1:] {
			t.Run(an+"+"+bn, func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					e := sim.New(seed)
					cl := condor.NewCluster(e.RT(), condor.Config{})
					buf := fsbuffer.New(e.RT(), fsbuffer.Config{})
					alloc := fsbuffer.NewAllocator(e.RT(), buf, 0)
					servers := []*replica.Server{
						replica.NewServer(e.RT(), "yyy", false, replica.Config{}),
						replica.NewServer(e.RT(), "zzz", false, replica.Config{}),
					}
					ch := channel.New(e)
					a := compose(an, bn, seed).Arm(e.RT(), Targets{
						Window:    horizon,
						Cluster:   cl,
						Buffer:    buf,
						Allocator: alloc,
						Servers:   servers,
						Channel:   ch,
					})
					for site, ws := range a.windows {
						for _, w := range ws {
							if w.from < 0 || w.from >= w.to {
								t.Errorf("seed %d: inverted window at %s: %v-%v", seed, site, w.from, w.to)
							}
							if w.to > horizon {
								t.Errorf("seed %d: window at %s escapes the horizon: %v-%v > %v",
									seed, site, w.from, w.to, horizon)
							}
							if w.prob < 0 || w.prob > 1 {
								t.Errorf("seed %d: window at %s has probability %v", seed, site, w.prob)
							}
						}
					}
					// Run out the scheduled actions (squeezes, crashes,
					// flips): each must restore cleanly with no processes
					// to act on.
					if err := e.Run(); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
			})
		}
	}
}

// TestComposedSummaryDeterministic: arming the same composed pair with
// the same seed twice must reproduce the identical window schedule and,
// after identical probing, the identical Summary line — across seeds
// 1-3. The probe visits every site with materialized windows on a
// fixed, distinct-timestamp grid so injection order (and hence RNG
// consumption) is fully determined.
func TestComposedSummaryDeterministic(t *testing.T) {
	const horizon = 10 * time.Minute
	run := func(an, bn string, seed int64) (string, string) {
		e := sim.New(seed)
		a := compose(an, bn, seed).Arm(e.RT(), Targets{Window: horizon})
		sites := make([]string, 0, len(a.windows))
		for s := range a.windows {
			sites = append(sites, s)
		}
		sort.Strings(sites)
		for si, site := range sites {
			site := site
			for k := 0; k < 8; k++ {
				at := time.Duration(k+1)*horizon/9 + time.Duration(si)*time.Millisecond
				e.Schedule(at, func() { a.Inject(site) })
			}
		}
		if err := e.Run(); err != nil {
			panic(err)
		}
		return windowFingerprint(a), a.Summary()
	}
	names := Names()
	for i, an := range names {
		for _, bn := range names[i+1:] {
			for seed := int64(1); seed <= 3; seed++ {
				fp1, sum1 := run(an, bn, seed)
				fp2, sum2 := run(an, bn, seed)
				if fp1 != fp2 {
					t.Fatalf("%s+%s seed %d: window schedule diverged:\n%s\nvs:\n%s", an, bn, seed, fp1, fp2)
				}
				if sum1 != sum2 {
					t.Fatalf("%s+%s seed %d: summary diverged:\n%s\n%s", an, bn, seed, sum1, sum2)
				}
			}
		}
	}
}
