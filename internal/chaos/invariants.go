package chaos

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// This file is the invariant-checker layer: mechanical assertions of
// the paper's safety and liveness properties, run alongside any
// experiment — with or without a fault plan armed. The checks are:
//
//   - carrier floor: Ethernet clients never drive the sensed resource
//     below its carrier threshold for longer than one backoff epoch
//     (dips happen — in-flight work completes after sensing — but the
//     discipline must pull free capacity back above the floor);
//   - progress: virtual time always advances — the run reaches its
//     horizon instead of deadlocking early, and no client population
//     burns unbounded events at a standing clock (livelock);
//   - monotonicity: cumulative observables (jobs, transfers, files
//     consumed) never decrease;
//   - determinism: identical seeds yield identical series — asserted
//     by tests via metrics.Series.Equal on double runs.

// Violation is one observed breach of an invariant.
type Violation struct {
	// Check names the violated invariant ("carrier-floor", ...).
	Check string
	// At is the virtual time of detection.
	At time.Duration
	// Detail explains the breach.
	Detail string
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("%s at %v: %s", v.Check, v.At, v.Detail)
}

// Recorder accumulates violations across one or more experiment cells,
// so a figure-level sweep can collect everything before failing.
type Recorder struct {
	Violations []Violation
}

// Add appends a violation.
func (r *Recorder) Add(v Violation) { r.Violations = append(r.Violations, v) }

// Ok reports whether no invariant was violated.
func (r *Recorder) Ok() bool { return len(r.Violations) == 0 }

// Err returns nil when no invariant was violated, or an error naming up
// to five of them.
func (r *Recorder) Err() error {
	if r.Ok() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s):", len(r.Violations))
	for i, v := range r.Violations {
		if i == 5 {
			fmt.Fprintf(&b, " ... and %d more", len(r.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return fmt.Errorf("%s", b.String())
}

// Invariants runs a set of checks against one engine, sampling on a
// virtual-time tick. Construct with NewInvariants, register checks,
// call Start before the run and Finish after Run returns.
type Invariants struct {
	eng   core.Backend
	rec   *Recorder
	every time.Duration

	ticks  []func(now time.Duration)
	finals []func(now time.Duration)
}

// DefaultSampleEvery is the default invariant sampling cadence.
const DefaultSampleEvery = time.Second

// NewInvariants returns a checker sampling every sampleEvery of virtual
// time ( <= 0 selects DefaultSampleEvery), recording violations into
// rec (nil allocates a private recorder, readable via Recorder()).
func NewInvariants(e core.Backend, rec *Recorder, sampleEvery time.Duration) *Invariants {
	if rec == nil {
		rec = &Recorder{}
	}
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	return &Invariants{eng: e, rec: rec, every: sampleEvery}
}

// Recorder returns the recorder violations are written to.
func (inv *Invariants) Recorder() *Recorder { return inv.rec }

// Err is shorthand for Recorder().Err().
func (inv *Invariants) Err() error { return inv.rec.Err() }

func (inv *Invariants) violate(check string, now time.Duration, format string, args ...any) {
	inv.rec.Add(Violation{Check: check, At: now, Detail: fmt.Sprintf(format, args...)})
}

// CarrierFloor asserts the Ethernet safety property: the sensed free
// capacity must not stay below the carrier floor for longer than
// maxBelow (one backoff epoch). floor is a func so squeezed capacities
// can lower the effective floor mid-run. One violation is recorded per
// continuous below-floor excursion that exceeds the budget.
func (inv *Invariants) CarrierFloor(name string, free func() int, floor func() int, maxBelow time.Duration) {
	var below time.Duration // continuous time spent below the floor
	reported := false
	inv.ticks = append(inv.ticks, func(now time.Duration) {
		if free() >= floor() {
			below = 0
			reported = false
			return
		}
		below += inv.every
		if below > maxBelow && !reported {
			reported = true
			inv.violate("carrier-floor", now, "%s: free=%d below floor %d for %v (budget %v)",
				name, free(), floor(), below, maxBelow)
		}
	})
}

// NoStarvation asserts the limited-allocation liveness property: no
// live client waits longer than budget for the named resource while
// its capacity is reclaimable. wait samples the longest want-interval
// currently in progress (lease.Manager.LongestWait). One violation is
// recorded per continuous starving excursion, mirroring CarrierFloor.
func (inv *Invariants) NoStarvation(name string, wait func() time.Duration, budget time.Duration) {
	reported := false
	inv.ticks = append(inv.ticks, func(now time.Duration) {
		w := wait()
		if w <= budget {
			reported = false
			return
		}
		if !reported {
			reported = true
			inv.violate("no-starvation", now, "%s: a client has wanted the resource for %v (budget %v)",
				name, w, budget)
		}
	})
}

// Monotone asserts that a cumulative observable never decreases.
func (inv *Invariants) Monotone(name string, value func() float64) {
	last := value()
	inv.ticks = append(inv.ticks, func(now time.Duration) {
		v := value()
		if v < last {
			inv.violate("monotone", now, "%s decreased: %v -> %v", name, last, v)
		}
		last = v
	})
}

// NoDoubleAlloc asserts the fencing safety property: a lease manager's
// ground-truth outstanding units (granted and not yet ended by their
// holders — lease.Manager.Outstanding) never exceed its capacity. An
// unfenced manager under duplicated or delayed release messages
// double-frees, inflating its apparent free capacity until grants
// overshoot what physically exists; a fenced manager rejects the stale
// copy and this invariant holds under any channel behaviour.
func (inv *Invariants) NoDoubleAlloc(name string, outstanding func() int64, capacity func() int64) {
	reported := false
	inv.ticks = append(inv.ticks, func(now time.Duration) {
		out, cap := outstanding(), capacity()
		if out <= cap {
			reported = false
			return
		}
		if !reported {
			reported = true
			inv.violate("double-alloc", now, "%s: %d units outstanding exceed capacity %d",
				name, out, cap)
		}
	})
}

// Conservation asserts the at-most-once property: every applied effect
// corresponds to exactly one distinct work unit (applied counts effects
// booked by the server, distinct counts idempotency keys completed).
// With keys armed the two track exactly; a duplicated request or a
// retried reply-drop on a keyless server books phantom effects and the
// counts diverge. Checked at every tick — both counters are cumulative,
// so one violation latches until Finish.
func (inv *Invariants) Conservation(name string, applied func() int64, distinct func() int64) {
	reported := false
	inv.ticks = append(inv.ticks, func(now time.Duration) {
		a, d := applied(), distinct()
		if a == d {
			reported = false
			return
		}
		if !reported {
			reported = true
			inv.violate("conservation", now, "%s: %d effects applied for %d distinct work units",
				name, a, d)
		}
	})
}

// HealLiveness asserts recovery after a partition: the cumulative
// observable must strictly increase between healAt (when the last
// severed phase closes) and healAt+bound. A population wedged on lost
// leases or drained retry budgets that never resumes fails here; one
// whose watchdogs reclaimed the lost tenures makes progress again.
func (inv *Invariants) HealLiveness(name string, value func() float64, healAt, bound time.Duration) {
	var base float64
	baselined := false
	checked := false
	inv.ticks = append(inv.ticks, func(now time.Duration) {
		if now < healAt || checked {
			return
		}
		if !baselined {
			baselined = true
			base = value()
			return
		}
		if now < healAt+bound {
			return
		}
		checked = true
		if v := value(); v <= base {
			inv.violate("heal-liveness", now, "%s: no progress since the %v heal (%v then, %v now, bound %v)",
				name, healAt, base, v, bound)
		}
	})
}

// Horizon asserts liveness at Finish time: the run must have advanced
// virtual time to at least window. A simulation that quiesces early has
// deadlocked — every client parked forever with no timer left to free
// it — which no retry discipline is ever allowed to do.
func (inv *Invariants) Horizon(window time.Duration) {
	inv.finals = append(inv.finals, func(now time.Duration) {
		if now < window {
			inv.violate("liveness", now, "run quiesced at %v, before the %v horizon: deadlock", now, window)
		}
	})
}

// EventBudget asserts that no sampling interval burns more than
// maxPerTick scheduling events: a bound on livelock, where virtual time
// technically advances but the population spins pathologically. Budgets
// should be generous — Fixed clients legitimately hammer.
func (inv *Invariants) EventBudget(maxPerTick int64) {
	last := inv.eng.Events()
	inv.ticks = append(inv.ticks, func(now time.Duration) {
		n := inv.eng.Events()
		if n-last > maxPerTick {
			inv.violate("event-budget", now, "%d events in one %v tick (budget %d): livelock",
				n-last, inv.every, maxPerTick)
		}
		last = n
	})
}

// SeriesMonotone is a post-run convenience: it records a violation if a
// cumulative series ever decreases.
func (inv *Invariants) SeriesMonotone(s *metrics.Series) {
	inv.finals = append(inv.finals, func(now time.Duration) {
		if !s.Monotone() {
			inv.violate("monotone", now, "series %s is not monotone", s.Name)
		}
	})
}

// Start schedules the sampling loop. It must be called before the
// engine runs (or under the engine token); sampling stops when ctx is
// canceled, letting the engine quiesce at the end of the window.
func (inv *Invariants) Start(ctx context.Context) {
	var tick func()
	tick = func() {
		if ctx.Err() != nil {
			return
		}
		now := inv.eng.Elapsed()
		for _, f := range inv.ticks {
			f(now)
		}
		inv.eng.Schedule(inv.every, tick)
	}
	inv.eng.Schedule(inv.every, tick)
}

// Finish runs the end-of-run checks. Call it after Engine.Run returns.
func (inv *Invariants) Finish() {
	now := inv.eng.Elapsed()
	for _, f := range inv.finals {
		f(now)
	}
}
