package chaos

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// runFor keeps the engine alive until the horizon by scheduling an
// end-of-window no-op, then runs it to quiescence.
func runFor(t *testing.T, e *sim.Engine, window time.Duration) {
	t.Helper()
	e.Schedule(window, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMonotoneDetectsDecrease(t *testing.T) {
	e := sim.New(1)
	rec := &Recorder{}
	inv := NewInvariants(e.RT(), rec, time.Second)
	v := 0.0
	inv.Monotone("jobs", func() float64 { return v })
	e.Schedule(1500*time.Millisecond, func() { v = 10 })
	e.Schedule(2500*time.Millisecond, func() { v = 3 }) // decrease!
	ctx, cancel := context.WithCancel(context.Background())
	inv.Start(ctx)
	e.Schedule(5*time.Second, cancel)
	runFor(t, e, 5*time.Second)
	inv.Finish()
	if rec.Ok() {
		t.Fatal("decreasing observable not flagged")
	}
	if got := rec.Violations[0].Check; got != "monotone" {
		t.Errorf("check = %q, want monotone", got)
	}
}

func TestMonotonePassesOnIncrease(t *testing.T) {
	e := sim.New(1)
	inv := NewInvariants(e.RT(), nil, time.Second)
	v := 0.0
	inv.Monotone("jobs", func() float64 { return v })
	for i := 1; i <= 4; i++ {
		i := i
		e.Schedule(time.Duration(i)*1500*time.Millisecond, func() { v = float64(i * 10) })
	}
	ctx, cancel := context.WithCancel(context.Background())
	inv.Start(ctx)
	e.Schedule(10*time.Second, cancel)
	runFor(t, e, 10*time.Second)
	inv.Finish()
	if err := inv.Err(); err != nil {
		t.Fatalf("clean monotone run flagged: %v", err)
	}
}

func TestCarrierFloorFlagsSustainedExcursion(t *testing.T) {
	e := sim.New(1)
	rec := &Recorder{}
	inv := NewInvariants(e.RT(), rec, time.Second)
	free := 100
	inv.CarrierFloor("fds", func() int { return free }, func() int { return 50 }, 5*time.Second)
	e.Schedule(10*time.Second, func() { free = 10 }) // sustained dip, never recovers
	ctx, cancel := context.WithCancel(context.Background())
	inv.Start(ctx)
	e.Schedule(30*time.Second, cancel)
	runFor(t, e, 30*time.Second)
	inv.Finish()
	if rec.Ok() {
		t.Fatal("sustained below-floor excursion not flagged")
	}
	if got := rec.Violations[0].Check; got != "carrier-floor" {
		t.Errorf("check = %q, want carrier-floor", got)
	}
	if n := len(rec.Violations); n != 1 {
		t.Errorf("%d violations for one continuous excursion, want 1", n)
	}
}

func TestCarrierFloorToleratesBriefDip(t *testing.T) {
	e := sim.New(1)
	rec := &Recorder{}
	inv := NewInvariants(e.RT(), rec, time.Second)
	free := 100
	inv.CarrierFloor("fds", func() int { return free }, func() int { return 50 }, 5*time.Second)
	e.Schedule(10*time.Second, func() { free = 10 })
	e.Schedule(13*time.Second, func() { free = 80 }) // recovers inside the budget
	ctx, cancel := context.WithCancel(context.Background())
	inv.Start(ctx)
	e.Schedule(30*time.Second, cancel)
	runFor(t, e, 30*time.Second)
	inv.Finish()
	if !rec.Ok() {
		t.Fatalf("brief dip flagged: %v", rec.Err())
	}
}

func TestHorizonFlagsEarlyQuiesce(t *testing.T) {
	e := sim.New(1)
	rec := &Recorder{}
	inv := NewInvariants(e.RT(), rec, time.Second)
	inv.Horizon(time.Minute)
	// No work scheduled beyond 10s: the "run" deadlocks early.
	runFor(t, e, 10*time.Second)
	inv.Finish()
	if rec.Ok() {
		t.Fatal("early quiesce not flagged as deadlock")
	}
	if got := rec.Violations[0].Check; got != "liveness" {
		t.Errorf("check = %q, want liveness", got)
	}
}

func TestEventBudgetFlagsLivelock(t *testing.T) {
	e := sim.New(1)
	rec := &Recorder{}
	inv := NewInvariants(e.RT(), rec, time.Second)
	inv.EventBudget(100)
	// Spin thousands of zero-advance events inside one tick.
	var spin func(n int)
	spin = func(n int) {
		if n == 0 {
			return
		}
		e.Schedule(0, func() { spin(n - 1) })
	}
	e.Schedule(1500*time.Millisecond, func() { spin(1000) })
	ctx, cancel := context.WithCancel(context.Background())
	inv.Start(ctx)
	e.Schedule(5*time.Second, cancel)
	runFor(t, e, 5*time.Second)
	inv.Finish()
	if rec.Ok() {
		t.Fatal("event spike not flagged as livelock")
	}
	if got := rec.Violations[0].Check; got != "event-budget" {
		t.Errorf("check = %q, want event-budget", got)
	}
}

func TestSeriesMonotoneFinal(t *testing.T) {
	e := sim.New(1)
	rec := &Recorder{}
	inv := NewInvariants(e.RT(), rec, time.Second)
	s := metrics.NewSeries("jobs")
	s.Add(0, 1)
	s.Add(time.Second, 5)
	s.Add(2*time.Second, 2)
	inv.SeriesMonotone(s)
	inv.Finish()
	if rec.Ok() {
		t.Fatal("non-monotone series not flagged")
	}
}

func TestRecorderErrTruncates(t *testing.T) {
	rec := &Recorder{}
	if rec.Err() != nil {
		t.Fatal("empty recorder returned an error")
	}
	for i := 0; i < 8; i++ {
		rec.Add(Violation{Check: "monotone", Detail: "x"})
	}
	err := rec.Err()
	if err == nil {
		t.Fatal("nonempty recorder returned nil")
	}
	if !strings.Contains(err.Error(), "8 invariant violation(s)") ||
		!strings.Contains(err.Error(), "and 3 more") {
		t.Errorf("error = %q", err)
	}
}
