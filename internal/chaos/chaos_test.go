package chaos

import (
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/sim"
)

// probe drives the armed injector at fixed virtual times by scheduling
// timer callbacks, returning the faults observed in order.
func probe(e *sim.Engine, a *Armed, site string, at ...time.Duration) []core.Fault {
	out := make([]core.Fault, len(at))
	for i, t := range at {
		i := i
		e.Schedule(t, func() { out[i] = a.Inject(site) })
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return out
}

func TestErrorBurstWindowing(t *testing.T) {
	e := sim.New(1)
	p := &Plan{Name: "t", Seed: 7, Specs: []Spec{
		ErrorBurst{Window: Window{Start: 10 * time.Second, Duration: 10 * time.Second}, Site: "s", Prob: 1},
	}}
	a := p.Arm(e.RT(), Targets{Window: time.Minute})
	got := probe(e, a, "s", 5*time.Second, 15*time.Second, 25*time.Second)
	if !got[0].Zero() || !got[2].Zero() {
		t.Errorf("faults outside the window: %+v %+v", got[0], got[2])
	}
	if got[1].Err == nil {
		t.Errorf("no fault inside the window: %+v", got[1])
	}
	if a.Errors != 1 {
		t.Errorf("Errors = %d, want 1", a.Errors)
	}
}

func TestErrorBurstMissesOtherSites(t *testing.T) {
	e := sim.New(1)
	p := &Plan{Name: "t", Seed: 7, Specs: []Spec{
		ErrorBurst{Window: Window{Start: 0, Duration: time.Minute}, Site: "s", Prob: 1},
	}}
	a := p.Arm(e.RT(), Targets{Window: time.Minute})
	got := probe(e, a, "other", 5*time.Second)
	if !got[0].Zero() {
		t.Errorf("fault leaked to an unrelated site: %+v", got[0])
	}
}

func TestLatencySpikeAddsDelay(t *testing.T) {
	e := sim.New(1)
	p := &Plan{Name: "t", Seed: 7, Specs: []Spec{
		LatencySpike{Window: Window{Start: 0, Duration: 30 * time.Second}, Site: "s",
			Extra: 2 * time.Second, Jitter: time.Second},
	}}
	a := p.Arm(e.RT(), Targets{Window: time.Minute})
	got := probe(e, a, "s", 5*time.Second, 45*time.Second)
	if got[0].Err != nil || got[0].Delay < 2*time.Second || got[0].Delay >= 3*time.Second {
		t.Errorf("in-window fault = %+v, want delay in [2s,3s)", got[0])
	}
	if !got[1].Zero() {
		t.Errorf("delay outside the window: %+v", got[1])
	}
}

func TestFractionalWindowResolvesAgainstHorizon(t *testing.T) {
	e := sim.New(1)
	p := &Plan{Name: "t", Seed: 7, Specs: []Spec{
		ErrorBurst{Window: Window{FracStart: 0.5, FracDuration: 0.25}, Site: "s", Prob: 1},
	}}
	a := p.Arm(e.RT(), Targets{Window: 100 * time.Second})
	got := probe(e, a, "s", 40*time.Second, 60*time.Second, 80*time.Second)
	if !got[0].Zero() || got[1].Err == nil || !got[2].Zero() {
		t.Errorf("fractional window misplaced: %+v", got)
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	mk := func() []core.Fault {
		e := sim.New(1)
		p := &Plan{Name: "t", Seed: 42, Specs: []Spec{
			ErrorBurst{Window: Window{Start: 0, Duration: time.Minute, StartJitter: 5 * time.Second},
				Site: "s", Prob: 0.5},
		}}
		a := p.Arm(e.RT(), Targets{Window: time.Minute})
		var at []time.Duration
		for i := 1; i <= 40; i++ {
			at = append(at, time.Duration(i)*time.Second)
		}
		return probe(e, a, "s", at...)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// And a different seed must (for this spec) produce a different draw
	// sequence somewhere — the schedule is seed-driven, not constant.
	e := sim.New(1)
	p := &Plan{Name: "t", Seed: 43, Specs: []Spec{
		ErrorBurst{Window: Window{Start: 0, Duration: time.Minute, StartJitter: 5 * time.Second},
			Site: "s", Prob: 0.5},
	}}
	arm := p.Arm(e.RT(), Targets{Window: time.Minute})
	var at []time.Duration
	for i := 1; i <= 40; i++ {
		at = append(at, time.Duration(i)*time.Second)
	}
	c := probe(e, arm, "s", at...)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 40-draw fault sequences")
	}
}

func TestFDSqueezeShrinksAndRestores(t *testing.T) {
	e := sim.New(1)
	cl := condor.NewCluster(e.RT(), condor.Config{FDCapacity: 1000})
	p := &Plan{Name: "t", Seed: 1, Specs: []Spec{
		FDSqueeze{Window: Window{Start: 10 * time.Second, Duration: 10 * time.Second}, Factor: 0.25},
	}}
	a := p.Arm(e.RT(), Targets{Window: time.Minute, Cluster: cl})
	var during, after int
	e.Schedule(15*time.Second, func() { during = cl.FDs.Capacity() })
	e.Schedule(25*time.Second, func() { after = cl.FDs.Capacity() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if during != 250 {
		t.Errorf("squeezed capacity = %d, want 250", during)
	}
	if after != 1000 {
		t.Errorf("restored capacity = %d, want 1000", after)
	}
	if a.Actions == 0 {
		t.Error("squeeze recorded no action")
	}
}

func TestServerFlapTogglesAndRestores(t *testing.T) {
	e := sim.New(1)
	servers := []*replica.Server{
		replica.NewServer(e.RT(), "a", false, replica.Config{}),
		replica.NewServer(e.RT(), "b", false, replica.Config{}),
	}
	p := &Plan{Name: "t", Seed: 1, Specs: []Spec{
		ServerFlap{Window: Window{Start: 10 * time.Second, Duration: 20 * time.Second},
			Server: 1, Period: 5 * time.Second},
	}}
	p.Arm(e.RT(), Targets{Window: time.Minute, Servers: servers})
	var sick, healthy, other bool
	e.Schedule(12*time.Second, func() { sick = servers[1].BlackHole; other = servers[0].BlackHole })
	e.Schedule(17*time.Second, func() { healthy = !servers[1].BlackHole })
	var restored bool
	e.Schedule(45*time.Second, func() { restored = !servers[1].BlackHole })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !sick || !healthy {
		t.Errorf("flap did not alternate: sick@12=%v healthy@17=%v", sick, healthy)
	}
	if other {
		t.Error("flap touched the wrong server")
	}
	if !restored {
		t.Error("server not restored to health after the window")
	}
}

func TestScheddCrashKillsOnSchedule(t *testing.T) {
	e := sim.New(1)
	cl := condor.NewCluster(e.RT(), condor.Config{})
	p := &Plan{Name: "t", Seed: 1, Specs: []Spec{
		ScheddCrash{At: 10 * time.Second, Every: 40 * time.Second, Count: 3},
	}}
	p.Arm(e.RT(), Targets{Window: 2 * time.Minute, Cluster: cl})
	var downAt, upAt bool
	e.Schedule(11*time.Second, func() { downAt = cl.Schedd.Down() })
	e.Schedule(45*time.Second, func() { upAt = !cl.Schedd.Down() }) // restarted after 30s
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if cl.Schedd.Crashes != 3 {
		t.Errorf("Crashes = %d, want 3", cl.Schedd.Crashes)
	}
	if !downAt || !upAt {
		t.Errorf("crash/restart cycle wrong: down@11s=%v up@45s=%v", downAt, upAt)
	}
}

func TestPresets(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("Names() = %v, want at least 5 presets", names)
	}
	for _, n := range names {
		p, err := Preset(n, 9)
		if err != nil {
			t.Fatalf("Preset(%q): %v", n, err)
		}
		if p.Name != n || p.Seed != 9 || len(p.Specs) == 0 {
			t.Errorf("Preset(%q) = %+v", n, p)
		}
		// Every preset must arm against every scenario shape without
		// panicking, including one with no targets at all.
		e := sim.New(1)
		p.Arm(e.RT(), Targets{Window: time.Minute})
		if err := e.Run(); err != nil {
			t.Errorf("empty-target arm of %q: %v", n, err)
		}
	}
	if _, err := Preset("no-such-plan", 1); err == nil {
		t.Error("unknown preset did not error")
	}
}

func TestSummaryIsDeterministic(t *testing.T) {
	mk := func() string {
		e := sim.New(1)
		p := &Plan{Name: "t", Seed: 3, Specs: []Spec{
			ErrorBurst{Window: Window{Start: 0, Duration: time.Minute}, Site: "x", Prob: 1},
			LatencySpike{Window: Window{Start: 0, Duration: time.Minute}, Site: "y", Extra: time.Second},
		}}
		a := p.Arm(e.RT(), Targets{Window: time.Minute})
		probe(e, a, "x", time.Second, 2*time.Second)
		// probe quiesces the engine; drive site y with a fresh timer set.
		e.Schedule(0, func() { a.Inject("y") })
		if err := e.Run(); err != nil {
			panic(err)
		}
		return a.Summary()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("summaries diverged:\n%s\n%s", a, b)
	}
	for _, want := range []string{"chaos[t seed=3]", "2 errors", "1 delays", "x=2", "y=1"} {
		if !contains(a, want) {
			t.Errorf("summary %q missing %q", a, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
