package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/channel"
	"repro/internal/condor"
	"repro/internal/fsbuffer"
	"repro/internal/replica"
)

// allSites lists every injection site across the substrates, so generic
// presets bite whichever scenario they are armed against.
var allSites = []string{
	condor.InjectConnect,
	condor.InjectService,
	fsbuffer.InjectWrite,
	replica.InjectFetch,
	channel.InjectTransmit,
}

// netSites lists every unreliable-channel site across the substrates:
// the lease-control wires plus condor's submit request/reply seams.
var netSites = []string{
	condor.InjectNet,
	condor.InjectNetReq,
	condor.InjectNetRep,
	fsbuffer.InjectNet,
	replica.InjectNet,
}

// presets maps plan names to constructors. Windows are fractional so
// the same plan stresses a 30-second smoke run and a 30-minute paper
// run alike; the seed jitters where inside the run each fault lands.
var presets = map[string]func(seed int64) *Plan{
	// bursts: a storm of transient errors on every failure site for
	// roughly a third of the run.
	"bursts": func(seed int64) *Plan {
		p := &Plan{Name: "bursts", Seed: seed}
		for _, site := range allSites {
			p.Specs = append(p.Specs, ErrorBurst{
				Window: Window{FracStart: 0.15, FracDuration: 0.35, FracStartJitter: 0.3},
				Site:   site,
				Prob:   0.35,
			})
		}
		return p
	},
	// latency: every operation pays extra, jittered latency for half
	// the run — a congested network, not a broken one.
	"latency": func(seed int64) *Plan {
		p := &Plan{Name: "latency", Seed: seed}
		for _, site := range allSites {
			p.Specs = append(p.Specs, LatencySpike{
				Window: Window{FracStart: 0.1, FracDuration: 0.5, FracStartJitter: 0.3},
				Site:   site,
				Extra:  400 * time.Millisecond,
				Jitter: 800 * time.Millisecond,
			})
		}
		return p
	},
	// squeeze: the contended resource itself shrinks mid-run — the FD
	// table to a quarter, the buffer to a third — then recovers.
	"squeeze": func(seed int64) *Plan {
		return &Plan{Name: "squeeze", Seed: seed, Specs: []Spec{
			FDSqueeze{Window: Window{FracStart: 0.3, FracDuration: 0.3, FracStartJitter: 0.2}, Factor: 0.25},
			BufferSqueeze{Window: Window{FracStart: 0.3, FracDuration: 0.3, FracStartJitter: 0.2}, Factor: 0.33},
		}}
	},
	// flap: a healthy replica wedges into a black hole and back on a
	// short cadence for most of the run.
	"flap": func(seed int64) *Plan {
		return &Plan{Name: "flap", Seed: seed, Specs: []Spec{
			ServerFlap{Window: Window{FracStart: 0.15, FracDuration: 0.6, FracStartJitter: 0.2},
				Server: 1, FracPeriod: 0.05},
		}}
	},
	// crashes: the schedd is killed outright three times, evenly
	// spaced — broadcast jams on demand.
	"crashes": func(seed int64) *Plan {
		return &Plan{Name: "crashes", Seed: seed, Specs: []Spec{
			ScheddCrash{FracAt: 0.2, FracEvery: 0.25, Count: 3},
		}}
	},
	// stuck-holder: clients wedge while owning a contended resource —
	// FDs, reserved buffer space, a replica's service lane — for most
	// of the run. The failure regime the lease watchdog exists for;
	// without limited allocation this starves every competitor.
	"stuck-holder": func(seed int64) *Plan {
		w := Window{FracStart: 0.1, FracDuration: 0.6, FracStartJitter: 0.2}
		return &Plan{Name: "stuck-holder", Seed: seed, Specs: []Spec{
			StuckHolder{Window: w, Site: condor.InjectHold, Prob: 0.08},
			StuckHolder{Window: w, Site: fsbuffer.InjectHold, Prob: 0.08},
			StuckHolder{Window: w, Site: replica.InjectHold, Prob: 0.08},
		}}
	},
	// res-flap: the reservation discipline's nightmare regime — the
	// schedd flaps up and down while admitted holders wedge mid-window.
	// An admission book keeps charging for a wedged holder's window
	// until its boundary passes, so every stuck holder converts booked
	// capacity into dead capacity for the rest of its window; the same
	// wedge under leased Ethernet costs at most one (much shorter)
	// revocation quantum. A replica flap rides along so the reader
	// variant of the sweep sees the same regime.
	"res-flap": func(seed int64) *Plan {
		w := Window{FracStart: 0.1, FracDuration: 0.7, FracStartJitter: 0.15}
		return &Plan{Name: "res-flap", Seed: seed, Specs: []Spec{
			ScheddCrash{FracAt: 0.15, FracEvery: 0.12, Count: 5},
			StuckHolder{Window: w, Site: condor.InjectHold, Prob: 0.12},
			StuckHolder{Window: w, Site: fsbuffer.InjectHold, Prob: 0.12},
			StuckHolder{Window: w, Site: replica.InjectHold, Prob: 0.12},
			ServerFlap{Window: w, Server: 1, FracPeriod: 0.06},
		}}
	},
	// part-flap: the network partitions and heals repeatedly — every
	// channel site is severed in three flapping phases across the
	// middle of the run, with jittered delay (reordering) bracketing
	// the cuts. Control messages in flight when a phase opens are lost;
	// fencing decides the fate of the late survivors. Retry budgets
	// keep the waiting clients from storming the heal.
	"part-flap": func(seed int64) *Plan {
		p := &Plan{Name: "part-flap", Seed: seed, Specs: []Spec{
			Partition{
				Window: Window{FracStart: 0.15, FracDuration: 0.5, FracStartJitter: 0.2},
				Sites:  netSites,
				Flaps:  3,
			},
		}}
		for _, site := range netSites {
			p.Specs = append(p.Specs, MsgDelay{
				Window: Window{FracStart: 0.1, FracDuration: 0.7, FracStartJitter: 0.1},
				Site:   site,
				Extra:  150 * time.Millisecond,
				Jitter: 500 * time.Millisecond,
			})
		}
		return p
	},
	// dup-storm: a retransmitting network — messages are duplicated
	// often, dropped occasionally, and reordered throughout most of
	// the run. The at-most-once gauntlet: without idempotency keys the
	// schedd books phantom jobs, and without fencing a duplicated
	// release double-frees lease units.
	"dup-storm": func(seed int64) *Plan {
		p := &Plan{Name: "dup-storm", Seed: seed}
		w := Window{FracStart: 0.1, FracDuration: 0.65, FracStartJitter: 0.2}
		for _, site := range netSites {
			p.Specs = append(p.Specs,
				MsgDup{Window: w, Site: site, Prob: 0.45},
				MsgDrop{Window: w, Site: site, Prob: 0.1},
				MsgDelay{Window: w, Site: site,
					Extra: 100 * time.Millisecond, Jitter: 300 * time.Millisecond},
			)
		}
		return p
	},
	// mixed: a lighter dose of everything at once.
	"mixed": func(seed int64) *Plan {
		p := &Plan{Name: "mixed", Seed: seed, Specs: []Spec{
			FDSqueeze{Window: Window{FracStart: 0.5, FracDuration: 0.2, FracStartJitter: 0.2}, Factor: 0.4},
			BufferSqueeze{Window: Window{FracStart: 0.5, FracDuration: 0.2, FracStartJitter: 0.2}, Factor: 0.5},
			ServerFlap{Window: Window{FracStart: 0.4, FracDuration: 0.4, FracStartJitter: 0.2},
				Server: 1, FracPeriod: 0.08},
			ScheddCrash{FracAt: 0.3, Count: 1},
		}}
		for _, site := range allSites {
			p.Specs = append(p.Specs, ErrorBurst{
				Window: Window{FracStart: 0.1, FracDuration: 0.25, FracStartJitter: 0.4},
				Site:   site,
				Prob:   0.2,
			})
			p.Specs = append(p.Specs, LatencySpike{
				Window: Window{FracStart: 0.6, FracDuration: 0.25, FracStartJitter: 0.1},
				Site:   site,
				Extra:  200 * time.Millisecond,
				Jitter: 400 * time.Millisecond,
			})
		}
		return p
	},
}

// Names lists the available preset plans, sorted.
func Names() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns the named plan with the given seed, or an error naming
// the available plans.
func Preset(name string, seed int64) (*Plan, error) {
	mk, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown plan %q (have: %s)", name, strings.Join(Names(), ", "))
	}
	return mk(seed), nil
}
