package sim

import (
	"context"

	"repro/internal/core"
)

// Resource is a FIFO counting semaphore in virtual time. It models
// serially-shared services such as a single-threaded data server (capacity
// 1) or a bounded table of file descriptors (capacity N).
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*resWaiter

	// Stats, readable at any point under the engine token.
	Acquires int64 // successful acquisitions
	Rejects  int64 // TryAcquire failures
	Timeouts int64 // waiters abandoned by cancellation
}

type resWaiter struct {
	p       *Proc
	granted bool
	gone    bool
}

var _ core.Resource = (*Resource)(nil)

// NewResource returns a resource with the given capacity.
func NewResource(e *Engine, name string, capacity int) *Resource {
	if capacity < 0 {
		panic("sim: negative resource capacity")
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Available returns the number of free units. This is the "carrier sense"
// observable for resources of this kind.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int {
	n := 0
	for _, w := range r.waiters {
		if !w.gone && !w.granted {
			n++
		}
	}
	return n
}

// SetCapacity adjusts capacity at runtime (e.g. an administrator retuning
// a kernel table). Shrinking below inUse is allowed; units drain as they
// are released. Growing grants queued waiters immediately.
func (r *Resource) SetCapacity(n int) {
	r.capacity = n
	r.grantWaiters()
}

// TryAcquire takes one unit without waiting, reporting success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity {
		r.inUse++
		r.Acquires++
		return true
	}
	r.Rejects++
	return false
}

// Acquire takes one unit, parking the process in FIFO order until one is
// free or ctx is canceled (returning the cancellation cause). The
// process must belong to this resource's engine.
func (r *Resource) Acquire(cp core.Proc, ctx context.Context) error {
	p := cp.(*Proc)
	if err := ctx.Err(); err != nil {
		return err
	}
	if r.inUse < r.capacity && r.QueueLen() == 0 {
		r.inUse++
		r.Acquires++
		return nil
	}
	w := &resWaiter{p: p}
	r.waiters = append(r.waiters, w)
	id, sc := onCancelID(ctx, func(err error) {
		if !w.granted && !w.gone {
			w.gone = true
			r.Timeouts++
			p.wake(err)
		}
	})
	err := p.park()
	if sc != nil {
		sc.removeHook(id)
	}
	if err != nil {
		return err
	}
	return nil
}

// Release returns one unit and grants it to the oldest live waiter, if
// any. Releasing more than was acquired panics: that is a simulation bug.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	r.inUse--
	r.grantWaiters()
}

// grantWaiters hands free units to queued waiters in FIFO order.
func (r *Resource) grantWaiters() {
	r.compact()
	for len(r.waiters) > 0 && r.inUse < r.capacity {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		if w.gone {
			continue
		}
		w.granted = true
		r.inUse++
		r.Acquires++
		w.p.wake(nil)
	}
}

// compact drops abandoned waiters from the head of the queue.
func (r *Resource) compact() {
	for len(r.waiters) > 0 && r.waiters[0].gone {
		r.waiters = r.waiters[1:]
	}
}
