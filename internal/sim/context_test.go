package sim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestWithCancelOnCanceledParent(t *testing.T) {
	e := New(1)
	parent, cancel := e.WithCancel(e.Context())
	cancel()
	child, ccancel := e.WithCancel(parent)
	defer ccancel()
	if !errors.Is(child.Err(), context.Canceled) {
		t.Fatalf("child of canceled parent: Err = %v", child.Err())
	}
}

func TestWithTimeoutOnCanceledParent(t *testing.T) {
	e := New(1)
	parent, cancel := e.WithCancel(e.Context())
	cancel()
	child, ccancel := e.WithTimeout(parent, time.Hour)
	defer ccancel()
	if child.Err() == nil {
		t.Fatal("child of canceled parent is live")
	}
}

func TestDeadlinePropagatesToChild(t *testing.T) {
	e := New(1)
	outer, c1 := e.WithTimeout(e.Context(), time.Minute)
	defer c1()
	inner, c2 := e.WithTimeout(outer, time.Hour)
	defer c2()
	d, ok := inner.Deadline()
	if !ok {
		t.Fatal("no deadline")
	}
	if want := Epoch.Add(time.Minute); !d.Equal(want) {
		t.Fatalf("inner deadline = %v, want parent's %v", d, want)
	}
}

func TestCancelIsIdempotentAndPrunesChildren(t *testing.T) {
	e := New(1)
	parent, pcancel := e.WithCancel(e.Context())
	child, ccancel := e.WithCancel(parent)
	ccancel()
	ccancel() // idempotent
	pcancel()
	if !errors.Is(child.Err(), context.Canceled) {
		t.Fatalf("child Err = %v", child.Err())
	}
	select {
	case <-child.Done():
	default:
		t.Fatal("child Done not closed")
	}
}

func TestValueDelegatesToParent(t *testing.T) {
	e := New(1)
	type key struct{}
	parent := context.WithValue(context.Background(), key{}, "payload")
	ctx, cancel := e.WithCancel(parent)
	defer cancel()
	if got := ctx.Value(key{}); got != "payload" {
		t.Fatalf("Value = %v", got)
	}
}

func TestRootContextValueIsNil(t *testing.T) {
	e := New(1)
	if v := e.Context().Value("anything"); v != nil {
		t.Fatalf("root Value = %v", v)
	}
}

func TestDeadlineAbsentWithoutTimeout(t *testing.T) {
	e := New(1)
	ctx, cancel := e.WithCancel(e.Context())
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("cancel-only context reports a deadline")
	}
}

func TestHangOnCanceledContextReturnsImmediately(t *testing.T) {
	e := New(1)
	ctx, cancel := e.WithCancel(e.Context())
	cancel()
	e.Spawn("h", func(p *Proc) {
		if err := p.Hang(ctx); err == nil {
			t.Error("Hang on dead ctx returned nil")
		}
		if p.Elapsed() != 0 {
			t.Errorf("Hang consumed %v", p.Elapsed())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSleepOnCanceledContextReturnsImmediately(t *testing.T) {
	e := New(1)
	ctx, cancel := e.WithCancel(e.Context())
	cancel()
	e.Spawn("s", func(p *Proc) {
		if err := p.Sleep(ctx, time.Hour); err == nil {
			t.Error("Sleep on dead ctx returned nil")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSetCapacity(t *testing.T) {
	e := New(1)
	r := NewResource(e, "r", 2)
	e.Spawn("x", func(p *Proc) {
		if !r.TryAcquire() || !r.TryAcquire() {
			t.Error("initial capacity not 2")
		}
		r.SetCapacity(1) // shrink below inUse: drains as released
		if r.TryAcquire() {
			t.Error("acquire beyond shrunk capacity")
		}
		r.Release()
		r.Release()
		if !r.TryAcquire() {
			t.Error("acquire after drain failed")
		}
		if r.Available() != 0 || r.InUse() != 1 || r.Capacity() != 1 {
			t.Errorf("state = cap %d inUse %d", r.Capacity(), r.InUse())
		}
		r.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineAccounting(t *testing.T) {
	e := New(1)
	if !e.Quiesced() {
		t.Fatal("fresh engine not quiesced")
	}
	tm := e.Schedule(time.Second, func() {})
	if e.Quiesced() {
		t.Fatal("engine with pending timer reports quiesced")
	}
	if tm.When() != time.Second {
		t.Fatalf("When = %v", tm.When())
	}
	e.Spawn("p", func(p *Proc) { p.SleepFor(2 * time.Second) })
	if e.Live() != 1 {
		t.Fatalf("Live = %d", e.Live())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Live() != 0 || !e.Quiesced() {
		t.Fatalf("after run: live=%d quiesced=%v", e.Live(), e.Quiesced())
	}
	if e.Events() == 0 {
		t.Fatal("no events counted")
	}
	if e.Now() != Epoch.Add(2*time.Second) {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestResourceQueueLen(t *testing.T) {
	e := New(1)
	r := NewResource(e, "r", 1)
	e.Spawn("holder", func(p *Proc) {
		_ = r.Acquire(p, e.Context())
		p.SleepFor(10 * time.Second)
		r.Release()
	})
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			p.SleepFor(time.Second)
			if err := r.Acquire(p, e.Context()); err == nil {
				r.Release()
			}
		})
	}
	e.Schedule(5*time.Second, func() {
		if got := r.QueueLen(); got != 3 {
			t.Errorf("QueueLen = %d, want 3", got)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.QueueLen() != 0 {
		t.Fatalf("final QueueLen = %d", r.QueueLen())
	}
}

func TestSetCapacityGrowthGrantsWaiters(t *testing.T) {
	e := New(1)
	r := NewResource(e, "r", 1)
	var gotAt time.Duration
	e.Spawn("holder", func(p *Proc) {
		_ = r.Acquire(p, e.Context())
		p.SleepFor(time.Hour)
		r.Release()
	})
	e.Spawn("waiter", func(p *Proc) {
		if err := r.Acquire(p, e.Context()); err != nil {
			t.Errorf("acquire: %v", err)
			return
		}
		gotAt = p.Elapsed()
		r.Release()
	})
	// Capacity doubles at t=5s; the waiter must be granted then, not
	// an hour later when the holder releases.
	e.Schedule(5*time.Second, func() { r.SetCapacity(2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAt != 5*time.Second {
		t.Fatalf("waiter granted at %v, want 5s", gotAt)
	}
}
