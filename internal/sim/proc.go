package sim

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Proc is a simulated process: a goroutine that runs only while it holds
// the engine token. All of its methods must be called from the process's
// own goroutine unless documented otherwise.
//
// Proc satisfies the core.Runtime interface, so the same fault-tolerance
// code drives both simulated and real executions.
type Proc struct {
	eng     *Engine
	id      int32 // arena index; see Engine.procByID
	shard   int32 // scheduling shard this process runs on
	runSeq  int64 // global admission stamp of the current run-queue entry
	name    string
	resume  chan struct{}
	parked  bool
	wakeErr error
	done    bool
	tracer  *trace.Client

	// Cached wakeup state for Yield/Sleep/Hang. A process has at most
	// one pending park, so one fired-flag and one timer slot suffice,
	// and the two closures are created once per arena record and reused
	// across parks (and across recycled tenures).
	sleepFired bool
	sleepTimer Timer
	sleepWake  func()      // timer path: wake(nil) unless already fired
	sleepHook  func(error) // cancel path: cancel timer, wake(err)
}

// ErrProcKilled is returned from blocking calls when a process is woken
// because its context was canceled without a more specific cause.
var ErrProcKilled = errors.New("sim: process killed")

// A Proc is the virtual-time implementation of the fault-tolerance
// runtime; the same retry code drives simulations and real executions.
var (
	_ core.Runtime = (*Proc)(nil)
	_ core.Proc    = (*Proc)(nil)
)

// Name returns the name given at Spawn time, for traces and tests.
func (p *Proc) Name() string { return p.name }

// SetTracer attaches a per-client trace handle to the process, giving
// substrate code (schedd, buffer, replica server) a way to record
// resource events against the client that triggered them. A nil handle
// (the default) disables tracing.
func (p *Proc) SetTracer(c *trace.Client) { p.tracer = c }

// Tracer returns the process's trace handle; nil means tracing is off.
// The nil handle is itself safe to emit on.
func (p *Proc) Tracer() *trace.Client { return p.tracer }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Schedule arranges fn to run at virtual time now+d on the process's
// engine, satisfying the backend-neutral core.Proc interface.
func (p *Proc) Schedule(d time.Duration, fn func()) core.Timer {
	return p.eng.Schedule(d, fn)
}

// Now reports the current virtual time.
func (p *Proc) Now() time.Time { return p.eng.Now() }

// Elapsed reports virtual time since the start of the simulation.
func (p *Proc) Elapsed() time.Duration { return p.eng.now }

// Rand returns a deterministic uniform value in [0,1).
func (p *Proc) Rand() float64 { return p.eng.rng.Float64() }

// exit is called by the spawn wrapper when the process function returns.
func (p *Proc) exit() {
	p.done = true
	p.eng.live--
	p.eng.yielded <- struct{}{}
}

// park yields the token to the engine and blocks until some other party
// wakes the process. It returns the error supplied by the waker.
func (p *Proc) park() error {
	p.parked = true
	p.eng.yielded <- struct{}{}
	<-p.resume
	err := p.wakeErr
	p.wakeErr = nil
	return err
}

// wake makes a parked process runnable. It must be called under the
// engine token by a timer callback or another process.
func (p *Proc) wake(err error) {
	if !p.parked {
		panic("sim: wake of non-parked process " + p.name)
	}
	p.parked = false
	p.wakeErr = err
	p.eng.pushRun(p)
}

// initSleepFns creates the process's reusable wakeup closures. Both
// capture only p, whose arena record is stable, so they are created
// once and survive recycling. The fired flag makes timer-vs-cancel a
// race with exactly one winner; the loser sees the flag and stands
// down. sleepTimer is the zero Timer for parks without one (Yield,
// Hang), where Cancel is a no-op.
func (p *Proc) initSleepFns() {
	p.sleepWake = func() {
		if !p.sleepFired {
			p.sleepFired = true
			p.wake(nil)
		}
	}
	p.sleepHook = func(err error) {
		if !p.sleepFired {
			p.sleepFired = true
			p.sleepTimer.Cancel()
			p.wake(err)
		}
	}
}

// armSleep resets the shared wakeup state for a new park.
func (p *Proc) armSleep() {
	if p.sleepWake == nil {
		p.initSleepFns()
	}
	p.sleepFired = false
	p.sleepTimer = Timer{}
}

// Yield gives other runnable processes a chance to run at the current
// virtual instant.
func (p *Proc) Yield() {
	p.armSleep()
	p.eng.Schedule(0, p.sleepWake)
	_ = p.park()
}

// SleepFor pauses the process for d of virtual time. It cannot be
// interrupted; prefer Sleep with a context for cancellable waits.
func (p *Proc) SleepFor(d time.Duration) {
	if d <= 0 {
		p.Yield()
		return
	}
	p.armSleep()
	p.eng.Schedule(d, p.sleepWake)
	_ = p.park()
}

// Sleep pauses the process for d of virtual time or until ctx is
// canceled, whichever comes first, returning the context's error in the
// latter case. It implements the core.Runtime sleep contract. The
// cached closures and the context's inline hook storage make the
// steady-state cost zero allocations.
func (p *Proc) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		p.Yield()
		return ctx.Err()
	}
	p.armSleep()
	p.sleepTimer = p.eng.Schedule(d, p.sleepWake)
	id, sc := onCancelID(ctx, p.sleepHook)
	err := p.park()
	if sc != nil {
		sc.removeHook(id)
	}
	return err
}

// Hang parks the process until ctx is canceled, then returns the
// cancellation cause. It models interacting with a "black hole" service
// that never responds.
func (p *Proc) Hang(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.armSleep()
	id, sc := onCancelID(ctx, p.sleepHook)
	err := p.park()
	if sc != nil {
		sc.removeHook(id)
	}
	return err
}

// WithTimeout derives a context that is canceled after d of virtual time.
// If parent is a simulation context the cancellation also propagates from
// it; foreign parents are honored only via their current Err state.
func (p *Proc) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return p.eng.WithTimeout(parent, d)
}

// WithCancel derives a cancelable child context in virtual time.
func (p *Proc) WithCancel(parent context.Context) (context.Context, context.CancelFunc) {
	return p.eng.WithCancel(parent)
}

// Parallel runs the fns in worker processes, handing each branch its
// worker as its Runtime, and parks the caller until every branch has
// returned. The i'th error in the result corresponds to fns[i]. At
// most limit branches run at once (limit <= 0 means one process per
// branch); queued branches are admitted in index order as workers free
// up. Cancellation of branches is the caller's business: wrap fns with
// a shared cancelable context to get first-failure-aborts semantics.
func (p *Proc) Parallel(ctx context.Context, limit int, fns []func(ctx context.Context, rt core.Runtime) error) []error {
	errs := make([]error, len(fns))
	if len(fns) == 0 {
		return errs
	}
	workers := len(fns)
	if limit > 0 && limit < workers {
		workers = limit
	}
	next := 0
	remaining := len(fns)
	parent := p
	parentParked := false
	for w := 0; w < workers; w++ {
		p.eng.Spawn(p.name+"/par", func(child *Proc) {
			child.tracer = parent.tracer // branches trace as their spawner
			for next < len(fns) {
				i := next
				next++ // token-serialized: no race
				errs[i] = fns[i](ctx, child)
				remaining--
			}
			if remaining == 0 && parentParked {
				parentParked = false // only the first finisher wakes
				parent.wake(nil)
			}
		})
	}
	// Workers cannot have run yet (we hold the token), so parking here
	// is race-free even if they all finish before the parent would.
	for remaining > 0 {
		parentParked = true
		_ = p.park()
		parentParked = false
	}
	return errs
}
