package sim

import (
	"fmt"
	"testing"
	"time"
)

// TestRunQueueMaskWraparound drives pushRun/popRun directly through the
// regime the mask indexing must survive: a head deep into the ring,
// pushes wrapping past the end, and a growth while wrapped (the copy
// must unroll the wrap). Pop order must stay FIFO throughout.
func TestRunQueueMaskWraparound(t *testing.T) {
	e := New(1)
	mk := func() *Proc {
		p := e.allocProc()
		p.shard = 0
		return p
	}
	var want []*Proc
	push := func(p *Proc) {
		e.pushRun(p)
		want = append(want, p)
	}
	popCheck := func() {
		p := e.popRun()
		e.runnable--
		if p != want[0] {
			t.Fatalf("pop order broken: got proc id %d, want id %d", p.id, want[0].id)
		}
		want = want[1:]
	}
	// Fill the initial 16-slot ring, drain most of it so the head sits
	// near the end, then push across the wrap boundary.
	for i := 0; i < 16; i++ {
		push(mk())
	}
	for i := 0; i < 13; i++ {
		popCheck()
	}
	for i := 0; i < 12; i++ {
		push(mk()) // tail wraps to the ring's front
	}
	if head := e.shards[0].rqHead; head != 13 {
		t.Fatalf("head = %d, want 13 (setup drifted)", head)
	}
	// Grow while wrapped: the 16th live entry forces a 32-slot ring and
	// the copy must stitch [head:16) + [0:tail) back together in order.
	for i := 0; i < 20; i++ {
		push(mk())
	}
	if len(e.shards[0].runq) != 64 {
		t.Fatalf("ring len = %d, want 64 after growth", len(e.shards[0].runq))
	}
	for len(want) > 0 {
		popCheck()
	}
	if e.shards[0].rqLen != 0 {
		t.Fatalf("rqLen = %d after full drain", e.shards[0].rqLen)
	}
	// runSeq stamps must be strictly increasing in admission order.
	if e.runSeq != 48 {
		t.Fatalf("runSeq = %d, want 48 admissions", e.runSeq)
	}
}

// shardWorkload runs a mixed workload — sharded timers via
// ScheduleArgOn, procs spawned from those shards, sleeps, timeouts, and
// resource contention — and returns its full event-order fingerprint.
func shardWorkload(t *testing.T, shards int) (string, int64, time.Duration) {
	t.Helper()
	e := New(42)
	if shards > 1 {
		e.SetShards(shards)
	}
	var log []string
	r := NewResource(e, "carrier", 2)
	ctx, cancel := e.WithTimeout(e.Context(), 90*time.Second)
	defer cancel()
	type client struct{ id, spins int }
	var attempt func(arg any)
	attempt = func(arg any) {
		c := arg.(*client)
		if ctx.Err() != nil {
			return
		}
		log = append(log, fmt.Sprintf("fire %d@%v", c.id, e.Elapsed()))
		e.Spawn(fmt.Sprintf("c%d", c.id), func(p *Proc) {
			actx, acancel := p.WithTimeout(ctx, 3*time.Second)
			defer acancel()
			if r.Acquire(p, actx) == nil {
				p.SleepFor(time.Duration(c.id%5+1) * 100 * time.Millisecond)
				r.Release()
				log = append(log, fmt.Sprintf("done %d@%v", c.id, e.Elapsed()))
			} else {
				log = append(log, fmt.Sprintf("drop %d@%v", c.id, e.Elapsed()))
			}
			c.spins++
			if c.spins < 4 {
				jitter := time.Duration(e.Rand().Intn(2000)) * time.Millisecond
				e.ScheduleArg(5*time.Second+jitter, attempt, c)
			}
		})
	}
	clients := make([]client, 24)
	for i := range clients {
		clients[i].id = i
		e.ScheduleArgOn(i%e.Shards(), time.Duration(i)*137*time.Millisecond, attempt, &clients[i])
	}
	// A long timer parked beyond the horizon, canceled in-window, so the
	// overflow path is exercised under sharding too.
	wd := e.Schedule(90*24*time.Hour, func() { t.Error("overflow watchdog fired") })
	e.Schedule(80*time.Second, wd.Cancel)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	fp := ""
	for _, l := range log {
		fp += l + "\n"
	}
	return fp, e.Events(), e.Elapsed()
}

// TestShardCountInvariance is the sharding acceptance test: the same
// seed must produce a byte-identical event order, event count, and
// final clock at every shard count. Sharding is an internal-structure
// choice, never a semantic one.
func TestShardCountInvariance(t *testing.T) {
	base, ev, clk := shardWorkload(t, 1)
	if len(base) == 0 || ev < 100 {
		t.Fatalf("workload too small to prove anything (events=%d)", ev)
	}
	for _, n := range []int{2, 4, 16} {
		fp, e2, c2 := shardWorkload(t, n)
		if fp != base {
			t.Fatalf("shards=%d changed the event order;\nshards=1:\n%s\nshards=%d:\n%s", n, base, n, fp)
		}
		if e2 != ev || c2 != clk {
			t.Fatalf("shards=%d: events/clock (%d,%v) != unsharded (%d,%v)", n, e2, c2, ev, clk)
		}
	}
}

// TestSetShardsValidation pins the guard rails: shard counts must be
// powers of two, and resharding a used engine is a programming error.
func TestSetShardsValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 6, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetShards(%d) did not panic", bad)
				}
			}()
			New(1).SetShards(bad)
		}()
	}
	e := New(1)
	e.Schedule(time.Second, func() {})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetShards on a used engine did not panic")
			}
		}()
		e.SetShards(2)
	}()
	// ScheduleArgOn must reject out-of-range shards.
	e2 := New(1)
	e2.SetShards(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleArgOn(4) on a 4-shard engine did not panic")
			}
		}()
		e2.ScheduleArgOn(4, time.Second, func(any) {}, nil)
	}()
}

// TestProcArenaRecycling pins the process arena: records of exited
// processes are reused (with their resume channels), and the dense
// id-indexed blocks stay addressable.
func TestProcArenaRecycling(t *testing.T) {
	e := New(1)
	var firstID int32 = -1
	e.Spawn("a", func(p *Proc) { firstID = p.id })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if firstID < 0 {
		t.Fatal("proc did not run")
	}
	rec := e.procByID(firstID)
	if rec.done || rec.name != "" {
		t.Fatalf("record %d not reset after recycle: done=%v name=%q", firstID, rec.done, rec.name)
	}
	// The very next spawn must reuse the freed record, not mint block 2.
	var secondID int32 = -2
	e.Spawn("b", func(p *Proc) { secondID = p.id })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if secondID != firstID {
		t.Fatalf("spawn after exit used record %d, want recycled %d", secondID, firstID)
	}
	if len(e.procBlocks) != 1 {
		t.Fatalf("minted %d blocks for serial spawns, want 1", len(e.procBlocks))
	}
	// Churn far past one block: serial spawn/exit cycles must never
	// mint a second block.
	for i := 0; i < 3*procBlock; i++ {
		e.Spawn("churn", func(p *Proc) {})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.procBlocks) != 1 {
		t.Fatalf("churn minted %d blocks, want 1", len(e.procBlocks))
	}
}
