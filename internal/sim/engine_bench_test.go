package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineStep measures one scheduling step with a deep run
// queue: 500 runnable processes all yielding at the same virtual
// instant, the regime where an O(n) run-queue pop turns every step
// into a 500-pointer shift. One op is one process resumption.
func BenchmarkEngineStep(b *testing.B) {
	const procs = 500
	e := New(1)
	e.MaxEvents = int64(b.N)*4 + int64(procs)*8 + 4096
	perProc := b.N/procs + 1
	for i := 0; i < procs; i++ {
		e.Spawn("p", func(p *Proc) {
			for j := 0; j < perProc; j++ {
				p.Yield()
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedule measures the cost of scheduling one timer that
// later fires, the dominant allocation site of the engine: every
// Sleep, timeout, sampling tick, and housekeeping beat mints one.
func BenchmarkSchedule(b *testing.B) {
	e := New(1)
	e.MaxEvents = int64(b.N)*2 + 1024
	fn := func() {}
	n := b.N
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < n; i++ {
		e.Schedule(time.Duration(i)*time.Nanosecond, fn)
		if e.TimerHeapLen() >= 1024 {
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScheduleCancel measures the WithTimeout pattern that
// dominates real workloads: schedule a guard timer, cancel it almost
// immediately because the guarded work finished first. Without
// canceled-timer compaction every op leaves a dead entry in the heap
// until its distant deadline; without a free list every op allocates.
func BenchmarkScheduleCancel(b *testing.B) {
	e := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.Schedule(time.Hour, fn)
		t.Cancel()
	}
	b.StopTimer()
	b.ReportMetric(float64(e.TimerHeapLen()), "pending-len")
}

// BenchmarkSleepCancelCycle measures the full schedule-then-cancel
// round trip through a process: a Sleep raced against a context whose
// deadline never wins, i.e. core.Try's per-attempt timeout pattern.
func BenchmarkSleepCancelCycle(b *testing.B) {
	e := New(1)
	e.MaxEvents = int64(b.N)*16 + 4096
	n := b.N
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < n; i++ {
			ctx, cancel := p.WithTimeout(e.Context(), time.Hour)
			_ = p.Sleep(ctx, time.Millisecond)
			cancel()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
