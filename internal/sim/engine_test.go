package sim

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := New(1)
	var woke time.Duration
	e.Spawn("sleeper", func(p *Proc) {
		p.SleepFor(5 * time.Second)
		woke = p.Elapsed()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", woke)
	}
	if e.Elapsed() != 5*time.Second {
		t.Fatalf("engine at %v, want 5s", e.Elapsed())
	}
}

func TestSleepOrderingIsDeterministic(t *testing.T) {
	run := func() []string {
		e := New(42)
		var order []string
		for _, spec := range []struct {
			name string
			d    time.Duration
		}{{"c", 3 * time.Second}, {"a", 1 * time.Second}, {"b", 2 * time.Second}, {"a2", 1 * time.Second}} {
			spec := spec
			e.Spawn(spec.name, func(p *Proc) {
				p.SleepFor(spec.d)
				order = append(order, spec.name)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	want := []string{"a", "a2", "b", "c"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("nondeterministic order: %v vs %v", first, second)
		}
	}
}

func TestZeroSleepYields(t *testing.T) {
	e := New(1)
	var trace []int
	e.Spawn("x", func(p *Proc) {
		trace = append(trace, 1)
		p.SleepFor(0)
		trace = append(trace, 3)
	})
	e.Spawn("y", func(p *Proc) {
		trace = append(trace, 2)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSleepCanceledByTimeout(t *testing.T) {
	e := New(1)
	var err error
	var at time.Duration
	e.Spawn("x", func(p *Proc) {
		ctx, cancel := p.WithTimeout(e.Context(), 2*time.Second)
		defer cancel()
		err = p.Sleep(ctx, time.Hour)
		at = p.Elapsed()
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if at != 2*time.Second {
		t.Fatalf("woke at %v, want 2s", at)
	}
}

func TestNestedTimeoutsInnerWinsWhenShorter(t *testing.T) {
	e := New(1)
	var inner, outer error
	e.Spawn("x", func(p *Proc) {
		octx, ocancel := p.WithTimeout(e.Context(), 10*time.Second)
		defer ocancel()
		ictx, icancel := p.WithTimeout(octx, time.Second)
		defer icancel()
		inner = p.Sleep(ictx, time.Hour)
		outer = octx.Err()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(inner, context.DeadlineExceeded) {
		t.Fatalf("inner err = %v", inner)
	}
	if outer != nil {
		t.Fatalf("outer canceled too early: %v", outer)
	}
}

func TestOuterTimeoutCancelsInnerWait(t *testing.T) {
	e := New(1)
	var err error
	var at time.Duration
	e.Spawn("x", func(p *Proc) {
		octx, ocancel := p.WithTimeout(e.Context(), time.Second)
		defer ocancel()
		ictx, icancel := p.WithTimeout(octx, time.Hour)
		defer icancel()
		err = p.Sleep(ictx, 30*time.Minute)
		at = p.Elapsed()
	})
	if e2 := e.Run(); e2 != nil {
		t.Fatal(e2)
	}
	if !errors.Is(err, context.DeadlineExceeded) || at != time.Second {
		t.Fatalf("err=%v at=%v, want DeadlineExceeded at 1s", err, at)
	}
}

func TestExplicitCancelWakesHang(t *testing.T) {
	e := New(1)
	ctx, cancel := e.WithCancel(e.Context())
	var err error
	e.Spawn("hanger", func(p *Proc) {
		err = p.Hang(ctx)
	})
	e.Schedule(7*time.Second, func() { cancel() })
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if e.Elapsed() != 7*time.Second {
		t.Fatalf("elapsed %v, want 7s", e.Elapsed())
	}
}

func TestResourceSerializesClients(t *testing.T) {
	e := New(1)
	r := NewResource(e, "server", 1)
	var finish []time.Duration
	for i := 0; i < 3; i++ {
		e.Spawn("client", func(p *Proc) {
			if err := r.Acquire(p, e.Context()); err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			p.SleepFor(10 * time.Second)
			r.Release()
			finish = append(finish, p.Elapsed())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceAcquireCanceled(t *testing.T) {
	e := New(1)
	r := NewResource(e, "server", 1)
	e.Spawn("holder", func(p *Proc) {
		if err := r.Acquire(p, e.Context()); err != nil {
			t.Errorf("holder acquire: %v", err)
		}
		p.SleepFor(time.Hour)
		r.Release()
	})
	var waitErr error
	e.Spawn("waiter", func(p *Proc) {
		ctx, cancel := p.WithTimeout(e.Context(), time.Minute)
		defer cancel()
		waitErr = r.Acquire(p, ctx)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(waitErr, context.DeadlineExceeded) {
		t.Fatalf("waitErr = %v", waitErr)
	}
	if r.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", r.Timeouts)
	}
}

func TestResourceAbandonedWaiterNotGranted(t *testing.T) {
	e := New(1)
	r := NewResource(e, "s", 1)
	var got []string
	e.Spawn("holder", func(p *Proc) {
		_ = r.Acquire(p, e.Context())
		p.SleepFor(10 * time.Second)
		r.Release()
	})
	e.Spawn("quitter", func(p *Proc) {
		ctx, cancel := p.WithTimeout(e.Context(), 2*time.Second)
		defer cancel()
		if err := r.Acquire(p, ctx); err == nil {
			got = append(got, "quitter")
			r.Release()
		}
	})
	e.Spawn("patient", func(p *Proc) {
		p.SleepFor(time.Second)
		if err := r.Acquire(p, e.Context()); err == nil {
			got = append(got, "patient")
			r.Release()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "patient" {
		t.Fatalf("got = %v, want [patient]", got)
	}
}

func TestParallelJoinsAllBranches(t *testing.T) {
	e := New(1)
	var errs []error
	var joined time.Duration
	e.Spawn("parent", func(p *Proc) {
		boom := errors.New("boom")
		errs = p.Parallel(e.Context(), 0, []func(context.Context, core.Runtime) error{
			func(ctx context.Context, rt core.Runtime) error { return nil },
			func(ctx context.Context, rt core.Runtime) error { return boom },
		})
		joined = p.Elapsed()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[1] == nil {
		t.Fatalf("errs = %v", errs)
	}
	if joined != 0 {
		t.Fatalf("joined at %v, want 0 (branches were instantaneous)", joined)
	}
}

func TestParallelBranchesRunConcurrently(t *testing.T) {
	e := New(1)
	var joined time.Duration
	sleepBranch := func(d time.Duration) func(context.Context, core.Runtime) error {
		return func(ctx context.Context, rt core.Runtime) error {
			return rt.Sleep(ctx, d)
		}
	}
	e.Spawn("parent", func(p *Proc) {
		errs := p.Parallel(e.Context(), 0, []func(context.Context, core.Runtime) error{
			sleepBranch(5 * time.Second),
			sleepBranch(3 * time.Second),
		})
		for _, err := range errs {
			if err != nil {
				t.Errorf("branch err: %v", err)
			}
		}
		joined = p.Elapsed()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if joined != 5*time.Second {
		t.Fatalf("joined at %v, want 5s (max of branches, not sum)", joined)
	}
}

func TestTimerCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.Schedule(time.Second, func() { fired = true })
	tm.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestSchedulePeriodicSampling(t *testing.T) {
	e := New(1)
	var samples []time.Duration
	var tick func()
	tick = func() {
		samples = append(samples, e.Elapsed())
		if e.Elapsed() < 5*time.Second {
			e.Schedule(time.Second, tick)
		}
	}
	e.Schedule(time.Second, tick)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("samples = %v, want 5 entries", samples)
	}
}

func TestRunDetectsLivelock(t *testing.T) {
	e := New(1)
	e.MaxEvents = 1000
	e.Spawn("spinner", func(p *Proc) {
		for {
			p.Yield()
		}
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected livelock error")
	}
}

func TestDeterministicRand(t *testing.T) {
	seq := func(seed int64) []float64 {
		e := New(seed)
		var out []float64
		e.Spawn("r", func(p *Proc) {
			for i := 0; i < 5; i++ {
				out = append(out, p.Rand())
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestNowTracksEpoch(t *testing.T) {
	e := New(1)
	e.Spawn("x", func(p *Proc) {
		p.SleepFor(90 * time.Second)
		if got := p.Now(); !got.Equal(Epoch.Add(90 * time.Second)) {
			t.Errorf("Now = %v", got)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any set of sleep durations, all processes wake exactly at
// their requested virtual times and the engine finishes at the maximum.
func TestQuickSleepSchedule(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		e := New(3)
		woke := make([]time.Duration, len(raw))
		var maxD time.Duration
		for i, r := range raw {
			i := i
			d := time.Duration(r) * time.Millisecond
			if d > maxD {
				maxD = d
			}
			e.Spawn("p", func(p *Proc) {
				p.SleepFor(d)
				woke[i] = p.Elapsed()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i, r := range raw {
			if woke[i] != time.Duration(r)*time.Millisecond {
				return false
			}
		}
		return e.Elapsed() == maxD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FIFO resource with capacity c and n identical jobs of
// duration d finishes at ceil(n/c)*d.
func TestQuickResourcePipelining(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw%20) + 1
		c := int(cRaw%5) + 1
		const d = 3 * time.Second
		e := New(5)
		r := NewResource(e, "r", c)
		for i := 0; i < n; i++ {
			e.Spawn("job", func(p *Proc) {
				if err := r.Acquire(p, e.Context()); err != nil {
					return
				}
				p.SleepFor(d)
				r.Release()
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		batches := (n + c - 1) / c
		return e.Elapsed() == time.Duration(batches)*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelLimitBoundsConcurrency(t *testing.T) {
	e := New(1)
	var joined time.Duration
	inFlight, maxInFlight := 0, 0
	branch := func(ctx context.Context, rt core.Runtime) error {
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		err := rt.Sleep(ctx, 10*time.Second)
		inFlight--
		return err
	}
	e.Spawn("parent", func(p *Proc) {
		fns := make([]func(context.Context, core.Runtime) error, 6)
		for i := range fns {
			fns[i] = branch
		}
		errs := p.Parallel(e.Context(), 2, fns)
		for _, err := range errs {
			if err != nil {
				t.Errorf("branch: %v", err)
			}
		}
		joined = p.Elapsed()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInFlight != 2 {
		t.Fatalf("maxInFlight = %d, want 2", maxInFlight)
	}
	// 6 branches, 2 at a time, 10s each => 30s.
	if joined != 30*time.Second {
		t.Fatalf("joined at %v, want 30s", joined)
	}
}

func TestParallelLimitLargerThanBranches(t *testing.T) {
	e := New(1)
	e.Spawn("parent", func(p *Proc) {
		errs := p.Parallel(e.Context(), 99, []func(context.Context, core.Runtime) error{
			func(ctx context.Context, rt core.Runtime) error { return rt.Sleep(ctx, time.Second) },
			func(ctx context.Context, rt core.Runtime) error { return rt.Sleep(ctx, time.Second) },
		})
		for _, err := range errs {
			if err != nil {
				t.Errorf("branch: %v", err)
			}
		}
		if p.Elapsed() != time.Second {
			t.Errorf("elapsed = %v, want 1s (fully parallel)", p.Elapsed())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLargePopulationDeterminism(t *testing.T) {
	// A thousand processes with interleaved sleeps, resource contention,
	// and timeouts must produce the identical event count and final
	// clock on every run with the same seed.
	run := func() (int64, time.Duration) {
		e := New(99)
		r := NewResource(e, "shared", 7)
		ctx, cancel := e.WithTimeout(e.Context(), 5*time.Minute)
		defer cancel()
		for i := 0; i < 1000; i++ {
			e.Spawn("p", func(p *Proc) {
				for ctx.Err() == nil {
					d := time.Duration(1+int(p.Rand()*2000)) * time.Millisecond
					if p.Sleep(ctx, d) != nil {
						return
					}
					actx, acancel := p.WithTimeout(ctx, 10*time.Second)
					if r.Acquire(p, actx) == nil {
						_ = p.Sleep(ctx, 500*time.Millisecond)
						r.Release()
					}
					acancel()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Events(), e.Elapsed()
	}
	ev1, t1 := run()
	ev2, t2 := run()
	if ev1 != ev2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", ev1, t1, ev2, t2)
	}
	if ev1 < 100000 {
		t.Fatalf("events = %d, stress too small", ev1)
	}
}
