// Package sim implements a deterministic discrete-event simulation engine
// with cooperative, goroutine-backed processes.
//
// The engine advances a virtual clock and runs exactly one process at a
// time, so simulation code needs no locking and every run with the same
// seed is bit-for-bit reproducible. Processes are ordinary Go functions
// that block by calling engine primitives (Sleep, Acquire, Park); while a
// process runs, the engine is parked, and vice versa, so engine state is
// protected by the token handoff rather than by mutexes.
//
// The package exists so that the retry/backoff logic in internal/core can
// be exercised over hours of virtual time in milliseconds of real time,
// with hundreds of concurrent clients, exactly as the paper's experiments
// require. A real-time adapter in internal/core runs the same logic
// against the wall clock.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Epoch is the virtual time origin: all virtual timestamps are offsets
// from this instant. The particular date is arbitrary (it is the month
// HPDC 12 took place) but fixed so traces are stable across runs.
var Epoch = time.Date(2003, time.June, 22, 0, 0, 0, 0, time.UTC)

// Engine is a single-threaded discrete-event simulator. Create one with
// New, add processes with Spawn, then call Run. Engine methods must only
// be called either before Run starts, from inside a process, or from a
// timer callback; they are not safe for use from arbitrary goroutines.
type Engine struct {
	now    time.Duration // virtual time since Epoch
	seq    int64         // tie-breaker for timers scheduled at the same instant
	timers timerHeap
	runq   []*Proc // FIFO of runnable processes
	live   int     // processes that have not exited

	yielded chan struct{} // process -> engine token handoff
	current *Proc

	rng    *rand.Rand
	events int64
	// MaxEvents bounds the total number of scheduling steps as a guard
	// against accidental infinite simulations. Zero means the default.
	MaxEvents int64

	root *Ctx
}

const defaultMaxEvents = 200_000_000

// New returns an engine whose random source is seeded with seed.
// Identical seeds yield identical simulations.
func New(seed int64) *Engine {
	e := &Engine{
		yielded: make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
	e.root = newCtx(e, nil)
	return e
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Time { return Epoch.Add(e.now) }

// Elapsed reports virtual time elapsed since the start of the run.
func (e *Engine) Elapsed() time.Duration { return e.now }

// Events reports how many scheduling steps (process resumptions and timer
// firings) the engine has executed.
func (e *Engine) Events() int64 { return e.events }

// Rand returns the engine's deterministic random source. It must only be
// used under the engine token (from processes or timer callbacks).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Context returns the root simulation context. It is canceled only when
// explicitly requested, e.g. to shut down an experiment window.
func (e *Engine) Context() *Ctx { return e.root }

// Spawn creates a new process executing fn and schedules it to run. It
// may be called before Run or from inside a running process or timer.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
	}
	e.live++
	go func() {
		<-p.resume
		fn(p)
		p.exit()
	}()
	e.runq = append(e.runq, p)
	return p
}

// Schedule arranges for fn to run at virtual time now+d under the engine
// token. It returns a handle that can cancel the callback before it fires.
func (e *Engine) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	t := &Timer{at: e.now + d, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.timers, t)
	return t
}

// Run executes the simulation until no process is runnable and no timer is
// pending (quiescence), or until MaxEvents steps have been taken, in which
// case it returns an error. Processes parked forever (for example waiting
// on a resource that is never released) do not keep Run alive; cancel
// their contexts to unwind them.
func (e *Engine) Run() error {
	max := e.MaxEvents
	if max <= 0 {
		max = defaultMaxEvents
	}
	for {
		e.events++
		if e.events > max {
			return fmt.Errorf("sim: exceeded %d events at t=%v (runnable=%d timers=%d): likely livelock", max, e.now, len(e.runq), e.timers.Len())
		}
		switch {
		case len(e.runq) > 0:
			p := e.runq[0]
			copy(e.runq, e.runq[1:])
			e.runq = e.runq[:len(e.runq)-1]
			e.current = p
			p.resume <- struct{}{}
			<-e.yielded
			e.current = nil
		case e.timers.Len() > 0:
			t := heap.Pop(&e.timers).(*Timer)
			if t.canceled {
				continue
			}
			if t.at > e.now {
				e.now = t.at
			}
			t.fn()
		default:
			return nil
		}
	}
}

// Quiesced reports whether the engine has neither runnable processes nor
// pending timers.
func (e *Engine) Quiesced() bool { return len(e.runq) == 0 && e.timers.Len() == 0 }

// Live reports the number of processes that have been spawned and have
// not yet returned.
func (e *Engine) Live() int { return e.live }

// Timer is a scheduled callback. See Engine.Schedule.
type Timer struct {
	at       time.Duration
	seq      int64
	fn       func()
	canceled bool
	index    int
}

// Cancel prevents the timer from firing. Canceling an already-fired or
// already-canceled timer is a no-op.
func (t *Timer) Cancel() { t.canceled = true }

// When reports the virtual time at which the timer fires.
func (t *Timer) When() time.Duration { return t.at }

type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
