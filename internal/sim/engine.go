// Package sim implements a deterministic discrete-event simulation engine
// with cooperative, goroutine-backed processes.
//
// The engine advances a virtual clock and runs exactly one process at a
// time, so simulation code needs no locking and every run with the same
// seed is bit-for-bit reproducible. Processes are ordinary Go functions
// that block by calling engine primitives (Sleep, Acquire, Park); while a
// process runs, the engine is parked, and vice versa, so engine state is
// protected by the token handoff rather than by mutexes.
//
// The package exists so that the retry/backoff logic in internal/core can
// be exercised over hours of virtual time in milliseconds of real time,
// with hundreds of concurrent clients, exactly as the paper's experiments
// require. A real-time adapter in internal/core runs the same logic
// against the wall clock.
//
// The scheduler's two hot structures are tuned for sweep workloads
// (internal/expt runs thousands of cells, each millions of steps): the
// run queue is a ring buffer with an O(1) pop, and timers come from a
// free list with generation-checked handles, so the schedule/cancel
// churn of timeout-guarded work neither allocates per operation nor
// grows the timer heap without bound (dead entries are compacted away
// once they are the majority).
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
)

// Epoch is the virtual time origin: all virtual timestamps are offsets
// from this instant. It aliases core.Epoch so every backend shares the
// same origin and traces are directly comparable.
var Epoch = core.Epoch

// Engine is a single-threaded discrete-event simulator. Create one with
// New, add processes with Spawn, then call Run. Engine methods must only
// be called either before Run starts, from inside a process, or from a
// timer callback; they are not safe for use from arbitrary goroutines.
type Engine struct {
	now    time.Duration // virtual time since Epoch
	seq    int64         // tie-breaker for timers scheduled at the same instant
	timers timerHeap
	dead   int          // canceled timers still sitting in the heap
	free   []*timerNode // recycled timer nodes
	runq   []*Proc      // ring buffer of runnable processes
	rqHead int          // index of the front of the ring
	rqLen  int          // live entries in the ring
	live   int          // processes that have not exited

	yielded chan struct{} // process -> engine token handoff
	current *Proc

	rng         *rand.Rand
	events      int64
	compactions int64 // canceled-timer heap compactions performed
	// MaxEvents bounds the total number of scheduling steps as a guard
	// against accidental infinite simulations. Zero means the default.
	MaxEvents int64

	root *Ctx
}

const defaultMaxEvents = 200_000_000

// New returns an engine whose random source is seeded with seed.
// Identical seeds yield identical simulations.
func New(seed int64) *Engine {
	e := &Engine{
		yielded: make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
	e.root = newCtx(e, nil)
	return e
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Time { return Epoch.Add(e.now) }

// Elapsed reports virtual time elapsed since the start of the run.
func (e *Engine) Elapsed() time.Duration { return e.now }

// Events reports how many scheduling steps (process resumptions and timer
// firings) the engine has executed.
func (e *Engine) Events() int64 { return e.events }

// RunQueueLen reports the number of currently runnable processes
// (observability; must be called under the engine token).
func (e *Engine) RunQueueLen() int { return e.rqLen }

// TimerHeapLen reports the number of heap entries, including canceled
// entries not yet compacted away (observability; engine token).
func (e *Engine) TimerHeapLen() int { return e.timers.Len() }

// Compactions reports how many canceled-timer heap compactions the
// engine has performed (observability; engine token).
func (e *Engine) Compactions() int64 { return e.compactions }

// Rand returns the engine's deterministic random source. It must only be
// used under the engine token (from processes or timer callbacks).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Context returns the root simulation context. It is canceled only when
// explicitly requested, e.g. to shut down an experiment window.
func (e *Engine) Context() *Ctx { return e.root }

// pushRun appends a process to the back of the run-queue ring, growing
// the ring when full.
func (e *Engine) pushRun(p *Proc) {
	if e.rqLen == len(e.runq) {
		grown := make([]*Proc, max(16, 2*len(e.runq)))
		for i := 0; i < e.rqLen; i++ {
			grown[i] = e.runq[(e.rqHead+i)%len(e.runq)]
		}
		e.runq = grown
		e.rqHead = 0
	}
	e.runq[(e.rqHead+e.rqLen)%len(e.runq)] = p
	e.rqLen++
}

// popRun removes and returns the front of the run-queue ring.
func (e *Engine) popRun() *Proc {
	p := e.runq[e.rqHead]
	e.runq[e.rqHead] = nil
	e.rqHead = (e.rqHead + 1) % len(e.runq)
	e.rqLen--
	return p
}

// Spawn creates a new process executing fn and schedules it to run. It
// may be called before Run or from inside a running process or timer.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
	}
	e.live++
	go func() {
		<-p.resume
		fn(p)
		p.exit()
	}()
	e.pushRun(p)
	return p
}

// Schedule arranges for fn to run at virtual time now+d under the engine
// token. It returns a handle that can cancel the callback before it
// fires. The handle is a value: copies are equivalent, and the zero
// Timer is valid and inert.
func (e *Engine) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	n := e.allocTimer()
	n.at = e.now + d
	n.seq = e.seq
	n.fn = fn
	e.seq++
	heap.Push(&e.timers, n)
	return Timer{eng: e, n: n, gen: n.gen, at: n.at}
}

// allocTimer takes a node from the free list, or mints one.
func (e *Engine) allocTimer() *timerNode {
	if k := len(e.free); k > 0 {
		n := e.free[k-1]
		e.free[k-1] = nil
		e.free = e.free[:k-1]
		return n
	}
	return &timerNode{index: -1}
}

// recycleTimer returns a popped node to the free list. Bumping the
// generation invalidates every outstanding handle to the old tenure, so
// a late Cancel on a fired timer can never hit the node's next user.
func (e *Engine) recycleTimer(n *timerNode) {
	n.gen++
	n.fn = nil
	n.canceled = false
	e.free = append(e.free, n)
}

// compactTimers rebuilds the heap without its canceled entries. Called
// when the dead outnumber the live, so total compaction work stays
// linear in the number of timers ever canceled.
func (e *Engine) compactTimers() {
	live := e.timers[:0]
	for _, n := range e.timers {
		if n.canceled {
			e.recycleTimer(n)
		} else {
			live = append(live, n)
		}
	}
	for i := len(live); i < len(e.timers); i++ {
		e.timers[i] = nil
	}
	e.timers = live
	for i, n := range e.timers {
		n.index = i
	}
	heap.Init(&e.timers)
	e.dead = 0
	e.compactions++
}

// compactThreshold is the heap size below which canceled entries are
// left in place: tiny heaps pop dead entries soon enough anyway, and
// skipping them avoids compaction thrash in short simulations.
const compactThreshold = 64

// Run executes the simulation until no process is runnable and no timer is
// pending (quiescence), or until MaxEvents steps have been taken, in which
// case it returns an error. Processes parked forever (for example waiting
// on a resource that is never released) do not keep Run alive; cancel
// their contexts to unwind them.
func (e *Engine) Run() error {
	max := e.MaxEvents
	if max <= 0 {
		max = defaultMaxEvents
	}
	for {
		e.events++
		if e.events > max {
			return fmt.Errorf("sim: exceeded %d events at t=%v (runnable=%d timers=%d): likely livelock", max, e.now, e.rqLen, e.timers.Len())
		}
		switch {
		case e.rqLen > 0:
			p := e.popRun()
			e.current = p
			p.resume <- struct{}{}
			<-e.yielded
			e.current = nil
		case e.timers.Len() > 0:
			n := heap.Pop(&e.timers).(*timerNode)
			if n.canceled {
				e.dead--
				e.recycleTimer(n)
				continue
			}
			if n.at > e.now {
				e.now = n.at
			}
			fn := n.fn
			e.recycleTimer(n)
			fn()
		default:
			return nil
		}
	}
}

// Quiesced reports whether the engine has neither runnable processes nor
// pending timers.
func (e *Engine) Quiesced() bool { return e.rqLen == 0 && e.timers.Len() == 0 }

// Live reports the number of processes that have been spawned and have
// not yet returned.
func (e *Engine) Live() int { return e.live }

// Timer is a cancelable handle to a callback scheduled with
// Engine.Schedule. It is a value: copying it is fine, and the zero
// Timer is inert (Cancel does nothing, Scheduled reports false).
//
// The node behind a handle is recycled after the callback fires or the
// cancellation is collected, so handles carry the node's generation:
// operations on a handle whose tenure has ended are no-ops, never
// actions on the node's next occupant.
type Timer struct {
	eng *Engine
	n   *timerNode
	gen uint32
	at  time.Duration
}

// Cancel prevents the timer from firing. Canceling an already-fired,
// already-canceled, or zero Timer is a no-op.
func (t Timer) Cancel() {
	n := t.n
	if n == nil || n.gen != t.gen || n.canceled {
		return
	}
	n.canceled = true
	if n.index < 0 {
		// Already popped: the callback is firing right now and is
		// canceling itself; nothing remains in the heap to collect.
		return
	}
	e := t.eng
	e.dead++
	if e.dead*2 > len(e.timers) && len(e.timers) >= compactThreshold {
		e.compactTimers()
	}
}

// When reports the virtual time at which the timer fires (fired, for
// handles whose callback already ran).
func (t Timer) When() time.Duration { return t.at }

// Scheduled reports whether the handle was ever armed: false only for
// the zero Timer. It does not track firing; use it to distinguish "no
// timer" from "a timer exists" in structs that arm one conditionally.
func (t Timer) Scheduled() bool { return t.n != nil }

// timerNode is the engine-owned record behind a Timer handle.
type timerNode struct {
	at       time.Duration
	seq      int64
	fn       func()
	canceled bool
	index    int    // position in the heap; -1 once popped
	gen      uint32 // tenure counter; bumped on recycle
}

type timerHeap []*timerNode

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	n := x.(*timerNode)
	n.index = len(*h)
	*h = append(*h, n)
}
func (h *timerHeap) Pop() any {
	old := *h
	k := len(old)
	n := old[k-1]
	old[k-1] = nil
	n.index = -1
	*h = old[:k-1]
	return n
}
