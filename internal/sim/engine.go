// Package sim implements a deterministic discrete-event simulation engine
// with cooperative, goroutine-backed processes.
//
// The engine advances a virtual clock and runs exactly one process at a
// time, so simulation code needs no locking and every run with the same
// seed is bit-for-bit reproducible. Processes are ordinary Go functions
// that block by calling engine primitives (Sleep, Acquire, Park); while a
// process runs, the engine is parked, and vice versa, so engine state is
// protected by the token handoff rather than by mutexes.
//
// The package exists so that the retry/backoff logic in internal/core can
// be exercised over hours of virtual time in milliseconds of real time,
// with up to a million concurrent clients, exactly as the paper's
// experiments require. A real-time adapter in internal/core runs the same
// logic against the wall clock.
//
// The scheduler's hot structures are tuned for sweep workloads
// (internal/expt runs thousands of cells, each millions of steps), and
// in particular for the schedule-then-cancel churn of backoff machines:
// timers live in a hierarchical timer wheel (see wheel.go) with O(1)
// insert and O(1) cancel, nodes come from a block arena with
// generation-checked handles, processes are recycled through an arena of
// their own, and the run queue is a power-of-two ring with mask indexing.
// None of it allocates per operation in steady state.
//
// SetShards optionally partitions the timer and run structures; the
// shard merge reconstructs the exact global order, so sharded runs are
// byte-identical to unsharded ones (see Run).
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
)

// Epoch is the virtual time origin: all virtual timestamps are offsets
// from this instant. It aliases core.Epoch so every backend shares the
// same origin and traces are directly comparable.
var Epoch = core.Epoch

// shard is one partition of the engine's scheduling state: a timer
// queue (wheel + near heap) and a run-queue ring. An unsharded engine
// is simply an engine with one shard.
type shard struct {
	q      timerQueue
	runq   []*Proc // power-of-two ring of runnable processes
	rqHead int     // index of the front of the ring
	rqLen  int     // live entries in the ring
}

// Engine is a single-threaded discrete-event simulator. Create one with
// New, add processes with Spawn, then call Run. Engine methods must only
// be called either before Run starts, from inside a process, or from a
// timer callback; they are not safe for use from arbitrary goroutines.
type Engine struct {
	now    time.Duration // virtual time since Epoch
	seq    int64         // global tie-breaker for timers at the same instant
	runSeq int64         // global FIFO order of run-queue admissions

	shards     []shard
	schedShard int // shard context of the currently running proc/timer
	runnable   int // total runnable processes across shards
	live       int // processes that have not exited

	// Process arena: Proc records are minted in blocks (dense, indexable
	// by id) and recycled through a free list when they exit, so churny
	// workloads reuse records and their resume channels.
	procBlocks [][]Proc
	procFree   []*Proc
	nextProcID int32

	yielded chan struct{} // process -> engine token handoff
	current *Proc

	rng    *rand.Rand
	events int64
	// MaxEvents bounds the total number of scheduling steps as a guard
	// against accidental infinite simulations. Zero means the default.
	MaxEvents int64

	root *Ctx
}

const defaultMaxEvents = 200_000_000

// New returns an engine whose random source is seeded with seed.
// Identical seeds yield identical simulations.
func New(seed int64) *Engine {
	e := &Engine{
		shards:  make([]shard, 1),
		yielded: make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
	e.root = newCtx(e, nil)
	return e
}

// SetShards partitions the engine's timers and runnables across n
// scheduling shards (n must be a power of two; 1 restores the default).
// It may only be called on a fresh engine, before anything is scheduled.
// Sharding is an internal-structure option only: the merge at shard
// boundaries reconstructs the exact global (deadline, seq) order, so a
// sharded run is byte-identical to an unsharded one on the same seed.
func (e *Engine) SetShards(n int) {
	if n < 1 || n&(n-1) != 0 {
		panic(fmt.Sprintf("sim: SetShards(%d): shard count must be a power of two >= 1", n))
	}
	if e.seq != 0 || e.runSeq != 0 || e.events != 0 || e.live != 0 || e.runnable != 0 {
		panic("sim: SetShards on a used engine")
	}
	e.shards = make([]shard, n)
}

// Shards reports the engine's shard count (1 unless SetShards raised it).
func (e *Engine) Shards() int { return len(e.shards) }

// Now reports the current virtual time.
func (e *Engine) Now() time.Time { return Epoch.Add(e.now) }

// Elapsed reports virtual time elapsed since the start of the run.
func (e *Engine) Elapsed() time.Duration { return e.now }

// Events reports how many scheduling steps (process resumptions and timer
// firings) the engine has executed.
func (e *Engine) Events() int64 { return e.events }

// RunQueueLen reports the number of currently runnable processes
// (observability; must be called under the engine token).
func (e *Engine) RunQueueLen() int { return e.runnable }

// TimerHeapLen reports the number of pending timer entries across all
// shards — wheel, overflow, and near-heap nodes, including canceled
// near entries not yet compacted away (observability; engine token).
func (e *Engine) TimerHeapLen() int {
	n := 0
	for i := range e.shards {
		n += e.shards[i].q.pending()
	}
	return n
}

// Compactions reports how many canceled-timer near-heap compactions the
// engine has performed (observability; engine token).
func (e *Engine) Compactions() int64 {
	var n int64
	for i := range e.shards {
		n += e.shards[i].q.compactions
	}
	return n
}

// WheelCascades reports how many timer nodes level cascades have
// re-dispersed toward shallower wheel levels (observability; engine
// token). A zero value on a long run means every timer fit the innermost
// level — the wheel was effectively a flat calendar.
func (e *Engine) WheelCascades() int64 {
	var n int64
	for i := range e.shards {
		n += e.shards[i].q.cascades
	}
	return n
}

// MaxSlotOccupancy reports the high-water mark of timer nodes sharing a
// single wheel slot, across all shards (observability; engine token).
// It bounds the worst-case burst a single slot drain hands the near heap.
func (e *Engine) MaxSlotOccupancy() int {
	var m int32
	for i := range e.shards {
		if c := e.shards[i].q.maxSlot; c > m {
			m = c
		}
	}
	return int(m)
}

// TimerOverflowLen reports the number of timers currently parked beyond
// the wheel horizon (~52 virtual days), across all shards
// (observability; engine token).
func (e *Engine) TimerOverflowLen() int {
	n := 0
	for i := range e.shards {
		n += e.shards[i].q.overflowLen
	}
	return n
}

// Rand returns the engine's deterministic random source. It must only be
// used under the engine token (from processes or timer callbacks).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Context returns the root simulation context. It is canceled only when
// explicitly requested, e.g. to shut down an experiment window.
func (e *Engine) Context() *Ctx { return e.root }

// pushRun appends a process to the back of its shard's run-queue ring,
// growing the ring when full. Rings are power-of-two sized so the ring
// walk is a mask, not a division. The global admission order is stamped
// on the process, which is what lets a sharded engine reconstruct the
// exact unsharded FIFO at pop time.
func (e *Engine) pushRun(p *Proc) {
	s := &e.shards[p.shard]
	if s.rqLen == len(s.runq) {
		grown := make([]*Proc, max(16, 2*len(s.runq)))
		mask := len(s.runq) - 1
		for i := 0; i < s.rqLen; i++ {
			grown[i] = s.runq[(s.rqHead+i)&mask]
		}
		s.runq = grown
		s.rqHead = 0
	}
	s.runq[(s.rqHead+s.rqLen)&(len(s.runq)-1)] = p
	s.rqLen++
	p.runSeq = e.runSeq
	e.runSeq++
	e.runnable++
}

// popRun removes and returns the globally oldest runnable process: each
// shard's ring is FIFO, so the oldest is at the head of one of the
// rings, found by comparing head runSeq stamps.
func (e *Engine) popRun() *Proc {
	if len(e.shards) == 1 {
		return e.shards[0].popRunLocal()
	}
	best := -1
	var bestSeq int64
	for i := range e.shards {
		s := &e.shards[i]
		if s.rqLen == 0 {
			continue
		}
		if seq := s.runq[s.rqHead].runSeq; best < 0 || seq < bestSeq {
			best, bestSeq = i, seq
		}
	}
	return e.shards[best].popRunLocal()
}

func (s *shard) popRunLocal() *Proc {
	p := s.runq[s.rqHead]
	s.runq[s.rqHead] = nil
	s.rqHead = (s.rqHead + 1) & (len(s.runq) - 1)
	s.rqLen--
	return p
}

// procBlock is the arena granularity for Proc records.
const procBlock = 256

// allocProc takes a recycled Proc from the free list, minting a fresh
// block when it runs dry. Blocks are dense and indexable: the record
// with id i is procBlocks[i/procBlock][i%procBlock], forever.
func (e *Engine) allocProc() *Proc {
	if k := len(e.procFree); k > 0 {
		p := e.procFree[k-1]
		e.procFree[k-1] = nil
		e.procFree = e.procFree[:k-1]
		return p
	}
	blk := make([]Proc, procBlock)
	for i := range blk {
		blk[i].eng = e
		blk[i].id = e.nextProcID
		e.nextProcID++
	}
	e.procBlocks = append(e.procBlocks, blk)
	for i := procBlock - 1; i >= 1; i-- {
		e.procFree = append(e.procFree, &blk[i])
	}
	return &blk[0]
}

// procByID returns the arena record with the given id, live or free
// (diagnostics and tests; engine token).
func (e *Engine) procByID(id int32) *Proc {
	return &e.procBlocks[id/procBlock][id%procBlock]
}

// recycleProc returns an exited process's record to the free list. The
// resume channel and cached wakeup closures survive recycling; the
// goroutine of the previous tenure has fully exited before the engine
// regains the token, so the channel cannot receive a stale send.
func (e *Engine) recycleProc(p *Proc) {
	p.name = ""
	p.parked = false
	p.wakeErr = nil
	p.done = false
	p.tracer = nil
	p.sleepFired = false
	p.sleepTimer = Timer{}
	e.procFree = append(e.procFree, p)
}

// Spawn creates a new process executing fn and schedules it to run. It
// may be called before Run or from inside a running process or timer.
// The process runs on the spawner's scheduling shard.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := e.allocProc()
	p.name = name
	p.shard = int32(e.schedShard)
	if p.resume == nil {
		p.resume = make(chan struct{})
	}
	e.live++
	go func() {
		<-p.resume
		fn(p)
		p.exit()
	}()
	e.pushRun(p)
	return p
}

// Schedule arranges for fn to run at virtual time now+d under the engine
// token. It returns a handle that can cancel the callback before it
// fires. The handle is a value: copies are equivalent, and the zero
// Timer is valid and inert. The timer lives on the scheduler's current
// shard, and callbacks it fires inherit that shard.
func (e *Engine) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	q := &e.shards[e.schedShard].q
	n := q.alloc()
	n.at = e.now + d
	n.seq = e.seq
	n.fn = fn
	n.shard = int32(e.schedShard)
	e.seq++
	q.insert(n)
	return Timer{eng: e, n: n, gen: n.gen, at: n.at}
}

// ScheduleArg is Schedule for mass-client workloads: fn is a shared,
// usually package-level function and arg the per-client state, so a
// population of millions of timer-driven clients schedules without a
// closure allocation per event. Semantics are otherwise identical to
// Schedule.
func (e *Engine) ScheduleArg(d time.Duration, fn func(arg any), arg any) Timer {
	return e.scheduleArgOn(e.schedShard, d, fn, arg)
}

// ScheduleArgOn is ScheduleArg pinned to a scheduling shard: the timer
// lives in shard's structures, and callbacks it schedules inherit that
// shard. With an unsharded engine (or shard 0) it is exactly
// ScheduleArg. The shard index must be in [0, Shards()).
func (e *Engine) ScheduleArgOn(shard int, d time.Duration, fn func(arg any), arg any) Timer {
	if shard < 0 || shard >= len(e.shards) {
		panic(fmt.Sprintf("sim: ScheduleArgOn(%d): shard out of range [0,%d)", shard, len(e.shards)))
	}
	return e.scheduleArgOn(shard, d, fn, arg)
}

func (e *Engine) scheduleArgOn(shard int, d time.Duration, fn func(arg any), arg any) Timer {
	if d < 0 {
		d = 0
	}
	q := &e.shards[shard].q
	n := q.alloc()
	n.at = e.now + d
	n.seq = e.seq
	n.afn = fn
	n.arg = arg
	n.shard = int32(shard)
	e.seq++
	q.insert(n)
	return Timer{eng: e, n: n, gen: n.gen, at: n.at}
}

// minTimer peeks the earliest pending timer across shards. Within a
// shard the queue yields exact (at, seq) order; across shards the
// minimum of the heads is the global minimum, because seq is stamped
// globally at schedule time.
func (e *Engine) minTimer() (*timerNode, int) {
	if len(e.shards) == 1 {
		return e.shards[0].q.peek(), 0
	}
	var best *timerNode
	bi := 0
	for i := range e.shards {
		n := e.shards[i].q.peek()
		if n == nil {
			continue
		}
		if best == nil || n.at < best.at || (n.at == best.at && n.seq < best.seq) {
			best, bi = n, i
		}
	}
	return best, bi
}

// Run executes the simulation until no process is runnable and no timer is
// pending (quiescence), or until MaxEvents steps have been taken, in which
// case it returns an error. Processes parked forever (for example waiting
// on a resource that is never released) do not keep Run alive; cancel
// their contexts to unwind them.
//
// Determinism across shard counts: runnables drain before timers, in
// global runSeq order; timers fire in global (at, seq) order. Both
// orders are independent of which shard holds an entry, so the event
// sequence — and therefore every byte of output — is identical for any
// SetShards value on the same seed.
func (e *Engine) Run() error {
	maxEv := e.MaxEvents
	if maxEv <= 0 {
		maxEv = defaultMaxEvents
	}
	for {
		e.events++
		if e.events > maxEv {
			return fmt.Errorf("sim: exceeded %d events at t=%v (runnable=%d timers=%d): likely livelock", maxEv, e.now, e.runnable, e.TimerHeapLen())
		}
		if e.runnable > 0 {
			p := e.popRun()
			e.runnable--
			e.schedShard = int(p.shard)
			e.current = p
			p.resume <- struct{}{}
			<-e.yielded
			e.current = nil
			if p.done {
				e.recycleProc(p)
			}
			continue
		}
		if n, sh := e.minTimer(); n != nil {
			q := &e.shards[sh].q
			q.pop()
			if n.at > e.now {
				e.now = n.at
			}
			e.schedShard = sh
			if n.afn != nil {
				afn, arg := n.afn, n.arg
				q.recycle(n)
				afn(arg)
			} else {
				fn := n.fn
				q.recycle(n)
				fn()
			}
			continue
		}
		return nil
	}
}

// Quiesced reports whether the engine has neither runnable processes nor
// pending timers.
func (e *Engine) Quiesced() bool { return e.runnable == 0 && e.TimerHeapLen() == 0 }

// Live reports the number of processes that have been spawned and have
// not yet returned.
func (e *Engine) Live() int { return e.live }

// Timer is a cancelable handle to a callback scheduled with
// Engine.Schedule. It is a value: copying it is fine, and the zero
// Timer is inert (Cancel does nothing, Scheduled reports false).
//
// The node behind a handle is recycled after the callback fires or the
// cancellation is collected, so handles carry the node's generation:
// operations on a handle whose tenure has ended are no-ops, never
// actions on the node's next occupant.
type Timer struct {
	eng *Engine
	n   *timerNode
	gen uint32
	at  time.Duration
}

// Cancel prevents the timer from firing. Canceling an already-fired,
// already-canceled, or zero Timer is a no-op. Wheel and overflow
// residents are unlinked and recycled in O(1); near-heap residents are
// marked and collected lazily.
func (t Timer) Cancel() {
	n := t.n
	if n == nil || n.gen != t.gen || n.canceled {
		return
	}
	n.canceled = true
	t.eng.shards[n.shard].q.cancel(n)
}

// When reports the virtual time at which the timer fires (fired, for
// handles whose callback already ran).
func (t Timer) When() time.Duration { return t.at }

// Scheduled reports whether the handle was ever armed: false only for
// the zero Timer. It does not track firing; use it to distinguish "no
// timer" from "a timer exists" in structs that arm one conditionally.
func (t Timer) Scheduled() bool { return t.n != nil }

// timerNode is the engine-owned record behind a Timer handle. It lives
// either in a shard's near heap (index = heap position) or on a wheel
// slot / overflow doubly-linked list (prev/next); loc says which.
type timerNode struct {
	at       time.Duration
	seq      int64
	fn       func()        // closure form (Schedule)
	afn      func(arg any) // shared-function form (ScheduleArg)
	arg      any
	canceled bool
	index    int // position in the near heap; -1 when not in it

	prev, next *timerNode // wheel slot / overflow list links
	loc        int8       // locNear, locNone, locOverflow, or wheel level
	slot       uint8      // slot index when loc is a wheel level
	shard      int32      // owning shard
	gen        uint32     // tenure counter; bumped on recycle
}

// timerHeap is the exact-order heap used for near (due) timers; see
// wheel.go for how it combines with the wheel levels.
type timerHeap []*timerNode

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	n := x.(*timerNode)
	n.index = len(*h)
	*h = append(*h, n)
}
func (h *timerHeap) Pop() any {
	old := *h
	k := len(old)
	n := old[k-1]
	old[k-1] = nil
	n.index = -1
	*h = old[:k-1]
	return n
}
