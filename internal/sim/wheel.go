package sim

import (
	"container/heap"
	"math"
	"math/bits"
	"time"
)

// This file implements the engine's timer structure: a hierarchical
// timer wheel in front of a small exact-order heap.
//
// The paper's disciplines are backoff machines, so the engine's timer
// workload is dominated by schedule-then-cancel: every guarded attempt
// arms a deadline it almost always cancels. A binary heap pays O(log n)
// to admit each of those doomed entries and leaves the canceled ones
// inside until compaction. The wheel pays O(1) to admit and O(1) to
// remove: a node sits in a doubly-linked slot list, so cancellation is
// an unlink, and the 10^6-timer regime the scale figure runs stops
// rippling a million-entry heap on every operation.
//
// Geometry: virtual time is bucketed into ticks of 2^20 ns (~1.05 ms),
// and the wheel has 4 levels of 256 slots, level L spanning 256^(L+1)
// ticks — about 52 days of virtual time in total. Deadlines beyond the
// horizon go to an overflow list (rebased into the wheel if the
// simulation ever gets near them).
//
// Exactness: ticks are coarser than timestamps, and the engine's
// contract is exact (at, seq) firing order. The wheel therefore never
// fires a node directly; it drains due slots into the "near" heap,
// which holds only nodes with tick(at) <= cur and pops them in exact
// order. Every node in the wheel has tick(at) > cur, hence a strictly
// later timestamp than anything in the near heap, so the near heap's
// minimum is the queue's minimum. The heap stays small — one tick's
// worth of timers plus overdue inserts — so its log factor is paid on
// a handful of entries, not the whole population.
//
// cur is the queue's wheel position: the last tick whose nodes have
// been moved to the near heap. It advances lazily, skipping empty
// regions via per-level occupancy bitmaps, and may run ahead of the
// engine's clock when this shard's next timer is far away; inserts that
// land at or before cur (overdue from this queue's point of view) go
// straight to the near heap, preserving exact order.
const (
	tickShift   = 20 // one tick = 2^20 ns ≈ 1.05 ms of virtual time
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256 slots per level
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	wheelWords  = wheelSlots / 64 // occupancy bitmap words per level
)

// timerNode location markers (timerNode.loc). Values 0..wheelLevels-1
// mean "in that wheel level's slot list".
const (
	locNone     int8 = -2          // popped (firing) or on the free list
	locNear     int8 = -1          // in the near heap (index = heap position)
	locOverflow int8 = wheelLevels // on the overflow list, beyond the horizon
)

// tickOf buckets a virtual timestamp into a wheel tick.
func tickOf(at time.Duration) uint64 { return uint64(at) >> tickShift }

// timerQueue is one shard's pending-timer structure.
type timerQueue struct {
	near timerHeap // tick(at) <= cur, exact (at, seq) order
	dead int       // canceled entries still sitting in near

	cur    uint64                            // last tick drained into near
	slots  [wheelLevels][wheelSlots]*timerNode // doubly-linked slot lists
	occ    [wheelLevels][wheelWords]uint64   // slot-occupancy bitmaps
	cnt    [wheelLevels][wheelSlots]int32    // per-slot node counts
	lvlLen [wheelLevels]int                  // nodes per level

	overflow    *timerNode // beyond the wheel horizon (~52 virtual days)
	overflowLen int

	free []*timerNode // recycled nodes; new ones minted in blocks

	// Health counters, surfaced via the Engine's wheel observability
	// accessors and the internal/obs gauges.
	cascades    int64 // nodes re-dispersed by level cascades
	maxSlot     int32 // high-water mark of a single slot's occupancy
	compactions int64 // near-heap dead-entry compactions
}

// timerBlock is the arena granularity for timer nodes: nodes are minted
// in slabs so a million-timer population is a few thousand allocations
// with dense layout, not a million scattered ones.
const timerBlock = 256

// alloc takes a node from the free list, minting a fresh block when it
// runs dry.
func (q *timerQueue) alloc() *timerNode {
	if k := len(q.free); k > 0 {
		n := q.free[k-1]
		q.free[k-1] = nil
		q.free = q.free[:k-1]
		return n
	}
	return q.allocSlow()
}

func (q *timerQueue) allocSlow() *timerNode {
	blk := make([]timerNode, timerBlock)
	for i := range blk {
		blk[i].index = -1
		blk[i].loc = locNone
	}
	for i := timerBlock - 1; i >= 1; i-- {
		q.free = append(q.free, &blk[i])
	}
	return &blk[0]
}

// recycle returns a node to the free list. Bumping the generation
// invalidates every outstanding handle to the old tenure, so a late
// Cancel on a fired timer can never hit the node's next user.
func (q *timerQueue) recycle(n *timerNode) {
	n.gen++
	n.fn = nil
	n.afn = nil
	n.arg = nil
	n.canceled = false
	n.loc = locNone
	q.free = append(q.free, n)
}

// insert files n by its tick distance from cur: overdue ticks go to the
// near heap (exact order), future ticks to the shallowest level whose
// span contains them, and deadlines beyond the horizon to overflow.
func (q *timerQueue) insert(n *timerNode) {
	t := tickOf(n.at)
	if t <= q.cur {
		n.loc = locNear
		heap.Push(&q.near, n)
		return
	}
	switch delta := t - q.cur; {
	case delta < 1<<wheelBits:
		q.place(n, 0, int(t&wheelMask))
	case delta < 1<<(2*wheelBits):
		q.place(n, 1, int((t>>wheelBits)&wheelMask))
	case delta < 1<<(3*wheelBits):
		q.place(n, 2, int((t>>(2*wheelBits))&wheelMask))
	case delta < 1<<(4*wheelBits):
		q.place(n, 3, int((t>>(3*wheelBits))&wheelMask))
	default:
		n.loc = locOverflow
		n.prev = nil
		n.next = q.overflow
		if q.overflow != nil {
			q.overflow.prev = n
		}
		q.overflow = n
		q.overflowLen++
	}
}

// place pushes n onto the front of a wheel slot's list.
func (q *timerQueue) place(n *timerNode, lvl, slot int) {
	n.loc = int8(lvl)
	n.slot = uint8(slot)
	n.prev = nil
	n.next = q.slots[lvl][slot]
	if n.next != nil {
		n.next.prev = n
	}
	q.slots[lvl][slot] = n
	q.occ[lvl][slot>>6] |= 1 << (slot & 63)
	q.lvlLen[lvl]++
	c := q.cnt[lvl][slot] + 1
	q.cnt[lvl][slot] = c
	if c > q.maxSlot {
		q.maxSlot = c
	}
}

// unlink removes n from its wheel slot or the overflow list in O(1).
func (q *timerQueue) unlink(n *timerNode) {
	if n.next != nil {
		n.next.prev = n.prev
	}
	if n.prev != nil {
		n.prev.next = n.next
	} else if n.loc == locOverflow {
		q.overflow = n.next
	} else {
		q.slots[n.loc][n.slot] = n.next
	}
	if n.loc == locOverflow {
		q.overflowLen--
	} else {
		lvl, slot := int(n.loc), int(n.slot)
		q.lvlLen[lvl]--
		q.cnt[lvl][slot]--
		if q.cnt[lvl][slot] == 0 {
			q.occ[lvl][slot>>6] &^= 1 << (slot & 63)
		}
	}
	n.prev, n.next = nil, nil
	n.loc = locNone
}

// next returns the lowest occupied slot >= from at level lvl, or -1.
func (q *timerQueue) next(lvl, from int) int {
	if from >= wheelSlots {
		return -1
	}
	w := from >> 6
	word := q.occ[lvl][w] &^ (1<<(from&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= wheelWords {
			return -1
		}
		word = q.occ[lvl][w]
	}
}

// drainNear moves every node in level-0 slot s — all due at tick cur —
// into the near heap.
func (q *timerQueue) drainNear(slot int) {
	for n := q.slots[0][slot]; n != nil; n = q.slots[0][slot] {
		q.unlink(n)
		n.loc = locNear
		heap.Push(&q.near, n)
	}
}

// cascade re-disperses every node in the given slot (level >= 1) by the
// insert rule against the freshly advanced cur. Each node lands at a
// strictly shallower level (or the near heap), so total cascade work
// per node is bounded by the level it was first filed at.
func (q *timerQueue) cascade(lvl, slot int) {
	for n := q.slots[lvl][slot]; n != nil; n = q.slots[lvl][slot] {
		q.unlink(n)
		q.insert(n)
		q.cascades++
	}
}

// enter advances cur to the start of window w at the given level and
// re-disperses everything that has just come due, cascading from the
// top level down: each level's slot at the new position holds exactly
// the nodes whose window has now arrived (an entry at level L can cross
// window boundaries of every level above it, so all levels must be
// checked — a slot already dispersed on a previous entry is empty and
// costs one head check). The level-0 slot holding tick == cur drains
// straight to near.
//
// The window START is the only correct landing point: entering at the
// window's last tick instead would re-insert slot-end nodes at delta
// 256 — right back into the slot being cascaded, forever.
func (q *timerQueue) enter(lvl int, w uint64) {
	oldRev := q.cur >> (wheelBits * wheelLevels)
	q.cur = w << (wheelBits * lvl)
	if rev := q.cur >> (wheelBits * wheelLevels); rev != oldRev && q.overflowLen > 0 {
		q.readmitOverflow(rev)
	}
	for k := wheelLevels - 1; k >= 1; k-- {
		q.cascade(k, int((q.cur>>(wheelBits*k))&wheelMask))
	}
	q.drainNear(int(q.cur & wheelMask))
}

// readmitOverflow moves overflow nodes whose deadline now falls inside
// the wheel horizon back into the wheel. Called whenever cur crosses a
// top-level revolution boundary, so an overflow node is re-dispersed no
// later than the start of its own revolution — before it can come due.
func (q *timerQueue) readmitOverflow(rev uint64) {
	for n := q.overflow; n != nil; {
		next := n.next
		if tickOf(n.at)>>(wheelBits*wheelLevels) <= rev {
			q.unlink(n)
			q.insert(n)
		}
		n = next
	}
}

// advanceOne moves cur forward to the next pending wheel or overflow
// work, draining at least one due batch toward the near heap. It
// reports false when the wheel and overflow are completely empty.
// Empty regions are skipped in O(1) per level via the occupancy
// bitmaps — cur jumps, it never walks tick by tick.
func (q *timerQueue) advanceOne() bool {
	if q.lvlLen[0] > 0 {
		if s := q.next(0, int(q.cur&wheelMask)+1); s >= 0 {
			// Next event is inside the current 256-tick window.
			q.cur = q.cur&^uint64(wheelMask) | uint64(s)
			q.drainNear(s)
			return true
		}
		// The remaining level-0 nodes wrapped into the next window.
		q.enter(1, q.cur>>wheelBits+1)
		return true
	}
	for lvl := 1; lvl < wheelLevels; lvl++ {
		if q.lvlLen[lvl] == 0 {
			continue
		}
		pos := q.cur >> (wheelBits * lvl)
		if s := q.next(lvl, int(pos&wheelMask)+1); s >= 0 {
			q.enter(lvl, pos&^uint64(wheelMask)|uint64(s))
		} else if lvl < wheelLevels-1 {
			// This level's remaining slots wrapped past its window
			// boundary; step into the parent level's next window.
			q.enter(lvl+1, q.cur>>(wheelBits*(lvl+1))+1)
		} else {
			// Top level wrapped: jump straight to its next occupied
			// slot in the following revolution.
			s := q.next(lvl, 0)
			q.enter(lvl, (pos>>wheelBits+1)<<wheelBits|uint64(s))
		}
		return true
	}
	if q.overflowLen > 0 {
		q.rebase()
		return true
	}
	return false
}

// rebase runs when the wheels are empty but overflow nodes remain: jump
// cur to the earliest overflow deadline and re-disperse the whole list.
// Overflow nodes are at least 2^32 ticks out, so per-node rebase work
// is vanishingly rare.
func (q *timerQueue) rebase() {
	min := uint64(math.MaxUint64)
	for n := q.overflow; n != nil; n = n.next {
		if t := tickOf(n.at); t < min {
			min = t
		}
	}
	head := q.overflow
	q.overflow = nil
	q.overflowLen = 0
	q.cur = min
	for n := head; n != nil; {
		next := n.next
		n.prev, n.next = nil, nil
		q.insert(n)
		n = next
	}
}

// peek returns the earliest live timer without removing it, advancing
// the wheel as needed, or nil when nothing is pending. Canceled near
// entries surfacing at the top are collected on the way.
func (q *timerQueue) peek() *timerNode {
	for {
		for q.near.Len() > 0 {
			n := q.near[0]
			if !n.canceled {
				return n
			}
			heap.Pop(&q.near)
			q.dead--
			q.recycle(n)
		}
		if !q.advanceOne() {
			return nil
		}
	}
}

// pop removes the node a preceding peek returned.
func (q *timerQueue) pop() *timerNode {
	n := heap.Pop(&q.near).(*timerNode)
	n.loc = locNone
	return n
}

// cancel collects a node whose canceled flag the caller has just set:
// wheel and overflow nodes unlink and recycle immediately (O(1)); near
// nodes are left for lazy collection with majority-dead compaction, as
// popping from mid-heap would cost O(log n) right here.
func (q *timerQueue) cancel(n *timerNode) {
	switch n.loc {
	case locNear:
		q.dead++
		if q.dead*2 > q.near.Len() && q.near.Len() >= compactThreshold {
			q.compact()
		}
	case locNone:
		// Popped: the callback is firing right now and canceled itself;
		// nothing remains in the structure to collect.
	default:
		q.unlink(n)
		q.recycle(n)
	}
}

// compactThreshold is the near-heap size below which canceled entries
// are left in place: tiny heaps pop dead entries soon enough anyway,
// and skipping them avoids compaction thrash in short simulations.
const compactThreshold = 64

// compact rebuilds the near heap without its canceled entries. Called
// when the dead outnumber the live, so total compaction work stays
// linear in the number of timers ever canceled.
func (q *timerQueue) compact() {
	live := q.near[:0]
	for _, n := range q.near {
		if n.canceled {
			q.recycle(n)
		} else {
			live = append(live, n)
		}
	}
	for i := len(live); i < len(q.near); i++ {
		q.near[i] = nil
	}
	q.near = live
	for i, n := range q.near {
		n.index = i
	}
	heap.Init(&q.near)
	q.dead = 0
	q.compactions++
}

// pending reports every entry still tracked: live wheel and overflow
// nodes plus near entries, including canceled ones awaiting collection.
func (q *timerQueue) pending() int {
	n := q.near.Len() + q.overflowLen
	for _, l := range q.lvlLen {
		n += l
	}
	return n
}
