package sim

import (
	"testing"
	"time"
)

// TestScheduleCancelHeapBounded is the regression test for the
// canceled-timer leak: a schedule/cancel loop (the WithTimeout pattern)
// must not grow the timer structure without bound. Wheel residents are
// unlinked on Cancel, and the occasional near-heap resident is bounded
// by majority-dead compaction, so the pending count stays within a
// small constant.
func TestScheduleCancelHeapBounded(t *testing.T) {
	e := New(1)
	const iters = 100_000
	maxLen := 0
	for i := 0; i < iters; i++ {
		tm := e.Schedule(time.Hour, func() { t.Error("canceled timer fired") })
		tm.Cancel()
		if l := e.TimerHeapLen(); l > maxLen {
			maxLen = l
		}
	}
	if maxLen > 2*compactThreshold {
		t.Fatalf("timer structure grew to %d entries during %d schedule/cancel cycles; want <= %d", maxLen, iters, 2*compactThreshold)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTimerHandleGenerations pins the recycle semantics: a handle to a
// fired timer must stay inert even after its node is reused by a later
// Schedule, and canceling it must not cancel the node's next occupant.
func TestTimerHandleGenerations(t *testing.T) {
	e := New(1)
	var firstFired, secondFired bool
	first := e.Schedule(time.Second, func() { firstFired = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !firstFired {
		t.Fatal("first timer did not fire")
	}
	// The second Schedule reuses the first timer's node from the free
	// list; a stale Cancel on the old handle must not touch it.
	second := e.Schedule(time.Second, func() { secondFired = true })
	first.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !secondFired {
		t.Fatal("stale handle Cancel hit the recycled node's next occupant")
	}
	if got := second.When(); got != 2*time.Second {
		t.Fatalf("When() = %v, want 2s", got)
	}
	if first.When() != time.Second {
		t.Fatalf("fired handle When() = %v, want 1s", first.When())
	}
}

// TestTimerZeroValueInert pins that the zero Timer is safe to use.
func TestTimerZeroValueInert(t *testing.T) {
	var tm Timer
	tm.Cancel() // must not panic
	if tm.Scheduled() {
		t.Fatal("zero Timer reports Scheduled")
	}
}

// TestTimerSelfCancelDuringFire pins the context-deadline pattern: a
// callback canceling its own timer (already popped from the heap) must
// be a no-op and must not corrupt the dead-entry accounting.
func TestTimerSelfCancelDuringFire(t *testing.T) {
	e := New(1)
	var tm Timer
	tm = e.Schedule(time.Second, func() { tm.Cancel() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if d := e.shards[0].q.dead; d != 0 {
		t.Fatalf("dead = %d after self-cancel, want 0", d)
	}
	if !e.Quiesced() {
		t.Fatal("engine not quiesced")
	}
}

// TestRunQueueRingGrowth exercises ring growth and wraparound: spawn
// waves of processes larger than the initial ring while the head has
// advanced, and check FIFO order is preserved.
func TestRunQueueRingGrowth(t *testing.T) {
	e := New(1)
	var order []int
	for wave := 0; wave < 3; wave++ {
		w := wave
		e.Spawn("spawner", func(p *Proc) {
			for i := 0; i < 40; i++ {
				id := w*100 + i
				e.Spawn("c", func(p *Proc) {
					order = append(order, id)
				})
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if len(order) != 120 {
		t.Fatalf("ran %d procs, want 120", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("run order not FIFO at %d: %d then %d", i, order[i-1], order[i])
		}
	}
}
