package sim

import (
	"context"
	"time"

	"repro/internal/core"
)

// RT adapts an Engine to the backend-neutral core.Backend interface.
// The Engine's own methods keep their concrete types (*Ctx, *rand.Rand,
// sim.Timer, func(*Proc)) for the engine's direct users and the
// zero-allocation hot path; RT shadows exactly the methods whose
// signatures differ, boxing only at setup-rate call sites (Spawn,
// Schedule, NewResource). Obtain one with Engine.RT.
type RT struct{ *Engine }

var _ core.Backend = RT{}

// RT returns the engine as a core.Backend.
func (e *Engine) RT() RT { return RT{e} }

// Rand implements core.Backend, drawing from the engine's deterministic
// source.
func (r RT) Rand() float64 { return r.Engine.rng.Float64() }

// Context implements core.Backend with the root simulation context.
func (r RT) Context() context.Context { return r.Engine.root }

// Spawn implements core.Backend; the process runs under the engine
// token exactly as with Engine.Spawn.
func (r RT) Spawn(name string, fn func(p core.Proc)) {
	r.Engine.Spawn(name, func(p *Proc) { fn(p) })
}

// Schedule implements core.Backend, boxing the engine's value-type
// timer handle.
func (r RT) Schedule(d time.Duration, fn func()) core.Timer {
	return r.Engine.Schedule(d, fn)
}

// NewResource implements core.Backend.
func (r RT) NewResource(name string, capacity int) core.Resource {
	return NewResource(r.Engine, name, capacity)
}
