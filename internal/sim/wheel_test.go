package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// This file proves the timer wheel equivalent to a brute-force ordered
// model under randomized schedule/cancel/pop scripts. The same byte
// interpreter drives both the seeded differential test and
// FuzzTimerWheel, so every corpus entry and every shrunk counterexample
// is a replayable script.
//
// Script encoding (consumed left to right; truncated reads end the
// script, after which the queue is drained and compared to empty):
//
//	op = b&3: 0,1 = schedule (reads class byte + jitter byte)
//	          2   = pop/compare minimum
//	          3   = cancel (reads pick byte; odd picks replay a stale
//	                handle, which must be a no-op)

// wheelDeltas are the schedule distance classes: both edges of every
// wheel level, the tick boundary itself, and beyond-horizon values that
// must ride the overflow list.
var wheelDeltas = []time.Duration{
	0,
	1,
	time.Microsecond,
	1<<tickShift - 1, // last nanosecond of tick 0
	1 << tickShift,   // exactly one tick
	1<<tickShift + 1,
	3 * time.Millisecond,
	250 * time.Millisecond, // the backoff floor the engine is tuned for
	time.Second,
	30 * time.Second,
	10 * time.Minute,
	time.Hour,
	24 * time.Hour,
	10 * 24 * time.Hour,
	40 * 24 * time.Hour,  // deep in level 3
	60 * 24 * time.Hour,  // beyond the ~52-day horizon: overflow
	365 * 24 * time.Hour, // deep overflow
}

// refEntry is the reference model's record of a live timer.
type refEntry struct {
	at  time.Duration
	seq int64
}

// wheelSim drives a timerQueue and the reference model in lockstep.
type wheelSim struct {
	q   timerQueue
	now time.Duration
	seq int64

	nextID int
	ids    []int             // live ids in creation order
	nodes  map[int]*timerNode
	gens   map[int]uint32
	ref    map[int]refEntry

	stale []Timer // handles whose tenure ended; canceling must no-op
}

func newWheelSim() *wheelSim {
	return &wheelSim{
		nodes: make(map[int]*timerNode),
		gens:  make(map[int]uint32),
		ref:   make(map[int]refEntry),
	}
}

func (w *wheelSim) schedule(class, jitter byte) {
	d := wheelDeltas[int(class)%len(wheelDeltas)]
	if jitter < 128 {
		// Spread across ticks; even jitters stay tick-aligned often
		// enough to produce same-instant collisions broken by seq.
		d += time.Duration(jitter) * 512 * time.Microsecond
	}
	n := w.q.alloc()
	n.at = w.now + d
	n.seq = w.seq
	id := w.nextID
	n.arg = id
	w.seq++
	w.nextID++
	w.q.insert(n)
	w.ids = append(w.ids, id)
	w.nodes[id] = n
	w.gens[id] = n.gen
	w.ref[id] = refEntry{at: n.at, seq: n.seq}
}

// refMin scans the reference model for the (at, seq) minimum.
func (w *wheelSim) refMin() (id int, e refEntry, ok bool) {
	for i, re := range w.ref {
		if !ok || re.at < e.at || (re.at == e.at && re.seq < e.seq) {
			id, e, ok = i, re, true
		}
	}
	return id, e, ok
}

// pop compares the queue's minimum against the reference and consumes
// it, advancing the model clock the way Engine.Run does.
func (w *wheelSim) pop() error {
	n := w.q.peek()
	rid, re, ok := w.refMin()
	if n == nil {
		if ok {
			return fmt.Errorf("queue empty but reference holds id=%d at=%v", rid, re.at)
		}
		return nil
	}
	if !ok {
		return fmt.Errorf("queue yields id=%v at=%v but reference is empty", n.arg, n.at)
	}
	id := n.arg.(int)
	if id != rid || n.at != re.at || n.seq != re.seq {
		return fmt.Errorf("pop mismatch: queue (id=%d at=%v seq=%d) vs reference (id=%d at=%v seq=%d)",
			id, n.at, n.seq, rid, re.at, re.seq)
	}
	if got := w.q.pop(); got != n {
		return fmt.Errorf("pop returned %v after peek returned %v", got.arg, n.arg)
	}
	if n.at > w.now {
		w.now = n.at
	}
	w.stale = append(w.stale, Timer{n: n, gen: n.gen, at: n.at})
	w.q.recycle(n)
	w.drop(id)
	return nil
}

// cancel mimics Timer.Cancel on a random live handle; odd picks replay
// a stale (fired or previously canceled) handle instead, which must
// leave both models untouched.
func (w *wheelSim) cancel(pick byte) {
	if pick&1 == 1 && len(w.stale) > 0 {
		t := w.stale[int(pick)%len(w.stale)]
		// Inline Timer.Cancel's engine-free core: a generation mismatch
		// must stand down before touching the queue.
		if t.n.gen == t.gen && !t.n.canceled {
			panic("stale handle still live: tenure bookkeeping broken")
		}
		return
	}
	if len(w.ids) == 0 {
		return
	}
	id := w.ids[int(pick)%len(w.ids)]
	n := w.nodes[id]
	if n.gen != w.gens[id] || n.canceled {
		panic("live-handle table out of sync")
	}
	n.canceled = true
	w.q.cancel(n)
	w.stale = append(w.stale, Timer{n: n, gen: w.gens[id], at: n.at})
	w.drop(id)
}

func (w *wheelSim) drop(id int) {
	delete(w.ref, id)
	delete(w.nodes, id)
	delete(w.gens, id)
	for i, v := range w.ids {
		if v == id {
			w.ids = append(w.ids[:i], w.ids[i+1:]...)
			return
		}
	}
}

// runWheelScript executes a byte script, then drains both models to
// empty. It returns the byte offset of the op that diverged (for the
// shrinker) and the divergence, or (-1, nil).
func runWheelScript(script []byte) (int, error) {
	w := newWheelSim()
	i := 0
	for i < len(script) {
		op := i
		b := script[i]
		i++
		switch b & 3 {
		case 0, 1:
			if i+2 > len(script) {
				i = len(script)
				continue
			}
			w.schedule(script[i], script[i+1])
			i += 2
		case 2:
			if err := w.pop(); err != nil {
				return op, err
			}
		case 3:
			if i >= len(script) {
				continue
			}
			w.cancel(script[i])
			i++
		}
	}
	for len(w.ref) > 0 || w.q.peek() != nil {
		if err := w.pop(); err != nil {
			return len(script), fmt.Errorf("drain: %w", err)
		}
	}
	if p := w.q.pending(); p != 0 {
		return len(script), fmt.Errorf("drained queue still reports %d pending entries", p)
	}
	return -1, nil
}

// wheelScript generates the deterministic random script for a seed,
// shared by the differential test and the fuzz corpus.
func wheelScript(seed int64, size int) []byte {
	rng := rand.New(rand.NewSource(seed))
	script := make([]byte, size)
	rng.Read(script)
	return script
}

// TestWheelDifferential proves the wheel against the brute-force model
// over randomized scripts: 32 seeds, ~1300 operations each, covering
// every level, the overflow list, tick-boundary deadlines, same-instant
// collisions, stale-handle cancels, and full drains. On divergence it
// shrinks to the shortest failing prefix so the report is replayable.
func TestWheelDifferential(t *testing.T) {
	const seeds = 32
	for seed := int64(1); seed <= seeds; seed++ {
		script := wheelScript(seed, 4096)
		at, err := runWheelScript(script)
		if err == nil {
			continue
		}
		// Prefix shrinker: find the shortest prefix that still fails.
		for m := 1; m <= len(script); m++ {
			if _, perr := runWheelScript(script[:m]); perr != nil {
				t.Fatalf("seed %d diverged at offset %d: %v\nminimal failing prefix (%d bytes): %x",
					seed, at, err, m, script[:m])
			}
		}
		t.Fatalf("seed %d diverged at offset %d: %v (not reproducible on any prefix?)", seed, at, err)
	}
}

// TestWheelLongHorizon walks the wheel across many level-boundary
// crossings with sparse far-future timers, the regime where a lazily
// cascading implementation can strand a node in an outer level (the
// deadline simply never fires). Caught live: an earlier draft only
// cascaded levels at or below the entry level.
func TestWheelLongHorizon(t *testing.T) {
	e := New(1)
	var fired []int
	for i, d := range []time.Duration{
		time.Millisecond, time.Second, time.Minute, 5 * time.Minute,
		time.Hour, 13 * time.Hour, 3 * 24 * time.Hour, 53 * 24 * time.Hour,
		400 * 24 * time.Hour,
	} {
		id := i
		at := d
		e.Schedule(d, func() {
			fired = append(fired, id)
			if e.Elapsed() != at {
				t.Errorf("timer %d fired at %v, want %v", id, e.Elapsed(), at)
			}
		})
	}
	// Keep every level busy so no shortcut through an empty wheel exists.
	var tick func()
	tick = func() {
		if e.Elapsed() < 401*24*time.Hour {
			e.Schedule(17*time.Minute, tick)
		}
	}
	tick()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range fired {
		if i != id {
			t.Fatalf("firing order %v not sorted by deadline", fired)
		}
	}
	if len(fired) != 9 {
		t.Fatalf("fired %d of 9 timers", len(fired))
	}
}

// FuzzTimerWheel feeds arbitrary byte scripts to the differential
// interpreter. The corpus seeds with the same deterministic scripts the
// differential test uses plus handmade edge scripts (dense same-tick
// collisions, overflow churn, cancel storms).
func FuzzTimerWheel(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(wheelScript(seed, 512))
	}
	// Same-instant collisions: schedule the same class repeatedly with
	// no jitter, then pop everything.
	collide := make([]byte, 0, 64)
	for i := 0; i < 12; i++ {
		collide = append(collide, 0, 8, 200)
	}
	for i := 0; i < 12; i++ {
		collide = append(collide, 2)
	}
	f.Add(collide)
	// Overflow churn: far-future schedules interleaved with cancels.
	over := make([]byte, 0, 64)
	for i := 0; i < 8; i++ {
		over = append(over, 0, 15, 255, 0, 16, 255, 3, byte(i*2))
	}
	f.Add(over)
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 1<<14 {
			script = script[:1<<14]
		}
		if at, err := runWheelScript(script); err != nil {
			t.Fatalf("diverged at offset %d: %v", at, err)
		}
	})
}
