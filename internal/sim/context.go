package sim

import (
	"context"
	"sort"
	"time"
)

// Ctx is a context.Context whose deadline is measured in virtual time.
// Cancellation cascades to child contexts and synchronously wakes any
// process parked on the context, all under the engine token, which keeps
// the whole simulation deterministic.
//
// A Ctx interoperates with foreign (non-sim) parents in a limited way:
// the parent's Err is checked when the child is created, but later
// foreign cancellations are not observed, because watching them would
// require a real goroutine and real time.
type Ctx struct {
	eng      *Engine
	parent   context.Context
	done     chan struct{}
	err      error
	deadline time.Duration // virtual; valid if hasDeadline
	hasDL    bool
	timer    Timer
	children map[*Ctx]int // value: registration order
	childSeq int
	hooks    map[int]func(error)
	hookSeq  int
}

var _ context.Context = (*Ctx)(nil)

func newCtx(e *Engine, parent context.Context) *Ctx {
	return &Ctx{eng: e, parent: parent, done: make(chan struct{})}
}

// Deadline reports the virtual deadline, converted to absolute time.
func (c *Ctx) Deadline() (time.Time, bool) {
	if !c.hasDL {
		return time.Time{}, false
	}
	return Epoch.Add(c.deadline), true
}

// Done returns a channel closed when the context is canceled.
func (c *Ctx) Done() <-chan struct{} { return c.done }

// Err reports nil until the context is canceled, then the cause.
func (c *Ctx) Err() error { return c.err }

// Value defers to the parent context chain.
func (c *Ctx) Value(key any) any {
	if c.parent != nil {
		return c.parent.Value(key)
	}
	return nil
}

// cancel marks the context done with cause err, fires hooks, and cascades
// to children. Must run under the engine token.
func (c *Ctx) cancel(err error) {
	if c.err != nil {
		return
	}
	c.err = err
	close(c.done)
	c.timer.Cancel()
	c.timer = Timer{}
	for _, h := range sortedHooks(c.hooks) {
		h(err)
	}
	c.hooks = nil
	for _, child := range sortedChildren(c.children) {
		child.cancel(err)
	}
	c.children = nil
	if pc, ok := c.parent.(*Ctx); ok && pc.children != nil {
		delete(pc.children, c)
	}
}

// sortedHooks returns cancellation hooks in registration order so wakeups
// are deterministic regardless of map iteration order.
func sortedHooks(m map[int]func(error)) []func(error) {
	if len(m) == 0 {
		return nil
	}
	maxKey := -1
	for k := range m {
		if k > maxKey {
			maxKey = k
		}
	}
	out := make([]func(error), 0, len(m))
	for k := 0; k <= maxKey; k++ {
		if h, ok := m[k]; ok {
			out = append(out, h)
		}
	}
	return out
}

// sortedChildren returns child contexts in registration order, so a
// cascading cancellation wakes processes deterministically instead of
// in map iteration order. (Trace determinism depends on this: the
// unwind events at a shared window deadline must interleave the same
// way in every run.)
func sortedChildren(m map[*Ctx]int) []*Ctx {
	if len(m) == 0 {
		return nil
	}
	type entry struct {
		c   *Ctx
		seq int
	}
	out := make([]entry, 0, len(m))
	for c, seq := range m {
		out = append(out, entry{c, seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	cs := make([]*Ctx, len(out))
	for i, e := range out {
		cs[i] = e.c
	}
	return cs
}

// onCancel registers fn to run when the context is canceled and returns a
// deregistration function. The caller must have checked Err beforehand.
func (c *Ctx) onCancel(fn func(error)) func() {
	if c.hooks == nil {
		c.hooks = make(map[int]func(error))
	}
	id := c.hookSeq
	c.hookSeq++
	c.hooks[id] = fn
	return func() { delete(c.hooks, id) }
}

// onCancelCtx registers fn on ctx if it is a simulation context; for
// foreign contexts it returns a no-op deregistration, since foreign
// cancellation cannot be observed without real concurrency.
func onCancelCtx(ctx context.Context, fn func(error)) func() {
	if sc, ok := ctx.(*Ctx); ok {
		return sc.onCancel(fn)
	}
	return func() {}
}

// WithCancel derives a child context canceled either explicitly or when
// its parent is canceled.
func (e *Engine) WithCancel(parent context.Context) (context.Context, context.CancelFunc) {
	child := newCtx(e, parent)
	if err := parent.Err(); err != nil {
		child.cancel(err)
		return child, func() {}
	}
	if pc, ok := parent.(*Ctx); ok {
		if pc.children == nil {
			pc.children = make(map[*Ctx]int)
		}
		pc.children[child] = pc.childSeq
		pc.childSeq++
	}
	return child, func() { child.cancel(context.Canceled) }
}

// WithTimeout derives a child context canceled after d of virtual time.
func (e *Engine) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := e.WithCancel(parent)
	child := ctx.(*Ctx)
	if child.err != nil {
		return child, cancel
	}
	child.hasDL = true
	child.deadline = e.now + d
	if pd, ok := parent.Deadline(); ok {
		if pv := pd.Sub(Epoch); pv < child.deadline {
			child.deadline = pv
		}
	}
	child.timer = e.Schedule(child.deadline-e.now, func() {
		child.cancel(context.DeadlineExceeded)
	})
	return child, cancel
}
