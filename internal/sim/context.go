package sim

import (
	"context"
	"time"
)

// Ctx is a context.Context whose deadline is measured in virtual time.
// Cancellation cascades to child contexts and synchronously wakes any
// process parked on the context, all under the engine token, which keeps
// the whole simulation deterministic.
//
// A Ctx interoperates with foreign (non-sim) parents in a limited way:
// the parent's Err is checked when the child is created, but later
// foreign cancellations are not observed, because watching them would
// require a real goroutine and real time.
//
// The type is tuned for the timeout-per-attempt pattern, where a
// context lives for one guarded call and is discarded: the done channel
// is materialized only if someone asks for it, and children and hooks
// live in slices backed by small inline arrays, so the typical
// WithTimeout/Sleep/cancel cycle costs two allocations total (the Ctx
// and the CancelFunc closure).
type Ctx struct {
	eng      *Engine
	parent   context.Context
	done     chan struct{} // lazily created by Done
	err      error
	deadline time.Duration // virtual; valid if hasDL
	hasDL    bool
	timer    Timer

	children []*Ctx // registration order; backed by childArr while small
	hooks    []ctxHook
	hookSeq  int
	childArr [2]*Ctx
	hookArr  [2]ctxHook
}

// ctxHook is a cancellation hook with its registration id, used to
// deregister without a per-registration closure.
type ctxHook struct {
	id int
	fn func(error)
}

var _ context.Context = (*Ctx)(nil)

// closedchan is the shared pre-closed channel Done returns for contexts
// already canceled before anyone asked.
var closedchan = make(chan struct{})

func init() { close(closedchan) }

func newCtx(e *Engine, parent context.Context) *Ctx {
	return &Ctx{eng: e, parent: parent}
}

// Deadline reports the virtual deadline, converted to absolute time.
func (c *Ctx) Deadline() (time.Time, bool) {
	if !c.hasDL {
		return time.Time{}, false
	}
	return Epoch.Add(c.deadline), true
}

// Done returns a channel closed when the context is canceled. The
// channel is created on first call (engine token), so contexts watched
// only via Err and hooks never allocate one.
func (c *Ctx) Done() <-chan struct{} {
	if c.done == nil {
		if c.err != nil {
			return closedchan
		}
		c.done = make(chan struct{})
	}
	return c.done
}

// Err reports nil until the context is canceled, then the cause.
func (c *Ctx) Err() error { return c.err }

// Value defers to the parent context chain.
func (c *Ctx) Value(key any) any {
	if c.parent != nil {
		return c.parent.Value(key)
	}
	return nil
}

// cancel marks the context done with cause err, fires hooks, and cascades
// to children, both in registration order (wakeup order is part of the
// deterministic event sequence). Must run under the engine token.
func (c *Ctx) cancel(err error) {
	if c.err != nil {
		return
	}
	c.err = err
	if c.done != nil {
		close(c.done)
	}
	c.timer.Cancel()
	c.timer = Timer{}
	hooks := c.hooks
	c.hooks = nil
	for i := range hooks {
		hooks[i].fn(err)
	}
	children := c.children
	c.children = nil
	for _, child := range children {
		child.cancel(err)
	}
	if pc, ok := c.parent.(*Ctx); ok {
		pc.removeChild(c)
	}
}

// removeChild unregisters a canceled child, preserving order.
func (c *Ctx) removeChild(child *Ctx) {
	for i, cc := range c.children {
		if cc == child {
			copy(c.children[i:], c.children[i+1:])
			c.children[len(c.children)-1] = nil
			c.children = c.children[:len(c.children)-1]
			return
		}
	}
}

// onCancel registers fn to run when the context is canceled, returning
// an id for removeHook. The caller must have checked Err beforehand.
func (c *Ctx) onCancel(fn func(error)) int {
	if c.hooks == nil {
		c.hooks = c.hookArr[:0]
	}
	id := c.hookSeq
	c.hookSeq++
	c.hooks = append(c.hooks, ctxHook{id: id, fn: fn})
	return id
}

// removeHook deregisters a hook by id; unknown ids (hooks consumed by a
// cancellation) are ignored.
func (c *Ctx) removeHook(id int) {
	for i := range c.hooks {
		if c.hooks[i].id == id {
			copy(c.hooks[i:], c.hooks[i+1:])
			c.hooks[len(c.hooks)-1] = ctxHook{}
			c.hooks = c.hooks[:len(c.hooks)-1]
			return
		}
	}
}

// onCancelID registers fn on ctx if it is a simulation context,
// returning the hook id and the context to deregister from. For foreign
// contexts it returns a nil context — there is nothing to deregister,
// since foreign cancellation cannot be observed without real
// concurrency.
func onCancelID(ctx context.Context, fn func(error)) (int, *Ctx) {
	if sc, ok := ctx.(*Ctx); ok {
		return sc.onCancel(fn), sc
	}
	return 0, nil
}

// WithCancel derives a child context canceled either explicitly or when
// its parent is canceled.
func (e *Engine) WithCancel(parent context.Context) (context.Context, context.CancelFunc) {
	child := newCtx(e, parent)
	if err := parent.Err(); err != nil {
		child.cancel(err)
		return child, func() {}
	}
	if pc, ok := parent.(*Ctx); ok {
		if pc.children == nil {
			pc.children = pc.childArr[:0]
		}
		pc.children = append(pc.children, child)
	}
	return child, func() { child.cancel(context.Canceled) }
}

// WithTimeout derives a child context canceled after d of virtual time.
// The deadline is armed through the zero-closure ScheduleArg path with
// a shared package-level callback.
func (e *Engine) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := e.WithCancel(parent)
	child := ctx.(*Ctx)
	if child.err != nil {
		return child, cancel
	}
	child.hasDL = true
	child.deadline = e.now + d
	if pd, ok := parent.Deadline(); ok {
		if pv := pd.Sub(Epoch); pv < child.deadline {
			child.deadline = pv
		}
	}
	child.timer = e.ScheduleArg(child.deadline-e.now, ctxDeadlineFire, child)
	return child, cancel
}

// ctxDeadlineFire is the shared deadline callback for every WithTimeout
// context; the context itself rides in the timer's arg slot.
func ctxDeadlineFire(arg any) {
	arg.(*Ctx).cancel(context.DeadlineExceeded)
}
