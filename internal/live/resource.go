package live

import (
	"context"

	"repro/internal/core"
)

// Resource is the live backend's FIFO counting semaphore. State is
// guarded by the engine lock; waiters park on a private channel with
// the lock released, so the wall-clock order in which contenders reach
// the queue decides the grant order — real contention, unlike the
// simulator's deterministic interleaving.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []*resWaiter

	// Stats, readable under the engine lock.
	Acquires int64 // successful acquisitions
	Rejects  int64 // TryAcquire failures
	Timeouts int64 // waiters abandoned by cancellation
}

type resWaiter struct {
	ch      chan struct{}
	granted bool
	gone    bool
}

var _ core.Resource = (*Resource)(nil)

func newResource(e *Engine, name string, capacity int) *Resource {
	if capacity < 0 {
		panic("live: negative resource capacity")
	}
	return &Resource{eng: e, name: name, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Available returns the number of free units — the carrier-sense
// observable.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int {
	n := 0
	for _, w := range r.waiters {
		if !w.gone && !w.granted {
			n++
		}
	}
	return n
}

// SetCapacity adjusts capacity at runtime. Shrinking below inUse is
// allowed; units drain as they are released. Growing grants queued
// waiters immediately.
func (r *Resource) SetCapacity(n int) {
	r.capacity = n
	r.grantWaiters()
}

// TryAcquire takes one unit without waiting, reporting success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity {
		r.inUse++
		r.Acquires++
		return true
	}
	r.Rejects++
	return false
}

// Acquire takes one unit, parking the process in FIFO order until one
// is free or ctx is canceled (returning the cancellation cause). If a
// grant and a cancellation race, the grant wins: the caller owns the
// unit and must Release it.
func (r *Resource) Acquire(p core.Proc, ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if r.inUse < r.capacity && r.QueueLen() == 0 {
		r.inUse++
		r.Acquires++
		return nil
	}
	w := &resWaiter{ch: make(chan struct{}, 1)}
	r.waiters = append(r.waiters, w)
	r.eng.mu.Unlock()
	select {
	case <-w.ch:
	case <-ctx.Done():
	}
	r.eng.mu.Lock()
	if w.granted {
		return nil
	}
	w.gone = true
	r.Timeouts++
	return ctx.Err()
}

// Release returns one unit and grants it to the oldest live waiter, if
// any. Releasing more than was acquired panics: that is a harness bug.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("live: Release of idle resource " + r.name)
	}
	r.inUse--
	r.grantWaiters()
}

// grantWaiters hands free units to queued waiters in FIFO order.
// Engine lock held.
func (r *Resource) grantWaiters() {
	for len(r.waiters) > 0 && r.inUse < r.capacity {
		w := r.waiters[0]
		if w.gone {
			r.waiters = r.waiters[1:]
			continue
		}
		r.waiters = r.waiters[1:]
		w.granted = true
		r.inUse++
		r.Acquires++
		w.ch <- struct{}{}
	}
}
