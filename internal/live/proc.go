package live

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Proc is a live process: a goroutine that holds the engine lock while
// it runs substrate code and releases it across every blocking
// operation. It satisfies core.Proc, so the identical discipline code
// drives simulated and live executions.
type Proc struct {
	eng    *Engine
	name   string
	tracer *trace.Client
}

var _ core.Proc = (*Proc)(nil)

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// SetTracer attaches a per-client trace handle (nil disables).
func (p *Proc) SetTracer(c *trace.Client) { p.tracer = c }

// Tracer returns the process's trace handle; nil is safe to emit on.
func (p *Proc) Tracer() *trace.Client { return p.tracer }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current virtual time.
func (p *Proc) Now() time.Time { return p.eng.Now() }

// Elapsed reports virtual time since Run started.
func (p *Proc) Elapsed() time.Duration { return p.eng.Elapsed() }

// Rand returns a uniform value in [0,1); the engine lock serializes
// draws, so the sequence is seed-deterministic even though which
// process gets which draw is not.
func (p *Proc) Rand() float64 { return p.eng.rng.Float64() }

// Schedule arranges fn to run at virtual time now+d on the process's
// engine.
func (p *Proc) Schedule(d time.Duration, fn func()) core.Timer {
	return p.eng.Schedule(d, fn)
}

// Yield releases the engine lock and lets other goroutines run.
func (p *Proc) Yield() {
	p.eng.mu.Unlock()
	runtime.Gosched()
	p.eng.mu.Lock()
}

// Blocking releases the engine lock, runs fn, and re-acquires the lock
// before returning. Substrate code that performs a real blocking
// operation — a socket round-trip to a gridd daemon, a disk read —
// must wrap it here, exactly as Sleep and Hang do internally, or the
// whole monitor stalls for the call's wall-clock duration. fn runs
// outside the monitor: it must not touch engine-locked state.
func (p *Proc) Blocking(fn func()) {
	p.eng.mu.Unlock()
	fn()
	p.eng.mu.Lock()
}

// SleepFor pauses for d of virtual time. It cannot be interrupted;
// prefer Sleep with a context for cancellable waits.
func (p *Proc) SleepFor(d time.Duration) {
	rd := p.eng.toReal(d)
	p.eng.mu.Unlock()
	if rd > 0 {
		time.Sleep(rd)
	} else {
		runtime.Gosched()
	}
	p.eng.mu.Lock()
}

// Sleep pauses for d of virtual time or until ctx is canceled,
// whichever comes first, returning the context's error in the latter
// case.
func (p *Proc) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	rd := p.eng.toReal(d)
	p.eng.mu.Unlock()
	var err error
	if rd <= 0 {
		runtime.Gosched()
		err = ctx.Err()
	} else {
		t := time.NewTimer(rd)
		select {
		case <-t.C:
		case <-ctx.Done():
			err = ctx.Err()
		}
		t.Stop()
	}
	p.eng.mu.Lock()
	return err
}

// Hang parks the process until ctx is canceled, then returns the
// cancellation cause. It models interacting with a "black hole" service
// that never responds.
func (p *Proc) Hang(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.eng.mu.Unlock()
	<-ctx.Done()
	p.eng.mu.Lock()
	return ctx.Err()
}

// WithTimeout derives a context canceled after d of virtual time.
func (p *Proc) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return p.eng.WithTimeout(parent, d)
}

// WithCancel derives a cancelable child context.
func (p *Proc) WithCancel(parent context.Context) (context.Context, context.CancelFunc) {
	return p.eng.WithCancel(parent)
}

// Parallel runs the fns in worker processes, handing each branch its
// worker as its Runtime, and blocks (with the engine lock released)
// until every branch has returned. At most limit branches run at once
// (limit <= 0 means one goroutine per branch).
func (p *Proc) Parallel(ctx context.Context, limit int, fns []func(ctx context.Context, rt core.Runtime) error) []error {
	errs := make([]error, len(fns))
	if len(fns) == 0 {
		return errs
	}
	workers := len(fns)
	if limit > 0 && limit < workers {
		workers = limit
	}
	e := p.eng
	next := 0 // engine lock serializes claims
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		child := &Proc{eng: e, name: p.name + "/par", tracer: p.tracer}
		wg.Add(1)
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer wg.Done()
			e.mu.Lock()
			for next < len(fns) {
				i := next
				next++
				errs[i] = fns[i](ctx, child)
			}
			e.mu.Unlock()
		}()
	}
	e.mu.Unlock()
	wg.Wait()
	e.mu.Lock()
	return errs
}
