// Package live is the wall-clock backend: it runs the same scenarios as
// the deterministic simulator (internal/sim) on real goroutines, real
// timers, and real mutex contention, under compressed time.
//
// Where the simulator serializes processes with a token handoff, the
// live engine serializes them with one global mutex — a monitor. A
// process holds the engine lock while it executes substrate code and
// releases it across every blocking operation (Sleep, Hang, Yield,
// resource waits), so the shared state invariants the substrates were
// written against ("engine methods run under the token") carry over
// unchanged, while the interleaving between blocking points is decided
// by the Go scheduler and the wall clock rather than by a seed. Runs
// are therefore not reproducible; the differential harness
// (internal/expt) asserts distributional properties with tolerance
// bands instead of golden outputs.
//
// Compressed time: every virtual duration d that crosses the backend
// boundary (sleeps, timeouts, timer deadlines) runs for d/timescale of
// real time, and Elapsed reports real time multiplied back, so a
// 5-minute paper window finishes in 300 ms at timescale 1000 and all
// virtual-time observables (throughput per virtual second, trace
// timestamps) remain directly comparable to the simulator's.
package live

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// Engine is the wall-clock implementation of core.Backend. Create one
// with New, add processes with Spawn, then call Run, which returns when
// every process has. Before Run, Engine methods may only be called from
// the constructing goroutine; afterwards they follow the monitor
// discipline (called with the engine lock held, i.e. from process code
// or timer callbacks).
type Engine struct {
	mu        sync.Mutex
	rng       *rand.Rand
	timescale float64

	start   time.Time
	started bool
	closed  bool
	events  int64
	liveN   int

	wg            sync.WaitGroup
	pendingProcs  []*pendingProc
	pendingTimers []*timerNode
	timers        map[*timerNode]struct{}
	timerSeq      uint64

	root       context.Context
	rootCancel context.CancelFunc
}

type pendingProc struct {
	p  *Proc
	fn func(p core.Proc)
}

var _ core.Backend = (*Engine)(nil)

// New returns an engine whose random source is seeded with seed and
// whose virtual clock runs timescale times faster than the wall clock
// (timescale <= 0 selects 1, i.e. uncompressed real time). Unlike the
// simulator, an identical seed does not reproduce a run — only the
// random draws are deterministic, not the interleaving.
func New(seed int64, timescale float64) *Engine {
	if timescale <= 0 {
		timescale = 1
	}
	e := &Engine{
		rng:       rand.New(rand.NewSource(seed)),
		timescale: timescale,
		timers:    make(map[*timerNode]struct{}),
	}
	e.root, e.rootCancel = context.WithCancel(context.Background())
	return e
}

// toReal converts a virtual duration to the wall-clock duration it runs
// for. Sub-nanosecond results round up to 1ns so positive virtual waits
// never become busy spins.
func (e *Engine) toReal(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	rd := time.Duration(float64(d) / e.timescale)
	if rd <= 0 {
		rd = 1
	}
	return rd
}

// Timescale reports the engine's time compression: virtual seconds per
// real second. Wire clients (internal/griddclient) use it to convert
// virtual tenures into the real durations a wall-clock daemon enforces.
func (e *Engine) Timescale() float64 { return e.timescale }

// Elapsed reports virtual time since Run started (zero before then).
func (e *Engine) Elapsed() time.Duration {
	if !e.started {
		return 0
	}
	return time.Duration(float64(time.Since(e.start)) * e.timescale)
}

// Now reports the current virtual time.
func (e *Engine) Now() time.Time { return core.Epoch.Add(e.Elapsed()) }

// Events reports how many scheduling steps (process launches and timer
// firings) the engine has executed.
func (e *Engine) Events() int64 { return e.events }

// RunQueueLen reports the number of live processes. The live engine
// has no run queue — goroutines are runnable whenever the scheduler
// says so — so the closest observable analogue is the live-process
// count (observability; engine lock held).
func (e *Engine) RunQueueLen() int { return e.liveN }

// TimerHeapLen reports the number of pending timers (observability;
// engine lock held).
func (e *Engine) TimerHeapLen() int { return len(e.timers) }

// Compactions is always zero: the live engine deletes canceled timers
// eagerly from its map, so there is nothing to compact (observability
// parity with sim.Engine).
func (e *Engine) Compactions() int64 { return 0 }

// Rand returns a uniform value in [0,1) from the engine's seeded
// source. Must be called under the engine lock (or before Run).
func (e *Engine) Rand() float64 { return e.rng.Float64() }

// Context returns the root context for the run.
func (e *Engine) Context() context.Context { return e.root }

// WithCancel derives an explicitly cancelable child context.
func (e *Engine) WithCancel(parent context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(parent)
}

// WithTimeout derives a child context canceled after d of virtual time.
func (e *Engine) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, e.toReal(d))
}

// NewResource implements core.Backend.
func (e *Engine) NewResource(name string, capacity int) core.Resource {
	return newResource(e, name, capacity)
}

// Spawn creates a new process executing fn. Before Run it is queued;
// afterwards (under the engine lock) it starts immediately.
func (e *Engine) Spawn(name string, fn func(p core.Proc)) {
	p := &Proc{eng: e, name: name}
	if !e.started {
		e.pendingProcs = append(e.pendingProcs, &pendingProc{p: p, fn: fn})
		return
	}
	e.launch(p, fn)
}

// launch starts the process goroutine. Callers must hold the engine
// lock (Run holds it while launching the pending set).
func (e *Engine) launch(p *Proc, fn func(p core.Proc)) {
	e.events++
	e.liveN++
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.mu.Lock()
		fn(p)
		e.liveN--
		e.mu.Unlock()
	}()
}

// Schedule arranges fn to run at virtual time now+d under the engine
// lock, returning a cancelable handle. Canceling under the lock is
// race-free against the callback. After the run has been shut down the
// handle is inert: the shutdown drain has already fired everything that
// was going to fire.
func (e *Engine) Schedule(d time.Duration, fn func()) core.Timer {
	n := &timerNode{eng: e, fn: fn, delay: e.toReal(d), seq: e.timerSeq}
	e.timerSeq++
	if e.closed {
		n.stopped = true
		return n
	}
	e.timers[n] = struct{}{}
	if !e.started {
		e.pendingTimers = append(e.pendingTimers, n)
		return n
	}
	n.arm()
	return n
}

// Run launches every pending process and timer, waits for all processes
// (including ones spawned later) to return, then drains outstanding
// timers: each pending callback fires exactly once, in deadline order,
// before Run returns. The simulator runs its event queue to quiescence,
// so a lease watchdog pending when the last process exits still fires
// and reclaims the zombie's units; without the drain the live backend
// would silently drop those timers and leak whatever bookkeeping they
// were about to heal. Callbacks run under the engine lock; anything
// they re-schedule lands after close and is inert. Run always returns
// nil; a scenario that never unwinds blocks here, so bound scenarios
// with context deadlines as the simulator's callers already do.
func (e *Engine) Run() error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		panic("live: Run called twice")
	}
	e.started = true
	e.start = time.Now()
	for _, n := range e.pendingTimers {
		n.arm()
	}
	e.pendingTimers = nil
	pending := e.pendingProcs
	e.pendingProcs = nil
	for _, pp := range pending {
		e.launch(pp.p, pp.fn)
	}
	e.mu.Unlock()

	e.wg.Wait()

	e.mu.Lock()
	e.closed = true // re-scheduling from a drained callback is inert
	drain := make([]*timerNode, 0, len(e.timers))
	for n := range e.timers {
		drain = append(drain, n)
	}
	sort.Slice(drain, func(i, j int) bool {
		if !drain[i].deadline.Equal(drain[j].deadline) {
			return drain[i].deadline.Before(drain[j].deadline)
		}
		return drain[i].seq < drain[j].seq
	})
	for _, n := range drain {
		if n.stopped { // canceled by an earlier drained callback
			continue
		}
		n.stopped = true
		delete(e.timers, n)
		if n.t != nil {
			n.t.Stop()
		}
		e.events++
		n.fn()
	}
	e.timers = nil
	e.mu.Unlock()
	e.rootCancel()
	return nil
}

// Live reports the number of processes that have started and not yet
// returned. Must be called under the engine lock.
func (e *Engine) Live() int { return e.liveN }

// timerNode is one scheduled callback. Cancel must be called under the
// engine lock; the callback itself takes the lock before running, so a
// cancellation observed there wins.
type timerNode struct {
	eng      *Engine
	fn       func()
	delay    time.Duration
	deadline time.Time // when the armed timer is due (shutdown drain order)
	seq      uint64
	t        *time.Timer
	stopped  bool
}

// arm starts the wall-clock timer. Engine lock held.
func (n *timerNode) arm() {
	e := n.eng
	n.deadline = time.Now().Add(n.delay)
	n.t = time.AfterFunc(n.delay, func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if n.stopped || e.closed {
			return
		}
		n.stopped = true
		delete(e.timers, n)
		e.events++
		n.fn()
	})
}

// Cancel implements core.Timer. Engine lock held.
func (n *timerNode) Cancel() {
	if n.stopped {
		return
	}
	n.stopped = true
	delete(n.eng.timers, n)
	if n.t != nil {
		n.t.Stop()
	}
}
