package live

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lease"
)

// ts compresses 1 virtual second into 0.1 real milliseconds, so
// multi-minute virtual scenarios finish in milliseconds of test time.
const ts = 10_000

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := New(1, ts)
	var elapsed time.Duration
	e.Spawn("sleeper", func(p core.Proc) {
		p.SleepFor(10 * time.Second)
		elapsed = p.Elapsed()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < 10*time.Second {
		t.Fatalf("virtual elapsed = %v, want >= 10s", elapsed)
	}
	if elapsed > 10*time.Minute {
		t.Fatalf("virtual elapsed = %v: sleep ran far past its scaled duration", elapsed)
	}
	if e.Events() == 0 {
		t.Fatal("no events counted")
	}
}

func TestSleepHonorsCancellation(t *testing.T) {
	e := New(1, ts)
	var err error
	e.Spawn("sleeper", func(p core.Proc) {
		ctx, cancel := p.WithTimeout(e.Context(), time.Second)
		defer cancel()
		err = p.Sleep(ctx, time.Hour)
	})
	if rerr := e.Run(); rerr != nil {
		t.Fatal(rerr)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sleep err = %v, want DeadlineExceeded", err)
	}
}

func TestTimerFiresAndCancels(t *testing.T) {
	e := New(1, ts)
	var fired, canceled atomic.Int64
	e.Schedule(time.Second, func() { fired.Add(1) })
	tm := e.Schedule(time.Second, func() { canceled.Add(1) })
	e.Spawn("driver", func(p core.Proc) {
		tm.Cancel() // before Run arms it for real: still pending
		// Run drops timers still pending when the last process exits,
		// and real timers resolve no finer than ~1.25ms: keep the
		// process alive for 5 virtual minutes (30ms real) so the
		// 1-virtual-second timer is far inside the window.
		p.SleepFor(5 * time.Minute)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired.Load() != 1 {
		t.Fatalf("timer fired %d times, want 1", fired.Load())
	}
	if canceled.Load() != 0 {
		t.Fatalf("canceled timer fired %d times", canceled.Load())
	}
}

func TestResourceFIFOUnderContention(t *testing.T) {
	e := New(1, ts)
	r := e.NewResource("server", 1)
	var served atomic.Int64
	for i := 0; i < 8; i++ {
		e.Spawn("client", func(p core.Proc) {
			if err := r.Acquire(p, e.Context()); err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			p.SleepFor(time.Second)
			r.Release()
			served.Add(1)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if served.Load() != 8 {
		t.Fatalf("served %d, want 8", served.Load())
	}
	if r.InUse() != 0 || r.QueueLen() != 0 {
		t.Fatalf("inUse=%d queue=%d after run", r.InUse(), r.QueueLen())
	}
}

func TestResourceAcquireTimesOut(t *testing.T) {
	e := New(1, ts)
	r := e.NewResource("server", 1).(*Resource)
	var werr error
	e.Spawn("holder", func(p core.Proc) {
		if err := r.Acquire(p, e.Context()); err != nil {
			t.Errorf("holder acquire: %v", err)
			return
		}
		p.SleepFor(time.Minute)
		r.Release()
	})
	e.Spawn("waiter", func(p core.Proc) {
		p.SleepFor(time.Second) // let the holder in first
		ctx, cancel := p.WithTimeout(e.Context(), 5*time.Second)
		defer cancel()
		werr = r.Acquire(p, ctx)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want DeadlineExceeded", werr)
	}
	if r.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", r.Timeouts)
	}
}

func TestParallelRunsBranches(t *testing.T) {
	e := New(1, ts)
	var ran atomic.Int64
	boom := errors.New("boom")
	e.Spawn("parent", func(p core.Proc) {
		fns := make([]func(context.Context, core.Runtime) error, 5)
		for i := range fns {
			i := i
			fns[i] = func(ctx context.Context, rt core.Runtime) error {
				if err := rt.Sleep(ctx, time.Second); err != nil {
					return err
				}
				ran.Add(1)
				if i == 3 {
					return boom
				}
				return nil
			}
		}
		errs := p.Parallel(e.Context(), 2, fns)
		for i, err := range errs {
			if i == 3 && !errors.Is(err, boom) {
				t.Errorf("branch 3 err = %v, want boom", err)
			}
			if i != 3 && err != nil {
				t.Errorf("branch %d err = %v", i, err)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 5 {
		t.Fatalf("ran %d branches, want 5", ran.Load())
	}
}

// TestLeaseWatchdogOnLiveBackend drives the lease manager — written
// against core.Backend — on the wall-clock engine: a wedged holder must
// be revoked after its quantum and the queued waiter granted.
func TestLeaseWatchdogOnLiveBackend(t *testing.T) {
	e := New(1, ts)
	m := lease.New(e, "res", 1, 10*time.Second)
	var waiterGranted atomic.Bool
	e.Spawn("stuck", func(p core.Proc) {
		l, err := m.Acquire(p, e.Context(), "stuck", 1)
		if err != nil {
			t.Errorf("stuck acquire: %v", err)
			return
		}
		_ = p.Hang(l.Ctx()) // wedged until the watchdog revokes us
		if !l.Revoked() {
			t.Error("lease not revoked")
		}
	})
	e.Spawn("waiter", func(p core.Proc) {
		p.SleepFor(time.Second)
		l, err := m.Acquire(p, e.Context(), "waiter", 1)
		if err != nil {
			t.Errorf("waiter acquire: %v", err)
			return
		}
		waiterGranted.Store(true)
		l.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Revokes != 1 {
		t.Fatalf("Revokes = %d, want 1", m.Revokes)
	}
	if !waiterGranted.Load() {
		t.Fatal("waiter never granted after revocation")
	}
}

// TestTryOnLiveBackend runs the core retry machinery end-to-end on the
// live runtime: a try with a virtual-time budget must exhaust in scaled
// real time, not the full virtual duration.
func TestTryOnLiveBackend(t *testing.T) {
	e := New(1, ts)
	start := time.Now()
	var terr error
	attempts := 0
	e.Spawn("client", func(p core.Proc) {
		terr = core.Try(e.Context(), p, core.For(time.Minute), core.TryConfig{}, func(ctx context.Context) error {
			attempts++
			if err := p.Sleep(ctx, 5*time.Second); err != nil {
				return err
			}
			return errors.New("always fails")
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var ex *core.ExhaustedError
	if !errors.As(terr, &ex) {
		t.Fatalf("try err = %v, want ExhaustedError", terr)
	}
	if attempts == 0 {
		t.Fatal("no attempts ran")
	}
	if real := time.Since(start); real > 5*time.Second {
		t.Fatalf("1-minute virtual try took %v real time: timescale not applied", real)
	}
}

// dropOnce is a scripted injector for the shutdown-drain test: it drops
// exactly one message, then reports a clean channel.
type dropOnce struct{ armed bool }

func (d *dropOnce) Inject(string) core.Fault {
	if d.armed {
		d.armed = false
		return core.Fault{Drop: true}
	}
	return core.Fault{}
}

// TestShutdownDrainsPendingTimers: Run must fire outstanding timer
// callbacks before returning, the way the simulator runs its event
// queue to quiescence. The regression this pins: a lease release
// dropped by the wire leaves a zombie booking whose only healer is the
// watchdog timer — if shutdown silently discards that timer, the units
// stay charged forever and every post-run inspection of the manager
// sees leaked capacity.
func TestShutdownDrainsPendingTimers(t *testing.T) {
	e := New(1, ts)
	m := lease.New(e, "res", 1, 10*time.Minute)
	inj := &dropOnce{}
	m.SetWire(inj, "wire", true)
	var fired atomic.Bool
	e.Schedule(time.Hour, func() { fired.Store(true) })
	e.Spawn("holder", func(p core.Proc) {
		l, err := m.Acquire(p, e.Context(), "holder", 1)
		if err != nil {
			t.Errorf("acquire: %v", err)
			return
		}
		p.SleepFor(time.Minute)
		inj.armed = true
		l.Release() // dropped: the manager never hears the end
		if m.InUse() != 1 {
			t.Errorf("inUse = %d right after dropped release, want 1 (zombie)", m.InUse())
		}
		// Exit well before the 10-minute watchdog deadline: the reclaim
		// timer is still pending when the last process unwinds.
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Error("pending timer callback was dropped at shutdown, not drained")
	}
	if m.InUse() != 0 {
		t.Errorf("inUse = %d after Run, want 0: the dropped release's watchdog never reclaimed", m.InUse())
	}
	if m.Outstanding() != 0 {
		t.Errorf("outstanding = %d after Run, want 0", m.Outstanding())
	}
	if m.Revokes != 1 {
		t.Errorf("Revokes = %d, want 1 (the shutdown-drained watchdog)", m.Revokes)
	}
	if e.TimerHeapLen() != 0 {
		t.Errorf("%d timers still pending after Run", e.TimerHeapLen())
	}
}
