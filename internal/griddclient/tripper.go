package griddclient

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
)

// Faults is a concurrency-safe fault plan for the HTTP boundary: the
// socket-level analogue of the chaos package's channel strategies
// (drop, duplicate, delay, partition), re-implemented here because
// chaos plans are engine-locked and a RoundTripper runs on arbitrary
// goroutines outside any monitor. All decisions draw from one seeded
// source under the plan's own mutex, so a seeded run makes the same
// decisions in the same arrival order (the order itself stays
// scheduler-dependent, as everywhere in the live backend).
type Faults struct {
	mu  sync.Mutex
	rng *rand.Rand

	// PDropReq drops the request before it is sent: the server never
	// sees the operation (a lost message on the forward path).
	PDropReq float64
	// PDropRep drops the reply after the server applied the operation:
	// the client sees core.ErrLost while the server's state moved — the
	// phantom-grant / lost-release hazard fencing exists to contain.
	PDropRep float64
	// PDup duplicates the request: the server applies it twice, the
	// client sees only the second reply (an at-least-once channel).
	PDup float64
	// PDelay delays the request by Delay before sending.
	PDelay float64
	Delay  time.Duration

	partUntil time.Time

	// Counters (read with Snapshot).
	drops, dups, delays int64
}

// NewFaults returns a plan drawing from a source seeded with seed.
func NewFaults(seed int64) *Faults {
	return &Faults{rng: rand.New(rand.NewSource(seed))}
}

// Partition drops every message (both directions) for the next d of
// real time: the two-rack partition at the socket.
func (f *Faults) Partition(d time.Duration) {
	f.mu.Lock()
	f.partUntil = time.Now().Add(d)
	f.mu.Unlock()
}

// Snapshot reports how many requests were dropped (either direction),
// duplicated, and delayed.
func (f *Faults) Snapshot() (drops, dups, delays int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.drops, f.dups, f.delays
}

// verdict is one request's fate, decided up front under the lock.
type verdict struct {
	dropReq, dropRep, dup bool
	delay                 time.Duration
}

func (f *Faults) roll() verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	var v verdict
	if time.Now().Before(f.partUntil) {
		v.dropReq = true
		f.drops++
		return v
	}
	switch {
	case f.rng.Float64() < f.PDropReq:
		v.dropReq = true
		f.drops++
	case f.rng.Float64() < f.PDropRep:
		v.dropRep = true
		f.drops++
	case f.rng.Float64() < f.PDup:
		v.dup = true
		f.dups++
	}
	if f.rng.Float64() < f.PDelay && f.Delay > 0 {
		v.delay = f.Delay
		f.delays++
	}
	return v
}

// FaultTripper injects F's faults around Base (nil Base means
// http.DefaultTransport). Install it as the Client's transport:
//
//	c.HTTP = &http.Client{Transport: &FaultTripper{F: faults}}
type FaultTripper struct {
	Base http.RoundTripper
	F    *Faults
}

func (t *FaultTripper) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.F == nil {
		return t.base().RoundTrip(req)
	}
	v := t.F.roll()
	if v.delay > 0 {
		select {
		case <-time.After(v.delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if v.dropReq {
		if req.Body != nil {
			_ = req.Body.Close()
		}
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, core.ErrLost)
	}
	if v.dup {
		// Apply the operation twice server-side; hand the client only
		// the second reply. Requires a replayable body (the JSON
		// clients always set GetBody via bytes.Reader).
		if clone := cloneRequest(req); clone != nil {
			first, err := t.base().RoundTrip(req)
			if err == nil {
				_, _ = io.Copy(io.Discard, first.Body)
				_ = first.Body.Close()
				return t.base().RoundTrip(clone)
			}
			// First send failed on the wire; fall through with the
			// clone so the operation still happens once.
			return t.base().RoundTrip(clone)
		}
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if v.dropRep {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return nil, fmt.Errorf("%s %s: reply %w", req.Method, req.URL.Path, core.ErrLost)
	}
	return resp, nil
}

// cloneRequest builds a re-sendable copy, or nil if the body cannot be
// replayed.
func cloneRequest(req *http.Request) *http.Request {
	clone := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		return clone
	}
	if req.GetBody == nil {
		return nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil
	}
	clone.Body = body
	return clone
}
