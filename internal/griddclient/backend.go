package griddclient

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gridd"
	"repro/internal/live"
)

// Backend is a live engine whose resources live on a gridd daemon: the
// third core.Backend next to sim and live. Processes, timers, virtual
// time, and randomness come from the embedded engine; NewResource
// creates the resource over the wire and hands back a proxy whose
// Acquire/Release are socket round-trips. Ethernet, Aloha, Fixed, and
// Reservation scenario code runs against it unmodified — the point of
// the exercise.
type Backend struct {
	*live.Engine
	C *Client

	// Quantum is the virtual default tenure for resources created via
	// NewResource; 0 means unlimited (no watchdog).
	Quantum time.Duration
	// Wait is the virtual long-poll window per parked Acquire round;
	// 0 selects 30s. Acquire loops rounds until its context dies.
	Wait time.Duration
}

var _ core.Backend = (*Backend)(nil)

// NewBackend wraps eng with resources hosted by the daemon c points
// at. The client's Timescale is aligned with the engine's.
func NewBackend(eng *live.Engine, c *Client) *Backend {
	c.Timescale = eng.Timescale()
	return &Backend{Engine: eng, C: c}
}

// NewResource implements core.Backend: create-or-resize on the daemon,
// then a local proxy. The signature has no error to return, so a wire
// failure here panics — resource creation is scenario setup, and a
// daemon that cannot even create resources has no scenario to run.
func (b *Backend) NewResource(name string, capacity int) core.Resource {
	err := b.C.CreateResource(context.Background(), gridd.CreateRequest{
		Name:      name,
		Capacity:  int64(capacity),
		QuantumNS: int64(b.C.ToReal(b.Quantum)),
	})
	if err != nil {
		panic(fmt.Sprintf("griddclient: create %s: %v", name, err))
	}
	return &remoteResource{b: b, name: name, capacity: capacity}
}

// remoteResource proxies one daemon-hosted resource behind the
// core.Resource surface.
//
// The read accessors (InUse, Available, QueueLen) and the synchronous
// operations (TryAcquire, Release, SetCapacity) each cost a socket
// round-trip made *without* releasing the engine monitor — core.
// Resource's signatures leave no seam to do otherwise. Against a
// local daemon that stall is tens of microseconds and is an accepted
// cost of running unmodified discipline code; latency-sensitive cells
// (internal/expt's gridd cells) drive the Client directly under
// Proc.Blocking instead. Acquire, the only call that legitimately
// parks, does release the monitor when its Proc is a Blocker (every
// *live.Proc is).
type remoteResource struct {
	b    *Backend
	name string

	mu       sync.Mutex
	capacity int      // local mirror for the no-error Capacity()
	held     []*Lease // grants not yet released, LIFO
}

var _ core.Resource = (*remoteResource)(nil)

func (r *remoteResource) Name() string { return r.name }

func (r *remoteResource) Capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.capacity
}

// probe reads the daemon's view; on wire failure it reports a fully
// busy resource, which is the conservative carrier-sense answer (a
// channel you cannot hear is not idle).
func (r *remoteResource) probe() gridd.ProbeReply {
	pr, err := r.b.C.Probe(context.Background(), r.name)
	if err != nil {
		r.mu.Lock()
		cap := r.capacity
		r.mu.Unlock()
		return gridd.ProbeReply{Resource: r.name, Capacity: int64(cap), InUse: int64(cap)}
	}
	return pr
}

func (r *remoteResource) InUse() int     { return int(r.probe().InUse) }
func (r *remoteResource) Available() int { return int(r.probe().Free) }
func (r *remoteResource) QueueLen() int  { return r.probe().Queue }

func (r *remoteResource) SetCapacity(n int) {
	if err := r.b.C.CreateResource(context.Background(), gridd.CreateRequest{
		Name: r.name, Capacity: int64(n),
	}); err != nil {
		return // daemon unreachable; local mirror keeps the old value
	}
	r.mu.Lock()
	r.capacity = n
	r.mu.Unlock()
}

// TryAcquire is the EMFILE regime: WaitNS 0, an immediate verdict.
func (r *remoteResource) TryAcquire() bool {
	lease, err := r.b.C.Acquire(context.Background(), gridd.AcquireRequest{
		Resource: r.name, Holder: r.name + "/anon", Units: 1,
	})
	if err != nil {
		return false
	}
	r.mu.Lock()
	r.held = append(r.held, lease)
	r.mu.Unlock()
	return true
}

// Acquire parks in the daemon's FIFO queue via long-poll rounds until
// granted or ctx dies. The engine monitor is released around each
// round when p is a Blocker.
func (r *remoteResource) Acquire(p core.Proc, ctx context.Context) error {
	blocker, _ := p.(Blocker)
	waitV := r.b.Wait
	if waitV <= 0 {
		waitV = 30 * time.Second
	}
	waitR := r.b.C.ToReal(waitV)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease *Lease
		var err error
		Block(blocker, func() {
			lease, err = r.b.C.Acquire(ctx, gridd.AcquireRequest{
				Resource: r.name, Holder: p.Name(), Units: 1, WaitNS: int64(waitR),
			})
		})
		if err == nil {
			r.mu.Lock()
			r.held = append(r.held, lease)
			r.mu.Unlock()
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, ErrBusy) || errors.Is(err, ErrUnavailable) {
			continue // next round; FIFO position is re-taken, like a retry
		}
		return err
	}
}

// Release retires the most recent unreleased grant. A stale verdict
// (the watchdog already revoked it) means the units are home anyway,
// which is all Release promises.
func (r *remoteResource) Release() {
	r.mu.Lock()
	n := len(r.held)
	if n == 0 {
		r.mu.Unlock()
		return
	}
	lease := r.held[n-1]
	r.held = r.held[:n-1]
	r.mu.Unlock()
	_ = lease.Release(context.Background())
}
