// Package griddclient is the wire client for the gridd daemon
// (internal/gridd): plain HTTP/JSON calls that rebuild the repo's
// typed errors from ErrorReply codes, so errors.Is(err, core.ErrStale)
// and core.Rejection(err) work across the socket exactly as they do
// against an in-process substrate.
//
// Time: the daemon runs on the wall clock; a client driving it from a
// compressed-time live engine must convert virtual durations with
// ToReal before they cross the socket (and scale observed real waits
// back with ToVirtual). Blocking: every method here performs a real
// socket round-trip, so code running under the live engine's monitor
// lock must wrap calls in (*live.Proc).Blocking — the Block helper
// does this nil-safely.
package griddclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/gridd"
)

// Blocker releases an engine monitor lock around fn; *live.Proc
// satisfies it. See Block.
type Blocker interface {
	Blocking(fn func())
}

// Block runs fn through b, or directly when b is nil (plain goroutines
// that hold no monitor lock).
func Block(b Blocker, fn func()) {
	if b == nil {
		fn()
		return
	}
	b.Blocking(fn)
}

// ErrBusy is the immediate-mode verdict: no free units now (the wire
// EMFILE). Matched through *BusyError.
var ErrBusy = errors.New("gridd: busy")

// ErrUnavailable marks a retriable outage: the resource crashed or the
// daemon is draining. Matched through *UnavailableError.
var ErrUnavailable = errors.New("gridd: unavailable")

// ErrLapsed marks a claim that arrived after its booking's window
// closed.
var ErrLapsed = errors.New("gridd: booking lapsed")

// ErrEarly marks a claim that arrived before its window opened.
var ErrEarly = errors.New("gridd: window not open")

// ErrUnknown marks a missing resource, lease, or booking.
var ErrUnknown = errors.New("gridd: no such entity")

// BusyError carries the shortfall of a busy verdict.
type BusyError struct {
	Resource  string
	Shortfall int64
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("%s: %v (%d unit(s) short)", e.Resource, ErrBusy, e.Shortfall)
}

// Is makes errors.Is(err, ErrBusy) match.
func (e *BusyError) Is(target error) bool { return target == ErrBusy }

// UnavailableError is a typed retriable outage: Reason is "down" or
// "draining", RetryAfter the server's hint (0 = none).
type UnavailableError struct {
	Resource   string
	Reason     string
	RetryAfter time.Duration
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("%s: %v (%s, retry after %v)", e.Resource, ErrUnavailable, e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrUnavailable) match.
func (e *UnavailableError) Is(target error) bool { return target == ErrUnavailable }

// Client speaks the gridd wire protocol to one daemon.
type Client struct {
	// Base is the daemon's URL, e.g. "http://127.0.0.1:9123".
	Base string
	// HTTP is the transport; nil means http.DefaultClient. Install a
	// *FaultTripper here to run the chaos battery.
	HTTP *http.Client
	// Timescale is the driving engine's compression (virtual seconds
	// per real second); <= 0 means 1. Only the ToReal/ToVirtual
	// helpers consult it — wire durations are always real.
	Timescale float64
}

// New returns a client for the daemon at base.
func New(base string, timescale float64) *Client {
	return &Client{Base: base, Timescale: timescale}
}

// ToReal converts a virtual duration to the real duration the daemon
// should enforce (minimum 1ns, matching live.Engine.toReal).
func (c *Client) ToReal(d time.Duration) time.Duration {
	ts := c.Timescale
	if ts <= 0 {
		ts = 1
	}
	if d <= 0 {
		return 0
	}
	rd := time.Duration(float64(d) / ts)
	if rd <= 0 {
		rd = 1
	}
	return rd
}

// ToVirtual scales an observed real duration back into virtual time.
func (c *Client) ToVirtual(d time.Duration) time.Duration {
	ts := c.Timescale
	if ts <= 0 {
		ts = 1
	}
	return time.Duration(float64(d) * ts)
}

func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do runs one round-trip: JSON-encode in (nil = no body), decode a 2xx
// into out, rebuild a typed error from a non-2xx ErrorReply. resource
// names the resource for error construction.
func (c *Client) do(ctx context.Context, method, path, resource string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("gridd: encode %s: %w", path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return fmt.Errorf("gridd: %s: %w", path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return fmt.Errorf("gridd: %s %s: %w", method, path, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		var er gridd.ErrorReply
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			return fmt.Errorf("gridd: %s %s: HTTP %d", method, path, resp.StatusCode)
		}
		return wireError(er, resource)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("gridd: decode %s: %w", path, err)
	}
	return nil
}

// wireError rebuilds the typed error an ErrorReply encodes.
func wireError(er gridd.ErrorReply, resource string) error {
	switch er.Code {
	case gridd.CodeStale:
		return core.Stale(resource, er.Epoch, er.Fence)
	case gridd.CodeRejected:
		return core.Rejected(resource, er.Shortfall)
	case gridd.CodeBusy:
		return &BusyError{Resource: resource, Shortfall: er.Shortfall}
	case gridd.CodeDown:
		return &UnavailableError{Resource: resource, Reason: "down", RetryAfter: time.Duration(er.RetryAfterNS)}
	case gridd.CodeDraining:
		return &UnavailableError{Resource: resource, Reason: "draining", RetryAfter: time.Duration(er.RetryAfterNS)}
	case gridd.CodeLapsed:
		return fmt.Errorf("%s: %w", resource, ErrLapsed)
	case gridd.CodeEarly:
		return fmt.Errorf("%s: %w", resource, ErrEarly)
	case gridd.CodeUnknown:
		return fmt.Errorf("%s: %w: %s", resource, ErrUnknown, er.Message)
	default:
		return fmt.Errorf("gridd: %s: %s", er.Code, er.Message)
	}
}

// Lease is a granted tenure plus the handle to retire or extend it.
type Lease struct {
	gridd.LeaseReply
	c *Client
}

// Probe is the carrier-sense read: one cheap GET.
func (c *Client) Probe(ctx context.Context, name string) (gridd.ProbeReply, error) {
	var pr gridd.ProbeReply
	err := c.do(ctx, http.MethodGet, "/probe/"+name, name, nil, &pr)
	return pr, err
}

// Acquire leases units; see gridd.AcquireRequest for the wait regimes.
func (c *Client) Acquire(ctx context.Context, req gridd.AcquireRequest) (*Lease, error) {
	var lr gridd.LeaseReply
	if err := c.do(ctx, http.MethodPost, "/acquire", req.Resource, req, &lr); err != nil {
		return nil, err
	}
	return &Lease{LeaseReply: lr, c: c}, nil
}

// Release retires the lease. A fenced daemon answers a late or
// duplicated release with core.ErrStale.
func (l *Lease) Release(ctx context.Context) error {
	return l.c.do(ctx, http.MethodPost, "/release", l.Resource, gridd.ReleaseRequest{
		Resource: l.Resource, LeaseID: l.LeaseID, Epoch: l.Epoch, Units: l.Units,
	}, nil)
}

// Renew extends the tenure by the real duration d (0 = one default
// quantum) and reports the new daemon-clock deadline.
func (l *Lease) Renew(ctx context.Context, d time.Duration) (gridd.RenewReply, error) {
	var rr gridd.RenewReply
	err := l.c.do(ctx, http.MethodPost, "/renew", l.Resource, gridd.RenewRequest{
		Resource: l.Resource, LeaseID: l.LeaseID, Epoch: l.Epoch, ForNS: int64(d),
	}, &rr)
	if err == nil {
		l.DeadlineNS = rr.DeadlineNS
	}
	return rr, err
}

// Reserve books a window against the resource's admission book.
func (c *Client) Reserve(ctx context.Context, req gridd.ReserveRequest) (gridd.ReserveReply, error) {
	var rr gridd.ReserveReply
	err := c.do(ctx, http.MethodPost, "/reserve", req.Resource, req, &rr)
	return rr, err
}

// Claim converts a booking into a window-fenced lease.
func (c *Client) Claim(ctx context.Context, req gridd.ClaimRequest) (*Lease, error) {
	var lr gridd.LeaseReply
	if err := c.do(ctx, http.MethodPost, "/claim", req.Resource, req, &lr); err != nil {
		return nil, err
	}
	return &Lease{LeaseReply: lr, c: c}, nil
}

// Cancel forfeits an unclaimed booking.
func (c *Client) Cancel(ctx context.Context, req gridd.CancelRequest) error {
	return c.do(ctx, http.MethodPost, "/cancel", req.Resource, req, nil)
}

// CreateResource creates (or resizes) a resource on the daemon.
func (c *Client) CreateResource(ctx context.Context, req gridd.CreateRequest) error {
	return c.do(ctx, http.MethodPost, "/resources", req.Name, req, nil)
}

// Stats reads the resource's full accounting.
func (c *Client) Stats(ctx context.Context, name string) (gridd.StatsReply, error) {
	var st gridd.StatsReply
	err := c.do(ctx, http.MethodGet, "/stats/"+name, name, nil, &st)
	return st, err
}

// Healthz reads the daemon's liveness report.
func (c *Client) Healthz(ctx context.Context) (map[string]any, error) {
	var h map[string]any
	err := c.do(ctx, http.MethodGet, "/healthz", "", nil, &h)
	return h, err
}
