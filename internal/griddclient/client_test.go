package griddclient_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gridd"
	"repro/internal/griddclient"
	"repro/internal/live"
)

func newDaemon(t *testing.T, rcs ...gridd.ResourceConfig) (*gridd.Server, string) {
	t.Helper()
	srv := gridd.NewServer(gridd.Config{Resources: rcs})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs.URL
}

// countingTripper records how many requests actually reach the wire.
type countingTripper struct {
	mu sync.Mutex
	n  int
}

func (c *countingTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return http.DefaultTransport.RoundTrip(req)
}

func (c *countingTripper) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func TestTripperDropRequestNeverReachesServer(t *testing.T) {
	_, url := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 2})
	counter := &countingTripper{}
	f := griddclient.NewFaults(1)
	f.PDropReq = 1
	c := griddclient.New(url, 1)
	c.HTTP = &http.Client{Transport: &griddclient.FaultTripper{Base: counter, F: f}}

	_, err := c.Acquire(context.Background(), gridd.AcquireRequest{Resource: "fds", Holder: "a", Units: 1})
	if !errors.Is(err, core.ErrLost) {
		t.Fatalf("dropped request = %v; want core.ErrLost", err)
	}
	if counter.count() != 0 {
		t.Fatalf("%d requests reached the wire; want 0", counter.count())
	}
	drops, _, _ := f.Snapshot()
	if drops != 1 {
		t.Fatalf("drops = %d; want 1", drops)
	}
}

func TestTripperDropReplyAppliesServerSide(t *testing.T) {
	_, url := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 2})
	f := griddclient.NewFaults(1)
	f.PDropRep = 1
	c := griddclient.New(url, 1)
	c.HTTP = &http.Client{Transport: &griddclient.FaultTripper{F: f}}

	// The acquire is applied server-side; only the reply is lost. This
	// is the phantom-grant hazard: the client holds nothing it knows
	// of, the server charges a unit until the watchdog reclaims it.
	_, err := c.Acquire(context.Background(), gridd.AcquireRequest{Resource: "fds", Holder: "a", Units: 1})
	if !errors.Is(err, core.ErrLost) {
		t.Fatalf("dropped reply = %v; want core.ErrLost", err)
	}
	clean := griddclient.New(url, 1)
	st, err := clean.Stats(context.Background(), "fds")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Grants != 1 || st.Outstanding != 1 {
		t.Fatalf("stats = %+v; want the orphaned grant applied server-side", st)
	}
}

func TestTripperDuplicateAppliesTwice(t *testing.T) {
	_, url := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 4})
	f := griddclient.NewFaults(1)
	f.PDup = 1
	c := griddclient.New(url, 1)
	c.HTTP = &http.Client{Transport: &griddclient.FaultTripper{F: f}}

	lease, err := c.Acquire(context.Background(), gridd.AcquireRequest{Resource: "fds", Holder: "a", Units: 1})
	if err != nil {
		t.Fatalf("acquire over duplicating channel: %v", err)
	}
	clean := griddclient.New(url, 1)
	st, _ := clean.Stats(context.Background(), "fds")
	if st.Grants != 2 || st.Outstanding != 2 {
		t.Fatalf("stats = %+v; want the duplicated acquire applied twice", st)
	}
	// The client saw the second grant; releasing it (over a healed
	// channel — on the faulty one the release would be duplicated too,
	// and the replay correctly fenced as stale) must not free the
	// first: each lease retires exactly once.
	c.HTTP = &http.Client{}
	if err := lease.Release(context.Background()); err != nil {
		t.Fatalf("release: %v", err)
	}
	st, _ = clean.Stats(context.Background(), "fds")
	if st.Outstanding != 1 {
		t.Fatalf("outstanding = %d after releasing the seen grant; want 1 orphan", st.Outstanding)
	}
}

func TestTripperPartitionDropsEverything(t *testing.T) {
	_, url := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 2})
	f := griddclient.NewFaults(1)
	c := griddclient.New(url, 1)
	c.HTTP = &http.Client{Transport: &griddclient.FaultTripper{F: f}}

	f.Partition(50 * time.Millisecond)
	if _, err := c.Probe(context.Background(), "fds"); !errors.Is(err, core.ErrLost) {
		t.Fatalf("probe during partition = %v; want ErrLost", err)
	}
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Probe(context.Background(), "fds"); err != nil {
		t.Fatalf("probe after partition healed: %v", err)
	}
}

func TestTimescaleConversion(t *testing.T) {
	c := griddclient.New("http://unused", 1000)
	if got := c.ToReal(time.Second); got != time.Millisecond {
		t.Fatalf("ToReal(1s)@1000 = %v; want 1ms", got)
	}
	if got := c.ToReal(time.Nanosecond); got != time.Nanosecond {
		t.Fatalf("ToReal floor = %v; want 1ns (no busy spins)", got)
	}
	if got := c.ToVirtual(time.Millisecond); got != time.Second {
		t.Fatalf("ToVirtual(1ms)@1000 = %v; want 1s", got)
	}
}

// TestBackendRunsScenarioUnmodified drives the core.Backend surface —
// the same NewResource/Acquire/Release calls every scenario makes —
// through the wire, with real engine procs contending over the socket.
func TestBackendRunsScenarioUnmodified(t *testing.T) {
	srv, url := newDaemon(t)
	_ = srv
	eng := live.New(7, 200) // 1 virtual second = 5ms real
	b := griddclient.NewBackend(eng, griddclient.New(url, 1))
	b.Quantum = 2 * time.Minute // virtual; ample for every tenure below
	b.Wait = 30 * time.Second

	res := b.NewResource("lanes", 2)
	if res.Capacity() != 2 || res.Available() != 2 {
		t.Fatalf("fresh resource: cap %d avail %d; want 2/2", res.Capacity(), res.Available())
	}

	const n, opsPer = 6, 3
	var mu sync.Mutex
	completed := 0
	for i := 0; i < n; i++ {
		b.Spawn(fmt.Sprintf("client-%d", i), func(p core.Proc) {
			for j := 0; j < opsPer; j++ {
				if err := res.Acquire(p, b.Context()); err != nil {
					return
				}
				p.SleepFor(2 * time.Second) // virtual hold
				res.Release()
				mu.Lock()
				completed++
				mu.Unlock()
				p.SleepFor(time.Second)
			}
		})
	}
	if err := b.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if completed != n*opsPer {
		t.Fatalf("completed %d ops; want %d", completed, n*opsPer)
	}
	// Every unit is home, conservation holds on the daemon's ledger.
	c := griddclient.New(url, 1)
	st, err := c.Stats(context.Background(), "lanes")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Outstanding != 0 || st.Phantoms != 0 {
		t.Fatalf("stats = %+v; want all units home, no phantoms", st)
	}
	if st.Grants != int64(n*opsPer) || st.Grants != st.Releases+st.Revokes {
		t.Fatalf("conservation: %d grants, %d releases, %d revokes", st.Grants, st.Releases, st.Revokes)
	}
}

// TestBackendTryAcquireIsImmediate checks the EMFILE regime through
// the core.Resource surface.
func TestBackendTryAcquireIsImmediate(t *testing.T) {
	_, url := newDaemon(t)
	eng := live.New(1, 1000)
	b := griddclient.NewBackend(eng, griddclient.New(url, 1))
	res := b.NewResource("one", 1)

	if !res.TryAcquire() {
		t.Fatalf("TryAcquire on a free unit failed")
	}
	if res.TryAcquire() {
		t.Fatalf("TryAcquire on a full resource succeeded")
	}
	res.Release()
	if !res.TryAcquire() {
		t.Fatalf("TryAcquire after release failed")
	}
	res.Release()
	if got := res.InUse(); got != 0 {
		t.Fatalf("InUse = %d at rest; want 0", got)
	}
	res.SetCapacity(5)
	if res.Capacity() != 5 || res.Available() != 5 {
		t.Fatalf("after SetCapacity(5): cap %d avail %d", res.Capacity(), res.Available())
	}
}
