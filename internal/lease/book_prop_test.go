package lease

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// The book property harness mirrors prop_test.go: randomized, seeded
// schedules of reserve / cancel / lapse / claim / wedge / short-renew
// ops from several concurrent clients, checked against three
// properties the fourth discipline leans on:
//
//   - no-overlap: the final effective occupancy of the book — every
//     admitted booking charged from its window start to the moment the
//     book actually retired it — never exceeds capacity at any instant;
//   - units conservation: every booking ends in exactly one of cancel,
//     lapse, or claim; every claim ends in exactly one of release or
//     revocation; at quiescence nothing is outstanding and the book's
//     own counters agree with the harness ledger;
//   - FIFO admission among same-window requests: if a request was
//     refused, an identical request (same window, same units) arriving
//     later with no booking retired in between must be refused too —
//     the book never reorders admission.
//
// A failure is re-run with progressively smaller op counts and client
// counts to report the smallest failing configuration.

const (
	bookPropCapacity = 4
	bookPropSlot     = 10 * time.Second // window starts/tenures are slot-aligned
)

// bookDecision is one admission verdict with the retirement epoch it
// was made under: the count of bookings retired (canceled, lapsed,
// released, revoked) so far. Within one epoch, capacity over any fixed
// window only shrinks, which is what makes the FIFO check sound.
type bookDecision struct {
	window   string
	units    int64
	admitted bool
	epoch    int64
}

// bookInterval is one admitted booking's final effective occupancy.
type bookInterval struct {
	start, end time.Duration
	units      int64
}

// bookLedger is the harness's model of what the book must agree with.
type bookLedger struct {
	decisions []bookDecision
	intervals []bookInterval
	accepted  int64
	rejects   int64
	releases  int64
	wedges    int64
	deadWins  int64 // mid-window revocations whose window stayed booked
}

// bookPropRun executes one randomized schedule and returns the ledger
// plus a failure description ("" if every property held).
func bookPropRun(seed int64, clients, opsPer int) (*bookLedger, string) {
	e := sim.New(seed)
	b := NewBook(e.RT(), "res", bookPropCapacity)
	led := &bookLedger{}
	var failure string
	fail := func(format string, args ...any) {
		if failure == "" {
			failure = fmt.Sprintf(format, args...)
		}
	}
	epoch := func() int64 { return b.Cancels + b.Lapses + b.Tenure().Revokes + led.releases }

	for i := 0; i < clients; i++ {
		holder := fmt.Sprintf("c%d", i)
		rng := rand.New(rand.NewSource(seed<<8 + int64(i)))
		e.Spawn(holder, func(p *sim.Proc) {
			for j := 0; j < opsPer; j++ {
				p.SleepFor(time.Duration(rng.Intn(15000)) * time.Millisecond)
				now := p.Elapsed()
				start := now.Truncate(bookPropSlot) + time.Duration(rng.Intn(3))*bookPropSlot
				if start < now {
					start += bookPropSlot
				}
				tenure := time.Duration(1+rng.Intn(2)) * bookPropSlot
				units := int64(1 + rng.Intn(2))
				end := start + tenure

				r, err := b.Reserve(p, holder, start, tenure, units)
				led.decisions = append(led.decisions, bookDecision{
					window:   fmt.Sprintf("%d+%d", start, tenure),
					units:    units,
					admitted: err == nil,
					epoch:    epoch(),
				})
				if err != nil {
					re := core.Rejection(err)
					if re == nil || re.Shortfall <= 0 {
						fail("rejection without a positive typed shortfall: %v", err)
						return
					}
					led.rejects++
					continue
				}
				led.accepted++
				effEnd := end // lapse, wedge, and dead windows charge to the boundary

				switch rng.Intn(5) {
				case 0: // cancel at a random moment (or lapse if we oversleep)
					p.SleepFor(time.Duration(rng.Int63n(int64(end - now + 5*time.Second))))
					if r.state == resPending {
						r.Cancel()
						switch t := p.Elapsed(); {
						case t <= start:
							effEnd = start // never occupied
						case t < end:
							effEnd = t
						}
					}
				case 1: // walk away: the booking lapses unclaimed
				default: // claim once the window opens
					if start > p.Elapsed() {
						p.SleepFor(start - p.Elapsed())
					}
					l, cerr := r.Claim(p, e.Context())
					if cerr != nil {
						fail("claim at window start failed: %v", cerr)
						return
					}
					switch rng.Intn(3) {
					case 0: // wedge: the watchdog must fire exactly at the boundary
						led.wedges++
						_ = p.Sleep(l.Ctx(), 50*tenure)
						if !l.Revoked() {
							fail("wedged holder was not revoked")
							return
						}
						if p.Elapsed() != end {
							fail("revocation at %v, want exactly the window boundary %v", p.Elapsed(), end)
							return
						}
					case 1: // hold for part of the window, then release
						_ = p.Sleep(l.Ctx(), time.Duration(rng.Int63n(int64(end-p.Elapsed()))))
						if l.Revoked() {
							fail("holder revoked before the window boundary")
							return
						}
						effEnd = p.Elapsed()
						led.releases++
						r.Release()
					case 2: // shorten the tenure by renewing small, then oversleep:
						// a mid-window revocation whose dead window stays booked
						d := (end - p.Elapsed()) / 4
						r.Renew(d)
						_ = p.Sleep(l.Ctx(), 3*d)
						if !l.Revoked() {
							effEnd = p.Elapsed()
							led.releases++
							r.Release()
						} else {
							led.deadWins++
							if b.Booked(p.Elapsed(), end) < units {
								fail("revoked mid-window but the dead window is not booked")
								return
							}
						}
					}
				}
				if effEnd > start {
					led.intervals = append(led.intervals, bookInterval{start: start, end: effEnd, units: units})
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		return led, fmt.Sprintf("engine: %v", err)
	}
	if failure != "" {
		return led, failure
	}

	// Units conservation, against the book's own counters.
	if b.Reserves != led.accepted || b.Rejects != led.rejects {
		return led, fmt.Sprintf("book counted %d reserves / %d rejects, harness saw %d / %d",
			b.Reserves, b.Rejects, led.accepted, led.rejects)
	}
	if b.Reserves != b.Cancels+b.Lapses+b.Admits {
		return led, fmt.Sprintf("conservation: %d reserves != %d cancels + %d lapses + %d admits",
			b.Reserves, b.Cancels, b.Lapses, b.Admits)
	}
	if b.Admits != led.releases+b.Tenure().Revokes {
		return led, fmt.Sprintf("conservation: %d admits != %d releases + %d revokes",
			b.Admits, led.releases, b.Tenure().Revokes)
	}
	if b.Tenure().Acquires != b.Admits {
		return led, fmt.Sprintf("tenure manager granted %d, book admitted %d", b.Tenure().Acquires, b.Admits)
	}
	if b.Tenure().InUse() != 0 || b.Outstanding() != 0 {
		return led, fmt.Sprintf("quiescence: %d units in use, %d bookings outstanding",
			b.Tenure().InUse(), b.Outstanding())
	}

	// No-overlap over the final effective occupancy.
	for _, iv := range led.intervals {
		var sum int64
		for _, other := range led.intervals {
			if other.start <= iv.start && iv.start < other.end {
				sum += other.units
			}
		}
		if sum > bookPropCapacity {
			return led, fmt.Sprintf("overlap: %d units booked at %v, capacity %d", sum, iv.start, bookPropCapacity)
		}
	}

	// FIFO admission among same-window requests: a refusal followed by
	// an identical admission with nothing retired in between means the
	// book reordered arrivals.
	for i, di := range led.decisions {
		if di.admitted {
			continue
		}
		for _, dj := range led.decisions[i+1:] {
			if dj.window == di.window && dj.units == di.units && dj.epoch == di.epoch && dj.admitted {
				return led, fmt.Sprintf("FIFO violated: window %s units %d rejected then admitted within epoch %d",
					di.window, di.units, di.epoch)
			}
		}
	}
	return led, ""
}

func TestBookPropNoOverlapConservationFIFO(t *testing.T) {
	const clients, opsPer = 6, 10
	var accepted, rejects, releases, wedges, deadWins int64
	for seed := int64(1); seed <= 25; seed++ {
		led, msg := bookPropRun(seed, clients, opsPer)
		if msg != "" {
			sc, so, sm := shrinkBookProp(seed, clients, opsPer, msg)
			t.Fatalf("seed %d: %d clients x %d ops fail (shrunk from %dx%d): %s",
				seed, sc, so, clients, opsPer, sm)
		}
		accepted += led.accepted
		rejects += led.rejects
		releases += led.releases
		wedges += led.wedges
		deadWins += led.deadWins
	}
	// The properties are only as strong as the schedules that reach
	// them: every terminal path and the contention that makes FIFO and
	// no-overlap non-trivial must actually occur across the seed set.
	if accepted == 0 || rejects == 0 || releases == 0 || wedges == 0 || deadWins == 0 {
		t.Fatalf("vacuous coverage: accepted=%d rejects=%d releases=%d wedges=%d deadWindows=%d",
			accepted, rejects, releases, wedges, deadWins)
	}
}

// shrinkBookProp reduces ops-per-client, then client count, as far as
// the failure persists, returning the smallest failing configuration
// and its message.
func shrinkBookProp(seed int64, clients, opsPer int, msg string) (int, int, string) {
	for opsPer > 1 {
		if _, m := bookPropRun(seed, clients, opsPer-1); m != "" {
			opsPer, msg = opsPer-1, m
		} else {
			break
		}
	}
	for clients > 1 {
		if _, m := bookPropRun(seed, clients-1, opsPer); m != "" {
			clients, msg = clients-1, m
		} else {
			break
		}
	}
	return clients, opsPer, msg
}
