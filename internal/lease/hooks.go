package lease

import "repro/internal/obs"

// Hooks mirrors the Manager's ledger into observability counters. Every
// field may be nil (obs instruments are nil-safe), so an unhooked
// manager pays one pointer check per event — the same contract as the
// tracer. Install with SetHooks before the run starts.
type Hooks struct {
	Grants   *obs.Counter // tenures granted (leased or raw)
	Rejects  *obs.Counter // TryAcquire/TryTake failures
	Timeouts *obs.Counter // waiters abandoned by cancellation
	Revokes  *obs.Counter // tenures forcibly reclaimed by the watchdog
	// RevokedUnits counts the units those revocations reclaimed: on a
	// reservation book's tenure manager this is exactly the dead-window
	// capacity (booked but revoked units) the FigRes sweep measures.
	RevokedUnits *obs.Counter
	// Wire tallies (wire.go): control messages the unreliable channel
	// swallowed or duplicated, and stale-epoch messages the fence
	// rejected.
	Drops  *obs.Counter
	Dups   *obs.Counter
	Stales *obs.Counter
}

// SetHooks installs observability counters mirroring the manager's
// ledger (engine token).
func (m *Manager) SetHooks(h Hooks) { m.hooks = h }

func (m *Manager) noteGrant()   { m.Acquires++; m.hooks.Grants.Inc() }
func (m *Manager) noteReject()  { m.Rejects++; m.hooks.Rejects.Inc() }
func (m *Manager) noteTimeout() { m.Timeouts++; m.hooks.Timeouts.Inc() }
func (m *Manager) noteRevoke(units int64) {
	m.Revokes++
	m.hooks.Revokes.Inc()
	m.hooks.RevokedUnits.Add(units)
}
func (m *Manager) noteDrop()  { m.Drops++; m.hooks.Drops.Inc() }
func (m *Manager) noteDup()   { m.Dups++; m.hooks.Dups.Inc() }
func (m *Manager) noteStale() { m.Stales++; m.hooks.Stales.Inc() }

// BookHooks mirrors the Book's admission ledger into observability
// counters; same nil-safety contract as Hooks.
type BookHooks struct {
	Reserves *obs.Counter // bookings admitted
	Rejects  *obs.Counter // bookings refused (book full over the window)
	Admits   *obs.Counter // booked windows claimed
	Cancels  *obs.Counter // bookings canceled before a claim
	Lapses   *obs.Counter // bookings whose window ended unclaimed
}

// SetHooks installs observability counters mirroring the book's
// admission ledger (engine token).
func (b *Book) SetHooks(h BookHooks) { b.hooks = h }
