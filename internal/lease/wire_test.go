package lease

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// oneShot is a scripted injector: it returns the staged fault exactly
// once, then zero faults. Tests stage a fault immediately before the
// one wire operation that should draw it; every other consultation
// (grant acknowledgements, clean renews) sees a clean channel.
type oneShot struct{ next core.Fault }

func (o *oneShot) Inject(string) core.Fault {
	f := o.next
	o.next = core.Fault{}
	return f
}

// TestWireReleaseDropWatchdogReclaims: a dropped release leaves the
// manager's books charged — the holder is gone (ground truth zero) but
// the manager never heard the end. The watchdog reclaims the zombie at
// the old deadline; fencing retires the epoch so nothing can free it
// twice.
func TestWireReleaseDropWatchdogReclaims(t *testing.T) {
	e := sim.New(1)
	m := New(e.RT(), "res", 1, 5*time.Second)
	inj := &oneShot{}
	m.SetWire(inj, "wire", true)
	e.Spawn("a", func(p *sim.Proc) {
		l, err := m.Acquire(p, e.Context(), "a", 1)
		if err != nil {
			t.Error(err)
			return
		}
		p.SleepFor(2 * time.Second)
		inj.next = core.Fault{Drop: true}
		l.Release()
		if m.Outstanding() != 0 {
			t.Errorf("outstanding=%d after holder stopped, want 0", m.Outstanding())
		}
		if m.InUse() != 1 {
			t.Errorf("inUse=%d right after dropped release, want 1 (zombie)", m.InUse())
		}
		p.SleepFor(4 * time.Second) // past the 5s deadline
		if m.InUse() != 0 {
			t.Errorf("inUse=%d after watchdog deadline, want 0", m.InUse())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Revokes != 1 || m.Drops != 1 {
		t.Fatalf("revokes=%d drops=%d, want 1 and 1", m.Revokes, m.Drops)
	}
}

// TestWireRenewDropWatchdogFires: a dropped renewal means the holder
// believes it extended its tenure while the watchdog still runs on the
// old schedule — the tenure is revoked at the original deadline.
func TestWireRenewDropWatchdogFires(t *testing.T) {
	e := sim.New(1)
	m := New(e.RT(), "res", 1, 5*time.Second)
	inj := &oneShot{}
	m.SetWire(inj, "wire", true)
	var revokedAt time.Duration
	e.Spawn("a", func(p *sim.Proc) {
		l, err := m.Acquire(p, e.Context(), "a", 1)
		if err != nil {
			t.Error(err)
			return
		}
		p.SleepFor(3 * time.Second)
		inj.next = core.Fault{Drop: true}
		if !l.Renew() {
			t.Error("renew over a lossy wire must still report success to the holder")
		}
		p.Hang(l.Ctx())
		revokedAt = e.Elapsed()
		if !l.Revoked() {
			t.Error("lease not revoked after lost renewal")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if revokedAt != 5*time.Second {
		t.Fatalf("revoked at %v, want the original 5s deadline", revokedAt)
	}
}

// TestWireReleaseDupFencing: a duplicated release is the canonical
// double-free. The fence rejects the second copy as stale, so admission
// stays within capacity; the unfenced manager applies both copies,
// understates its books, and admits real demand past true capacity —
// outstanding exceeds capacity, the no-double-allocation violation.
func TestWireReleaseDupFencing(t *testing.T) {
	for _, fenced := range []bool{true, false} {
		e := sim.New(1)
		m := New(e.RT(), "res", 2, time.Minute)
		inj := &oneShot{}
		m.SetWire(inj, "wire", fenced)
		e.Spawn("a", func(p *sim.Proc) {
			ctx := e.Context()
			la, err := m.Acquire(p, ctx, "a", 1)
			if err != nil {
				t.Error(err)
				return
			}
			lb, err := m.Acquire(p, ctx, "b", 1)
			if err != nil {
				t.Error(err)
				return
			}
			defer lb.Release()
			inj.next = core.Fault{Dup: true}
			la.Release()
			// One more unit genuinely fits (a's slot). A fenced manager
			// grants exactly that; the unfenced one, having double-freed
			// a's unit, believes two fit.
			lc, ok := m.TryAcquire(p, ctx, "c", 1)
			if !ok {
				t.Errorf("fenced=%v: the freed unit was not grantable", fenced)
				return
			}
			defer lc.Release()
			ld, ok := m.TryAcquire(p, ctx, "d", 1)
			if fenced {
				if ok {
					ld.Release()
					t.Error("fenced: duplicate release freed a unit twice")
				}
				if m.Outstanding() > m.Capacity() {
					t.Errorf("fenced: outstanding %d > capacity %d", m.Outstanding(), m.Capacity())
				}
				if m.Stales != 1 {
					t.Errorf("fenced: stales=%d, want 1", m.Stales)
				}
			} else {
				if !ok {
					t.Error("unfenced: double-free did not open a phantom slot")
					return
				}
				defer ld.Release()
				if m.Outstanding() <= m.Capacity() {
					t.Errorf("unfenced: outstanding %d <= capacity %d, double-allocation not reproduced",
						m.Outstanding(), m.Capacity())
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWireDelayedReleaseRacesWatchdog: a release delayed past the
// deadline loses the race — the watchdog revokes and reclaims first.
// The late delivery is then stale: fenced it is rejected; unfenced it
// frees units the next tenant now holds.
func TestWireDelayedReleaseRacesWatchdog(t *testing.T) {
	for _, fenced := range []bool{true, false} {
		e := sim.New(1)
		m := New(e.RT(), "res", 1, 5*time.Second)
		inj := &oneShot{}
		m.SetWire(inj, "wire", fenced)
		e.Spawn("a", func(p *sim.Proc) {
			ctx := e.Context()
			l, err := m.Acquire(p, ctx, "a", 1)
			if err != nil {
				t.Error(err)
				return
			}
			p.SleepFor(time.Second)
			inj.next = core.Fault{Delay: 7 * time.Second} // lands at t=8s, deadline 5s
			l.Release()
			p.SleepFor(5 * time.Second) // t=6s: watchdog has reclaimed
			if m.InUse() != 0 {
				t.Errorf("fenced=%v: inUse=%d after watchdog reclaim, want 0", fenced, m.InUse())
			}
			lb, ok := m.TryAcquire(p, ctx, "b", 1)
			if !ok {
				t.Error("reclaimed unit not grantable")
				return
			}
			defer lb.Release()
			p.SleepFor(3 * time.Second) // t=9s: the stale delivery has landed, b still inside its tenure
			if fenced {
				if m.InUse() != 1 {
					t.Errorf("fenced: stale delivery changed the books (inUse=%d, want 1)", m.InUse())
				}
				if m.Stales != 1 {
					t.Errorf("fenced: stales=%d, want 1", m.Stales)
				}
			} else if m.InUse() != 0 {
				t.Errorf("unfenced: stale delivery should have double-freed b's unit (inUse=%d, want 0)", m.InUse())
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWireGrantDupSemantics: a duplicated grant acknowledgement is a
// retransmitted acquire reaching the manager twice. The fence dedupes
// it by epoch; the unfenced manager books a second, holderless tenure
// that pins capacity until the watchdog notices nobody renews it.
func TestWireGrantDupSemantics(t *testing.T) {
	for _, fenced := range []bool{true, false} {
		e := sim.New(1)
		m := New(e.RT(), "res", 4, 6*time.Second)
		inj := &oneShot{}
		m.SetWire(inj, "wire", fenced)
		e.Spawn("a", func(p *sim.Proc) {
			inj.next = core.Fault{Dup: true}
			l, err := m.Acquire(p, e.Context(), "a", 2)
			if err != nil {
				t.Error(err)
				return
			}
			want := int64(2)
			if !fenced {
				want = 4 // the phantom booking rides along
			}
			if m.InUse() != want {
				t.Errorf("fenced=%v: inUse=%d after duplicated grant, want %d", fenced, m.InUse(), want)
			}
			p.SleepFor(5 * time.Second)
			l.Renew()                   // stay alive past the phantom's quantum
			p.SleepFor(2 * time.Second) // t=7s: phantom (t=6s) reclaimed
			if m.InUse() != 2 {
				t.Errorf("fenced=%v: inUse=%d after phantom quantum, want 2", fenced, m.InUse())
			}
			l.Release()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if m.InUse() != 0 || m.Outstanding() != 0 {
			t.Fatalf("fenced=%v: inUse=%d outstanding=%d at end, want 0", fenced, m.InUse(), m.Outstanding())
		}
	}
}

// TestWireDelayedRenewThenDelayedRelease is the regression for a book
// leak: with a renewal delivery and a release delivery both in flight,
// the renewal landing first must not consume the release's in-flight
// state — if it does, the release delivery returns without freeing the
// books and the watchdog (seeing neither lost nor in-flight) declines
// to reclaim, leaving a permanent zombie booking.
func TestWireDelayedRenewThenDelayedRelease(t *testing.T) {
	for _, fenced := range []bool{true, false} {
		e := sim.New(1)
		m := New(e.RT(), "res", 1, 10*time.Second)
		inj := &oneShot{}
		m.SetWire(inj, "wire", fenced)
		e.Spawn("a", func(p *sim.Proc) {
			l, err := m.Acquire(p, e.Context(), "a", 1)
			if err != nil {
				t.Error(err)
				return
			}
			p.SleepFor(2 * time.Second)
			inj.next = core.Fault{Delay: 5 * time.Second} // renewal lands at t=7s
			l.Renew()
			p.SleepFor(time.Second)
			inj.next = core.Fault{Delay: 6 * time.Second} // release lands at t=9s
			l.Release()
			p.SleepFor(8 * time.Second) // t=11s: both deliveries and the deadline have passed
			if m.InUse() != 0 {
				t.Errorf("fenced=%v: inUse=%d after release delivery, want 0 (books leaked)",
					fenced, m.InUse())
			}
			if m.Outstanding() != 0 {
				t.Errorf("fenced=%v: outstanding=%d, want 0", fenced, m.Outstanding())
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWireRemovedRestoresLegacyBehavior: installing and removing a wire
// leaves a manager indistinguishable from one that never had it.
func TestWireRemovedRestoresLegacyBehavior(t *testing.T) {
	e := sim.New(1)
	m := New(e.RT(), "res", 1, 5*time.Second)
	inj := &oneShot{next: core.Fault{Drop: true}}
	m.SetWire(inj, "wire", true)
	m.SetWire(nil, "", false)
	if m.Fenced() {
		t.Fatal("removed wire still reports fenced")
	}
	e.Spawn("a", func(p *sim.Proc) {
		l, err := m.Acquire(p, e.Context(), "a", 1)
		if err != nil {
			t.Error(err)
			return
		}
		l.Release()
		if m.InUse() != 0 {
			t.Errorf("inUse=%d, want 0", m.InUse())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Drops != 0 {
		t.Fatalf("drops=%d after wire removed, want 0", m.Drops)
	}
}
