// Package lease implements limited allocation as a first-class tenure
// discipline: time- and quantity-bounded holds on a shared resource,
// measured on the simulator's virtual clock.
//
// The paper's fourth Ethernet principle — release periodically so
// competitors are not starved — is enforced here rather than left to
// each caller's good manners. Manager.Acquire returns a Lease with a
// deadline; the holder must Renew or Release before the quantum runs
// out, or an expiry watchdog forcibly revokes the tenure: the lease
// context is canceled (waking a holder stuck mid-operation) and the
// units are reclaimed for the next waiter. A quantum of zero disables
// the watchdog entirely and degenerates to a plain counting semaphore,
// so legacy unlimited-allocation behavior is a configuration, not a
// separate code path.
//
// The Manager also keeps per-client fairness accounting (grants,
// rejects, revocations, and the longest interval each client spent
// wanting the resource without holding it), which the experiment layer
// folds into Jain's fairness index and the no-starvation invariant.
package lease

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// ErrRevoked reports that a lease's tenure expired and was forcibly
// reclaimed by the expiry watchdog.
var ErrRevoked = errors.New("lease revoked: tenure expired")

// Manager is a FIFO counting semaphore whose grants are leases. All
// methods must run under the engine token (from processes or timer
// callbacks); with a nil engine the manager still works as a plain
// counter (no parking, no watchdogs), which the condor FD table uses
// in engine-free unit tests.
type Manager struct {
	eng      core.Backend
	name     string
	quantum  time.Duration
	capacity int64
	inUse    int64
	waiters  []*waiter
	hooks    Hooks

	// wire, when non-nil, is the unreliable channel between holders and
	// the manager: lease control messages (release, renew) may be
	// dropped, duplicated, or delayed by the installed injector. See
	// wire.go.
	wire *wire
	// nextEpoch mints monotone fencing epochs for grants; fence is the
	// highest epoch the manager has retired (released or revoked).
	nextEpoch uint64
	fence     uint64
	// outstanding is ground truth: units genuinely in use by live
	// holders, maintained by lease lifecycle alone and immune to the
	// bookkeeping (inUse) that a lossy wire can corrupt. The
	// no-double-allocation invariant is outstanding <= capacity.
	outstanding int64

	// Stats, readable at any point under the engine token.
	Acquires int64 // granted tenures (leased or raw)
	Rejects  int64 // TryAcquire/TryTake failures
	Timeouts int64 // waiters abandoned by cancellation
	Revokes  int64 // tenures forcibly reclaimed by the watchdog
	Drops    int64 // lease control messages swallowed by the wire
	Dups     int64 // lease control messages duplicated by the wire
	Stales   int64 // stale-epoch operations fenced off (fenced wire only)

	clients map[string]*ClientStats
	order   []string
}

// ClientStats is the per-holder fairness ledger.
type ClientStats struct {
	Holder  string
	Grants  int64
	Rejects int64
	Revokes int64
	// MaxWait is the longest completed interval the client spent
	// wanting the resource (first denial or queue entry) before a
	// grant ended the wait.
	MaxWait time.Duration

	waiting      bool
	waitingSince time.Duration
}

type waiter struct {
	ctx     context.Context // wait context, child of the caller's
	cancel  context.CancelFunc
	holder  string
	units   int64
	granted bool
	gone    bool
}

// dead reports whether the waiter can no longer be granted: it gave up,
// or its context was canceled before a grant arrived. Checking ctx.Err
// here closes the window between a cancellation cascading through the
// wait context and the waiter goroutine resuming to mark itself gone.
func (w *waiter) dead() bool {
	return w.gone || (!w.granted && w.ctx.Err() != nil)
}

// New returns a manager for capacity units of the named resource with
// the given tenure quantum. quantum <= 0 (or a nil engine) means
// unlimited tenure: leases never expire and no watchdog is scheduled.
func New(e core.Backend, name string, capacity int64, quantum time.Duration) *Manager {
	if capacity < 0 {
		capacity = 0
	}
	if e == nil {
		quantum = 0
	}
	return &Manager{eng: e, name: name, quantum: quantum, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (m *Manager) Name() string { return m.name }

// Capacity returns the total number of units.
func (m *Manager) Capacity() int64 { return m.capacity }

// InUse returns the number of units currently held.
func (m *Manager) InUse() int64 { return m.inUse }

// Free returns the number of unheld units. It can be negative after a
// capacity shrink; held units drain as leases end.
func (m *Manager) Free() int64 { return m.capacity - m.inUse }

// Quantum returns the tenure quantum (0 = unlimited).
func (m *Manager) Quantum() time.Duration { return m.quantum }

// SetQuantum changes the tenure quantum for leases granted from now
// on; outstanding leases keep their current deadlines.
func (m *Manager) SetQuantum(d time.Duration) {
	if d < 0 || m.eng == nil {
		d = 0
	}
	m.quantum = d
}

// SetCapacity adjusts capacity at runtime (e.g. an administrator
// retuning a kernel table). Negative values clamp to zero. Shrinking
// below InUse is allowed; units drain as leases end. Growing grants
// queued waiters immediately.
func (m *Manager) SetCapacity(n int64) {
	if n < 0 {
		n = 0
	}
	m.capacity = n
	m.grantWaiters()
}

// QueueLen returns the number of live processes waiting to acquire.
func (m *Manager) QueueLen() int {
	n := 0
	for _, w := range m.waiters {
		if !w.granted && !w.dead() {
			n++
		}
	}
	return n
}

func (m *Manager) now() time.Duration {
	if m.eng == nil {
		return 0
	}
	return m.eng.Elapsed()
}

func (m *Manager) stats(holder string) *ClientStats {
	if m.clients == nil {
		m.clients = make(map[string]*ClientStats)
	}
	st, ok := m.clients[holder]
	if !ok {
		st = &ClientStats{Holder: holder}
		m.clients[holder] = st
		m.order = append(m.order, holder)
	}
	return st
}

// NoteWant records that holder wants the resource but does not hold
// it — e.g. a carrier sense came back busy, or a try failed upstream.
// The wait interval it opens ends at the holder's next grant.
func (m *Manager) NoteWant(holder string) {
	st := m.stats(holder)
	if !st.waiting {
		st.waiting = true
		st.waitingSince = m.now()
	}
}

func (m *Manager) endWait(st *ClientStats) {
	if st.waiting {
		if w := m.now() - st.waitingSince; w > st.MaxWait {
			st.MaxWait = w
		}
		st.waiting = false
	}
}

// Clients returns the per-holder ledgers in first-contact order.
func (m *Manager) Clients() []*ClientStats {
	out := make([]*ClientStats, 0, len(m.order))
	for _, h := range m.order {
		out = append(out, m.clients[h])
	}
	return out
}

// LongestWait returns the longest wait currently in progress: the
// no-starvation invariant samples this against its budget.
func (m *Manager) LongestWait() time.Duration {
	var max time.Duration
	now := m.now()
	for _, h := range m.order {
		st := m.clients[h]
		if st.waiting {
			if w := now - st.waitingSince; w > max {
				max = w
			}
		}
	}
	return max
}

// MaxStarvation returns the longest wait any client has experienced,
// completed or still in progress.
func (m *Manager) MaxStarvation() time.Duration {
	max := m.LongestWait()
	for _, h := range m.order {
		if st := m.clients[h]; st.MaxWait > max {
			max = st.MaxWait
		}
	}
	return max
}

// TryTake takes units without waiting and without a lease, reporting
// success. It exists for legacy callers (the condor FD table's raw
// path) that manage tenure themselves; leased callers use TryAcquire.
func (m *Manager) TryTake(units int64) bool {
	if m.inUse+units <= m.capacity {
		m.inUse += units
		m.outstanding += units
		m.noteGrant()
		return true
	}
	m.noteReject()
	return false
}

// Put returns units taken with TryTake. Returning more than was taken
// panics: that is a simulation bug.
func (m *Manager) Put(units int64) {
	m.outstanding -= units
	m.release(units)
}

// TryAcquire takes units as a lease without waiting, reporting
// success. On failure the holder is marked as wanting the resource,
// so the starvation clock runs until a later grant.
func (m *Manager) TryAcquire(p core.Proc, ctx context.Context, holder string, units int64) (*Lease, bool) {
	st := m.stats(holder)
	if m.inUse+units <= m.capacity && m.QueueLen() == 0 {
		m.inUse += units
		m.noteGrant()
		st.Grants++
		m.endWait(st)
		return m.newLease(p, ctx, holder, units), true
	}
	m.noteReject()
	st.Rejects++
	m.NoteWant(holder)
	return nil, false
}

// Acquire takes units as a lease, parking the process in FIFO order
// until they are free or ctx is canceled (returning the cancellation
// cause). Waiters whose units do not fit block the queue head, which
// keeps the discipline FIFO-fair for mixed sizes.
func (m *Manager) Acquire(p core.Proc, ctx context.Context, holder string, units int64) (*Lease, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st := m.stats(holder)
	if m.inUse+units <= m.capacity && m.QueueLen() == 0 {
		m.inUse += units
		m.noteGrant()
		st.Grants++
		m.endWait(st)
		return m.newLease(p, ctx, holder, units), nil
	}
	m.NoteWant(holder)
	wctx, wcancel := m.eng.WithCancel(ctx)
	w := &waiter{ctx: wctx, cancel: wcancel, holder: holder, units: units}
	m.waiters = append(m.waiters, w)
	herr := p.Hang(wctx)
	if !w.granted {
		w.gone = true
		m.noteTimeout()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, herr
	}
	st.Grants++
	m.endWait(st)
	return m.newLease(p, ctx, holder, units), nil
}

// Grant takes units unconditionally as a lease: the caller has already
// arbitrated admission (the fsbuffer allocator grants under its own
// lane) and only wants the tenure discipline.
func (m *Manager) Grant(p core.Proc, ctx context.Context, holder string, units int64) *Lease {
	return m.GrantFor(p, ctx, holder, units, m.quantum)
}

// GrantFor is Grant with an explicit tenure for this lease alone,
// overriding the manager's quantum: the reservation book grants claim
// leases whose watchdog fires exactly at the booked window's end, not
// one global quantum from now. d <= 0 means unlimited tenure.
func (m *Manager) GrantFor(p core.Proc, ctx context.Context, holder string, units int64, d time.Duration) *Lease {
	st := m.stats(holder)
	m.inUse += units
	m.noteGrant()
	st.Grants++
	m.endWait(st)
	return m.newLeaseFor(p, ctx, holder, units, d)
}

// release returns units and grants them to queued waiters.
func (m *Manager) release(units int64) {
	if units > m.inUse {
		if m.wire != nil && !m.wire.fenced {
			// The unfenced arm's double-frees leave the books
			// understated, so an honest release can find less booked
			// than it returns. Clamp and keep running: the invariant
			// checker, not a panic, reports the corruption.
			units = m.inUse
		} else {
			panic("lease: release underflow on " + m.name)
		}
	}
	m.inUse -= units
	m.grantWaiters()
}

// grantWaiters hands free units to queued waiters in FIFO order. A
// grant wakes the waiter by canceling its wait context; the granted
// flag distinguishes that wakeup from a real cancellation.
func (m *Manager) grantWaiters() {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		if w.dead() {
			m.waiters = m.waiters[1:]
			continue
		}
		if m.inUse+w.units > m.capacity {
			return
		}
		m.waiters = m.waiters[1:]
		w.granted = true
		m.inUse += w.units
		m.noteGrant()
		w.cancel()
	}
}

// newLease mints the tenure record under the manager's quantum.
func (m *Manager) newLease(p core.Proc, ctx context.Context, holder string, units int64) *Lease {
	return m.newLeaseFor(p, ctx, holder, units, m.quantum)
}

// newLeaseFor mints the tenure record, arming the expiry watchdog when
// a tenure is given. The trace acquire event is emitted last so event
// order matches the pre-lease code paths exactly.
func (m *Manager) newLeaseFor(p core.Proc, ctx context.Context, holder string, units int64, quantum time.Duration) *Lease {
	m.nextEpoch++
	m.outstanding += units
	l := &Lease{m: m, holder: holder, units: units, parent: ctx, quantum: quantum, epoch: m.nextEpoch}
	if p != nil {
		l.tr = p.Tracer()
	}
	if quantum > 0 && m.eng != nil {
		l.ctx, l.cancel = m.eng.WithCancel(ctx)
		l.deadline = m.eng.Elapsed() + quantum
		l.timer = m.eng.Schedule(quantum, l.expire)
	}
	l.tr.Acquire(m.name, units)
	if m.wire != nil {
		m.wire.grant(l)
	}
	return l
}

// Lease is one granted tenure. The holder works under Ctx, renews
// before the deadline to keep going, and releases when done; if the
// deadline passes first the watchdog revokes the tenure out from
// under it.
type Lease struct {
	m        *Manager
	holder   string
	units    int64
	quantum  time.Duration // this lease's own tenure (renewal step)
	epoch    uint64        // monotone fencing epoch minted at grant
	tr       *trace.Client
	parent   context.Context
	ctx      context.Context
	cancel   context.CancelFunc
	timer    core.Timer
	deadline time.Duration
	done     bool
	revoked  bool
	ended    bool // outstanding units already returned (ground truth)
	lost     bool // release message dropped: manager never heard the end
	inFlight bool // release message delayed: delivery pending
}

// endOutstanding returns the lease's units to the ground-truth ledger
// exactly once: at the holder-side end of the tenure (Release called,
// or the watchdog's cancellation stopping the holder).
func (l *Lease) endOutstanding() {
	if !l.ended {
		l.ended = true
		l.m.outstanding -= l.units
	}
}

// Ctx returns the context the holder must work under: canceled on
// revocation. With an unlimited quantum it is the acquisition context
// itself (no watchdog, no extra context).
func (l *Lease) Ctx() context.Context {
	if l.ctx != nil {
		return l.ctx
	}
	return l.parent
}

// Holder returns the holder name the lease was granted to.
func (l *Lease) Holder() string { return l.holder }

// Units returns the number of units held.
func (l *Lease) Units() int64 { return l.units }

// Deadline returns the virtual time the tenure expires; ok is false
// for unlimited tenure.
func (l *Lease) Deadline() (time.Duration, bool) {
	return l.deadline, l.timer != nil
}

// Revoked reports whether the watchdog reclaimed this tenure.
func (l *Lease) Revoked() bool { return l.revoked }

// Renew extends the tenure by one quantum from now, reporting whether
// the lease was still live. Renewing an unlimited lease is a no-op
// that reports true.
func (l *Lease) Renew() bool {
	return l.RenewFor(l.quantum)
}

// RenewFor extends the tenure to d from now, reporting whether the
// lease was still live. It is Renew with an explicit tenure: the
// reservation book clamps renewals to the booked window's end, never
// one whole quantum past it. d <= 0 leaves the deadline unchanged.
//
// With a wire installed the renewal message itself crosses the
// unreliable channel: it may be dropped (the holder believes it
// renewed; the watchdog fires on the old schedule) or delayed (the
// extension lands late — or arrives after a revocation, where a fenced
// manager rejects the stale epoch).
func (l *Lease) RenewFor(d time.Duration) bool {
	if l.done {
		return false
	}
	if l.timer == nil || d <= 0 {
		return true
	}
	if w := l.m.wire; w != nil {
		if w.renew(l, d) {
			return true // the wire consumed (dropped/delayed) the message
		}
	}
	l.extend(d)
	return true
}

// extend applies a renewal: the watchdog is pushed to d from now.
func (l *Lease) extend(d time.Duration) {
	l.timer.Cancel()
	l.deadline = l.m.eng.Elapsed() + d
	l.timer = l.m.eng.Schedule(d, l.expire)
}

// Release ends the tenure and returns the units. Releasing a revoked
// or already-released lease is a no-op, so holders can defer Release
// unconditionally.
//
// With a wire installed the release message crosses the unreliable
// channel: it may be dropped (the units leak until the watchdog
// reclaims them), delayed (a revocation can race the delivery), or
// duplicated (a fenced manager rejects the second copy as stale; an
// unfenced one double-frees — the double-allocation hazard).
func (l *Lease) Release() {
	if l.done {
		return
	}
	l.done = true
	l.endOutstanding() // the holder genuinely stops using the units now
	if w := l.m.wire; w != nil {
		if w.release(l) {
			return // the wire consumed (dropped/delayed/duplicated) it
		}
	}
	if l.timer != nil {
		l.timer.Cancel()
	}
	if l.cancel != nil {
		l.cancel()
	}
	l.m.retire(l.epoch)
	l.m.release(l.units)
	l.tr.Release(l.m.name, l.units)
}

// expire is the watchdog: the quantum ran out without a Renew or
// Release, so the tenure is revoked. The lease context is canceled
// first (waking a holder stuck mid-operation at this instant), then
// the units go back to the pool for waiting competitors.
//
// When the holder's release was lost or is still in flight on the
// wire, the manager never heard the tenure end — from its side this is
// an ordinary expiry, and the watchdog is exactly the mechanism that
// heals the leak.
func (l *Lease) expire() {
	if l.done {
		if l.lost || l.inFlight {
			// Reclaim a tenure whose release the manager never received.
			// A delivery still in flight now races a completed
			// revocation: the fence decides (see wire.deliverRelease).
			l.lost = false
			l.revoked = true
			l.m.noteRevoke(l.units)
			l.m.stats(l.holder).Revokes++
			l.tr.Revoke(l.m.name, l.units)
			l.m.retire(l.epoch)
			l.m.release(l.units)
		}
		return
	}
	l.done = true
	l.revoked = true
	l.endOutstanding() // cancellation below forcibly stops the holder
	l.m.noteRevoke(l.units)
	l.m.stats(l.holder).Revokes++
	l.tr.Revoke(l.m.name, l.units)
	if l.cancel != nil {
		l.cancel()
	}
	l.m.retire(l.epoch)
	l.m.release(l.units)
}
