package lease

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Book is an advance-booking reservation book over a capacity of
// units: the fourth discipline's admission controller. Where the
// Manager arbitrates *now* (take units or park in the FIFO queue), the
// Book arbitrates a *window* — a client asks for units over
// [start, start+tenure) and is admitted or refused outright, with no
// queue and no retry inside the book. A refusal is a typed
// core.RejectedError carrying the shortfall, so clients (and the trace
// grammar) can tell "the book was full" from "the resource was busy".
//
// Admission is no-overlap accounting: a request is granted iff the
// peak of already-booked units over the requested window, plus the
// request, never exceeds capacity. Among requests for the same window
// admission is FIFO by construction: Reserve is synchronous under the
// engine token, so requests are considered strictly in arrival order.
//
// A booked window is a promise, and promises are enforced server-side:
// claiming a window mints a Lease (from an embedded tenure Manager)
// whose expiry watchdog fires exactly at the window's end, so a
// black-hole holder can wedge the book for at most the remainder of
// its own window — never past it. The flip side is deliberate: until
// that window ends, the booked capacity is held even if the holder is
// dead. The FigRes sweep measures exactly this trade.
type Book struct {
	eng      core.Backend
	name     string
	capacity int64
	tenure   *Manager // mints claim leases; quantum 0 (tenure set per claim)
	hooks    BookHooks

	resv []*Reservation // live bookings in admission order

	// Stats, readable at any point under the engine token.
	Reserves int64 // bookings admitted
	Rejects  int64 // bookings refused (book full over the window)
	Admits   int64 // booked windows claimed
	Cancels  int64 // bookings canceled before a claim
	Lapses   int64 // bookings whose window ended unclaimed
}

// ErrLapsed reports a claim on a window that ended unclaimed.
var ErrLapsed = errors.New("reservation lapsed: window ended unclaimed")

// ErrNotOpen reports a claim before the booked window's start.
var ErrNotOpen = errors.New("reservation window not open yet")

// NewBook returns a book over capacity units of the named resource.
func NewBook(e core.Backend, name string, capacity int64) *Book {
	if capacity < 0 {
		capacity = 0
	}
	return &Book{eng: e, name: name, capacity: capacity, tenure: New(e, name, capacity, 0)}
}

// Name returns the resource's diagnostic name.
func (b *Book) Name() string { return b.name }

// Capacity returns the book's total units.
func (b *Book) Capacity() int64 { return b.capacity }

// Tenure exposes the embedded tenure manager: claimed units in use,
// watchdog revocations, and the per-holder fairness ledger.
func (b *Book) Tenure() *Manager { return b.tenure }

// Outstanding reports live bookings (pending or claimed).
func (b *Book) Outstanding() int { return len(b.resv) }

// Booked returns the peak concurrently booked units over [start, end).
func (b *Book) Booked(start, end time.Duration) int64 { return b.peakOver(start, end) }

func (b *Book) now() time.Duration {
	if b.eng == nil {
		return 0
	}
	return b.eng.Elapsed()
}

// peakOver computes the maximum concurrently booked units over
// [start, end). Booked intervals are step functions that only rise at
// a booking's start, so sampling the window's own start plus every
// booking start inside it finds the peak.
func (b *Book) peakOver(start, end time.Duration) int64 {
	var peak int64
	at := func(t time.Duration) {
		var sum int64
		for _, r := range b.resv {
			if r.start <= t && t < r.end {
				sum += r.units
			}
		}
		if sum > peak {
			peak = sum
		}
	}
	at(start)
	for _, r := range b.resv {
		if r.start > start && r.start < end {
			at(r.start)
		}
	}
	return peak
}

// Reserve asks for units over the window [start, start+tenure), where
// start is absolute virtual time (clamped up to now — the book does
// not backdate). On admission it returns the pending Reservation and
// emits a reserve trace event; when the book is full over the window
// it returns a *core.RejectedError carrying the shortfall. The booking
// lapses if still unclaimed when the window ends.
func (b *Book) Reserve(p core.Proc, holder string, start, tenure time.Duration, units int64) (*Reservation, error) {
	if units <= 0 || tenure <= 0 {
		panic("lease: reservation with non-positive units or tenure on " + b.name)
	}
	if now := b.now(); start < now {
		start = now
	}
	end := start + tenure
	if over := b.peakOver(start, end) + units - b.capacity; over > 0 {
		b.Rejects++
		b.hooks.Rejects.Inc()
		b.tenure.stats(holder).Rejects++
		b.tenure.NoteWant(holder)
		return nil, core.Rejected(b.name, over)
	}
	r := &Reservation{b: b, holder: holder, units: units, start: start, end: end}
	if p != nil {
		r.tr = p.Tracer()
	}
	b.resv = append(b.resv, r)
	b.Reserves++
	b.hooks.Reserves.Inc()
	r.tr.Reserve(b.name, start)
	// The window-end timer retires the booking no matter how the holder
	// behaves: an unclaimed window lapses, and a claimed one is already
	// bounded by its lease's watchdog firing at the same instant.
	if b.eng != nil {
		r.lapse = b.eng.Schedule(end-b.now(), r.windowEnd)
	}
	return r, nil
}

// remove drops r from the live booking list.
func (b *Book) remove(r *Reservation) {
	for i, x := range b.resv {
		if x == r {
			b.resv = append(b.resv[:i], b.resv[i+1:]...)
			return
		}
	}
}

// resState tracks a reservation through its life.
type resState int

const (
	resPending resState = iota // booked, not yet claimed
	resClaimed                 // claimed; a Lease enforces the tenure
	resDone                    // released, canceled, lapsed, or revoked
)

// Reservation is one admitted booking: units over [start, end). The
// holder claims it once the window opens, works under the claim
// lease's context, and releases when done; the unclaimed or wedged
// cases are handled by the window-end timer and the lease watchdog.
type Reservation struct {
	b      *Book
	holder string
	units  int64
	start  time.Duration
	end    time.Duration
	tr     *trace.Client
	lapse  core.Timer
	state  resState
	lease  *Lease
}

// Window returns the booked interval [start, end).
func (r *Reservation) Window() (start, end time.Duration) { return r.start, r.end }

// Units returns the booked units.
func (r *Reservation) Units() int64 { return r.units }

// Holder returns the holder the booking was admitted for.
func (r *Reservation) Holder() string { return r.holder }

// Claim turns the booking into a held tenure. It must be called inside
// the window: before start it fails with ErrNotOpen, after the window
// lapsed with ErrLapsed. The returned lease's watchdog fires exactly
// at the window's end, so the units come back to the book even if the
// holder never returns.
func (r *Reservation) Claim(p core.Proc, ctx context.Context) (*Lease, error) {
	if r.state != resPending {
		return nil, ErrLapsed
	}
	now := r.b.now()
	if now < r.start {
		return nil, ErrNotOpen
	}
	r.state = resClaimed
	r.b.Admits++
	r.b.hooks.Admits.Inc()
	r.tr.Admit(r.b.name, r.end)
	r.lease = r.b.tenure.GrantFor(p, ctx, r.holder, r.units, r.end-now)
	return r.lease, nil
}

// Renew extends the claim lease's tenure by d from now, clamped so the
// deadline never crosses the window's end — even when the holder has a
// back-to-back booking for the next window, this window's watchdog
// stays armed at this window's boundary.
func (r *Reservation) Renew(d time.Duration) bool {
	if r.state != resClaimed || r.lease == nil {
		return false
	}
	if remain := r.end - r.b.now(); d > remain {
		d = remain
	}
	return r.lease.RenewFor(d)
}

// Lease returns the claim lease (nil before Claim).
func (r *Reservation) Lease() *Lease { return r.lease }

// Cancel gives up a pending booking, freeing its window for others.
// Canceling a claimed or finished reservation is a no-op; use Release.
func (r *Reservation) Cancel() {
	if r.state != resPending {
		return
	}
	r.state = resDone
	r.b.Cancels++
	r.b.hooks.Cancels.Inc()
	if r.lapse != nil {
		r.lapse.Cancel()
	}
	r.b.remove(r)
	r.tr.Forfeit(r.b.name)
}

// Release ends a claimed tenure and truncates the booking to now: the
// remainder of the window goes back to the book immediately, so honest
// holders do not pay the worst-case window they booked. Releasing a
// pending booking cancels it; double release is a no-op.
func (r *Reservation) Release() {
	switch r.state {
	case resPending:
		r.Cancel()
	case resClaimed:
		r.state = resDone
		if r.lapse != nil {
			r.lapse.Cancel()
		}
		r.b.remove(r)
		r.lease.Release()
	}
}

// Revoked reports whether the claim lease was reclaimed by the
// watchdog (always false before Claim).
func (r *Reservation) Revoked() bool { return r.lease != nil && r.lease.Revoked() }

// windowEnd is the window-end timer: whatever the holder did, the
// booking is over. An unclaimed booking lapses (a forfeit); a claimed
// one's units are reclaimed by the lease watchdog firing at the same
// instant, so here the book only retires the interval.
func (r *Reservation) windowEnd() {
	switch r.state {
	case resPending:
		r.state = resDone
		r.b.Lapses++
		r.b.hooks.Lapses.Inc()
		r.b.remove(r)
		r.tr.Forfeit(r.b.name)
	case resClaimed:
		r.state = resDone
		r.b.remove(r)
	}
}
