package lease

import (
	"context"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestUnlimitedTenureIsPlainSemaphore(t *testing.T) {
	e := sim.New(1)
	m := New(e.RT(), "res", 2, 0)
	var got error
	e.Spawn("a", func(p *sim.Proc) {
		ctx := e.Context()
		l1, err := m.Acquire(p, ctx, "a", 1)
		if err != nil {
			got = err
			return
		}
		if l1.Ctx() != ctx {
			t.Error("unlimited lease must reuse the acquisition context")
		}
		if _, ok := l1.Deadline(); ok {
			t.Error("unlimited lease must have no deadline")
		}
		if !l1.Renew() {
			t.Error("renewing an unlimited lease must succeed")
		}
		p.SleepFor(time.Hour) // far beyond any quantum
		if l1.Revoked() {
			t.Error("unlimited lease revoked")
		}
		l1.Release()
		l1.Release() // idempotent
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal(got)
	}
	if m.InUse() != 0 || m.Revokes != 0 {
		t.Fatalf("inUse=%d revokes=%d", m.InUse(), m.Revokes)
	}
}

func TestWatchdogRevokesStuckHolder(t *testing.T) {
	e := sim.New(1)
	m := New(e.RT(), "res", 1, 10*time.Second)
	var hangErr error
	var revokedAt time.Duration
	e.Spawn("stuck", func(p *sim.Proc) {
		l, err := m.Acquire(p, e.Context(), "stuck", 1)
		if err != nil {
			t.Error(err)
			return
		}
		// Never renew, never release: the watchdog must reclaim us.
		hangErr = p.Hang(l.Ctx())
		revokedAt = e.Elapsed()
		if !l.Revoked() {
			t.Error("lease not marked revoked")
		}
		if l.Renew() {
			t.Error("renew after revocation must fail")
		}
		l.Release() // no-op after revocation
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hangErr == nil {
		t.Fatal("hang returned nil: lease context was never canceled")
	}
	if revokedAt != 10*time.Second {
		t.Fatalf("revoked at %v, want 10s", revokedAt)
	}
	if m.InUse() != 0 {
		t.Fatalf("units not reclaimed: inUse=%d", m.InUse())
	}
	if m.Revokes != 1 {
		t.Fatalf("Revokes=%d", m.Revokes)
	}
	cs := m.Clients()
	if len(cs) != 1 || cs[0].Holder != "stuck" || cs[0].Revokes != 1 {
		t.Fatalf("client ledger: %+v", cs)
	}
}

func TestRenewExtendsTenure(t *testing.T) {
	e := sim.New(1)
	m := New(e.RT(), "res", 1, 10*time.Second)
	e.Spawn("worker", func(p *sim.Proc) {
		l, err := m.Acquire(p, e.Context(), "worker", 1)
		if err != nil {
			t.Error(err)
			return
		}
		// 5 renewals of 6s each: total tenure 30s, never past a deadline.
		for i := 0; i < 5; i++ {
			p.SleepFor(6 * time.Second)
			if !l.Renew() {
				t.Errorf("renew %d failed at %v", i, e.Elapsed())
				return
			}
		}
		if l.Revoked() {
			t.Error("actively renewing holder was revoked")
		}
		l.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Revokes != 0 || m.InUse() != 0 {
		t.Fatalf("revokes=%d inUse=%d", m.Revokes, m.InUse())
	}
}

func TestRevocationWakesWaiter(t *testing.T) {
	e := sim.New(1)
	m := New(e.RT(), "res", 1, 10*time.Second)
	var waiterGrantedAt time.Duration
	e.Spawn("stuck", func(p *sim.Proc) {
		l, _ := m.Acquire(p, e.Context(), "stuck", 1)
		_ = p.Hang(l.Ctx())
	})
	e.Spawn("waiter", func(p *sim.Proc) {
		p.SleepFor(time.Second)
		l, err := m.Acquire(p, e.Context(), "waiter", 1)
		if err != nil {
			t.Error(err)
			return
		}
		waiterGrantedAt = e.Elapsed()
		l.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if waiterGrantedAt != 10*time.Second {
		t.Fatalf("waiter granted at %v, want 10s (the revocation instant)", waiterGrantedAt)
	}
	cs := m.Clients()
	if len(cs) != 2 {
		t.Fatalf("clients: %+v", cs)
	}
	w := cs[1]
	if w.Holder != "waiter" || w.MaxWait != 9*time.Second {
		t.Fatalf("waiter ledger: %+v", w)
	}
}

func TestFIFOOrderAndHeadOfLineBlocking(t *testing.T) {
	e := sim.New(1)
	m := New(e.RT(), "res", 4, 0)
	var order []string
	grab := func(name string, units int64, after time.Duration, hold time.Duration) {
		e.Spawn(name, func(p *sim.Proc) {
			p.SleepFor(after)
			l, err := m.Acquire(p, e.Context(), name, units)
			if err != nil {
				t.Error(err)
				return
			}
			order = append(order, name)
			p.SleepFor(hold)
			l.Release()
		})
	}
	grab("a", 4, 0, 10*time.Second)
	// b wants 3 and queues first; c wants 1 and arrives later. When a
	// releases, b must be served before c even though c fits earlier.
	grab("b", 3, time.Second, 10*time.Second)
	grab("c", 1, 2*time.Second, time.Second)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("grant order = %v, want [a b c]", order)
	}
}

func TestWaiterCancellation(t *testing.T) {
	e := sim.New(1)
	m := New(e.RT(), "res", 1, 0)
	var werr error
	e.Spawn("holder", func(p *sim.Proc) {
		l, _ := m.Acquire(p, e.Context(), "holder", 1)
		p.SleepFor(time.Hour)
		l.Release()
	})
	e.Spawn("waiter", func(p *sim.Proc) {
		p.SleepFor(time.Second)
		ctx, cancel := p.WithTimeout(e.Context(), 5*time.Second)
		defer cancel()
		_, werr = m.Acquire(p, ctx, "waiter", 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if werr != context.DeadlineExceeded {
		t.Fatalf("waiter err = %v, want DeadlineExceeded", werr)
	}
	if m.Timeouts != 1 {
		t.Fatalf("Timeouts = %d", m.Timeouts)
	}
	if m.QueueLen() != 0 {
		t.Fatalf("dead waiter still queued: QueueLen=%d", m.QueueLen())
	}
}

func TestSetCapacityGrowsAndShrinks(t *testing.T) {
	e := sim.New(1)
	m := New(e.RT(), "res", 1, 0)
	var grantedAt time.Duration
	e.Spawn("holder", func(p *sim.Proc) {
		l, _ := m.Acquire(p, e.Context(), "holder", 1)
		p.SleepFor(time.Hour)
		l.Release()
	})
	e.Spawn("waiter", func(p *sim.Proc) {
		p.SleepFor(time.Second)
		l, err := m.Acquire(p, e.Context(), "waiter", 1)
		if err != nil {
			t.Error(err)
			return
		}
		grantedAt = e.Elapsed()
		l.Release()
	})
	// Growing capacity mid-wait must grant the queued waiter immediately.
	e.Schedule(10*time.Second, func() { m.SetCapacity(2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if grantedAt != 10*time.Second {
		t.Fatalf("waiter granted at %v, want 10s (the capacity grow)", grantedAt)
	}
	m.SetCapacity(-5)
	if m.Capacity() != 0 {
		t.Fatalf("negative capacity must clamp to 0, got %d", m.Capacity())
	}
}

func TestTryAcquireStartsStarvationClock(t *testing.T) {
	e := sim.New(1)
	m := New(e.RT(), "res", 1, 0)
	e.Spawn("a", func(p *sim.Proc) {
		l, ok := m.TryAcquire(p, e.Context(), "a", 1)
		if !ok {
			t.Error("first TryAcquire failed")
			return
		}
		p.SleepFor(20 * time.Second)
		l.Release()
	})
	e.Spawn("b", func(p *sim.Proc) {
		p.SleepFor(time.Second)
		if _, ok := m.TryAcquire(p, e.Context(), "b", 1); ok {
			t.Error("over-capacity TryAcquire succeeded")
			return
		}
		if m.LongestWait() != 0 {
			t.Errorf("LongestWait just after denial = %v", m.LongestWait())
		}
		p.SleepFor(9 * time.Second)
		// b has now wanted the resource for 9s without holding it.
		if m.LongestWait() != 9*time.Second {
			t.Errorf("LongestWait = %v, want 9s", m.LongestWait())
		}
		p.SleepFor(11 * time.Second)
		l, ok := m.TryAcquire(p, e.Context(), "b", 1)
		if !ok {
			t.Error("TryAcquire after release failed")
			return
		}
		l.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Rejects != 1 {
		t.Fatalf("Rejects = %d", m.Rejects)
	}
	cs := m.Clients()
	if len(cs) != 2 {
		t.Fatalf("clients: %+v", cs)
	}
	// b's wait ran from its denial at t=1s to its grant at t=21s.
	if b := cs[1]; b.Holder != "b" || b.MaxWait != 20*time.Second || b.Rejects != 1 {
		t.Fatalf("b ledger: %+v", b)
	}
	if m.MaxStarvation() != 20*time.Second {
		t.Fatalf("MaxStarvation = %v", m.MaxStarvation())
	}
}

func TestNilEngineIsPlainCounter(t *testing.T) {
	m := New(nil, "fds", 10, time.Minute) // quantum forced to 0 without an engine
	if m.Quantum() != 0 {
		t.Fatalf("quantum with nil engine = %v", m.Quantum())
	}
	if !m.TryTake(6) || !m.TryTake(4) {
		t.Fatal("TryTake within capacity failed")
	}
	if m.TryTake(1) {
		t.Fatal("TryTake over capacity succeeded")
	}
	m.Put(10)
	if m.InUse() != 0 || m.Acquires != 2 || m.Rejects != 1 {
		t.Fatalf("inUse=%d acquires=%d rejects=%d", m.InUse(), m.Acquires, m.Rejects)
	}
}

func TestPutUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil, "res", 10, 0).Put(1)
}
