package lease

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// The property harness drives a Manager with randomized, seeded
// sequences of acquire / try-acquire / renew / release / wedge ops
// from several concurrent clients and checks two properties the rest
// of the repository leans on:
//
//   - FIFO grant order: clients that park are granted in park order
//     (timed-out waiters drop out without reordering the survivors);
//   - units conservation: every granted lease ends in exactly one of
//     release or revocation, and at quiescence no units are in use —
//     grants == releases + revokes, with the manager's own counters
//     agreeing with the harness's ledger.
//
// A failure is re-run with progressively smaller op counts and client
// counts to report the smallest failing configuration.

const (
	propCapacity = 3
	propQuantum  = 10 * time.Second
)

// propLedger is the harness's model of what the manager must agree
// with. Procs mutate it without locks: the simulator is cooperatively
// scheduled, so ledger updates between blocking points are atomic.
type propLedger struct {
	parkOrder  []string
	grantOrder []string
	granted    map[string]bool
	grants     int64
	releases   int64
	revokes    int64
	timeouts   int64
}

// leasePropRun executes one randomized schedule and returns the
// harness ledger plus a failure description ("" if every property
// held).
func leasePropRun(seed int64, clients, opsPer int) (*propLedger, string) {
	e := sim.New(seed)
	m := New(e.RT(), "res", propCapacity, propQuantum)
	led := &propLedger{granted: map[string]bool{}}

	for i := 0; i < clients; i++ {
		i := i
		holder := fmt.Sprintf("c%d", i)
		rng := rand.New(rand.NewSource(seed<<8 + int64(i)))
		e.Spawn(holder, func(p *sim.Proc) {
			for j := 0; j < opsPer; j++ {
				tag := fmt.Sprintf("%s#%d", holder, j)
				units := 1 + rng.Int63n(propCapacity)
				p.SleepFor(time.Duration(rng.Intn(5000)) * time.Millisecond)

				if rng.Intn(5) == 0 {
					// Non-blocking path: a reject starts the
					// starvation clock but grants nothing.
					l, ok := m.TryAcquire(p, e.Context(), holder, units)
					if !ok {
						continue
					}
					led.grants++
					finishTenure(p, rng, l, led)
					continue
				}

				// Mirror Acquire's immediate-grant condition exactly:
				// anything else parks in the FIFO queue.
				wouldPark := m.InUse()+units > m.Capacity() || m.QueueLen() > 0
				if wouldPark {
					led.parkOrder = append(led.parkOrder, tag)
				}
				ctx, cancel := p.WithTimeout(e.Context(), time.Duration(5+rng.Intn(90))*time.Second)
				l, err := m.Acquire(p, ctx, holder, units)
				if err != nil {
					led.timeouts++
					cancel()
					continue
				}
				if wouldPark {
					led.grantOrder = append(led.grantOrder, tag)
					led.granted[tag] = true
				}
				led.grants++
				finishTenure(p, rng, l, led)
				cancel()
			}
		})
	}
	if err := e.Run(); err != nil {
		return led, fmt.Sprintf("engine: %v", err)
	}

	if m.InUse() != 0 {
		return led, fmt.Sprintf("conservation: %d units still in use at quiescence", m.InUse())
	}
	if led.grants != led.releases+led.revokes {
		return led, fmt.Sprintf("conservation: %d grants != %d releases + %d revokes",
			led.grants, led.releases, led.revokes)
	}
	if m.Acquires != led.grants {
		return led, fmt.Sprintf("manager counted %d acquires, harness granted %d", m.Acquires, led.grants)
	}
	if m.Revokes != led.revokes {
		return led, fmt.Sprintf("manager counted %d revokes, harness saw %d", m.Revokes, led.revokes)
	}
	if m.Timeouts != led.timeouts {
		return led, fmt.Sprintf("manager counted %d timeouts, harness saw %d", m.Timeouts, led.timeouts)
	}

	// FIFO: drop parked waiters that never got granted (they timed
	// out); the surviving park order must be the grant order.
	want := make([]string, 0, len(led.grantOrder))
	for _, tag := range led.parkOrder {
		if led.granted[tag] {
			want = append(want, tag)
		}
	}
	if !reflect.DeepEqual(want, led.grantOrder) {
		return led, fmt.Sprintf("FIFO violated:\n  parked+granted %v\n  grant order    %v", want, led.grantOrder)
	}
	return led, ""
}

// finishTenure holds a granted lease in one of the randomized styles —
// wedge until revoked, renew mid-tenure, hold briefly, or release at
// once — then records how the tenure ended.
func finishTenure(p *sim.Proc, rng *rand.Rand, l *Lease, led *propLedger) {
	switch rng.Intn(4) {
	case 0: // wedge: never renew, never release; the watchdog reclaims
		_ = p.Sleep(l.Ctx(), 50*propQuantum)
	case 1: // renew on time, then overstay the renewed tenure or not
		p.SleepFor(propQuantum / 2)
		l.Renew()
		_ = p.Sleep(l.Ctx(), time.Duration(rng.Int63n(int64(propQuantum))))
	case 2: // hold for a random fraction of the quantum
		_ = p.Sleep(l.Ctx(), time.Duration(rng.Int63n(int64(propQuantum))))
	case 3: // release immediately
	}
	if l.Revoked() {
		led.revokes++
	} else {
		led.releases++
	}
	l.Release()
}

func TestPropFIFOAndUnitsConservation(t *testing.T) {
	const clients, opsPer = 6, 12
	var parked, granted, revoked, timedOut int64
	for seed := int64(1); seed <= 25; seed++ {
		led, msg := leasePropRun(seed, clients, opsPer)
		if msg != "" {
			sc, so, sm := shrinkLeaseProp(seed, clients, opsPer, msg)
			t.Fatalf("seed %d: %d clients x %d ops fail (shrunk from %dx%d): %s",
				seed, sc, so, clients, opsPer, sm)
		}
		parked += int64(len(led.parkOrder))
		granted += led.grants
		revoked += led.revokes
		timedOut += led.timeouts
	}
	// The properties are only as strong as the schedules that reach
	// them: a generator drift that stops producing contention, revoked
	// tenures, or abandoned waits would hollow the test out silently.
	if parked == 0 || granted == 0 || revoked == 0 || timedOut == 0 {
		t.Fatalf("vacuous coverage: parked=%d granted=%d revoked=%d timedOut=%d",
			parked, granted, revoked, timedOut)
	}
}

// shrinkLeaseProp reduces ops-per-client, then client count, as far as
// the failure persists, returning the smallest failing configuration
// and its message.
func shrinkLeaseProp(seed int64, clients, opsPer int, msg string) (int, int, string) {
	for opsPer > 1 {
		if _, m := leasePropRun(seed, clients, opsPer-1); m != "" {
			opsPer, msg = opsPer-1, m
		} else {
			break
		}
	}
	for clients > 1 {
		if _, m := leasePropRun(seed, clients-1, opsPer); m != "" {
			clients, msg = clients-1, m
		} else {
			break
		}
	}
	return clients, opsPer, msg
}
