package lease

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// bookRun spawns body as a single process on a fresh engine with a
// book of capacity units and runs the simulation to quiescence.
func bookRun(t *testing.T, capacity int64, body func(p *sim.Proc, b *Book)) *Book {
	t.Helper()
	e := sim.New(1)
	b := NewBook(e.RT(), "res", capacity)
	e.Spawn("driver", func(p *sim.Proc) { body(p, b) })
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	return b
}

func TestBookAdmitAndReject(t *testing.T) {
	b := bookRun(t, 3, func(p *sim.Proc, b *Book) {
		now := p.Elapsed()
		if _, err := b.Reserve(p, "a", now, 10*time.Second, 2); err != nil {
			t.Errorf("first booking rejected: %v", err)
		}
		// 2 + 2 > 3 over the same window: refused with shortfall 1.
		_, err := b.Reserve(p, "b", now, 10*time.Second, 2)
		re := core.Rejection(err)
		if re == nil {
			t.Fatalf("overlapping booking: want RejectedError, got %v", err)
		}
		if re.Shortfall != 1 {
			t.Errorf("shortfall = %d, want 1", re.Shortfall)
		}
		// A unit that fits beside the first booking is admitted, and a
		// disjoint window is a fresh book.
		if _, err := b.Reserve(p, "c", now, 10*time.Second, 1); err != nil {
			t.Errorf("fitting booking rejected: %v", err)
		}
		if _, err := b.Reserve(p, "d", now+10*time.Second, 10*time.Second, 3); err != nil {
			t.Errorf("disjoint booking rejected: %v", err)
		}
	})
	if b.Reserves != 3 || b.Rejects != 1 {
		t.Errorf("reserves=%d rejects=%d, want 3 and 1", b.Reserves, b.Rejects)
	}
}

// The watchdog fires exactly at the window boundary: a holder that is
// still working at end-of-window is revoked at that instant, even if
// its own release was due at the same tick, and the freed window is
// immediately bookable.
func TestBookRevokeAtWindowBoundary(t *testing.T) {
	var revoked bool
	b := bookRun(t, 2, func(p *sim.Proc, b *Book) {
		r, err := b.Reserve(p, "a", p.Elapsed(), 10*time.Second, 2)
		if err != nil {
			t.Fatalf("reserve: %v", err)
		}
		l, err := r.Claim(p, p.Engine().Context())
		if err != nil {
			t.Fatalf("claim: %v", err)
		}
		if d, ok := l.Deadline(); !ok || d != 10*time.Second {
			t.Errorf("claim deadline = %v ok=%v, want exactly the window end 10s", d, ok)
		}
		// Sleep to exactly the boundary; the watchdog wins the tick.
		_ = p.Sleep(l.Ctx(), 10*time.Second)
		revoked = r.Revoked()
		r.Release() // must be a no-op after revocation
		if _, err := b.Reserve(p, "b", p.Elapsed(), time.Second, 2); err != nil {
			t.Errorf("post-revocation booking rejected: %v", err)
		}
	})
	if !revoked {
		t.Fatalf("holder at the window boundary was not revoked")
	}
	if b.tenure.Revokes != 1 || b.tenure.InUse() != 0 {
		t.Errorf("revokes=%d inUse=%d, want 1 and 0", b.tenure.Revokes, b.tenure.InUse())
	}
}

// A renew near the end of one booked window is clamped to that
// window's boundary even when the holder owns the very next window:
// tenures never straddle bookings.
func TestBookRenewStraddlingWindows(t *testing.T) {
	bookRun(t, 1, func(p *sim.Proc, b *Book) {
		r1, err := b.Reserve(p, "a", 0, 60*time.Second, 1)
		if err != nil {
			t.Fatalf("reserve w1: %v", err)
		}
		r2, err := b.Reserve(p, "a", 60*time.Second, 60*time.Second, 1)
		if err != nil {
			t.Fatalf("reserve back-to-back w2: %v", err)
		}
		l1, err := r1.Claim(p, p.Engine().Context())
		if err != nil {
			t.Fatalf("claim w1: %v", err)
		}
		p.SleepFor(50 * time.Second)
		if !r1.Renew(30 * time.Second) {
			t.Fatalf("renew inside w1 failed")
		}
		if d, _ := l1.Deadline(); d != 60*time.Second {
			t.Errorf("renewed deadline = %v, want clamped to w1 end 60s", d)
		}
		p.SleepFor(5 * time.Second)
		r1.Release()
		p.SleepFor(5 * time.Second) // t = 60s: w2 opens
		l2, err := r2.Claim(p, p.Engine().Context())
		if err != nil {
			t.Fatalf("claim w2 at its boundary: %v", err)
		}
		if d, _ := l2.Deadline(); d != 120*time.Second {
			t.Errorf("w2 deadline = %v, want 120s", d)
		}
		r2.Release()
	})
}

func TestBookLapseAndCancel(t *testing.T) {
	b := bookRun(t, 2, func(p *sim.Proc, b *Book) {
		// Never claimed: lapses at window end.
		r1, err := b.Reserve(p, "a", p.Elapsed(), 5*time.Second, 1)
		if err != nil {
			t.Fatalf("reserve: %v", err)
		}
		// Canceled before the window opens: freed at once.
		r2, err := b.Reserve(p, "b", p.Elapsed()+10*time.Second, 5*time.Second, 2)
		if err != nil {
			t.Fatalf("reserve future: %v", err)
		}
		r2.Cancel()
		if _, err := b.Reserve(p, "c", p.Elapsed()+10*time.Second, 5*time.Second, 2); err != nil {
			t.Errorf("window freed by cancel still rejected: %v", err)
		}
		p.SleepFor(6 * time.Second)
		if _, err := r1.Claim(p, p.Engine().Context()); err != ErrLapsed {
			t.Errorf("claim after window end = %v, want ErrLapsed", err)
		}
	})
	// Both the unclaimed booking and the re-booked "c" window lapse.
	if b.Lapses != 2 || b.Cancels != 1 {
		t.Errorf("lapses=%d cancels=%d, want 2 and 1", b.Lapses, b.Cancels)
	}
}

func TestBookClaimBeforeStart(t *testing.T) {
	bookRun(t, 1, func(p *sim.Proc, b *Book) {
		r, err := b.Reserve(p, "a", p.Elapsed()+10*time.Second, 5*time.Second, 1)
		if err != nil {
			t.Fatalf("reserve: %v", err)
		}
		if _, err := r.Claim(p, p.Engine().Context()); err != ErrNotOpen {
			t.Errorf("early claim = %v, want ErrNotOpen", err)
		}
		r.Cancel()
	})
}

// Releasing a claimed reservation truncates the booking to now: the
// tail of the window is immediately available to competitors.
func TestBookReleaseTruncates(t *testing.T) {
	bookRun(t, 1, func(p *sim.Proc, b *Book) {
		r, err := b.Reserve(p, "a", p.Elapsed(), 100*time.Second, 1)
		if err != nil {
			t.Fatalf("reserve: %v", err)
		}
		if _, err := r.Claim(p, p.Engine().Context()); err != nil {
			t.Fatalf("claim: %v", err)
		}
		p.SleepFor(3 * time.Second)
		r.Release()
		if _, err := b.Reserve(p, "b", p.Elapsed(), 90*time.Second, 1); err != nil {
			t.Errorf("truncated window still booked: %v", err)
		}
	})
}

// Same-window admission is FIFO: when a cohort requests one window in
// arrival order, the book admits exactly the leading requesters that
// fit and refuses the rest.
func TestBookFIFOSameWindow(t *testing.T) {
	const capacity, cohort = 3, 6
	admitted := make([]bool, cohort)
	e := sim.New(1)
	b := NewBook(e.RT(), "res", capacity)
	for i := 0; i < cohort; i++ {
		i := i
		e.Spawn(fmt.Sprintf("c%d", i), func(p *sim.Proc) {
			// Hold the booking (let it lapse): a cancel here would free
			// the window before the next cohort member even runs.
			if _, err := b.Reserve(p, p.Name(), 0, 10*time.Second, 1); err == nil {
				admitted[i] = true
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	for i, got := range admitted {
		if want := i < capacity; got != want {
			t.Errorf("client %d admitted=%v, want %v (FIFO prefix of %d)", i, got, want, capacity)
		}
	}
}

// Quantum-0 legacy regression: Grant and Renew on a manager without a
// quantum are untouched by the per-lease tenure plumbing — no watchdog,
// no deadline, renew always succeeds. The seed figures lease nothing,
// so this plus the unchanged gridbench goldens pins the legacy path.
func TestGrantForLegacyQuantumZero(t *testing.T) {
	e := sim.New(1)
	m := New(e.RT(), "res", 4, 0)
	e.Spawn("driver", func(p *sim.Proc) {
		l := m.Grant(p, e.Context(), "a", 2)
		if _, ok := l.Deadline(); ok {
			t.Errorf("quantum-0 Grant has a deadline")
		}
		if !l.Renew() || !l.RenewFor(5*time.Second) {
			t.Errorf("quantum-0 renew failed")
		}
		if _, ok := l.Deadline(); ok {
			t.Errorf("RenewFor armed a watchdog on an unlimited lease")
		}
		p.SleepFor(time.Hour)
		if l.Revoked() {
			t.Errorf("unlimited lease was revoked")
		}
		l.Release()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if m.InUse() != 0 || m.Revokes != 0 {
		t.Errorf("inUse=%d revokes=%d, want 0 and 0", m.InUse(), m.Revokes)
	}
}
