package lease

import (
	"time"

	"repro/internal/core"
)

// This file models the channel between lease holders and the manager
// as an unreliable medium. With no wire installed (the default, and
// every legacy scenario) nothing here runs and the manager's behavior
// is byte-identical to before. With a wire, lease control messages —
// the grant acknowledgement, renewals, and releases — consult the
// installed injector at one site and may be dropped, duplicated, or
// delayed, which is the paper's connectivity-layer failure regime.
//
// The defense is fencing: every grant carries a monotone epoch, and
// the manager retires epochs as tenures end. A fenced manager refuses
// any control message whose epoch it has already retired (a duplicated
// release, a delayed release arriving after the watchdog revoked the
// tenure), so its books can never be double-freed and admission can
// never exceed true capacity. An unfenced manager applies whatever
// arrives — the ablation arm that demonstrates why fencing matters.

// wire is the unreliable channel configuration for one manager.
type wire struct {
	inj    core.Injector
	site   string
	fenced bool
}

// SetWire routes this manager's lease control messages through the
// injector at the named site. fenced selects whether the manager
// defends itself with epoch fencing (the survivable configuration) or
// naively applies every message that arrives (the ablation arm). A nil
// injector removes the wire.
func (m *Manager) SetWire(inj core.Injector, site string, fenced bool) {
	if inj == nil {
		m.wire = nil
		return
	}
	m.wire = &wire{inj: inj, site: site, fenced: fenced}
}

// Fenced reports whether a wire is installed with epoch fencing on.
func (m *Manager) Fenced() bool { return m.wire != nil && m.wire.fenced }

// Outstanding returns the ground-truth units genuinely in use by live
// holders. Unlike InUse (the manager's books, which a lossy wire can
// corrupt on the unfenced arm), it is maintained purely by lease
// lifecycle: +units at grant, -units exactly once when the holder
// stops (release sent, or watchdog cancellation). The
// no-double-allocation invariant is Outstanding() <= Capacity().
func (m *Manager) Outstanding() int64 { return m.outstanding }

// Fence returns the highest epoch the manager has retired.
func (m *Manager) Fence() uint64 { return m.fence }

// retire records that a tenure with the given epoch has ended
// manager-side; later messages carrying it are stale.
func (m *Manager) retire(epoch uint64) {
	if epoch > m.fence {
		m.fence = epoch
	}
}

// releaseLoose is release without the underflow panic: the unfenced
// arm's double-free path. The clamp keeps the simulation running so
// the invariant checker — not a panic — reports the over-admission
// that follows.
func (m *Manager) releaseLoose(units int64) {
	if units > m.inUse {
		units = m.inUse
	}
	m.inUse -= units
	m.grantWaiters()
}

// Epoch returns the lease's fencing epoch.
func (l *Lease) Epoch() uint64 { return l.epoch }

// StaleErr returns the typed fencing rejection a fenced resource gives
// this lease's operations once its epoch is retired, or nil while the
// tenure is live (or the manager is not fenced). Substrates surface it
// to clients whose tenure was revoked out from under them.
func (l *Lease) StaleErr() error {
	if l.m.wire == nil || !l.m.wire.fenced {
		return nil
	}
	if l.epoch > l.m.fence {
		return nil
	}
	return core.Stale(l.m.name, l.epoch, l.m.fence)
}

// grant delivers the grant acknowledgement over the wire. A duplicated
// grant message is a retransmitted acquire reaching the manager twice:
// fenced, the epoch dedupes the copy; unfenced, the manager books a
// second, holderless tenure. The phantom pins capacity until the
// watchdog notices nobody is renewing it (one quantum), or forever on
// a quantum-0 manager — which is why partitions need tenure quanta.
func (w *wire) grant(l *Lease) {
	m := l.m
	f := core.InjectAt(w.inj, w.site)
	if !f.Dup {
		return
	}
	m.noteDup()
	l.tr.MsgDup(m.name)
	if w.fenced {
		m.noteStale()
		l.tr.Stale(m.name, l.units)
		return
	}
	m.inUse += l.units // phantom duplicate booking
	if m.quantum > 0 {
		units := l.units
		m.eng.Schedule(m.quantum, func() { m.releaseLoose(units) })
	}
}

// renew carries a renewal message over the wire, reporting whether the
// wire consumed it (the caller then skips the local extension).
func (w *wire) renew(l *Lease, d time.Duration) bool {
	m := l.m
	f := core.InjectAt(w.inj, w.site)
	switch {
	case f.Drop || f.Err != nil:
		// Lost: the holder believes it renewed; the watchdog does not.
		m.noteDrop()
		l.tr.MsgDrop(m.name)
		return true
	case f.Delay > 0:
		// Late: the extension lands Delay later — unless the watchdog
		// fires first, in which case the renewal is stale. The delivery
		// must not touch inFlight: that flag belongs to a delayed
		// release, and clearing it here would let a release delivery
		// scheduled in the meantime return without freeing the books —
		// a permanent phantom booking.
		m.eng.Schedule(f.Delay, func() {
			if l.done || l.revoked {
				if w.fenced {
					m.noteStale()
					l.tr.Stale(m.name, l.units)
				}
				// Unfenced: renewing a dead tenure re-arms nothing —
				// the units were already reclaimed. No resurrection.
				return
			}
			l.extend(d)
		})
		return true
	case f.Dup:
		// A duplicated renewal is idempotent — both copies set the same
		// deadline — so apply once and count the copy.
		m.noteDup()
		l.tr.MsgDup(m.name)
		return false
	}
	return false
}

// release carries the release message over the wire, reporting whether
// the wire consumed it (the caller then skips the local release). The
// caller has already marked the lease done and returned the units to
// the ground-truth ledger: whatever happens below is about the
// manager's books, not about reality.
func (w *wire) release(l *Lease) bool {
	m := l.m
	f := core.InjectAt(w.inj, w.site)
	switch {
	case f.Drop || f.Err != nil:
		// Lost: the manager never hears the end. The watchdog (if any)
		// reclaims the units at the old deadline; without one the units
		// leak — which is why partitions need tenure quanta.
		m.noteDrop()
		l.tr.MsgDrop(m.name)
		l.lost = true
		if l.cancel != nil {
			l.cancel()
		}
		return true
	case f.Delay > 0:
		// In flight: delivery lands Delay later. If the watchdog
		// revokes the tenure first, the delivery arrives stale: the
		// fence rejects it; an unfenced manager double-frees.
		l.inFlight = true
		if l.cancel != nil {
			l.cancel()
		}
		m.eng.Schedule(f.Delay, func() { w.deliverRelease(l) })
		return true
	case f.Dup:
		// Delivered twice: apply the first copy normally, then the
		// duplicate. The fence rejects the copy as stale; an unfenced
		// manager double-frees — the double-allocation seed.
		if l.timer != nil {
			l.timer.Cancel()
		}
		if l.cancel != nil {
			l.cancel()
		}
		m.retire(l.epoch)
		m.release(l.units)
		l.tr.Release(m.name, l.units)
		m.noteDup()
		l.tr.MsgDup(m.name)
		if w.fenced {
			m.noteStale()
			l.tr.Stale(m.name, l.units)
		} else {
			m.releaseLoose(l.units)
		}
		return true
	}
	return false
}

// deliverRelease is the late arrival of a delayed release message.
func (w *wire) deliverRelease(l *Lease) {
	m := l.m
	if !l.inFlight {
		return
	}
	l.inFlight = false
	if l.revoked {
		// The watchdog beat the delivery: the tenure was revoked and
		// the units already reclaimed. Fenced, the stale epoch is
		// rejected; unfenced, the manager frees units it no longer
		// holds for this tenure — over-admission follows.
		if w.fenced {
			m.noteStale()
			l.tr.Stale(m.name, l.units)
		} else {
			m.releaseLoose(l.units)
		}
		return
	}
	if l.timer != nil {
		l.timer.Cancel()
	}
	m.retire(l.epoch)
	m.release(l.units)
	l.tr.Release(m.name, l.units)
}
