package replica

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func mkServers(e *sim.Engine, cfg Config, blackHoleFirst bool) []*Server {
	return []*Server{
		NewServer(e.RT(), "xxx", blackHoleFirst, cfg),
		NewServer(e.RT(), "yyy", false, cfg),
		NewServer(e.RT(), "zzz", false, cfg),
	}
}

func TestIdealTransferTakesTenSeconds(t *testing.T) {
	e := sim.New(1)
	srv := NewServer(e.RT(), "s", false, Config{})
	var err error
	e.Spawn("c", func(p *sim.Proc) {
		err = srv.FetchData(p, e.Context())
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if err != nil {
		t.Fatal(err)
	}
	// 100 MB at 10 MB/s plus 50 ms connect.
	want := 10*time.Second + 50*time.Millisecond
	if e.Elapsed() != want {
		t.Fatalf("elapsed = %v, want %v", e.Elapsed(), want)
	}
}

func TestSingleThreadedServerSerializes(t *testing.T) {
	e := sim.New(1)
	srv := NewServer(e.RT(), "s", false, Config{})
	var finish []time.Duration
	for i := 0; i < 2; i++ {
		e.Spawn("c", func(p *sim.Proc) {
			if err := srv.FetchData(p, e.Context()); err != nil {
				t.Errorf("fetch: %v", err)
				return
			}
			finish = append(finish, p.Elapsed())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(finish) != 2 {
		t.Fatalf("finish = %v", finish)
	}
	if finish[1]-finish[0] < 9*time.Second {
		t.Fatalf("transfers overlapped: %v", finish)
	}
}

func TestBlackHoleHangsUntilTimeout(t *testing.T) {
	e := sim.New(1)
	srv := NewServer(e.RT(), "bh", true, Config{})
	var err error
	e.Spawn("c", func(p *sim.Proc) {
		ctx, cancel := p.WithTimeout(e.Context(), 60*time.Second)
		defer cancel()
		err = srv.FetchData(p, ctx)
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v", err)
	}
	if e.Elapsed() != 60*time.Second {
		t.Fatalf("elapsed = %v, want the full 60s timeout", e.Elapsed())
	}
	if srv.Absorbed != 1 {
		t.Fatalf("Absorbed = %d", srv.Absorbed)
	}
}

func TestEthernetReaderDefersPastBlackHole(t *testing.T) {
	e := sim.New(3)
	servers := mkServers(e, Config{}, true)
	var r Reader
	var err error
	e.Spawn("reader", func(p *sim.Proc) {
		err = r.ReadOnce(p, e.Context(), servers, DefaultReaderConfig(core.Ethernet))
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if r.Done != 1 {
		t.Fatalf("Done = %d", r.Done)
	}
	// Even if the black hole was probed first, the detour costs only the
	// 5 s probe timeout, not the 60 s data timeout.
	if e.Elapsed() > 20*time.Second {
		t.Fatalf("elapsed = %v, want < 20s", e.Elapsed())
	}
	if r.Collisions != 0 {
		t.Fatalf("Collisions = %d, want 0 for Ethernet", r.Collisions)
	}
}

func TestAlohaReaderPaysSixtySecondsInBlackHole(t *testing.T) {
	// Find a seed whose shuffle visits the black hole first, then verify
	// the 60-second penalty.
	for seed := int64(0); seed < 16; seed++ {
		e := sim.New(seed)
		servers := mkServers(e, Config{}, true)
		var r Reader
		e.Spawn("reader", func(p *sim.Proc) {
			_ = r.ReadOnce(p, e.Context(), servers, DefaultReaderConfig(core.Aloha))
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if r.Collisions > 0 {
			if e.Elapsed() < 70*time.Second {
				t.Fatalf("seed %d: elapsed %v with a collision, want > 70s", seed, e.Elapsed())
			}
			if r.Done != 1 {
				t.Fatalf("seed %d: Done = %d", seed, r.Done)
			}
			return
		}
	}
	t.Fatal("no seed sent the Aloha reader into the black hole first")
}

func TestReaderLoopTimeline(t *testing.T) {
	run := func(d core.Discipline) *Reader {
		e := sim.New(11)
		servers := mkServers(e, Config{}, true)
		ctx, cancel := e.WithTimeout(e.Context(), 900*time.Second)
		defer cancel()
		readers := make([]*Reader, 3)
		for i := range readers {
			readers[i] = &Reader{}
			r := readers[i]
			e.Spawn("reader", func(p *sim.Proc) { r.Loop(p, ctx, servers, DefaultReaderConfig(d)) })
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		agg := &Reader{}
		for _, r := range readers {
			agg.Done += r.Done
			agg.Collisions += r.Collisions
			agg.Deferrals += r.Deferrals
		}
		return agg
	}
	aloha := run(core.Aloha)
	eth := run(core.Ethernet)
	if aloha.Collisions == 0 {
		t.Fatal("aloha readers never hit the black hole")
	}
	if eth.Collisions != 0 {
		t.Fatalf("ethernet collisions = %d", eth.Collisions)
	}
	if eth.Deferrals == 0 {
		t.Fatal("ethernet readers never deferred")
	}
	if eth.Done <= aloha.Done {
		t.Fatalf("ethernet %d transfers not > aloha %d", eth.Done, aloha.Done)
	}
}

func TestProbeCountsOnServers(t *testing.T) {
	e := sim.New(2)
	servers := mkServers(e, Config{}, true)
	ctx, cancel := e.WithTimeout(e.Context(), 300*time.Second)
	defer cancel()
	var r Reader
	e.Spawn("reader", func(p *sim.Proc) { r.Loop(p, ctx, servers, DefaultReaderConfig(core.Ethernet)) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	probes := servers[1].Probes + servers[2].Probes
	if probes == 0 {
		t.Fatal("no probes served by live servers")
	}
	if servers[0].Probes != 0 {
		t.Fatalf("black hole served %d probes", servers[0].Probes)
	}
}

// Property: a reader loop never records more transfers than the window
// could physically hold, and events are time-ordered.
func TestQuickReaderEventSanity(t *testing.T) {
	f := func(seed int64, disc uint8) bool {
		e := sim.New(seed)
		servers := mkServers(e, Config{}, true)
		window := 300 * time.Second
		ctx, cancel := e.WithTimeout(e.Context(), window)
		defer cancel()
		var r Reader
		d := core.Aloha
		if disc%2 == 0 {
			d = core.Ethernet
		}
		e.Spawn("reader", func(p *sim.Proc) { r.Loop(p, ctx, servers, DefaultReaderConfig(d)) })
		if err := e.Run(); err != nil {
			return false
		}
		// Ideal transfer ≈ 10s ⇒ at most ~30 in 300s.
		if r.Done > 31 {
			return false
		}
		last := time.Duration(-1)
		for _, ev := range r.Events {
			if ev.At < last {
				return false
			}
			last = ev.At
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTransientBlackHoleRecovery(t *testing.T) {
	// A server that wedges for the first 300 s and is then repaired:
	// Ethernet readers divert around it while sick (probe fails) and
	// resume using it after recovery (probe succeeds), with no
	// 60-second collisions at any point.
	e := sim.New(7)
	cfg := Config{}
	sick := NewServer(e.RT(), "xxx", true, cfg)
	servers := []*Server{
		sick,
		NewServer(e.RT(), "yyy", false, cfg),
		NewServer(e.RT(), "zzz", false, cfg),
	}
	e.Schedule(300*time.Second, func() { sick.SetBlackHole(false) })
	ctx, cancel := e.WithTimeout(e.Context(), 900*time.Second)
	defer cancel()
	readers := make([]*Reader, 3)
	for i := range readers {
		readers[i] = &Reader{}
		r := readers[i]
		e.Spawn("reader", func(p *sim.Proc) { r.Loop(p, ctx, servers, DefaultReaderConfig(core.Ethernet)) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var collisions int64
	for _, r := range readers {
		collisions += r.Collisions
	}
	if collisions != 0 {
		t.Fatalf("collisions = %d, want 0", collisions)
	}
	if sick.Transfers == 0 {
		t.Fatal("repaired server received no transfers after recovery")
	}
	if sick.Absorbed == 0 {
		t.Fatal("server absorbed nobody while sick (probes never touched it?)")
	}
}
