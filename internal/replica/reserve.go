package replica

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/lease"
)

// bytesTime is the ideal transfer time for size bytes at bandwidth
// bytes/second — the same arithmetic fetch uses.
func bytesTime(size, bandwidth int64) time.Duration {
	return time.Duration(float64(size) / float64(bandwidth) * float64(time.Second))
}

// This file is the data-transfer scenario's fourth-discipline client:
// instead of queueing on a server's lane (and possibly feeding the
// black hole for a 60-second timeout), a reserving reader books the
// lane for a transfer-sized window on a per-server admission book. A
// full book refuses outright — the reader moves to the next replica
// without having touched this one — and a claimed window is enforced
// by the lease watchdog at the window boundary, so a black hole costs
// exactly one booked window, never more.

// NewBooks builds one single-lane admission book per server, the
// reservation reader's view of the replica set. Books and organic lane
// queueing must not be mixed on one server: the book's admission
// accounting is only sound if every client goes through it.
func NewBooks(e core.Backend, servers []*Server) []*lease.Book {
	books := make([]*lease.Book, len(servers))
	for i, srv := range servers {
		books[i] = lease.NewBook(e, srv.Name, 1)
	}
	return books
}

// FetchDataReserved downloads the payload under an admitted claim on
// this server's lane book. There is no lane queueing — the window is
// already the holder's — so the only ways to lose are the black hole,
// injected faults, and the window's own boundary.
func (s *Server) FetchDataReserved(p core.Proc, ctx context.Context, claim *lease.Lease) error {
	if err := p.Sleep(ctx, s.cfg.ConnectTime); err != nil {
		return err
	}
	// Work under the claim: the watchdog at the window boundary unwinds
	// a wedged transfer. There is no renewal — tenure never outlives
	// the booking.
	lctx := claim.Ctx()
	if s.BlackHole {
		s.Absorbed++
		return s.holdErr(ctx, claim, p.Hang(lctx))
	}
	if f := core.InjectAt(s.inj, InjectHold); f.Hang {
		p.Tracer().FaultInjected(InjectHold)
		s.Absorbed++
		return s.holdErr(ctx, claim, p.Hang(lctx))
	}
	d := bytesTime(s.cfg.FileSize, s.cfg.Bandwidth)
	if f := core.InjectAt(s.inj, InjectFetch); !f.Zero() {
		p.Tracer().FaultInjected(InjectFetch)
		d += f.Delay
		if f.Err != nil {
			if err := p.Sleep(lctx, d/2); err != nil {
				return s.holdErr(ctx, claim, err)
			}
			return core.Collision(s.Name, f.Err)
		}
	}
	if err := s.holdErr(ctx, claim, p.Sleep(lctx, d)); err != nil {
		return err
	}
	s.Transfers++
	return nil
}

// ReadOnceReserved performs one work unit with the Reservation
// discipline: walk the (shuffled) replica set, book a transfer window
// on the first server whose book admits us, and fetch under the claim.
// Rejections are cheap (nothing was consumed); a black-holed claim
// costs its booked window.
func (r *Reader) ReadOnceReserved(p core.Proc, ctx context.Context, servers []*Server, books []*lease.Book, cfg ReaderConfig) error {
	tr := cfg.Trace
	type station struct {
		srv  *Server
		book *lease.Book
	}
	stations := make([]station, len(servers))
	for i := range servers {
		stations[i] = station{srv: servers[i], book: books[i]}
	}
	outer := core.TryConfig{Observer: cfg.Observer, Trace: tr, Span: "read", Site: "server", SpanOnly: true}
	return core.Try(ctx, p, core.For(cfg.OuterLimit), outer, func(ctx context.Context) error {
		_, err := core.Forany(ctx, p, stations, true, func(ctx context.Context, st station) error {
			tr.Attempt()
			// Book the lane for one transfer-sized window starting now.
			// DataTimeout is the worst case the Aloha reader tolerates,
			// so it is also the honest window to promise.
			res, rerr := st.book.Reserve(p, p.Name(), p.Elapsed(), cfg.DataTimeout, 1)
			if rerr != nil {
				r.Rejections++
				r.Events = append(r.Events, Event{Kind: EvRejection, At: p.Elapsed()})
				tr.Reject(st.srv.Name, core.Rejection(rerr).Shortfall)
				return rerr
			}
			claim, cerr := res.Claim(p, ctx)
			if cerr != nil {
				// Unreachable for a window starting now, but a booking
				// must never leak.
				res.Cancel()
				return core.Collision(st.srv.Name, cerr)
			}
			derr := st.srv.FetchDataReserved(p, ctx, claim)
			res.Release()
			if derr != nil {
				if ctx.Err() != nil {
					tr.Failure() // cut short by the outer budget: wasted work
					return ctx.Err()
				}
				r.Collisions++
				r.Events = append(r.Events, Event{Kind: EvCollision, At: p.Elapsed()})
				tr.Collision(st.srv.Name)
				return core.Collision(st.srv.Name, derr)
			}
			r.Done++
			r.Events = append(r.Events, Event{Kind: EvTransfer, At: p.Elapsed()})
			tr.Success()
			return nil
		})
		return err
	})
}

// LoopReserved repeats ReadOnceReserved until ctx is canceled.
func (r *Reader) LoopReserved(p core.Proc, ctx context.Context, servers []*Server, books []*lease.Book, cfg ReaderConfig) {
	p.SetTracer(cfg.Trace)
	for ctx.Err() == nil {
		_ = r.ReadOnceReserved(p, ctx, servers, books, cfg)
	}
}
