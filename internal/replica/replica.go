// Package replica simulates the data-transfer scenario of §5: several
// single-threaded servers replicate a read-only file service, and one of
// them is a "black hole" — it accepts connections but never provides
// data or voluntarily disconnects, slowly absorbing every client that
// touches it.
//
// Clients read a 100 MB file (about 10 seconds under ideal conditions).
// The Aloha reader bounds each attempt with a 60-second timeout; the
// Ethernet reader first probes a well-known one-byte flag file under a
// 5-second timeout and defers to another server if the probe fails.
package replica

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/lease"
	"repro/internal/trace"
)

// Config parameterizes the scenario.
type Config struct {
	// FileSize is the payload size in bytes (100 MB in the paper).
	FileSize int64
	// Bandwidth is server transfer speed, bytes/second (10 MB/s → the
	// paper's ~10 s ideal transfer).
	Bandwidth int64
	// FlagSize is the probe file size (1 byte in the paper).
	FlagSize int64
	// ConnectTime is the cost of establishing a connection.
	ConnectTime time.Duration
	// LeaseQuantum bounds how long a client may hold the server's
	// single service lane before renewing. An actively transferring
	// client renews as it goes; a wedged one is revoked and the lane
	// reclaimed. Zero (the default, and the paper's figures) means
	// unlimited tenure.
	LeaseQuantum time.Duration
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		FileSize:    100 << 20,
		Bandwidth:   10 << 20,
		FlagSize:    1,
		ConnectTime: 50 * time.Millisecond,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.FileSize <= 0 {
		c.FileSize = d.FileSize
	}
	if c.Bandwidth <= 0 {
		c.Bandwidth = d.Bandwidth
	}
	if c.FlagSize <= 0 {
		c.FlagSize = d.FlagSize
	}
	if c.ConnectTime <= 0 {
		c.ConnectTime = d.ConnectTime
	}
}

// Injection sites consulted by this substrate (see core.Injector).
const (
	// InjectFetch covers any fetch from a server: an injected error is
	// a dropped connection or corrupted transfer, an injected delay is
	// a slow link.
	InjectFetch = "replica/fetch"
	// InjectHold covers the window where a client owns the service
	// lane: an injected Hang wedges the client mid-transfer, the
	// stuck-holder failure mode the lease watchdog exists for.
	InjectHold = "replica/hold"
	// InjectNet covers the channel between clients and a server's
	// service lane: lease-control messages (release, renew) cross it
	// and may be dropped, duplicated, or delayed (see
	// lease.Manager.SetWire). A Drop at InjectFetch, in turn, loses the
	// transfer's final acknowledgement: the bytes moved, the client
	// cannot tell.
	InjectNet = "replica/net"
)

// Server is one replica. A server is single-threaded: one client
// transfers at a time and the rest queue on the connection.
type Server struct {
	Name      string
	BlackHole bool
	cfg       Config
	inj       core.Injector
	lane      *lease.Manager

	// Transfers counts completed payload downloads; Probes counts flag
	// fetches served; Absorbed counts clients that entered the black
	// hole and eventually gave up; NetDrops counts acknowledgements
	// the channel swallowed after a completed transfer.
	Transfers int64
	Probes    int64
	Absorbed  int64
	NetDrops  int64

	// unfenced disables epoch fencing on the lane's wire — the FigNet
	// ablation arm. Default false: fenced.
	unfenced bool
}

// NewServer creates a replica on engine e.
func NewServer(e core.Backend, name string, blackHole bool, cfg Config) *Server {
	cfg.fillDefaults()
	return &Server{
		Name:      name,
		BlackHole: blackHole,
		cfg:       cfg,
		lane:      lease.New(e, name, 1, cfg.LeaseQuantum),
	}
}

// Busy reports whether a transfer is in progress on this server.
func (s *Server) Busy() bool { return s.lane.InUse() > 0 }

// Lane exposes the server's service-lane manager for observability
// hooks and gauges.
func (s *Server) Lane() *lease.Manager { return s.lane }

// SetBlackHole turns black-hole behaviour on or off at runtime,
// modeling a service that wedges and is later repaired. Clients already
// absorbed stay absorbed until their own timeouts free them.
func (s *Server) SetBlackHole(sick bool) { s.BlackHole = sick }

// SetInjector installs a fault injector consulted on every fetch, and
// routes the service lane's lease-control messages through it at
// InjectNet (fenced unless SetUnfenced). A nil injector (the default)
// disables injection and removes the wire.
func (s *Server) SetInjector(inj core.Injector) {
	s.inj = inj
	s.lane.SetWire(inj, InjectNet, !s.unfenced)
}

// SetUnfenced disables epoch fencing on the server's lease wire — the
// ablation arm that shows why fencing matters. Call before
// SetInjector.
func (s *Server) SetUnfenced(u bool) { s.unfenced = u }

// QueueLen reports clients waiting for the server.
func (s *Server) QueueLen() int { return s.lane.QueueLen() }

// fetch serializes on the server's single service lane and simulates
// moving size bytes. On a black hole the client blocks until its
// context is canceled.
func (s *Server) fetch(p core.Proc, ctx context.Context, size int64) error {
	if err := p.Sleep(ctx, s.cfg.ConnectTime); err != nil {
		return err
	}
	l, err := s.lane.Acquire(p, ctx, p.Name(), 1)
	if err != nil {
		return err
	}
	defer l.Release()
	// Work under the lease context: a revoked tenure unwinds the hold.
	// With an unlimited quantum Ctx() is the caller's context.
	lctx := l.Ctx()
	if s.BlackHole {
		s.Absorbed++
		// Never returns data; only cancellation — or the lease watchdog
		// reclaiming the lane — frees us.
		return s.holdErr(ctx, l, p.Hang(lctx))
	}
	// Chaos seam: a stuck-holder plan wedges this client while it owns
	// the service lane, a per-client black hole.
	if f := core.InjectAt(s.inj, InjectHold); f.Hang {
		p.Tracer().FaultInjected(InjectHold)
		s.Absorbed++
		return s.holdErr(ctx, l, p.Hang(lctx))
	}
	d := time.Duration(float64(size) / float64(s.cfg.Bandwidth) * float64(time.Second))
	// Chaos seam: a fault plan may slow the transfer or drop it partway.
	if f := core.InjectAt(s.inj, InjectFetch); !f.Zero() {
		p.Tracer().FaultInjected(InjectFetch)
		d += f.Delay
		if f.Err != nil {
			// The connection dies mid-transfer: half the bytes moved.
			if err := s.sleepRenewing(p, lctx, l, d/2); err != nil {
				return s.holdErr(ctx, l, err)
			}
			return core.Collision(s.Name, f.Err)
		}
		if f.Drop {
			// The final acknowledgement is lost: every byte moved, but
			// the client cannot distinguish this from a dead server. It
			// pays the full transfer time and retries anyway.
			if err := s.sleepRenewing(p, lctx, l, d); err != nil {
				return s.holdErr(ctx, l, err)
			}
			p.Tracer().MsgDrop(s.Name)
			s.NetDrops++
			return core.Collision(s.Name, core.ErrLost)
		}
	}
	return s.holdErr(ctx, l, s.sleepRenewing(p, lctx, l, d))
}

// sleepRenewing sleeps for d, renewing the lease each half-quantum so
// an actively transferring client is never mistaken for a stuck one.
// With unlimited tenure it is a single plain sleep.
func (s *Server) sleepRenewing(p core.Proc, ctx context.Context, l *lease.Lease, d time.Duration) error {
	q := s.lane.Quantum()
	if q <= 0 {
		return p.Sleep(ctx, d)
	}
	step := q / 2
	if step <= 0 {
		step = q
	}
	for d > 0 {
		chunk := d
		if chunk > step {
			chunk = step
		}
		if err := p.Sleep(ctx, chunk); err != nil {
			return err
		}
		d -= chunk
		l.Renew()
	}
	return nil
}

// holdErr classifies the end of a held-lane wait: the caller's own
// cancellation propagates; a revoked tenure is a collision on this
// server (the client touched the resource and lost it); otherwise the
// sleep's verdict stands.
func (s *Server) holdErr(ctx context.Context, l *lease.Lease, err error) error {
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	if l.Revoked() {
		return core.Collision(s.Name, lease.ErrRevoked)
	}
	return err
}

// FetchData downloads the full payload file.
func (s *Server) FetchData(p core.Proc, ctx context.Context) error {
	if err := s.fetch(p, ctx, s.cfg.FileSize); err != nil {
		return err
	}
	s.Transfers++
	return nil
}

// FetchFlag downloads the one-byte flag file — the cheap availability
// probe of the Ethernet reader.
func (s *Server) FetchFlag(p core.Proc, ctx context.Context) error {
	if err := s.fetch(p, ctx, s.cfg.FlagSize); err != nil {
		return err
	}
	s.Probes++
	return nil
}

// ReaderConfig shapes one reader client.
type ReaderConfig struct {
	// Discipline: Aloha uses only the 60 s data timeout; Ethernet adds
	// the 5 s flag probe. (A Fixed reader, for comparison, uses no
	// timeout at all and therefore never escapes the black hole.)
	Discipline core.Discipline
	// OuterLimit bounds one whole work unit (900 s in the paper).
	OuterLimit time.Duration
	// DataTimeout bounds a single payload attempt (60 s).
	DataTimeout time.Duration
	// ProbeTimeout bounds the flag probe (5 s).
	ProbeTimeout time.Duration
	// Observer receives discipline events from the inner data try.
	Observer core.Observer
	// Trace, when non-nil, records this reader's attempt timeline.
	Trace *trace.Client
}

// DefaultReaderConfig mirrors the paper's scripts.
func DefaultReaderConfig(d core.Discipline) ReaderConfig {
	return ReaderConfig{
		Discipline:   d,
		OuterLimit:   900 * time.Second,
		DataTimeout:  60 * time.Second,
		ProbeTimeout: 5 * time.Second,
	}
}

// Reader is one client's accounting.
type Reader struct {
	// Done counts completed downloads.
	Done int64
	// Collisions counts 60-second attempts wasted on an unresponsive
	// server (the Aloha reader's black-hole penalty).
	Collisions int64
	// Deferrals counts probe failures that diverted the client cheaply.
	Deferrals int64
	// Rejections counts reservation requests a full book refused — like
	// a deferral, the client was diverted without consuming the server.
	Rejections int64
	// Events records each occurrence for timeline figures.
	Events []Event
}

// EventKind labels reader timeline events.
type EventKind int

// Reader event kinds, matching the paper's Figure 6/7 legends.
const (
	EvTransfer EventKind = iota
	EvCollision
	EvDeferral
	EvRejection
)

// Event is a timestamped reader event.
type Event struct {
	Kind EventKind
	At   time.Duration
}

// ReadOnce performs one work unit: fetch the file from any server,
// within the outer limit. It implements the two paper scripts.
func (r *Reader) ReadOnce(p core.Proc, ctx context.Context, servers []*Server, cfg ReaderConfig) error {
	tr := cfg.Trace
	// The outer try records the work-unit span and its backoff intervals;
	// attempt events are emitted per server branch below, because the
	// interesting collisions happen inside forany rounds that ultimately
	// succeed on another server.
	outer := core.TryConfig{Observer: cfg.Observer, Trace: tr, Span: "read", Site: "server", SpanOnly: true}
	return core.Try(ctx, p, core.For(cfg.OuterLimit), outer, func(ctx context.Context) error {
		_, err := core.Forany(ctx, p, servers, true, func(ctx context.Context, srv *Server) error {
			if cfg.Discipline == core.Ethernet {
				// try for 5 seconds: wget http://$host/flag
				tr.Probe(srv.Name)
				perr := core.Try(ctx, p, core.For(cfg.ProbeTimeout), core.TryConfig{NoBackoff: true, Backoff: nil}, func(ctx context.Context) error {
					return srv.FetchFlag(p, ctx)
				})
				tr.CarrierSense(srv.Name, perr != nil)
				if perr != nil {
					if ctx.Err() != nil {
						return ctx.Err()
					}
					r.Deferrals++
					r.Events = append(r.Events, Event{Kind: EvDeferral, At: p.Elapsed()})
					tr.Defer(srv.Name)
					return core.Deferred(srv.Name)
				}
			}
			// try for 60 seconds: wget http://$host/data
			tr.Attempt()
			derr := core.Try(ctx, p, core.For(cfg.DataTimeout), core.TryConfig{NoBackoff: true}, func(ctx context.Context) error {
				return srv.FetchData(p, ctx)
			})
			if derr != nil {
				if ctx.Err() != nil {
					tr.Failure() // cut short by the outer budget: wasted work
					return ctx.Err()
				}
				r.Collisions++
				r.Events = append(r.Events, Event{Kind: EvCollision, At: p.Elapsed()})
				tr.Collision(srv.Name)
				return core.Collision(srv.Name, derr)
			}
			r.Done++
			r.Events = append(r.Events, Event{Kind: EvTransfer, At: p.Elapsed()})
			tr.Success()
			return nil
		})
		return err
	})
}

// Loop repeats ReadOnce until ctx is canceled, the paper's "each client
// repeatedly attempts to read a 100 MB file from a server chosen at
// random".
func (r *Reader) Loop(p core.Proc, ctx context.Context, servers []*Server, cfg ReaderConfig) {
	p.SetTracer(cfg.Trace)
	for ctx.Err() == nil {
		_ = r.ReadOnce(p, ctx, servers, cfg)
	}
}
