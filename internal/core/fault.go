package core

import (
	"errors"
	"time"
)

// This file defines the seam between the substrates and the
// fault-injection subsystem (internal/chaos). Substrates consult an
// Injector at each of their natural failure sites; with no injector
// installed the consultation is free and nothing changes. The interface
// lives here, in the leaf package every substrate already imports, so
// that internal/chaos can depend on the substrates (to squeeze their
// capacities, flap their servers, and crash their daemons) without a
// dependency cycle.

// ErrInjected marks a failure manufactured by a fault-injection plan
// rather than by the simulated physics. Substrates wrap it as a
// collision, so disciplines observe injected faults exactly as they
// observe organic ones — the paper's point that failure detail is
// unavailable to the client.
var ErrInjected = errors.New("injected fault")

// Fault is an injector's verdict for one operation at one site: add
// Delay of extra latency, then — if Err is non-nil — fail the operation
// with it. The zero Fault means "proceed untouched".
type Fault struct {
	// Delay is extra latency the operation must pay before proceeding
	// (or before failing, when Err is also set).
	Delay time.Duration
	// Err, when non-nil, aborts the operation. Substrates surface it
	// through their existing failure paths, typically as a collision.
	Err error
	// Hang, when true, turns the operation into a black hole at its
	// hold site: the holder parks on its context and never proceeds on
	// its own. Only the lease watchdog (or the caller's own deadline)
	// gets it moving again — the stuck-holder failure mode.
	Hang bool
	// Drop, when true, swallows the message at a channel site: the
	// operation's effect is not applied (request drop) or its
	// acknowledgement never arrives (reply drop), depending on which
	// directional site was consulted. The observer sees only ErrLost.
	Drop bool
	// Dup, when true, delivers the message twice at a channel site: the
	// operation's effect is applied a second time unless the receiver
	// deduplicates (idempotency keys, fencing epochs).
	Dup bool
}

// Zero reports whether the fault changes nothing.
func (f Fault) Zero() bool {
	return f.Delay == 0 && f.Err == nil && !f.Hang && !f.Drop && !f.Dup
}

// Injector decides the fate of operations at named sites. Site names
// are constants exported by each substrate (condor.InjectConnect,
// fsbuffer.InjectWrite, ...). Implementations must be deterministic
// functions of virtual time and seeded randomness — never of the wall
// clock — so simulations stay bit-for-bit reproducible.
type Injector interface {
	Inject(site string) Fault
}

// InjectAt consults inj at site, treating a nil injector as no fault.
// It is the one-liner substrates call at their failure sites.
func InjectAt(inj Injector, site string) Fault {
	if inj == nil {
		return Fault{}
	}
	return inj.Inject(site)
}
