package core

import (
	"context"
	"time"

	"repro/internal/trace"
)

// Op is a fallible operation. Implementations must honor ctx: when the
// try budget expires mid-attempt the context is canceled and the op is
// expected to abandon its work promptly, mirroring ftsh's forcible
// termination of the process session.
type Op func(ctx context.Context) error

// Limit expresses ftsh's try budget: `try for 1 hour`, `try 5 times`, or
// `try for 1 hour or 3 times` — whichever is exhausted first ends the
// try. A zero field means that dimension is unbounded; a completely zero
// Limit permits exactly one attempt.
type Limit struct {
	Duration time.Duration
	Attempts int
}

// For returns a duration-only limit.
func For(d time.Duration) Limit { return Limit{Duration: d} }

// Times returns an attempts-only limit.
func Times(n int) Limit { return Limit{Attempts: n} }

// ForOrTimes returns a combined limit; either bound ends the try.
func ForOrTimes(d time.Duration, n int) Limit { return Limit{Duration: d, Attempts: n} }

// Event is a notification from the retry machinery to an Observer.
type Event int

// Event kinds reported to Observers.
const (
	EvAttempt   Event = iota // an attempt is starting
	EvSuccess                // the attempt succeeded
	EvFailure                // the attempt failed (generic)
	EvCollision              // the attempt failed with a collision
	EvDefer                  // carrier sense deferred the attempt
	EvBackoff                // the client is sleeping before a retry
	EvExhausted              // the try gave up
	EvReject                 // an admission controller refused the attempt outright
)

// String names the event kind.
func (e Event) String() string {
	switch e {
	case EvAttempt:
		return "attempt"
	case EvSuccess:
		return "success"
	case EvFailure:
		return "failure"
	case EvCollision:
		return "collision"
	case EvDefer:
		return "defer"
	case EvBackoff:
		return "backoff"
	case EvExhausted:
		return "exhausted"
	case EvReject:
		return "reject"
	default:
		return "unknown"
	}
}

// Observer receives discipline events; experiments use it to build the
// paper's figures. Implementations must be cheap and must not block.
type Observer interface {
	Observe(ev Event, at time.Time, detail error)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ev Event, at time.Time, detail error)

// Observe implements Observer.
func (f ObserverFunc) Observe(ev Event, at time.Time, detail error) { f(ev, at, detail) }

// nopObserver ignores all events.
type nopObserver struct{}

func (nopObserver) Observe(Event, time.Time, error) {}

// TryConfig parameterizes Try beyond its budget.
type TryConfig struct {
	// Backoff overrides the default paper backoff. Nil selects
	// NewBackoff(rt.Rand) for each Try invocation.
	Backoff *Backoff
	// Observer receives events; nil means none.
	Observer Observer
	// Sense, when non-nil, runs before every attempt. If it returns an
	// error the attempt is deferred (counts toward the attempt budget
	// and triggers backoff) without running the op: this is carrier
	// sense. The returned error should usually be Deferred(...).
	Sense func(ctx context.Context) error
	// NoBackoff disables inter-attempt delay entirely, producing the
	// paper's "fixed" client. It exists so the three disciplines share
	// one code path; prefer Client for discipline selection.
	NoBackoff bool
	// Budget, when non-nil, rate-limits retries with a token bucket:
	// each retry debits one token, and an empty bucket extends the
	// backoff sleep until the next token accrues (trace trigger
	// "budget"). Like Backoff it is a shared template, cloned per Try.
	// Ignored under NoBackoff.
	Budget *RetryBudget
	// Trace, when non-nil, receives trace events mirroring the Observer
	// stream plus probe/backoff intervals. Nil (the default) costs one
	// pointer comparison per event site.
	Trace *trace.Client
	// Span, when non-empty, wraps the whole try in a named trace span.
	Span string
	// SpanOnly suppresses per-attempt trace events (the caller emits its
	// own, e.g. one per forany branch) while keeping the span and the
	// backoff intervals.
	SpanOnly bool
	// Site labels the contended resource in trace events ("file-nr",
	// "buffer", "server", ...).
	Site string
}

// Try implements ftsh's try construct: run op until it succeeds or the
// limit is exhausted, backing off exponentially (with randomization)
// between failures. When a Duration budget is set, the whole try —
// including any in-flight attempt — is canceled at the deadline, and the
// attempt's error is reported as exhaustion.
//
// Try returns nil on success; on exhaustion it returns *ExhaustedError;
// if ctx itself is canceled it returns the context error.
func Try(ctx context.Context, rt Runtime, lim Limit, cfg TryConfig, op Op) error {
	obs := cfg.Observer
	if obs == nil {
		obs = nopObserver{}
	}
	tr := cfg.Trace
	etr := tr // event emitter; nil under SpanOnly (nil emits nothing)
	if cfg.SpanOnly {
		etr = nil
	}
	if cfg.Span != "" {
		span := tr.SpanBegin(cfg.Span)
		defer tr.SpanEnd(span)
	}
	if lim.Duration <= 0 && lim.Attempts <= 0 {
		lim.Attempts = 1 // a zero limit permits exactly one attempt
	}
	bo := cfg.Backoff
	if bo == nil {
		bo = NewBackoff(rt.Rand)
	} else {
		// Clone the caller's backoff: a TryConfig may be shared across
		// concurrent Trys (each submitter gets the same template), and
		// mutating the shared Backoff's cursor or Rand field here would
		// be a data race.
		c := *bo
		bo = &c
		bo.Reset()
		if bo.Rand == nil {
			bo.Rand = rt.Rand
		}
	}
	budget := cfg.Budget
	if budget != nil {
		// Clone for the same reason as Backoff: the config is a shared
		// template and the bucket's cursor is per-Try state.
		c := *budget
		budget = &c
	}

	tryCtx := ctx
	cancel := context.CancelFunc(func() {})
	if lim.Duration > 0 {
		tryCtx, cancel = rt.WithTimeout(ctx, lim.Duration)
	}
	defer cancel()

	start := rt.Now()
	attempts := 0
	var last error
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := tryCtx.Err(); err != nil {
			break // budget expired
		}
		if lim.Attempts > 0 && attempts >= lim.Attempts {
			break
		}
		attempts++

		var err error
		trigger := "failure"
		if cfg.Sense != nil {
			etr.Probe(cfg.Site)
			serr := cfg.Sense(tryCtx)
			etr.CarrierSense(cfg.Site, serr != nil)
			if serr != nil {
				err = serr
				trigger = "defer"
				obs.Observe(EvDefer, rt.Now(), serr)
				etr.Defer(cfg.Site)
			}
		}
		if err == nil {
			obs.Observe(EvAttempt, rt.Now(), nil)
			etr.Attempt()
			err = op(tryCtx)
			switch {
			case err == nil:
				obs.Observe(EvSuccess, rt.Now(), nil)
				etr.Success()
				return nil
			case IsCollision(err):
				trigger = "collision"
				obs.Observe(EvCollision, rt.Now(), err)
				etr.Collision(cfg.Site)
			case IsRejected(err):
				// Admission control refused the attempt before any
				// resource was consumed. The backoff that follows is a
				// penalty like a collision's, but observers can tell the
				// two apart — the book was full, the wire was not hot.
				trigger = "reject"
				obs.Observe(EvReject, rt.Now(), err)
				etr.Reject(cfg.Site, Rejection(err).Shortfall)
			default:
				if IsDeferred(err) {
					// The op itself deferred (e.g. a forany whose every
					// branch sensed a busy carrier): the coming backoff is
					// a polite wait, not a collision penalty.
					trigger = "defer"
				}
				obs.Observe(EvFailure, rt.Now(), err)
				etr.Failure()
			}
		}
		last = err

		if tryCtx.Err() != nil {
			break // attempt was cut short by the budget
		}
		if lim.Attempts > 0 && attempts >= lim.Attempts {
			break
		}
		if !cfg.NoBackoff {
			d := bo.Next()
			if wait := budget.debit(rt.Now()); wait > d {
				// The bucket is dry and the next token lands after the
				// planned backoff would have ended: stretch the sleep to
				// the token instead of retrying on schedule.
				d = wait
				trigger = "budget"
			}
			obs.Observe(EvBackoff, rt.Now(), nil)
			tr.BackoffStart(d, trigger)
			serr := rt.Sleep(tryCtx, d)
			tr.BackoffEnd()
			if serr != nil {
				break
			}
		}
	}
	if err := ctx.Err(); err != nil {
		// The caller's own context died; propagate rather than report
		// exhaustion, so enclosing constructs unwind promptly.
		return err
	}
	ex := &ExhaustedError{Attempts: attempts, Elapsed: rt.Now().Sub(start), Last: last}
	obs.Observe(EvExhausted, rt.Now(), ex)
	tr.Exhausted()
	return ex
}

// Forany implements ftsh's forany: run body on each alternative in turn
// until one succeeds, returning the winning alternative. If every
// alternative fails, it returns *AllFailedError. If shuffle is true the
// order is randomized per call (breaking herd behaviour among clients).
func Forany[T any](ctx context.Context, rt Runtime, items []T, shuffle bool, body func(ctx context.Context, item T) error) (T, error) {
	var zero T
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	if shuffle {
		for i := len(order) - 1; i > 0; i-- {
			j := int(rt.Rand() * float64(i+1))
			if j > i {
				j = i
			}
			order[i], order[j] = order[j], order[i]
		}
	}
	errs := make([]error, 0, len(items))
	for _, idx := range order {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		err := body(ctx, items[idx])
		if err == nil {
			return items[idx], nil
		}
		errs = append(errs, err)
	}
	return zero, &AllFailedError{Errs: errs}
}

// Forall implements ftsh's forall: run body on every alternative in
// parallel. If any branch fails, the remaining branches are canceled and
// Forall returns *BranchError; otherwise it returns nil.
func Forall[T any](ctx context.Context, rt Runtime, items []T, body func(ctx context.Context, rt Runtime, item T) error) error {
	return ForallN(ctx, rt, 0, items, body)
}

// ForallN is Forall with at most limit branches in flight (limit <= 0
// means unlimited) — the §4 note that forall's process creation "must
// be governed by an Ethernet-like algorithm": local resources bound how
// many branches may run, and the rest queue for admission.
func ForallN[T any](ctx context.Context, rt Runtime, limit int, items []T, body func(ctx context.Context, rt Runtime, item T) error) error {
	if len(items) == 0 {
		return nil
	}
	branchCtx, cancel := rt.WithCancel(ctx)
	defer cancel()
	fns := make([]func(context.Context, Runtime) error, len(items))
	for i, item := range items {
		item := item
		fns[i] = func(ctx context.Context, rt Runtime) error {
			if err := ctx.Err(); err != nil {
				return err // a failed sibling aborted us before we started
			}
			err := body(ctx, rt, item)
			if err != nil {
				cancel() // abort the outstanding branches
			}
			return err
		}
	}
	errs := rt.Parallel(branchCtx, limit, fns)
	for _, err := range errs {
		if err != nil {
			return &BranchError{Errs: errs}
		}
	}
	return nil
}
