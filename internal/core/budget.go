package core

import "time"

// RetryBudget is a token-bucket limiter on retry *rate*. Exponential
// backoff already spaces an individual client's retries, but when a
// partition severs many clients from a resource at once, every one of
// them fails fast and re-enters backoff from its base — the collective
// effect is a retry storm precisely when the medium is least able to
// absorb one. A budget bounds the storm: each retry debits one token,
// tokens accrue at Rate per (virtual) second up to Burst, and a client
// whose bucket is empty extends its backoff sleep until the next token
// accrues instead of retrying on schedule.
//
// Like Backoff, a RetryBudget in a TryConfig is a shared template: each
// Try clones it, so concurrent Trys never contend on the bucket and a
// budget bounds each client's rate, not the aggregate. The zero value
// (or a nil pointer) disables budgeting entirely.
type RetryBudget struct {
	// Rate is tokens (retries) accrued per second of backend time.
	// Zero or negative disables the budget.
	Rate float64
	// Burst caps the bucket. Zero or negative defaults to max(Rate, 1):
	// roughly one second of accrual, and never less than one whole
	// token so the first retry is always free.
	Burst float64

	level float64   // current tokens; negative = queued deficit
	last  time.Time // accrual high-water mark
	armed bool      // bucket has been initialised (starts full)
}

// debit spends one token at now and reports how long the caller must
// sleep before the retry is within budget (zero when a token was
// available). Repeated debits against an empty bucket queue behind one
// another: the deficit grows and each successive wait lands one
// token-interval later, serializing retries at Rate. Nil-safe.
func (b *RetryBudget) debit(now time.Time) time.Duration {
	if b == nil || b.Rate <= 0 {
		return 0
	}
	burst := b.Burst
	if burst <= 0 {
		burst = b.Rate
		if burst < 1 {
			burst = 1
		}
	}
	if !b.armed {
		b.armed = true
		b.level = burst // a fresh bucket starts full
	} else {
		b.level += now.Sub(b.last).Seconds() * b.Rate
		if b.level > burst {
			b.level = burst
		}
	}
	b.last = now
	b.level--
	if b.level >= 0 {
		return 0
	}
	return time.Duration(-b.level / b.Rate * float64(time.Second))
}
