package core

import (
	"testing"
	"time"
)

// at is a convenience clock for driving debit directly.
func at(d time.Duration) time.Time { return Epoch.Add(d) }

func TestRetryBudgetNilAndDisabledAreFree(t *testing.T) {
	var b *RetryBudget
	if got := b.debit(at(0)); got != 0 {
		t.Errorf("nil budget debit = %v, want 0", got)
	}
	zero := &RetryBudget{}
	for i := 0; i < 100; i++ {
		if got := zero.debit(at(time.Duration(i) * time.Millisecond)); got != 0 {
			t.Fatalf("zero-rate budget debit #%d = %v, want 0", i, got)
		}
	}
}

func TestRetryBudgetFreshBucketStartsFull(t *testing.T) {
	b := &RetryBudget{Rate: 1, Burst: 3}
	// The first Burst debits at one instant are free; the next queues.
	for i := 0; i < 3; i++ {
		if got := b.debit(at(0)); got != 0 {
			t.Fatalf("debit #%d from a fresh burst-3 bucket = %v, want 0", i, got)
		}
	}
	if got := b.debit(at(0)); got != time.Second {
		t.Errorf("debit past the burst = %v, want 1s (one token at rate 1/s)", got)
	}
}

func TestRetryBudgetDefaultBurst(t *testing.T) {
	// Burst <= 0 defaults to max(Rate, 1): the first retry is always
	// free, even at fractional rates.
	slow := &RetryBudget{Rate: 0.25}
	if got := slow.debit(at(0)); got != 0 {
		t.Errorf("first debit at rate 0.25 = %v, want 0 (burst floor of 1)", got)
	}
	if got := slow.debit(at(0)); got != 4*time.Second {
		t.Errorf("second debit at rate 0.25 = %v, want 4s", got)
	}
	fast := &RetryBudget{Rate: 5}
	for i := 0; i < 5; i++ {
		if got := fast.debit(at(0)); got != 0 {
			t.Fatalf("debit #%d at rate 5 = %v, want 0 (default burst = rate)", i, got)
		}
	}
	if fast.debit(at(0)) == 0 {
		t.Error("sixth debit at rate 5 should have exceeded the default burst")
	}
}

func TestRetryBudgetDeficitQueues(t *testing.T) {
	b := &RetryBudget{Rate: 2, Burst: 1}
	if got := b.debit(at(0)); got != 0 {
		t.Fatalf("first debit = %v, want 0", got)
	}
	// Empty bucket, no time passed: each further debit lands one
	// token-interval (500ms at rate 2) later than the one before —
	// retries serialize at Rate instead of bunching on the next token.
	for i := 1; i <= 4; i++ {
		want := time.Duration(i) * 500 * time.Millisecond
		if got := b.debit(at(0)); got != want {
			t.Errorf("queued debit #%d = %v, want %v", i, got, want)
		}
	}
}

func TestRetryBudgetAccruesAndCaps(t *testing.T) {
	b := &RetryBudget{Rate: 1, Burst: 2}
	b.debit(at(0)) // arm: level 2 -> 1
	b.debit(at(0)) // level 1 -> 0
	// One second accrues one token.
	if got := b.debit(at(time.Second)); got != 0 {
		t.Errorf("debit after 1s accrual = %v, want 0", got)
	}
	// A long idle stretch caps at Burst, not at Rate*idle: only two
	// free debits, however long the client slept.
	for i := 0; i < 2; i++ {
		if got := b.debit(at(time.Hour)); got != 0 {
			t.Fatalf("post-idle debit #%d = %v, want 0", i, got)
		}
	}
	if got := b.debit(at(time.Hour)); got != time.Second {
		t.Errorf("third post-idle debit = %v, want 1s: burst cap not applied", got)
	}
}

func TestRetryBudgetDeficitDrainsWithTime(t *testing.T) {
	b := &RetryBudget{Rate: 1, Burst: 1}
	b.debit(at(0)) // level 1 -> 0
	if b.debit(at(0)) != time.Second {
		t.Fatal("expected a 1s deficit")
	}
	// Sleeping out the prescribed wait restores balance exactly: the
	// next debit queues one interval again, no compounding drift.
	if got := b.debit(at(time.Second)); got != time.Second {
		t.Errorf("debit after paying the deficit = %v, want 1s", got)
	}
}
