package core

import (
	"errors"
	"fmt"
	"time"
)

// The paper's central observation is that failure detail is usually
// unavailable ("untyped exceptions"), so this package keeps error
// classification deliberately coarse. Three sentinel kinds matter to the
// Ethernet discipline itself; everything else is an opaque failure.

// ErrCollision marks a failure caused by contention detected *after*
// consuming a resource — the Ethernet "collision detect" outcome. Ops
// wrap or return it so observers can count collisions.
var ErrCollision = errors.New("collision: resource in contention")

// ErrDeferred marks an attempt abandoned *before* consuming the resource
// because carrier sense judged it busy. Deferrals are cheap; collisions
// are not. The distinction drives Figures 5 and 7.
var ErrDeferred = errors.New("deferred: carrier busy")

// ErrFailure is the generic untyped failure, equivalent to ftsh's
// `failure` command or a non-zero exit code.
var ErrFailure = errors.New("failure")

// Collision wraps err (which may be nil) as a collision on resource name.
// The inner error stays on the errors.Is/As chain: a caller that needs
// to know *why* the collision happened (a typed rejection, a revoked
// lease, an injected fault) can still see through the coarse wrapper,
// while code that only counts collisions keeps matching ErrCollision.
func Collision(name string, err error) error {
	if err == nil {
		return fmt.Errorf("%s: %w", name, ErrCollision)
	}
	return fmt.Errorf("%s: %w: %w", name, ErrCollision, err)
}

// Deferred wraps a carrier-sense deferral on resource name.
func Deferred(name string) error {
	return fmt.Errorf("%s: %w", name, ErrDeferred)
}

// IsCollision reports whether err is or wraps ErrCollision.
func IsCollision(err error) bool { return errors.Is(err, ErrCollision) }

// IsDeferred reports whether err is or wraps ErrDeferred.
func IsDeferred(err error) bool { return errors.Is(err, ErrDeferred) }

// RejectedError marks an attempt refused outright by an admission
// controller before any resource was consumed: the reservation book
// saying "no capacity over the requested window". It is distinct from
// the three sentinel kinds above — a collision is contention discovered
// *after* consuming the resource, a deferral is the client's own
// carrier sense standing down, but a rejection is the resource's
// verdict, and it is the only kind that carries a measure of how full
// the resource was.
type RejectedError struct {
	Resource  string // the admission-controlled resource ("fds", "yyy", ...)
	Shortfall int64  // units the request exceeded remaining capacity by (always > 0)
}

// Error implements the error interface.
func (e *RejectedError) Error() string {
	return fmt.Sprintf("%s: rejected by admission: %d unit(s) over capacity", e.Resource, e.Shortfall)
}

// Rejected builds a typed admission rejection on resource name.
func Rejected(name string, shortfall int64) error {
	return &RejectedError{Resource: name, Shortfall: shortfall}
}

// IsRejected reports whether err is or wraps a *RejectedError.
func IsRejected(err error) bool { return Rejection(err) != nil }

// Rejection extracts the typed rejection from err's chain, or nil.
func Rejection(err error) *RejectedError {
	var re *RejectedError
	if errors.As(err, &re) {
		return re
	}
	return nil
}

// ErrLost marks a message swallowed by the channel between a client and
// a resource: a dropped request, a dropped reply, or a partitioned
// link. The client cannot distinguish the three — all it observes is
// that the operation never completed — which is exactly the paper's
// untyped-failure regime. Substrates wrap it as a collision.
var ErrLost = errors.New("lost: message dropped by channel")

// IsLost reports whether err is or wraps ErrLost.
func IsLost(err error) bool { return errors.Is(err, ErrLost) }

// ErrStale marks an operation carrying a fencing epoch that the
// resource has already moved past: a revoked-then-delayed holder
// releasing units it no longer owns, or a duplicated grant arriving
// after its successor. Fenced resources reject such operations instead
// of applying them, which is what makes double-allocation impossible.
var ErrStale = errors.New("stale: fencing epoch superseded")

// StaleError carries the detail of a fencing rejection: which resource
// fenced the operation, the epoch the operation carried, and the
// resource's current fence (the highest epoch it has retired).
type StaleError struct {
	Resource string // the fenced resource ("fds", "reservation", ...)
	Epoch    uint64 // epoch the rejected operation carried
	Fence    uint64 // resource's fence: highest retired epoch (>= Epoch)
}

// Error implements the error interface.
func (e *StaleError) Error() string {
	return fmt.Sprintf("%s: %v: epoch %d <= fence %d", e.Resource, ErrStale, e.Epoch, e.Fence)
}

// Is makes errors.Is(err, ErrStale) match a StaleError.
func (e *StaleError) Is(target error) bool { return target == ErrStale }

// Stale builds a typed fencing rejection on resource name.
func Stale(name string, epoch, fence uint64) error {
	return &StaleError{Resource: name, Epoch: epoch, Fence: fence}
}

// IsStale reports whether err is or wraps a fencing rejection.
func IsStale(err error) bool { return errors.Is(err, ErrStale) }

// Staleness extracts the typed fencing rejection from err's chain, or nil.
func Staleness(err error) *StaleError {
	var se *StaleError
	if errors.As(err, &se) {
		return se
	}
	return nil
}

// ExhaustedError reports why a Try gave up: its budget of time and/or
// attempts ran out. Last holds the most recent attempt's error.
type ExhaustedError struct {
	Attempts int           // attempts actually made
	Elapsed  time.Duration // time spent inside Try
	Last     error         // error from the final attempt, possibly nil if canceled pre-attempt
}

// Error implements the error interface.
func (e *ExhaustedError) Error() string {
	if e.Last == nil {
		return fmt.Sprintf("try: exhausted after %d attempts in %v", e.Attempts, e.Elapsed)
	}
	return fmt.Sprintf("try: exhausted after %d attempts in %v: last error: %v", e.Attempts, e.Elapsed, e.Last)
}

// Unwrap exposes the last attempt error to errors.Is/As chains.
func (e *ExhaustedError) Unwrap() error { return e.Last }

// AllFailedError reports a Forany in which no alternative succeeded.
type AllFailedError struct {
	Errs []error // one per alternative, in attempt order
}

// Error implements the error interface.
func (e *AllFailedError) Error() string {
	return fmt.Sprintf("forany: all %d alternatives failed", len(e.Errs))
}

// Unwrap exposes the branch errors to errors.Is/As chains.
func (e *AllFailedError) Unwrap() []error { return e.Errs }

// BranchError reports a Forall in which at least one branch failed.
type BranchError struct {
	Errs []error // parallel to the branch list; nil for successful branches
}

// Error implements the error interface.
func (e *BranchError) Error() string {
	n := 0
	for _, err := range e.Errs {
		if err != nil {
			n++
		}
	}
	return fmt.Sprintf("forall: %d of %d branches failed", n, len(e.Errs))
}

// Unwrap exposes the branch errors to errors.Is/As chains.
func (e *BranchError) Unwrap() []error { return e.Errs }
