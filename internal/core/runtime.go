// Package core implements the Ethernet approach to resource sharing from
// Thain & Livny, "The Ethernet Approach to Grid Computing" (HPDC 2003).
//
// The package provides the paper's arbitration discipline as a library:
//
//   - Carrier sense: observe a shared resource before consuming it
//     (the Sense hook on Client and the EthernetSense option on Try).
//   - Collision detect: operations report failure by returning an error;
//     helpers classify collisions, deferrals, and plain failures.
//   - Exponential backoff: Backoff doubles a base delay after every
//     failure up to a cap, multiplying each delay by a random factor in
//     [1,2) to break synchronization among competing clients.
//   - Limited allocation: Try bounds work by wall-clock budget and/or
//     attempt count, and cancels in-flight work when the budget expires.
//
// All timing flows through the Runtime interface so the identical logic
// runs against the real clock (Real) or a discrete-event simulation
// (internal/sim), which is how the paper's experiments are reproduced at
// laptop scale.
package core

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Runtime abstracts time, randomness, and concurrency for fault-tolerant
// clients. internal/sim provides a virtual-time implementation; Real runs
// against the wall clock.
type Runtime interface {
	// Now reports the current time.
	Now() time.Time
	// Sleep pauses for d or until ctx is canceled, returning the
	// context's error in the latter case.
	Sleep(ctx context.Context, d time.Duration) error
	// WithTimeout derives a context canceled after d.
	WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc)
	// WithCancel derives an explicitly cancelable context.
	WithCancel(parent context.Context) (context.Context, context.CancelFunc)
	// Rand returns a uniform value in [0,1).
	Rand() float64
	// Parallel runs the fns concurrently, handing each branch a Runtime
	// valid within that branch, and waits for all branches to return.
	// Element i of the result is fn[i]'s error. At most limit branches
	// run at once; limit <= 0 means unlimited. Bounding parallelism is
	// the §4 requirement that "the creation of processes must be
	// governed by an Ethernet-like algorithm similar to that of try".
	Parallel(ctx context.Context, limit int, fns []func(ctx context.Context, rt Runtime) error) []error
}

// Real is the wall-clock Runtime used by the ftsh command-line shell and
// any production client of this library.
type Real struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewReal returns a wall-clock runtime. If seed is zero the current time
// seeds the random source.
func NewReal(seed int64) *Real {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Real{rng: rand.New(rand.NewSource(seed))}
}

// Now implements Runtime.
func (r *Real) Now() time.Time { return time.Now() }

// Sleep implements Runtime using a timer and ctx.Done.
func (r *Real) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WithTimeout implements Runtime.
func (r *Real) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, d)
}

// WithCancel implements Runtime.
func (r *Real) WithCancel(parent context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(parent)
}

// Rand implements Runtime; it is safe for concurrent use.
func (r *Real) Rand() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// Parallel implements Runtime with a pool of up to limit goroutines
// (one per branch when unlimited).
func (r *Real) Parallel(ctx context.Context, limit int, fns []func(ctx context.Context, rt Runtime) error) []error {
	errs := make([]error, len(fns))
	workers := len(fns)
	if limit > 0 && limit < workers {
		workers = limit
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fns[i](ctx, r)
			}
		}()
	}
	for i := range fns {
		next <- i
	}
	close(next)
	wg.Wait()
	return errs
}
