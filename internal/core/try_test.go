package core_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// runSim executes body inside a single simulated process and returns the
// engine so tests can inspect elapsed virtual time.
func runSim(t *testing.T, seed int64, body func(p *sim.Proc, ctx context.Context)) *sim.Engine {
	t.Helper()
	e := sim.New(seed)
	e.Spawn("test", func(p *sim.Proc) { body(p, e.Context()) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTrySucceedsFirstAttempt(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		calls := 0
		err := core.Try(ctx, p, core.For(time.Minute), core.TryConfig{}, func(ctx context.Context) error {
			calls++
			return nil
		})
		if err != nil || calls != 1 {
			t.Errorf("err=%v calls=%d", err, calls)
		}
	})
}

func TestTryRetriesUntilSuccess(t *testing.T) {
	e := runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		calls := 0
		err := core.Try(ctx, p, core.For(time.Hour), core.TryConfig{}, func(ctx context.Context) error {
			calls++
			if calls < 4 {
				return core.ErrFailure
			}
			return nil
		})
		if err != nil || calls != 4 {
			t.Errorf("err=%v calls=%d", err, calls)
		}
	})
	// Three backoffs of at least 1s+2s+4s must have elapsed.
	if e.Elapsed() < 7*time.Second {
		t.Fatalf("elapsed %v, want >= 7s of backoff", e.Elapsed())
	}
	// And randomization bounds them below 2x the deterministic sum.
	if e.Elapsed() >= 14*time.Second {
		t.Fatalf("elapsed %v, want < 14s", e.Elapsed())
	}
}

func TestTryAttemptLimit(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		calls := 0
		err := core.Try(ctx, p, core.Times(5), core.TryConfig{}, func(ctx context.Context) error {
			calls++
			return core.ErrFailure
		})
		var ex *core.ExhaustedError
		if !errors.As(err, &ex) {
			t.Errorf("err = %v, want ExhaustedError", err)
			return
		}
		if calls != 5 || ex.Attempts != 5 {
			t.Errorf("calls=%d attempts=%d, want 5", calls, ex.Attempts)
		}
		if !errors.Is(err, core.ErrFailure) {
			t.Errorf("ExhaustedError should unwrap to last attempt error")
		}
	})
}

func TestTryTimeBudgetCancelsInFlightAttempt(t *testing.T) {
	e := runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		err := core.Try(ctx, p, core.For(10*time.Second), core.TryConfig{}, func(ctx context.Context) error {
			// An attempt that would take an hour: the try deadline must
			// cut it off, like ftsh killing the process session.
			return p.Sleep(ctx, time.Hour)
		})
		var ex *core.ExhaustedError
		if !errors.As(err, &ex) {
			t.Errorf("err = %v, want ExhaustedError", err)
			return
		}
		if !errors.Is(ex.Last, context.DeadlineExceeded) {
			t.Errorf("last = %v, want DeadlineExceeded", ex.Last)
		}
	})
	if e.Elapsed() != 10*time.Second {
		t.Fatalf("elapsed %v, want exactly the 10s budget", e.Elapsed())
	}
}

func TestTryForOrTimesWhicheverFirst(t *testing.T) {
	// Attempts are instant; the attempt bound must trigger long before
	// the time bound.
	e := runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		calls := 0
		err := core.Try(ctx, p, core.ForOrTimes(time.Hour, 3), core.TryConfig{}, func(ctx context.Context) error {
			calls++
			return core.ErrFailure
		})
		if calls != 3 {
			t.Errorf("calls = %d, want 3", calls)
		}
		var ex *core.ExhaustedError
		if !errors.As(err, &ex) {
			t.Errorf("err = %v", err)
		}
	})
	if e.Elapsed() > 10*time.Second {
		t.Fatalf("elapsed %v; attempt bound should stop well before 1h", e.Elapsed())
	}
}

func TestTryZeroLimitIsSingleAttempt(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		calls := 0
		err := core.Try(ctx, p, core.Limit{}, core.TryConfig{}, func(ctx context.Context) error {
			calls++
			return core.ErrFailure
		})
		if calls != 1 {
			t.Errorf("calls = %d, want 1", calls)
		}
		if err == nil {
			t.Error("want error")
		}
	})
}

func TestTryNoBackoffRetriesImmediately(t *testing.T) {
	e := runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		calls := 0
		_ = core.Try(ctx, p, core.Times(100), core.TryConfig{NoBackoff: true}, func(ctx context.Context) error {
			calls++
			return core.ErrFailure
		})
		if calls != 100 {
			t.Errorf("calls = %d, want 100", calls)
		}
	})
	if e.Elapsed() != 0 {
		t.Fatalf("elapsed %v, want 0 for fixed discipline", e.Elapsed())
	}
}

func TestTrySenseDefersWithoutRunningOp(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		busy := true
		senses, ops := 0, 0
		var events []core.Event
		obs := core.ObserverFunc(func(ev core.Event, at time.Time, detail error) {
			events = append(events, ev)
		})
		cfg := core.TryConfig{
			Observer: obs,
			Sense: func(ctx context.Context) error {
				senses++
				if busy {
					busy = false
					return core.Deferred("fds")
				}
				return nil
			},
		}
		err := core.Try(ctx, p, core.For(time.Hour), cfg, func(ctx context.Context) error {
			ops++
			return nil
		})
		if err != nil {
			t.Errorf("err = %v", err)
		}
		if senses != 2 || ops != 1 {
			t.Errorf("senses=%d ops=%d, want 2 and 1", senses, ops)
		}
		wantPrefix := []core.Event{core.EvDefer, core.EvBackoff, core.EvAttempt, core.EvSuccess}
		for i, w := range wantPrefix {
			if i >= len(events) || events[i] != w {
				t.Fatalf("events = %v, want prefix %v", events, wantPrefix)
			}
		}
	})
}

func TestTryObserverSeesCollision(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		var got []core.Event
		obs := core.ObserverFunc(func(ev core.Event, at time.Time, detail error) { got = append(got, ev) })
		_ = core.Try(ctx, p, core.Times(1), core.TryConfig{Observer: obs}, func(ctx context.Context) error {
			return core.Collision("disk", nil)
		})
		want := []core.Event{core.EvAttempt, core.EvCollision, core.EvExhausted}
		if len(got) != len(want) {
			t.Fatalf("events = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("events = %v, want %v", got, want)
			}
		}
	})
}

func TestTryParentCancelPropagates(t *testing.T) {
	e := sim.New(1)
	ctx, cancel := e.WithCancel(e.Context())
	var err error
	e.Spawn("t", func(p *sim.Proc) {
		err = core.Try(ctx, p, core.For(time.Hour), core.TryConfig{}, func(ctx context.Context) error {
			return core.ErrFailure
		})
	})
	e.Schedule(5*time.Second, func() { cancel() })
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForanyReturnsFirstWinnerInOrder(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		var tried []string
		win, err := core.Forany(ctx, p, []string{"xxx", "yyy", "zzz"}, false, func(ctx context.Context, s string) error {
			tried = append(tried, s)
			if s == "yyy" {
				return nil
			}
			return core.ErrFailure
		})
		if err != nil || win != "yyy" {
			t.Errorf("win=%q err=%v", win, err)
		}
		if len(tried) != 2 || tried[0] != "xxx" || tried[1] != "yyy" {
			t.Errorf("tried = %v", tried)
		}
	})
}

func TestForanyAllFail(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		_, err := core.Forany(ctx, p, []string{"a", "b"}, false, func(ctx context.Context, s string) error {
			return fmt.Errorf("%s: %w", s, core.ErrFailure)
		})
		var all *core.AllFailedError
		if !errors.As(err, &all) || len(all.Errs) != 2 {
			t.Errorf("err = %v", err)
		}
	})
}

func TestForanyShuffleCoversAllOrders(t *testing.T) {
	firsts := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		runSim(t, seed, func(p *sim.Proc, ctx context.Context) {
			var first string
			_, _ = core.Forany(ctx, p, []string{"a", "b", "c"}, true, func(ctx context.Context, s string) error {
				if first == "" {
					first = s
				}
				return core.ErrFailure
			})
			firsts[first] = true
		})
	}
	if len(firsts) < 3 {
		t.Fatalf("shuffle never varied first pick: %v", firsts)
	}
}

func TestForallAllSucceed(t *testing.T) {
	e := runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		err := core.Forall(ctx, p, []string{"f1", "f2", "f3"}, func(ctx context.Context, rt core.Runtime, item string) error {
			return rt.Sleep(ctx, 10*time.Second)
		})
		if err != nil {
			t.Errorf("err = %v", err)
		}
	})
	if e.Elapsed() != 10*time.Second {
		t.Fatalf("elapsed %v, want 10s (parallel, not 30s)", e.Elapsed())
	}
}

func TestForallFailureAbortsOutstandingBranches(t *testing.T) {
	e := runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		err := core.Forall(ctx, p, []string{"fast-fail", "slow"}, func(ctx context.Context, rt core.Runtime, item string) error {
			if item == "fast-fail" {
				_ = rt.Sleep(ctx, time.Second)
				return core.ErrFailure
			}
			return rt.Sleep(ctx, time.Hour)
		})
		var be *core.BranchError
		if !errors.As(err, &be) {
			t.Errorf("err = %v, want BranchError", err)
			return
		}
		if be.Errs[0] == nil {
			t.Error("fast-fail branch error missing")
		}
		if !errors.Is(be.Errs[1], context.Canceled) {
			t.Errorf("slow branch err = %v, want Canceled", be.Errs[1])
		}
	})
	if e.Elapsed() != time.Second {
		t.Fatalf("elapsed %v, want 1s: failure must abort the hour-long branch", e.Elapsed())
	}
}

func TestForallEmpty(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		if err := core.Forall(ctx, p, nil, func(ctx context.Context, rt core.Runtime, item string) error { return nil }); err != nil {
			t.Errorf("err = %v", err)
		}
	})
}

func TestNestedTryMatchesPaperExample(t *testing.T) {
	// try for 30 minutes { try for 5 minutes {fetch}; try for 1 minute
	// or 3 times {unpack} } — §4's nesting example. The fetch always
	// hangs; the outer budget must bound everything to 30 minutes.
	e := runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		err := core.Try(ctx, p, core.For(30*time.Minute), core.TryConfig{}, func(ctx context.Context) error {
			if err := core.Try(ctx, p, core.For(5*time.Minute), core.TryConfig{}, func(ctx context.Context) error {
				return p.Sleep(ctx, time.Hour) // hung fetch
			}); err != nil {
				return err
			}
			return core.Try(ctx, p, core.ForOrTimes(time.Minute, 3), core.TryConfig{}, func(ctx context.Context) error {
				return nil
			})
		})
		if err == nil {
			t.Error("expected exhaustion")
		}
	})
	if e.Elapsed() != 30*time.Minute {
		t.Fatalf("elapsed %v, want exactly 30m", e.Elapsed())
	}
}

func TestClientDisciplines(t *testing.T) {
	// One contended "resource": succeeds only when free >= 1.
	type result struct {
		attempts int
		defers   int
	}
	run := func(d core.Discipline) result {
		var res result
		runSim(t, 9, func(p *sim.Proc, ctx context.Context) {
			free := 0
			// Resource frees up after 20 seconds.
			p.Engine().Schedule(20*time.Second, func() { free = 1 })
			obs := core.ObserverFunc(func(ev core.Event, at time.Time, detail error) {
				switch ev {
				case core.EvAttempt:
					res.attempts++
				case core.EvDefer:
					res.defers++
				}
			})
			c := &core.Client{
				Rt:         p,
				Discipline: d,
				Limit:      core.ForOrTimes(time.Minute, 1000),
				Sense:      core.ThresholdSense("free", func() int { return free }, 1),
				Observer:   obs,
			}
			_ = c.Do(ctx, func(ctx context.Context) error {
				if free < 1 {
					return core.Collision("res", nil)
				}
				return nil
			})
		})
		return res
	}
	fixed := run(core.Fixed)
	aloha := run(core.Aloha)
	eth := run(core.Ethernet)
	if fixed.attempts != 1000 {
		t.Errorf("fixed attempts = %d, want 1000 (hammers without delay)", fixed.attempts)
	}
	if aloha.attempts >= fixed.attempts || aloha.attempts < 2 {
		t.Errorf("aloha attempts = %d, want few (backoff)", aloha.attempts)
	}
	if eth.attempts != 1 {
		t.Errorf("ethernet attempts = %d, want exactly 1 (defers until carrier idle)", eth.attempts)
	}
	if eth.defers == 0 {
		t.Error("ethernet recorded no deferrals")
	}
}

func TestRealRuntimeSleepHonorsCancel(t *testing.T) {
	rt := core.NewReal(1)
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	err := rt.Sleep(ctx, 5*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestRealRuntimeParallel(t *testing.T) {
	rt := core.NewReal(1)
	errs := rt.Parallel(context.Background(), 0, []func(context.Context, core.Runtime) error{
		func(ctx context.Context, rt core.Runtime) error { return nil },
		func(ctx context.Context, rt core.Runtime) error { return core.ErrFailure },
	})
	if errs[0] != nil || !errors.Is(errs[1], core.ErrFailure) {
		t.Fatalf("errs = %v", errs)
	}
}

func TestRealRuntimeTrySmoke(t *testing.T) {
	// The same Try code against the wall clock, with millisecond scale.
	rt := core.NewReal(1)
	calls := 0
	bo := &core.Backoff{Base: time.Millisecond, Cap: 4 * time.Millisecond, Factor: 2, RandMin: 1, RandMax: 2}
	err := core.Try(context.Background(), rt, core.For(2*time.Second), core.TryConfig{Backoff: bo}, func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return core.ErrFailure
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestProbeSense(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		// Probe hangs: sense must give up after its timeout and defer.
		sense := core.ProbeSense(p, 5*time.Second, func(ctx context.Context) error {
			return p.Sleep(ctx, time.Hour)
		})
		start := p.Now()
		err := sense(ctx)
		if !core.IsDeferred(err) {
			t.Errorf("err = %v, want deferral", err)
		}
		if got := p.Now().Sub(start); got != 5*time.Second {
			t.Errorf("probe took %v, want 5s", got)
		}
	})
}

func TestForallNBoundsParallelism(t *testing.T) {
	e := runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		err := core.ForallN(ctx, p, 2, []string{"a", "b", "c", "d"}, func(ctx context.Context, rt core.Runtime, item string) error {
			return rt.Sleep(ctx, 10*time.Second)
		})
		if err != nil {
			t.Errorf("err = %v", err)
		}
	})
	// 4 branches, 2 at a time => 20s, not 10s (unbounded) or 40s (serial).
	if e.Elapsed() != 20*time.Second {
		t.Fatalf("elapsed = %v, want 20s", e.Elapsed())
	}
}

func TestForallNAbortSkipsQueuedBranches(t *testing.T) {
	runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		started := 0
		err := core.ForallN(ctx, p, 1, []string{"fail", "queued1", "queued2"}, func(ctx context.Context, rt core.Runtime, item string) error {
			started++
			if item == "fail" {
				return core.ErrFailure
			}
			return nil
		})
		if err == nil {
			t.Error("want failure")
		}
		if started != 1 {
			t.Errorf("started = %d, want 1: queued branches must not start after abort", started)
		}
	})
}

func TestForallNQueuedBranchReturnsPromptlyAfterAbort(t *testing.T) {
	// With one slot, the queued branch waits behind a sibling that fails
	// after 1s of virtual time. The abort must both skip the queued body
	// and resolve its slot immediately — the forall returns at the
	// sibling's failure, not after any further delay.
	e := runSim(t, 1, func(p *sim.Proc, ctx context.Context) {
		ran := false
		err := core.ForallN(ctx, p, 1, []string{"fail", "queued"}, func(ctx context.Context, rt core.Runtime, item string) error {
			if item == "queued" {
				ran = true
				return rt.Sleep(ctx, time.Hour)
			}
			_ = rt.Sleep(ctx, time.Second)
			return core.ErrFailure
		})
		var be *core.BranchError
		if !errors.As(err, &be) {
			t.Errorf("err = %v, want BranchError", err)
			return
		}
		if ran {
			t.Error("queued branch body ran after its sibling aborted the forall")
		}
		if !errors.Is(be.Errs[1], context.Canceled) {
			t.Errorf("queued branch err = %v, want Canceled", be.Errs[1])
		}
	})
	if e.Elapsed() != time.Second {
		t.Fatalf("elapsed %v, want exactly the failing sibling's 1s", e.Elapsed())
	}
}

func TestTrySharedBackoffTemplateIsNotMutated(t *testing.T) {
	// A TryConfig is a template: every submitter in an experiment shares
	// one literally, so Try must clone cfg.Backoff instead of advancing
	// the shared cursor (or writing its Rand field). Under -race the
	// in-place mutation this guards against is a reported data race; in
	// any mode the template must come out untouched.
	rt := core.NewReal(1)
	bo := &core.Backoff{Base: time.Microsecond, Cap: 8 * time.Microsecond, Factor: 2, RandMin: 1, RandMax: 2}
	cfg := core.TryConfig{Backoff: bo}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			calls := 0
			_ = core.Try(context.Background(), rt, core.Times(6), cfg, func(ctx context.Context) error {
				calls++
				if calls < 6 {
					return core.ErrFailure
				}
				return nil
			})
		}()
	}
	wg.Wait()
	if got := bo.Attempts(); got != 0 {
		t.Fatalf("shared template advanced %d times; Try must clone it", got)
	}
	if bo.Rand != nil {
		t.Fatal("Try wrote a Rand source into the shared template")
	}
}

func TestRealParallelLimit(t *testing.T) {
	rt := core.NewReal(1)
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	fns := make([]func(context.Context, core.Runtime) error, 8)
	for i := range fns {
		fns[i] = func(ctx context.Context, rt core.Runtime) error {
			mu.Lock()
			inFlight++
			if inFlight > maxInFlight {
				maxInFlight = inFlight
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			inFlight--
			mu.Unlock()
			return nil
		}
	}
	errs := rt.Parallel(context.Background(), 3, fns)
	for _, err := range errs {
		if err != nil {
			t.Fatalf("err = %v", err)
		}
	}
	if maxInFlight > 3 {
		t.Fatalf("maxInFlight = %d, want <= 3", maxInFlight)
	}
}
