package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// Property tests for the paper's backoff (§4), driven by seeded PRNG
// streams rather than hand-picked values: for every seed, every delay
// drawn from the default schedule stays inside its envelope, the
// random factor stays in [1,2), and stripping the randomization leaves
// an exactly reproducible doubling sequence.

// TestQuickBackoffSeededEnvelope: with the paper's defaults and a real
// seeded PRNG, the i-th delay is in [ideal, 2*ideal) where ideal is
// the doubled-and-capped base — so every delay lies in [Base, 2*Cap).
func TestQuickBackoffSeededEnvelope(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		b := NewBackoff(rnd.Float64)
		ideal := time.Duration(0)
		for n := 0; n < 40; n++ {
			if ideal == 0 {
				ideal = b.Base
			} else if ideal < b.Cap {
				ideal *= 2
				if ideal > b.Cap {
					ideal = b.Cap
				}
			}
			d := b.Next()
			if d < ideal || d >= 2*ideal {
				t.Logf("seed %d attempt %d: delay %v outside [%v, %v)", seed, n, d, ideal, 2*ideal)
				return false
			}
			if d < b.Base || d >= 2*b.Cap {
				t.Logf("seed %d attempt %d: delay %v outside global [%v, %v)", seed, n, d, b.Base, 2*b.Cap)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBackoffFactorRange: the implied random factor d/ideal of
// every issued delay is in [RandMin, RandMax) for arbitrary seeds.
func TestQuickBackoffFactorRange(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		b := NewBackoff(rnd.Float64)
		ideal := time.Duration(0)
		for n := 0; n < 30; n++ {
			if ideal == 0 {
				ideal = b.Base
			} else if ideal < b.Cap {
				ideal *= 2
				if ideal > b.Cap {
					ideal = b.Cap
				}
			}
			factor := float64(b.Next()) / float64(ideal)
			if factor < b.RandMin || factor >= b.RandMax {
				t.Logf("seed %d attempt %d: factor %v outside [%v, %v)", seed, n, factor, b.RandMin, b.RandMax)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBackoffUnrandomizedExact: with randomization disabled
// (RandMin == RandMax == 1, the cascading-collision ablation), the
// sequence is exactly Base, 2*Base, 4*Base, ... capped — independent
// of the random stream.
func TestQuickBackoffUnrandomizedExact(t *testing.T) {
	f := func(seed int64, baseMs uint16) bool {
		base := time.Duration(baseMs%5000+1) * time.Millisecond
		rnd := rand.New(rand.NewSource(seed))
		b := &Backoff{Base: base, Cap: DefaultCap, Factor: 2,
			RandMin: 1, RandMax: 1, Rand: rnd.Float64}
		b.Reset()
		want := time.Duration(0)
		for n := 0; n < 30; n++ {
			if want == 0 {
				want = base
			} else if want < b.Cap {
				want *= 2
				if want > b.Cap {
					want = b.Cap
				}
			}
			if d := b.Next(); d != want {
				t.Logf("seed %d base %v attempt %d: %v != %v", seed, base, n, d, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBackoffPeekAgreesWithNext: Peek always predicts the
// pre-randomization delay the next call to Next will scale, and never
// advances the sequence.
func TestQuickBackoffPeekAgreesWithNext(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		b := NewBackoff(rnd.Float64)
		for n := 0; n < 30; n++ {
			p1 := b.Peek()
			if p2 := b.Peek(); p2 != p1 {
				t.Logf("seed %d attempt %d: Peek advanced: %v then %v", seed, n, p1, p2)
				return false
			}
			d := b.Next()
			if d < p1 || d >= 2*p1 {
				t.Logf("seed %d attempt %d: Next %v outside Peek envelope [%v, %v)", seed, n, d, p1, 2*p1)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBackoffResetReplays: after Reset, the same random stream
// replays the same delays — the sequence has no hidden state beyond
// (cur, attempts).
func TestQuickBackoffResetReplays(t *testing.T) {
	f := func(seed int64) bool {
		draw := func() []time.Duration {
			rnd := rand.New(rand.NewSource(seed))
			b := NewBackoff(rnd.Float64)
			out := make([]time.Duration, 20)
			for i := range out {
				out[i] = b.Next()
			}
			b.Reset()
			if b.Attempts() != 0 {
				return nil
			}
			return out
		}
		a, b := draw(), draw()
		if a == nil || b == nil {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
