package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func fixedRand(v float64) func() float64 { return func() float64 { return v } }

func TestBackoffDoublesFromBase(t *testing.T) {
	b := NewBackoff(fixedRand(0)) // random factor pinned to RandMin = 1
	want := []time.Duration{1 * time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("Next #%d = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffCapsAtMax(t *testing.T) {
	b := NewBackoff(fixedRand(0))
	b.Base = time.Second
	b.Cap = 10 * time.Second
	b.Reset()
	var last time.Duration
	for i := 0; i < 20; i++ {
		last = b.Next()
	}
	if last != 10*time.Second {
		t.Fatalf("capped delay = %v, want 10s", last)
	}
}

func TestBackoffPaperCapIsOneHour(t *testing.T) {
	b := NewBackoff(fixedRand(0))
	for i := 0; i < 40; i++ {
		b.Next()
	}
	if got := b.Next(); got != time.Hour {
		t.Fatalf("delay after many failures = %v, want 1h (paper §4)", got)
	}
}

func TestBackoffRandomFactorRange(t *testing.T) {
	// With rand = 0.999..., factor approaches 2; delays must stay < 2x.
	b := NewBackoff(fixedRand(0.9999))
	d := b.Next()
	if d < time.Second || d >= 2*time.Second {
		t.Fatalf("first delay = %v, want in [1s, 2s)", d)
	}
}

func TestBackoffResetRestartsSequence(t *testing.T) {
	b := NewBackoff(fixedRand(0))
	b.Next()
	b.Next()
	b.Reset()
	if got := b.Next(); got != time.Second {
		t.Fatalf("after Reset, Next = %v, want 1s", got)
	}
	if b.Attempts() != 1 {
		t.Fatalf("Attempts = %d, want 1", b.Attempts())
	}
}

func TestBackoffPeekDoesNotAdvance(t *testing.T) {
	b := NewBackoff(fixedRand(0))
	if p := b.Peek(); p != time.Second {
		t.Fatalf("Peek = %v, want 1s", p)
	}
	b.Next() // 1s
	if p := b.Peek(); p != 2*time.Second {
		t.Fatalf("Peek after one failure = %v, want 2s", p)
	}
	if got := b.Next(); got != 2*time.Second {
		t.Fatalf("Next = %v, want 2s", got)
	}
}

func TestBackoffOverflowGuard(t *testing.T) {
	b := NewBackoff(fixedRand(0))
	b.Base = time.Duration(1) << 62
	b.Cap = time.Hour
	b.Reset()
	b.Next()
	if got := b.Next(); got != time.Hour {
		t.Fatalf("overflowing delay = %v, want clamped to 1h", got)
	}
}

func TestBackoffUnrandomizedWhenBoundsEqual(t *testing.T) {
	b := NewBackoff(fixedRand(0.5))
	b.RandMin, b.RandMax = 1, 1
	b.Reset()
	if got := b.Next(); got != time.Second {
		t.Fatalf("unrandomized Next = %v, want exactly 1s", got)
	}
}

// Property: every delay is within [cur, 2*cur) of the deterministic
// doubled-and-capped schedule, for arbitrary random streams.
func TestQuickBackoffEnvelope(t *testing.T) {
	f := func(vals []float64) bool {
		i := 0
		rnd := func() float64 {
			if len(vals) == 0 {
				return 0.5
			}
			v := vals[i%len(vals)]
			i++
			v = math.Abs(math.Mod(v, 1)) // frac in [0,1)
			if math.IsNaN(v) {
				v = 0.5
			}
			return v
		}
		b := NewBackoff(rnd)
		ideal := time.Duration(0)
		for n := 0; n < 30; n++ {
			if ideal == 0 {
				ideal = b.Base
			} else {
				ideal *= 2
				if ideal > b.Cap || ideal <= 0 {
					ideal = b.Cap
				}
			}
			d := b.Next()
			if d < ideal || d >= 2*ideal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the deterministic schedule is monotonically non-decreasing.
func TestQuickBackoffMonotonic(t *testing.T) {
	f := func(baseMs uint16, factorCenti uint8) bool {
		b := &Backoff{
			Base:    time.Duration(baseMs%5000+1) * time.Millisecond,
			Cap:     time.Hour,
			Factor:  1.0 + float64(factorCenti%200)/100.0,
			RandMin: 1, RandMax: 1,
		}
		b.Reset()
		prev := time.Duration(0)
		for n := 0; n < 25; n++ {
			d := b.Next()
			if d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
