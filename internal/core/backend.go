package core

import (
	"context"
	"time"

	"repro/internal/trace"
)

// Epoch is the virtual time origin shared by every backend: all virtual
// timestamps are offsets from this instant. The particular date is
// arbitrary (it is the month HPDC 12 took place) but fixed so traces are
// stable across runs and directly comparable between backends.
var Epoch = time.Date(2003, time.June, 22, 0, 0, 0, 0, time.UTC)

// Backend is the engine-level runtime behind a scenario: virtual time,
// process creation, timers, contexts, and shared resources. Two
// implementations exist — the deterministic discrete-event engine
// (internal/sim, via Engine.RT) and the wall-clock backend
// (internal/live) that runs the same scenarios on real goroutines under
// compressed time. Substrate code (condor, fsbuffer, replica, lease,
// chaos) is written against this interface so the paper's experiments
// run unmodified on either.
//
// Unless a method documents otherwise, Backend methods must be called
// either before Run starts, from inside a spawned process, or from a
// timer callback — the same token discipline the simulator enforces;
// the live backend substitutes a global mutex for the token.
type Backend interface {
	// Now reports the current virtual time (Epoch + Elapsed).
	Now() time.Time
	// Elapsed reports virtual time since the start of the run.
	Elapsed() time.Duration
	// Events reports how many scheduling steps the backend has executed.
	Events() int64
	// Rand returns a uniform value in [0,1) from the backend's seeded
	// source.
	Rand() float64
	// Context returns the root context for the run.
	Context() context.Context
	// Spawn creates a new process executing fn and schedules it to run.
	Spawn(name string, fn func(p Proc))
	// Schedule arranges for fn to run at virtual time now+d, returning a
	// handle that can cancel the callback before it fires.
	Schedule(d time.Duration, fn func()) Timer
	// WithCancel derives an explicitly cancelable child context.
	WithCancel(parent context.Context) (context.Context, context.CancelFunc)
	// WithTimeout derives a child context canceled after d of virtual
	// time.
	WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc)
	// NewResource returns a FIFO counting semaphore with the given
	// capacity, arbitrated by this backend.
	NewResource(name string, capacity int) Resource
	// Run executes the scenario until completion: quiescence for the
	// simulator, all processes returned for the live backend.
	Run() error
}

// Proc is one process under a Backend: the per-client Runtime plus the
// identity, parking, and tracing hooks the substrates use. *sim.Proc
// and *live.Proc both satisfy it.
type Proc interface {
	Runtime
	// Name returns the name given at Spawn time.
	Name() string
	// Elapsed reports virtual time since the start of the run.
	Elapsed() time.Duration
	// Yield gives other runnable processes a chance to run.
	Yield()
	// SleepFor pauses for d of virtual time without a context.
	SleepFor(d time.Duration)
	// Hang parks the process until ctx is canceled, then returns the
	// cancellation cause.
	Hang(ctx context.Context) error
	// Schedule arranges fn to run at virtual time now+d on the process's
	// backend.
	Schedule(d time.Duration, fn func()) Timer
	// SetTracer attaches a per-client trace handle (nil disables).
	SetTracer(c *trace.Client)
	// Tracer returns the process's trace handle; nil means tracing is
	// off (and is itself safe to emit on).
	Tracer() *trace.Client
}

// Timer is a cancelable handle to a callback scheduled with
// Backend.Schedule. Cancel must be called under the backend's token
// (or lock); canceling an already-fired timer is a no-op.
type Timer interface {
	Cancel()
}

// Resource is a FIFO counting semaphore: the carrier-sense observable
// behind the disciplines. It models serially-shared services such as a
// single-threaded data server (capacity 1) or a bounded table of file
// descriptors (capacity N).
type Resource interface {
	// Name returns the resource's diagnostic name.
	Name() string
	// Capacity returns the total number of units.
	Capacity() int
	// InUse returns the number of units currently held.
	InUse() int
	// Available returns the number of free units.
	Available() int
	// QueueLen returns the number of processes waiting to acquire.
	QueueLen() int
	// SetCapacity adjusts capacity at runtime; shrinking below InUse is
	// allowed (units drain as they are released).
	SetCapacity(n int)
	// TryAcquire takes one unit without waiting, reporting success.
	TryAcquire() bool
	// Acquire takes one unit, parking the process in FIFO order until
	// one is free or ctx is canceled (returning the cancellation cause).
	Acquire(p Proc, ctx context.Context) error
	// Release returns one unit and grants it to the oldest live waiter.
	Release()
}
