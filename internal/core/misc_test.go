package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisciplineStrings(t *testing.T) {
	cases := map[Discipline]string{Fixed: "Fixed", Aloha: "Aloha", Ethernet: "Ethernet", Discipline(9): "unknown"}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestParseDiscipline(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Discipline
		ok   bool
	}{
		{"Fixed", Fixed, true}, {"fixed", Fixed, true},
		{"Aloha", Aloha, true}, {"aloha", Aloha, true},
		{"Ethernet", Ethernet, true}, {"ethernet", Ethernet, true},
		{"token-ring", 0, false}, {"", 0, false},
	} {
		got, ok := ParseDiscipline(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseDiscipline(%q) = %v,%v", c.in, got, ok)
		}
	}
}

func TestEventStrings(t *testing.T) {
	want := map[Event]string{
		EvAttempt: "attempt", EvSuccess: "success", EvFailure: "failure",
		EvCollision: "collision", EvDefer: "defer", EvBackoff: "backoff",
		EvExhausted: "exhausted", Event(42): "unknown",
	}
	for ev, s := range want {
		if ev.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(ev), ev.String(), s)
		}
	}
}

func TestErrorTextsAndUnwrapping(t *testing.T) {
	// Collision with and without a cause.
	bare := Collision("disk", nil)
	if !IsCollision(bare) || !strings.Contains(bare.Error(), "disk") {
		t.Fatalf("bare = %v", bare)
	}
	caused := Collision("disk", errors.New("ENOSPC"))
	if !IsCollision(caused) || !strings.Contains(caused.Error(), "ENOSPC") {
		t.Fatalf("caused = %v", caused)
	}
	// Deferred.
	d := Deferred("fds")
	if !IsDeferred(d) || IsCollision(d) {
		t.Fatalf("d = %v", d)
	}
	// ExhaustedError with and without a last error.
	ex := &ExhaustedError{Attempts: 3, Elapsed: time.Minute, Last: ErrFailure}
	if !strings.Contains(ex.Error(), "3 attempts") || !errors.Is(ex, ErrFailure) {
		t.Fatalf("ex = %v", ex)
	}
	exNil := &ExhaustedError{Attempts: 1, Elapsed: time.Second}
	if !strings.Contains(exNil.Error(), "exhausted") {
		t.Fatalf("exNil = %v", exNil)
	}
	// AllFailedError unwraps to its branches.
	all := &AllFailedError{Errs: []error{ErrFailure, Collision("x", nil)}}
	if !strings.Contains(all.Error(), "2 alternatives") {
		t.Fatalf("all = %v", all)
	}
	if !errors.Is(all, ErrFailure) || !errors.Is(all, ErrCollision) {
		t.Fatal("AllFailedError does not unwrap to branch errors")
	}
	// BranchError counts failures and unwraps.
	be := &BranchError{Errs: []error{nil, ErrFailure, nil}}
	if !strings.Contains(be.Error(), "1 of 3") || !errors.Is(be, ErrFailure) {
		t.Fatalf("be = %v", be)
	}
}

func TestObserverFuncAdapter(t *testing.T) {
	var got Event
	f := ObserverFunc(func(ev Event, at time.Time, detail error) { got = ev })
	f.Observe(EvSuccess, time.Now(), nil)
	if got != EvSuccess {
		t.Fatalf("got = %v", got)
	}
}

func TestRealWithCancelAndTimeout(t *testing.T) {
	rt := NewReal(0) // exercise the time-seeded path
	ctx, cancel := rt.WithCancel(context.Background())
	cancel()
	if ctx.Err() == nil {
		t.Fatal("canceled ctx live")
	}
	tctx, tcancel := rt.WithTimeout(context.Background(), time.Millisecond)
	defer tcancel()
	<-tctx.Done()
	if !errors.Is(tctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("err = %v", tctx.Err())
	}
}

func TestRealSleepZeroAndNegative(t *testing.T) {
	rt := NewReal(1)
	if err := rt.Sleep(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.Sleep(context.Background(), -time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestBackoffPeekAtCap(t *testing.T) {
	b := NewBackoff(func() float64 { return 0 })
	b.Base = 30 * time.Minute
	b.Cap = time.Hour
	b.Reset()
	b.Next() // 30m
	if p := b.Peek(); p != time.Hour {
		t.Fatalf("Peek = %v, want capped 1h", p)
	}
	b.Next()
	if p := b.Peek(); p != time.Hour {
		t.Fatalf("Peek at cap = %v", p)
	}
}

func TestBackoffRandMinScaling(t *testing.T) {
	// RandMin == RandMax != 1 applies a fixed multiplier.
	b := &Backoff{Base: time.Second, Cap: time.Hour, Factor: 2, RandMin: 3, RandMax: 3}
	b.Reset()
	if got := b.Next(); got != 3*time.Second {
		t.Fatalf("Next = %v, want 3s", got)
	}
}

func TestThresholdSenseBoundary(t *testing.T) {
	free := 1000
	sense := ThresholdSense("fds", func() int { return free }, 1000)
	if err := sense(context.Background()); err != nil {
		t.Fatalf("at threshold: %v (>= threshold must pass)", err)
	}
	free = 999
	if err := sense(context.Background()); !IsDeferred(err) {
		t.Fatalf("below threshold: %v", err)
	}
}

func TestProbeSenseSuccess(t *testing.T) {
	rt := NewReal(1)
	sense := ProbeSense(rt, time.Second, func(ctx context.Context) error { return nil })
	if err := sense(context.Background()); err != nil {
		t.Fatalf("err = %v", err)
	}
}
