package core

import "time"

// Backoff generates the paper's retry delays: "The base delay is one
// second, doubled after every failure, up to a maximum of one hour. Each
// delay interval is multiplied by a random factor between one and two in
// order to distribute the expected values." (§4)
//
// The zero value is not ready for use; construct with NewBackoff or fill
// in the fields and call Reset.
type Backoff struct {
	// Base is the pre-randomization delay after the first failure.
	Base time.Duration
	// Cap bounds the pre-randomization delay. Zero means no cap.
	Cap time.Duration
	// Factor is the per-failure multiplier (2 in the paper).
	Factor float64
	// RandMin and RandMax bound the uniform random multiplier applied to
	// every delay. The paper uses [1,2). Setting both to 1 disables
	// randomization — useful only to demonstrate cascading collisions.
	RandMin, RandMax float64
	// Rand supplies uniform values in [0,1); typically Runtime.Rand.
	Rand func() float64

	cur      time.Duration
	attempts int
}

// Default backoff parameters from §4 of the paper.
const (
	DefaultBase   = time.Second
	DefaultCap    = time.Hour
	DefaultFactor = 2.0
)

// NewBackoff returns a Backoff with the paper's defaults, drawing
// randomness from rnd.
func NewBackoff(rnd func() float64) *Backoff {
	b := &Backoff{
		Base:    DefaultBase,
		Cap:     DefaultCap,
		Factor:  DefaultFactor,
		RandMin: 1.0,
		RandMax: 2.0,
		Rand:    rnd,
	}
	b.Reset()
	return b
}

// Reset restores the delay sequence to the beginning, as after a success.
func (b *Backoff) Reset() {
	b.cur = 0
	b.attempts = 0
}

// Attempts reports how many delays have been issued since the last Reset.
func (b *Backoff) Attempts() int { return b.attempts }

// Next returns the delay to sleep before the next retry and advances the
// sequence. The first call returns about Base; each subsequent call
// grows by Factor up to Cap, with the random spread applied last.
func (b *Backoff) Next() time.Duration {
	b.attempts++
	if b.cur == 0 {
		b.cur = b.Base
	} else {
		b.cur = time.Duration(float64(b.cur) * b.Factor)
		if b.cur <= 0 { // overflow guard
			b.cur = b.Cap
		}
	}
	if b.Cap > 0 && b.cur > b.Cap {
		b.cur = b.Cap
	}
	d := b.cur
	if b.RandMax > b.RandMin && b.Rand != nil {
		f := b.RandMin + (b.RandMax-b.RandMin)*b.Rand()
		d = time.Duration(float64(d) * f)
	} else if b.RandMin > 0 && b.RandMin != 1 {
		d = time.Duration(float64(d) * b.RandMin)
	}
	return d
}

// Peek reports the pre-randomization delay the next call to Next will
// scale, without advancing the sequence.
func (b *Backoff) Peek() time.Duration {
	if b.cur == 0 {
		return b.Base
	}
	n := time.Duration(float64(b.cur) * b.Factor)
	if n <= 0 {
		n = b.Cap
	}
	if b.Cap > 0 && n > b.Cap {
		n = b.Cap
	}
	return n
}
