package core

import (
	"context"
	"time"

	"repro/internal/trace"
)

// Discipline selects one of the client behaviours evaluated in §5 of
// the paper, plus the reservation rival the paper argues against.
type Discipline int

// The three disciplines compared throughout the paper's evaluation,
// plus Reservation, the advance-booking alternative.
const (
	// Fixed "aggressively repeats its assigned work without delay and
	// without regard to any sort of failure."
	Fixed Discipline = iota
	// Aloha "uses the ordinary ftsh try structure to repeat a work unit
	// with an exponential backoff and random factor in case of failure."
	Aloha
	// Ethernet "uses the same structure, but additionally adds a small
	// piece of code to perform carrier sense before accessing a
	// resource."
	Ethernet
	// Reservation books a capacity window in advance instead of sensing
	// and backing off: admission is granted or refused outright by an
	// interval book (lease.Book), and a granted window is enforced
	// server-side by the lease watchdog. This is the up-front admission
	// model of bandwidth-reservation frameworks, added here as the rival
	// the paper never tests.
	Reservation
)

// String names the discipline as in the paper's figure legends.
func (d Discipline) String() string {
	switch d {
	case Fixed:
		return "Fixed"
	case Aloha:
		return "Aloha"
	case Ethernet:
		return "Ethernet"
	case Reservation:
		return "Reservation"
	default:
		return "unknown"
	}
}

// Disciplines lists the paper's three disciplines in figure order. The
// seed figures (Fig 1-7) compare exactly these; Reservation joins only
// the figures that study it (FigRes), so the seed goldens stay
// byte-identical.
var Disciplines = []Discipline{Ethernet, Aloha, Fixed}

// AllDisciplines lists all four disciplines in figure order — the
// matrix the chaos sweeps and the differential harness cover.
var AllDisciplines = []Discipline{Ethernet, Aloha, Fixed, Reservation}

// ParseDiscipline converts a legend name to a Discipline.
func ParseDiscipline(s string) (Discipline, bool) {
	switch s {
	case "Fixed", "fixed":
		return Fixed, true
	case "Aloha", "aloha":
		return Aloha, true
	case "Ethernet", "ethernet":
		return Ethernet, true
	case "Reservation", "reservation", "res":
		return Reservation, true
	}
	return 0, false
}

// Client binds a discipline to an operation's retry policy. It is the
// library-level equivalent of the small ftsh scripts in §5: the same
// work unit wrapped in fixed, Aloha, or Ethernet behaviour.
type Client struct {
	// Rt supplies time, randomness, and concurrency.
	Rt Runtime
	// Discipline selects Fixed, Aloha, or Ethernet behaviour.
	Discipline Discipline
	// Limit bounds each Do: the ftsh `try for 5 minutes` around the
	// work unit.
	Limit Limit
	// Sense is the carrier-sense probe used only by the Ethernet
	// discipline. It must be cheap and must not consume the resource.
	// Return nil for "carrier idle"; any error defers the attempt.
	Sense func(ctx context.Context) error
	// Backoff optionally overrides the paper-default backoff (Aloha and
	// Ethernet only).
	Backoff *Backoff
	// Budget optionally rate-limits retries with a token bucket (see
	// RetryBudget): partitions then degrade into budget-paced waiting
	// instead of retry storms. Shared template, cloned per Do.
	Budget *RetryBudget
	// Observer receives discipline events.
	Observer Observer
	// Trace, when non-nil, records the client's attempt/backoff/sense
	// timeline; nil disables tracing at zero cost.
	Trace *trace.Client
	// Site labels the contended resource in trace events.
	Site string
	// Span, when non-empty, wraps each Do in a named trace span.
	Span string
}

// Do runs op under the client's discipline until it succeeds or the
// limit is exhausted.
func (c *Client) Do(ctx context.Context, op Op) error {
	cfg := TryConfig{Observer: c.Observer, Backoff: c.Backoff, Budget: c.Budget, Trace: c.Trace, Site: c.Site, Span: c.Span}
	switch c.Discipline {
	case Fixed:
		cfg.NoBackoff = true
	case Aloha:
		// plain try: backoff, no sense
	case Ethernet:
		cfg.Sense = c.Sense
	case Reservation:
		// Backoff like Aloha, but no carrier sense: admission lives in
		// the op itself, which asks the substrate's reservation book for
		// a window and surfaces a typed RejectedError when the book is
		// full. Try classifies that rejection separately from busy.
	}
	return Try(ctx, c.Rt, c.Limit, cfg, op)
}

// ThresholdSense builds a carrier-sense probe from a free-capacity
// observable: the probe defers while free() < threshold. This is the
// library form of the paper's
//
//	cut -f2 /proc/sys/fs/file-nr -> n
//	if ${n} .lt. 1000
//	   failure
//	end
//
// fragment used by the Ethernet job submitter.
func ThresholdSense(name string, free func() int, threshold int) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		if free() < threshold {
			return Deferred(name)
		}
		return nil
	}
}

// ProbeSense builds a carrier-sense probe that performs a cheap trial
// interaction bounded by timeout — the 1-byte "flag file" fetch used by
// the Ethernet file reader in §5. The probe consumes its own small slice
// of the resource, so it is suited to services where availability cannot
// be observed passively.
func ProbeSense(rt Runtime, timeout time.Duration, probe Op) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		pctx, cancel := rt.WithTimeout(ctx, timeout)
		defer cancel()
		if err := probe(pctx); err != nil {
			return Deferred("probe")
		}
		return nil
	}
}
