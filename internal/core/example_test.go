package core_test

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// ExampleTry shows the paper's central construct — `try for 1 hour` —
// driven in virtual time: a flaky operation is retried with randomized
// exponential backoff until it succeeds.
func ExampleTry() {
	e := sim.New(1)
	e.Spawn("client", func(p *sim.Proc) {
		attempts := 0
		err := core.Try(e.Context(), p, core.For(time.Hour), core.TryConfig{}, func(ctx context.Context) error {
			attempts++
			if attempts < 3 {
				return core.ErrFailure
			}
			return nil
		})
		fmt.Printf("err=%v attempts=%d\n", err, attempts)
	})
	if err := e.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// err=<nil> attempts=3
}

// ExampleForany mirrors the ftsh fragment
//
//	forany server in xxx yyy zzz
//	  wget http://${server}/file
//	end
func ExampleForany() {
	e := sim.New(1)
	e.Spawn("client", func(p *sim.Proc) {
		winner, err := core.Forany(e.Context(), p,
			[]string{"xxx", "yyy", "zzz"}, false,
			func(ctx context.Context, server string) error {
				if server == "yyy" {
					return nil
				}
				return core.ErrFailure
			})
		fmt.Printf("got file from %s (err=%v)\n", winner, err)
	})
	if err := e.Run(); err != nil {
		fmt.Println(err)
	}
	// Output:
	// got file from yyy (err=<nil>)
}

// ExampleBackoff prints the §4 delay schedule with randomization pinned
// to its lower bound: one second, doubled per failure.
func ExampleBackoff() {
	b := core.NewBackoff(func() float64 { return 0 })
	for i := 0; i < 5; i++ {
		fmt.Print(b.Next(), " ")
	}
	fmt.Println()
	// Output:
	// 1s 2s 4s 8s 16s
}

// ExampleClient contrasts the three disciplines on one contended
// operation: the resource frees up after 30 seconds.
func ExampleClient() {
	for _, d := range []core.Discipline{core.Fixed, core.Aloha, core.Ethernet} {
		e := sim.New(3)
		free := false
		e.Schedule(30*time.Second, func() { free = true })
		wasted := 0
		e.Spawn("client", func(p *sim.Proc) {
			c := &core.Client{
				Rt:         p,
				Discipline: d,
				Limit:      core.For(5 * time.Minute),
				Sense: func(ctx context.Context) error {
					if !free {
						return core.Deferred("resource")
					}
					return nil
				},
			}
			_ = c.Do(e.Context(), func(ctx context.Context) error {
				// Each attempt consumes one second of the resource.
				if err := p.Sleep(ctx, time.Second); err != nil {
					return err
				}
				if !free {
					wasted++
					return core.Collision("resource", nil)
				}
				return nil
			})
		})
		if err := e.Run(); err != nil {
			fmt.Println(err)
		}
		fmt.Printf("%-8s wasted %d attempt(s) before success\n", d, wasted)
	}
	// Output:
	// Fixed    wasted 29 attempt(s) before success
	// Aloha    wasted 4 attempt(s) before success
	// Ethernet wasted 0 attempt(s) before success
}
