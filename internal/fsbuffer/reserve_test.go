package fsbuffer

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestReserveGrantAndEnd(t *testing.T) {
	e := sim.New(1)
	b := New(e.RT(), Config{Capacity: 10 * MB})
	a := NewAllocator(e.RT(), b, 0)
	e.Spawn("c", func(p *sim.Proc) {
		res, err := a.Reserve(p, e.Context(), 4*MB)
		if err != nil {
			t.Errorf("reserve: %v", err)
			return
		}
		if a.Reserved() != 4*MB {
			t.Errorf("Reserved = %d", a.Reserved())
		}
		res.End()
		res.End() // idempotent
		if a.Reserved() != 0 {
			t.Errorf("Reserved after End = %d", a.Reserved())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Grants != 1 {
		t.Fatalf("Grants = %d", a.Grants)
	}
}

func TestReserveNeverOvercommits(t *testing.T) {
	e := sim.New(1)
	b := New(e.RT(), Config{Capacity: 10 * MB})
	a := NewAllocator(e.RT(), b, 0)
	e.Spawn("c", func(p *sim.Proc) {
		r1, err := a.Reserve(p, e.Context(), 6*MB)
		if err != nil {
			t.Errorf("r1: %v", err)
			return
		}
		if _, err := a.Reserve(p, e.Context(), 6*MB); !errors.Is(err, ErrReservationDenied) {
			t.Errorf("overcommit allowed: %v", err)
		}
		r1.End()
		if _, err := a.Reserve(p, e.Context(), 6*MB); err != nil {
			t.Errorf("after release: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Denials != 1 {
		t.Fatalf("Denials = %d", a.Denials)
	}
}

func TestReserveAccountsForBufferContents(t *testing.T) {
	e := sim.New(1)
	b := New(e.RT(), Config{Capacity: 10 * MB})
	a := NewAllocator(e.RT(), b, 0)
	e.Spawn("c", func(p *sim.Proc) {
		if err := b.Write(p, e.Context(), "x", 7*MB); err != nil {
			t.Errorf("write: %v", err)
		}
		if _, err := a.Reserve(p, e.Context(), 4*MB); !errors.Is(err, ErrReservationDenied) {
			t.Errorf("reservation ignored live contents: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReservingProducersNeverCollide(t *testing.T) {
	e := sim.New(9)
	b := New(e.RT(), Config{})
	a := NewAllocator(e.RT(), b, 0)
	ctx, cancel := e.WithTimeout(e.Context(), 2*time.Minute)
	defer cancel()
	e.Spawn("consumer", func(p *sim.Proc) { b.Consumer(p, ctx) })
	producers := make([]*ReservingProducer, 20)
	for i := range producers {
		producers[i] = &ReservingProducer{}
		rp := producers[i]
		i := i
		e.Spawn("producer", func(p *sim.Proc) {
			rp.Loop(p, ctx, a, i, DefaultProducerConfig(core.Aloha))
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Collisions != 0 {
		t.Fatalf("Collisions = %d: reservation must prevent ENOSPC", b.Collisions)
	}
	var wrote int64
	for _, rp := range producers {
		wrote += rp.Wrote
	}
	if wrote == 0 {
		t.Fatal("nothing written")
	}
	if a.Reserved() != 0 {
		t.Fatalf("reservations leaked: %d", a.Reserved())
	}
}

func TestReservationThroughputTradeoff(t *testing.T) {
	// The paper's §5 argument, quantified: "the actual process of
	// allocation itself may be subject to contention." Under space
	// pressure most reservation requests are denied, but a denial still
	// costs a full allocator round trip, so denial storms congest the
	// allocation service and grants arrive long after space has freed —
	// the drain starves in the gaps. The Ethernet producer observes
	// free space passively, at zero service cost, and keeps the buffer
	// fed.
	window := 5 * time.Minute
	n := 25
	cfg := Config{Capacity: 6 * MB}          // space-constrained
	const grantTime = 200 * time.Millisecond // 2003-era WAN SRM round trip

	runReserving := func() int64 {
		e := sim.New(4)
		b := New(e.RT(), cfg)
		a := NewAllocator(e.RT(), b, grantTime)
		ctx, cancel := e.WithTimeout(e.Context(), window)
		defer cancel()
		e.Spawn("consumer", func(p *sim.Proc) { b.Consumer(p, ctx) })
		for i := 0; i < n; i++ {
			i := i
			e.Spawn("producer", func(p *sim.Proc) {
				var rp ReservingProducer
				rp.Loop(p, ctx, a, i, DefaultProducerConfig(core.Aloha))
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return b.Consumed
	}
	runEthernet := func() int64 {
		e := sim.New(4)
		b := New(e.RT(), cfg)
		ctx, cancel := e.WithTimeout(e.Context(), window)
		defer cancel()
		e.Spawn("consumer", func(p *sim.Proc) { b.Consumer(p, ctx) })
		for i := 0; i < n; i++ {
			i := i
			e.Spawn("producer", func(p *sim.Proc) {
				var pr Producer
				pr.Loop(p, ctx, b, i, DefaultProducerConfig(core.Ethernet))
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return b.Consumed
	}

	reserving := runReserving()
	ethernet := runEthernet()
	if reserving == 0 || ethernet == 0 {
		t.Fatalf("reserving=%d ethernet=%d", reserving, ethernet)
	}
	if ethernet <= reserving {
		t.Fatalf("ethernet %d not above reserving %d: the worst-case-reservation penalty vanished", ethernet, reserving)
	}
}
