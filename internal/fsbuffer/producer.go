package fsbuffer

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// ProducerConfig shapes one producer client: "a continuous loop,
// producing an output file of random size between 0-1 MB every second"
// (§5), with the write wrapped in a fixed, Aloha, or Ethernet retry.
type ProducerConfig struct {
	// Discipline selects Fixed, Aloha, or Ethernet behaviour.
	Discipline core.Discipline
	// MaxFileSize bounds the uniform random output size (1 MB paper).
	MaxFileSize int64
	// Interval is the production cadence (1 s in the paper).
	Interval time.Duration
	// TryLimit bounds the retries for a single file.
	TryLimit time.Duration
	// Observer receives discipline events.
	Observer core.Observer
	// Trace, when non-nil, records this producer's attempt timeline.
	Trace *trace.Client
}

// DefaultProducerConfig mirrors the paper.
func DefaultProducerConfig(d core.Discipline) ProducerConfig {
	return ProducerConfig{
		Discipline:  d,
		MaxFileSize: 1 * MB,
		Interval:    time.Second,
		TryLimit:    2 * time.Minute,
	}
}

// Producer is one client's accounting.
type Producer struct {
	// Wrote counts files successfully completed by this producer.
	Wrote int64
	// Dropped counts files abandoned after the try limit.
	Dropped int64
}

// Sense is the Ethernet producer's carrier sense: defer unless the
// estimated free space (free minus expected growth of incomplete files)
// leaves room for a typical output file.
func Sense(b *Buffer, expect int64) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		st := b.Stats()
		need := st.AvgDoneSize
		if need == 0 {
			need = expect / 2 // no completed files yet: assume the mean
		}
		if st.EstimatedFree < need {
			return core.Deferred("disk")
		}
		return nil
	}
}

// Loop produces files until ctx is canceled, applying the configured
// discipline to each file's write.
func (pr *Producer) Loop(p core.Proc, ctx context.Context, b *Buffer, id int, cfg ProducerConfig) {
	p.SetTracer(cfg.Trace)
	client := &core.Client{
		Rt:         p,
		Discipline: cfg.Discipline,
		Limit:      core.For(cfg.TryLimit),
		Sense:      Sense(b, cfg.MaxFileSize),
		Observer:   cfg.Observer,
		Trace:      cfg.Trace,
		Site:       "disk",
		Span:       "write",
	}
	seq := 0
	for ctx.Err() == nil {
		size := int64(p.Rand() * float64(cfg.MaxFileSize))
		if size < 1 {
			size = 1
		}
		seq++
		name := fmt.Sprintf("p%d-%d", id, seq)
		err := client.Do(ctx, func(ctx context.Context) error {
			// A failed attempt deletes its partial file (§5), so the
			// name is free again for the retry.
			return b.Write(p, ctx, name, size)
		})
		switch {
		case err == nil:
			pr.Wrote++
		case ctx.Err() != nil:
			return
		default:
			pr.Dropped++
		}
		if cfg.Interval > 0 {
			if p.Sleep(ctx, cfg.Interval) != nil {
				return
			}
		}
	}
}
