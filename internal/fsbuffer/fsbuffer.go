// Package fsbuffer simulates the producer/consumer scenario of §5: jobs
// in a remote cluster write output files of unknown size into a shared
// 120 MB filesystem buffer while a consumer drains completed files to an
// archive at 1 MB/s (in the manner of Kangaroo).
//
// The contended resource is disk space, and it cannot be reserved: a
// writer discovers overcommitment only when a write fails mid-file
// (ENOSPC), losing its partial output — a collision. The Ethernet
// producer estimates effective free space by assuming every incomplete
// file will grow to the average size of the completed ones (§5), and
// defers when the estimate leaves no room.
package fsbuffer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
)

// B, KB, MB express sizes in bytes.
const (
	B  int64 = 1
	KB int64 = 1 << 10
	MB int64 = 1 << 20
)

// ErrNoSpace is the ENOSPC collision discovered mid-write.
var ErrNoSpace = errors.New("no space left on device")

// InjectWrite is the injection site covering a producer's write attempt
// (see core.Injector): an injected error is an I/O failure that loses
// the partial file, an injected delay is file-server latency.
const InjectWrite = "fsbuffer/write"

// Config parameterizes the buffer scenario.
type Config struct {
	// Capacity is the shared buffer size (120 MB in the paper).
	Capacity int64
	// WriteChunk is the granularity at which producers commit bytes; a
	// write fails when a chunk does not fit.
	WriteChunk int64
	// WriteRate is the file server's service bandwidth, bytes/second.
	// All I/O — producer writes, consumer reads, and failed attempts —
	// passes through one server queue, so hammering producers steal
	// service capacity from the consumer. This shared, unreservable
	// capacity is what the Fixed discipline destroys.
	WriteRate int64
	// DrainRate is the consumer's uplink to the archive (1 MB/s in the
	// paper); the drain also pays WriteRate-speed reads on the server.
	DrainRate int64
	// MetaTime is the server time consumed by a failed write attempt
	// (open, the ENOSPC write, unlink of the partial).
	MetaTime time.Duration
	// ScanInterval is how often the consumer looks for complete files.
	ScanInterval time.Duration
	// FailTime is the cost of a failed write attempt (the doomed open,
	// the ENOSPC write, unlinking the partial). Failures are never
	// free; this also bounds the spin rate of Fixed clients.
	FailTime time.Duration
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Capacity:     120 * MB,
		WriteChunk:   64 * KB,
		WriteRate:    3 * MB,
		DrainRate:    1 * MB,
		MetaTime:     5 * time.Millisecond,
		ScanInterval: 250 * time.Millisecond,
		FailTime:     20 * time.Millisecond,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Capacity <= 0 {
		c.Capacity = d.Capacity
	}
	if c.WriteChunk <= 0 {
		c.WriteChunk = d.WriteChunk
	}
	if c.WriteRate <= 0 {
		c.WriteRate = d.WriteRate
	}
	if c.DrainRate <= 0 {
		c.DrainRate = d.DrainRate
	}
	if c.MetaTime <= 0 {
		c.MetaTime = d.MetaTime
	}
	if c.ScanInterval <= 0 {
		c.ScanInterval = d.ScanInterval
	}
	if c.FailTime <= 0 {
		c.FailTime = d.FailTime
	}
}

// file is one buffered output file.
type file struct {
	name    string
	size    int64 // bytes written so far
	done    bool  // renamed to .done
	claimed bool  // taken by the consumer
}

// Buffer is the shared filesystem buffer.
type Buffer struct {
	eng   core.Backend
	cfg   Config
	inj   core.Injector
	files map[string]*file
	used  int64
	// server is the file server's single service queue; every I/O
	// operation passes through it in FIFO order.
	server core.Resource

	// Collisions counts ENOSPC write failures; Completed counts files
	// renamed .done; Consumed counts files drained by the consumer.
	Collisions int64
	Completed  int64
	Consumed   int64
	// BytesConsumed totals drained bytes.
	BytesConsumed int64
}

// New returns an empty buffer on engine e.
func New(e core.Backend, cfg Config) *Buffer {
	cfg.fillDefaults()
	return &Buffer{
		eng:    e,
		cfg:    cfg,
		files:  make(map[string]*file),
		server: e.NewResource("fileserver", 1),
	}
}

// serverOp runs one I/O operation of duration d through the server's
// FIFO queue.
func (b *Buffer) serverOp(p core.Proc, ctx context.Context, d time.Duration) error {
	if err := b.server.Acquire(p, ctx); err != nil {
		return err
	}
	tr := p.Tracer()
	tr.Acquire("fileserver", 1)
	defer func() {
		b.server.Release()
		tr.Release("fileserver", 1)
	}()
	return p.Sleep(ctx, d)
}

// Config returns the effective configuration.
func (b *Buffer) Config() Config { return b.cfg }

// SetInjector installs a fault injector consulted at the buffer's
// failure sites. A nil injector (the default) disables injection.
func (b *Buffer) SetInjector(inj core.Injector) { b.inj = inj }

// SetCapacity retunes the buffer size at runtime (a disk partially
// reclaimed by another tenant, or a fault plan squeezing the resource).
// Shrinking below Used is allowed: Free goes negative and every write
// collides until the consumer drains, like a real filled filesystem.
func (b *Buffer) SetCapacity(n int64) {
	if n < 0 {
		n = 0
	}
	b.cfg.Capacity = n
}

// Used reports bytes currently in the buffer, complete and partial.
func (b *Buffer) Used() int64 { return b.used }

// Capacity reports the buffer's current total size.
func (b *Buffer) Capacity() int64 { return b.cfg.Capacity }

// Free reports raw free space, the `df` observable.
func (b *Buffer) Free() int64 { return b.cfg.Capacity - b.used }

// Stats summarizes buffer contents for carrier sensing.
type Stats struct {
	Free          int64
	DoneCount     int
	DoneBytes     int64
	PartialCount  int
	PartialBytes  int64
	AvgDoneSize   int64 // 0 when no file has completed yet
	EstimatedFree int64 // Free minus expected growth of partial files
}

// Stats computes the Ethernet producer's observables in one pass.
func (b *Buffer) Stats() Stats {
	var st Stats
	st.Free = b.Free()
	for _, f := range b.files {
		if f.done {
			st.DoneCount++
			st.DoneBytes += f.size
		} else {
			st.PartialCount++
			st.PartialBytes += f.size
		}
	}
	if st.DoneCount > 0 {
		st.AvgDoneSize = st.DoneBytes / int64(st.DoneCount)
	}
	// §5: "assumes the incomplete items in the buffer will be the same
	// size as the average of the complete files, and subtracts that
	// from the free disk space".
	expectedGrowth := int64(0)
	for _, f := range b.files {
		if !f.done && f.size < st.AvgDoneSize {
			expectedGrowth += st.AvgDoneSize - f.size
		}
	}
	st.EstimatedFree = st.Free - expectedGrowth
	return st
}

// Write streams a file of the given size into the buffer from process
// p. It commits space chunk by chunk; if a chunk does not fit, the
// partial file is deleted and the call returns an ErrNoSpace collision.
// On success the file is atomically renamed to name.done, signaling the
// consumer (§5). Cancellation mid-write also deletes the partial file.
func (b *Buffer) Write(p core.Proc, ctx context.Context, name string, size int64) error {
	if _, exists := b.files[name]; exists {
		return fmt.Errorf("fsbuffer: file %s already exists", name)
	}
	// Chaos seam: a fault plan may slow the write or fail it outright,
	// upstream of the organic ENOSPC path below.
	if fa := core.InjectAt(b.inj, InjectWrite); !fa.Zero() {
		p.Tracer().FaultInjected(InjectWrite)
		if fa.Delay > 0 {
			if err := p.Sleep(ctx, fa.Delay); err != nil {
				return err
			}
		}
		if fa.Err != nil {
			// The doomed attempt pays the same costs as an ENOSPC loss.
			if err := b.serverOp(p, ctx, b.cfg.MetaTime); err != nil {
				return err
			}
			if err := p.Sleep(ctx, b.cfg.FailTime); err != nil {
				return err
			}
			return core.Collision("disk", fa.Err)
		}
	}
	f := &file{name: name}
	b.files[name] = f
	remaining := size
	for remaining > 0 {
		chunk := b.cfg.WriteChunk
		if chunk > remaining {
			chunk = remaining
		}
		if b.used+chunk > b.cfg.Capacity {
			b.unlink(f)
			b.Collisions++
			// The doomed attempt still consumed server time — the open,
			// the ENOSPC write, the unlink — plus client-side cleanup.
			if err := b.serverOp(p, ctx, b.cfg.MetaTime); err != nil {
				return err
			}
			if err := p.Sleep(ctx, b.cfg.FailTime); err != nil {
				return err
			}
			return core.Collision("disk", ErrNoSpace)
		}
		b.used += chunk
		f.size += chunk
		remaining -= chunk
		d := time.Duration(float64(chunk) / float64(b.cfg.WriteRate) * float64(time.Second))
		if err := b.serverOp(p, ctx, d); err != nil {
			b.unlink(f)
			return err
		}
	}
	f.done = true
	b.Completed++
	return nil
}

// unlink removes a file and returns its space.
func (b *Buffer) unlink(f *file) {
	if _, ok := b.files[f.name]; !ok {
		return
	}
	delete(b.files, f.name)
	b.used -= f.size
	if b.used < 0 {
		panic("fsbuffer: used bytes underflow")
	}
}

// takeDone claims the oldest unclaimed complete file, or nil.
func (b *Buffer) takeDone() *file {
	var names []string
	for name, f := range b.files {
		if f.done && !f.claimed {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names) // deterministic choice
	f := b.files[names[0]]
	f.claimed = true
	return f
}

// Consumer drains completed files until ctx is canceled. Each file is
// read chunk-by-chunk through the shared server queue (at WriteRate)
// and forwarded up the archive link (at DrainRate), so a server mobbed
// by failing producers also starves the drain. Run it in its own
// process: eng.Spawn("consumer", ...).
func (b *Buffer) Consumer(p core.Proc, ctx context.Context) {
	for ctx.Err() == nil {
		f := b.takeDone()
		if f == nil {
			if p.Sleep(ctx, b.cfg.ScanInterval) != nil {
				return
			}
			continue
		}
		remaining := f.size
		for remaining > 0 {
			chunk := b.cfg.WriteChunk
			if chunk > remaining {
				chunk = remaining
			}
			remaining -= chunk
			read := time.Duration(float64(chunk) / float64(b.cfg.WriteRate) * float64(time.Second))
			if b.serverOp(p, ctx, read) != nil {
				return
			}
			up := time.Duration(float64(chunk) / float64(b.cfg.DrainRate) * float64(time.Second))
			if p.Sleep(ctx, up) != nil {
				return
			}
		}
		b.unlink(f)
		b.Consumed++
		b.BytesConsumed += f.size
	}
}
