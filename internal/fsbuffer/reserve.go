package fsbuffer

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// This file implements the alternative §5 discusses and argues against:
// "a mechanism for allocating storage space independently of data
// transfer, such as that found in NeST, SRB, and SRM". A reserving
// producer asks an allocation server for space before writing, which
// eliminates ENOSPC collisions entirely — but, exactly as the paper
// observes, "it is [not] clear what allocation policy would be
// appropriate when output sizes are not known. Further, the actual
// process of allocation itself may be subject to contention."
//
// Because output size is unknown before the job runs, the reserving
// producer must ask for the worst case (MaxFileSize) and return the
// unused remainder only after the write completes. The slack between
// reserved and actual bytes idles buffer capacity, so reservation trades
// collisions for throughput — the quantitative form of the paper's
// argument. BenchmarkBaselineReservation measures the trade.

// ErrReservationDenied reports that the allocator had no space.
var ErrReservationDenied = errors.New("allocation denied: no reservable space")

// Allocator is a NeST/SRM-style space reservation service in front of a
// Buffer. Reservations are bookkeeping only; the underlying buffer is
// unchanged, so reserving and non-reserving producers can be mixed.
type Allocator struct {
	buf      *Buffer
	reserved int64
	// GrantTime models the allocation round trip; the allocation
	// service is itself a shared resource and serializes requests.
	GrantTime time.Duration
	lane      *sim.Resource

	// Grants and Denials count allocator outcomes.
	Grants, Denials int64
}

// NewAllocator wraps buf with a reservation service.
func NewAllocator(e *sim.Engine, buf *Buffer, grantTime time.Duration) *Allocator {
	if grantTime <= 0 {
		grantTime = 10 * time.Millisecond
	}
	return &Allocator{
		buf:       buf,
		GrantTime: grantTime,
		lane:      sim.NewResource(e, "allocator", 1),
	}
}

// Reserved reports bytes currently promised to clients.
func (a *Allocator) Reserved() int64 { return a.reserved }

// Reserve requests size bytes, waiting in the allocator's queue. On
// success the caller owns the reservation and must End it.
func (a *Allocator) Reserve(p *sim.Proc, ctx context.Context, size int64) (*Reservation, error) {
	if err := a.lane.Acquire(p, ctx); err != nil {
		return nil, err
	}
	defer a.lane.Release()
	if err := p.Sleep(ctx, a.GrantTime); err != nil {
		return nil, err
	}
	// Grant only space not already promised: reservations must never
	// overcommit, or they would be no better than optimistic writing.
	if a.buf.Free()-a.reserved < size {
		a.Denials++
		return nil, fmt.Errorf("%w (want %d, unreserved free %d)", ErrReservationDenied, size, a.buf.Free()-a.reserved)
	}
	a.reserved += size
	a.Grants++
	return &Reservation{alloc: a, size: size}, nil
}

// Reservation is a granted slice of future buffer space.
type Reservation struct {
	alloc *Allocator
	size  int64
	ended bool
}

// Size reports the reserved byte count.
func (r *Reservation) Size() int64 { return r.size }

// End releases the reservation (after the write completed or failed).
func (r *Reservation) End() {
	if r.ended {
		return
	}
	r.ended = true
	r.alloc.reserved -= r.size
	if r.alloc.reserved < 0 {
		panic("fsbuffer: reservation underflow")
	}
}

// ReservingProducer is the baseline client: reserve worst-case space,
// then write without fear of ENOSPC.
type ReservingProducer struct {
	// Wrote counts completed files; Denied counts files dropped because
	// the allocator had no space within the retry budget.
	Wrote, Denied int64
}

// Loop produces files until ctx is canceled. Each file first obtains a
// worst-case reservation (retrying with Aloha backoff on denial — the
// allocation service gives a clean failure signal, so carrier sense
// adds nothing), then writes under its protection.
func (rp *ReservingProducer) Loop(p *sim.Proc, ctx context.Context, a *Allocator, id int, cfg ProducerConfig) {
	seq := 0
	for ctx.Err() == nil {
		size := int64(p.Rand() * float64(cfg.MaxFileSize))
		if size < 1 {
			size = 1
		}
		seq++
		name := fmt.Sprintf("r%d-%d", id, seq)
		var res *Reservation
		err := core.Try(ctx, p, core.For(cfg.TryLimit), core.TryConfig{}, func(ctx context.Context) error {
			var rerr error
			// Output size is unknown before the job runs: reserve the
			// worst case.
			res, rerr = a.Reserve(p, ctx, cfg.MaxFileSize)
			return rerr
		})
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			rp.Denied++
		} else {
			werr := a.buf.Write(p, ctx, name, size)
			res.End()
			if werr == nil {
				rp.Wrote++
			} else if ctx.Err() != nil {
				return
			}
		}
		if cfg.Interval > 0 {
			if p.Sleep(ctx, cfg.Interval) != nil {
				return
			}
		}
	}
}
