package fsbuffer

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lease"
)

// This file implements the alternative §5 discusses and argues against:
// "a mechanism for allocating storage space independently of data
// transfer, such as that found in NeST, SRB, and SRM". A reserving
// producer asks an allocation server for space before writing, which
// eliminates ENOSPC collisions entirely — but, exactly as the paper
// observes, "it is [not] clear what allocation policy would be
// appropriate when output sizes are not known. Further, the actual
// process of allocation itself may be subject to contention."
//
// Because output size is unknown before the job runs, the reserving
// producer must ask for the worst case (MaxFileSize) and return the
// unused remainder only after the write completes. The slack between
// reserved and actual bytes idles buffer capacity, so reservation trades
// collisions for throughput — the quantitative form of the paper's
// argument. BenchmarkBaselineReservation measures the trade.

// ErrReservationDenied reports that the allocator had no space.
var ErrReservationDenied = errors.New("allocation denied: no reservable space")

// InjectHold is the injection site covering the window where a client
// holds granted-but-unwritten space: an injected Hang wedges the
// client after its grant, promised space pinned forever — unless the
// lease watchdog reclaims it.
const InjectHold = "fsbuffer/hold"

// InjectNet is the injection site covering the channel to the
// allocation service: reservation requests and lease-control messages
// (release, renew) cross it, and may be dropped, duplicated, or
// delayed (see lease.Manager.SetWire).
const InjectNet = "fsbuffer/net"

// Allocator is a NeST/SRM-style space reservation service in front of a
// Buffer. Reservations are bookkeeping only; the underlying buffer is
// unchanged, so reserving and non-reserving producers can be mixed.
// Granted space is held as a lease, so a tenure quantum (see
// SetLeaseQuantum) bounds how long a client may sit on a promise
// without writing.
type Allocator struct {
	buf    *Buffer
	tenure *lease.Manager
	inj    core.Injector
	// GrantTime models the allocation round trip; the allocation
	// service is itself a shared resource and serializes requests.
	GrantTime time.Duration
	lane      core.Resource

	// Grants and Denials count allocator outcomes; NetDrops counts
	// reservation requests the channel swallowed.
	Grants, Denials, NetDrops int64

	// unfenced disables epoch fencing on the tenure manager's wire —
	// the FigNet ablation arm. Default false: fenced.
	unfenced bool
}

// NewAllocator wraps buf with a reservation service.
func NewAllocator(e core.Backend, buf *Buffer, grantTime time.Duration) *Allocator {
	if grantTime <= 0 {
		grantTime = 10 * time.Millisecond
	}
	return &Allocator{
		buf:       buf,
		tenure:    lease.New(e, "reservation", buf.Free(), 0),
		GrantTime: grantTime,
		lane:      e.NewResource("allocator", 1),
	}
}

// SetLeaseQuantum bounds reservation tenure: a client that holds
// promised space longer than d without renewing (writing renews on
// completion by ending the reservation) is revoked and the space
// reclaimed. Zero (the default) restores unlimited tenure.
func (a *Allocator) SetLeaseQuantum(d time.Duration) { a.tenure.SetQuantum(d) }

// SetInjector installs a fault injector consulted at the allocator's
// hold site, and routes the tenure manager's lease-control messages
// through it at InjectNet (fenced unless SetUnfenced). A nil injector
// (the default) disables injection and removes the wire.
func (a *Allocator) SetInjector(inj core.Injector) {
	a.inj = inj
	a.tenure.SetWire(inj, InjectNet, !a.unfenced)
}

// SetUnfenced disables epoch fencing on the allocator's lease wire —
// the ablation arm that shows why fencing matters. Call before
// SetInjector.
func (a *Allocator) SetUnfenced(u bool) { a.unfenced = u }

// Reserved reports bytes currently promised to clients.
func (a *Allocator) Reserved() int64 { return a.tenure.InUse() }

// Revokes reports reservations forcibly reclaimed by the watchdog.
func (a *Allocator) Revokes() int64 { return a.tenure.Revokes }

// Tenure exposes the underlying lease manager for fairness accounting.
func (a *Allocator) Tenure() *lease.Manager { return a.tenure }

// Reserve requests size bytes, waiting in the allocator's queue. On
// success the caller owns the reservation and must End it.
func (a *Allocator) Reserve(p core.Proc, ctx context.Context, size int64) (*Reservation, error) {
	res, err := a.reserve(p, ctx, size)
	if err != nil {
		return nil, err
	}
	// Chaos seam: a stuck-holder plan wedges the client right after its
	// grant — space promised, nothing ever written. Only the caller's
	// own deadline or the lease watchdog frees the promise again.
	if f := core.InjectAt(a.inj, InjectHold); f.Hang {
		p.Tracer().FaultInjected(InjectHold)
		_ = p.Hang(res.Ctx())
		if cerr := ctx.Err(); cerr != nil {
			res.End()
			return nil, cerr
		}
		return nil, core.Collision("reservation", lease.ErrRevoked)
	}
	return res, nil
}

// reserve is the admission path: serialize on the allocation service,
// pay the round trip, then grant tenure on the promised bytes.
func (a *Allocator) reserve(p core.Proc, ctx context.Context, size int64) (*Reservation, error) {
	// Chaos seam: the request crosses the channel to the allocation
	// service before anything else. A drop is indistinguishable from a
	// slow server — the client pays the round trip and learns nothing.
	if f := core.InjectAt(a.inj, InjectNet); !f.Zero() {
		if f.Delay > 0 {
			if err := p.Sleep(ctx, f.Delay); err != nil {
				return nil, err
			}
		}
		if f.Drop || f.Err != nil {
			p.Tracer().MsgDrop("reservation")
			a.NetDrops++
			if err := p.Sleep(ctx, a.GrantTime); err != nil {
				return nil, err
			}
			return nil, core.Collision("net", core.ErrLost)
		}
	}
	if err := a.lane.Acquire(p, ctx); err != nil {
		return nil, err
	}
	defer a.lane.Release()
	if err := p.Sleep(ctx, a.GrantTime); err != nil {
		return nil, err
	}
	// Grant only space not already promised: reservations must never
	// overcommit, or they would be no better than optimistic writing.
	// A denial is a typed rejection carrying the shortfall, so clients
	// and the trace grammar can tell "the book was full" (nothing was
	// consumed) from a collision discovered after the fact.
	if unres := a.buf.Free() - a.Reserved(); unres < size {
		a.Denials++
		return nil, fmt.Errorf("%w: %w", ErrReservationDenied, core.Rejected("reservation", size-unres))
	}
	a.Grants++
	return &Reservation{l: a.tenure.Grant(p, ctx, p.Name(), size)}, nil
}

// Reservation is a granted slice of future buffer space, held as a
// lease.
type Reservation struct {
	l *lease.Lease
}

// Size reports the reserved byte count.
func (r *Reservation) Size() int64 { return r.l.Units() }

// Ctx returns the reservation's tenure context: canceled if the
// tenure is revoked. It is a child of the context Reserve was called
// with, so it is only meaningful while that context lives.
func (r *Reservation) Ctx() context.Context { return r.l.Ctx() }

// Revoked reports whether the watchdog reclaimed this reservation.
func (r *Reservation) Revoked() bool { return r.l.Revoked() }

// End releases the reservation (after the write completed or failed).
// Ending a revoked or already-ended reservation is a no-op.
func (r *Reservation) End() { r.l.Release() }

// ReservingProducer is the baseline client: reserve worst-case space,
// then write without fear of ENOSPC.
type ReservingProducer struct {
	// Wrote counts completed files; Denied counts files dropped because
	// the allocator had no space within the retry budget; Revoked
	// counts reservations the lease watchdog reclaimed mid-write.
	Wrote, Denied, Revoked int64
}

// Loop produces files until ctx is canceled. Each file first obtains a
// worst-case reservation (retrying with Aloha-style backoff on denial —
// the allocation service gives a clean failure signal, so carrier
// sense adds nothing), then writes under its protection. The
// cfg.Discipline field is ignored: this producer *is* the Reservation
// discipline.
func (rp *ReservingProducer) Loop(p core.Proc, ctx context.Context, a *Allocator, id int, cfg ProducerConfig) {
	p.SetTracer(cfg.Trace)
	client := &core.Client{
		Rt:         p,
		Discipline: core.Reservation,
		Limit:      core.For(cfg.TryLimit),
		Observer:   cfg.Observer,
		Trace:      cfg.Trace,
		Site:       "reservation",
		Span:       "write",
	}
	seq := 0
	for ctx.Err() == nil {
		size := int64(p.Rand() * float64(cfg.MaxFileSize))
		if size < 1 {
			size = 1
		}
		seq++
		name := fmt.Sprintf("r%d-%d", id, seq)
		var res *Reservation
		err := client.Do(ctx, func(ctx context.Context) error {
			var rerr error
			// Output size is unknown before the job runs: reserve the
			// worst case.
			res, rerr = a.Reserve(p, ctx, cfg.MaxFileSize)
			return rerr
		})
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			rp.Denied++
		} else {
			werr := a.buf.Write(p, ctx, name, size)
			if res.Revoked() {
				// The watchdog reclaimed the promise mid-write: the
				// write itself carried on optimistically, but the
				// space guarantee was gone.
				rp.Revoked++
			}
			res.End()
			if werr == nil {
				rp.Wrote++
			} else if ctx.Err() != nil {
				return
			}
		}
		if cfg.Interval > 0 {
			if p.Sleep(ctx, cfg.Interval) != nil {
				return
			}
		}
	}
}
