package fsbuffer

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestWriteCompleteAndConsume(t *testing.T) {
	e := sim.New(1)
	b := New(e.RT(), Config{})
	ctx, cancel := e.WithTimeout(e.Context(), 30*time.Second)
	defer cancel()
	e.Spawn("consumer", func(p *sim.Proc) { b.Consumer(p, ctx) })
	var werr error
	e.Spawn("producer", func(p *sim.Proc) {
		werr = b.Write(p, e.Context(), "out1", 2*MB)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if werr != nil {
		t.Fatalf("write: %v", werr)
	}
	if b.Completed != 1 || b.Consumed != 1 {
		t.Fatalf("completed=%d consumed=%d", b.Completed, b.Consumed)
	}
	if b.Used() != 0 {
		t.Fatalf("Used = %d after drain", b.Used())
	}
	if b.BytesConsumed != 2*MB {
		t.Fatalf("BytesConsumed = %d", b.BytesConsumed)
	}
}

func TestWriteENOSPCDeletesPartial(t *testing.T) {
	e := sim.New(1)
	b := New(e.RT(), Config{Capacity: 1 * MB})
	var err error
	e.Spawn("producer", func(p *sim.Proc) {
		err = b.Write(p, e.Context(), "big", 2*MB)
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if !core.IsCollision(err) {
		t.Fatalf("err = %v, want collision", err)
	}
	if b.Used() != 0 {
		t.Fatalf("partial file leaked %d bytes", b.Used())
	}
	if b.Collisions != 1 {
		t.Fatalf("Collisions = %d", b.Collisions)
	}
}

func TestWriteCancellationDeletesPartial(t *testing.T) {
	e := sim.New(1)
	b := New(e.RT(), Config{})
	var err error
	e.Spawn("producer", func(p *sim.Proc) {
		ctx, cancel := p.WithTimeout(e.Context(), 10*time.Millisecond)
		defer cancel()
		err = b.Write(p, ctx, "slow", 100*MB)
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v", err)
	}
	if b.Used() != 0 {
		t.Fatalf("canceled write leaked %d bytes", b.Used())
	}
	if b.Collisions != 0 {
		t.Fatal("cancellation must not count as collision")
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	e := sim.New(1)
	b := New(e.RT(), Config{})
	var err2 error
	e.Spawn("p", func(p *sim.Proc) {
		if err := b.Write(p, e.Context(), "x", 1*KB); err != nil {
			t.Errorf("first write: %v", err)
		}
		err2 = b.Write(p, e.Context(), "x", 1*KB)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err2 == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestStatsEstimate(t *testing.T) {
	e := sim.New(1)
	b := New(e.RT(), Config{Capacity: 10 * MB})
	e.Spawn("p", func(p *sim.Proc) {
		// Two complete 2 MB files.
		if err := b.Write(p, e.Context(), "a", 2*MB); err != nil {
			t.Errorf("a: %v", err)
		}
		if err := b.Write(p, e.Context(), "b", 2*MB); err != nil {
			t.Errorf("b: %v", err)
		}
		// One partial file, cut off at ~1 MB by cancellation.
		ctx, cancel := p.WithTimeout(e.Context(), 99*time.Millisecond)
		werr := b.Write(p, ctx, "c", 4*MB)
		cancel()
		if werr == nil {
			t.Error("c should have been cut off")
		}
		// After cancel the partial is deleted; re-create a live partial
		// by starting a write in another process and sampling mid-way.
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.DoneCount != 2 || st.AvgDoneSize != 2*MB {
		t.Fatalf("stats = %+v", st)
	}
	if st.Free != 6*MB {
		t.Fatalf("Free = %d", st.Free)
	}
	if st.EstimatedFree != 6*MB {
		t.Fatalf("EstimatedFree = %d (no partials outstanding)", st.EstimatedFree)
	}
}

func TestStatsEstimateWithPartial(t *testing.T) {
	e := sim.New(1)
	b := New(e.RT(), Config{Capacity: 10 * MB})
	var st Stats
	e.Spawn("writer", func(p *sim.Proc) {
		_ = b.Write(p, e.Context(), "done1", 2*MB) // finishes ≈ 0.67 s
		_ = b.Write(p, e.Context(), "partial", 4*MB)
	})
	e.Spawn("sampler", func(p *sim.Proc) {
		// Sample while the second write is mid-flight (0.67 s – 2 s).
		p.SleepFor(1200 * time.Millisecond)
		st = b.Stats()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if st.PartialCount != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Expected growth = avgDone(2MB) - partialSize; estimate must be
	// below raw free by exactly that amount.
	growth := 2*MB - st.PartialBytes
	if growth < 0 {
		growth = 0
	}
	if st.EstimatedFree != st.Free-growth {
		t.Fatalf("estimate inconsistent: %+v", st)
	}
}

func TestProducerLoopWritesAtCadence(t *testing.T) {
	e := sim.New(1)
	b := New(e.RT(), Config{})
	ctx, cancel := e.WithTimeout(e.Context(), 30*time.Second)
	defer cancel()
	e.Spawn("consumer", func(p *sim.Proc) { b.Consumer(p, ctx) })
	var pr Producer
	e.Spawn("producer", func(p *sim.Proc) {
		pr.Loop(p, ctx, b, 1, DefaultProducerConfig(core.Aloha))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// ~1 file/second for 30s, minus write time.
	if pr.Wrote < 20 || pr.Wrote > 31 {
		t.Fatalf("Wrote = %d", pr.Wrote)
	}
	if pr.Dropped != 0 {
		t.Fatalf("Dropped = %d", pr.Dropped)
	}
}

func TestEthernetProducersAvoidCollisions(t *testing.T) {
	run := func(d core.Discipline) (collisions, consumed int64) {
		e := sim.New(7)
		b := New(e.RT(), Config{})
		ctx, cancel := e.WithTimeout(e.Context(), 3*time.Minute)
		defer cancel()
		e.Spawn("consumer", func(p *sim.Proc) { b.Consumer(p, ctx) })
		for i := 0; i < 12; i++ {
			i := i
			e.Spawn("producer", func(p *sim.Proc) {
				var pr Producer
				pr.Loop(p, ctx, b, i, DefaultProducerConfig(d))
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return b.Collisions, b.Consumed
	}
	fixedColl, _ := run(core.Fixed)
	ethColl, ethCons := run(core.Ethernet)
	if ethColl*10 > fixedColl {
		t.Fatalf("ethernet collisions %d not ≪ fixed %d", ethColl, fixedColl)
	}
	if ethCons == 0 {
		t.Fatal("ethernet consumed nothing")
	}
}

// Property: used bytes equal the sum of live file sizes and never exceed
// capacity, across random workloads.
func TestQuickAccountingInvariant(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		e := sim.New(seed)
		b := New(e.RT(), Config{Capacity: 4 * MB})
		ctx, cancel := e.WithTimeout(e.Context(), time.Minute)
		defer cancel()
		e.Spawn("consumer", func(p *sim.Proc) { b.Consumer(p, ctx) })
		ok := true
		e.Schedule(time.Second, func() {
			if b.Used() > b.cfg.Capacity || b.Used() < 0 {
				ok = false
			}
		})
		for i := 0; i < n; i++ {
			i := i
			e.Spawn("producer", func(p *sim.Proc) {
				var pr Producer
				cfg := DefaultProducerConfig(core.Discipline(seed % 3))
				cfg.TryLimit = 15 * time.Second
				pr.Loop(p, ctx, b, i, cfg)
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		var sum int64
		for _, f := range b.files {
			sum += f.size
		}
		return ok && sum == b.used
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
