package gridd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/obs"
)

// Handler returns the daemon's HTTP surface. It is a plain
// http.Handler so cmd/gridd can hang it on a real listener and tests
// can hang it on an httptest.Server; the Server itself owns no socket.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /probe/{name}", s.handleProbe)
	mux.HandleFunc("POST /acquire", s.handleAcquire)
	mux.HandleFunc("POST /release", s.handleRelease)
	mux.HandleFunc("POST /renew", s.handleRenew)
	mux.HandleFunc("POST /reserve", s.handleReserve)
	mux.HandleFunc("POST /claim", s.handleClaim)
	mux.HandleFunc("POST /cancel", s.handleCancel)
	mux.HandleFunc("POST /resources", s.handleCreate)
	mux.HandleFunc("GET /stats/{name}", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// reply writes v as JSON with status 200.
func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// fail writes an ErrorReply with the HTTP status its code maps to.
func fail(w http.ResponseWriter, er ErrorReply) {
	status := http.StatusBadRequest
	switch er.Code {
	case CodeBusy, CodeRejected, CodeEarly:
		status = http.StatusConflict
	case CodeStale, CodeLapsed:
		status = http.StatusGone
	case CodeDown, CodeDraining:
		status = http.StatusServiceUnavailable
		if er.RetryAfterNS > 0 {
			secs := (er.RetryAfterNS + int64(time.Second) - 1) / int64(time.Second)
			w.Header().Set("Retry-After", fmt.Sprint(secs))
		}
	case CodeUnknown:
		status = http.StatusNotFound
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(er)
}

// decode parses the request body into v.
func decode(w http.ResponseWriter, req *http.Request, v any) bool {
	if err := json.NewDecoder(req.Body).Decode(v); err != nil {
		fail(w, ErrorReply{Code: CodeBadRequest, Message: err.Error()})
		return false
	}
	return true
}

// lookupLocked resolves a resource by name. Server lock held; on miss
// it unlocks and writes the 404 itself, reporting !ok.
func (s *Server) lookupLocked(w http.ResponseWriter, name string) (*resource, bool) {
	r := s.res[name]
	if r == nil {
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeUnknown, Message: "no such resource: " + name})
		return nil, false
	}
	return r, true
}

func (s *Server) handleProbe(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	r, ok := s.lookupLocked(w, req.PathValue("name"))
	if !ok {
		return
	}
	pr := ProbeReply{
		Resource: r.cfg.Name,
		Capacity: r.capacity,
		InUse:    r.inUse,
		Free:     r.capacity - r.inUse,
		Queue:    len(r.waiters),
		Down:     r.down,
		Draining: s.draining,
	}
	if pr.Free < 0 {
		pr.Free = 0
	}
	s.mu.Unlock()
	reply(w, pr)
}

func (s *Server) handleAcquire(w http.ResponseWriter, req *http.Request) {
	var ar AcquireRequest
	if !decode(w, req, &ar) {
		return
	}
	if ar.Units <= 0 {
		fail(w, ErrorReply{Code: CodeBadRequest, Message: "units must be positive"})
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeDraining, Message: "daemon draining"})
		return
	}
	r, ok := s.lookupLocked(w, ar.Resource)
	if !ok {
		return
	}
	quantum := r.cfg.Quantum
	if ar.QuantumNS > 0 {
		quantum = time.Duration(ar.QuantumNS)
	}
	if r.down {
		retry := time.Until(r.downUntil)
		r.ledger(ar.Holder).noteWant(time.Now())
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeDown, Message: "resource down", RetryAfterNS: int64(retry)})
		return
	}
	// Immediate grant when nothing is queued ahead: both the EMFILE
	// regime and the parked regime share this fast path.
	if len(r.waiters) == 0 && r.fits(ar.Units) {
		rep := r.grantLocked(ar.Holder, ar.Units, quantum, 0)
		s.mu.Unlock()
		reply(w, *rep)
		return
	}
	if ar.WaitNS <= 0 {
		// EMFILE: an immediate verdict. The FIFO queue may not be
		// jumped, so a non-empty queue is busy even with free units.
		r.st.Rejects++
		h := r.ledger(ar.Holder)
		h.rejects++
		h.noteWant(time.Now())
		sf := r.shortfall(ar.Units)
		if r.cfg.CrashHolder != "" && ar.Holder == r.cfg.CrashHolder {
			// The schedd-side accept failure: rejecting this holder is
			// the overload signal that crashes the resource.
			r.crashLocked()
		}
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeBusy, Message: "no free units", Shortfall: sf})
		return
	}
	// Park FIFO: the long poll.
	r.wseq++
	wt := &waiter{
		holder:  ar.Holder,
		units:   ar.Units,
		quantum: quantum,
		seq:     r.wseq,
		ch:      make(chan waitResult, 1),
	}
	r.waiters = append(r.waiters, wt)
	r.ledger(ar.Holder).noteWant(time.Now())
	s.mu.Unlock()

	timer := time.NewTimer(time.Duration(ar.WaitNS))
	defer timer.Stop()
	select {
	case res := <-wt.ch:
		s.writeWaitResult(w, res)
	case <-req.Context().Done():
		s.abandonWaiter(w, r, wt, false)
	case <-timer.C:
		s.abandonWaiter(w, r, wt, true)
	}
}

// writeWaitResult renders a parked acquire's outcome.
func (s *Server) writeWaitResult(w http.ResponseWriter, res waitResult) {
	if res.lease != nil {
		reply(w, *res.lease)
		return
	}
	fail(w, ErrorReply{Code: res.code, Message: "parked acquire failed", RetryAfterNS: int64(res.retry)})
}

// abandonWaiter resolves the park-vs-grant race under the lock: if the
// grant landed first it wins (exactly the live backend's semantics);
// otherwise the waiter is withdrawn and the verdict is busy.
func (s *Server) abandonWaiter(w http.ResponseWriter, r *resource, wt *waiter, timedOut bool) {
	s.mu.Lock()
	select {
	case res := <-wt.ch:
		s.mu.Unlock()
		s.writeWaitResult(w, res)
		return
	default:
	}
	wt.canceled = true
	if timedOut {
		r.st.Timeouts++
	}
	sf := r.shortfall(wt.units)
	s.mu.Unlock()
	fail(w, ErrorReply{Code: CodeBusy, Message: "wait expired", Shortfall: sf})
}

func (s *Server) handleRelease(w http.ResponseWriter, req *http.Request) {
	var rr ReleaseRequest
	if !decode(w, req, &rr) {
		return
	}
	s.mu.Lock()
	r, ok := s.lookupLocked(w, rr.Resource)
	if !ok {
		return
	}
	g, live := r.grants[rr.LeaseID]
	if live && g.epoch == rr.Epoch {
		r.retireLocked(g)
		r.st.Releases++
		r.grantWaiters()
		s.mu.Unlock()
		reply(w, struct{}{})
		return
	}
	if r.cfg.Unfenced {
		// The unfenced server applies whatever arrives: a duplicated
		// or late release double-frees, corrupting inUse low. This is
		// the ablation arm — the measured hazard, not a bug.
		units := rr.Units
		if units < 0 {
			units = 0
		}
		r.inUse -= units
		if r.inUse < 0 {
			r.inUse = 0
		}
		r.st.DoubleFrees++
		r.st.Releases++
		r.grantWaiters()
		s.mu.Unlock()
		reply(w, struct{}{})
		return
	}
	r.st.Stales++
	fence := r.fence
	s.mu.Unlock()
	fail(w, ErrorReply{Code: CodeStale, Message: "lease fenced", Epoch: rr.Epoch, Fence: fence})
}

func (s *Server) handleRenew(w http.ResponseWriter, req *http.Request) {
	var rn RenewRequest
	if !decode(w, req, &rn) {
		return
	}
	s.mu.Lock()
	r, ok := s.lookupLocked(w, rn.Resource)
	if !ok {
		return
	}
	g, live := r.grants[rn.LeaseID]
	if live && g.epoch == rn.Epoch {
		var rep RenewReply
		if !g.deadline.IsZero() {
			d := time.Duration(rn.ForNS)
			if d <= 0 {
				d = g.quantum
			}
			g.watchdog.Stop()
			g.deadline = time.Now().Add(d)
			id := g.id
			g.watchdog = time.AfterFunc(d, func() { r.expire(id) })
			rep.DeadlineNS = int64(g.deadline.Sub(s.start))
		}
		s.mu.Unlock()
		reply(w, rep)
		return
	}
	if r.cfg.Unfenced {
		// Nothing to extend and no fence to say so: the unfenced
		// server shrugs — the delayed-renew hazard of the wire model.
		s.mu.Unlock()
		reply(w, RenewReply{})
		return
	}
	r.st.Stales++
	fence := r.fence
	s.mu.Unlock()
	fail(w, ErrorReply{Code: CodeStale, Message: "lease fenced", Epoch: rn.Epoch, Fence: fence})
}

func (s *Server) handleReserve(w http.ResponseWriter, req *http.Request) {
	var rr ReserveRequest
	if !decode(w, req, &rr) {
		return
	}
	if rr.Units <= 0 || rr.TenureNS <= 0 {
		fail(w, ErrorReply{Code: CodeBadRequest, Message: "units and tenure must be positive"})
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeDraining, Message: "daemon draining"})
		return
	}
	r, ok := s.lookupLocked(w, rr.Resource)
	if !ok {
		return
	}
	now := time.Now()
	start := now
	if rr.StartNS > 0 {
		start = now.Add(time.Duration(rr.StartNS))
	}
	end := start.Add(time.Duration(rr.TenureNS))
	if peak := r.peakLoad(start, end); peak+rr.Units > r.capacity {
		r.st.BookRejects++
		h := r.ledger(rr.Holder)
		h.rejects++
		sf := peak + rr.Units - r.capacity
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeRejected, Message: "window over capacity", Shortfall: sf})
		return
	}
	r.bookID++
	b := &booking{id: r.bookID, holder: rr.Holder, units: rr.Units, start: start, end: end}
	r.bookings[b.id] = b
	r.st.Admits++
	rep := ReserveReply{
		BookingID: b.id,
		StartNS:   int64(start.Sub(s.start)),
		EndNS:     int64(end.Sub(s.start)),
	}
	s.mu.Unlock()
	reply(w, rep)
}

func (s *Server) handleClaim(w http.ResponseWriter, req *http.Request) {
	var cr ClaimRequest
	if !decode(w, req, &cr) {
		return
	}
	s.mu.Lock()
	r, ok := s.lookupLocked(w, cr.Resource)
	if !ok {
		return
	}
	b := r.bookings[cr.BookingID]
	if b == nil || b.canceled {
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeUnknown, Message: "no such booking"})
		return
	}
	if b.claimed {
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeBadRequest, Message: "booking already claimed"})
		return
	}
	now := time.Now()
	if now.Before(b.start) {
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeEarly, Message: "window not open yet"})
		return
	}
	if !now.Before(b.end) {
		r.st.Lapses++
		delete(r.bookings, b.id)
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeLapsed, Message: "window closed"})
		return
	}
	b.claimed = true
	// The window fences the claim: the lease's deadline is the
	// booking's end, however late inside the window the claim landed.
	rep := r.grantLocked(b.holder, b.units, b.end.Sub(now), 0)
	if g := r.grants[rep.LeaseID]; g != nil {
		g.deadline = b.end // pin exactly to the window, not now+tenure
		rep.DeadlineNS = int64(b.end.Sub(s.start))
	}
	s.mu.Unlock()
	reply(w, *rep)
}

func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	var cr CancelRequest
	if !decode(w, req, &cr) {
		return
	}
	s.mu.Lock()
	r, ok := s.lookupLocked(w, cr.Resource)
	if !ok {
		return
	}
	b := r.bookings[cr.BookingID]
	if b == nil || b.canceled {
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeUnknown, Message: "no such booking"})
		return
	}
	if b.claimed {
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeBadRequest, Message: "booking already claimed"})
		return
	}
	b.canceled = true
	delete(r.bookings, b.id)
	s.mu.Unlock()
	reply(w, struct{}{})
}

func (s *Server) handleCreate(w http.ResponseWriter, req *http.Request) {
	var cr CreateRequest
	if !decode(w, req, &cr) {
		return
	}
	if cr.Name == "" || cr.Capacity <= 0 {
		fail(w, ErrorReply{Code: CodeBadRequest, Message: "name and positive capacity required"})
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		fail(w, ErrorReply{Code: CodeDraining, Message: "daemon draining"})
		return
	}
	existed := s.res[cr.Name] != nil
	s.createLocked(ResourceConfig{
		Name:              cr.Name,
		Capacity:          cr.Capacity,
		Quantum:           time.Duration(cr.QuantumNS),
		Unfenced:          cr.Unfenced,
		HousekeepUnits:    cr.HousekeepUnits,
		HousekeepInterval: time.Duration(cr.HousekeepIntervalNS),
		RestartDelay:      time.Duration(cr.RestartDelayNS),
		CrashHolder:       cr.CrashHolder,
	})
	s.mu.Unlock()
	if !existed {
		s.registerObs(cr.Name) // obs registration never runs under s.mu
	}
	reply(w, struct{}{})
}

func (s *Server) handleStats(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	r, ok := s.lookupLocked(w, req.PathValue("name"))
	if !ok {
		return
	}
	st := s.statsLocked(r)
	s.mu.Unlock()
	reply(w, st)
}

// statsLocked snapshots a resource's accounting. Server lock held.
func (s *Server) statsLocked(r *resource) StatsReply {
	st := r.st // counters
	st.Capacity = r.capacity
	st.InUse = r.inUse
	st.Outstanding = r.outstanding
	st.MaxOutstanding = r.maxOutstanding
	st.Down = r.down
	st.Draining = s.draining
	now := time.Now()
	names := make([]string, 0, len(r.holders))
	for name := range r.holders {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.holders[name]
		hs := HolderStats{
			Holder:    name,
			Grants:    h.grants,
			Rejects:   h.rejects,
			Revokes:   h.revokes,
			MaxWaitNS: int64(h.maxWait),
			Waiting:   h.waiting,
		}
		if h.waiting {
			if cur := now.Sub(h.since); cur > time.Duration(hs.MaxWaitNS) {
				hs.MaxWaitNS = int64(cur)
			}
			if cur := now.Sub(h.since); int64(cur) > st.LongestWaitNS {
				st.LongestWaitNS = int64(cur)
			}
		}
		if hs.MaxWaitNS > st.MaxWaitNS {
			st.MaxWaitNS = hs.MaxWaitNS
		}
		st.Holders = append(st.Holders, hs)
	}
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	n := len(s.res)
	s.mu.Unlock()
	reply(w, map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"resources":      n,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	scopes := append([]*obs.Scope(nil), s.scopes...)
	s.mu.Unlock()
	for _, sc := range scopes {
		sc.Sample() // takes the registry lock; gauges re-take s.mu
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteProm(w)
}

// registerObs wires the named resource's gauges and counters into the
// daemon's flight recorder. It must never run under s.mu: Scope.Sample
// calls the closures below while holding the registry lock, and they
// take s.mu — registering under s.mu would invert that order into a
// deadlock.
func (s *Server) registerObs(name string) {
	clock := func() time.Duration { return time.Since(s.start) }
	sc := s.reg.NewScope(clock, "resource", name)
	read := func(f func(r *resource) float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			r := s.res[name]
			if r == nil {
				return 0
			}
			return f(r)
		}
	}
	sc.GaugeFunc("gridd_capacity", "resource capacity in units", read(func(r *resource) float64 { return float64(r.capacity) }))
	sc.GaugeFunc("gridd_in_use", "units currently allocated (bookkeeping view)", read(func(r *resource) float64 { return float64(r.inUse) }))
	sc.GaugeFunc("gridd_outstanding", "units across live grants (ground truth)", read(func(r *resource) float64 { return float64(r.outstanding) }))
	sc.GaugeFunc("gridd_queue", "parked acquires", read(func(r *resource) float64 { return float64(len(r.waiters)) }))
	sc.GaugeFunc("gridd_grants", "leases granted", read(func(r *resource) float64 { return float64(r.st.Grants) }))
	sc.GaugeFunc("gridd_revokes", "tenures revoked by the watchdog or a crash", read(func(r *resource) float64 { return float64(r.st.Revokes) }))
	sc.GaugeFunc("gridd_stales", "operations fenced as stale", read(func(r *resource) float64 { return float64(r.st.Stales) }))
	sc.GaugeFunc("gridd_crashes", "resource crashes (broadcast jams)", read(func(r *resource) float64 { return float64(r.st.Crashes) }))
	sc.GaugeFunc("gridd_phantoms", "grants admitted past ground-truth capacity", read(func(r *resource) float64 { return float64(r.st.Phantoms) }))
	s.mu.Lock()
	s.scopes = append(s.scopes, sc)
	s.mu.Unlock()
}
