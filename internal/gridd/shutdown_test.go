package gridd_test

// Graceful-shutdown coverage: draining must refuse new work with a
// typed retriable verdict, wait out in-flight grants, flush parked
// acquires, and fire whatever remains in (deadline, seq) order —
// matching live.Engine.Run's leftover-timer drain semantics.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gridd"
	"repro/internal/griddclient"
)

func TestShutdownDrainOrderIsDeadlineThenSeq(t *testing.T) {
	srv, c := newDaemon(t,
		gridd.ResourceConfig{Name: "a", Capacity: 8},
		gridd.ResourceConfig{Name: "b", Capacity: 8},
	)
	ctx := ctxT(t)
	acq := func(res, holder string, quantum time.Duration) {
		t.Helper()
		_, err := c.Acquire(ctx, gridd.AcquireRequest{
			Resource: res, Holder: holder, Units: 1, QuantumNS: int64(quantum),
		})
		if err != nil {
			t.Fatalf("acquire %s/%s: %v", res, holder, err)
		}
	}
	// Deadlines deliberately out of grant order, spread across both
	// resources, plus an unlimited tenure that must drain last.
	acq("a", "mid", 30*time.Second)
	acq("b", "late", 50*time.Second)
	acq("a", "early", 10*time.Second)
	acq("b", "forever", 0)

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	recs := srv.Shutdown(sctx)
	if len(recs) != 4 {
		t.Fatalf("drained %d grants; want 4: %+v", len(recs), recs)
	}
	wantHolders := []string{"early", "mid", "late", "forever"}
	for i, want := range wantHolders {
		if recs[i].Holder != want {
			t.Fatalf("drain order %v; want holders %v", recs, wantHolders)
		}
	}
	for i := 1; i < len(recs); i++ {
		di, dj := recs[i-1].DeadlineNS, recs[i].DeadlineNS
		inOrder := (dj == 0 && di >= 0) || (di != 0 && dj != 0 && di <= dj) || (di == 0 && dj == 0 && recs[i-1].Seq < recs[i].Seq)
		if !inOrder {
			t.Fatalf("drain records out of (deadline, seq) order: %+v", recs)
		}
	}
	// Idempotent: a second shutdown has nothing left to drain.
	if again := srv.Shutdown(context.Background()); len(again) != 0 {
		t.Fatalf("second Shutdown drained %+v; want nothing", again)
	}
}

func TestShutdownRefusesNewWorkWithTypedRetriableError(t *testing.T) {
	srv, c := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 2})
	ctx := ctxT(t)

	lease, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "a", Units: 1})
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Shutdown blocks on the in-flight grant; run it aside and wait for
	// draining to take effect.
	done := make(chan []gridd.DrainRecord, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(sctx)
	}()
	waitFor(t, 2*time.Second, "draining to begin", srv.Draining)

	// New acquires and reservations land as the typed retriable error.
	_, err = c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "b", Units: 1})
	var ue *griddclient.UnavailableError
	if !errors.As(err, &ue) || ue.Reason != "draining" {
		t.Fatalf("acquire while draining = %v; want UnavailableError(draining)", err)
	}
	if !errors.Is(err, griddclient.ErrUnavailable) {
		t.Fatalf("draining verdict not retriable via errors.Is")
	}
	_, err = c.Reserve(ctx, gridd.ReserveRequest{
		Resource: "fds", Holder: "b", Units: 1, TenureNS: int64(time.Second),
	})
	if !errors.Is(err, griddclient.ErrUnavailable) {
		t.Fatalf("reserve while draining = %v; want ErrUnavailable", err)
	}

	// The in-flight holder can still land its release: that is the
	// entire point of draining. The shutdown then completes without
	// force-revoking anything.
	if err := lease.Release(ctx); err != nil {
		t.Fatalf("release while draining: %v", err)
	}
	select {
	case recs := <-done:
		if len(recs) != 0 {
			t.Fatalf("drain force-revoked %+v despite the release landing", recs)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Shutdown never returned after the last release")
	}
}

func TestShutdownFlushesParkedAcquires(t *testing.T) {
	srv, c := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 1})
	ctx := ctxT(t)

	lease, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "a", Units: 1})
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	parked := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, gridd.AcquireRequest{
			Resource: "fds", Holder: "b", Units: 1, WaitNS: int64(10 * time.Second),
		})
		parked <- err
	}()
	waitFor(t, 2*time.Second, "waiter to park", func() bool {
		pr, _ := c.Probe(ctx, "fds")
		return pr.Queue == 1
	})

	done := make(chan []gridd.DrainRecord, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- srv.Shutdown(sctx)
	}()
	// The parked acquire must fail fast with the draining verdict, not
	// wait out its 10-second long poll.
	select {
	case err := <-parked:
		if !errors.Is(err, griddclient.ErrUnavailable) {
			t.Fatalf("parked acquire during shutdown = %v; want ErrUnavailable", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("parked acquire not flushed by shutdown")
	}
	if err := lease.Release(ctx); err != nil {
		t.Fatalf("release: %v", err)
	}
	<-done
}

// TestLeaseHeldAcrossShutdownIsRevokedInDrainOrder is the regression
// for leases held across shutdown: a holder that never releases must
// not wedge the daemon forever — its watchdog fires during the drain,
// exactly once, and is recorded.
func TestLeaseHeldAcrossShutdownIsRevokedInDrainOrder(t *testing.T) {
	srv, c := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 2})
	ctx := ctxT(t)

	wedged, err := c.Acquire(ctx, gridd.AcquireRequest{
		Resource: "fds", Holder: "wedged", Units: 2, QuantumNS: int64(time.Hour),
	})
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	recs := srv.Shutdown(sctx)
	if len(recs) != 1 || recs[0].Holder != "wedged" || recs[0].LeaseID != wedged.LeaseID {
		t.Fatalf("drain records = %+v; want exactly the wedged lease", recs)
	}
	st, err := c.Stats(ctx, "fds")
	if err != nil {
		t.Fatalf("stats after shutdown: %v", err)
	}
	if st.Outstanding != 0 || st.Revokes != 1 {
		t.Fatalf("post-shutdown stats = %+v; want all units home via 1 revoke", st)
	}
}
