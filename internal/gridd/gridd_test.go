package gridd_test

// Socket-level conformance for the gridd daemon: every test talks to a
// real httptest listener through internal/griddclient, so what is
// proven here is the wire contract — typed errors rebuilt from JSON,
// fencing across the socket, watchdog revocation on the daemon's wall
// clock — not the in-process state machine alone.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gridd"
	"repro/internal/griddclient"
)

// newDaemon spins up an in-process daemon hosting rcs and a client
// pointed at it.
func newDaemon(t *testing.T, rcs ...gridd.ResourceConfig) (*gridd.Server, *griddclient.Client) {
	t.Helper()
	srv := gridd.NewServer(gridd.Config{Resources: rcs})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, griddclient.New(hs.URL, 1)
}

// waitFor polls cond until true or the deadline, failing with what.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestProbeAcquireRelease(t *testing.T) {
	_, c := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 2})
	ctx := ctxT(t)

	pr, err := c.Probe(ctx, "fds")
	if err != nil || pr.Free != 2 || pr.InUse != 0 {
		t.Fatalf("fresh probe = %+v, %v; want free 2", pr, err)
	}
	lease, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "a", Units: 1})
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if lease.Epoch == 0 || lease.GrantSeq == 0 {
		t.Fatalf("lease missing fencing epoch or grant seq: %+v", lease.LeaseReply)
	}
	if pr, _ = c.Probe(ctx, "fds"); pr.InUse != 1 || pr.Free != 1 {
		t.Fatalf("probe after acquire = %+v; want in_use 1", pr)
	}
	if err := lease.Release(ctx); err != nil {
		t.Fatalf("release: %v", err)
	}
	if pr, _ = c.Probe(ctx, "fds"); pr.InUse != 0 {
		t.Fatalf("probe after release = %+v; want in_use 0", pr)
	}
	if _, err := c.Probe(ctx, "nope"); !errors.Is(err, griddclient.ErrUnknown) {
		t.Fatalf("probe of unknown resource = %v; want ErrUnknown", err)
	}
}

func TestFencedDuplicateReleaseIsStale(t *testing.T) {
	_, c := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 2})
	ctx := ctxT(t)

	lease, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "a", Units: 1})
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if err := lease.Release(ctx); err != nil {
		t.Fatalf("first release: %v", err)
	}
	err = lease.Release(ctx)
	if !errors.Is(err, core.ErrStale) {
		t.Fatalf("duplicate release = %v; want core.ErrStale across the socket", err)
	}
	se := core.Staleness(err)
	if se == nil || se.Fence < lease.Epoch {
		t.Fatalf("stale detail = %+v; want fence >= epoch %d", se, lease.Epoch)
	}
	st, _ := c.Stats(ctx, "fds")
	if st.Stales != 1 || st.DoubleFrees != 0 || st.InUse != 0 {
		t.Fatalf("stats after dup release = %+v; want 1 stale, 0 double-frees", st)
	}
}

func TestWatchdogRevokesOverstayedTenure(t *testing.T) {
	_, c := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 1, Quantum: 40 * time.Millisecond})
	ctx := ctxT(t)

	lease, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "wedged", Units: 1})
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	waitFor(t, 2*time.Second, "watchdog revocation", func() bool {
		st, _ := c.Stats(ctx, "fds")
		return st.Revokes == 1 && st.Outstanding == 0
	})
	if _, err := lease.Renew(ctx, 0); !errors.Is(err, core.ErrStale) {
		t.Fatalf("renew after revocation = %v; want stale", err)
	}
	if err := lease.Release(ctx); !errors.Is(err, core.ErrStale) {
		t.Fatalf("release after revocation = %v; want stale", err)
	}
	// The unit is home: a new tenant gets it immediately.
	if _, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "next", Units: 1}); err != nil {
		t.Fatalf("acquire after revocation: %v", err)
	}
}

func TestRenewExtendsTenure(t *testing.T) {
	_, c := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 1, Quantum: 80 * time.Millisecond})
	ctx := ctxT(t)

	lease, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "a", Units: 1})
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// Renew past several default tenures; the lease must stay live.
	for i := 0; i < 5; i++ {
		time.Sleep(30 * time.Millisecond)
		if _, err := lease.Renew(ctx, 0); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	if err := lease.Release(ctx); err != nil {
		t.Fatalf("release after renews: %v", err)
	}
	st, _ := c.Stats(ctx, "fds")
	if st.Revokes != 0 {
		t.Fatalf("revokes = %d after dutiful renewal; want 0", st.Revokes)
	}
}

func TestUnfencedDoubleFreeAdmitsPhantoms(t *testing.T) {
	_, c := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 2, Unfenced: true})
	ctx := ctxT(t)
	acq := func(h string) *griddclient.Lease {
		t.Helper()
		l, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: h, Units: 1})
		if err != nil {
			t.Fatalf("acquire %s: %v", h, err)
		}
		return l
	}

	a, b := acq("a"), acq("b")
	if err := a.Release(ctx); err != nil {
		t.Fatalf("release: %v", err)
	}
	// The duplicated release: an unfenced daemon applies the replay and
	// double-frees, corrupting its bookkeeping below ground truth.
	if err := a.Release(ctx); err != nil {
		t.Fatalf("unfenced daemon rejected the replay: %v", err)
	}
	// Bookkeeping now says 0 in use while b's grant is live: two more
	// admissions fit on paper, and the second is a phantom.
	acq("c")
	acq("d")
	st, _ := c.Stats(ctx, "fds")
	if st.DoubleFrees != 1 {
		t.Fatalf("double_frees = %d; want 1", st.DoubleFrees)
	}
	if st.Phantoms < 1 || st.MaxOutstanding <= st.Capacity {
		t.Fatalf("stats = %+v; want phantom grants past capacity", st)
	}
	_ = b
}

func TestEMFILEVerdictMayNotJumpTheQueue(t *testing.T) {
	_, c := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 2})
	ctx := ctxT(t)

	seedLease, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "a", Units: 1})
	if err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	// b wants 2: doesn't fit, parks.
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, gridd.AcquireRequest{
			Resource: "fds", Holder: "b", Units: 2, WaitNS: int64(2 * time.Second),
		})
		done <- err
	}()
	waitFor(t, 2*time.Second, "b to park", func() bool {
		pr, _ := c.Probe(ctx, "fds")
		return pr.Queue == 1
	})
	// c wants 1: a unit is free, but the queue is not empty — the
	// immediate verdict must be busy, not a queue jump.
	_, err = c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "c", Units: 1})
	var be *griddclient.BusyError
	if !errors.As(err, &be) {
		t.Fatalf("queue-jump attempt = %v; want BusyError", err)
	}
	if !errors.Is(err, griddclient.ErrBusy) {
		t.Fatalf("BusyError does not match ErrBusy")
	}
	// Freeing a's unit lets the parked head (which needs both) in.
	if err := seedLease.Release(ctx); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("parked b never granted: %v", err)
	}
}

func TestFIFOGrantOrderObservableOnTheWire(t *testing.T) {
	_, c := newDaemon(t, gridd.ResourceConfig{Name: "fds", Capacity: 1})
	ctx := ctxT(t)

	hold, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "hold", Units: 1})
	if err != nil {
		t.Fatalf("seed acquire: %v", err)
	}
	const parked = 3
	leases := make(chan *griddclient.Lease, parked)
	for i := 0; i < parked; i++ {
		go func() {
			l, err := c.Acquire(ctx, gridd.AcquireRequest{
				Resource: "fds", Holder: "w", Units: 1, WaitNS: int64(5 * time.Second),
			})
			if err == nil {
				leases <- l
			}
		}()
		// Stagger so the park order is deterministic.
		waitFor(t, 2*time.Second, "waiter to park", func() bool {
			pr, _ := c.Probe(ctx, "fds")
			return pr.Queue == i+1
		})
	}
	if err := hold.Release(ctx); err != nil {
		t.Fatalf("release: %v", err)
	}
	var got []*griddclient.Lease
	for i := 0; i < parked; i++ {
		select {
		case l := <-leases:
			got = append(got, l)
			_ = l.Release(ctx)
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d parked acquires granted", i, parked)
		}
		// Each grant frees the unit for the next release above.
	}
	// The wire-visible FIFO proof: grant order must equal park order.
	for i := 1; i < len(got); i++ {
		if got[i].GrantSeq <= got[i-1].GrantSeq || got[i].WaiterSeq <= got[i-1].WaiterSeq {
			t.Fatalf("grant %d out of order: seq %d/%d after %d/%d",
				i, got[i].GrantSeq, got[i].WaiterSeq, got[i-1].GrantSeq, got[i-1].WaiterSeq)
		}
	}
}

func TestCrashHolderBroadcastJam(t *testing.T) {
	_, c := newDaemon(t, gridd.ResourceConfig{
		Name: "fds", Capacity: 1, RestartDelay: 60 * time.Millisecond, CrashHolder: "schedd",
	})
	ctx := ctxT(t)

	lease, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "a", Units: 1})
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	// The schedd itself being refused is the overload that crashes the
	// resource and revokes every grant — the broadcast jam.
	_, err = c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "schedd", Units: 1})
	if !errors.Is(err, griddclient.ErrBusy) {
		t.Fatalf("schedd acquire = %v; want busy", err)
	}
	st, _ := c.Stats(ctx, "fds")
	if st.Crashes != 1 || st.Revokes != 1 || !st.Down {
		t.Fatalf("stats after jam = %+v; want crash, revoke, down", st)
	}
	// The jammed holder discovers the revocation as stale.
	if err := lease.Release(ctx); !errors.Is(err, core.ErrStale) {
		t.Fatalf("release after jam = %v; want stale", err)
	}
	// While down, acquires are refused with the typed retriable error.
	_, err = c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "b", Units: 1})
	var ue *griddclient.UnavailableError
	if !errors.As(err, &ue) || ue.Reason != "down" {
		t.Fatalf("acquire while down = %v; want UnavailableError(down)", err)
	}
	// After the restart delay the resource heals.
	waitFor(t, 2*time.Second, "restart", func() bool {
		pr, _ := c.Probe(ctx, "fds")
		return !pr.Down
	})
	if _, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "b", Units: 1}); err != nil {
		t.Fatalf("acquire after restart: %v", err)
	}
}

func TestReserveClaimCancelLapse(t *testing.T) {
	_, c := newDaemon(t, gridd.ResourceConfig{Name: "yyy", Capacity: 2})
	ctx := ctxT(t)

	// Admit a window, then over-book the same window: typed rejection
	// with the shortfall, across the socket.
	rr, err := c.Reserve(ctx, gridd.ReserveRequest{
		Resource: "yyy", Holder: "a", Units: 2, TenureNS: int64(50 * time.Millisecond),
	})
	if err != nil {
		t.Fatalf("reserve: %v", err)
	}
	_, err = c.Reserve(ctx, gridd.ReserveRequest{
		Resource: "yyy", Holder: "b", Units: 1, TenureNS: int64(30 * time.Millisecond),
	})
	rej := core.Rejection(err)
	if rej == nil || rej.Shortfall != 1 {
		t.Fatalf("over-book = %v; want RejectedError shortfall 1", err)
	}

	// Claim converts the booking into a lease fenced at window end.
	lease, err := c.Claim(ctx, gridd.ClaimRequest{Resource: "yyy", BookingID: rr.BookingID})
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	if lease.DeadlineNS == 0 || lease.DeadlineNS > rr.EndNS {
		t.Fatalf("claimed lease deadline %d; want (0, %d]", lease.DeadlineNS, rr.EndNS)
	}
	if _, err := c.Claim(ctx, gridd.ClaimRequest{Resource: "yyy", BookingID: rr.BookingID}); err == nil {
		t.Fatalf("double claim succeeded")
	}
	if err := lease.Release(ctx); err != nil {
		t.Fatalf("release claimed lease: %v", err)
	}

	// A future window cannot be claimed early...
	fut, err := c.Reserve(ctx, gridd.ReserveRequest{
		Resource: "yyy", Holder: "a", Units: 1,
		StartNS: int64(time.Hour), TenureNS: int64(time.Hour),
	})
	if err != nil {
		t.Fatalf("future reserve: %v", err)
	}
	if _, err := c.Claim(ctx, gridd.ClaimRequest{Resource: "yyy", BookingID: fut.BookingID}); !errors.Is(err, griddclient.ErrEarly) {
		t.Fatalf("early claim = %v; want ErrEarly", err)
	}
	// ...but it can be forfeited, refunding the window.
	if err := c.Cancel(ctx, gridd.CancelRequest{Resource: "yyy", BookingID: fut.BookingID}); err != nil {
		t.Fatalf("cancel: %v", err)
	}

	// A lapsed window is gone: claim after end is the typed lapse. The
	// window starts after a's 50ms booking ends — a claimed booking
	// still occupies the book until its window closes.
	short, err := c.Reserve(ctx, gridd.ReserveRequest{
		Resource: "yyy", Holder: "a", Units: 1,
		StartNS: int64(60 * time.Millisecond), TenureNS: int64(20 * time.Millisecond),
	})
	if err != nil {
		t.Fatalf("short reserve: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	if _, err := c.Claim(ctx, gridd.ClaimRequest{Resource: "yyy", BookingID: short.BookingID}); !errors.Is(err, griddclient.ErrLapsed) {
		t.Fatalf("lapsed claim = %v; want ErrLapsed", err)
	}
	st, _ := c.Stats(ctx, "yyy")
	if st.Admits != 3 || st.BookRejects != 1 || st.Lapses != 1 {
		t.Fatalf("book stats = %+v; want 3 admits, 1 reject, 1 lapse", st)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	srv := gridd.NewServer(gridd.Config{Resources: []gridd.ResourceConfig{
		{Name: "fds", Capacity: 4},
	}})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	c := griddclient.New(hs.URL, 1)
	ctx := ctxT(t)

	if _, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "a", Units: 3}); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{"gridd_capacity", "gridd_in_use", "gridd_outstanding"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}
	h, err := c.Healthz(ctx)
	if err != nil || h["status"] != "ok" {
		t.Fatalf("healthz = %v, %v; want status ok", h, err)
	}
}
