package gridd_test

// The wire-protocol property battery (the socket-level analogue of
// internal/lease's prop_test): 25 seeded schedules of concurrent
// acquire / renew / release / duplicate-release / reserve+claim /
// crash traffic from real goroutines against a live daemon, checking
// the properties the wire protocol promises:
//
//   - safety at every snapshot: Outstanding <= Capacity and zero
//     phantom grants, observed by a stats poller racing the traffic;
//   - FIFO grant order, checkable from outside the socket: sorted by
//     GrantSeq, parked grants' WaiterSeqs are strictly increasing;
//   - units conservation at quiescence: outstanding drains to zero
//     and grants == releases + revokes on the daemon's own counters.
//
// Schedules are seeded but wall-clock nondeterministic (the live
// backend's usual caveat); a failure is re-run at smaller op and
// client counts to report the smallest still-failing configuration.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gridd"
	"repro/internal/griddclient"
)

const (
	propPoolCap = 3
	propBookCap = 2
	propQuantum = 24 * time.Millisecond
)

// propTally is the harness-side ledger; every field is guarded by mu
// because the clients are real goroutines, not simulator procs.
type propTally struct {
	mu       sync.Mutex
	leases   []gridd.LeaseReply
	parked   int64
	granted  int64
	stales   int64
	rejects  int64
	crashes  int64
	bookings int64
}

func (p *propTally) note(fn func(*propTally)) {
	p.mu.Lock()
	fn(p)
	p.mu.Unlock()
}

// griddPropRun executes one schedule and reports a failure description
// ("" if every property held) plus the tally for vacuity accounting.
func griddPropRun(seed int64, clients, opsPer int) (*propTally, string) {
	srv := gridd.NewServer(gridd.Config{Resources: []gridd.ResourceConfig{
		{Name: "pool", Capacity: propPoolCap, Quantum: propQuantum,
			RestartDelay: 30 * time.Millisecond, CrashHolder: "chaos"},
		{Name: "book", Capacity: propBookCap},
	}})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	c := griddclient.New(hs.URL, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	tally := &propTally{}
	var violation string
	var vmu sync.Mutex
	setViolation := func(msg string) {
		vmu.Lock()
		if violation == "" {
			violation = msg
		}
		vmu.Unlock()
	}

	// The snapshot poller races the traffic: safety must hold at every
	// observation, not just at quiescence.
	pollDone := make(chan struct{})
	pollStop := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-pollStop:
				return
			case <-time.After(3 * time.Millisecond):
			}
			for _, name := range []string{"pool", "book"} {
				st, err := c.Stats(ctx, name)
				if err != nil {
					continue
				}
				if st.Outstanding > st.Capacity {
					setViolation(fmt.Sprintf("%s: Outstanding %d > Capacity %d", name, st.Outstanding, st.Capacity))
				}
				if st.Phantoms != 0 {
					setViolation(fmt.Sprintf("%s: %d phantom grants on a fenced resource", name, st.Phantoms))
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		holder := fmt.Sprintf("c%d", i)
		rng := rand.New(rand.NewSource(seed<<8 + int64(i)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < opsPer; j++ {
				time.Sleep(time.Duration(rng.Intn(6)) * time.Millisecond)
				switch rng.Intn(10) {
				case 0, 1: // immediate acquire (EMFILE regime)
					l, err := c.Acquire(ctx, gridd.AcquireRequest{
						Resource: "pool", Holder: holder, Units: 1 + rng.Int63n(2),
					})
					if err != nil {
						tally.note(func(p *propTally) { p.rejects++ })
						continue
					}
					tenure(ctx, c, rng, l, tally)
				case 2: // chaos: a refused "chaos" acquire crashes the pool
					l, err := c.Acquire(ctx, gridd.AcquireRequest{
						Resource: "pool", Holder: "chaos", Units: propPoolCap,
					})
					if err != nil {
						tally.note(func(p *propTally) { p.crashes++ })
						continue
					}
					tenure(ctx, c, rng, l, tally)
				case 3, 4: // reserve + claim on the admission book
					rr, err := c.Reserve(ctx, gridd.ReserveRequest{
						Resource: "book", Holder: holder, Units: 1 + rng.Int63n(2),
						TenureNS: int64(30 * time.Millisecond),
					})
					if err != nil {
						tally.note(func(p *propTally) { p.rejects++ })
						continue
					}
					tally.note(func(p *propTally) { p.bookings++ })
					l, err := c.Claim(ctx, gridd.ClaimRequest{Resource: "book", BookingID: rr.BookingID})
					if err != nil {
						continue // lapsed under load: the window was short
					}
					time.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
					_ = l.Release(ctx)
				default: // parked acquire (long poll)
					l, err := c.Acquire(ctx, gridd.AcquireRequest{
						Resource: "pool", Holder: holder, Units: 1 + rng.Int63n(2),
						WaitNS: int64(300 * time.Millisecond),
					})
					if err != nil {
						tally.note(func(p *propTally) { p.rejects++ })
						continue
					}
					tenure(ctx, c, rng, l, tally)
				}
			}
		}()
	}
	wg.Wait()
	close(pollStop)
	<-pollDone

	// Quiescence: watchdogs fire within one quantum; the book's
	// window-fenced claims within their 30ms windows.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		p, _ := c.Stats(ctx, "pool")
		b, _ := c.Stats(ctx, "book")
		if p.Outstanding == 0 && b.Outstanding == 0 {
			break
		}
		time.Sleep(3 * time.Millisecond)
	}

	vmu.Lock()
	msg := violation
	vmu.Unlock()
	if msg != "" {
		return tally, msg
	}
	for _, name := range []string{"pool", "book"} {
		st, err := c.Stats(ctx, name)
		if err != nil {
			return tally, fmt.Sprintf("%s: stats: %v", name, err)
		}
		if st.Outstanding != 0 {
			return tally, fmt.Sprintf("%s: %d units outstanding at quiescence", name, st.Outstanding)
		}
		if st.Grants != st.Releases+st.Revokes {
			return tally, fmt.Sprintf("%s: conservation: %d grants != %d releases + %d revokes",
				name, st.Grants, st.Releases, st.Revokes)
		}
		if st.Phantoms != 0 || st.DoubleFrees != 0 {
			return tally, fmt.Sprintf("%s: fenced resource corrupted: %+v", name, st)
		}
	}

	// FIFO, reconstructed purely from wire-visible sequence numbers.
	tally.mu.Lock()
	leases := append([]gridd.LeaseReply(nil), tally.leases...)
	tally.mu.Unlock()
	sort.Slice(leases, func(i, j int) bool { return leases[i].GrantSeq < leases[j].GrantSeq })
	var lastW uint64
	for _, l := range leases {
		if l.WaiterSeq == 0 {
			continue // immediate grant: not part of the parked order
		}
		if l.WaiterSeq <= lastW {
			return tally, fmt.Sprintf("FIFO violated: grant %d has waiter seq %d after %d",
				l.GrantSeq, l.WaiterSeq, lastW)
		}
		lastW = l.WaiterSeq
	}
	return tally, ""
}

// tenure holds a granted lease in a randomized style — wedge past the
// watchdog, renew mid-tenure, duplicate the release, or release at
// once — and records how it ended.
func tenure(ctx context.Context, c *griddclient.Client, rng *rand.Rand, l *griddclient.Lease, tally *propTally) {
	tally.note(func(p *propTally) {
		p.granted++
		p.leases = append(p.leases, l.LeaseReply)
		if l.WaiterSeq > 0 {
			p.parked++
		}
	})
	switch rng.Intn(4) {
	case 0: // wedge: overstay; the watchdog revokes, the release fences
		time.Sleep(propQuantum + propQuantum/2)
	case 1: // renew mid-tenure, then hold a little longer
		time.Sleep(propQuantum / 3)
		_, _ = l.Renew(ctx, 0)
		time.Sleep(time.Duration(rng.Intn(8)) * time.Millisecond)
	case 2: // hold a random fraction of the quantum
		time.Sleep(time.Duration(rng.Int63n(int64(propQuantum / 2))))
	case 3: // release immediately
	}
	err := l.Release(ctx)
	if errors.Is(err, core.ErrStale) {
		tally.note(func(p *propTally) { p.stales++ })
	}
	if rng.Intn(3) == 0 {
		// The duplicated release: the fenced daemon must answer stale,
		// never apply it (checked globally via DoubleFrees == 0).
		if err := l.Release(ctx); errors.Is(err, core.ErrStale) {
			tally.note(func(p *propTally) { p.stales++ })
		}
	}
}

func TestPropWireFIFOAndConservation(t *testing.T) {
	const clients, opsPer = 4, 5
	var parked, granted, stales, rejects, crashes, bookings int64
	for seed := int64(1); seed <= 25; seed++ {
		tally, msg := griddPropRun(seed, clients, opsPer)
		if msg != "" {
			sc, so, sm := shrinkGriddProp(seed, clients, opsPer, msg)
			t.Fatalf("seed %d: %d clients x %d ops fail (shrunk from %dx%d): %s",
				seed, sc, so, clients, opsPer, sm)
		}
		parked += tally.parked
		granted += tally.granted
		stales += tally.stales
		rejects += tally.rejects
		crashes += tally.crashes
		bookings += tally.bookings
	}
	// The properties are only as strong as the schedules that reach
	// them: the battery must actually have parked, fenced, rejected,
	// crashed, and booked somewhere across the 25 seeds.
	if parked == 0 || granted == 0 || stales == 0 || rejects == 0 || crashes == 0 || bookings == 0 {
		t.Fatalf("vacuous coverage: parked=%d granted=%d stales=%d rejects=%d crashes=%d bookings=%d",
			parked, granted, stales, rejects, crashes, bookings)
	}
}

// shrinkGriddProp reduces ops-per-client, then client count, as far as
// the failure persists, returning the smallest failing configuration
// and its message (internal/lease's prefix shrinker, re-aimed at the
// socket; re-runs are wall-clock schedules, so the shrink stops at the
// first configuration that happens to pass).
func shrinkGriddProp(seed int64, clients, opsPer int, msg string) (int, int, string) {
	for opsPer > 1 {
		if _, m := griddPropRun(seed, clients, opsPer-1); m != "" {
			opsPer, msg = opsPer-1, m
		} else {
			break
		}
	}
	for clients > 1 {
		if _, m := griddPropRun(seed, clients-1, opsPer); m != "" {
			clients, msg = clients-1, m
		} else {
			break
		}
	}
	return clients, opsPer, msg
}
