// Package gridd is the networked service backend: a wall-clock HTTP
// daemon hosting the paper's contended resources — the schedd FD
// table, fsbuffer occupancy, replica service lanes — behind a small
// JSON wire protocol, so the Ethernet discipline's client code runs
// against a real socket instead of an in-process substrate.
//
// The server re-hosts internal/lease.Manager's semantics on the wall
// clock: FIFO counting semaphores granting epoch-fenced leases with a
// server-side watchdog, an interval admission book (Reserve/Claim),
// monotone fencing so late or duplicated operations land as
// core.ErrStale over the wire, and an optional housekeeping loop whose
// failure crashes the resource and revokes every grant — the broadcast
// jam of the submit scenario. Graceful shutdown mirrors the live
// engine's drain: new work is refused with a typed retriable error,
// in-flight grants are waited out, and whatever remains is revoked in
// (deadline, seq) order, exactly as live.Engine.Run fires leftover
// watchdogs.
package gridd

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// ResourceConfig shapes one hosted resource; see CreateRequest for
// field semantics (this is its internal, time.Duration form).
type ResourceConfig struct {
	Name              string
	Capacity          int64
	Quantum           time.Duration // default tenure; 0 = unlimited
	Unfenced          bool
	HousekeepUnits    int64
	HousekeepInterval time.Duration
	RestartDelay      time.Duration
	CrashHolder       string
}

// Config shapes a Server.
type Config struct {
	// Resources are created at construction; more can be added over
	// the wire (POST /resources).
	Resources []ResourceConfig
}

// Server hosts the resources. One mutex guards all state — the same
// monitor discipline as the live engine — and every timer callback
// takes it before touching anything.
type Server struct {
	mu       sync.Mutex
	start    time.Time
	res      map[string]*resource
	order    []string // creation order, for deterministic iteration
	seq      uint64   // server-wide grant sequence (drain total order)
	draining bool
	closed   bool

	reg *obs.Registry
	// scopes are sampled by /metrics; appended by registerObs, which by
	// the lock-ordering rule documented there never runs under mu.
	scopes []*obs.Scope
}

// NewServer builds a server hosting cfg.Resources.
func NewServer(cfg Config) *Server {
	s := &Server{
		start: time.Now(),
		res:   make(map[string]*resource),
		reg:   obs.New(),
	}
	for _, rc := range cfg.Resources {
		s.mu.Lock()
		s.createLocked(rc)
		s.mu.Unlock()
		s.registerObs(rc.Name)
	}
	return s
}

// nowNS is the daemon clock: real ns since construction.
func (s *Server) nowNS() int64 { return int64(time.Since(s.start)) }

// resource is one hosted FIFO counting semaphore with fenced leases.
type resource struct {
	srv *Server
	cfg ResourceConfig

	capacity int64
	// inUse is the admission bookkeeping. On a fenced resource it
	// always equals outstanding; on an unfenced one a duplicated
	// release corrupts it low, and the gap is what phantom grants
	// measure.
	inUse          int64
	outstanding    int64 // ground truth: sum of live grants' units
	maxOutstanding int64

	epoch   uint64 // next fencing epoch to mint
	fence   uint64 // highest retired epoch
	leaseID uint64

	grants  map[uint64]*grant
	waiters []*waiter
	wseq    uint64

	down        bool
	downUntil   time.Time
	hkTimer     *time.Timer
	restartTime *time.Timer

	bookings map[uint64]*booking
	bookID   uint64

	st      StatsReply // counters only; gauges filled on read
	holders map[string]*holderLedger
}

// grant is one live lease.
type grant struct {
	id       uint64
	holder   string
	units    int64
	epoch    uint64
	quantum  time.Duration
	deadline time.Time // zero = unlimited tenure
	seq      uint64    // server-wide grant order (drain tiebreak)
	wseq     uint64    // FIFO position if the acquire parked; 0 = immediate
	watchdog *time.Timer
	done     bool
}

// waiter is one parked acquire (a long poll).
type waiter struct {
	holder   string
	units    int64
	quantum  time.Duration
	seq      uint64 // FIFO position
	ch       chan waitResult
	canceled bool
}

type waitResult struct {
	lease *LeaseReply
	code  string // error code when lease == nil
	retry time.Duration
}

// booking is one admission-book window.
type booking struct {
	id         uint64
	holder     string
	units      int64
	start, end time.Time
	claimed    bool
	canceled   bool
}

// holderLedger is the per-holder fairness/starvation accounting, the
// wire-side analogue of lease.Manager's ledger.
type holderLedger struct {
	grants, rejects, revokes int64
	waiting                  bool
	since                    time.Time
	maxWait                  time.Duration
}

// createLocked creates or resizes a resource. Only capacity changes on
// an existing resource; everything else is fixed at first creation so
// re-creates are idempotent.
func (s *Server) createLocked(rc ResourceConfig) *resource {
	if r, ok := s.res[rc.Name]; ok {
		if rc.Capacity > 0 && rc.Capacity != r.capacity {
			r.capacity = rc.Capacity
			r.grantWaiters()
		}
		return r
	}
	r := &resource{
		srv:      s,
		cfg:      rc,
		capacity: rc.Capacity,
		grants:   make(map[uint64]*grant),
		bookings: make(map[uint64]*booking),
		holders:  make(map[string]*holderLedger),
	}
	r.st.Resource = rc.Name
	s.res[rc.Name] = r
	s.order = append(s.order, rc.Name)
	if rc.HousekeepInterval > 0 && !s.draining {
		r.armHousekeeping()
	}
	return r
}

// ledger returns (creating if needed) the holder's ledger row.
func (r *resource) ledger(holder string) *holderLedger {
	h := r.holders[holder]
	if h == nil {
		h = &holderLedger{}
		r.holders[holder] = h
	}
	return h
}

// noteWant starts (or continues) a holder's starvation clock.
func (h *holderLedger) noteWant(now time.Time) {
	if !h.waiting {
		h.waiting = true
		h.since = now
	}
}

// endWait stops the starvation clock and records the excursion.
func (h *holderLedger) endWait(now time.Time) {
	if !h.waiting {
		return
	}
	h.waiting = false
	if w := now.Sub(h.since); w > h.maxWait {
		h.maxWait = w
	}
}

// fits reports whether units can be granted right now under the
// bookkeeping view.
func (r *resource) fits(units int64) bool { return r.inUse+units <= r.capacity }

// shortfall is how many units over capacity a request is (>= 1 when
// not fitting).
func (r *resource) shortfall(units int64) int64 {
	sf := r.inUse + units - r.capacity
	if sf < 1 {
		sf = 1
	}
	return sf
}

// grantLocked admits units to holder: mints the lease, arms the
// watchdog, and maintains the ground-truth ledger. Server lock held.
func (r *resource) grantLocked(holder string, units int64, quantum time.Duration, wseq uint64) *LeaseReply {
	s := r.srv
	r.inUse += units
	r.outstanding += units
	if r.outstanding > r.maxOutstanding {
		r.maxOutstanding = r.outstanding
	}
	if r.outstanding > r.capacity {
		// A fenced resource can never get here: inUse == outstanding
		// and grants are admission-checked. An unfenced one corrupted
		// by a duplicated release just allocated units it does not
		// have — the phantom grant the ablation counts.
		r.st.Phantoms++
	}
	r.leaseID++
	r.epoch++
	s.seq++
	g := &grant{
		id:      r.leaseID,
		holder:  holder,
		units:   units,
		epoch:   r.epoch,
		quantum: quantum,
		seq:     s.seq,
		wseq:    wseq,
	}
	if quantum > 0 {
		g.deadline = time.Now().Add(quantum)
		id := g.id
		g.watchdog = time.AfterFunc(quantum, func() { r.expire(id) })
	}
	r.grants[g.id] = g
	r.st.Grants++
	h := r.ledger(holder)
	h.grants++
	h.endWait(time.Now())
	rep := &LeaseReply{
		Resource:  r.cfg.Name,
		LeaseID:   g.id,
		Epoch:     g.epoch,
		Units:     units,
		QuantumNS: int64(quantum),
		WaiterSeq: wseq,
		GrantSeq:  g.seq,
	}
	if !g.deadline.IsZero() {
		rep.DeadlineNS = int64(g.deadline.Sub(s.start))
	}
	return rep
}

// retireLocked removes a live grant, advancing the fence on a fenced
// resource. Server lock held.
func (r *resource) retireLocked(g *grant) {
	g.done = true
	if g.watchdog != nil {
		g.watchdog.Stop()
	}
	delete(r.grants, g.id)
	r.outstanding -= g.units
	r.inUse -= g.units
	if r.inUse < 0 {
		r.inUse = 0 // unfenced corruption can undershoot
	}
	if !r.cfg.Unfenced && g.epoch > r.fence {
		r.fence = g.epoch
	}
}

// grantWaiters grants parked acquires strictly in FIFO order: the head
// must fit before anyone behind it is considered, which is what makes
// WaiterSeq/GrantSeq a checkable FIFO proof. Server lock held.
func (r *resource) grantWaiters() {
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if w.canceled {
			r.waiters = r.waiters[1:]
			continue
		}
		if r.down || !r.fits(w.units) {
			return
		}
		r.waiters = r.waiters[1:]
		rep := r.grantLocked(w.holder, w.units, w.quantum, w.seq)
		w.ch <- waitResult{lease: rep}
	}
}

// flushWaiters fails every parked acquire with code. Server lock held.
func (r *resource) flushWaiters(code string, retry time.Duration) {
	for _, w := range r.waiters {
		if !w.canceled {
			w.canceled = true
			w.ch <- waitResult{code: code, retry: retry}
		}
	}
	r.waiters = r.waiters[:0]
}

// expire is the watchdog firing for lease id: revoke the tenure and
// reclaim its units, exactly as lease.Manager's watchdog does.
func (r *resource) expire(id uint64) {
	s := r.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := r.grants[id]
	if !ok || g.done {
		return
	}
	r.revokeLocked(g)
	r.grantWaiters()
}

// revokeLocked force-retires a grant, charging the holder. Server
// lock held.
func (r *resource) revokeLocked(g *grant) {
	r.retireLocked(g)
	r.st.Revokes++
	r.ledger(g.holder).revokes++
}

// crashLocked is the broadcast jam: the resource goes down for
// RestartDelay, every live grant is revoked (their holders discover it
// as ErrStale on their next renew or release), and parked acquires
// fail fast with CodeDown. Server lock held.
func (r *resource) crashLocked() {
	if r.down {
		return
	}
	r.st.Crashes++
	r.down = true
	delay := r.cfg.RestartDelay
	if delay <= 0 {
		delay = time.Second
	}
	r.downUntil = time.Now().Add(delay)
	gs := r.sortedGrants()
	for _, g := range gs {
		r.revokeLocked(g)
	}
	r.flushWaiters(CodeDown, delay)
	r.restartTime = time.AfterFunc(delay, func() {
		r.srv.mu.Lock()
		defer r.srv.mu.Unlock()
		r.down = false
		r.restartTime = nil
		r.grantWaiters()
	})
}

// sortedGrants returns the live grants in (deadline, seq) order —
// unlimited tenures (zero deadline) last, by seq — the same order the
// live engine drains leftover timers in.
func (r *resource) sortedGrants() []*grant {
	gs := make([]*grant, 0, len(r.grants))
	for _, g := range r.grants {
		gs = append(gs, g)
	}
	sortGrants(gs)
	return gs
}

func sortGrants(gs []*grant) {
	sort.Slice(gs, func(i, j int) bool {
		di, dj := gs[i].deadline, gs[j].deadline
		switch {
		case di.IsZero() != dj.IsZero():
			return !di.IsZero() // real deadlines before unlimited
		case !di.Equal(dj):
			return di.Before(dj)
		}
		return gs[i].seq < gs[j].seq
	})
}

// armHousekeeping starts the periodic housekeeping loop: every
// interval the daemon needs HousekeepUnits free units transiently;
// not finding them is the overload signal that crashes the resource.
func (r *resource) armHousekeeping() {
	iv := r.cfg.HousekeepInterval
	r.hkTimer = time.AfterFunc(iv, func() {
		s := r.srv
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.draining || s.closed {
			return
		}
		if !r.down && !r.fits(r.cfg.HousekeepUnits) {
			r.crashLocked()
		}
		r.armHousekeeping()
	})
}

// peakLoad computes the admission book's maximum committed units over
// [start, end): the classic boundary sweep over live bookings. Server
// lock held.
func (r *resource) peakLoad(start, end time.Time) int64 {
	now := time.Now()
	var peak int64
	// Evaluate at each booking's start boundary plus the window start.
	points := []time.Time{start}
	for _, b := range r.bookings {
		if b.canceled || !b.end.After(now) {
			continue
		}
		if b.start.After(start) && b.start.Before(end) {
			points = append(points, b.start)
		}
	}
	for _, at := range points {
		var load int64
		for _, b := range r.bookings {
			if b.canceled || !b.end.After(now) {
				continue
			}
			if b.start.After(at) || !b.end.After(at) {
				continue
			}
			load += b.units
		}
		if load > peak {
			peak = load
		}
	}
	return peak
}

// DrainRecord is one forced revocation during Shutdown, in firing
// order — the shutdown analogue of the live engine's timer drain.
type DrainRecord struct {
	Resource   string
	LeaseID    uint64
	Holder     string
	DeadlineNS int64 // 0 = unlimited tenure
	Seq        uint64
}

// Shutdown drains the server: new acquires and reservations are
// refused with CodeDraining (a typed, retriable verdict), parked
// acquires are flushed, housekeeping stops, and in-flight grants are
// given until ctx expires to land their releases. Grants still live
// at the deadline have their watchdogs fired in (deadline, seq) order
// — matching live.Engine.Run's drain semantics — and the firing order
// is returned so tests can assert it. Idempotent; safe to call while
// handlers are in flight.
func (s *Server) Shutdown(ctx context.Context) []DrainRecord {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for _, name := range s.order {
		r := s.res[name]
		r.flushWaiters(CodeDraining, 0)
		if r.hkTimer != nil {
			r.hkTimer.Stop()
			r.hkTimer = nil
		}
		if r.restartTime != nil {
			r.restartTime.Stop()
			r.restartTime = nil
			r.down = false
		}
	}
	s.mu.Unlock()

	// Wait for in-flight grants to drain (their releases and watchdogs
	// still run), polling on the wall clock.
	for {
		s.mu.Lock()
		var tot int64
		for _, r := range s.res {
			tot += r.outstanding
		}
		s.mu.Unlock()
		if tot == 0 {
			break
		}
		select {
		case <-ctx.Done():
		case <-time.After(2 * time.Millisecond):
			continue
		}
		break
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Fire what remains, in (deadline, seq) order across resources:
	// seq is server-wide, so the order is total.
	var all []*grant
	where := make(map[*grant]*resource)
	for _, name := range s.order {
		r := s.res[name]
		for _, g := range r.grants {
			all = append(all, g)
			where[g] = r
		}
	}
	sortGrants(all)
	var recs []DrainRecord
	for _, g := range all {
		r := where[g]
		rec := DrainRecord{Resource: r.cfg.Name, LeaseID: g.id, Holder: g.holder, Seq: g.seq}
		if !g.deadline.IsZero() {
			rec.DeadlineNS = int64(g.deadline.Sub(s.start))
		}
		recs = append(recs, rec)
		r.revokeLocked(g)
	}
	s.closed = true
	return recs
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
