package gridd

// The gridd wire protocol: JSON bodies shared by the daemon's HTTP
// handlers and the client library (internal/griddclient). The protocol
// speaks *real* durations in nanoseconds — the daemon runs on the wall
// clock and has no idea its clients compress time; a live-backend
// client converts virtual tenures with its engine timescale before
// they cross the socket (milliseconds would be too coarse: at
// timescale 2000 one virtual second is half a real millisecond).
//
// Endpoints:
//
//	GET  /probe/{name}   carrier sense: capacity, in-use, queue (cheap)
//	POST /acquire        lease units; WaitNS>0 parks FIFO (long poll)
//	POST /release        return a lease (fenced: dup/late -> stale)
//	POST /renew          extend a tenure before the watchdog fires
//	POST /reserve        book an admission window (interval book)
//	POST /claim          convert a booking into a window-fenced lease
//	POST /cancel         forfeit an unclaimed booking
//	POST /resources      create (or resize) a resource
//	GET  /stats/{name}   counters + per-holder starvation ledger
//	GET  /metrics        Prometheus text (internal/obs)
//	GET  /healthz        liveness + draining status
//
// Error bodies are ErrorReply; the client library rebuilds the typed
// errors (core.StaleError, core.RejectedError, ErrUnavailable) from
// the Code field, so errors.Is(err, core.ErrStale) holds across the
// socket exactly as it does in-process.

// Error codes carried in ErrorReply.Code.
const (
	// CodeBusy: an immediate-mode acquire found no free units (or a
	// FIFO queue it may not jump) — the EMFILE analogue. HTTP 409.
	CodeBusy = "busy"
	// CodeDown: the resource crashed and is restarting; RetryAfterNS
	// says when. HTTP 503.
	CodeDown = "down"
	// CodeDraining: the daemon is shutting down gracefully; the error
	// is retriable against a peer. HTTP 503.
	CodeDraining = "draining"
	// CodeStale: the operation carried a fencing epoch the resource has
	// moved past (late/duplicate release or renew). HTTP 410.
	CodeStale = "stale"
	// CodeRejected: the admission book refused the window outright;
	// Shortfall says by how much. HTTP 409.
	CodeRejected = "rejected"
	// CodeLapsed: a claim arrived after its booking's window closed.
	// HTTP 410.
	CodeLapsed = "lapsed"
	// CodeEarly: a claim arrived before its booking's window opened.
	// HTTP 409.
	CodeEarly = "early"
	// CodeUnknown: no such resource, lease, or booking. HTTP 404.
	CodeUnknown = "unknown"
	// CodeBadRequest: malformed body or parameters. HTTP 400.
	CodeBadRequest = "bad-request"
)

// ErrorReply is the body of every non-2xx response.
type ErrorReply struct {
	Code    string `json:"code"`
	Message string `json:"message,omitempty"`
	// Shortfall accompanies busy/rejected: units over capacity.
	Shortfall int64 `json:"shortfall,omitempty"`
	// Epoch and Fence accompany stale, reconstructing core.StaleError.
	Epoch uint64 `json:"epoch,omitempty"`
	Fence uint64 `json:"fence,omitempty"`
	// RetryAfterNS accompanies down/draining.
	RetryAfterNS int64 `json:"retry_after_ns,omitempty"`
}

// CreateRequest creates a resource, or resizes an existing one (only
// Capacity may change after creation; the other fields are fixed at
// first creation, so a re-create from a reconnecting client is
// idempotent).
type CreateRequest struct {
	Name     string `json:"name"`
	Capacity int64  `json:"capacity"`
	// QuantumNS is the default lease tenure; 0 means unlimited (no
	// watchdog — the unleased ablation).
	QuantumNS int64 `json:"quantum_ns,omitempty"`
	// Unfenced disables epoch fencing: duplicate releases double-free,
	// which is exactly what the fenced-vs-unfenced ablation measures.
	Unfenced bool `json:"unfenced,omitempty"`
	// Housekeeping: the daemon periodically needs HousekeepUnits free
	// units for its own transient work (the schedd's housekeeping FDs);
	// failing to find them crashes the resource for RestartDelayNS,
	// revoking every grant — the broadcast jam.
	HousekeepUnits      int64 `json:"housekeep_units,omitempty"`
	HousekeepIntervalNS int64 `json:"housekeep_interval_ns,omitempty"`
	RestartDelayNS      int64 `json:"restart_delay_ns,omitempty"`
	// CrashHolder, when non-empty, names the holder whose rejected
	// immediate acquire crashes the resource — the schedd-side accept
	// failure of the submit scenario.
	CrashHolder string `json:"crash_holder,omitempty"`
}

// ProbeReply is the carrier-sense observation.
type ProbeReply struct {
	Resource string `json:"resource"`
	Capacity int64  `json:"capacity"`
	InUse    int64  `json:"in_use"`
	Free     int64  `json:"free"`
	Queue    int    `json:"queue"`
	Down     bool   `json:"down,omitempty"`
	Draining bool   `json:"draining,omitempty"`
}

// AcquireRequest leases Units of Resource for Holder. WaitNS == 0 is
// the EMFILE regime: an immediate verdict, busy if the units are not
// free right now (or the FIFO queue is non-empty — no jumping).
// WaitNS > 0 parks the request server-side in FIFO order for at most
// that long (a long poll).
type AcquireRequest struct {
	Resource string `json:"resource"`
	Holder   string `json:"holder"`
	Units    int64  `json:"units"`
	WaitNS   int64  `json:"wait_ns,omitempty"`
	// QuantumNS overrides the resource's default tenure for this lease.
	QuantumNS int64 `json:"quantum_ns,omitempty"`
}

// LeaseReply is a granted lease: the epoch fences every later
// operation on it, and DeadlineNS (daemon clock, ns since start; 0 =
// unlimited) is when the server-side watchdog revokes it unless
// renewed.
type LeaseReply struct {
	Resource   string `json:"resource"`
	LeaseID    uint64 `json:"lease_id"`
	Epoch      uint64 `json:"epoch"`
	Units      int64  `json:"units"`
	QuantumNS  int64  `json:"quantum_ns,omitempty"`
	DeadlineNS int64  `json:"deadline_ns,omitempty"`
	// WaiterSeq is the FIFO position assigned when the acquire parked
	// (0 = granted immediately); GrantSeq is the monotone grant order.
	// Together they make the daemon's FIFO discipline checkable from
	// outside the socket: sorted by GrantSeq, parked grants' WaiterSeqs
	// must be increasing.
	WaiterSeq uint64 `json:"waiter_seq,omitempty"`
	GrantSeq  uint64 `json:"grant_seq"`
}

// ReleaseRequest returns a lease. Units rides along so an unfenced
// daemon replaying a duplicated release has something to double-free;
// a fenced daemon ignores it and trusts its own ledger.
type ReleaseRequest struct {
	Resource string `json:"resource"`
	LeaseID  uint64 `json:"lease_id"`
	Epoch    uint64 `json:"epoch"`
	Units    int64  `json:"units,omitempty"`
}

// RenewRequest extends a lease's tenure by ForNS (0 = one default
// quantum) from now.
type RenewRequest struct {
	Resource string `json:"resource"`
	LeaseID  uint64 `json:"lease_id"`
	Epoch    uint64 `json:"epoch"`
	ForNS    int64  `json:"for_ns,omitempty"`
}

// RenewReply reports the new deadline (daemon clock).
type RenewReply struct {
	DeadlineNS int64 `json:"deadline_ns"`
}

// ReserveRequest books Units over the window [now+StartNS,
// now+StartNS+TenureNS) against the resource's admission book.
type ReserveRequest struct {
	Resource string `json:"resource"`
	Holder   string `json:"holder"`
	Units    int64  `json:"units"`
	StartNS  int64  `json:"start_ns"`
	TenureNS int64  `json:"tenure_ns"`
}

// ReserveReply is a granted booking; Start/End are daemon-clock ns.
type ReserveReply struct {
	BookingID uint64 `json:"booking_id"`
	StartNS   int64  `json:"start_ns"`
	EndNS     int64  `json:"end_ns"`
}

// ClaimRequest converts a booking into a lease fenced at the window's
// end: the returned lease's deadline is the booking's EndNS, however
// late the claim arrives inside the window.
type ClaimRequest struct {
	Resource  string `json:"resource"`
	BookingID uint64 `json:"booking_id"`
}

// CancelRequest forfeits an unclaimed booking, refunding its window.
type CancelRequest struct {
	Resource  string `json:"resource"`
	BookingID uint64 `json:"booking_id"`
}

// HolderStats is one holder's row in the per-resource ledger.
type HolderStats struct {
	Holder  string `json:"holder"`
	Grants  int64  `json:"grants"`
	Rejects int64  `json:"rejects"`
	Revokes int64  `json:"revokes"`
	// MaxWaitNS is the holder's longest continuous want (real ns):
	// from first unsatisfied acquire (parked or rejected) to grant.
	MaxWaitNS int64 `json:"max_wait_ns"`
	Waiting   bool  `json:"waiting,omitempty"`
}

// StatsReply is the full accounting for one resource.
type StatsReply struct {
	Resource string `json:"resource"`
	Capacity int64  `json:"capacity"`
	InUse    int64  `json:"in_use"`
	// Outstanding is the ground truth: the sum of live grants' units,
	// maintained independently of the (corruptible, when unfenced)
	// InUse bookkeeping. MaxOutstanding is its high-water mark.
	Outstanding    int64 `json:"outstanding"`
	MaxOutstanding int64 `json:"max_outstanding"`
	// Phantoms counts grants admitted while Outstanding exceeded
	// Capacity — impossible on a fenced resource, the measured failure
	// mode of an unfenced one under a duplicating channel.
	Phantoms    int64 `json:"phantoms"`
	DoubleFrees int64 `json:"double_frees"`
	Grants      int64 `json:"grants"`
	Releases    int64 `json:"releases"`
	Rejects     int64 `json:"rejects"`
	Revokes     int64 `json:"revokes"`
	Stales      int64 `json:"stales"`
	Timeouts    int64 `json:"timeouts"`
	Crashes     int64 `json:"crashes"`
	Admits      int64 `json:"admits"`
	BookRejects int64 `json:"book_rejects"`
	Lapses      int64 `json:"lapses"`
	// LongestWaitNS is the longest want currently in progress;
	// MaxWaitNS the longest ever (real ns).
	LongestWaitNS int64         `json:"longest_wait_ns"`
	MaxWaitNS     int64         `json:"max_wait_ns"`
	Holders       []HolderStats `json:"holders,omitempty"`
	Down          bool          `json:"down,omitempty"`
	Draining      bool          `json:"draining,omitempty"`
}
