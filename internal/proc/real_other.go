//go:build !unix

package proc

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/ftsh/interp"
)

// RealRunner requires a POSIX platform: ftsh's cancellation semantics
// depend on process sessions (§4 notes that Windows NT job objects
// would allow an even more reliable implementation, but this repository
// implements the paper's POSIX design). On other platforms every Run
// fails with ErrUnsupported.
type RealRunner struct {
	Grace    time.Duration
	LookPath func(name string) (string, error)
}

// DefaultGrace is the SIGTERM→SIGKILL delay on POSIX platforms.
const DefaultGrace = 5 * time.Second

// ErrUnsupported reports that real process execution is unavailable.
var ErrUnsupported = errors.New("proc: real process execution requires a unix platform")

// ExitError mirrors the unix implementation's type.
type ExitError struct {
	Name string
	Code int
	Err  error
}

// Error implements the error interface.
func (e *ExitError) Error() string { return e.Name }

// Unwrap exposes the underlying error.
func (e *ExitError) Unwrap() error { return e.Err }

// Run implements interp.Runner by failing.
func (r *RealRunner) Run(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
	return ErrUnsupported
}
