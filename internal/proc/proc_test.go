package proc

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ftsh/interp"
	"repro/internal/sim"
)

func TestMapRunnerDispatch(t *testing.T) {
	m := NewMapRunner()
	called := false
	m.Register("wget", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		called = true
		if cmd.Args[0] != "http://x/y" {
			t.Errorf("args = %v", cmd.Args)
		}
		return nil
	})
	rt := core.NewReal(1)
	err := m.Run(context.Background(), rt, &interp.Command{Name: "wget", Args: []string{"http://x/y"}})
	if err != nil || !called {
		t.Fatalf("err=%v called=%v", err, called)
	}
}

func TestMapRunnerUnknownCommand(t *testing.T) {
	m := NewMapRunner()
	rt := core.NewReal(1)
	err := m.Run(context.Background(), rt, &interp.Command{Name: "nope"})
	if err == nil || !strings.Contains(err.Error(), "command not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestMapRunnerNames(t *testing.T) {
	m := NewMapRunner()
	m.Register("b", nil)
	m.Register("a", nil)
	names := m.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestMapRunnerHonorsCanceledContext(t *testing.T) {
	m := NewMapRunner()
	m.Register("x", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		t.Error("command ran despite canceled context")
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Run(ctx, core.NewReal(1), &interp.Command{Name: "x"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapRunnerInsideSimulation(t *testing.T) {
	m := NewMapRunner()
	m.Register("slow", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		return rt.Sleep(ctx, 42*time.Second)
	})
	e := sim.New(1)
	e.Spawn("client", func(p *sim.Proc) {
		if err := m.Run(e.Context(), p, &interp.Command{Name: "slow"}); err != nil {
			t.Errorf("run: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Elapsed() != 42*time.Second {
		t.Fatalf("elapsed = %v", e.Elapsed())
	}
}

// The RealRunner tests execute real processes; they are skipped when the
// basic shell utilities are unavailable.

func realRunner(t *testing.T) *RealRunner {
	t.Helper()
	return &RealRunner{Grace: 500 * time.Millisecond}
}

func TestRealRunnerSuccessAndOutput(t *testing.T) {
	var out bytes.Buffer
	err := realRunner(t).Run(context.Background(), core.NewReal(1), &interp.Command{
		Name:   "echo",
		Args:   []string{"hello", "world"},
		Stdout: &out,
	})
	if err != nil {
		t.Skipf("echo unavailable: %v", err)
	}
	if got := out.String(); got != "hello world\n" {
		t.Fatalf("out = %q", got)
	}
}

func TestRealRunnerExitCode(t *testing.T) {
	err := realRunner(t).Run(context.Background(), core.NewReal(1), &interp.Command{Name: "false"})
	if err == nil {
		t.Fatal("false succeeded")
	}
	var ee *ExitError
	if !errors.As(err, &ee) {
		t.Skipf("no ExitError (false unavailable?): %v", err)
	}
	if ee.Code != 1 {
		t.Fatalf("code = %d", ee.Code)
	}
}

func TestRealRunnerCommandNotFound(t *testing.T) {
	err := realRunner(t).Run(context.Background(), core.NewReal(1), &interp.Command{Name: "definitely-not-a-command-xyz"})
	if err == nil {
		t.Fatal("expected error")
	}
	var ee *ExitError
	if errors.As(err, &ee) {
		t.Fatal("not-found must not be an ExitError (distinguishes case 4 of §2)")
	}
}

func TestRealRunnerStdin(t *testing.T) {
	var out bytes.Buffer
	err := realRunner(t).Run(context.Background(), core.NewReal(1), &interp.Command{
		Name:   "cat",
		Stdin:  strings.NewReader("pipe me"),
		Stdout: &out,
	})
	if err != nil {
		t.Skipf("cat unavailable: %v", err)
	}
	if out.String() != "pipe me" {
		t.Fatalf("out = %q", out.String())
	}
}

func TestRealRunnerKillsSessionOnTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := realRunner(t).Run(ctx, core.NewReal(1), &interp.Command{
		Name: "sleep",
		Args: []string{"30"},
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("sleep survived its budget")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("kill took %v; the session was not terminated promptly", elapsed)
	}
}

func TestRealRunnerKillsGrandchildren(t *testing.T) {
	// sh spawns a grandchild sleep; the whole session must die at the
	// deadline, not just the sh.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := realRunner(t).Run(ctx, core.NewReal(1), &interp.Command{
		Name: "sh",
		Args: []string{"-c", "sleep 30 & wait"},
	})
	if err == nil {
		t.Fatal("session survived")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("took %v: grandchild was not killed with the session", elapsed)
	}
}

func TestRealRunnerThroughInterpreter(t *testing.T) {
	// End-to-end: the real shell pipeline — parser, interpreter, real
	// processes, variable capture.
	var out bytes.Buffer
	in := interp.New(interp.Config{
		Runner:  realRunner(t),
		Runtime: core.NewReal(1),
		Stdout:  &out,
		FS:      interp.OSFS{},
	})
	src := `uname -> os
if ${os} .eql. Linux
  echo kernel ok
end
`
	if err := in.RunSource(context.Background(), src); err != nil {
		t.Skipf("uname unavailable: %v", err)
	}
	if !strings.Contains(out.String(), "kernel ok") {
		t.Fatalf("out = %q", out.String())
	}
}

func TestRealRunnerTryTimeoutEndToEnd(t *testing.T) {
	// The paper's headline behaviour on real processes: a try budget
	// kills a hung command and the script moves on to the catch.
	var out bytes.Buffer
	bo := &core.Backoff{Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond, Factor: 2, RandMin: 1, RandMax: 2}
	in := interp.New(interp.Config{
		Runner:  realRunner(t),
		Runtime: core.NewReal(1),
		Stdout:  &out,
		Backoff: bo,
	})
	src := `try for 0.4 seconds
  sleep 30
catch
  echo gave up cleanly
end
`
	start := time.Now()
	if err := in.RunSource(context.Background(), src); err != nil {
		t.Skipf("sleep unavailable: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("try took %v", time.Since(start))
	}
	if !strings.Contains(out.String(), "gave up cleanly") {
		t.Fatalf("out = %q", out.String())
	}
}
