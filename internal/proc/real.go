//go:build unix

package proc

import (
	"context"
	"errors"
	"fmt"
	"os/exec"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ftsh/interp"
)

// RealRunner executes external commands as POSIX processes. Following
// §4, every command is started in its own session (setsid) so that when
// a try budget expires the entire process tree can be terminated: first
// a polite SIGTERM to the process group, then SIGKILL after a grace
// period. This makes ftsh a resource-management tool — a process is "a
// natural unit for cancellation" (§6).
type RealRunner struct {
	// Grace is how long a terminated session gets between SIGTERM and
	// SIGKILL. Zero means DefaultGrace.
	Grace time.Duration
	// LookPath optionally overrides command resolution, for tests.
	LookPath func(name string) (string, error)
}

// DefaultGrace is the SIGTERM→SIGKILL delay.
const DefaultGrace = 5 * time.Second

var _ interp.Runner = (*RealRunner)(nil)

// ExitError reports a command that ran and exited unsuccessfully.
type ExitError struct {
	Name string
	Code int // -1 if terminated by signal
	Err  error
}

// Error implements the error interface.
func (e *ExitError) Error() string {
	return fmt.Sprintf("%s: exit status %d", e.Name, e.Code)
}

// Unwrap exposes the underlying exec error.
func (e *ExitError) Unwrap() error { return e.Err }

// Run implements interp.Runner.
func (r *RealRunner) Run(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	path := cmd.Name
	look := r.LookPath
	if look == nil {
		look = exec.LookPath
	}
	if p, err := look(cmd.Name); err == nil {
		path = p
	} else {
		return fmt.Errorf("%s: %w", cmd.Name, err)
	}

	c := exec.Command(path, cmd.Args...)
	c.Stdin = cmd.Stdin
	c.Stdout = cmd.Stdout
	c.Stderr = cmd.Stderr
	// A new session puts the child and all its descendants in a fresh
	// process group we can signal as a unit.
	c.SysProcAttr = &syscall.SysProcAttr{Setsid: true}

	if err := c.Start(); err != nil {
		return fmt.Errorf("%s: %w", cmd.Name, err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Wait() }()

	select {
	case err := <-done:
		return wrapExit(cmd.Name, err)
	case <-ctx.Done():
		r.killSession(c, done)
		return ctx.Err()
	}
}

// killSession terminates the command's process group: SIGTERM, grace,
// SIGKILL, as in §4.
func (r *RealRunner) killSession(c *exec.Cmd, done <-chan error) {
	pgid := c.Process.Pid // setsid makes the child its own group leader
	grace := r.Grace
	if grace <= 0 {
		grace = DefaultGrace
	}
	_ = syscall.Kill(-pgid, syscall.SIGTERM)
	select {
	case <-done:
		// The direct child exited on the polite TERM, but descendants
		// that trap or ignore it can survive in the group; sweep them so
		// nothing outlives the session holding its resources.
		_ = syscall.Kill(-pgid, syscall.SIGKILL)
		return
	case <-time.After(grace):
	}
	_ = syscall.Kill(-pgid, syscall.SIGKILL)
	<-done
}

// wrapExit converts exec's error into this package's ExitError.
func wrapExit(name string, err error) error {
	if err == nil {
		return nil
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return &ExitError{Name: name, Code: ee.ExitCode(), Err: err}
	}
	return fmt.Errorf("%s: %w", name, err)
}
