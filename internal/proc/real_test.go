//go:build unix

package proc

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ftsh/interp"
)

// alive reports whether pid is still running. A zombie counts as dead:
// it has been killed and merely awaits reaping by init.
func alive(pid int) bool {
	if syscall.Kill(pid, 0) != nil {
		return false
	}
	stat, err := os.ReadFile(fmt.Sprintf("/proc/%d/stat", pid))
	if err != nil {
		return true // no procfs: trust the signal probe
	}
	if i := bytes.LastIndexByte(stat, ')'); i >= 0 && i+2 < len(stat) {
		return stat[i+2] != 'Z' && stat[i+2] != 'X'
	}
	return true
}

func TestRealRunnerSweepsOrphansWhenChildDiesOnTerm(t *testing.T) {
	// The direct child exits politely on SIGTERM, but its grandchild
	// inherits an ignored TERM and would happily outlive the session.
	// The grandchild's stdout is detached so the child's exit alone
	// completes Wait — killSession must not return on that exit without
	// a SIGKILL sweep of the group, or the grandchild keeps the
	// resources the try budget was supposed to reclaim.
	var out bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err := realRunner(t).Run(ctx, core.NewReal(1), &interp.Command{
		Name:   "sh",
		Args:   []string{"-c", "(trap '' TERM; sleep 30) >/dev/null 2>&1 & echo $!; trap 'exit 0' TERM; wait"},
		Stdout: &out,
	})
	if err == nil {
		t.Skipf("sh unavailable (out=%q)", out.String())
	}
	pid, perr := strconv.Atoi(strings.TrimSpace(out.String()))
	if perr != nil || pid <= 0 {
		t.Skipf("could not learn grandchild pid from %q: %v", out.String(), perr)
	}
	// Whatever happens, do not leak a 30s sleeper into the test run.
	defer func() { _ = syscall.Kill(pid, syscall.SIGKILL) }()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if !alive(pid) {
			return // grandchild is gone: the sweep worked
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("TERM-ignoring grandchild survived the session kill")
}
