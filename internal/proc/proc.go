// Package proc supplies interp.Runner implementations: RealRunner
// executes external POSIX commands with process-session cleanup
// semantics (§4 of the paper), and MapRunner dispatches command names to
// registered Go functions, which is how simulated grid services expose
// themselves to ftsh scripts.
package proc

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/ftsh/interp"
)

// CommandFunc implements one simulated command. Sleeping through rt
// advances virtual time; honoring ctx makes the command killable by try
// timeouts, exactly like a real process session.
type CommandFunc func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error

// MapRunner routes command names to CommandFuncs. Unknown commands fail
// with a distinctive error, mirroring "the program could not be loaded
// and run".
type MapRunner struct {
	mu   sync.RWMutex
	cmds map[string]CommandFunc
}

// NewMapRunner returns an empty MapRunner.
func NewMapRunner() *MapRunner {
	return &MapRunner{cmds: make(map[string]CommandFunc)}
}

// Register binds name to fn, replacing any previous binding.
func (m *MapRunner) Register(name string, fn CommandFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cmds[name] = fn
}

// Names lists registered commands, sorted.
func (m *MapRunner) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.cmds))
	for k := range m.cmds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run implements interp.Runner.
func (m *MapRunner) Run(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
	m.mu.RLock()
	fn, ok := m.cmds[cmd.Name]
	m.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%s: command not found", cmd.Name)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return fn(ctx, rt, cmd)
}

var _ interp.Runner = (*MapRunner)(nil)
