package condor

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
)

// This file implements the workload §5 motivates scenario one with:
// "large numbers of submitters will compete for a schedd in systems
// such as Chimera, which manage large trees of dependent tasks for a
// user, dispatching new jobs as old ones complete."

// DAGNode is one task in a dependency graph.
type DAGNode struct {
	ID   int
	Deps []int // IDs that must complete before this node may be submitted

	submitted bool
	done      bool
}

// DAG is a set of tasks with dependencies. It is not safe for
// concurrent use; a DAG belongs to one dispatcher process.
type DAG struct {
	Nodes []*DAGNode
	byID  map[int]*DAGNode
	left  int
}

// NewDAG builds a DAG from nodes, validating that dependencies exist
// and that IDs are unique.
func NewDAG(nodes []*DAGNode) (*DAG, error) {
	d := &DAG{Nodes: nodes, byID: make(map[int]*DAGNode, len(nodes)), left: len(nodes)}
	for _, n := range nodes {
		if _, dup := d.byID[n.ID]; dup {
			return nil, fmt.Errorf("condor: duplicate DAG node id %d", n.ID)
		}
		d.byID[n.ID] = n
	}
	for _, n := range nodes {
		for _, dep := range n.Deps {
			if _, ok := d.byID[dep]; !ok {
				return nil, fmt.Errorf("condor: node %d depends on unknown node %d", n.ID, dep)
			}
		}
	}
	return d, nil
}

// LayeredDAG generates a random layered DAG: layers of width nodes,
// each node depending on 1..fanin random nodes of the previous layer.
// This is the shape of Chimera derivation trees.
func LayeredDAG(rng *rand.Rand, layers, width, fanin int) *DAG {
	var nodes []*DAGNode
	id := 0
	prev := []int{}
	for l := 0; l < layers; l++ {
		var cur []int
		for w := 0; w < width; w++ {
			n := &DAGNode{ID: id}
			id++
			if len(prev) > 0 {
				k := 1 + rng.Intn(fanin)
				if k > len(prev) {
					k = len(prev)
				}
				seen := map[int]bool{}
				for len(n.Deps) < k {
					dep := prev[rng.Intn(len(prev))]
					if !seen[dep] {
						seen[dep] = true
						n.Deps = append(n.Deps, dep)
					}
				}
			}
			nodes = append(nodes, n)
			cur = append(cur, n.ID)
		}
		prev = cur
	}
	d, err := NewDAG(nodes)
	if err != nil {
		panic("condor: " + err.Error()) // generator bug, not user input
	}
	return d
}

// Remaining reports nodes not yet completed.
func (d *DAG) Remaining() int { return d.left }

// ready returns unsubmitted nodes whose dependencies have completed.
func (d *DAG) ready() []*DAGNode {
	var out []*DAGNode
	for _, n := range d.Nodes {
		if n.submitted || n.done {
			continue
		}
		ok := true
		for _, dep := range n.Deps {
			if !d.byID[dep].done {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, n)
		}
	}
	return out
}

// complete marks a node done.
func (d *DAG) complete(n *DAGNode) {
	if !n.done {
		n.done = true
		d.left--
	}
}

// DispatcherConfig shapes a DAG dispatcher.
type DispatcherConfig struct {
	// Submit is the per-job retry configuration (discipline, try
	// budget, carrier threshold).
	Submit SubmitterConfig
	// ExecTime is how long a job runs in the pool after submission
	// before its outputs exist and dependents become ready.
	ExecTime time.Duration
	// ExecJitter is the ± fraction of random variation on ExecTime.
	ExecJitter float64
	// PollInterval is how often the dispatcher rechecks for ready nodes
	// when none are pending.
	PollInterval time.Duration
}

// DefaultDispatcherConfig returns a workable Chimera-style setup.
func DefaultDispatcherConfig(d core.Discipline) DispatcherConfig {
	return DispatcherConfig{
		Submit:       DefaultSubmitterConfig(d),
		ExecTime:     30 * time.Second,
		ExecJitter:   0.3,
		PollInterval: time.Second,
	}
}

// Dispatcher drives one DAG to completion against a cluster.
type Dispatcher struct {
	// Submitted counts successful submissions; Abandoned counts jobs
	// whose try budget exhausted (they will be retried on the next
	// dispatch round, like a DAGMan resubmit).
	Submitted, Abandoned int64
	// Makespan is the virtual time from Run's start until the last node
	// completed (or until ctx canceled).
	Makespan time.Duration
}

// Run dispatches the DAG until every node completes or ctx is
// canceled. It returns nil on full completion.
func (disp *Dispatcher) Run(p core.Proc, ctx context.Context, cl *Cluster, dag *DAG, cfg DispatcherConfig) error {
	start := p.Elapsed()
	defer func() { disp.Makespan = p.Elapsed() - start }()
	client := &core.Client{
		Rt:         p,
		Discipline: cfg.Submit.Discipline,
		Limit:      core.For(cfg.Submit.TryLimit),
		Sense:      core.ThresholdSense("file-nr", cl.FDs.Free, cfg.Submit.Threshold),
		Observer:   cfg.Submit.Observer,
	}
	for dag.Remaining() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		ready := dag.ready()
		if len(ready) == 0 {
			// Jobs are running in the pool; wait for completions.
			if err := p.Sleep(ctx, cfg.PollInterval); err != nil {
				return err
			}
			continue
		}
		for _, n := range ready {
			n := n
			if err := ctx.Err(); err != nil {
				return err
			}
			err := client.Do(ctx, func(ctx context.Context) error {
				return cl.Schedd.Submit(p, ctx)
			})
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				disp.Abandoned++
				continue // leave unsubmitted; retried next round
			}
			disp.Submitted++
			n.submitted = true
			d := cfg.ExecTime
			d += time.Duration(float64(d) * cfg.ExecJitter * (2*p.Rand() - 1))
			p.Schedule(d, func() { dag.complete(n) })
		}
	}
	return nil
}
