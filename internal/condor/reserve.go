package condor

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/lease"
	"repro/internal/trace"
)

// This file is the submit scenario's fourth-discipline client: instead
// of optimistically allocating descriptors and colliding (Fixed/Aloha)
// or sensing the carrier first (Ethernet), a reserving submitter books
// a worst-case descriptor window on an admission book up front. A full
// book refuses the request outright — a typed rejection, detected
// *before* any descriptors are consumed — and an admitted window is a
// promise the schedd enforces with the claim lease's watchdog, so even
// a black-holed client returns its descriptors at the window boundary.
//
// The descriptors themselves come out of the book's capacity, which is
// provisioned as a slice of the machine's FD table: admission control
// only works if the book's capacity is not also being drained behind
// its back, so a reservation cell gives clients the book and leaves
// the table's remainder to the schedd and its housekeeping.

// SubmitReserved performs one submission attempt from p under an
// admitted, claimed reservation. The client-side allocation races of
// Submit are skipped — the claim's units are the descriptors, counted
// by the book when the window was admitted — but the schedd side is
// unchanged: schedd FDs, the crash broadcast, service slots, and the
// chaos seams all still apply. claim is the lease returned by
// Reservation.Claim; its watchdog is armed at the window boundary, so
// there is nothing to renew.
func (s *Schedd) SubmitReserved(p core.Proc, ctx context.Context, claim *lease.Lease) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	outer := ctx
	tr := p.Tracer()
	// Chaos seam: the connection can be slowed or refused here exactly
	// as in Submit — admission control does not bypass the network.
	if f := core.InjectAt(s.inj, InjectConnect); !f.Zero() {
		tr.FaultInjected(InjectConnect)
		if f.Delay > 0 {
			if err := p.Sleep(ctx, f.Delay); err != nil {
				return err
			}
		}
		if f.Err != nil {
			if err := p.Sleep(ctx, s.cfg.ConnectFailTime); err != nil {
				return err
			}
			return core.Collision("schedd", f.Err)
		}
	}
	// Work under the claim from here on: when the booked window ends,
	// the watchdog unwinds everything downstream.
	ctx = claim.Ctx()
	if err := p.Sleep(ctx, s.cfg.SetupTime); err != nil {
		return s.submitErr(outer, claim)
	}
	// Chaos seam: a stuck-holder plan black-holes the client while it
	// holds its booked window. The window-boundary watchdog is the only
	// thing that frees the book again — and until it fires, the booked
	// capacity is dead. This is the collapse mode FigRes measures.
	if f := core.InjectAt(s.inj, InjectHold); f.Hang {
		tr.FaultInjected(InjectHold)
		_ = p.Hang(ctx)
		return s.submitErr(outer, claim)
	}
	return s.serve(p, ctx, outer, func() {}, claim)
}

// ResSubmitterConfig shapes one reservation-discipline submitter.
type ResSubmitterConfig struct {
	// TryLimit bounds each work unit, as for the other disciplines.
	TryLimit time.Duration
	// Window is the tenure booked per submission. It must cover the
	// worst-case submission (setup, queueing, transfer) or honest
	// clients are revoked mid-service; the slack past the typical case
	// is capacity held but unused — reservation's standing overhead.
	Window time.Duration
	// ThinkTime separates a successful submission from the next job.
	ThinkTime time.Duration
	// Observer receives discipline events.
	Observer core.Observer
	// Trace, when non-nil, records this submitter's attempt timeline.
	Trace *trace.Client
	// Backoff paces retries after a rejection. Unlike a collision, a
	// rejection consumed nothing, so the pacing is load-shedding only.
	Backoff *core.Backoff
}

// ReserveLoop runs the submitter until ctx is canceled: an endless
// sequence of jobs, each booked on book before it touches the schedd.
// Every booking asks for the worst-case descriptor count — output
// sizes and file counts are unknown before the job runs, the same
// argument §5 makes against storage reservation — so the book admits
// strictly fewer clients than optimistic disciplines would attempt.
func (sub *Submitter) ReserveLoop(p core.Proc, ctx context.Context, cl *Cluster, book *lease.Book, cfg ResSubmitterConfig) {
	p.SetTracer(cfg.Trace)
	// The worst case a submission can pin on the client side.
	units := int64(cl.Cfg.ClientFDs + cl.Cfg.ClientFDJitter)
	client := &core.Client{
		Rt:         p,
		Discipline: core.Reservation,
		Limit:      core.For(cfg.TryLimit),
		Backoff:    cfg.Backoff,
		Observer:   cfg.Observer,
		Trace:      cfg.Trace,
		Site:       book.Name(),
		Span:       "submit",
	}
	for ctx.Err() == nil {
		err := client.Do(ctx, func(ctx context.Context) error {
			r, rerr := book.Reserve(p, p.Name(), p.Elapsed(), cfg.Window, units)
			if rerr != nil {
				return rerr // typed rejection: the book is full over the window
			}
			claim, cerr := r.Claim(p, ctx)
			if cerr != nil {
				// Unreachable for a window starting now, but a booking
				// must never leak.
				r.Cancel()
				return core.Collision(book.Name(), cerr)
			}
			defer r.Release()
			return cl.Schedd.SubmitReserved(p, ctx, claim)
		})
		switch {
		case err == nil:
			sub.Submitted++
			if cfg.ThinkTime > 0 {
				if p.Sleep(ctx, cfg.ThinkTime) != nil {
					return
				}
			}
		case ctx.Err() != nil:
			return
		default:
			sub.Exhausted++
		}
	}
}
