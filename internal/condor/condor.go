// Package condor simulates the job-submission scenario of §5: a
// population of submitter clients contending for a Condor-style schedd
// whose critical shared resource is the kernel's table of file
// descriptors (FDs).
//
// The model captures the three feedback loops that shape Figures 1–3 of
// the paper:
//
//  1. Every submission attempt consumes FDs on the client side for its
//     whole duration (connect, queue, transfer), and a few more on the
//     schedd side per accepted connection.
//  2. When the schedd cannot allocate FDs for a new connection it
//     crashes, aborting every connected client at once — the paper's
//     "broadcast jam" — and restarts after a delay.
//  3. The schedd services a bounded number of handshakes concurrently,
//     so queueing (while holding FDs!) couples load to FD pressure.
package condor

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/lease"
)

// Config parameterizes the cluster. Zero fields take defaults chosen so
// the paper's qualitative shapes appear at the paper's client counts
// (collapse of Fixed above ~400 submitters, etc.).
type Config struct {
	// FDCapacity is the kernel file-descriptor table size.
	FDCapacity int
	// ClientFDs is the minimum FDs one submission attempt pins on the
	// client side while in flight; each attempt adds a uniform random
	// extra up to ClientFDJitter (different jobs carry different numbers
	// of input files and logs).
	ClientFDs int
	// ClientFDJitter is the maximum random extra client-side FDs.
	ClientFDJitter int
	// SetupTime separates the client's process-startup FD allocations
	// from its connection FDs, as a real submitter's open() calls are
	// spread over its startup.
	SetupTime time.Duration
	// ScheddFDs is how many FDs the schedd pins per accepted connection.
	ScheddFDs int
	// ServiceSlots bounds concurrent handshakes inside the schedd.
	ServiceSlots int
	// ServiceTime is the base time to transfer one job's details.
	ServiceTime time.Duration
	// ServiceJitter is the ± fraction of random variation on ServiceTime.
	ServiceJitter float64
	// CPULoad models competition for managed resources (§5: the Ethernet
	// client "maintains about 50 percent of peak performance under
	// load, due to competition for managed resources, such as the
	// CPU"): each connected client inflates service time by this
	// fraction.
	CPULoad float64
	// ConnectFailTime is how long a failed or refused connection attempt
	// costs the client — failures are never free.
	ConnectFailTime time.Duration
	// RestartDelay is how long a crashed schedd stays down.
	RestartDelay time.Duration
	// HousekeepFDs is how many descriptors the schedd's own periodic
	// work (fsyncing the job queue, contacting the matchmaker) briefly
	// needs. If it cannot get them the schedd crashes — "the schedd
	// itself failing when it cannot allocate enough FDs" (§5).
	HousekeepFDs int
	// HousekeepInterval is the cadence of that background work.
	HousekeepInterval time.Duration
	// LeaseQuantum bounds how long a submission may pin descriptors
	// before renewing: the limited-allocation discipline. Zero (the
	// default, and the paper's figures 1–3) means unlimited tenure —
	// holds are never revoked.
	LeaseQuantum time.Duration
	// Unfenced disables the survival mechanisms against an unreliable
	// channel: the FD table applies lease control messages without
	// epoch fencing, and the schedd re-runs retried work units instead
	// of deduplicating them by idempotency key. It exists for the
	// FigNet ablation; the default (false) is the defended
	// configuration.
	Unfenced bool
}

// DefaultConfig returns the parameters used for the paper figures.
func DefaultConfig() Config {
	return Config{
		FDCapacity:        8192,
		ClientFDs:         15,
		ClientFDJitter:    5,
		SetupTime:         20 * time.Millisecond,
		ScheddFDs:         3,
		ServiceSlots:      4,
		ServiceTime:       1500 * time.Millisecond,
		ServiceJitter:     0.2,
		CPULoad:           0.0025,
		ConnectFailTime:   100 * time.Millisecond,
		RestartDelay:      30 * time.Second,
		HousekeepFDs:      50,
		HousekeepInterval: 5 * time.Second,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.FDCapacity <= 0 {
		c.FDCapacity = d.FDCapacity
	}
	if c.ClientFDs <= 0 {
		c.ClientFDs = d.ClientFDs
	}
	// For these two, zero selects the default; pass a negative value to
	// explicitly disable the effect.
	if c.ClientFDJitter == 0 {
		c.ClientFDJitter = d.ClientFDJitter
	} else if c.ClientFDJitter < 0 {
		c.ClientFDJitter = 0
	}
	if c.CPULoad == 0 {
		c.CPULoad = d.CPULoad
	} else if c.CPULoad < 0 {
		c.CPULoad = 0
	}
	if c.SetupTime <= 0 {
		c.SetupTime = d.SetupTime
	}
	if c.ScheddFDs <= 0 {
		c.ScheddFDs = d.ScheddFDs
	}
	if c.ServiceSlots <= 0 {
		c.ServiceSlots = d.ServiceSlots
	}
	if c.ServiceTime <= 0 {
		c.ServiceTime = d.ServiceTime
	}
	if c.ServiceJitter <= 0 {
		c.ServiceJitter = d.ServiceJitter
	}
	if c.ConnectFailTime <= 0 {
		c.ConnectFailTime = d.ConnectFailTime
	}
	if c.RestartDelay <= 0 {
		c.RestartDelay = d.RestartDelay
	}
	if c.HousekeepFDs <= 0 {
		c.HousekeepFDs = d.HousekeepFDs
	}
	if c.HousekeepInterval <= 0 {
		c.HousekeepInterval = d.HousekeepInterval
	}
}

// FDTable is a bounded pool of file descriptors shared by every process
// on the submit machine. Acquisition never queues: a process that cannot
// get FDs fails immediately, exactly like open(2) returning EMFILE.
// Tenure flows through an internal lease.Manager, so holds can be
// time-bounded (see Config.LeaseQuantum) and per-client fairness is
// accounted centrally.
type FDTable struct {
	m *lease.Manager
}

// NewFDTable returns an engine-free table with the given capacity and
// unlimited tenure, for unit tests and raw accounting.
func NewFDTable(capacity int) *FDTable {
	return &FDTable{m: lease.New(nil, "fds", int64(capacity), 0)}
}

// NewLeasedFDTable returns a table on engine e whose holds are leases
// with the given tenure quantum (0 = unlimited, the legacy behavior).
func NewLeasedFDTable(e core.Backend, capacity int, quantum time.Duration) *FDTable {
	return &FDTable{m: lease.New(e, "fds", int64(capacity), quantum)}
}

// SetCapacity retunes the table size at runtime (an administrator
// shrinking fs.file-max, or a fault plan squeezing the resource).
// Shrinking below InUse is allowed: Free goes negative and every new
// allocation fails until holders release, exactly like the real sysctl.
func (t *FDTable) SetCapacity(n int) { t.m.SetCapacity(int64(n)) }

// Free reports available descriptors — the observable used by the
// Ethernet submitter's carrier sense (/proc/sys/fs/file-nr).
func (t *FDTable) Free() int { return int(t.m.Free()) }

// InUse reports descriptors currently held.
func (t *FDTable) InUse() int { return int(t.m.InUse()) }

// Capacity reports the table size.
func (t *FDTable) Capacity() int { return int(t.m.Capacity()) }

// Failures counts allocation failures, a collision indicator.
func (t *FDTable) Failures() int64 { return t.m.Rejects }

// TryAcquire takes n descriptors without a lease, reporting success.
// Callers of this raw path manage tenure themselves; Lease is the
// bounded-tenure entry point.
func (t *FDTable) TryAcquire(n int) bool { return t.m.TryTake(int64(n)) }

// Release returns n descriptors taken with TryAcquire.
func (t *FDTable) Release(n int) {
	if int64(n) > t.m.InUse() {
		panic("condor: FD table underflow")
	}
	t.m.Put(int64(n))
}

// Lease takes n descriptors as a lease held by holder, reporting
// success. Like TryAcquire it never queues — an EMFILE-style immediate
// failure — but a grant is tenure-bounded by the table's quantum.
func (t *FDTable) Lease(p core.Proc, ctx context.Context, holder string, n int) (*lease.Lease, bool) {
	return t.m.TryAcquire(p, ctx, holder, int64(n))
}

// NoteWant records that holder wants descriptors it could not get
// (e.g. its carrier sense came back busy); the starvation clock runs
// until the holder's next grant.
func (t *FDTable) NoteWant(holder string) { t.m.NoteWant(holder) }

// LongestWait reports the longest want-to-grant wait currently in
// progress — the no-starvation invariant's observable.
func (t *FDTable) LongestWait() time.Duration { return t.m.LongestWait() }

// Manager exposes the underlying lease manager for fairness accounting.
func (t *FDTable) Manager() *lease.Manager { return t.m }

// Injection sites consulted by this substrate (see core.Injector).
const (
	// InjectConnect covers the client's attempt to reach the schedd:
	// an injected error is a refused/reset connection, an injected
	// delay is network or accept-queue latency.
	InjectConnect = "condor/connect"
	// InjectService covers the job-transfer phase: an injected error
	// resets the connection mid-transfer, an injected delay slows the
	// service.
	InjectService = "condor/service"
	// InjectHold covers the window where a client pins descriptors: an
	// injected Hang turns the client into a black hole while holding,
	// the stuck-holder failure mode the lease watchdog exists for.
	InjectHold = "condor/hold"
	// InjectNet covers the lease-control channel between FD holders and
	// the table: drops lose release/renew messages, dups deliver them
	// twice, delays put them in flight (see lease.Manager.SetWire).
	InjectNet = "condor/net"
	// InjectNetReq covers the request direction of a keyed submission
	// (client -> schedd): a drop means the job never reached the queue.
	InjectNetReq = "condor/net/req"
	// InjectNetRep covers the reply direction (schedd -> client): a drop
	// means the job landed but the acknowledgement was lost, so the
	// client retries work that already happened — the at-most-once
	// hazard idempotency keys exist for.
	InjectNetRep = "condor/net/rep"
)

// Errors distinguishing submission failure modes; all are collisions in
// the Ethernet sense (detected after consuming the resource).
var (
	// ErrNoFDs means the client could not allocate file descriptors.
	ErrNoFDs = errors.New("cannot allocate file descriptors")
	// ErrScheddDown means the connection was refused.
	ErrScheddDown = errors.New("connection refused: schedd down")
	// ErrScheddCrashed means the schedd died mid-submission.
	ErrScheddCrashed = errors.New("connection reset: schedd crashed")
)

// Schedd is the simulated Condor scheduler daemon.
type Schedd struct {
	eng  core.Backend
	cfg  Config
	fds  *FDTable
	inj  core.Injector
	down bool

	slots core.Resource

	// conns maps live connection ids to their abort functions, so a
	// crash can reset every client at once.
	conns  map[int64]context.CancelFunc
	connID int64

	// Jobs counts successful submissions; Crashes counts schedd deaths.
	Jobs    int64
	Crashes int64

	// Idempotency: seen marks work-unit keys whose effect has already
	// applied, so a client retry under drop/dup is at-most-once. Unique
	// counts distinct completed keys; Deduped counts retries and
	// duplicates the key fenced off; NetDrops counts messages the
	// channel swallowed. With keys honored (the default), Jobs ==
	// Unique always — the unit-conservation invariant. Unfenced, a
	// reply-drop retry or a duplicated request re-applies the effect
	// and Jobs drifts above Unique.
	seen     map[string]bool
	keySeq   int64
	Unique   int64
	Deduped  int64
	NetDrops int64
}

// Cluster bundles the shared FD table and the schedd.
type Cluster struct {
	Eng    core.Backend
	Cfg    Config
	FDs    *FDTable
	Schedd *Schedd
}

// NewCluster builds the scenario substrate on engine e.
func NewCluster(e core.Backend, cfg Config) *Cluster {
	cfg.fillDefaults()
	fds := NewLeasedFDTable(e, cfg.FDCapacity, cfg.LeaseQuantum)
	s := &Schedd{
		eng:   e,
		cfg:   cfg,
		fds:   fds,
		slots: e.NewResource("schedd-slots", cfg.ServiceSlots),
		conns: make(map[int64]context.CancelFunc),
	}
	return &Cluster{Eng: e, Cfg: cfg, FDs: fds, Schedd: s}
}

// SetInjector installs a fault injector consulted at this cluster's
// failure sites, and routes the FD table's lease-control messages
// through it at InjectNet (fenced unless Config.Unfenced). A nil
// injector (the default) disables injection and removes the wire.
func (c *Cluster) SetInjector(inj core.Injector) {
	c.Schedd.inj = inj
	c.FDs.Manager().SetWire(inj, InjectNet, !c.Cfg.Unfenced)
}

// Down reports whether the schedd is currently crashed.
func (s *Schedd) Down() bool { return s.down }

// Kill crashes the schedd as if it had exhausted a resource: every live
// connection is reset and the daemon restarts after RestartDelay.
// Killing an already-down schedd is a no-op. It exists for fault plans.
func (s *Schedd) Kill() { s.crash() }

// StartHousekeeping begins the schedd's periodic background work, which
// transiently needs HousekeepFDs descriptors; starvation crashes the
// daemon. The loop stops when ctx is canceled, letting the engine
// quiesce at the end of an experiment window.
func (c *Cluster) StartHousekeeping(ctx context.Context) {
	s := c.Schedd
	var tick func()
	tick = func() {
		if ctx.Err() != nil {
			return
		}
		if !s.down {
			if s.fds.TryAcquire(s.cfg.HousekeepFDs) {
				s.fds.Release(s.cfg.HousekeepFDs)
			} else {
				s.crash()
			}
		}
		s.eng.Schedule(s.cfg.HousekeepInterval, tick)
	}
	s.eng.Schedule(s.cfg.HousekeepInterval, tick)
}

// Submit performs one submission attempt from process p. It returns nil
// when the job lands in the queue; any error is a collision (the
// resource was touched and contention or breakage was discovered).
func (s *Schedd) Submit(p core.Proc, ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	outer := ctx
	tr := p.Tracer()
	// Chaos seam: a fault plan may slow or refuse the connection here,
	// upstream of the organic failure modes below.
	if f := core.InjectAt(s.inj, InjectConnect); !f.Zero() {
		tr.FaultInjected(InjectConnect)
		if f.Delay > 0 {
			if err := p.Sleep(ctx, f.Delay); err != nil {
				return err
			}
		}
		if f.Err != nil {
			if err := p.Sleep(ctx, s.cfg.ConnectFailTime); err != nil {
				return err
			}
			return core.Collision("schedd", f.Err)
		}
	}
	// The client process must allocate its own descriptors — program
	// text, the job file, logs, then sockets. This is the unmanaged
	// resource the paper found to be the real bottleneck. Allocation is
	// spread over process startup, so competing clients interleave and
	// the table can overcommit in aggregate.
	want := s.cfg.ClientFDs
	if s.cfg.ClientFDJitter > 0 {
		want += int(p.Rand() * float64(s.cfg.ClientFDJitter+1))
	}
	first := want / 2
	l1, ok := s.fds.Lease(p, ctx, p.Name(), first)
	if !ok {
		if err := p.Sleep(ctx, s.cfg.ConnectFailTime); err != nil {
			return err
		}
		return core.Collision("fds", ErrNoFDs)
	}
	defer l1.Release()
	// Work under the lease context from here on: when the watchdog
	// revokes a hold, everything downstream unwinds. With an unlimited
	// quantum Ctx() is the caller's context and nothing changes.
	ctx = l1.Ctx()
	if err := p.Sleep(ctx, s.cfg.SetupTime); err != nil {
		return s.submitErr(outer, l1)
	}
	rest := want - first
	l2, ok := s.fds.Lease(p, ctx, p.Name(), rest)
	if !ok {
		if err := p.Sleep(ctx, s.cfg.ConnectFailTime); err != nil {
			return s.submitErr(outer, l1)
		}
		return core.Collision("fds", ErrNoFDs)
	}
	defer l2.Release()
	ctx = l2.Ctx()

	// Chaos seam: a stuck-holder plan turns this client into a black
	// hole while it pins its descriptors. Only the lease watchdog (or
	// the caller's own deadline) gets things moving again.
	if f := core.InjectAt(s.inj, InjectHold); f.Hang {
		tr.FaultInjected(InjectHold)
		_ = p.Hang(ctx)
		return s.submitErr(outer, l1, l2)
	}

	// Connected on the client side: the schedd half of the submission is
	// shared with the reservation path. Renewing l1 and l2 once the
	// transfer begins keeps the holds inside their tenure quantum.
	return s.serve(p, ctx, outer, func() {
		l1.Renew()
		l2.Renew()
	}, l1, l2)
}

// MintKey returns a fresh work-unit idempotency key, unique within
// this schedd (engine token). Clients mint one key per work unit and
// reuse it across every retry of that unit: uniqueness cannot be
// derived from process names, which scenarios are free to share.
func (s *Schedd) MintKey() string {
	s.keySeq++
	return "u" + strconv.FormatInt(s.keySeq, 10)
}

// SubmitKeyed is Submit across an unreliable channel, carrying an
// idempotency key naming the work unit. The request may be dropped or
// duplicated in flight (InjectNetReq) and the acknowledgement may be
// lost on the way back (InjectNetRep); in both cases the client
// observes only an untyped loss and retries. The schedd's seen-set
// makes the retry at-most-once: a key whose effect already applied is
// acknowledged without re-running the job. An empty key (or
// Config.Unfenced) disables deduplication — every arrival re-runs.
func (s *Schedd) SubmitKeyed(p core.Proc, ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tr := p.Tracer()
	var dup bool
	// Request direction: client -> schedd.
	if f := core.InjectAt(s.inj, InjectNetReq); !f.Zero() {
		if f.Delay > 0 {
			if err := p.Sleep(ctx, f.Delay); err != nil {
				return err
			}
		}
		if f.Drop || f.Err != nil {
			// The submission never arrived. The client pays the connect
			// timeout before concluding anything — loss is silence.
			tr.MsgDrop("schedd")
			s.NetDrops++
			if err := p.Sleep(ctx, s.cfg.ConnectFailTime); err != nil {
				return err
			}
			return core.Collision("net", core.ErrLost)
		}
		dup = f.Dup
	}
	// At-most-once: a retry of an already-applied work unit is
	// acknowledged from the seen-set instead of re-running.
	if key != "" && !s.cfg.Unfenced && s.seen[key] {
		s.Deduped++
		tr.MsgDup("schedd")
		return nil
	}
	if err := s.Submit(p, ctx); err != nil {
		return err
	}
	if key != "" {
		if s.seen == nil {
			s.seen = make(map[string]bool)
		}
		if !s.seen[key] {
			s.seen[key] = true
			s.Unique++
		}
	}
	if dup {
		// The duplicated request also reaches the schedd. Keyed, the
		// seen-set fences the copy; unfenced, the job runs twice and
		// unit conservation breaks (Jobs > Unique).
		tr.MsgDup("schedd")
		if key != "" && !s.cfg.Unfenced {
			s.Deduped++
		} else {
			s.Jobs++
		}
	}
	// Reply direction: schedd -> client. The effect is applied; only
	// the acknowledgement is at risk now.
	if f := core.InjectAt(s.inj, InjectNetRep); !f.Zero() {
		if f.Delay > 0 {
			if err := p.Sleep(ctx, f.Delay); err != nil {
				return err
			}
		}
		if f.Drop || f.Err != nil {
			// The ack was lost: the client will retry a job that already
			// landed. The seen-set (above) is what makes that safe.
			tr.MsgDrop("schedd")
			s.NetDrops++
			return core.Collision("net", core.ErrLost)
		}
	}
	return nil
}

// serve is the schedd side of a submission, shared by Submit and
// SubmitReserved: accept the connection (pinning schedd FDs, crashing
// the daemon if it cannot), register for the crash broadcast, queue
// for a service slot, and transfer the job. held lists the leases the
// caller is working under, for abort classification; renew is called
// once the transfer begins so the caller can extend those holds for
// the service time.
func (s *Schedd) serve(p core.Proc, ctx, outer context.Context, renew func(), held ...*lease.Lease) error {
	tr := p.Tracer()
	if s.down {
		if err := p.Sleep(ctx, s.cfg.ConnectFailTime); err != nil {
			return s.submitErr(outer, held...)
		}
		return core.Collision("schedd", ErrScheddDown)
	}

	// The schedd accepts the connection, pinning its own descriptors.
	// Failure to do so kills the schedd (broadcast jam).
	l3, ok := s.fds.Lease(p, ctx, "schedd", s.cfg.ScheddFDs)
	if !ok {
		s.crash()
		if err := p.Sleep(ctx, s.cfg.ConnectFailTime); err != nil {
			return s.submitErr(outer, held...)
		}
		return core.Collision("schedd", ErrScheddCrashed)
	}
	defer l3.Release()
	ctx = l3.Ctx()
	all := append(append([]*lease.Lease{}, held...), l3)

	// Register for the crash broadcast.
	connCtx, cancel := s.eng.WithCancel(ctx)
	defer cancel()
	id := s.connID
	s.connID++
	s.conns[id] = cancel
	defer delete(s.conns, id)

	// Queue for a service slot, then transfer the job.
	if err := s.slots.Acquire(p, connCtx); err != nil {
		return s.submitErr(outer, all...)
	}
	tr.Acquire("slot", 1)
	defer func() {
		s.slots.Release()
		tr.Release("slot", 1)
	}()
	// Connected and in service: the holds are now doing useful work,
	// so renew their tenure for the transfer.
	renew()
	l3.Renew()
	// Service slows as more clients are connected: the CPU, memory, and
	// disk of the submit machine are themselves shared resources.
	d := time.Duration(float64(s.cfg.ServiceTime) * (1 + s.cfg.CPULoad*float64(len(s.conns))))
	d += time.Duration(float64(d) * s.cfg.ServiceJitter * (2*p.Rand() - 1))
	// Chaos seam: a fault plan may stretch the transfer or reset the
	// connection mid-service, like the organic crash path.
	if f := core.InjectAt(s.inj, InjectService); !f.Zero() {
		tr.FaultInjected(InjectService)
		d += f.Delay
		if f.Err != nil {
			if err := p.Sleep(connCtx, d); err != nil {
				return s.submitErr(outer, all...)
			}
			return core.Collision("schedd", f.Err)
		}
	}
	if err := p.Sleep(connCtx, d); err != nil {
		return s.submitErr(outer, all...)
	}
	s.Jobs++
	return nil
}

// submitErr classifies an aborted submission: if the caller's own
// context died, propagate; if a lease was revoked out from under the
// client, that is a collision on the tenure discipline itself;
// otherwise the schedd crashed underneath us.
func (s *Schedd) submitErr(ctx context.Context, leases ...*lease.Lease) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, l := range leases {
		if l.Revoked() {
			return core.Collision("lease", lease.ErrRevoked)
		}
	}
	return core.Collision("schedd", ErrScheddCrashed)
}

// crash kills the schedd: every live connection is reset and the daemon
// restarts after RestartDelay.
func (s *Schedd) crash() {
	if s.down {
		return
	}
	s.down = true
	s.Crashes++
	// Reset connections in id order so the simulation stays
	// deterministic (map iteration order is randomized).
	ids := make([]int64, 0, len(s.conns))
	for id := range s.conns {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cancel := s.conns[id]
		delete(s.conns, id)
		cancel()
	}
	s.eng.Schedule(s.cfg.RestartDelay, func() { s.down = false })
}
