package condor

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestNewDAGValidation(t *testing.T) {
	if _, err := NewDAG([]*DAGNode{{ID: 1}, {ID: 1}}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := NewDAG([]*DAGNode{{ID: 1, Deps: []int{99}}}); err == nil {
		t.Error("unknown dependency accepted")
	}
	d, err := NewDAG([]*DAGNode{{ID: 1}, {ID: 2, Deps: []int{1}}})
	if err != nil || d.Remaining() != 2 {
		t.Fatalf("d=%v err=%v", d, err)
	}
}

func TestLayeredDAGShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := LayeredDAG(rng, 4, 5, 2)
	if len(d.Nodes) != 20 {
		t.Fatalf("nodes = %d", len(d.Nodes))
	}
	// First layer has no deps; later layers have 1..2 deps.
	for i, n := range d.Nodes {
		if i < 5 && len(n.Deps) != 0 {
			t.Errorf("layer-0 node %d has deps %v", n.ID, n.Deps)
		}
		if i >= 5 && (len(n.Deps) < 1 || len(n.Deps) > 2) {
			t.Errorf("node %d has %d deps", n.ID, len(n.Deps))
		}
	}
}

func TestDAGReadyRespectsDependencies(t *testing.T) {
	d, _ := NewDAG([]*DAGNode{
		{ID: 1}, {ID: 2}, {ID: 3, Deps: []int{1, 2}},
	})
	ready := d.ready()
	if len(ready) != 2 {
		t.Fatalf("ready = %d nodes", len(ready))
	}
	d.complete(d.byID[1])
	if len(d.ready()) != 1 { // node 2 still unsubmitted; 3 blocked by 2
		t.Fatalf("ready after 1 done = %d", len(d.ready()))
	}
	d.complete(d.byID[2])
	ready = d.ready()
	if len(ready) != 1 || ready[0].ID != 3 {
		t.Fatalf("ready = %+v", ready)
	}
}

func TestDispatcherCompletesDAG(t *testing.T) {
	e := sim.New(1)
	cl := NewCluster(e.RT(), Config{})
	rng := rand.New(rand.NewSource(2))
	dag := LayeredDAG(rng, 3, 4, 2)
	ctx, cancel := e.WithTimeout(e.Context(), 2*time.Hour)
	defer cancel()
	var disp Dispatcher
	var runErr error
	e.Spawn("dispatcher", func(p *sim.Proc) {
		runErr = disp.Run(p, ctx, cl, dag, DefaultDispatcherConfig(core.Aloha))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	if dag.Remaining() != 0 {
		t.Fatalf("Remaining = %d", dag.Remaining())
	}
	if disp.Submitted != 12 {
		t.Fatalf("Submitted = %d, want 12", disp.Submitted)
	}
	// 3 layers of ~30s jobs: makespan at least 90s.
	if disp.Makespan < 90*time.Second {
		t.Fatalf("Makespan = %v, implausibly short", disp.Makespan)
	}
}

func TestDispatcherSurvivesScheddCrashes(t *testing.T) {
	e := sim.New(3)
	// A cramped cluster: the dispatcher's submissions themselves cannot
	// crash it, so crash it externally a few times.
	cl := NewCluster(e.RT(), Config{RestartDelay: 20 * time.Second})
	for _, at := range []time.Duration{10 * time.Second, 90 * time.Second} {
		e.Schedule(at, func() { cl.Schedd.crash() })
	}
	rng := rand.New(rand.NewSource(4))
	dag := LayeredDAG(rng, 2, 3, 1)
	ctx, cancel := e.WithTimeout(e.Context(), 4*time.Hour)
	defer cancel()
	var disp Dispatcher
	var runErr error
	e.Spawn("dispatcher", func(p *sim.Proc) {
		runErr = disp.Run(p, ctx, cl, dag, DefaultDispatcherConfig(core.Ethernet))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr != nil || dag.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", runErr, dag.Remaining())
	}
	if cl.Schedd.Crashes != 2 {
		t.Fatalf("Crashes = %d", cl.Schedd.Crashes)
	}
}

func TestDispatcherHonorsContext(t *testing.T) {
	e := sim.New(1)
	cl := NewCluster(e.RT(), Config{RestartDelay: 24 * time.Hour})
	cl.Schedd.crash() // down for the whole window
	rng := rand.New(rand.NewSource(5))
	dag := LayeredDAG(rng, 2, 2, 1)
	ctx, cancel := e.WithTimeout(e.Context(), time.Minute)
	defer cancel()
	var runErr error
	e.Spawn("dispatcher", func(p *sim.Proc) {
		var disp Dispatcher
		runErr = disp.Run(p, ctx, cl, dag, DefaultDispatcherConfig(core.Aloha))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if runErr == nil {
		t.Fatal("dispatcher should give up when its context dies")
	}
	if dag.Remaining() == 0 {
		t.Fatal("DAG cannot have completed against a dead schedd")
	}
}

// Property: a dispatcher never submits a node before all of its
// dependencies completed, for random layered DAGs.
func TestQuickDAGDependencyOrder(t *testing.T) {
	f := func(seed int64, layersRaw, widthRaw uint8) bool {
		layers := int(layersRaw%3) + 1
		width := int(widthRaw%3) + 1
		e := sim.New(seed)
		cl := NewCluster(e.RT(), Config{})
		rng := rand.New(rand.NewSource(seed))
		dag := LayeredDAG(rng, layers, width, 2)
		ctx, cancel := e.WithTimeout(e.Context(), 3*time.Hour)
		defer cancel()
		ok := true
		// Wrap ready-checking: at submission time, verify deps done.
		var disp Dispatcher
		e.Spawn("dispatcher", func(p *sim.Proc) {
			_ = disp.Run(p, ctx, cl, dag, DefaultDispatcherConfig(core.Discipline(seed%3)))
		})
		// Periodically assert the invariant over the whole DAG.
		var check func()
		check = func() {
			for _, n := range dag.Nodes {
				if n.submitted {
					for _, dep := range n.Deps {
						if !dag.byID[dep].done {
							ok = false
						}
					}
				}
			}
			if ctx.Err() == nil && dag.Remaining() > 0 {
				e.Schedule(5*time.Second, check)
			}
		}
		e.Schedule(time.Second, check)
		if err := e.Run(); err != nil {
			return false
		}
		return ok && dag.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
