package condor_test

import (
	"fmt"
	"time"

	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/sim"
)

// Example contrasts the Aloha and Ethernet submitter populations on an
// overloaded FD table, the dynamics behind Figures 2 and 3: the
// Ethernet carrier threshold keeps the schedd alive.
func Example() {
	for _, d := range []core.Discipline{core.Aloha, core.Ethernet} {
		e := sim.New(1)
		cl := condor.NewCluster(e.RT(), condor.Config{FDCapacity: 1024})
		ctx, cancel := e.WithTimeout(e.Context(), 5*time.Minute)
		cl.StartHousekeeping(ctx)
		cfg := condor.DefaultSubmitterConfig(d)
		cfg.Threshold = 200
		for i := 0; i < 70; i++ { // demand ≈ 70×20.5 ≈ 1435 > 1024
			e.Spawn("submitter", func(p *sim.Proc) {
				var sub condor.Submitter
				sub.Loop(p, ctx, cl, cfg)
			})
		}
		if err := e.Run(); err != nil {
			fmt.Println(err)
		}
		cancel()
		fmt.Printf("%-8s crashes=%d\n", d, cl.Schedd.Crashes)
	}
	// Output:
	// Aloha    crashes=4
	// Ethernet crashes=0
}
