package condor

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// SubmitterConfig shapes one submitter client, the §5 scenario-one
// workload: "a large number of clients attempting to submit jobs into a
// Condor system", each wrapping condor_submit in an ftsh try.
type SubmitterConfig struct {
	// Discipline selects Fixed, Aloha, or Ethernet behaviour.
	Discipline core.Discipline
	// TryLimit bounds each work unit: the paper uses `try for 5 minutes`.
	TryLimit time.Duration
	// Threshold is the Ethernet carrier-sense level: defer while free
	// FDs < Threshold. The paper uses 1000.
	Threshold int
	// ThinkTime separates a successful submission from the next job, the
	// cadence of a Chimera-style DAG dispatcher.
	ThinkTime time.Duration
	// Observer receives discipline events.
	Observer core.Observer
	// Trace, when non-nil, records this submitter's attempt timeline.
	Trace *trace.Client
	// Backoff optionally overrides the paper-default backoff. Sharing
	// one template across submitters is safe: Try clones it per
	// invocation. Capping it near the lease quantum keeps a deferred
	// client's retry cadence inside the reclamation cycle.
	Backoff *core.Backoff
	// Budget optionally rate-limits retries (see core.RetryBudget):
	// under a partition the client waits for tokens instead of
	// storming. Shared template, cloned per work unit.
	Budget *core.RetryBudget
}

// DefaultSubmitterConfig mirrors the paper's scripts.
func DefaultSubmitterConfig(d core.Discipline) SubmitterConfig {
	return SubmitterConfig{
		Discipline: d,
		TryLimit:   5 * time.Minute,
		Threshold:  1000,
		ThinkTime:  time.Second,
	}
}

// Submitter is one client process's accounting.
type Submitter struct {
	// Submitted counts this client's successful submissions.
	Submitted int64
	// Exhausted counts work units abandoned after the try limit.
	Exhausted int64
}

// Loop runs the submitter until ctx is canceled: an endless sequence of
// jobs, each wrapped in a try with the configured discipline.
func (sub *Submitter) Loop(p core.Proc, ctx context.Context, cl *Cluster, cfg SubmitterConfig) {
	p.SetTracer(cfg.Trace)
	sense := core.ThresholdSense("file-nr", cl.FDs.Free, cfg.Threshold)
	client := &core.Client{
		Rt:         p,
		Discipline: cfg.Discipline,
		Limit:      core.For(cfg.TryLimit),
		Sense: func(ctx context.Context) error {
			err := sense(ctx)
			if err != nil {
				// A busy carrier means this client wants descriptors it
				// cannot get: start (or continue) its starvation clock.
				cl.FDs.NoteWant(p.Name())
			}
			return err
		},
		Backoff:  cfg.Backoff,
		Budget:   cfg.Budget,
		Observer: cfg.Observer,
		Trace:    cfg.Trace,
		Site:     "fds",
		Span:     "submit",
	}
	for ctx.Err() == nil {
		// One work unit = one idempotency key: every retry inside the
		// try below names the same job, so a reply-drop retry cannot
		// submit it twice. The schedd mints the key — process names may
		// be shared across clients and cannot disambiguate work units.
		key := cl.Schedd.MintKey()
		err := client.Do(ctx, func(ctx context.Context) error {
			return cl.Schedd.SubmitKeyed(p, ctx, key)
		})
		switch {
		case err == nil:
			sub.Submitted++
			if cfg.ThinkTime > 0 {
				if p.Sleep(ctx, cfg.ThinkTime) != nil {
					return
				}
			}
		case ctx.Err() != nil:
			return
		default:
			sub.Exhausted++
		}
	}
}
