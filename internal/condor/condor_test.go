package condor

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestFDTable(t *testing.T) {
	tb := NewFDTable(100)
	if !tb.TryAcquire(60) || !tb.TryAcquire(40) {
		t.Fatal("acquire within capacity failed")
	}
	if tb.TryAcquire(1) {
		t.Fatal("acquire over capacity succeeded")
	}
	if tb.Failures() != 1 {
		t.Fatalf("Failures = %d", tb.Failures())
	}
	tb.Release(40)
	if tb.Free() != 40 {
		t.Fatalf("Free = %d", tb.Free())
	}
}

func TestFDTableUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFDTable(10).Release(1)
}

func TestSingleSubmitSucceeds(t *testing.T) {
	e := sim.New(1)
	cl := NewCluster(e.RT(), Config{})
	var err error
	e.Spawn("sub", func(p *sim.Proc) {
		err = cl.Schedd.Submit(p, e.Context())
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if cl.Schedd.Jobs != 1 {
		t.Fatalf("Jobs = %d", cl.Schedd.Jobs)
	}
	if cl.FDs.InUse() != 0 {
		t.Fatalf("FDs leaked: %d in use", cl.FDs.InUse())
	}
	// Service time 1.5s ± 20%.
	if e.Elapsed() < 1200*time.Millisecond || e.Elapsed() > 1800*time.Millisecond {
		t.Fatalf("elapsed = %v", e.Elapsed())
	}
}

func TestSubmitFailsWhenFDsExhausted(t *testing.T) {
	e := sim.New(1)
	cl := NewCluster(e.RT(), Config{FDCapacity: 100, ClientFDs: 90, ClientFDJitter: -1})
	cl.FDs.TryAcquire(20) // someone else holds 20
	var err error
	e.Spawn("sub", func(p *sim.Proc) {
		err = cl.Schedd.Submit(p, e.Context())
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if !core.IsCollision(err) {
		t.Fatalf("err = %v, want collision", err)
	}
	if e.Elapsed() == 0 {
		t.Fatal("failed connect must cost time")
	}
}

func TestScheddCrashOnFDExhaustionResetsClients(t *testing.T) {
	e := sim.New(1)
	// Room for exactly one client's FDs + schedd conn; the second client
	// triggers a crash when the schedd can't allocate its side.
	cl := NewCluster(e.RT(), Config{
		FDCapacity: 40, ClientFDs: 16, ClientFDJitter: -1, ScheddFDs: 8,
		ServiceSlots: 1, ServiceTime: 10 * time.Second,
	})
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("sub", func(p *sim.Proc) {
			if i == 1 {
				p.SleepFor(time.Second) // arrive second
			}
			errs[i] = cl.Schedd.Submit(p, e.Context())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Client 1: 16+8 = 24 FDs in use; client 2 takes 16 more (40), then
	// the schedd cannot take 8 → crash; client 0 is reset too.
	if !core.IsCollision(errs[0]) || !core.IsCollision(errs[1]) {
		t.Fatalf("errs = %v", errs)
	}
	if cl.Schedd.Crashes != 1 {
		t.Fatalf("Crashes = %d", cl.Schedd.Crashes)
	}
	if cl.FDs.InUse() != 0 {
		t.Fatalf("FDs leaked after crash: %d", cl.FDs.InUse())
	}
}

func TestScheddRestartsAfterDelay(t *testing.T) {
	e := sim.New(1)
	cl := NewCluster(e.RT(), Config{RestartDelay: 30 * time.Second})
	cl.Schedd.crash()
	var err1, err2 error
	e.Spawn("sub", func(p *sim.Proc) {
		err1 = cl.Schedd.Submit(p, e.Context())
		p.SleepFor(40 * time.Second)
		err2 = cl.Schedd.Submit(p, e.Context())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !core.IsCollision(err1) {
		t.Fatalf("err1 = %v, want refused", err1)
	}
	if err2 != nil {
		t.Fatalf("err2 = %v, want success after restart", err2)
	}
}

func TestSubmitHonorsCallerTimeout(t *testing.T) {
	e := sim.New(1)
	cl := NewCluster(e.RT(), Config{ServiceSlots: 1, ServiceTime: time.Hour})
	// First client occupies the only slot for an hour; second times out
	// while queued.
	var err error
	e.Spawn("holder", func(p *sim.Proc) {
		_ = cl.Schedd.Submit(p, e.Context())
	})
	e.Spawn("waiter", func(p *sim.Proc) {
		p.SleepFor(time.Second)
		ctx, cancel := p.WithTimeout(e.Context(), 10*time.Second)
		defer cancel()
		err = cl.Schedd.Submit(p, ctx)
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestSubmitterLoopCountsJobs(t *testing.T) {
	e := sim.New(1)
	cl := NewCluster(e.RT(), Config{})
	ctx, cancel := e.WithTimeout(e.Context(), 60*time.Second)
	defer cancel()
	var sub Submitter
	e.Spawn("sub", func(p *sim.Proc) {
		sub.Loop(p, ctx, cl, DefaultSubmitterConfig(core.Aloha))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// ~2.5s per job cycle over 60s → ~24 jobs.
	if sub.Submitted < 15 || sub.Submitted > 40 {
		t.Fatalf("Submitted = %d", sub.Submitted)
	}
	if cl.Schedd.Jobs != sub.Submitted {
		t.Fatalf("schedd %d vs client %d", cl.Schedd.Jobs, sub.Submitted)
	}
}

func TestEthernetSubmitterDefersUnderFDPressure(t *testing.T) {
	e := sim.New(1)
	cl := NewCluster(e.RT(), Config{FDCapacity: 2000})
	cl.FDs.TryAcquire(1500) // free = 500 < threshold 1000
	e.Schedule(30*time.Second, func() { cl.FDs.Release(1500) })
	ctx, cancel := e.WithTimeout(e.Context(), 60*time.Second)
	defer cancel()
	defers := 0
	cfg := DefaultSubmitterConfig(core.Ethernet)
	cfg.Observer = core.ObserverFunc(func(ev core.Event, at time.Time, detail error) {
		if ev == core.EvDefer {
			defers++
		}
	})
	var sub Submitter
	e.Spawn("sub", func(p *sim.Proc) { sub.Loop(p, ctx, cl, cfg) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if defers == 0 {
		t.Fatal("no deferrals under FD pressure")
	}
	if sub.Submitted == 0 {
		t.Fatal("never submitted after pressure lifted")
	}
	if f := cl.FDs.Failures(); f != 0 {
		t.Fatalf("Ethernet client caused %d FD allocation failures", f)
	}
}

// Property: FDs never leak across arbitrary interleavings of submitters.
func TestQuickNoFDLeak(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		e := sim.New(seed)
		cl := NewCluster(e.RT(), Config{
			FDCapacity: 120, ClientFDs: 16, ScheddFDs: 4,
			ServiceSlots: 2, ServiceTime: 2 * time.Second,
			RestartDelay: 5 * time.Second,
		})
		ctx, cancel := e.WithTimeout(e.Context(), 90*time.Second)
		defer cancel()
		for i := 0; i < n; i++ {
			e.Spawn("sub", func(p *sim.Proc) {
				var sub Submitter
				cfg := DefaultSubmitterConfig(core.Discipline(seed % 3))
				cfg.TryLimit = 20 * time.Second
				sub.Loop(p, ctx, cl, cfg)
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return cl.FDs.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
