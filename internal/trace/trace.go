// Package trace is a deterministic, virtual-clock event tracer for the
// grid disciplines. Where internal/metrics records coarse cumulative
// series (how many jobs, how many collisions), this package records
// *when* each client probed, collided, backed off, acquired, and
// released — the behavioral evidence behind the paper's figures.
//
// The model mirrors Chrome's trace-event vocabulary: a Tracer holds a
// flat, append-only event log; each event belongs to a process (one per
// discipline) and a thread (one per client). Client is the per-client
// emitting handle; all of its methods are safe on a nil receiver, so a
// disabled tracer costs a single nil check and zero allocations on the
// hot path (see BenchmarkTryTraceOverhead at the repository root).
//
// Like internal/metrics, the tracer is single-writer under the
// simulation token; a mutex additionally serializes emission so the
// real-clock ftsh interpreter (whose forall branches run in parallel)
// can share one tracer. Events carry virtual-time offsets from a
// per-client clock, never the wall clock, so identical seeds produce
// byte-identical traces (TestJSONLDeterministic).
package trace

import (
	"sync"
	"time"
)

// Kind labels one traced event.
type Kind uint8

// Event kinds. Probe/CarrierSense record the Ethernet carrier-sense
// cycle; Attempt and its terminal kinds (Success, Failure, Collision)
// bracket resource-consuming work; Defer records an attempt abandoned
// before consuming the resource; BackoffStart/BackoffEnd bracket the
// inter-attempt sleep; Acquire/Release bracket resource tenure, with
// Revoke closing a tenure the lease watchdog reclaimed instead;
// FaultInjected marks a chaos-plan intervention; SpanBegin/SpanEnd
// bracket hierarchical scopes (ftsh try/forany/forall blocks, client
// attempt loops).
const (
	KProbe Kind = iota
	KCarrierSense
	KAttempt
	KSuccess
	KFailure
	KCollision
	KDefer
	KExhausted
	KBackoffStart
	KBackoffEnd
	KAcquire
	KRelease
	KFaultInjected
	KSpanBegin
	KSpanEnd
	KRevoke
	// Reservation-discipline kinds. Reserve records the book admitting
	// an advance booking (Arg = window start, ns of virtual time);
	// Admit records the booked window being claimed (Arg = window end);
	// Reject records admission refusing an attempt outright (Arg = the
	// book's shortfall, always positive); Forfeit records a booked
	// window abandoned without a claim (canceled or lapsed).
	KReserve
	KAdmit
	KReject
	KForfeit
	// Unreliable-channel kinds. MsgDrop records a control message the
	// channel swallowed; MsgDup records one it duplicated; Stale records
	// a stale-epoch message a fenced resource rejected (Arg = units the
	// rejected message covered).
	KMsgDrop
	KMsgDup
	KStale
)

// String names the kind as it appears in exported traces.
func (k Kind) String() string {
	switch k {
	case KProbe:
		return "probe"
	case KCarrierSense:
		return "carrier-sense"
	case KAttempt:
		return "attempt"
	case KSuccess:
		return "success"
	case KFailure:
		return "failure"
	case KCollision:
		return "collision"
	case KDefer:
		return "defer"
	case KExhausted:
		return "exhausted"
	case KBackoffStart:
		return "backoff-start"
	case KBackoffEnd:
		return "backoff-end"
	case KAcquire:
		return "acquire"
	case KRelease:
		return "release"
	case KFaultInjected:
		return "fault-injected"
	case KSpanBegin:
		return "span-begin"
	case KSpanEnd:
		return "span-end"
	case KRevoke:
		return "revoke"
	case KReserve:
		return "reserve"
	case KAdmit:
		return "admit"
	case KReject:
		return "reject"
	case KForfeit:
		return "forfeit"
	case KMsgDrop:
		return "msg-drop"
	case KMsgDup:
		return "msg-dup"
	case KStale:
		return "stale"
	default:
		return "unknown"
	}
}

// Event is one trace record. Arg is kind-specific: units for
// Acquire/Release, 1 for a busy CarrierSense (0 idle), the planned
// delay in nanoseconds for BackoffStart (whose Site carries the
// trigger), and the span id for SpanBegin/SpanEnd.
type Event struct {
	At   time.Duration // virtual time since the run began
	Kind Kind
	PID  int32 // process: one per discipline (or tool)
	TID  int32 // thread: one per client
	Arg  int64
	Site string // resource, injection site, or span name ("" if n/a)
}

// Meta identifies a trace: the simulation seed, the scenario, and the
// fault plan (if any) with its own seed, so exported traces are
// self-describing and fault events can be tied back to the plan that
// scheduled them.
type Meta struct {
	Seed     int64
	Scenario string
	Plan     string // chaos plan name; "" when no plan armed
	PlanSeed int64
}

// thread is the registry record behind one TID.
type thread struct {
	pid  int32
	name string
}

// Tracer is the shared event sink. Create one with New, hand out
// per-client handles with NewClient, and export with WriteJSONL or
// WriteChrome. The zero value is not ready for use.
type Tracer struct {
	mu      sync.Mutex
	meta    Meta
	procs   []string
	procIDs map[string]int32
	threads []thread
	events  []Event
	spanSeq int64
}

// New returns an empty tracer.
func New() *Tracer {
	return &Tracer{procIDs: make(map[string]int32)}
}

// SetMeta records the trace identity (seed, scenario, fault plan).
func (t *Tracer) SetMeta(m Meta) {
	t.mu.Lock()
	t.meta = m
	t.mu.Unlock()
}

// Meta returns the trace identity.
func (t *Tracer) Meta() Meta {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.meta
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns the recorded events in emission order. The slice is
// shared; callers must not mutate it.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Procs returns the registered process names indexed by PID.
func (t *Tracer) Procs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.procs
}

// NewClient registers a client under process proc (interned: clients of
// the same discipline share a PID) with its own fresh thread, reading
// virtual time from clock. A nil tracer returns a nil client, which is
// valid and inert.
func (t *Tracer) NewClient(proc, threadName string, clock func() time.Duration) *Client {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pid, ok := t.procIDs[proc]
	if !ok {
		pid = int32(len(t.procs))
		t.procs = append(t.procs, proc)
		t.procIDs[proc] = pid
	}
	tid := int32(len(t.threads))
	t.threads = append(t.threads, thread{pid: pid, name: threadName})
	return &Client{t: t, pid: pid, tid: tid, clock: clock}
}

// Client is one client's emitting handle: a (process, thread) identity
// plus a virtual clock. All methods are nil-safe no-ops, so disabled
// tracing is a pointer comparison on the hot path.
type Client struct {
	t     *Tracer
	pid   int32
	tid   int32
	clock func() time.Duration
}

// Tracer returns the underlying tracer (nil for a nil client).
func (c *Client) Tracer() *Tracer {
	if c == nil {
		return nil
	}
	return c.t
}

// Fork registers a sibling client: same process, new thread, same
// clock. The ftsh interpreter forks one per forall branch so parallel
// branches emit well-nested spans on their own timelines.
func (c *Client) Fork(threadName string) *Client {
	if c == nil {
		return nil
	}
	return c.t.NewClient(c.t.procName(c.pid), threadName, c.clock)
}

// procName resolves a PID back to its registered name.
func (t *Tracer) procName(pid int32) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.procs[pid]
}

// emit appends one event stamped with the client's clock.
func (c *Client) emit(k Kind, site string, arg int64) {
	ev := Event{At: c.clock(), Kind: k, PID: c.pid, TID: c.tid, Arg: arg, Site: site}
	c.t.mu.Lock()
	c.t.events = append(c.t.events, ev)
	c.t.mu.Unlock()
}

// Probe records a carrier-sense probe being issued against site.
func (c *Client) Probe(site string) {
	if c == nil {
		return
	}
	c.emit(KProbe, site, 0)
}

// CarrierSense records the probe's verdict: busy (defer) or idle.
func (c *Client) CarrierSense(site string, busy bool) {
	if c == nil {
		return
	}
	arg := int64(0)
	if busy {
		arg = 1
	}
	c.emit(KCarrierSense, site, arg)
}

// Attempt records the start of a resource-consuming attempt.
func (c *Client) Attempt() {
	if c == nil {
		return
	}
	c.emit(KAttempt, "", 0)
}

// Success terminates the current attempt successfully.
func (c *Client) Success() {
	if c == nil {
		return
	}
	c.emit(KSuccess, "", 0)
}

// Failure terminates the current attempt with a generic failure.
func (c *Client) Failure() {
	if c == nil {
		return
	}
	c.emit(KFailure, "", 0)
}

// Collision terminates the current attempt with a collision on site.
func (c *Client) Collision(site string) {
	if c == nil {
		return
	}
	c.emit(KCollision, site, 0)
}

// Defer records an attempt abandoned before consuming the resource.
func (c *Client) Defer(site string) {
	if c == nil {
		return
	}
	c.emit(KDefer, site, 0)
}

// Exhausted records a try giving up its budget.
func (c *Client) Exhausted() {
	if c == nil {
		return
	}
	c.emit(KExhausted, "", 0)
}

// BackoffStart records entry into the inter-attempt sleep: the planned
// delay plus the trigger that sent the client there ("collision",
// "failure", "defer", ...). The analyzer splits exponential penalty
// backoff (collision/failure) from polite carrier-sense waits (defer)
// on this tag.
func (c *Client) BackoffStart(planned time.Duration, trigger string) {
	if c == nil {
		return
	}
	c.emit(KBackoffStart, trigger, int64(planned))
}

// BackoffEnd records the end of the inter-attempt sleep (possibly cut
// short by a budget).
func (c *Client) BackoffEnd() {
	if c == nil {
		return
	}
	c.emit(KBackoffEnd, "", 0)
}

// Acquire records taking n units of resource res.
func (c *Client) Acquire(res string, n int64) {
	if c == nil {
		return
	}
	c.emit(KAcquire, res, n)
}

// Release records returning n units of resource res.
func (c *Client) Release(res string, n int64) {
	if c == nil {
		return
	}
	c.emit(KRelease, res, n)
}

// Revoke records the lease watchdog forcibly reclaiming n units of
// resource res from this client: tenure ended without a release.
func (c *Client) Revoke(res string, n int64) {
	if c == nil {
		return
	}
	c.emit(KRevoke, res, n)
}

// Reserve records the book at res admitting an advance booking whose
// window opens at start (virtual time since the run began).
func (c *Client) Reserve(res string, start time.Duration) {
	if c == nil {
		return
	}
	c.emit(KReserve, res, int64(start))
}

// Admit records a booked window on res being claimed; end is the
// window's close. The grammar demands the claim lie inside the window
// booked by the matching Reserve.
func (c *Client) Admit(res string, end time.Duration) {
	if c == nil {
		return
	}
	c.emit(KAdmit, res, int64(end))
}

// Reject records admission control at res refusing the attempt
// outright, shortfall units over the book's capacity. A rejection
// terminates the current attempt, like a collision, but marks the book
// full rather than the wire hot.
func (c *Client) Reject(res string, shortfall int64) {
	if c == nil {
		return
	}
	c.emit(KReject, res, shortfall)
}

// Forfeit records a booked window on res given up without a claim:
// the client canceled it, or the window lapsed unclaimed.
func (c *Client) Forfeit(res string) {
	if c == nil {
		return
	}
	c.emit(KForfeit, res, 0)
}

// FaultInjected records a chaos-plan intervention at site biting this
// client (or, for scheduled actions, the plan's own chaos process).
func (c *Client) FaultInjected(site string) {
	if c == nil {
		return
	}
	c.emit(KFaultInjected, site, 0)
}

// MsgDrop records a control message to res swallowed by the channel.
func (c *Client) MsgDrop(res string) {
	if c == nil {
		return
	}
	c.emit(KMsgDrop, res, 0)
}

// MsgDup records a control message to res duplicated by the channel.
func (c *Client) MsgDup(res string) {
	if c == nil {
		return
	}
	c.emit(KMsgDup, res, 0)
}

// Stale records a stale-epoch message covering n units that a fenced
// resource rejected.
func (c *Client) Stale(res string, n int64) {
	if c == nil {
		return
	}
	c.emit(KStale, res, n)
}

// SpanBegin opens a named hierarchical span and returns its id. Spans
// on one thread must nest properly (begin/end in stack order), which
// sequential clients guarantee; parallel scopes should Fork first.
func (c *Client) SpanBegin(name string) int64 {
	if c == nil {
		return 0
	}
	c.t.mu.Lock()
	c.t.spanSeq++
	id := c.t.spanSeq
	c.t.mu.Unlock()
	c.emit(KSpanBegin, name, id)
	return id
}

// SpanEnd closes the span opened by SpanBegin. id zero (from a nil
// client's SpanBegin) is ignored.
func (c *Client) SpanEnd(id int64) {
	if c == nil || id == 0 {
		return
	}
	c.emit(KSpanEnd, "", id)
}
