package trace

import (
	"bytes"
	"testing"
	"time"
)

// cellScript emits a deterministic little workload for one "cell" —
// two disciplines, two clients, spans, and every remapped field
// (PID, TID, span Arg) exercised — onto whatever tracer it is given.
func cellScript(tr *Tracer, cell int) {
	clk := func(at time.Duration) func() time.Duration {
		return func() time.Duration { return at }
	}
	base := time.Duration(cell) * time.Second
	a := tr.NewClient("ethernet", "client-0", clk(base))
	b := tr.NewClient("aloha", "client-1", clk(base+time.Millisecond))
	c := tr.NewClient("ethernet", "client-2", clk(base+2*time.Millisecond))

	id := a.SpanBegin("attempt-loop")
	a.Probe("cpu")
	a.CarrierSense("cpu", cell%2 == 0)
	a.Attempt()
	a.Collision("cpu")
	a.BackoffStart(time.Duration(cell+1)*time.Millisecond, "collision")
	a.BackoffEnd()
	a.SpanEnd(id)

	id2 := b.SpanBegin("try")
	b.Acquire("disk", int64(cell+1))
	b.Release("disk", int64(cell+1))
	b.SpanEnd(id2)

	c.Attempt()
	c.Success()
}

// TestMergeMatchesSharedTracer is the load-bearing equivalence behind
// the parallel sweep runner: per-cell tracers merged in cell order
// must be byte-identical (JSONL, Chrome, and summary) to the same
// cells emitting sequentially on one shared tracer.
func TestMergeMatchesSharedTracer(t *testing.T) {
	const cells = 4
	meta := Meta{Seed: 7, Scenario: "merge-test", Plan: "mixed", PlanSeed: 9}

	shared := New()
	shared.SetMeta(meta)
	for i := 0; i < cells; i++ {
		cellScript(shared, i)
	}

	merged := New()
	merged.SetMeta(meta)
	for i := 0; i < cells; i++ {
		cell := New()
		cellScript(cell, i)
		merged.Merge(cell)
	}

	var wantJSONL, gotJSONL bytes.Buffer
	if err := shared.WriteJSONL(&wantJSONL); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSONL(&gotJSONL); err != nil {
		t.Fatal(err)
	}
	if wantJSONL.String() != gotJSONL.String() {
		t.Errorf("JSONL drifted between shared and merged tracers.\nshared:\n%s\nmerged:\n%s",
			wantJSONL.String(), gotJSONL.String())
	}

	var wantChrome, gotChrome bytes.Buffer
	if err := shared.WriteChrome(&wantChrome); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteChrome(&gotChrome); err != nil {
		t.Fatal(err)
	}
	if wantChrome.String() != gotChrome.String() {
		t.Error("Chrome export drifted between shared and merged tracers")
	}

	var wantSum, gotSum bytes.Buffer
	if err := WriteSummary(&wantSum, Analyze(shared)); err != nil {
		t.Fatal(err)
	}
	if err := WriteSummary(&gotSum, Analyze(merged)); err != nil {
		t.Fatal(err)
	}
	if wantSum.String() != gotSum.String() {
		t.Errorf("summary drifted.\nshared:\n%s\nmerged:\n%s", wantSum.String(), gotSum.String())
	}
}

// TestMergeRemapsIdentifiers pins the mechanics: PID interning, TID
// offsetting, and span-id offsetting across a merge boundary.
func TestMergeRemapsIdentifiers(t *testing.T) {
	dst := New()
	cellScript(dst, 0)
	src := New()
	cellScript(src, 1)
	dstSpans := dst.spanSeq
	dst.Merge(src)

	if got, want := len(dst.Procs()), 2; got != want {
		t.Fatalf("procs = %d (%v), want %d (names interned)", got, dst.Procs(), want)
	}
	if got, want := len(dst.threads), 6; got != want {
		t.Fatalf("threads = %d, want %d", got, want)
	}
	// The merged copy of src's first thread must point at the interned
	// "ethernet" PID (0 in dst), not src's local PID.
	if th := dst.threads[3]; th.pid != 0 || th.name != "client-0" {
		t.Fatalf("merged thread = %+v, want pid 0 name client-0", th)
	}
	for _, ev := range dst.Events()[len(src.Events()):] {
		if ev.Kind == KSpanBegin && ev.Arg <= dstSpans {
			t.Fatalf("merged span id %d not offset past dst's %d", ev.Arg, dstSpans)
		}
	}
	if dst.spanSeq != dstSpans+src.spanSeq {
		t.Fatalf("spanSeq = %d, want %d", dst.spanSeq, dstSpans+src.spanSeq)
	}
	// src must be untouched.
	if src.Events()[0].TID != 0 {
		t.Fatal("Merge mutated src events")
	}
}

// TestMergeNilSafe pins that nil receivers and nil sources are no-ops.
func TestMergeNilSafe(t *testing.T) {
	var nilT *Tracer
	nilT.Merge(New()) // must not panic
	dst := New()
	dst.Merge(nil)
	if dst.Len() != 0 {
		t.Fatal("merging nil added events")
	}
}
