package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteJSONL writes the trace as line-delimited JSON: one meta line,
// one line per process and thread registration, then one line per
// event in emission order. All numbers are integers (times in
// nanoseconds) and the encoder is hand-rolled, so two runs with the
// same seed produce byte-identical output.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `{"meta":{"seed":%d,"scenario":%s,"plan":%s,"planSeed":%d}}`+"\n",
		t.meta.Seed, strconv.Quote(t.meta.Scenario), strconv.Quote(t.meta.Plan), t.meta.PlanSeed)
	for pid, name := range t.procs {
		fmt.Fprintf(bw, `{"proc":{"pid":%d,"name":%s}}`+"\n", pid, strconv.Quote(name))
	}
	for tid, th := range t.threads {
		fmt.Fprintf(bw, `{"thread":{"tid":%d,"pid":%d,"name":%s}}`+"\n", tid, th.pid, strconv.Quote(th.name))
	}
	for _, ev := range t.events {
		fmt.Fprintf(bw, `{"t":%d,"k":%s,"pid":%d,"tid":%d,"arg":%d,"site":%s}`+"\n",
			int64(ev.At), strconv.Quote(ev.Kind.String()), ev.PID, ev.TID, ev.Arg, strconv.Quote(ev.Site))
	}
	return bw.Flush()
}

// usec renders a duration as microseconds with fractional precision,
// the unit Chrome trace-event timestamps use.
func usec(d time.Duration) string {
	ns := int64(d)
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// chromeWriter accumulates trace-event objects with the bookkeeping
// needed to pair begin/end kinds into complete (ph "X") slices.
type chromeWriter struct {
	bw    *bufio.Writer
	first bool
	err   error
}

func (cw *chromeWriter) event(body string) {
	if cw.err != nil {
		return
	}
	if !cw.first {
		if _, err := cw.bw.WriteString(",\n"); err != nil {
			cw.err = err
			return
		}
	}
	cw.first = false
	if _, err := cw.bw.WriteString(body); err != nil {
		cw.err = err
	}
}

// openInterval is a begin event waiting for its matching end.
type openInterval struct {
	at   time.Duration
	site string
	arg  int64
}

// WriteChrome writes the trace in the Chrome trace-event JSON format,
// loadable in Perfetto or chrome://tracing: one "process" per
// discipline, one "thread" per client. Attempts, backoffs, and
// resource holds become complete ("X") slices; spans become nested
// B/E pairs; probes, sense verdicts, deferrals, and faults become
// instants. Intervals still open when the trace ends are closed at the
// final timestamp so viewers never see dangling slices.
func (t *Tracer) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cw := &chromeWriter{bw: bufio.NewWriter(w), first: true}
	if _, err := cw.bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}

	// Metadata: name every process and thread.
	for pid, name := range t.procs {
		cw.event(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			pid, strconv.Quote(name)))
		cw.event(fmt.Sprintf(`{"name":"process_sort_index","ph":"M","pid":%d,"tid":0,"args":{"sort_index":%d}}`,
			pid, pid))
	}
	for tid, th := range t.threads {
		cw.event(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			th.pid, tid, strconv.Quote(th.name)))
	}

	var end time.Duration
	for _, ev := range t.events {
		if ev.At > end {
			end = ev.At
		}
	}

	slice := func(name string, pid, tid int32, from, to time.Duration, args string) {
		cw.event(fmt.Sprintf(`{"name":%s,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{%s}}`,
			strconv.Quote(name), pid, tid, usec(from), usec(to-from), args))
	}
	instant := func(name string, pid, tid int32, at time.Duration, args string) {
		cw.event(fmt.Sprintf(`{"name":%s,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"args":{%s}}`,
			strconv.Quote(name), pid, tid, usec(at), args))
	}

	attempts := make(map[int32]*openInterval) // per tid
	backoffs := make(map[int32]*openInterval) // per tid
	holds := make(map[int32][]openInterval)   // per tid, LIFO per site
	spans := make(map[int64]openInterval)     // span id -> begin
	spanTID := make(map[int64]int32)
	var openSpans []int64 // ids in begin order, for end-of-trace closing

	for _, ev := range t.events {
		switch ev.Kind {
		case KProbe:
			instant("probe", ev.PID, ev.TID, ev.At, "\"site\":"+strconv.Quote(ev.Site))
		case KCarrierSense:
			verdict := "sense-idle"
			if ev.Arg != 0 {
				verdict = "sense-busy"
			}
			instant(verdict, ev.PID, ev.TID, ev.At, "\"site\":"+strconv.Quote(ev.Site))
		case KAttempt:
			attempts[ev.TID] = &openInterval{at: ev.At}
		case KSuccess, KFailure, KCollision, KReject:
			if a := attempts[ev.TID]; a != nil {
				args := "\"result\":" + strconv.Quote(ev.Kind.String())
				if ev.Site != "" {
					args += ",\"site\":" + strconv.Quote(ev.Site)
				}
				slice("attempt", ev.PID, ev.TID, a.at, ev.At, args)
				delete(attempts, ev.TID)
			}
		case KDefer:
			instant("defer", ev.PID, ev.TID, ev.At, "\"site\":"+strconv.Quote(ev.Site))
		case KReserve:
			instant("reserve", ev.PID, ev.TID, ev.At,
				fmt.Sprintf(`"site":%s,"window_start_ns":%d`, strconv.Quote(ev.Site), ev.Arg))
		case KAdmit:
			instant("admit", ev.PID, ev.TID, ev.At,
				fmt.Sprintf(`"site":%s,"window_end_ns":%d`, strconv.Quote(ev.Site), ev.Arg))
		case KForfeit:
			instant("forfeit", ev.PID, ev.TID, ev.At, "\"site\":"+strconv.Quote(ev.Site))
		case KExhausted:
			instant("exhausted", ev.PID, ev.TID, ev.At, "")
		case KBackoffStart:
			backoffs[ev.TID] = &openInterval{at: ev.At, site: ev.Site, arg: ev.Arg}
		case KBackoffEnd:
			if b := backoffs[ev.TID]; b != nil {
				args := fmt.Sprintf(`"trigger":%s,"planned_ns":%d`, strconv.Quote(b.site), b.arg)
				slice("backoff", ev.PID, ev.TID, b.at, ev.At, args)
				delete(backoffs, ev.TID)
			}
		case KAcquire:
			holds[ev.TID] = append(holds[ev.TID], openInterval{at: ev.At, site: ev.Site, arg: ev.Arg})
		case KRelease:
			// Pop the most recent matching acquire on this thread.
			hs := holds[ev.TID]
			for i := len(hs) - 1; i >= 0; i-- {
				if hs[i].site == ev.Site {
					args := fmt.Sprintf(`"units":%d`, hs[i].arg)
					slice("hold:"+ev.Site, ev.PID, ev.TID, hs[i].at, ev.At, args)
					holds[ev.TID] = append(hs[:i], hs[i+1:]...)
					break
				}
			}
		case KRevoke:
			// A revoked tenure closes like a release, but the slice is
			// marked so viewers can tell reclaims from voluntary ends.
			hs := holds[ev.TID]
			for i := len(hs) - 1; i >= 0; i-- {
				if hs[i].site == ev.Site {
					args := fmt.Sprintf(`"units":%d,"revoked":true`, hs[i].arg)
					slice("hold:"+ev.Site, ev.PID, ev.TID, hs[i].at, ev.At, args)
					holds[ev.TID] = append(hs[:i], hs[i+1:]...)
					break
				}
			}
		case KFaultInjected:
			instant("fault:"+ev.Site, ev.PID, ev.TID, ev.At, "\"site\":"+strconv.Quote(ev.Site))
		case KSpanBegin:
			cw.event(fmt.Sprintf(`{"name":%s,"ph":"B","pid":%d,"tid":%d,"ts":%s}`,
				strconv.Quote(ev.Site), ev.PID, ev.TID, usec(ev.At)))
			spans[ev.Arg] = openInterval{at: ev.At, site: ev.Site}
			spanTID[ev.Arg] = ev.TID
			openSpans = append(openSpans, ev.Arg)
		case KSpanEnd:
			if sp, ok := spans[ev.Arg]; ok {
				cw.event(fmt.Sprintf(`{"name":%s,"ph":"E","pid":%d,"tid":%d,"ts":%s}`,
					strconv.Quote(sp.site), ev.PID, ev.TID, usec(ev.At)))
				delete(spans, ev.Arg)
				delete(spanTID, ev.Arg)
			}
		}
	}

	// Close anything still open at the end of the trace, in
	// deterministic (tid, then begin) order.
	for tid := int32(0); int(tid) < len(t.threads); tid++ {
		pid := t.threads[tid].pid
		if a := attempts[tid]; a != nil {
			slice("attempt", pid, tid, a.at, end, `"result":"open"`)
		}
		if b := backoffs[tid]; b != nil {
			args := fmt.Sprintf(`"trigger":%s,"planned_ns":%d`, strconv.Quote(b.site), b.arg)
			slice("backoff", pid, tid, b.at, end, args)
		}
		for _, h := range holds[tid] {
			slice("hold:"+h.site, pid, tid, h.at, end, fmt.Sprintf(`"units":%d`, h.arg))
		}
	}
	// Unclosed spans must end innermost-first to keep B/E nesting legal.
	for i := len(openSpans) - 1; i >= 0; i-- {
		id := openSpans[i]
		sp, ok := spans[id]
		if !ok {
			continue
		}
		tid := spanTID[id]
		cw.event(fmt.Sprintf(`{"name":%s,"ph":"E","pid":%d,"tid":%d,"ts":%s}`,
			strconv.Quote(sp.site), t.threads[tid].pid, tid, usec(end)))
	}

	if cw.err != nil {
		return cw.err
	}
	meta := fmt.Sprintf(`,"displayTimeUnit":"ms","otherData":{"seed":%d,"scenario":%s,"plan":%s,"planSeed":%d}`,
		t.meta.Seed, strconv.Quote(t.meta.Scenario), strconv.Quote(t.meta.Plan), t.meta.PlanSeed)
	if _, err := cw.bw.WriteString("\n]" + meta + "}\n"); err != nil {
		return err
	}
	return cw.bw.Flush()
}
