package trace

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Summary aggregates one discipline's (one process's) behavior over a
// trace: how often it attempted, how often those attempts collided,
// how its clients split their time between penalty backoff, polite
// carrier-sense waiting, holding the resource, and idling, and how
// much attempt time was wasted on work that ended in failure.
type Summary struct {
	Proc       string
	Threads    int
	Attempts   int
	Successes  int
	Collisions int
	Failures   int
	Deferrals  int
	Probes     int
	SenseBusy  int
	Faults     int // chaos interventions recorded against this process
	Revokes    int // leases forcibly reclaimed from this process

	// Reservation-discipline counters. These are not rendered by
	// WriteSummary — the seed goldens predate the fourth discipline and
	// their column layout is frozen — but FigRes and the differential
	// tests read them directly.
	Reserves   int // advance bookings admitted to the book
	Admits     int // booked windows claimed
	Rejections int // attempts refused outright by admission control
	Forfeits   int // booked windows abandoned without a claim

	Backoff time.Duration // backoff triggered by collision or failure
	CSWait  time.Duration // backoff triggered by a carrier-sense defer
	Holding time.Duration // at least one resource held
	Busy    time.Duration // in an attempt, probing, or holding
	Idle    time.Duration // window minus busy, backoff, and cs-wait
	Wasted  time.Duration // attempt time ending in collision or failure

	// Span distributions: every completed holding span, penalty
	// backoff, and polite cs-wait contributes one observation (in
	// seconds), so the quantile table (WriteQuantiles) can report
	// P50/P95/P99 alongside Min/Max/Mean. The aggregate duration
	// columns above are unchanged — the frozen WriteSummary layout
	// does not render these.
	HoldingDist *metrics.Histogram
	BackoffDist *metrics.Histogram
	CSWaitDist  *metrics.Histogram

	Window time.Duration // per-thread observation window
}

// CollisionRate is collisions per attempt (0 when no attempts).
func (s Summary) CollisionRate() float64 { return rate(s.Collisions, s.Attempts) }

// SenseBusyRate is the fraction of carrier-sense probes that came back
// busy (0 when no probes).
func (s Summary) SenseBusyRate() float64 { return rate(s.SenseBusy, s.Probes) }

func rate(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// share expresses d as a fraction of the discipline's total
// thread-time (window x threads).
func (s Summary) share(d time.Duration) float64 {
	total := time.Duration(s.Threads) * s.Window
	if total <= 0 {
		return 0
	}
	return float64(d) / float64(total)
}

// BackoffShare is the fraction of thread-time spent in penalty backoff.
func (s Summary) BackoffShare() float64 { return s.share(s.Backoff) }

// CSWaitShare is the fraction of thread-time spent politely waiting
// after a busy carrier sense.
func (s Summary) CSWaitShare() float64 { return s.share(s.CSWait) }

// HoldingShare is the fraction of thread-time spent holding resources.
func (s Summary) HoldingShare() float64 { return s.share(s.Holding) }

// IdleShare is the fraction of thread-time spent neither attempting,
// holding, nor waiting.
func (s Summary) IdleShare() float64 { return s.share(s.Idle) }

// threadState is the per-thread walk state used by Analyze.
type threadState struct {
	inAttempt    bool
	attemptStart time.Duration

	inProbe bool // between a probe and its carrier-sense verdict

	inBackoff    bool
	backoffStart time.Duration
	backoffKind  string

	holdDepth int
	holdStart time.Duration

	busyStart time.Duration // valid while busy()
}

// busy reports whether the thread is doing productive work: attempting,
// probing a carrier, or holding a resource.
func (st *threadState) busy() bool {
	return st.inAttempt || st.inProbe || st.holdDepth > 0
}

// Analyze folds the trace into one Summary per process, in PID
// (registration) order. The observation window is the latest event
// time in the trace, applied uniformly so disciplines traced in the
// same run are directly comparable; intervals still open at the window
// edge are counted up to it.
func Analyze(t *Tracer) []Summary {
	t.mu.Lock()
	defer t.mu.Unlock()

	var window time.Duration
	for _, ev := range t.events {
		if ev.At > window {
			window = ev.At
		}
	}

	sums := make([]Summary, len(t.procs))
	for pid, name := range t.procs {
		sums[pid] = Summary{
			Proc:        name,
			Window:      window,
			HoldingDist: metrics.NewHistogram(name + "/holding"),
			BackoffDist: metrics.NewHistogram(name + "/backoff"),
			CSWaitDist:  metrics.NewHistogram(name + "/cs-wait"),
		}
	}
	for _, th := range t.threads {
		sums[th.pid].Threads++
	}

	states := make([]threadState, len(t.threads))
	for _, ev := range t.events {
		st := &states[ev.TID]
		s := &sums[ev.PID]
		wasBusy := st.busy()
		switch ev.Kind {
		case KProbe:
			s.Probes++
			st.inProbe = true
		case KCarrierSense:
			if ev.Arg != 0 {
				s.SenseBusy++
			}
			st.inProbe = false
		case KAttempt:
			s.Attempts++
			st.inAttempt = true
			st.attemptStart = ev.At
		case KSuccess, KFailure, KCollision, KReject:
			switch ev.Kind {
			case KSuccess:
				s.Successes++
			case KFailure:
				s.Failures++
			case KCollision:
				s.Collisions++
			case KReject:
				s.Rejections++
			}
			if st.inAttempt {
				if ev.Kind != KSuccess {
					s.Wasted += ev.At - st.attemptStart
				}
				st.inAttempt = false
			}
		case KDefer:
			s.Deferrals++
		case KReserve:
			s.Reserves++
		case KAdmit:
			s.Admits++
		case KForfeit:
			s.Forfeits++
		case KFaultInjected:
			s.Faults++
		case KBackoffStart:
			st.inBackoff = true
			st.backoffStart = ev.At
			st.backoffKind = ev.Site
		case KBackoffEnd:
			if st.inBackoff {
				st.inBackoff = false
				d := ev.At - st.backoffStart
				if st.backoffKind == "defer" {
					s.CSWait += d
					s.CSWaitDist.Observe(d.Seconds())
				} else {
					s.Backoff += d
					s.BackoffDist.Observe(d.Seconds())
				}
			}
		case KAcquire:
			if st.holdDepth == 0 {
				st.holdStart = ev.At
			}
			st.holdDepth++
		case KRelease:
			if st.holdDepth > 0 {
				st.holdDepth--
				if st.holdDepth == 0 {
					s.Holding += ev.At - st.holdStart
					s.HoldingDist.Observe((ev.At - st.holdStart).Seconds())
				}
			}
		case KRevoke:
			s.Revokes++
			if st.holdDepth > 0 {
				st.holdDepth--
				if st.holdDepth == 0 {
					s.Holding += ev.At - st.holdStart
					s.HoldingDist.Observe((ev.At - st.holdStart).Seconds())
				}
			}
		}
		// Busy is the union of the attempt, probe, and hold intervals,
		// accounted at membership transitions.
		if nowBusy := st.busy(); nowBusy != wasBusy {
			if nowBusy {
				st.busyStart = ev.At
			} else {
				s.Busy += ev.At - st.busyStart
			}
		}
	}

	// Close intervals still open at the window edge.
	for tid := range states {
		st := &states[tid]
		s := &sums[t.threads[tid].pid]
		if st.inBackoff {
			d := window - st.backoffStart
			if st.backoffKind == "defer" {
				s.CSWait += d
				s.CSWaitDist.Observe(d.Seconds())
			} else {
				s.Backoff += d
				s.BackoffDist.Observe(d.Seconds())
			}
		}
		if st.holdDepth > 0 {
			s.Holding += window - st.holdStart
			s.HoldingDist.Observe((window - st.holdStart).Seconds())
		}
		if st.busy() {
			s.Busy += window - st.busyStart
		}
	}

	for pid := range sums {
		s := &sums[pid]
		total := time.Duration(s.Threads) * s.Window
		idle := total - s.Busy - s.Backoff - s.CSWait
		if idle < 0 {
			idle = 0
		}
		s.Idle = idle
	}
	return sums
}

// WriteSummary renders the per-discipline summaries as an aligned text
// table. Shares are percentages of total thread-time; "backoff" counts
// only penalty backoff after a collision or failure, while "cs-wait"
// counts the polite waiting an Ethernet client does after sensing a
// busy carrier.
func WriteSummary(w io.Writer, sums []Summary) error {
	if _, err := fmt.Fprintf(w, "# trace summary: window=%s\n", durStr(windowOf(sums))); err != nil {
		return err
	}
	header := []string{"discipline", "clients", "attempts", "coll", "coll-rate", "probes", "sense-busy", "backoff", "cs-wait", "holding", "idle", "faults", "wasted", "revokes"}
	rows := [][]string{header}
	for _, s := range sums {
		rows = append(rows, []string{
			s.Proc,
			fmt.Sprintf("%d", s.Threads),
			fmt.Sprintf("%d", s.Attempts),
			fmt.Sprintf("%d", s.Collisions),
			pct(s.CollisionRate()),
			fmt.Sprintf("%d", s.Probes),
			pct(s.SenseBusyRate()),
			pct(s.BackoffShare()),
			pct(s.CSWaitShare()),
			pct(s.HoldingShare()),
			pct(s.IdleShare()),
			fmt.Sprintf("%d", s.Faults),
			durStr(s.Wasted),
			fmt.Sprintf("%d", s.Revokes),
		})
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], cell)
			}
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteQuantiles renders the per-discipline span distributions —
// holding, penalty backoff, and polite cs-wait — as an aligned text
// table of count, min, mean, P50, P95, P99, and max. It is a separate
// table from WriteSummary because the summary's column layout is
// frozen by the seed goldens; gridbench emits it only under
// -trace-quantiles.
func WriteQuantiles(w io.Writer, sums []Summary) error {
	if _, err := fmt.Fprintf(w, "# trace quantiles: window=%s\n", durStr(windowOf(sums))); err != nil {
		return err
	}
	header := []string{"discipline", "span", "count", "min", "mean", "p50", "p95", "p99", "max"}
	rows := [][]string{header}
	for _, s := range sums {
		for _, d := range []struct {
			span string
			h    *metrics.Histogram
		}{
			{"holding", s.HoldingDist},
			{"backoff", s.BackoffDist},
			{"cs-wait", s.CSWaitDist},
		} {
			if d.h == nil {
				continue
			}
			rows = append(rows, []string{
				s.Proc,
				d.span,
				fmt.Sprintf("%d", d.h.Count),
				secStr(d.h.Min()),
				secStr(d.h.Mean()),
				secStr(d.h.P50()),
				secStr(d.h.P95()),
				secStr(d.h.P99()),
				secStr(d.h.Max()),
			})
		}
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i <= 1 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], cell)
			}
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	return nil
}

// secStr renders a span observation (recorded in seconds) as a
// millisecond-rounded duration cell.
func secStr(sec float64) string {
	return durStr(time.Duration(sec * float64(time.Second)))
}

func windowOf(sums []Summary) time.Duration {
	if len(sums) == 0 {
		return 0
	}
	return sums[0].Window
}

// pct formats a fraction as a fixed-width percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// durStr rounds a duration to milliseconds for stable, readable cells.
func durStr(d time.Duration) string { return d.Round(time.Millisecond).String() }
