package trace

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestCheckNil(t *testing.T) {
	if err := Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckWellFormedTrace(t *testing.T) {
	// One client running a full Ethernet cycle: sense-idle, attempt,
	// collision, backoff, sense-busy, defer, attempt, success — wrapped
	// in a span, with a resource tenure inside the winning attempt.
	tr := New()
	c := &fakeClock{}
	cl := tr.NewClient("Ethernet", "client-0", c.read)
	span := cl.SpanBegin("submit")
	cl.Probe("file-nr")
	cl.CarrierSense("file-nr", false)
	cl.Attempt()
	cl.Collision("file-nr")
	cl.BackoffStart(time.Second, "collision")
	c.advance(time.Second)
	cl.BackoffEnd()
	cl.Probe("file-nr")
	cl.CarrierSense("file-nr", true)
	cl.Defer("file-nr")
	cl.BackoffStart(2*time.Second, "defer")
	c.advance(2 * time.Second)
	cl.BackoffEnd()
	cl.Probe("file-nr")
	cl.CarrierSense("file-nr", false)
	cl.Attempt()
	cl.Acquire("slot", 1)
	cl.Release("slot", 1)
	cl.Success()
	cl.SpanEnd(span)
	if err := Check(tr); err != nil {
		t.Fatal(err)
	}
}

func TestCheckAllowsTruncation(t *testing.T) {
	// A window cancellation can cut a thread between any begin and its
	// end: open span, pending probe, unfinished backoff, held units.
	tr := New()
	c := &fakeClock{}
	cl := tr.NewClient("Ethernet", "client-0", c.read)
	cl.SpanBegin("submit")
	cl.Attempt()
	cl.Acquire("slot", 1)
	cl.BackoffStart(time.Second, "failure")
	if err := Check(tr); err != nil {
		t.Fatal(err)
	}
}

func TestCheckAllowsNestedAttempts(t *testing.T) {
	// A try inside a forany body: both attempts open before either
	// outcome lands.
	tr := New()
	c := &fakeClock{}
	cl := tr.NewClient("Aloha", "client-0", c.read)
	cl.Attempt()
	cl.Attempt()
	cl.Success()
	cl.Success()
	if err := Check(tr); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInterleavedThreadsIndependent(t *testing.T) {
	// Violations are per-thread: two threads' events interleaved in the
	// flat log must each be checked against their own state.
	tr := New()
	c := &fakeClock{}
	a := tr.NewClient("Ethernet", "a", c.read)
	b := tr.NewClient("Ethernet", "b", c.read)
	sa := a.SpanBegin("x")
	sb := b.SpanBegin("y")
	a.Attempt()
	b.Attempt()
	b.Success()
	a.Success()
	b.SpanEnd(sb)
	a.SpanEnd(sa)
	if err := Check(tr); err != nil {
		t.Fatal(err)
	}
}

// violation builds a trace with the given emission script and asserts
// Check reports a CheckError mentioning rule.
func violation(t *testing.T, rule string, script func(cl *Client, c *fakeClock)) {
	t.Helper()
	tr := New()
	c := &fakeClock{}
	cl := tr.NewClient("Ethernet", "client-0", c.read)
	script(cl, c)
	err := Check(tr)
	if err == nil {
		t.Fatalf("Check passed, want violation %q", rule)
	}
	var ce *CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *CheckError", err)
	}
	if !strings.Contains(err.Error(), rule) {
		t.Fatalf("err = %v, want mention of %q", err, rule)
	}
}

func TestCheckViolations(t *testing.T) {
	violation(t, "timestamp went backwards", func(cl *Client, c *fakeClock) {
		c.advance(time.Second)
		cl.Attempt()
		c.now = 0
		cl.Success()
	})
	violation(t, "no open span", func(cl *Client, c *fakeClock) {
		cl.SpanEnd(7)
	})
	violation(t, "does not close innermost span", func(cl *Client, c *fakeClock) {
		outer := cl.SpanBegin("outer")
		cl.SpanBegin("inner")
		cl.SpanEnd(outer)
	})
	violation(t, "backoff started inside a backoff", func(cl *Client, c *fakeClock) {
		cl.BackoffStart(time.Second, "failure")
		cl.BackoffStart(time.Second, "failure")
	})
	violation(t, "backoff end with no backoff", func(cl *Client, c *fakeClock) {
		cl.BackoffEnd()
	})
	violation(t, "second probe", func(cl *Client, c *fakeClock) {
		cl.Probe("file-nr")
		cl.Probe("file-nr")
	})
	violation(t, "defer without a preceding busy carrier sense", func(cl *Client, c *fakeClock) {
		cl.Probe("file-nr")
		cl.CarrierSense("file-nr", false)
		cl.Defer("file-nr")
	})
	violation(t, "outcome with no open attempt", func(cl *Client, c *fakeClock) {
		cl.Success()
	})
	violation(t, "more unit(s)", func(cl *Client, c *fakeClock) {
		cl.Acquire("slot", 1)
		cl.Release("slot", 2)
	})
}

// advance moves the shared test clock (see trace_test.go) forward.
func (f *fakeClock) advance(d time.Duration) { f.now += d }
