package trace

import (
	"fmt"
	"time"
)

// CheckError reports the first causal well-formedness violation found
// in a trace, locating it by thread and event index.
type CheckError struct {
	TID   int32
	Index int // index into the flat event log
	Event Event
	Rule  string
}

func (e *CheckError) Error() string {
	return fmt.Sprintf("trace: thread %d event %d (%s at %v): %s",
		e.TID, e.Index, e.Event.Kind, e.Event.At, e.Rule)
}

// Check verifies the causal well-formedness of a recorded trace: the
// per-thread event grammar every emitter in this repository follows,
// regardless of backend. It is the differential harness's structural
// oracle — the simulator and the live backend interleave threads
// differently, but each thread's own timeline must obey the same rules:
//
//   - timestamps are non-decreasing within a thread;
//   - spans nest (every SpanEnd closes the innermost open span's id);
//   - backoff intervals do not nest and never end without starting;
//   - every Success, Failure, or Collision closes an open Attempt
//     (attempts may nest: an ftsh try inside a forany body);
//   - a Defer follows a busy carrier sense on its thread;
//   - a second Probe does not occur before the first's CarrierSense;
//   - per resource, units released or revoked never exceed units
//     acquired at any point in the thread's timeline;
//   - an Admit consumes the thread's oldest booked Reserve on that
//     resource, and the grant must lie inside its reserved window;
//   - a Reject closes an open Attempt, like a Collision, and must carry
//     a positive shortfall — a rejection from a book that was not full
//     is a contradiction;
//   - a Forfeit consumes a booked Reserve that was never admitted.
//
// Truncation is legal: a run's window can cancel a thread between a
// begin and its end, so open spans, a pending probe, an unfinished
// backoff, positively held units, and still-booked reservations at
// end-of-trace are not errors. A nil error means the trace is
// well-formed.
func Check(t *Tracer) error {
	if t == nil {
		return nil
	}
	return CheckEvents(t.Events())
}

// checkState is the per-thread grammar automaton.
type checkState struct {
	lastAt       time.Duration
	spans        []int64
	inBackoff    bool
	probePending bool
	senseBusy    bool // last carrier sense on this thread was busy
	attemptDepth int
	held         map[string]int64   // resource site -> units held
	booked       map[string][]int64 // resource site -> FIFO of reserved window starts (ns)
}

// CheckEvents is Check on a raw event log in emission order.
func CheckEvents(evs []Event) error {
	threads := map[int32]*checkState{}
	for i, ev := range evs {
		ts := threads[ev.TID]
		if ts == nil {
			ts = &checkState{held: map[string]int64{}, booked: map[string][]int64{}}
			threads[ev.TID] = ts
		}
		fail := func(rule string) error {
			return &CheckError{TID: ev.TID, Index: i, Event: ev, Rule: rule}
		}
		if ev.At < ts.lastAt {
			return fail(fmt.Sprintf("timestamp went backwards (previous %v)", ts.lastAt))
		}
		ts.lastAt = ev.At

		switch ev.Kind {
		case KSpanBegin:
			ts.spans = append(ts.spans, ev.Arg)
		case KSpanEnd:
			if len(ts.spans) == 0 {
				return fail("span end with no open span")
			}
			if top := ts.spans[len(ts.spans)-1]; top != ev.Arg {
				return fail(fmt.Sprintf("span end id %d does not close innermost span %d", ev.Arg, top))
			}
			ts.spans = ts.spans[:len(ts.spans)-1]
		case KBackoffStart:
			if ts.inBackoff {
				return fail("backoff started inside a backoff")
			}
			ts.inBackoff = true
		case KBackoffEnd:
			if !ts.inBackoff {
				return fail("backoff end with no backoff in progress")
			}
			ts.inBackoff = false
		case KProbe:
			if ts.probePending {
				return fail("second probe before the first's carrier sense")
			}
			ts.probePending = true
		case KCarrierSense:
			ts.probePending = false
			ts.senseBusy = ev.Arg != 0
		case KDefer:
			if !ts.senseBusy {
				return fail("defer without a preceding busy carrier sense")
			}
		case KAttempt:
			ts.attemptDepth++
		case KSuccess, KFailure, KCollision:
			if ts.attemptDepth == 0 {
				return fail("attempt outcome with no open attempt")
			}
			ts.attemptDepth--
		case KAcquire:
			ts.held[ev.Site] += ev.Arg
		case KReserve:
			ts.booked[ev.Site] = append(ts.booked[ev.Site], ev.Arg)
		case KAdmit:
			q := ts.booked[ev.Site]
			if len(q) == 0 {
				return fail("admit with no booked reservation")
			}
			start := q[0]
			ts.booked[ev.Site] = q[1:]
			if int64(ev.At) < start || int64(ev.At) >= ev.Arg {
				return fail(fmt.Sprintf("grant at %v outside its reserved window [%v, %v)",
					ev.At, time.Duration(start), time.Duration(ev.Arg)))
			}
		case KForfeit:
			q := ts.booked[ev.Site]
			if len(q) == 0 {
				return fail("forfeit with no booked reservation")
			}
			ts.booked[ev.Site] = q[1:]
		case KReject:
			if ts.attemptDepth == 0 {
				return fail("reject with no open attempt")
			}
			ts.attemptDepth--
			if ev.Arg <= 0 {
				return fail("reject without a positive shortfall: the book was not full")
			}
		case KRelease, KRevoke:
			ts.held[ev.Site] -= ev.Arg
			if ts.held[ev.Site] < 0 {
				return fail(fmt.Sprintf("released %d more unit(s) of %q than acquired", -ts.held[ev.Site], ev.Site))
			}
		}
	}
	return nil
}
