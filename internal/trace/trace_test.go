package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock is a settable virtual clock for hand-built traces.
type fakeClock struct{ now time.Duration }

func (f *fakeClock) at(d time.Duration) { f.now = d }
func (f *fakeClock) read() time.Duration {
	return f.now
}

func TestNilTracerAndClientAreInert(t *testing.T) {
	var tr *Tracer
	c := tr.NewClient("p", "t", nil)
	if c != nil {
		t.Fatal("nil tracer must hand out nil clients")
	}
	if c.Tracer() != nil {
		t.Fatal("nil client Tracer() should be nil")
	}
	if f := c.Fork("x"); f != nil {
		t.Fatal("nil client Fork() should be nil")
	}
	// Every emitter must be a no-op; a panic here fails the test.
	c.Probe("s")
	c.CarrierSense("s", true)
	c.Attempt()
	c.Success()
	c.Failure()
	c.Collision("s")
	c.Defer("s")
	c.Exhausted()
	c.BackoffStart(time.Second, "collision")
	c.BackoffEnd()
	c.Acquire("r", 1)
	c.Release("r", 1)
	c.FaultInjected("site")
	c.SpanEnd(c.SpanBegin("span"))
}

func TestNilClientZeroAllocations(t *testing.T) {
	var c *Client
	allocs := testing.AllocsPerRun(100, func() {
		c.Probe("s")
		c.Attempt()
		c.Collision("s")
		c.BackoffStart(time.Second, "collision")
		c.BackoffEnd()
		c.SpanEnd(c.SpanBegin("span"))
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %v times per run, want 0", allocs)
	}
}

func TestClientRegistry(t *testing.T) {
	tr := New()
	clk := &fakeClock{}
	a := tr.NewClient("Ethernet", "client-0", clk.read)
	b := tr.NewClient("Ethernet", "client-1", clk.read)
	c := tr.NewClient("Aloha", "client-0", clk.read)
	if a.pid != b.pid {
		t.Fatalf("same process name got pids %d and %d", a.pid, b.pid)
	}
	if a.pid == c.pid {
		t.Fatal("distinct process names share a pid")
	}
	if a.tid == b.tid {
		t.Fatal("distinct clients share a tid")
	}
	f := a.Fork("branch")
	if f.pid != a.pid || f.tid == a.tid {
		t.Fatalf("fork got pid=%d tid=%d, want pid=%d and a fresh tid", f.pid, f.tid, a.pid)
	}
	if got := tr.Procs(); len(got) != 2 || got[0] != "Ethernet" || got[1] != "Aloha" {
		t.Fatalf("procs = %v", got)
	}
}

// TestAnalyzeBuckets drives one client through every interval kind with
// known durations and checks each accounting bucket.
func TestAnalyzeBuckets(t *testing.T) {
	tr := New()
	clk := &fakeClock{}
	c := tr.NewClient("Ethernet", "client-0", clk.read)

	sec := func(s int) time.Duration { return time.Duration(s) * time.Second }
	clk.at(sec(0))
	c.Attempt()
	clk.at(sec(10))
	c.Success() // 10 s successful attempt
	c.BackoffStart(2*time.Second, "collision")
	clk.at(sec(12))
	c.BackoffEnd() // 2 s penalty backoff
	c.BackoffStart(time.Second, "defer")
	clk.at(sec(13))
	c.BackoffEnd() // 1 s polite cs-wait
	c.Acquire("r", 1)
	clk.at(sec(15))
	c.Release("r", 1) // 2 s holding
	c.Probe("r")
	clk.at(sec(16))
	c.CarrierSense("r", true) // 1 s probing
	c.Attempt()
	clk.at(sec(18))
	c.Collision("r") // 2 s wasted attempt

	sums := Analyze(tr)
	if len(sums) != 1 {
		t.Fatalf("got %d summaries, want 1", len(sums))
	}
	s := sums[0]
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"Proc", s.Proc, "Ethernet"},
		{"Threads", s.Threads, 1},
		{"Attempts", s.Attempts, 2},
		{"Successes", s.Successes, 1},
		{"Collisions", s.Collisions, 1},
		{"Probes", s.Probes, 1},
		{"SenseBusy", s.SenseBusy, 1},
		{"Backoff", s.Backoff, sec(2)},
		{"CSWait", s.CSWait, sec(1)},
		{"Holding", s.Holding, sec(2)},
		{"Busy", s.Busy, sec(15)}, // 10 attempt + 2 hold + 1 probe + 2 attempt
		{"Idle", s.Idle, sec(0)},
		{"Wasted", s.Wasted, sec(2)},
		{"Window", s.Window, sec(18)},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %v, want %v", ck.name, ck.got, ck.want)
		}
	}
	if s.CollisionRate() != 0.5 {
		t.Errorf("CollisionRate = %v, want 0.5", s.CollisionRate())
	}
}

// TestAnalyzeClosesOpenIntervals checks end-of-window accounting for a
// client still backing off and holding when the trace ends.
func TestAnalyzeClosesOpenIntervals(t *testing.T) {
	tr := New()
	clk := &fakeClock{}
	a := tr.NewClient("Aloha", "stuck", clk.read)
	b := tr.NewClient("Aloha", "marker", clk.read)

	clk.at(0)
	a.BackoffStart(time.Minute, "failure")
	a.Acquire("r", 1)
	clk.at(10 * time.Second)
	b.Probe("x") // advances the window without touching a's intervals

	s := Analyze(tr)[0]
	if s.Backoff != 10*time.Second {
		t.Errorf("open backoff booked %v, want 10s", s.Backoff)
	}
	if s.Holding != 10*time.Second {
		t.Errorf("open hold booked %v, want 10s", s.Holding)
	}
}

func TestWriteJSONLExact(t *testing.T) {
	tr := New()
	tr.SetMeta(Meta{Seed: 5, Scenario: "unit", Plan: "mixed", PlanSeed: 9})
	clk := &fakeClock{}
	c := tr.NewClient("P", "main", clk.read)
	clk.at(1500 * time.Nanosecond)
	c.Attempt()
	clk.at(2500 * time.Nanosecond)
	c.Collision(`he said "hi"`)

	var sb strings.Builder
	if err := tr.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{"meta":{"seed":5,"scenario":"unit","plan":"mixed","planSeed":9}}
{"proc":{"pid":0,"name":"P"}}
{"thread":{"tid":0,"pid":0,"name":"main"}}
{"t":1500,"k":"attempt","pid":0,"tid":0,"arg":0,"site":""}
{"t":2500,"k":"collision","pid":0,"tid":0,"arg":0,"site":"he said \"hi\""}
`
	if sb.String() != want {
		t.Errorf("got:\n%s\nwant:\n%s", sb.String(), want)
	}
	// Every line must also be valid JSON.
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Errorf("line %q: %v", line, err)
		}
	}
}

// TestWriteChromeWellFormed builds a trace exercising every event kind,
// including intervals left open at the end, and checks the export is a
// single valid JSON document with balanced span begin/ends.
func TestWriteChromeWellFormed(t *testing.T) {
	tr := New()
	tr.SetMeta(Meta{Seed: 1, Scenario: "unit"})
	clk := &fakeClock{}
	c := tr.NewClient("Ethernet", "client-0", clk.read)

	clk.at(0)
	outer := c.SpanBegin("read")
	c.Probe("s1")
	clk.at(time.Second)
	c.CarrierSense("s1", false)
	c.Attempt()
	c.Acquire("s1", 1)
	clk.at(2 * time.Second)
	c.Release("s1", 1)
	c.Success()
	c.SpanEnd(outer)
	c.BackoffStart(time.Second, "defer")
	clk.at(3 * time.Second)
	c.BackoffEnd()
	c.FaultInjected("chaos/flap")
	c.Defer("s2")
	c.Exhausted()
	// Leave an attempt, a hold, and a span open at the window edge.
	_ = c.SpanBegin("dangling")
	c.Attempt()
	c.Acquire("s2", 1)

	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, sb.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData["scenario"] != "unit" {
		t.Errorf("otherData = %v", doc.OtherData)
	}
	begins, ends := 0, 0
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name]++
		switch ev.Ph {
		case "B":
			begins++
		case "E":
			ends++
		}
	}
	if begins != ends {
		t.Errorf("unbalanced spans: %d B vs %d E", begins, ends)
	}
	for _, want := range []string{
		"process_name", "thread_name", "probe", "sense-idle", "attempt",
		"hold:s1", "hold:s2", "backoff", "fault:chaos/flap", "defer",
		"exhausted", "read", "dangling",
	} {
		if names[want] == 0 {
			t.Errorf("missing %q event in chrome export", want)
		}
	}
	// The dangling attempt must be closed at the final timestamp.
	if names["attempt"] != 2 {
		t.Errorf("attempt slices = %d, want 2 (one closed at window edge)", names["attempt"])
	}
}

func TestWriteSummaryTable(t *testing.T) {
	tr := New()
	clk := &fakeClock{}
	c := tr.NewClient("Ethernet", "client-0", clk.read)
	clk.at(0)
	c.Attempt()
	clk.at(time.Second)
	c.Success()

	var sb strings.Builder
	if err := WriteSummary(&sb, Analyze(tr)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# trace summary: window=1s", "discipline", "coll-rate", "Ethernet"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("summary has %d lines, want 3 (comment, header, one row):\n%s", len(lines), out)
	}
}

// TestWriteQuantiles drives one client through three holding spans, one
// penalty backoff, and one cs-wait, then byte-checks the quantile
// table: the distributions are deterministic, so the rendering is too.
func TestWriteQuantiles(t *testing.T) {
	tr := New()
	clk := &fakeClock{}
	c := tr.NewClient("Ethernet", "client-0", clk.read)

	sec := func(s int) time.Duration { return time.Duration(s) * time.Second }
	clk.at(sec(0))
	c.Acquire("r", 1)
	clk.at(sec(1))
	c.Release("r", 1) // 1 s hold
	c.Acquire("r", 1)
	clk.at(sec(3))
	c.Release("r", 1) // 2 s hold
	c.Acquire("r", 1)
	clk.at(sec(6))
	c.Release("r", 1) // 3 s hold
	c.BackoffStart(2*time.Second, "collision")
	clk.at(sec(8))
	c.BackoffEnd() // 2 s penalty backoff
	c.BackoffStart(time.Second, "defer")
	clk.at(sec(9))
	c.BackoffEnd() // 1 s polite cs-wait

	sums := Analyze(tr)
	var sb strings.Builder
	if err := WriteQuantiles(&sb, sums); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# trace quantiles: window=9s",
		"discipline  span     count  min  mean  p50   p95    p99  max",
		"Ethernet    holding      3   1s    2s   2s  2.9s  2.98s   3s",
		"Ethernet    backoff      1   2s    2s   2s    2s     2s   2s",
		"Ethernet    cs-wait      1   1s    1s   1s    1s     1s   1s",
		"",
	}, "\n")
	if sb.String() != want {
		t.Errorf("quantile table:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}
