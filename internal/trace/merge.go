package trace

// Merge appends src's processes, threads, and events to t, remapping
// identifiers so the result is exactly what t would contain had src's
// clients registered and emitted directly on t, in src's own order.
// The parallel sweep runner depends on this equivalence: each cell
// traces into a private tracer, and merging the cell tracers in cell
// order reproduces, byte for byte, the trace a serial run would have
// produced on one shared tracer.
//
// Concretely: src's process names are interned into t (sharing PIDs
// with existing processes of the same name), src's threads are
// appended after t's with their PIDs remapped, span ids are offset by
// t's span counter, and t's meta is left untouched. src is not
// modified. Merging t into itself is not supported.
func (t *Tracer) Merge(src *Tracer) {
	if t == nil || src == nil {
		return
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()

	pidMap := make([]int32, len(src.procs))
	for i, name := range src.procs {
		pid, ok := t.procIDs[name]
		if !ok {
			pid = int32(len(t.procs))
			t.procs = append(t.procs, name)
			t.procIDs[name] = pid
		}
		pidMap[i] = pid
	}

	tidBase := int32(len(t.threads))
	for _, th := range src.threads {
		t.threads = append(t.threads, thread{pid: pidMap[th.pid], name: th.name})
	}

	spanBase := t.spanSeq
	for _, ev := range src.events {
		ev.PID = pidMap[ev.PID]
		ev.TID += tidBase
		if (ev.Kind == KSpanBegin || ev.Kind == KSpanEnd) && ev.Arg != 0 {
			ev.Arg += spanBase
		}
		t.events = append(t.events, ev)
	}
	t.spanSeq += src.spanSeq
}
