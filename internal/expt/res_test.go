package expt

import (
	"testing"
	"time"

	"repro/internal/chaos"
)

// The acceptance criterion of the reservation subsystem, both regimes:
// fault-free, an admission-controlled population out-produces the
// leased Ethernet population (no crashes, no collisions, capacity never
// overcommitted); under the res-flap plan the same population collapses
// below Ethernet, because the book keeps charging for wedged holders'
// windows until each boundary passes. Parameters mirror one FigRes cell
// at test scale.
func TestResTwoRegimes(t *testing.T) {
	const (
		n      = 20
		window = 120 * time.Second
	)
	quantum := leaseQuantum(window)
	var resSteady, ethSteady, resFlap, ethFlap int64
	for _, seed := range []int64{1, 2, 3} {
		rec := &chaos.Recorder{}
		rs := ResCell(Options{}, seed, n, window, nil, rec)
		if !rec.Ok() {
			t.Errorf("seed %d: steady reservation cell violated invariants: %v", seed, rec.Err())
		}
		es := LeaseCell(Options{}, seed, n, window, quantum, nil, nil)
		if rs.Jobs < es.Jobs {
			t.Errorf("seed %d: steady regime inverted: res=%d < eth=%d", seed, rs.Jobs, es.Jobs)
		}
		if rs.Crashes != 0 {
			t.Errorf("seed %d: admission control let the schedd crash %d times", seed, rs.Crashes)
		}
		if rs.Revokes != 0 {
			t.Errorf("seed %d: steady cell revoked %d claims: windows too tight", seed, rs.Revokes)
		}
		if rs.Jain < 0.95 {
			t.Errorf("seed %d: steady reservation Jain = %.3f, want >= 0.95", seed, rs.Jain)
		}
		// The book must actually be doing admission work, not just
		// waving everyone through.
		if rs.Rejects == 0 {
			t.Errorf("seed %d: steady cell never rejected: book capacity is not binding", seed)
		}

		plan := func() *chaos.Plan {
			p, err := chaos.Preset("res-flap", seed)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		rf := ResCell(Options{}, seed, n, window, plan(), nil)
		ef := LeaseCell(Options{}, seed, n, window, quantum, plan(), nil)
		if rf.Jobs >= ef.Jobs {
			t.Errorf("seed %d: collapse regime inverted: res-flap=%d >= eth-flap=%d", seed, rf.Jobs, ef.Jobs)
		}
		// The collapse mechanism, not just its effect: wedged claims are
		// revoked only at window boundaries, and the dead capacity shows
		// up as a burst of rejections.
		if rf.Revokes == 0 {
			t.Errorf("seed %d: flap cell never revoked a claim: no dead windows", seed)
		}
		if rf.Rejects <= rs.Rejects {
			t.Errorf("seed %d: flap rejections %d not above steady %d: dead windows did not fill the book",
				seed, rf.Rejects, rs.Rejects)
		}
		resSteady += rs.Jobs
		ethSteady += es.Jobs
		resFlap += rf.Jobs
		ethFlap += ef.Jobs
	}
	// Aggregate margins: the headline trade must be visible, not marginal.
	if resSteady < ethSteady*105/100 {
		t.Errorf("aggregate steady: res=%d < 1.05*eth (eth=%d)", resSteady, ethSteady)
	}
	if ethFlap < resFlap*115/100 {
		t.Errorf("aggregate flap: eth=%d < 1.15*res (res=%d)", ethFlap, resFlap)
	}
	// Reservation's own collapse: under flap it loses more than half of
	// its steady-state throughput.
	if resFlap*2 >= resSteady {
		t.Errorf("res collapse too shallow: flap=%d vs steady=%d", resFlap, resSteady)
	}
}

// Identical seeds must yield identical cells: the window-boundary timers
// and hang draws ride the same deterministic engine as everything else.
func TestResCellDeterminism(t *testing.T) {
	plan := func() *chaos.Plan {
		p, err := chaos.Preset("res-flap", 7)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	window := 120 * time.Second
	a := ResCell(Options{}, 7, 20, window, plan(), nil)
	b := ResCell(Options{}, 7, 20, window, plan(), nil)
	if a.Jobs != b.Jobs || a.Rejects != b.Rejects || a.Admits != b.Admits ||
		a.Revokes != b.Revokes || a.Lapses != b.Lapses || a.MaxWait != b.MaxWait {
		t.Errorf("cells diverged: (%d %d %d %d %d %v) vs (%d %d %d %d %d %v)",
			a.Jobs, a.Rejects, a.Admits, a.Revokes, a.Lapses, a.MaxWait,
			b.Jobs, b.Rejects, b.Admits, b.Revokes, b.Lapses, b.MaxWait)
	}
	for i := range a.PerClient {
		if a.PerClient[i] != b.PerClient[i] {
			t.Fatalf("client %d diverged: %v vs %v", i, a.PerClient[i], b.PerClient[i])
		}
	}
}

// FigRes at smoke scale: both tables fully populated, fault-free cells
// clean, and the throughput columns showing both regimes in aggregate.
func TestFigResSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figres sweep is not short")
	}
	rec := &chaos.Recorder{}
	ra := FigRes(Options{Scale: 0.1, Check: rec})
	if err := rec.Err(); err != nil {
		t.Errorf("fault-free cells violated invariants: %v", err)
	}
	if got := len(ra.Throughput.Cols); got != 4 {
		t.Fatalf("throughput cols = %d", got)
	}
	if got := len(ra.Admission.Cols); got != 5 {
		t.Fatalf("admission cols = %d", got)
	}
	for _, c := range ra.Throughput.Cols {
		if len(c.Vals) != len(ra.Throughput.Xs) {
			t.Errorf("col %s has %d vals for %d xs", c.Name, len(c.Vals), len(ra.Throughput.Xs))
		}
	}
	var resS, ethS, resF, ethF float64
	for i := range ra.Throughput.Xs {
		resS += ra.Throughput.Cols[0].Vals[i]
		ethS += ra.Throughput.Cols[1].Vals[i]
		resF += ra.Throughput.Cols[2].Vals[i]
		ethF += ra.Throughput.Cols[3].Vals[i]
	}
	if resS <= ethS {
		t.Errorf("steady regime inverted in sweep: res=%.0f <= eth=%.0f", resS, ethS)
	}
	if resF >= ethF {
		t.Errorf("collapse regime inverted in sweep: res-flap=%.0f >= eth-flap=%.0f", resF, ethF)
	}
	// Dead windows must appear in the admission table under flap.
	var dead float64
	for _, v := range ra.Admission.Cols[2].Vals {
		dead += v
	}
	if dead == 0 {
		t.Error("no dead windows recorded under res-flap")
	}
}
