package expt

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fsbuffer"
	"repro/internal/lease"
)

// cleanChan is an injector that never faults: it exists so a lease wire
// can be installed (enabling fencing and StaleErr) without disturbing
// any message.
type cleanChan struct{}

func (cleanChan) Inject(string) core.Fault { return core.Fault{} }

// TestTypedErrorAudit is the cross-package error-contract audit: every
// typed error a substrate can hand a client — the reservation denial,
// the admission rejection, the fencing rejection — must survive
// errors.Is/errors.As round trips after crossing package boundaries and
// after being wrapped the way the substrates actually wrap them
// (core.Collision around a cause, ExhaustedError around a final retry
// failure). Each error here is produced by the real producer, not
// hand-built, so a change to any wrapping site shows up as an audit
// failure rather than as clients silently losing the ability to
// classify failures.
func TestTypedErrorAudit(t *testing.T) {
	e := Options{}.newEngine(1)
	var denial, bookErr, staleErr error
	e.Spawn("probe", func(p core.Proc) {
		ctx := e.Context()

		// fsbuffer: asking for more than the buffer holds is denied with
		// the package sentinel chained onto a core rejection.
		b := fsbuffer.New(e, fsbuffer.Config{Capacity: 100})
		alloc := fsbuffer.NewAllocator(e, b, 0)
		_, denial = alloc.Reserve(p, ctx, 150)

		// lease.Book: overbooking the admission window is a bare typed
		// rejection carrying the shortfall.
		book := lease.NewBook(e, "book", 10)
		_, bookErr = book.Reserve(p, "h", 0, time.Second, 25)

		// lease fencing: once a tenure's epoch is retired, the lease
		// reports the typed staleness a fenced resource would answer
		// its operations with.
		m := lease.New(e, "fds", 4, 0)
		m.SetWire(cleanChan{}, "net", true)
		l, err := m.Acquire(p, ctx, "a", 1)
		if err != nil {
			t.Errorf("acquire: %v", err)
			return
		}
		l.Release()
		staleErr = l.StaleErr()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, err := range []error{denial, bookErr, staleErr} {
		if err == nil {
			t.Fatal("a producer failed to produce its typed error")
		}
	}

	cases := []struct {
		name string
		err  error
		// sentinel matches expected (or forbidden) on the chain
		is    []error
		isNot []error
		// typed extractions expected to succeed
		rejected  bool
		stale     bool
		collision bool
	}{
		{
			name:     "fsbuffer denial",
			err:      denial,
			is:       []error{fsbuffer.ErrReservationDenied},
			isNot:    []error{core.ErrStale, core.ErrCollision},
			rejected: true,
		},
		{
			name:     "book rejection",
			err:      bookErr,
			isNot:    []error{fsbuffer.ErrReservationDenied, core.ErrStale},
			rejected: true,
		},
		{
			name:  "fencing staleness",
			err:   staleErr,
			is:    []error{core.ErrStale},
			isNot: []error{core.ErrCollision},
			stale: true,
		},
		{
			// How condor's reserving submitter surfaces a book rejection:
			// the coarse collision wrapper must not hide the typed cause.
			name:      "collision-wrapped rejection",
			err:       core.Collision("book", bookErr),
			rejected:  true,
			collision: true,
		},
		{
			// How a fenced substrate would surface a stale operation.
			name:      "collision-wrapped staleness",
			err:       core.Collision("fds", staleErr),
			is:        []error{core.ErrStale},
			stale:     true,
			collision: true,
		},
		{
			// A retry loop giving up: the last attempt's typed cause must
			// stay visible through the exhaustion wrapper.
			name:     "exhaustion-wrapped denial",
			err:      &core.ExhaustedError{Attempts: 3, Last: denial},
			is:       []error{fsbuffer.ErrReservationDenied},
			rejected: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, want := range tc.is {
				if !errors.Is(tc.err, want) {
					t.Errorf("errors.Is(%v, %v) = false, want true", tc.err, want)
				}
			}
			for _, not := range tc.isNot {
				if errors.Is(tc.err, not) {
					t.Errorf("errors.Is(%v, %v) = true, want false", tc.err, not)
				}
			}
			if got := core.IsRejected(tc.err); got != tc.rejected {
				t.Errorf("core.IsRejected = %v, want %v", got, tc.rejected)
			}
			if got := core.IsStale(tc.err); got != tc.stale {
				t.Errorf("core.IsStale = %v, want %v", got, tc.stale)
			}
			if got := core.IsCollision(tc.err); got != tc.collision {
				t.Errorf("core.IsCollision = %v, want %v", got, tc.collision)
			}
			if tc.rejected {
				re := core.Rejection(tc.err)
				if re == nil {
					t.Fatal("core.Rejection lost the typed rejection")
				}
				if re.Shortfall <= 0 {
					t.Errorf("rejection shortfall = %d, want > 0", re.Shortfall)
				}
				if re.Resource == "" {
					t.Error("rejection lost its resource name")
				}
			}
			if tc.stale {
				se := core.Staleness(tc.err)
				if se == nil {
					t.Fatal("core.Staleness lost the typed staleness")
				}
				if se.Resource != "fds" {
					t.Errorf("staleness resource = %q, want fds", se.Resource)
				}
				if se.Fence < se.Epoch {
					t.Errorf("staleness fence %d < epoch %d", se.Fence, se.Epoch)
				}
			}
		})
	}

	// The concrete shortfalls, pinned: the fsbuffer denial asked for 150
	// of 100 free (short 50); the book asked for 25 of 10 (short 15).
	if re := core.Rejection(denial); re.Shortfall != 50 || re.Resource != "reservation" {
		t.Errorf("denial rejection = %+v, want reservation/50", re)
	}
	if re := core.Rejection(bookErr); re.Shortfall != 15 || re.Resource != "book" {
		t.Errorf("book rejection = %+v, want book/15", re)
	}
}
