package expt

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// renderSweep renders a sweep table to bytes for equality checks.
func renderSweep(t *testing.T, tbl *metrics.SweepTable) string {
	t.Helper()
	var b bytes.Buffer
	if _, err := tbl.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// tracedFigOutputs runs fig with tracing and checking enabled at the
// given parallelism and returns (rendered tables, trace JSONL bytes,
// violation list) — everything a figure emits.
func tracedFigOutputs(t *testing.T, parallel int, fig func(Options) []*metrics.SweepTable) (string, string, []chaos.Violation) {
	t.Helper()
	tr := trace.New()
	rec := &chaos.Recorder{}
	plan, err := chaos.Preset("mixed", 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Scale: 0.1, Parallel: parallel, Trace: tr, Check: rec, Chaos: plan}
	var tables strings.Builder
	for _, tbl := range fig(opt) {
		tables.WriteString(renderSweep(t, tbl))
	}
	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	return tables.String(), jsonl.String(), rec.Violations
}

// TestRunnerParallelMatchesSerial is the tentpole's contract: for every
// converted sweep, tables, traces, and violations at -parallel 8 must
// be byte-identical to the legacy serial path.
func TestRunnerParallelMatchesSerial(t *testing.T) {
	figs := map[string]func(Options) []*metrics.SweepTable{
		"fig1": func(o Options) []*metrics.SweepTable { return []*metrics.SweepTable{Fig1(o)} },
		"fig45": func(o Options) []*metrics.SweepTable {
			bs := RunBufferSweep(o)
			return []*metrics.SweepTable{bs.Consumed, bs.Collisions}
		},
	}
	for name, fig := range figs {
		serialTables, serialTrace, serialViol := tracedFigOutputs(t, 1, fig)
		parTables, parTrace, parViol := tracedFigOutputs(t, 8, fig)
		if serialTables != parTables {
			t.Errorf("%s: tables differ between -parallel 1 and 8.\nserial:\n%s\nparallel:\n%s",
				name, serialTables, parTables)
		}
		if serialTrace != parTrace {
			t.Errorf("%s: trace JSONL differs between -parallel 1 and 8", name)
		}
		if len(serialViol) != len(parViol) {
			t.Errorf("%s: violations differ: %d serial vs %d parallel", name, len(serialViol), len(parViol))
		} else {
			for i := range serialViol {
				if serialViol[i] != parViol[i] {
					t.Errorf("%s: violation %d differs: %+v vs %+v", name, i, serialViol[i], parViol[i])
				}
			}
		}
	}
}

// TestRunnerFigLAParallelMatchesSerial covers the lease ablation, whose
// cells come in leased/unleased pairs with distinct violation routing.
func TestRunnerFigLAParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("lease ablation floors its window at two minutes")
	}
	run := func(parallel int) (string, string, []chaos.Violation) {
		tr := trace.New()
		rec := &chaos.Recorder{}
		la := FigLA(Options{Scale: 0.1, Parallel: parallel, Trace: tr, Check: rec})
		var jsonl bytes.Buffer
		if err := tr.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		return renderSweep(t, la.Throughput) + renderSweep(t, la.Fairness), jsonl.String(), rec.Violations
	}
	serialTables, serialTrace, serialViol := run(1)
	parTables, parTrace, parViol := run(8)
	if serialTables != parTables {
		t.Errorf("figla tables differ.\nserial:\n%s\nparallel:\n%s", serialTables, parTables)
	}
	if serialTrace != parTrace {
		t.Error("figla trace JSONL differs between -parallel 1 and 8")
	}
	if len(serialViol) != len(parViol) {
		t.Errorf("figla violations differ: %d serial vs %d parallel", len(serialViol), len(parViol))
	}
}

// TestRunCellsCoversAllCellsOnce pins the pool mechanics: every cell
// index runs exactly once at any worker count, including workers > n.
func TestRunCellsCoversAllCellsOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		const n = 23
		var counts [n]atomic.Int64
		runCells(Options{Parallel: workers}, n, func(c int, _ *trace.Tracer, _ *chaos.Recorder, _ *obs.Registry) {
			counts[c].Add(1)
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Errorf("workers=%d: cell %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestRunCellsSerialUsesSharedSinks pins the legacy path: with one
// worker the cells see opt.Trace and opt.Check themselves, not copies.
func TestRunCellsSerialUsesSharedSinks(t *testing.T) {
	tr := trace.New()
	rec := &chaos.Recorder{}
	runCells(Options{Parallel: 1, Trace: tr, Check: rec}, 3, func(c int, cellTr *trace.Tracer, cellRec *chaos.Recorder, _ *obs.Registry) {
		if cellTr != tr || cellRec != rec {
			t.Errorf("cell %d: serial path handed out private sinks", c)
		}
	})
}

// TestRunCellsPanicPropagates pins that a panicking cell surfaces after
// the pool drains, with the lowest cell's panic value.
func TestRunCellsPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "cell 2 failed" {
			t.Errorf("recovered %v, want panic from cell 2", r)
		}
	}()
	runCells(Options{Parallel: 4}, 8, func(c int, _ *trace.Tracer, _ *chaos.Recorder, _ *obs.Registry) {
		if c == 2 || c == 5 {
			panic("cell " + string(rune('0'+c)) + " failed")
		}
	})
	t.Error("runCells did not panic")
}
