package expt

import (
	"testing"
	"time"

	"repro/internal/chaos"
)

// The acceptance criterion of the limited-allocation subsystem: under
// the stuck-holder fault plan, a leased Ethernet population satisfies
// the no-starvation invariant with high fairness, while the identical
// population under legacy unlimited allocation violates it. Parameters
// mirror one FigLA cell at test scale.
func TestLeaseNoStarvationUnderStuckHolder(t *testing.T) {
	const (
		n      = 20
		window = 120 * time.Second
	)
	quantum := leaseQuantum(window)
	var leasedJobs, unleasedJobs int64
	for _, seed := range []int64{1, 2, 3} {
		plan, err := chaos.Preset("stuck-holder", seed)
		if err != nil {
			t.Fatal(err)
		}
		rec := &chaos.Recorder{}
		leased := LeaseCell(Options{}, seed, n, window, quantum, plan, rec)
		if !rec.Ok() {
			t.Errorf("seed %d: leased cell violated invariants: %v", seed, rec.Err())
		}
		if leased.Jain < 0.9 {
			t.Errorf("seed %d: leased Jain = %.3f, want >= 0.9", seed, leased.Jain)
		}
		if leased.Revokes == 0 {
			t.Errorf("seed %d: watchdog never fired under stuck-holder chaos", seed)
		}

		unleased := LeaseCell(Options{}, seed, n, window, 0, plan, nil)
		if unleased.Starved == 0 {
			t.Errorf("seed %d: unleased ablation never starved (maxwait %v, budget %v)",
				seed, unleased.MaxWait, leaseBudget(window))
		}
		if unleased.Revokes != 0 {
			t.Errorf("seed %d: unleased cell revoked %d tenures", seed, unleased.Revokes)
		}
		if unleased.MaxWait <= leased.MaxWait {
			t.Errorf("seed %d: unleased max wait %v not worse than leased %v",
				seed, unleased.MaxWait, leased.MaxWait)
		}
		leasedJobs += leased.Jobs
		unleasedJobs += unleased.Jobs
	}
	// Reclaiming wedged holders must also pay in aggregate throughput.
	if leasedJobs <= unleasedJobs {
		t.Errorf("aggregate jobs: leased=%d <= unleased=%d", leasedJobs, unleasedJobs)
	}
}

// Identical seeds must yield identical cells: the watchdog timers and
// hang draws ride the same deterministic engine as everything else.
func TestLeaseCellDeterminism(t *testing.T) {
	plan := func() *chaos.Plan {
		p, err := chaos.Preset("stuck-holder", 7)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	window := 120 * time.Second
	a := LeaseCell(Options{}, 7, 20, window, leaseQuantum(window), plan(), nil)
	b := LeaseCell(Options{}, 7, 20, window, leaseQuantum(window), plan(), nil)
	if a.Jobs != b.Jobs || a.Jain != b.Jain || a.Revokes != b.Revokes || a.MaxWait != b.MaxWait {
		t.Errorf("cells diverged: (%d %.4f %d %v) vs (%d %.4f %d %v)",
			a.Jobs, a.Jain, a.Revokes, a.MaxWait, b.Jobs, b.Jain, b.Revokes, b.MaxWait)
	}
	for i := range a.PerClient {
		if a.PerClient[i] != b.PerClient[i] {
			t.Fatalf("client %d diverged: %v vs %v", i, a.PerClient[i], b.PerClient[i])
		}
	}
}

// FigLA at smoke scale: both tables fully populated, leased cells
// clean, and the recorded violations (if any) all from the ablation.
func TestFigLASmallScale(t *testing.T) {
	rec := &chaos.Recorder{}
	la := FigLA(Options{Scale: 0.1, Check: rec})
	if err := rec.Err(); err != nil {
		t.Errorf("leased cells violated invariants: %v", err)
	}
	if got := len(la.Throughput.Cols); got != 2 {
		t.Fatalf("throughput cols = %d", got)
	}
	if got := len(la.Fairness.Cols); got != 5 {
		t.Fatalf("fairness cols = %d", got)
	}
	for _, c := range la.Throughput.Cols {
		if len(c.Vals) != len(la.Throughput.Xs) {
			t.Errorf("col %s has %d vals for %d xs", c.Name, len(c.Vals), len(la.Throughput.Xs))
		}
	}
	// Column 0 is jain-leased (×100): the leased population must stay
	// fair at every swept size.
	for i, v := range la.Fairness.Cols[0].Vals {
		if v < 90 {
			t.Errorf("jain-leased at n=%d is %.1f, want >= 90", la.Fairness.Xs[i], v)
		}
	}
}
