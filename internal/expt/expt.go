// Package expt regenerates every figure in the paper's evaluation (§5).
// Each FigN function builds a fresh simulated universe, runs the paper's
// workload, and returns the same series the figure plots. The package is
// used by cmd/gridbench, by the repository's benchmarks, and by
// integration tests that assert the paper's qualitative shapes.
package expt

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/chaos"
	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/fsbuffer"
	"repro/internal/lease"
	"repro/internal/live"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options tunes an experiment run.
type Options struct {
	// Seed makes the run reproducible; the default is 1.
	Seed int64
	// Scale shrinks time windows and client populations for quick runs
	// (benchmarks, CI). 1.0 reproduces the paper's parameters; 0.1 runs
	// roughly 100× less work. Zero means 1.0.
	Scale float64
	// Chaos, when non-nil, arms the fault plan in every simulation cell
	// the figure runs, so the figure is regenerated under injected
	// faults. The plan's own seed keeps the schedule reproducible.
	Chaos *chaos.Plan
	// Check, when non-nil, runs the invariant-checker suite alongside
	// every cell, appending any violations (see chaos.Recorder.Err).
	Check *chaos.Recorder
	// Trace, when non-nil, records every client's event timeline into
	// one tracer: one trace process per discipline, one thread per
	// client. Tracing is purely observational — it draws no randomness
	// and sleeps for no virtual time — so a traced run produces exactly
	// the figures an untraced run does.
	Trace *trace.Tracer
	// Parallel bounds how many simulation cells a sweep figure runs
	// concurrently: 0 means GOMAXPROCS, 1 the legacy serial path. Every
	// cell is an independent universe, and per-cell traces and
	// violations are reassembled in cell order, so output is
	// byte-identical at any setting (see runner.go).
	Parallel int
	// Shards selects the engine's sharded scheduling mode for figures
	// that support it (currently the scale figure): each cell's engine
	// partitions timers and runnables across this many shards, merged
	// deterministically so output is byte-identical at any value. Must
	// be a power of two; 0 or 1 means unsharded.
	Shards int
	// Backend selects the runtime the cells execute on: BackendSim
	// (the default) is the deterministic virtual-clock engine,
	// BackendLive runs the same scenarios on real goroutines under
	// compressed wall-clock time (see internal/live), and BackendGridd
	// runs them against a real networked gridd daemon over HTTP (see
	// gridd.go). Live and gridd runs are not reproducible; compare
	// them to sim runs with tolerance bands (see diff_test.go), never
	// byte-for-byte.
	Backend string
	// Timescale compresses live-backend time: virtual seconds per real
	// second. Zero means DefaultTimescale. Ignored by the sim backend,
	// whose virtual clock costs no real time at all.
	Timescale float64
	// Obs, when non-nil, arms the flight recorder: every cell samples
	// engine, carrier, and lease observables into the registry on its
	// backend clock (see obs.go). Sampling is read-only — figures are
	// identical with it on or off — and on the sim backend the dump is
	// a pure function of the seed at any Parallel value.
	Obs *obs.Registry
	// ObsInterval is the sampling interval on the backend clock; zero
	// means DefaultObsInterval.
	ObsInterval time.Duration
	// Progress, when non-nil, is called by the sweep runner after each
	// cell completes, with cells done, cells total, and cumulative
	// engine events so far (0 unless Obs is armed). Calls arrive in
	// completion order — not cell order — and, on the worker pool, from
	// worker goroutines; the callback must be safe for that.
	Progress func(done, total int, events int64)
	// GriddURL points the gridd cells at an already-running daemon
	// (see cmd/gridd). Empty means each cell spawns its own in-process
	// daemon on a loopback listener and tears it down afterwards, so
	// the socket-level suites need no external setup.
	GriddURL string

	// cellObs is the per-cell registry handed out by runCells on the
	// sim backend (merged into Obs in cell order); obsCell names the
	// cell uniquely within its figure for the scope's cell label.
	cellObs *obs.Registry
	obsCell string
}

// Backend names accepted by Options.Backend and gridbench -backend.
const (
	BackendSim  = "sim"
	BackendLive = "live"
)

// DefaultTimescale is the live backend's default time compression:
// 1 virtual second runs in 1 real millisecond.
const DefaultTimescale = 1000.0

func (o Options) timescale() float64 {
	if o.Timescale <= 0 {
		return DefaultTimescale
	}
	return o.Timescale
}

// newEngine builds the backend one simulation cell runs on.
func (o Options) newEngine(seed int64) core.Backend {
	if o.Backend == BackendLive {
		return live.New(seed, o.timescale())
	}
	return sim.New(seed).RT()
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1.0
	}
	return o.Scale
}

// scaleN scales a client population, keeping at least 1.
func (o Options) scaleN(n int) int {
	v := int(float64(n) * o.scale())
	if v < 1 {
		v = 1
	}
	return v
}

// scaleD scales a time window.
func (o Options) scaleD(d time.Duration) time.Duration {
	v := time.Duration(float64(d) * o.scale())
	if v < time.Second {
		v = time.Second
	}
	return v
}

// ---------------------------------------------------------------------
// Scenario 1: job submission (Figures 1, 2, 3)
// ---------------------------------------------------------------------

// SubmitWindow is the measurement window of Figure 1 ("jobs submitted in
// five minutes").
const SubmitWindow = 5 * time.Minute

// TimelineWindow is the window of Figures 2 and 3 (thirty minutes).
const TimelineWindow = 30 * time.Minute

// TimelineClients is the client population of Figures 2 and 3.
const TimelineClients = 400

// Fig1Sweep is the submitter counts swept in Figure 1 (x-axis 0–500).
var Fig1Sweep = []int{10, 25, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500}

// SubmitCell runs n submitters with the given client and cluster
// configurations for the window, returning total jobs submitted and
// schedd crashes. It is the building block of Figure 1 and of the
// threshold ablation benchmarks.
func SubmitCell(seed int64, n int, window time.Duration, subCfg condor.SubmitterConfig, clCfg condor.Config) (jobs, crashes int64) {
	return SubmitCellChaos(seed, n, window, subCfg, clCfg, nil, nil)
}

// SubmitCellChaos is SubmitCell with a fault plan armed against the
// cluster and the invariant suite recording into rec; either may be
// nil. It is the building block of the chaos sweep tests.
func SubmitCellChaos(seed int64, n int, window time.Duration, subCfg condor.SubmitterConfig, clCfg condor.Config, plan *chaos.Plan, rec *chaos.Recorder) (jobs, crashes int64) {
	return submitCellTraced(Options{}, seed, n, window, subCfg, clCfg, plan, rec, nil)
}

// submitCellTraced is the traced core of SubmitCellChaos: when tr is
// non-nil every submitter gets its own trace thread under the
// discipline's process.
func submitCellTraced(opt Options, seed int64, n int, window time.Duration, subCfg condor.SubmitterConfig, clCfg condor.Config, plan *chaos.Plan, rec *chaos.Recorder, tr *trace.Tracer) (jobs, crashes int64) {
	e := opt.newEngine(seed)
	cl := condor.NewCluster(e, clCfg)
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	cl.StartHousekeeping(ctx)
	if plan != nil {
		plan.Arm(e, chaos.Targets{Window: window, Cluster: cl, Trace: tr})
	}
	inv := condorInvariants(e, rec, cl, subCfg, window)
	if inv != nil {
		inv.Start(ctx)
	}
	if opt.obsCell == "" {
		opt.obsCell = "submit/" + subCfg.Discipline.String()
	}
	finish := armObs(opt, e, window, opt.obsCell, func(sc *obs.Scope) { obsCluster(sc, cl) })
	for i := 0; i < n; i++ {
		cfg := subCfg
		if tr != nil {
			cfg.Trace = tr.NewClient(subCfg.Discipline.String(), fmt.Sprintf("submitter-%d", i), e.Elapsed)
		}
		e.Spawn("submitter", func(p core.Proc) {
			var sub condor.Submitter
			sub.Loop(p, ctx, cl, cfg)
		})
	}
	if err := e.Run(); err != nil {
		panic("expt: " + err.Error())
	}
	finish()
	if inv != nil {
		inv.Finish()
	}
	return cl.Schedd.Jobs, cl.Schedd.Crashes
}

// invariantWindow bounds how long the carrier floor may stay breached:
// one backoff epoch, scaled down with short experiment windows.
func invariantWindow(window time.Duration) time.Duration {
	mb := window / 10
	if mb < 10*time.Second {
		mb = 10 * time.Second
	}
	if mb > 2*time.Minute {
		mb = 2 * time.Minute
	}
	return mb
}

// condorInvariants wires the submit-scenario invariant suite: jobs and
// crashes are cumulative, the run must reach its horizon, and Ethernet
// clients must never hold the FD table deep below the carrier floor
// for longer than a backoff epoch. Returns nil when rec is nil.
func condorInvariants(e core.Backend, rec *chaos.Recorder, cl *condor.Cluster, subCfg condor.SubmitterConfig, window time.Duration) *chaos.Invariants {
	if rec == nil {
		return nil
	}
	inv := chaos.NewInvariants(e, rec, 0)
	inv.Monotone("jobs", func() float64 { return float64(cl.Schedd.Jobs) })
	inv.Monotone("crashes", func() float64 { return float64(cl.Schedd.Crashes) })
	inv.Horizon(window)
	if subCfg.Discipline == core.Ethernet {
		// The floor halves under capacity squeezes: the discipline can
		// only preserve what the kernel still provides.
		floor := func() int {
			f := subCfg.Threshold
			if c := cl.FDs.Capacity(); f > c {
				f = c
			}
			return f / 2
		}
		inv.CarrierFloor("file-nr", cl.FDs.Free, floor, invariantWindow(window))
	}
	return inv
}

// scaledConfigs returns submitter and cluster configurations whose FD
// capacity and carrier threshold shrink with opt.Scale, so scaled-down
// runs keep the paper's contention regime.
func scaledConfigs(opt Options, d core.Discipline) (condor.SubmitterConfig, condor.Config) {
	subCfg := condor.DefaultSubmitterConfig(d)
	clCfg := condor.Config{}
	if opt.scale() != 1.0 {
		subCfg.Threshold = opt.scaleN(subCfg.Threshold)
		clCfg.FDCapacity = opt.scaleN(condor.DefaultConfig().FDCapacity)
	}
	return subCfg, clCfg
}

// runSubmitCell runs n submitters of discipline d with paper defaults.
func runSubmitCell(seed int64, d core.Discipline, n int, window time.Duration) int64 {
	jobs, _ := SubmitCell(seed, n, window, condor.DefaultSubmitterConfig(d), condor.Config{})
	return jobs
}

// Fig1 reproduces "Figure 1: Scalability of Job Submission": jobs
// submitted in five minutes versus the number of submitters, for the
// Ethernet, Aloha, and Fixed disciplines.
func Fig1(opt Options) *metrics.SweepTable {
	window := opt.scaleD(SubmitWindow)
	xs := make([]int, 0, len(Fig1Sweep))
	for _, n := range Fig1Sweep {
		xs = append(xs, opt.scaleN(n))
	}
	t := &metrics.SweepTable{XLabel: "submitters", Xs: xs}
	jobs := make([]int64, len(core.Disciplines)*len(xs))
	runCells(opt, len(jobs), func(c int, tr *trace.Tracer, rec *chaos.Recorder, reg *obs.Registry) {
		d := core.Disciplines[c/len(xs)]
		i := c % len(xs)
		copt := opt
		copt.cellObs = reg
		copt.obsCell = fmt.Sprintf("fig1/%s/n%d", d, xs[i])
		subCfg, clCfg := scaledConfigs(opt, d)
		j, _ := submitCellTraced(copt, opt.seed()+int64(i), xs[i], window, subCfg, clCfg, opt.Chaos, rec, tr)
		jobs[c] = j
	})
	for di, d := range core.Disciplines {
		col := metrics.SweepCol{Name: d.String()}
		for i := range xs {
			col.Vals = append(col.Vals, float64(jobs[di*len(xs)+i]))
		}
		t.Cols = append(t.Cols, col)
	}
	return t
}

// SubmitTimeline holds the data of Figures 2 and 3: available FDs and
// cumulative jobs sampled over the run.
type SubmitTimeline struct {
	FDs  *metrics.Series // available file descriptors
	Jobs *metrics.Series // cumulative jobs submitted
	// Crashes counts schedd failures during the run (the upward FD
	// spikes of Figure 2).
	Crashes int64
}

// Table renders the timeline in the paper's two-line form.
func (tl *SubmitTimeline) Table() *metrics.Table {
	return &metrics.Table{XLabel: "t(s)", Series: []*metrics.Series{tl.FDs, tl.Jobs}}
}

// runSubmitTimeline drives TimelineClients clients of discipline d for
// TimelineWindow, sampling every 5 seconds.
func runSubmitTimeline(opt Options, d core.Discipline) *SubmitTimeline {
	e := opt.newEngine(opt.seed())
	subCfg, clCfg := scaledConfigs(opt, d)
	cl := condor.NewCluster(e, clCfg)
	window := opt.scaleD(TimelineWindow)
	n := opt.scaleN(TimelineClients)
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	cl.StartHousekeeping(ctx)
	if opt.Chaos != nil {
		opt.Chaos.Arm(e, chaos.Targets{Window: window, Cluster: cl, Trace: opt.Trace})
	}
	inv := condorInvariants(e, opt.Check, cl, subCfg, window)
	if inv != nil {
		inv.Start(ctx)
	}

	if opt.obsCell == "" {
		opt.obsCell = "timeline/" + d.String()
	}
	finish := armObs(opt, e, window, opt.obsCell, func(sc *obs.Scope) { obsCluster(sc, cl) })

	tl := &SubmitTimeline{
		FDs:  metrics.NewSeries("avail-fds"),
		Jobs: metrics.NewSeries("jobs"),
	}
	const sampleEvery = 5 * time.Second
	var tick func()
	tick = func() {
		tl.FDs.Add(e.Elapsed(), float64(cl.FDs.Free()))
		tl.Jobs.Add(e.Elapsed(), float64(cl.Schedd.Jobs))
		if e.Elapsed() < window {
			e.Schedule(sampleEvery, tick)
		}
	}
	e.Schedule(0, tick)

	for i := 0; i < n; i++ {
		cfg := subCfg
		if opt.Trace != nil {
			cfg.Trace = opt.Trace.NewClient(d.String(), fmt.Sprintf("submitter-%d", i), e.Elapsed)
		}
		e.Spawn("submitter", func(p core.Proc) {
			var sub condor.Submitter
			sub.Loop(p, ctx, cl, cfg)
		})
	}
	if err := e.Run(); err != nil {
		panic("expt: " + err.Error())
	}
	finish()
	if inv != nil {
		inv.SeriesMonotone(tl.Jobs)
		inv.Finish()
	}
	tl.Crashes = cl.Schedd.Crashes
	return tl
}

// Fig2 reproduces "Figure 2: Timeline of Aloha Submitter".
func Fig2(opt Options) *SubmitTimeline { return runSubmitTimeline(opt, core.Aloha) }

// Fig3 reproduces "Figure 3: Timeline of Ethernet Submitter".
func Fig3(opt Options) *SubmitTimeline { return runSubmitTimeline(opt, core.Ethernet) }

// ---------------------------------------------------------------------
// Scenario 2: shared filesystem buffer (Figures 4, 5)
// ---------------------------------------------------------------------

// BufferWindow is the measurement window for the buffer sweep.
const BufferWindow = 10 * time.Minute

// Fig45Sweep is the producer counts swept in Figures 4 and 5.
var Fig45Sweep = []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}

// BufferSweep holds both buffer figures, which come from one experiment:
// files consumed (Figure 4) and write collisions (Figure 5) versus the
// number of producers.
type BufferSweep struct {
	Consumed   *metrics.SweepTable
	Collisions *metrics.SweepTable
}

// RunBufferSweep runs the producer/consumer scenario across the sweep
// and both disciplines, returning both figures' tables.
func RunBufferSweep(opt Options) *BufferSweep {
	window := opt.scaleD(BufferWindow)
	xs := make([]int, 0, len(Fig45Sweep))
	for _, n := range Fig45Sweep {
		xs = append(xs, opt.scaleN(n))
	}
	bs := &BufferSweep{
		Consumed:   &metrics.SweepTable{XLabel: "producers", Xs: xs},
		Collisions: &metrics.SweepTable{XLabel: "producers", Xs: xs},
	}
	type bufRes struct{ consumed, collisions int64 }
	res := make([]bufRes, len(core.Disciplines)*len(xs))
	runCells(opt, len(res), func(c int, tr *trace.Tracer, rec *chaos.Recorder, reg *obs.Registry) {
		d := core.Disciplines[c/len(xs)]
		i := c % len(xs)
		copt := opt
		copt.cellObs = reg
		copt.obsCell = fmt.Sprintf("buffer/%s/n%d", d, xs[i])
		b := bufferCellTraced(copt, opt.seed()+int64(i), xs[i], window, d, opt.Chaos, rec, tr)
		res[c] = bufRes{consumed: b.Consumed, collisions: b.Collisions}
	})
	for di, d := range core.Disciplines {
		cons := metrics.SweepCol{Name: d.String()}
		coll := metrics.SweepCol{Name: d.String()}
		for i := range xs {
			r := res[di*len(xs)+i]
			cons.Vals = append(cons.Vals, float64(r.consumed))
			coll.Vals = append(coll.Vals, float64(r.collisions))
		}
		bs.Consumed.Cols = append(bs.Consumed.Cols, cons)
		bs.Collisions.Cols = append(bs.Collisions.Cols, coll)
	}
	return bs
}

// BufferCell runs n producers of discipline d against a fresh buffer
// for the window, optionally under a fault plan and the invariant
// suite, and returns the buffer for inspection. It is the building
// block of Figures 4 and 5 and of the chaos sweep tests.
func BufferCell(seed int64, n int, window time.Duration, d core.Discipline, plan *chaos.Plan, rec *chaos.Recorder) *fsbuffer.Buffer {
	return bufferCellTraced(Options{}, seed, n, window, d, plan, rec, nil)
}

// bufferCellTraced is the traced core of BufferCell: when tr is non-nil
// every producer gets its own trace thread under the discipline's
// process. The Reservation discipline runs the allocator-fronted
// reserving producer of §5 instead of an optimistic writer; the
// allocator grants tenure with a window-derived quantum, so a wedged
// holder's promise is reclaimed instead of pinning buffer space.
func bufferCellTraced(opt Options, seed int64, n int, window time.Duration, d core.Discipline, plan *chaos.Plan, rec *chaos.Recorder, tr *trace.Tracer) *fsbuffer.Buffer {
	e := opt.newEngine(seed)
	b := fsbuffer.New(e, fsbuffer.Config{})
	var alloc *fsbuffer.Allocator
	if d == core.Reservation {
		alloc = fsbuffer.NewAllocator(e, b, 0)
		alloc.SetLeaseQuantum(leaseQuantum(window))
	}
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	if plan != nil {
		plan.Arm(e, chaos.Targets{Window: window, Buffer: b, Allocator: alloc, Trace: tr})
	}
	var inv *chaos.Invariants
	if rec != nil {
		inv = chaos.NewInvariants(e, rec, 0)
		inv.Monotone("consumed", func() float64 { return float64(b.Consumed) })
		inv.Monotone("completed", func() float64 { return float64(b.Completed) })
		inv.Monotone("collisions", func() float64 { return float64(b.Collisions) })
		inv.Horizon(window)
		inv.Start(ctx)
	}
	if opt.obsCell == "" {
		opt.obsCell = "buffer/" + d.String()
	}
	finish := armObs(opt, e, window, opt.obsCell, func(sc *obs.Scope) {
		obsBuffer(sc, b)
		if alloc != nil {
			obsLease(sc, alloc.Tenure(), "reservation")
		}
	})
	e.Spawn("consumer", func(p core.Proc) { b.Consumer(p, ctx) })
	for j := 0; j < n; j++ {
		j := j
		cfg := fsbuffer.DefaultProducerConfig(d)
		if tr != nil {
			cfg.Trace = tr.NewClient(d.String(), fmt.Sprintf("producer-%d", j), e.Elapsed)
		}
		e.Spawn("producer", func(p core.Proc) {
			if d == core.Reservation {
				var rp fsbuffer.ReservingProducer
				rp.Loop(p, ctx, alloc, j, cfg)
				return
			}
			var pr fsbuffer.Producer
			pr.Loop(p, ctx, b, j, cfg)
		})
	}
	if err := e.Run(); err != nil {
		panic("expt: " + err.Error())
	}
	finish()
	if inv != nil {
		inv.Finish()
	}
	return b
}

// Fig4 reproduces "Figure 4: Buffer Throughput".
func Fig4(opt Options) *metrics.SweepTable { return RunBufferSweep(opt).Consumed }

// Fig5 reproduces "Figure 5: Buffer Collisions".
func Fig5(opt Options) *metrics.SweepTable { return RunBufferSweep(opt).Collisions }

// ---------------------------------------------------------------------
// Scenario 3: black holes (Figures 6, 7)
// ---------------------------------------------------------------------

// ReaderWindow is the window of Figures 6 and 7 (900 seconds).
const ReaderWindow = 900 * time.Second

// ReaderClients is the number of reader clients (three in the paper).
const ReaderClients = 3

// ReaderTimeline holds one reader figure: cumulative transfers plus the
// discipline's characteristic penalty events (collisions for Aloha,
// deferrals for Ethernet).
type ReaderTimeline struct {
	Transfers *metrics.Series
	Penalty   *metrics.Series // collisions (Fig 6) or deferrals (Fig 7)
	// Totals for shape checks.
	TotalTransfers, TotalCollisions, TotalDeferrals, TotalRejections int64
}

// Table renders the timeline in the paper's form.
func (tl *ReaderTimeline) Table() *metrics.Table {
	return &metrics.Table{XLabel: "t(s)", Series: []*metrics.Series{tl.Transfers, tl.Penalty}}
}

// runReaderTimeline drives the replicated-service scenario with
// discipline d and the paper's reader parameters.
func runReaderTimeline(opt Options, d core.Discipline) *ReaderTimeline {
	window := opt.scaleD(ReaderWindow)
	rcfg := replica.DefaultReaderConfig(d)
	rcfg.OuterLimit = window
	return readerCellTraced(opt, opt.seed(), window, rcfg, opt.Chaos, opt.Check, opt.Trace)
}

// ReaderCell runs the black-hole scenario with an arbitrary reader
// configuration — the building block of Figures 6 and 7 and of the
// probe-timeout ablation.
func ReaderCell(seed int64, window time.Duration, rcfg replica.ReaderConfig) *ReaderTimeline {
	return ReaderCellChaos(seed, window, rcfg, nil, nil)
}

// ReaderCellChaos is ReaderCell with a fault plan armed against the
// servers and the invariant suite recording into rec; either may be
// nil.
func ReaderCellChaos(seed int64, window time.Duration, rcfg replica.ReaderConfig, plan *chaos.Plan, rec *chaos.Recorder) *ReaderTimeline {
	return readerCellTraced(Options{}, seed, window, rcfg, plan, rec, nil)
}

// readerCellTraced is the traced core of ReaderCellChaos: when tr is
// non-nil every reader gets its own trace thread under the discipline's
// process.
func readerCellTraced(opt Options, seed int64, window time.Duration, rcfg replica.ReaderConfig, plan *chaos.Plan, rec *chaos.Recorder, tr *trace.Tracer) *ReaderTimeline {
	e := opt.newEngine(seed)
	cfg := replica.Config{}
	servers := []*replica.Server{
		replica.NewServer(e, "xxx", true, cfg), // the permanent black hole
		replica.NewServer(e, "yyy", false, cfg),
		replica.NewServer(e, "zzz", false, cfg),
	}
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	// The Reservation reader books server lanes on per-server admission
	// books instead of queueing organically.
	var books []*lease.Book
	if rcfg.Discipline == core.Reservation {
		books = replica.NewBooks(e, servers)
	}
	if plan != nil {
		plan.Arm(e, chaos.Targets{Window: window, Servers: servers, Trace: tr})
	}
	readers := make([]*replica.Reader, ReaderClients)
	var inv *chaos.Invariants
	if rec != nil {
		inv = chaos.NewInvariants(e, rec, 0)
		inv.Monotone("transfers", func() float64 {
			var n int64
			for _, r := range readers {
				if r != nil {
					n += r.Done
				}
			}
			return float64(n)
		})
		inv.Horizon(window)
		inv.Start(ctx)
	}
	if opt.obsCell == "" {
		opt.obsCell = "reader/" + rcfg.Discipline.String()
	}
	finish := armObs(opt, e, window, opt.obsCell, func(sc *obs.Scope) {
		obsServers(sc, servers)
		for i, b := range books {
			obsBook(sc, b, servers[i].Name+"-book")
		}
	})
	for i := range readers {
		readers[i] = &replica.Reader{}
		r := readers[i]
		rc := rcfg
		if tr != nil {
			rc.Trace = tr.NewClient(rcfg.Discipline.String(), fmt.Sprintf("reader-%d", i), e.Elapsed)
		}
		e.Spawn("reader", func(p core.Proc) {
			if rc.Discipline == core.Reservation {
				r.LoopReserved(p, ctx, servers, books, rc)
				return
			}
			r.Loop(p, ctx, servers, rc)
		})
	}
	if err := e.Run(); err != nil {
		panic("expt: " + err.Error())
	}
	finish()
	if inv != nil {
		inv.Finish()
	}

	penaltyName := "collisions"
	penaltyKind := replica.EvCollision
	switch rcfg.Discipline {
	case core.Ethernet:
		penaltyName = "deferrals"
		penaltyKind = replica.EvDeferral
	case core.Reservation:
		penaltyName = "rejections"
		penaltyKind = replica.EvRejection
	}
	tl := &ReaderTimeline{
		Transfers: metrics.NewSeries("transfers"),
		Penalty:   metrics.NewSeries(penaltyName),
	}
	// Merge per-reader event logs into cumulative series.
	var evs []replica.Event
	for _, r := range readers {
		evs = append(evs, r.Events...)
		tl.TotalCollisions += r.Collisions
		tl.TotalDeferrals += r.Deferrals
		tl.TotalRejections += r.Rejections
		tl.TotalTransfers += r.Done
	}
	sortEvents(evs)
	nT, nP := 0, 0
	for _, ev := range evs {
		switch ev.Kind {
		case replica.EvTransfer:
			nT++
			tl.Transfers.Add(ev.At, float64(nT))
		case penaltyKind:
			nP++
			tl.Penalty.Add(ev.At, float64(nP))
		}
	}
	return tl
}

// sortEvents orders events by time (stable for equal times).
func sortEvents(evs []replica.Event) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
}

// Fig6 reproduces "Figure 6: Aloha File Reader".
func Fig6(opt Options) *ReaderTimeline { return runReaderTimeline(opt, core.Aloha) }

// Fig7 reproduces "Figure 7: Ethernet File Reader".
func Fig7(opt Options) *ReaderTimeline { return runReaderTimeline(opt, core.Ethernet) }

// TraceCompanions re-runs a single-discipline figure's workload under
// the disciplines the figure itself does not plot, on the same seed,
// so one trace (and its summary) compares all three disciplines
// head-to-head. Figures that already sweep every discipline (1, 4, 5)
// need no companions. Companion runs skip the invariant suite: its
// expectations are calibrated to the figure's own discipline.
func TraceCompanions(opt Options, fig string) {
	if opt.Trace == nil {
		return
	}
	opt.Check = nil
	switch fig {
	case "2": // Aloha timeline: add Ethernet and Fixed
		_ = runSubmitTimeline(opt, core.Ethernet)
		_ = runSubmitTimeline(opt, core.Fixed)
	case "3": // Ethernet timeline: add Aloha and Fixed
		_ = runSubmitTimeline(opt, core.Aloha)
		_ = runSubmitTimeline(opt, core.Fixed)
	case "6": // Aloha reader: add Ethernet and Fixed
		_ = runReaderTimeline(opt, core.Ethernet)
		_ = runReaderTimeline(opt, core.Fixed)
	case "7": // Ethernet reader: add Aloha and Fixed
		_ = runReaderTimeline(opt, core.Aloha)
		_ = runReaderTimeline(opt, core.Fixed)
	}
	// Figure "la" runs both of its arms itself; no companions needed.
}
