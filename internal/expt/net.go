package expt

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// Unreliable-channel ablation (figure "net")
// ---------------------------------------------------------------------
//
// The paper's disciplines assume the channel between client and
// resource delivers each message once or not at all, and tells the
// client which. Real grids get neither guarantee: requests vanish,
// acknowledgements are retransmitted after the original survived, and
// partitions sever whole link directions and heal later. This figure
// runs the Ethernet submit scenario under two such regimes — the
// "dup-storm" plan (duplication, loss, reordering) and the "part-flap"
// plan (a flapping partition) — twice each: once with the survival
// mechanisms armed (epoch-fenced lease wires, idempotency-keyed
// submission, token-bucket retry budgets) and once with them disabled
// (condor.Config.Unfenced).
//
// The headline is a safety result, not a throughput curve: the fenced
// arm never double-allocates descriptors (lease units outstanding stay
// within capacity) and never books a phantom job (Jobs == Unique); the
// unfenced arm does both, because a duplicated or delayed release
// double-frees the FD table and a retried work unit re-runs. The
// fenced arm's cost is visible in the stale-message and dedup tallies
// — the price of at-most-once is saying "no" to ghosts.

// NetSweep is the submitter counts swept by FigNet.
var NetSweep = []int{50, 100, 200}

// netQuantum derives the FD tenure quantum for the channel ablation: a
// twentieth of the window, half the other ablations' cycle, because
// under message loss the watchdog is the only release path for leases
// whose end the channel swallowed.
func netQuantum(window time.Duration) time.Duration { return window / 20 }

// netHealFrac locates the worst-case heal of the part-flap plan's
// partition window: FracStart 0.15 + FracStartJitter 0.2 + duration
// 0.5 puts the last severed phase's close at 0.85 of the horizon; the
// heal-liveness clock starts just past it.
const netHealFrac = 0.87

// NetCellResult is one channel-ablation cell's accounting.
type NetCellResult struct {
	// Jobs is total jobs the schedd booked; Unique the distinct work
	// units completed (idempotency keys); Phantom the difference —
	// effects applied more than once per work unit. Fenced cells keep
	// Phantom at zero.
	Jobs, Unique, Phantom int64
	// Deduped counts duplicate submissions the seen-set absorbed;
	// NetDrops counts submit requests or replies the channel swallowed.
	Deduped, NetDrops int64
	// WireDrops, WireDups, Stales are the FD lease wire's tallies:
	// control messages lost, duplicated, and rejected by the fence.
	WireDrops, WireDups, Stales int64
	// Revokes counts FD tenures the watchdog reclaimed — under drops
	// this is the healing path for leases whose release never arrived.
	Revokes int64
	// DoubleAllocs counts double-alloc invariant excursions (lease
	// units outstanding exceeded capacity); ConsViolations counts
	// conservation excursions (Jobs diverged from Unique); HealViolations
	// counts post-heal liveness failures.
	DoubleAllocs, ConsViolations, HealViolations int
}

// NetCell runs n Ethernet submitters for the window under a channel
// fault plan, with the survival mechanisms armed (fenced) or disabled.
// Violations are tallied into the result; when rec is non-nil they are
// also forwarded, so an acceptance suite can demand a clean fenced run.
func NetCell(opt Options, seed int64, n int, window time.Duration, plan *chaos.Plan, fenced bool, rec *chaos.Recorder) *NetCellResult {
	e := opt.newEngine(seed)
	quantum := netQuantum(window)
	cl := condor.NewCluster(e, condor.Config{
		// Tighter provisioning than the other ablations: the table fits
		// only a fraction of the population's peak demand, so admission
		// genuinely gates progress. That is what makes ledger corruption
		// observable — once double-frees understate the books, the
		// manager admits real demand beyond true capacity and the
		// no-double-allocation invariant has something to catch. The
		// quantum is short (a twentieth of the window) so leases whose
		// release the channel swallowed are zombies briefly, not for a
		// whole reclamation epoch — under drops the watchdog is the
		// release path, and it must cycle faster than zombies accumulate.
		// The restart delay is one quantum too: a schedd crashed by
		// housekeeping starvation mid-partition restarts into a table
		// the watchdog has already drained, instead of sitting out a
		// default 30s (a quarter of a short window) and re-crashing
		// into the same jam.
		FDCapacity:   6 * n,
		ServiceSlots: n,
		LeaseQuantum: quantum,
		RestartDelay: quantum,
		Unfenced:     !fenced,
	})
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	cl.StartHousekeeping(ctx)
	if plan != nil {
		plan.Arm(e, chaos.Targets{Window: window, Cluster: cl, Trace: opt.Trace})
	}
	// Violations are detected locally even for the unfenced cell, whose
	// breaches are the expected measurement, not an experiment failure.
	priv := &chaos.Recorder{}
	inv := chaos.NewInvariants(e, priv, 0)
	mgr := cl.FDs.Manager()
	inv.Monotone("jobs", func() float64 { return float64(cl.Schedd.Jobs) })
	inv.Horizon(window)
	inv.NoDoubleAlloc("fds", mgr.Outstanding, mgr.Capacity)
	inv.Conservation("submit",
		func() int64 { return cl.Schedd.Jobs },
		func() int64 { return cl.Schedd.Unique })
	if plan != nil && plan.Name == "part-flap" {
		healAt := time.Duration(float64(window) * netHealFrac)
		inv.HealLiveness("jobs",
			func() float64 { return float64(cl.Schedd.Jobs) }, healAt, window/10)
	}
	inv.Start(ctx)

	label := "fenced"
	if !fenced {
		label = "unfenced"
	}
	if opt.obsCell == "" {
		opt.obsCell = fmt.Sprintf("net/%s/n%d", label, n)
	}
	finish := armObs(opt, e, window, opt.obsCell, func(sc *obs.Scope) { obsCluster(sc, cl) })
	subs := make([]*condor.Submitter, n)
	for i := 0; i < n; i++ {
		subs[i] = &condor.Submitter{}
		sub := subs[i]
		cfg := condor.SubmitterConfig{
			Discipline: core.Ethernet,
			// One work unit spans the whole window: a unit abandoned
			// mid-partition would understate the retry pressure the
			// budget exists to absorb.
			// The carrier threshold sits below the (shrunken) capacity so
			// honest clients still get through; think time is short so
			// the population keeps real pressure on the table.
			TryLimit:  window,
			Threshold: 2 * n,
			ThinkTime: time.Second,
			// The same capped backoff as the other ablations, so a
			// deferred client re-senses within the reclamation cycle.
			Backoff: &core.Backoff{Base: time.Second, Cap: quantum / 2, Factor: 2, RandMin: 1, RandMax: 2},
			// The retry budget is armed in BOTH cells — it is a
			// graceful-degradation mechanism, not a correctness one, and
			// differing retry cadence would confound the ablation.
			Budget: &core.RetryBudget{Rate: 0.5, Burst: 5},
		}
		if opt.Trace != nil {
			cfg.Trace = opt.Trace.NewClient(label, fmt.Sprintf("submitter-%d", i), e.Elapsed)
		}
		// Unique process names: the lease ledger keys holders by name.
		e.Spawn(fmt.Sprintf("submitter-%d", i), func(p core.Proc) {
			sub.Loop(p, ctx, cl, cfg)
		})
	}
	if err := e.Run(); err != nil {
		panic("expt: " + err.Error())
	}
	finish()
	inv.Finish()

	res := &NetCellResult{
		Jobs:      cl.Schedd.Jobs,
		Unique:    cl.Schedd.Unique,
		Phantom:   cl.Schedd.Jobs - cl.Schedd.Unique,
		Deduped:   cl.Schedd.Deduped,
		NetDrops:  cl.Schedd.NetDrops,
		WireDrops: mgr.Drops,
		WireDups:  mgr.Dups,
		Stales:    mgr.Stales,
		Revokes:   mgr.Revokes,
	}
	for _, v := range priv.Violations {
		switch v.Check {
		case "double-alloc":
			res.DoubleAllocs++
		case "conservation":
			res.ConsViolations++
		case "heal-liveness":
			res.HealViolations++
		}
		if rec != nil {
			rec.Add(v)
		}
	}
	return res
}

// NetAblation holds the figure's three tables.
type NetAblation struct {
	// Throughput: jobs submitted, fenced vs unfenced, per plan.
	Throughput *metrics.SweepTable
	// Integrity: the safety ledger — phantom jobs and double-alloc
	// excursions in the unfenced arms, and what the fenced arms paid
	// instead (fence rejections, deduplicated retries).
	Integrity *metrics.SweepTable
	// Channel: what the channel actually did to the fenced arms —
	// submit-path losses, lease-control losses and duplicates, and the
	// watchdog revocations that healed the dropped releases.
	Channel *metrics.SweepTable
}

// FigNet runs the unreliable-channel ablation: each population in
// NetSweep runs four cells — fenced and unfenced, each under the
// "dup-storm" and "part-flap" plans (opt.Chaos overrides both).
// Violations from the fenced cells go to opt.Check — the defended
// universe must never double-allocate, never book a phantom job, and
// must make progress after the partition heals; the unfenced cells'
// violations are the measurement.
//
// Like FigLA, the sweep population is not scaled down and the window
// is floored at two minutes, so the partition phases dwarf the retry
// cadence at every scale (see EXPERIMENTS.md on choosing -timescale
// for live runs).
func FigNet(opt Options) *NetAblation {
	window := opt.scaleD(SubmitWindow)
	if window < 2*time.Minute {
		window = 2 * time.Minute
	}
	xs := append([]int(nil), NetSweep...)
	na := &NetAblation{
		Throughput: &metrics.SweepTable{XLabel: "submitters", Xs: xs},
		Integrity:  &metrics.SweepTable{XLabel: "submitters", Xs: xs},
		Channel:    &metrics.SweepTable{XLabel: "submitters", Xs: xs},
	}
	fDup := make([]*NetCellResult, len(xs))
	uDup := make([]*NetCellResult, len(xs))
	fPart := make([]*NetCellResult, len(xs))
	uPart := make([]*NetCellResult, len(xs))
	// Four cells per population, in fixed order — fenced/unfenced under
	// dup-storm, then fenced/unfenced under part-flap — matching the
	// serial emission order of traces and violations.
	runCells(opt, 4*len(xs), func(c int, tr *trace.Tracer, rec *chaos.Recorder, reg *obs.Registry) {
		i := c / 4
		seed := opt.seed() + int64(i)
		dup, part := opt.Chaos, opt.Chaos
		if dup == nil {
			dup, _ = chaos.Preset("dup-storm", seed)
			part, _ = chaos.Preset("part-flap", seed)
		}
		copt := opt
		copt.Trace = tr
		copt.cellObs = reg
		switch c % 4 {
		case 0:
			copt.obsCell = fmt.Sprintf("net/fenced-dup/n%d", xs[i])
			fDup[i] = NetCell(copt, seed, xs[i], window, dup, true, rec)
		case 1:
			copt.obsCell = fmt.Sprintf("net/unfenced-dup/n%d", xs[i])
			uDup[i] = NetCell(copt, seed, xs[i], window, dup, false, nil)
		case 2:
			copt.obsCell = fmt.Sprintf("net/fenced-part/n%d", xs[i])
			fPart[i] = NetCell(copt, seed, xs[i], window, part, true, rec)
		case 3:
			copt.obsCell = fmt.Sprintf("net/unfenced-part/n%d", xs[i])
			uPart[i] = NetCell(copt, seed, xs[i], window, part, false, nil)
		}
	})
	cols := struct {
		fDup, uDup, fPart, uPart                   metrics.SweepCol
		phanD, phanP, dallocD, dallocP             metrics.SweepCol
		stalesD, stalesP, dedupD                   metrics.SweepCol
		netDropsD, netDropsP, wdropP, wdupD, revkP metrics.SweepCol
	}{
		fDup:      metrics.SweepCol{Name: "fenced-dup"},
		uDup:      metrics.SweepCol{Name: "unfenced-dup"},
		fPart:     metrics.SweepCol{Name: "fenced-part"},
		uPart:     metrics.SweepCol{Name: "unfenced-part"},
		phanD:     metrics.SweepCol{Name: "phantom-dup"},
		phanP:     metrics.SweepCol{Name: "phantom-part"},
		dallocD:   metrics.SweepCol{Name: "dalloc-dup"},
		dallocP:   metrics.SweepCol{Name: "dalloc-part"},
		stalesD:   metrics.SweepCol{Name: "stales-dup"},
		stalesP:   metrics.SweepCol{Name: "stales-part"},
		dedupD:    metrics.SweepCol{Name: "deduped-dup"},
		netDropsD: metrics.SweepCol{Name: "req-drops-dup"},
		netDropsP: metrics.SweepCol{Name: "req-drops-part"},
		wdropP:    metrics.SweepCol{Name: "wire-drops-part"},
		wdupD:     metrics.SweepCol{Name: "wire-dups-dup"},
		revkP:     metrics.SweepCol{Name: "revokes-part"},
	}
	for i := range xs {
		cols.fDup.Vals = append(cols.fDup.Vals, float64(fDup[i].Jobs))
		cols.uDup.Vals = append(cols.uDup.Vals, float64(uDup[i].Jobs))
		cols.fPart.Vals = append(cols.fPart.Vals, float64(fPart[i].Jobs))
		cols.uPart.Vals = append(cols.uPart.Vals, float64(uPart[i].Jobs))
		cols.phanD.Vals = append(cols.phanD.Vals, float64(uDup[i].Phantom))
		cols.phanP.Vals = append(cols.phanP.Vals, float64(uPart[i].Phantom))
		cols.dallocD.Vals = append(cols.dallocD.Vals, float64(uDup[i].DoubleAllocs))
		cols.dallocP.Vals = append(cols.dallocP.Vals, float64(uPart[i].DoubleAllocs))
		cols.stalesD.Vals = append(cols.stalesD.Vals, float64(fDup[i].Stales))
		cols.stalesP.Vals = append(cols.stalesP.Vals, float64(fPart[i].Stales))
		cols.dedupD.Vals = append(cols.dedupD.Vals, float64(fDup[i].Deduped))
		cols.netDropsD.Vals = append(cols.netDropsD.Vals, float64(fDup[i].NetDrops))
		cols.netDropsP.Vals = append(cols.netDropsP.Vals, float64(fPart[i].NetDrops))
		cols.wdropP.Vals = append(cols.wdropP.Vals, float64(fPart[i].WireDrops))
		cols.wdupD.Vals = append(cols.wdupD.Vals, float64(fDup[i].WireDups))
		cols.revkP.Vals = append(cols.revkP.Vals, float64(fPart[i].Revokes))
	}
	na.Throughput.Cols = []metrics.SweepCol{cols.fDup, cols.uDup, cols.fPart, cols.uPart}
	na.Integrity.Cols = []metrics.SweepCol{cols.phanD, cols.phanP, cols.dallocD, cols.dallocP, cols.stalesD, cols.stalesP, cols.dedupD}
	na.Channel.Cols = []metrics.SweepCol{cols.netDropsD, cols.netDropsP, cols.wdropP, cols.wdupD, cols.revkP}
	return na
}
