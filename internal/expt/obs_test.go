package expt

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// dumpFig1 runs Fig1 with the flight recorder armed and returns the
// JSONL dump plus the figure table.
func dumpFig1(t *testing.T, parallel int) (string, any) {
	t.Helper()
	reg := obs.New()
	opt := Options{Seed: 3, Scale: 0.05, Parallel: parallel, Obs: reg}
	tbl := Fig1(opt)
	var b strings.Builder
	if err := reg.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.String(), tbl
}

// TestObsParallelDumpIdentical is the registry-level half of the
// parallel determinism contract: the same seed must produce a
// byte-identical metrics dump whether the sweep ran serially or on
// the worker pool (per-cell registries merged in cell order).
func TestObsParallelDumpIdentical(t *testing.T) {
	d1, t1 := dumpFig1(t, 1)
	d8, t8 := dumpFig1(t, 8)
	if d1 != d8 {
		t.Fatalf("obs dump differs between -parallel 1 and 8:\nserial %d bytes, parallel %d bytes", len(d1), len(d8))
	}
	if !reflect.DeepEqual(t1, t8) {
		t.Fatalf("figure table differs between -parallel 1 and 8")
	}
	if !strings.Contains(d1, MCarrierOccupancy) || !strings.Contains(d1, MLeaseGrants) {
		t.Fatalf("dump missing carrier/lease series:\n%.400s", d1)
	}
}

// TestObsDoesNotPerturbFigures asserts the sampler is a read-only
// observer: the same seed yields the same figure with the recorder
// armed or not.
func TestObsDoesNotPerturbFigures(t *testing.T) {
	opt := Options{Seed: 5, Scale: 0.05, Parallel: 1}
	plain := Fig1(opt)
	opt.Obs = obs.New()
	armed := Fig1(opt)
	if !reflect.DeepEqual(plain, armed) {
		t.Fatalf("arming the flight recorder changed Figure 1:\nplain %+v\narmed %+v", plain, armed)
	}
}

// TestObsProgressReports asserts the sweep runner reports each cell
// exactly once with a growing event count.
func TestObsProgressReports(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	var maxEv int64
	opt := Options{Seed: 1, Scale: 0.05, Parallel: 2, Obs: obs.New()}
	opt.Progress = func(done, total int, events int64) {
		// Calls arrive in completion order from worker goroutines, so
		// only per-call facts are asserted here, not ordering.
		mu.Lock()
		defer mu.Unlock()
		if total != 36 { // 3 disciplines x 12 sweep points
			t.Errorf("total = %d, want 36", total)
		}
		dones = append(dones, done)
		if events > maxEv {
			maxEv = events
		}
	}
	Fig1(opt)
	if len(dones) != 36 {
		t.Fatalf("progress called %d times, want 36", len(dones))
	}
	seen := make(map[int]bool)
	for _, d := range dones {
		if seen[d] {
			t.Fatalf("done=%d reported twice", d)
		}
		seen[d] = true
	}
	if maxEv == 0 {
		t.Fatal("no engine events reported")
	}
}
