package expt

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Every figure is a sweep of independent simulation cells — each cell
// owns a private sim.Engine and seed, consumes no state from its
// neighbors, and differs only in its population, discipline, or fault
// plan. runCells is the one place that exploits this: it executes the
// cells on a worker pool and reassembles every observable side effect
// (trace events, invariant violations, sampled metrics) in fixed cell
// order, so a parallel sweep is byte-identical to the serial one at
// any worker count. Numeric results flow back through the closure's
// own slices, indexed by cell, which parallel execution never
// reorders.

// workers resolves Options.Parallel: 0 means GOMAXPROCS, 1 the legacy
// serial path, anything larger an explicit worker count.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// cellRegistry resolves the registry one sweep cell instruments.
// Sim cells get a private registry (merged into Obs in cell order —
// the determinism contract; see obs.go); live cells share Obs
// directly, so a mid-run HTTP exporter sees samples as they arrive.
func (o Options) cellRegistry() *obs.Registry {
	if o.Obs == nil {
		return nil
	}
	if o.Backend == BackendLive {
		return o.Obs
	}
	return obs.New()
}

// progressReporter tracks sweep completion for Options.Progress: cells
// done plus cumulative engine events, read from each finished cell's
// registry (or the shared live registry).
type progressReporter struct {
	opt    Options
	total  int
	done   atomic.Int64
	events atomic.Int64
}

func (pr *progressReporter) cellDone(reg *obs.Registry) {
	if pr == nil || pr.opt.Progress == nil {
		return
	}
	d := int(pr.done.Add(1))
	var ev int64
	if pr.opt.Backend == BackendLive {
		// Shared registry: the family total is already cumulative.
		ev = int64(pr.opt.Obs.CurrentTotal(MEngineEvents))
		pr.events.Store(ev)
	} else {
		ev = pr.events.Add(int64(reg.CurrentTotal(MEngineEvents)))
	}
	pr.opt.Progress(d, pr.total, ev)
}

// runCells executes cells 0..n-1 via run, which must write its results
// into per-cell slots and touch shared sinks only through the tr, rec,
// and reg it is handed (each may be nil, mirroring opt.Trace,
// opt.Check, and opt.Obs).
//
// With one worker the cells run in the calling goroutine against
// opt.Trace and opt.Check directly — the legacy serial path. With
// more, each cell gets a private tracer and recorder; after every cell
// finishes, tracers are merged (trace.Tracer.Merge) and violations
// appended in cell order, reproducing the serial byte stream. Metric
// registries are per-cell on the sim backend in BOTH paths and merged
// in cell order immediately (serial) or after the pool drains
// (parallel) — the same Merge sequence either way, so dumps are
// byte-identical at any worker count. A panic in any cell is re-raised
// here, lowest cell first, after the pool drains.
func runCells(opt Options, n int, run func(cell int, tr *trace.Tracer, rec *chaos.Recorder, reg *obs.Registry)) {
	workers := opt.workers()
	if workers > n {
		workers = n
	}
	pr := &progressReporter{opt: opt, total: n}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			reg := opt.cellRegistry()
			run(i, opt.Trace, opt.Check, reg)
			if reg != nil && reg != opt.Obs {
				opt.Obs.Merge(reg)
			}
			pr.cellDone(reg)
		}
		return
	}

	trs := make([]*trace.Tracer, n)
	recs := make([]*chaos.Recorder, n)
	regs := make([]*obs.Registry, n)
	for i := 0; i < n; i++ {
		if opt.Trace != nil {
			trs[i] = trace.New()
		}
		if opt.Check != nil {
			recs[i] = &chaos.Recorder{}
		}
		regs[i] = opt.cellRegistry()
	}

	panics := make([]any, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					run(i, trs[i], recs[i], regs[i])
				}()
				if panics[i] == nil {
					pr.cellDone(regs[i])
				}
			}
		}()
	}
	wg.Wait()

	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for i := 0; i < n; i++ {
		if opt.Trace != nil {
			opt.Trace.Merge(trs[i])
		}
		if opt.Check != nil && recs[i] != nil {
			for _, v := range recs[i].Violations {
				opt.Check.Add(v)
			}
		}
		if regs[i] != nil && regs[i] != opt.Obs {
			opt.Obs.Merge(regs[i])
		}
	}
}
