package expt

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/trace"
)

// Every figure is a sweep of independent simulation cells — each cell
// owns a private sim.Engine and seed, consumes no state from its
// neighbors, and differs only in its population, discipline, or fault
// plan. runCells is the one place that exploits this: it executes the
// cells on a worker pool and reassembles every observable side effect
// (trace events, invariant violations) in fixed cell order, so a
// parallel sweep is byte-identical to the serial one at any worker
// count. Numeric results flow back through the closure's own slices,
// indexed by cell, which parallel execution never reorders.

// workers resolves Options.Parallel: 0 means GOMAXPROCS, 1 the legacy
// serial path, anything larger an explicit worker count.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// runCells executes cells 0..n-1 via run, which must write its results
// into per-cell slots and touch shared sinks only through the tr and
// rec it is handed (either may be nil, mirroring opt.Trace/opt.Check).
//
// With one worker the cells run in the calling goroutine against
// opt.Trace and opt.Check directly — the legacy serial path. With more,
// each cell gets a private tracer and recorder; after every cell
// finishes, tracers are merged (trace.Tracer.Merge) and violations
// appended in cell order, reproducing the serial byte stream. A panic
// in any cell is re-raised here, lowest cell first, after the pool
// drains.
func runCells(opt Options, n int, run func(cell int, tr *trace.Tracer, rec *chaos.Recorder)) {
	workers := opt.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i, opt.Trace, opt.Check)
		}
		return
	}

	trs := make([]*trace.Tracer, n)
	recs := make([]*chaos.Recorder, n)
	for i := 0; i < n; i++ {
		if opt.Trace != nil {
			trs[i] = trace.New()
		}
		if opt.Check != nil {
			recs[i] = &chaos.Recorder{}
		}
	}

	panics := make([]any, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panics[i] = r
						}
					}()
					run(i, trs[i], recs[i])
				}()
			}
		}()
	}
	wg.Wait()

	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for i := 0; i < n; i++ {
		if opt.Trace != nil {
			opt.Trace.Merge(trs[i])
		}
		if opt.Check != nil && recs[i] != nil {
			for _, v := range recs[i].Violations {
				opt.Check.Add(v)
			}
		}
	}
}
