package expt

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// These tests assert the paper's qualitative claims — who wins, by
// roughly what factor, where the collapse points fall — on the same
// harness that regenerates the figures.

func TestFig1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-population sweep; skipped in -short")
	}
	window := SubmitWindow
	peak := runSubmitCell(1, core.Ethernet, 50, window)
	if peak < 500 {
		t.Fatalf("peak throughput = %d, implausibly low", peak)
	}
	fixedHigh := runSubmitCell(1, core.Fixed, 475, window)
	alohaHigh := runSubmitCell(1, core.Aloha, 475, window)
	ethHigh := runSubmitCell(1, core.Ethernet, 475, window)

	// "The fixed client fails completely above a load of 400 submitters."
	if fixedHigh > peak/10 {
		t.Errorf("Fixed at 475 = %d, want < 10%% of peak %d", fixedHigh, peak)
	}
	// "The Aloha client settles into an unstable throughput ... but
	// continues to operate as load increases."
	if alohaHigh <= fixedHigh || alohaHigh == 0 {
		t.Errorf("Aloha at 475 = %d, want nonzero and above Fixed %d", alohaHigh, fixedHigh)
	}
	// "The Ethernet client maintains about 50 percent of peak
	// performance under load."
	if ethHigh < peak*4/10 || ethHigh > peak*8/10 {
		t.Errorf("Ethernet at 475 = %d, want 40-80%% of peak %d", ethHigh, peak)
	}
	if ethHigh <= alohaHigh {
		t.Errorf("Ethernet %d not above Aloha %d under load", ethHigh, alohaHigh)
	}
	// Below the collapse point all disciplines behave alike.
	fLow := runSubmitCell(1, core.Fixed, 200, window)
	eLow := runSubmitCell(1, core.Ethernet, 200, window)
	if diff := fLow - eLow; diff > eLow/10 || diff < -eLow/10 {
		t.Errorf("below contention Fixed %d vs Ethernet %d should match", fLow, eLow)
	}
}

func TestFig2AlohaTimelineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("400-client timeline; skipped in -short")
	}
	tl := Fig2(Options{})
	// "The Aloha clients immediately consume all of the FDs": the FD
	// series must touch near-exhaustion at some point.
	if tl.FDs.Min() > 8192/10 {
		t.Errorf("FD minimum = %v, want near zero", tl.FDs.Min())
	}
	// "At several points, the number of available FDs spikes upwards.
	// This is due to the schedd itself failing."
	if tl.Crashes < 2 {
		t.Errorf("Crashes = %d, want repeated schedd failures", tl.Crashes)
	}
	if tl.FDs.Max() < 8000 {
		t.Errorf("FD spikes reach only %v; crashes should free nearly all", tl.FDs.Max())
	}
	if tl.Jobs.Last().V == 0 {
		t.Error("Aloha jobs = 0; should hobble along")
	}
}

func TestFig3EthernetTimelineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("400-client timeline; skipped in -short")
	}
	a := Fig2(Options{})
	e := Fig3(Options{})
	// "The Ethernet client attempts to preserve a critical value of
	// file descriptors": no crashes, and steadily more jobs than Aloha.
	if e.Crashes != 0 {
		t.Errorf("Ethernet Crashes = %d, want 0", e.Crashes)
	}
	if e.Jobs.Last().V <= a.Jobs.Last().V {
		t.Errorf("Ethernet jobs %v not above Aloha %v", e.Jobs.Last().V, a.Jobs.Last().V)
	}
	// "The result is that an acceptable number of clients are
	// continually running, keeping the FDs at a high utilization": the
	// series must hold near the 1000-FD threshold — never starving the
	// schedd, never drifting far above.
	if min := e.FDs.Min(); min < 60 {
		t.Errorf("Ethernet FD minimum = %v: housekeeping nearly starved", min)
	}
	if mean := e.FDs.Mean(); mean < 600 || mean > 2500 {
		t.Errorf("Ethernet FD mean = %v, want held near the 1000 threshold", mean)
	}
}

func TestFig45BufferShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("10-minute buffer sweep; skipped in -short")
	}
	bs := RunBufferSweep(Options{})
	cols := map[string]metricsCols{}
	for i, c := range bs.Consumed.Cols {
		cols[c.Name] = metricsCols{consumed: c.Vals, collisions: bs.Collisions.Cols[i].Vals}
	}
	last := len(bs.Consumed.Xs) - 1
	eth, aloha, fixed := cols["Ethernet"], cols["Aloha"], cols["Fixed"]

	// Fig 4: "the fixed and Aloha disciplines do not scale. The
	// Ethernet approach scales acceptably, falling off only slightly."
	if drop := eth.consumed[0] - eth.consumed[last]; drop > eth.consumed[0]*0.25 {
		t.Errorf("Ethernet throughput fell %v from %v: more than 'slightly'", drop, eth.consumed[0])
	}
	if fixed.consumed[last] > eth.consumed[last]*0.5 {
		t.Errorf("Fixed at 50 producers = %v, want well below Ethernet %v", fixed.consumed[last], eth.consumed[last])
	}
	if fixed.consumed[last] >= fixed.consumed[0]*0.5 {
		t.Errorf("Fixed should collapse with producers: %v -> %v", fixed.consumed[0], fixed.consumed[last])
	}
	if aloha.consumed[last] >= eth.consumed[last] {
		t.Errorf("Aloha %v should trail Ethernet %v under load", aloha.consumed[last], eth.consumed[last])
	}
	// Fig 5: collision ordering Fixed >> Aloha >> Ethernet.
	if fixed.collisions[last] < 5*aloha.collisions[last] {
		t.Errorf("Fixed collisions %v not >> Aloha %v", fixed.collisions[last], aloha.collisions[last])
	}
	if aloha.collisions[last] < 3*eth.collisions[last] {
		t.Errorf("Aloha collisions %v not >> Ethernet %v", aloha.collisions[last], eth.collisions[last])
	}
}

type metricsCols struct {
	consumed   []float64
	collisions []float64
}

func TestFig67ReaderShapes(t *testing.T) {
	f6 := Fig6(Options{})
	f7 := Fig7(Options{})
	// "the Aloha clients occasionally all fall on the single black hole
	// server and must wait the full sixty seconds."
	if f6.TotalCollisions == 0 {
		t.Error("Aloha readers recorded no black-hole collisions")
	}
	// "The Ethernet clients are much more effective and suffer from no
	// such hiccups."
	if f7.TotalCollisions != 0 {
		t.Errorf("Ethernet collisions = %d, want 0", f7.TotalCollisions)
	}
	if f7.TotalDeferrals == 0 {
		t.Error("Ethernet readers never deferred")
	}
	if f7.TotalTransfers <= f6.TotalTransfers {
		t.Errorf("Ethernet transfers %d not above Aloha %d", f7.TotalTransfers, f6.TotalTransfers)
	}
	// Timeline series are cumulative and non-empty.
	if f6.Transfers.Len() == 0 || f7.Transfers.Len() == 0 {
		t.Error("empty transfer series")
	}
}

func TestScaledDownRunsAreFast(t *testing.T) {
	start := time.Now()
	tl := Fig3(Options{Scale: 0.1})
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("scaled timeline took %v", wall)
	}
	if tl.Jobs.Last().V == 0 {
		t.Error("scaled run submitted nothing")
	}
}

func TestDeterminism(t *testing.T) {
	a := Fig6(Options{Seed: 42, Scale: 0.3})
	b := Fig6(Options{Seed: 42, Scale: 0.3})
	if a.TotalTransfers != b.TotalTransfers || a.TotalCollisions != b.TotalCollisions {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := Fig6(Options{Seed: 43, Scale: 0.3})
	_ = c // different seed may or may not differ; just must not panic
}

func TestTableRendering(t *testing.T) {
	tl := Fig7(Options{Scale: 0.2})
	var sb strings.Builder
	if _, err := tl.Table().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "transfers") || !strings.Contains(out, "deferrals") {
		t.Fatalf("table = %q", out)
	}
}
