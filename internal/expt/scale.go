package expt

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// Million-client engine sweep (figure "scale")
// ---------------------------------------------------------------------
//
// The paper's client sweeps stop at a few hundred submitters because
// each client is a goroutine-backed process; a million of those is
// gigabytes of stacks before the first virtual second elapses. The
// scale figure drives the same Ethernet discipline — carrier-sense,
// defer below a threshold, exponential backoff, bounded hold — through
// lightweight clients instead: each client is a few dozen bytes of
// state in one dense slice, advanced entirely by engine timers via the
// zero-allocation ScheduleArg path. No goroutines, no parking, no
// per-event closures, so the engine's timer structures are the whole
// cost, and a 1M-client cell is feasible in seconds.
//
// The figure is sim-only by construction (a million wall-clock timers
// is not a measurement, it is a denial of service) and ignores fault
// plans: its purpose is to measure the engine, not the disciplines.
// The deterministic columns (jobs, deferrals, attempts, events) are a
// pure function of the seed at any -parallel or -shards setting; the
// wall-clock and events/sec of each cell are reported separately as
// "# timing:" comments because they are, deliberately, not.

// ScaleSweep is the client populations swept by FigScale. Options.Scale
// shrinks them like every other sweep: -scale 0.01 turns the 1M cell
// into a 10k smoke cell.
var ScaleSweep = []int{10_000, 100_000, 1_000_000}

// ScaleWindow is the measurement window of the scale sweep, in virtual
// time. Sixty seconds at a ~10s mean think time gives every client a
// handful of attempts — enough contention to exercise the backoff
// machinery without the event count drowning the figure's purpose.
const ScaleWindow = 60 * time.Second

// Per-client discipline parameters. The regime mirrors the paper's
// submit scenario scaled up: demand outstrips carrier capacity by
// roughly 2x, so carrier-sense deferral and backoff do real work.
const (
	scaleThink      = 10 * time.Second        // mean idle time between jobs
	scaleService    = 200 * time.Millisecond  // carrier hold per job
	scaleBackoff0   = 250 * time.Millisecond  // initial backoff
	scaleBackoffMax = 30 * time.Second        // backoff ceiling
	// scaleWatchdogAt is the deadline of each cell's runaway watchdog: a
	// far-future timer that panics if a cell somehow fails to quiesce.
	// It is deliberately beyond the timer wheel's in-wheel horizon so
	// every scale cell also exercises the overflow list (see
	// sim.Engine.TimerOverflowLen), and it is canceled at drain time.
	scaleWatchdogAt = 90 * 24 * time.Hour
)

// scaleCarrierCapacity sizes the shared carrier for n clients: one unit
// per hundred clients, the same ~2x-overcommit contention regime at
// every sweep point.
func scaleCarrierCapacity(n int) int {
	c := n / 100
	if c < 1 {
		c = 1
	}
	return c
}

// scaleCell is the shared universe of one sweep point: the carrier and
// the cumulative counters every client updates under the engine token.
type scaleCell struct {
	e         *sim.Engine
	window    time.Duration
	capacity  int // carrier units
	threshold int // carrier-sense floor: defer when free < threshold
	inUse     int

	jobs      int64
	attempts  int64
	deferrals int64
}

// scaleClient is one lightweight client: per-client state only, dense
// in one slice per cell. All behavior lives in the shared callbacks
// below, driven by ScheduleArg, so a client costs no goroutine, no
// closure per event, and no allocation after setup.
type scaleClient struct {
	cell    *scaleCell
	backoff time.Duration
}

// scaleJitter spreads d uniformly over [d/2, 3d/2) using the engine's
// deterministic source, desynchronizing the population exactly as the
// paper's disciplines do.
func scaleJitter(e *sim.Engine, d time.Duration) time.Duration {
	return d/2 + time.Duration(e.Rand().Float64()*float64(d))
}

// scaleAttempt is the shared attempt callback: carrier-sense, defer
// below threshold with exponential backoff, otherwise hold a unit for
// the service time.
func scaleAttempt(arg any) {
	c := arg.(*scaleClient)
	s := c.cell
	if s.e.Elapsed() >= s.window {
		return // window closed: let the population drain
	}
	s.attempts++
	if s.capacity-s.inUse < s.threshold {
		s.deferrals++
		c.backoff *= 2
		if c.backoff > scaleBackoffMax {
			c.backoff = scaleBackoffMax
		}
		s.e.ScheduleArg(scaleJitter(s.e, c.backoff), scaleAttempt, c)
		return
	}
	s.inUse++
	s.e.ScheduleArg(scaleService, scaleRelease, c)
}

// scaleRelease is the shared completion callback: release the unit,
// count the job, reset backoff, and think before the next attempt.
func scaleRelease(arg any) {
	c := arg.(*scaleClient)
	s := c.cell
	s.inUse--
	s.jobs++
	c.backoff = scaleBackoff0
	if s.e.Elapsed() >= s.window {
		return
	}
	s.e.ScheduleArg(scaleJitter(s.e, scaleThink), scaleAttempt, c)
}

// ScaleCellResult is one sweep point's accounting. Jobs, Attempts,
// Deferrals, and Events are deterministic per seed; Wall is the host
// wall-clock cost of the cell and EventsPerSec the resulting engine
// throughput — the two numbers BENCH_expt.json records.
type ScaleCellResult struct {
	Clients   int
	Jobs      int64
	Attempts  int64
	Deferrals int64
	Events    int64
	Wall      time.Duration
}

// EventsPerSec reports the cell's engine throughput in scheduling steps
// per wall-clock second.
func (r *ScaleCellResult) EventsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Events) / r.Wall.Seconds()
}

// ScaleCell runs one sweep point: n lightweight Ethernet clients
// contending for an n/100-unit carrier over the window.
func ScaleCell(opt Options, seed int64, n int) *ScaleCellResult {
	return scaleCellChecked(opt, seed, n, nil)
}

// scaleCellChecked is ScaleCell with the invariant recorder attached.
func scaleCellChecked(opt Options, seed int64, n int, rec *chaos.Recorder) *ScaleCellResult {
	start := time.Now()
	e := sim.New(seed)
	if opt.Shards > 1 {
		e.SetShards(opt.Shards)
	}
	cap := scaleCarrierCapacity(n)
	s := &scaleCell{
		e:         e,
		window:    opt.scaleD(ScaleWindow),
		capacity:  cap,
		threshold: max(1, cap/4),
	}
	clients := make([]scaleClient, n)
	shards := e.Shards()
	for i := range clients {
		clients[i] = scaleClient{cell: s, backoff: scaleBackoff0}
		// Desynchronized first attempts; clients partition round-robin
		// across the engine's timer shards, and each client's timer
		// chain stays on its shard from here on.
		e.ScheduleArgOn(i%shards, time.Duration(e.Rand().Float64()*float64(scaleThink)), scaleAttempt, &clients[i])
	}
	// Runaway watchdog, beyond the wheel horizon (exercises overflow).
	wd := e.Schedule(scaleWatchdogAt, func() {
		panic("expt: scale cell failed to quiesce")
	})
	// The last legitimate event is bounded by window + max backoff +
	// service; collect the watchdog after that so Run can quiesce.
	e.Schedule(s.window+2*scaleBackoffMax, wd.Cancel)

	var inv *chaos.Invariants
	if rec != nil {
		inv = chaos.NewInvariants(e.RT(), rec, 0)
		inv.Monotone("jobs", func() float64 { return float64(s.jobs) })
		inv.Monotone("attempts", func() float64 { return float64(s.attempts) })
		inv.Horizon(s.window)
		ctx, cancel := e.WithTimeout(e.Context(), s.window)
		defer cancel()
		inv.Start(ctx)
	}
	if opt.obsCell == "" {
		opt.obsCell = fmt.Sprintf("scale/ethernet/n%d", n)
	}
	finish := armObs(opt, e.RT(), s.window, opt.obsCell, nil)
	if err := e.Run(); err != nil {
		panic("expt: " + err.Error())
	}
	finish()
	if inv != nil {
		inv.Finish()
	}
	return &ScaleCellResult{
		Clients:   n,
		Jobs:      s.jobs,
		Attempts:  s.attempts,
		Deferrals: s.deferrals,
		Events:    e.Events(),
		Wall:      time.Since(start),
	}
}

// ScaleResult holds the figure's deterministic table plus the per-cell
// timing (wall-clock, events/sec) that is intentionally excluded from
// it.
type ScaleResult struct {
	Table *metrics.SweepTable
	Cells []*ScaleCellResult
}

// FigScale runs the million-client engine sweep: ScaleSweep populations
// of lightweight Ethernet clients, one independent cell per population.
// Cells run on the worker pool like every other sweep and are
// reassembled in cell order, so the table is byte-identical at any
// Options.Parallel and any Options.Shards.
func FigScale(opt Options) *ScaleResult {
	xs := make([]int, 0, len(ScaleSweep))
	for _, n := range ScaleSweep {
		xs = append(xs, opt.scaleN(n))
	}
	cells := make([]*ScaleCellResult, len(xs))
	runCells(opt, len(xs), func(c int, tr *trace.Tracer, rec *chaos.Recorder, reg *obs.Registry) {
		copt := opt
		copt.cellObs = reg
		copt.obsCell = fmt.Sprintf("scale/ethernet/n%d", xs[c])
		cells[c] = scaleCellChecked(copt, opt.seed()+int64(c), xs[c], rec)
	})
	t := &metrics.SweepTable{XLabel: "clients", Xs: xs}
	cols := []struct {
		name string
		val  func(r *ScaleCellResult) float64
	}{
		{"jobs", func(r *ScaleCellResult) float64 { return float64(r.Jobs) }},
		{"attempts", func(r *ScaleCellResult) float64 { return float64(r.Attempts) }},
		{"deferrals", func(r *ScaleCellResult) float64 { return float64(r.Deferrals) }},
		{"events", func(r *ScaleCellResult) float64 { return float64(r.Events) }},
	}
	for _, c := range cols {
		col := metrics.SweepCol{Name: c.name}
		for _, r := range cells {
			col.Vals = append(col.Vals, c.val(r))
		}
		t.Cols = append(t.Cols, col)
	}
	return &ScaleResult{Table: t, Cells: cells}
}
