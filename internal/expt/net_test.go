package expt

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fsbuffer"
	"repro/internal/replica"
)

// netTestWindow keeps the channel-ablation tests fast while leaving
// the partition phases long enough to dwarf the retry cadence.
const netTestWindow = 2 * time.Minute

// TestNetCellFencedSafety is the tentpole acceptance: with the
// survival mechanisms armed, no channel behaviour the presets can
// produce ever double-allocates the FD table or books a phantom job —
// across both presets, three seeds, and a spread of populations.
func TestNetCellFencedSafety(t *testing.T) {
	for _, preset := range []string{"dup-storm", "part-flap"} {
		for seed := int64(1); seed <= 3; seed++ {
			plan, err := chaos.Preset(preset, seed)
			if err != nil {
				t.Fatal(err)
			}
			rec := &chaos.Recorder{}
			res := NetCell(Options{}, seed, 40, netTestWindow, plan, true, rec)
			if err := rec.Err(); err != nil {
				t.Errorf("%s seed %d: fenced cell violated invariants: %v", preset, seed, err)
			}
			if res.Phantom != 0 {
				t.Errorf("%s seed %d: fenced cell booked %d phantom jobs (jobs=%d unique=%d)",
					preset, seed, res.Phantom, res.Jobs, res.Unique)
			}
			if res.Jobs == 0 {
				t.Errorf("%s seed %d: fenced cell made no progress at all", preset, seed)
			}
			t.Logf("%s seed %d fenced: jobs=%d deduped=%d netdrops=%d wire(drop=%d dup=%d stale=%d) revokes=%d",
				preset, seed, res.Jobs, res.Deduped, res.NetDrops,
				res.WireDrops, res.WireDups, res.Stales, res.Revokes)
		}
	}
}

// TestNetCellUnfencedBreaks proves the ablation has teeth: with
// fencing and idempotency disabled, the dup-storm plan books phantom
// jobs and the channel's duplicated/delayed releases double-free the
// FD table until grants exceed capacity.
func TestNetCellUnfencedBreaks(t *testing.T) {
	var phantoms, dallocs int
	for seed := int64(1); seed <= 3; seed++ {
		plan, _ := chaos.Preset("dup-storm", seed)
		res := NetCell(Options{}, seed, 40, netTestWindow, plan, false, nil)
		t.Logf("dup-storm seed %d unfenced: jobs=%d phantom=%d dallocs=%d wire(drop=%d dup=%d)",
			seed, res.Jobs, res.Phantom, res.DoubleAllocs, res.WireDrops, res.WireDups)
		if res.Phantom > 0 {
			phantoms++
		}
		if res.DoubleAllocs > 0 {
			dallocs++
		}
	}
	if phantoms == 0 {
		t.Error("unfenced dup-storm cells never booked a phantom job: the ablation is not biting")
	}
	if dallocs == 0 {
		t.Error("unfenced dup-storm cells never double-allocated: the ablation is not biting")
	}
}

// netBufferCell runs fenced reserving producers against the allocator
// with its lease wire routed through the plan's injector, asserting the
// reservation tenure book never admits past capacity.
func netBufferCell(t *testing.T, opt Options, seed int64, window time.Duration, plan *chaos.Plan, rec *chaos.Recorder) {
	t.Helper()
	e := opt.newEngine(seed)
	b := fsbuffer.New(e, fsbuffer.Config{})
	alloc := fsbuffer.NewAllocator(e, b, 0)
	alloc.SetLeaseQuantum(netQuantum(window))
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	plan.Arm(e, chaos.Targets{Window: window, Buffer: b, Allocator: alloc})
	inv := chaos.NewInvariants(e, rec, 0)
	ten := alloc.Tenure()
	inv.NoDoubleAlloc("reservation", ten.Outstanding, ten.Capacity)
	if opt.Backend != BackendLive {
		// Horizon is a determinism check: on the live backend the run
		// quiesces within real scheduling jitter of the boundary, which
		// is noise, not a stall.
		inv.Horizon(window)
	}
	inv.Start(ctx)
	e.Spawn("consumer", func(p core.Proc) { b.Consumer(p, ctx) })
	for j := 0; j < 8; j++ {
		j := j
		cfg := fsbuffer.DefaultProducerConfig(core.Reservation)
		e.Spawn(fmt.Sprintf("producer-%d", j), func(p core.Proc) {
			var rp fsbuffer.ReservingProducer
			rp.Loop(p, ctx, alloc, j, cfg)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	inv.Finish()
	if b.Consumed == 0 {
		t.Errorf("fsbuffer cell consumed nothing under %s seed %d", plan.Name, seed)
	}
}

// netReaderCell runs fenced readers against replica servers whose
// service-lane lease wires cross the plan's injector, asserting no lane
// ever admits more transfers than it has slots.
func netReaderCell(t *testing.T, opt Options, seed int64, window time.Duration, plan *chaos.Plan, rec *chaos.Recorder) {
	t.Helper()
	e := opt.newEngine(seed)
	cfg := replica.Config{}
	servers := []*replica.Server{
		replica.NewServer(e, "yyy", false, cfg),
		replica.NewServer(e, "zzz", false, cfg),
	}
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	plan.Arm(e, chaos.Targets{Window: window, Servers: servers})
	inv := chaos.NewInvariants(e, rec, 0)
	for _, s := range servers {
		lane := s.Lane()
		inv.NoDoubleAlloc("lane-"+s.Name, lane.Outstanding, lane.Capacity)
	}
	if opt.Backend != BackendLive {
		inv.Horizon(window)
	}
	inv.Start(ctx)
	rcfg := replica.DefaultReaderConfig(core.Ethernet)
	rcfg.OuterLimit = window
	readers := make([]*replica.Reader, 3)
	for i := range readers {
		readers[i] = &replica.Reader{}
		r := readers[i]
		e.Spawn(fmt.Sprintf("reader-%d", i), func(p core.Proc) { r.Loop(p, ctx, servers, rcfg) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	inv.Finish()
	var done int64
	for _, r := range readers {
		done += r.Done
	}
	if done == 0 {
		t.Errorf("replica cell transferred nothing under %s seed %d", plan.Name, seed)
	}
}

// TestNetNoDoubleAllocAcrossScenarios is the cross-substrate acceptance:
// with fencing armed, no channel behaviour the two presets produce ever
// admits a leased resource past capacity — on the condor FD table, the
// fsbuffer reservation book, and the replica service lanes; across
// seeds 1-3; on both the deterministic sim backend and the wall-clock
// live backend. Live runs assert only the safety invariants (fencing is
// structural, so they hold regardless of real scheduling jitter).
func TestNetNoDoubleAllocAcrossScenarios(t *testing.T) {
	backends := []struct {
		name string
		opt  Options
	}{
		{"sim", Options{}},
		// Timescale keeps the shortest chaos feature (a ~6s severed
		// phase at this window) well above real scheduler granularity;
		// see EXPERIMENTS.md for the floor rule.
		{"live", Options{Backend: BackendLive, Timescale: 1000}},
	}
	for _, be := range backends {
		for _, preset := range []string{"dup-storm", "part-flap"} {
			for seed := int64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/%s/seed%d", be.name, preset, seed), func(t *testing.T) {
					mk := func() *chaos.Plan {
						plan, err := chaos.Preset(preset, seed)
						if err != nil {
							t.Fatal(err)
						}
						return plan
					}
					rec := &chaos.Recorder{}
					res := NetCell(be.opt, seed, 40, netTestWindow, mk(), true, nil)
					if res.DoubleAllocs != 0 {
						t.Errorf("condor: fenced FD table double-allocated %d time(s)", res.DoubleAllocs)
					}
					if res.Phantom != 0 {
						t.Errorf("condor: fenced schedd booked %d phantom jobs", res.Phantom)
					}
					netBufferCell(t, be.opt, seed, netTestWindow, mk(), rec)
					netReaderCell(t, be.opt, seed, netTestWindow, mk(), rec)
					if err := rec.Err(); err != nil {
						t.Errorf("fenced cells violated invariants: %v", err)
					}
				})
			}
		}
	}
}
