package expt

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/lease"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// Reservation/admission-control ablation (figure "res")
// ---------------------------------------------------------------------
//
// The fourth discipline the paper's taxonomy implies but never builds:
// instead of sensing the carrier and colliding optimistically, a
// reservation submitter books a worst-case descriptor window on an
// admission book before touching the schedd. The book refuses outright
// when it is full over the requested window — a typed rejection that
// consumed nothing — and enforces granted windows server-side with the
// claim lease's watchdog.
//
// The figure runs Reservation head-to-head against the leased Ethernet
// submitter (FigLA's healthy arm) twice per population: once fault-free
// and once under the "res-flap" plan (the schedd flaps and holders
// wedge mid-window). The headline is the trade: admission control wins
// under steady load — no crashes, no collisions, capacity never
// overcommitted — and collapses under server flap, because the book
// keeps charging for windows whose holders are dead until each window's
// boundary passes, while Ethernet's failed optimists retreat after one
// quantum.

// ResSweep is the submitter counts swept by FigRes.
var ResSweep = []int{50, 100, 200, 400}

// resWindow is the tenure a reservation submitter books per job: a
// third of the experiment window. It must cover the worst-case
// submission with room to spare (honest holders release early and the
// booking truncates, so the slack is free in steady state); the same
// slack is exactly what a wedged holder's dead window costs under
// chaos — over 3x the Ethernet arm's revocation quantum.
func resWindow(window time.Duration) time.Duration { return window / 3 }

// resBookCapacity sizes the admission book: 10 units per submitter
// against a worst-case booking of ClientFDs+ClientFDJitter (20) units,
// so the book admits about half the population concurrently — the same
// contention regime the Ethernet arm's carrier threshold produces.
func resBookCapacity(n int) int64 { return int64(10 * n) }

// ResCellResult is one reservation cell's accounting.
type ResCellResult struct {
	// Jobs is total jobs submitted; PerClient the per-submitter split.
	Jobs      int64
	PerClient []float64
	// Jain is Jain's fairness index over PerClient.
	Jain float64
	// Rejects counts bookings the full book refused outright.
	Rejects int64
	// Admits counts booked windows that were claimed.
	Admits int64
	// Revokes counts claim tenures the watchdog reclaimed at a window
	// boundary — each one is a dead window that was charged in full.
	Revokes int64
	// Lapses counts windows that ended unclaimed.
	Lapses int64
	// Crashes counts schedd crashes during the run.
	Crashes int64
	// Starved counts no-starvation violations; MaxWait is the longest
	// any client went wanting a booking.
	Starved int
	MaxWait time.Duration
}

// ResCell runs n reservation submitters against a cluster whose client
// descriptor share is governed by an admission book, for the window,
// optionally under a fault plan. Violations are counted into Starved;
// when rec is non-nil they are also forwarded, so an acceptance suite
// can demand a clean run.
func ResCell(opt Options, seed int64, n int, window time.Duration, plan *chaos.Plan, rec *chaos.Recorder) *ResCellResult {
	e := opt.newEngine(seed)
	quantum := leaseQuantum(window)
	cl := condor.NewCluster(e, condor.Config{
		// Same table and service provisioning as the Ethernet arm
		// (LeaseCell), so the only variable is the discipline.
		FDCapacity:   12 * n,
		ServiceSlots: n,
		LeaseQuantum: quantum,
	})
	// The book carves the client share out of the descriptor budget;
	// the remainder of the table is the schedd's (connection FDs,
	// housekeeping), so an admitted client can never crash the daemon
	// by mere arrival — that is the admission-control bargain.
	book := lease.NewBook(e, "fds", resBookCapacity(n))
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	cl.StartHousekeeping(ctx)
	if plan != nil {
		plan.Arm(e, chaos.Targets{Window: window, Cluster: cl, Trace: opt.Trace})
	}
	// Starvation is detected locally: under the flap plan the
	// violations are the measurement (dead windows starve the book),
	// not an experiment failure.
	priv := &chaos.Recorder{}
	inv := chaos.NewInvariants(e, priv, 0)
	inv.Monotone("jobs", func() float64 { return float64(cl.Schedd.Jobs) })
	inv.Monotone("rejects", func() float64 { return float64(book.Rejects) })
	inv.Horizon(window)
	inv.NoStarvation("fds", book.Tenure().LongestWait, leaseBudget(window))
	inv.Start(ctx)

	if opt.obsCell == "" {
		opt.obsCell = fmt.Sprintf("res/reservation/n%d", n)
	}
	finish := armObs(opt, e, window, opt.obsCell, func(sc *obs.Scope) {
		obsCluster(sc, cl)
		obsBook(sc, book, "book")
	})
	subs := make([]*condor.Submitter, n)
	for i := 0; i < n; i++ {
		subs[i] = &condor.Submitter{}
		sub := subs[i]
		cfg := condor.ResSubmitterConfig{
			// One work unit spans the whole window, as in the Ethernet
			// arm.
			TryLimit:  window,
			Window:    resWindow(window),
			ThinkTime: 3 * time.Second,
			// The same capped backoff template as the Ethernet arm: a
			// rejected client re-asks within the reclamation cycle.
			Backoff: &core.Backoff{Base: time.Second, Cap: quantum / 2, Factor: 2, RandMin: 1, RandMax: 2},
		}
		if opt.Trace != nil {
			cfg.Trace = opt.Trace.NewClient(core.Reservation.String(), fmt.Sprintf("submitter-%d", i), e.Elapsed)
		}
		// Unique process names: the book ledger keys holders by name.
		e.Spawn(fmt.Sprintf("submitter-%d", i), func(p core.Proc) {
			sub.ReserveLoop(p, ctx, cl, book, cfg)
		})
	}
	if err := e.Run(); err != nil {
		panic("expt: " + err.Error())
	}
	finish()
	inv.Finish()

	res := &ResCellResult{
		Jobs:      cl.Schedd.Jobs,
		PerClient: make([]float64, n),
		Rejects:   book.Rejects,
		Admits:    book.Admits,
		Revokes:   book.Tenure().Revokes,
		Lapses:    book.Lapses,
		Crashes:   cl.Schedd.Crashes,
		MaxWait:   book.Tenure().MaxStarvation(),
	}
	for i, sub := range subs {
		res.PerClient[i] = float64(sub.Submitted)
	}
	res.Jain = metrics.JainIndex(res.PerClient)
	for _, v := range priv.Violations {
		if v.Check == "no-starvation" {
			res.Starved++
		}
		if rec != nil {
			rec.Add(v)
		}
	}
	return res
}

// ResAblation holds the figure's two tables.
type ResAblation struct {
	// Throughput: jobs submitted — Reservation vs leased Ethernet,
	// fault-free and under the res-flap plan.
	Throughput *metrics.SweepTable
	// Admission: the book's own accounting — steady-state rejections,
	// flap rejections, dead windows (claim revocations under flap), and
	// the Ethernet flap arm's crashes for contrast.
	Admission *metrics.SweepTable
}

// FigRes runs the reservation ablation: each population in ResSweep
// runs four cells — Reservation and leased Ethernet, each fault-free
// and under the "res-flap" plan (opt.Chaos overrides it). Violations
// from the fault-free cells go to opt.Check — a steady-state universe
// must stay clean; the flap cells' violations are the measurement.
//
// Like FigLA, the sweep population is not scaled down and the window is
// floored at two minutes, so the booking-window cycle stays meaningful
// at every scale.
func FigRes(opt Options) *ResAblation {
	window := opt.scaleD(SubmitWindow)
	if window < 2*time.Minute {
		window = 2 * time.Minute
	}
	quantum := leaseQuantum(window)
	xs := append([]int(nil), ResSweep...)
	ra := &ResAblation{
		Throughput: &metrics.SweepTable{XLabel: "submitters", Xs: xs},
		Admission:  &metrics.SweepTable{XLabel: "submitters", Xs: xs},
	}
	resS := make([]*ResCellResult, len(xs))
	resF := make([]*ResCellResult, len(xs))
	ethS := make([]*LeaseCellResult, len(xs))
	ethF := make([]*LeaseCellResult, len(xs))
	// Four cells per population, in fixed order — res/eth steady, then
	// res/eth under flap — matching the serial emission order of traces
	// and violations.
	runCells(opt, 4*len(xs), func(c int, tr *trace.Tracer, rec *chaos.Recorder, reg *obs.Registry) {
		i := c / 4
		seed := opt.seed() + int64(i)
		flap := opt.Chaos
		if flap == nil {
			flap, _ = chaos.Preset("res-flap", seed)
		}
		copt := opt
		copt.Trace = tr
		copt.cellObs = reg
		switch c % 4 {
		case 0:
			copt.obsCell = fmt.Sprintf("res/res-steady/n%d", xs[i])
			resS[i] = ResCell(copt, seed, xs[i], window, nil, rec)
		case 1:
			copt.obsCell = fmt.Sprintf("res/eth-steady/n%d", xs[i])
			ethS[i] = LeaseCell(copt, seed, xs[i], window, quantum, nil, rec)
		case 2:
			copt.obsCell = fmt.Sprintf("res/res-flap/n%d", xs[i])
			resF[i] = ResCell(copt, seed, xs[i], window, flap, nil)
		case 3:
			copt.obsCell = fmt.Sprintf("res/eth-flap/n%d", xs[i])
			ethF[i] = LeaseCell(copt, seed, xs[i], window, quantum, flap, nil)
		}
	})
	cols := struct {
		resS, ethS, resF, ethF               metrics.SweepCol
		rejS, rejF, dead, lapses, crashesEth metrics.SweepCol
	}{
		resS:       metrics.SweepCol{Name: "res"},
		ethS:       metrics.SweepCol{Name: "ethernet"},
		resF:       metrics.SweepCol{Name: "res-flap"},
		ethF:       metrics.SweepCol{Name: "eth-flap"},
		rejS:       metrics.SweepCol{Name: "rejects"},
		rejF:       metrics.SweepCol{Name: "rejects-flap"},
		dead:       metrics.SweepCol{Name: "dead-windows"},
		lapses:     metrics.SweepCol{Name: "lapses-flap"},
		crashesEth: metrics.SweepCol{Name: "eth-crashes-flap"},
	}
	for i := range xs {
		cols.resS.Vals = append(cols.resS.Vals, float64(resS[i].Jobs))
		cols.ethS.Vals = append(cols.ethS.Vals, float64(ethS[i].Jobs))
		cols.resF.Vals = append(cols.resF.Vals, float64(resF[i].Jobs))
		cols.ethF.Vals = append(cols.ethF.Vals, float64(ethF[i].Jobs))
		cols.rejS.Vals = append(cols.rejS.Vals, float64(resS[i].Rejects))
		cols.rejF.Vals = append(cols.rejF.Vals, float64(resF[i].Rejects))
		cols.dead.Vals = append(cols.dead.Vals, float64(resF[i].Revokes))
		cols.lapses.Vals = append(cols.lapses.Vals, float64(resF[i].Lapses))
		cols.crashesEth.Vals = append(cols.crashesEth.Vals, float64(ethF[i].Crashes))
	}
	ra.Throughput.Cols = []metrics.SweepCol{cols.resS, cols.ethS, cols.resF, cols.ethF}
	ra.Admission.Cols = []metrics.SweepCol{cols.rejS, cols.rejF, cols.dead, cols.lapses, cols.crashesEth}
	return ra
}
