package expt

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gridd"
	"repro/internal/griddclient"
	"repro/internal/live"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// The gridd backend: the paper's scenarios over a real socket
// ---------------------------------------------------------------------
//
// BackendGridd runs the same contention scenarios as sim and live, but
// the contended resources themselves live in a separate networked
// daemon (internal/gridd, cmd/gridd): carrier sense is a real GET,
// acquisition a real POST granting a fenced lease, and the watchdog
// that revokes wedged holders runs on the daemon's wall clock, not the
// client's. Client processes still run on the live engine — virtual
// time, seeded randomness, discipline code all unchanged — so a gridd
// cell is the live cell with the substrate moved across a socket.
//
// The differential harness (diff_test.go) holds these cells to the
// same qualitative claims as the other two backends: Ethernet >= Aloha
// >= Fixed ordering, the carrier floor, lease no-starvation, and
// trace-grammar well-formedness.

// BackendGridd names the networked backend: scenarios on the live
// engine, resources on a gridd daemon across a real socket.
const BackendGridd = "gridd"

// Backends lists every registered backend name, in presentation
// order. cmd/gridbench validates -backend against this list, so a new
// backend registered here is automatically accepted (and advertised)
// by the CLI.
func Backends() []string {
	return []string{BackendSim, BackendLive, BackendGridd}
}

// KnownBackend reports whether name is a registered backend. The
// empty string is the default (sim).
func KnownBackend(name string) bool {
	if name == "" {
		return true
	}
	for _, b := range Backends() {
		if b == name {
			return true
		}
	}
	return false
}

// GriddTimescale is the default compression for gridd cells: 1 virtual
// second per 40 real milliseconds. Far gentler than the in-process
// live default, because every load-bearing virtual duration must map
// to real time comfortably above the Go timer floor PLUS an HTTP
// round-trip on the loopback (see EXPERIMENTS.md, "Choosing a
// timescale for real sockets").
const GriddTimescale = 25.0

func (o Options) griddTimescale() float64 {
	if o.Timescale > 0 {
		return o.Timescale
	}
	return GriddTimescale
}

// SpawnGridd starts an in-process gridd daemon on a loopback listener:
// the same Server cmd/gridd serves, minus the process. It returns the
// base URL, the server handle (for Stats-style white-box checks), and
// a stop function that drains and closes it. Cells call this when
// Options.GriddURL is empty, so the socket-level suites need no
// external setup.
func SpawnGridd(rcs ...gridd.ResourceConfig) (string, *gridd.Server, func(), error) {
	srv := gridd.NewServer(gridd.Config{Resources: rcs})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, fmt.Errorf("expt: spawn gridd: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		_ = hs.Close()
	}
	return "http://" + ln.Addr().String(), srv, stop, nil
}

// GriddDaemon resolves the daemon a cell talks to: an external one
// when Options.GriddURL is set, otherwise a fresh in-process spawn.
// The stop function is a no-op for external daemons.
func (o Options) GriddDaemon() (string, func(), error) {
	if o.GriddURL != "" {
		return o.GriddURL, func() {}, nil
	}
	url, _, stop, err := SpawnGridd()
	return url, stop, err
}

// ---------------------------------------------------------------------
// Submit scenario over the wire
// ---------------------------------------------------------------------

// Paper parameters of the wire submit cell, all per population size n:
// the schedd's descriptor table holds 6n, the Ethernet carrier
// threshold is 3n (so carrier sense keeps roughly half the table
// free), housekeeping needs n descriptors every 5 virtual seconds,
// and a crash takes the schedd down for 10 virtual seconds. A client
// submission pins 10-17 descriptors; the schedd's accept side needs 3
// more, and failing to find them is the accept() failure that crashes
// it — gridd's CrashHolder broadcast jam.
const (
	griddFDsPerN        = 6
	griddThresholdPerN  = 3
	griddScheddUnits    = 3
	griddSubmitQuantum  = 6 * time.Second
	griddHousekeepEvery = 5 * time.Second
	griddRestartDelay   = 10 * time.Second
)

// GriddSubmitResult is one wire submit cell's accounting.
type GriddSubmitResult struct {
	// Jobs counts completed submissions; Crashes the schedd's
	// broadcast jams (from the daemon's own ledger).
	Jobs    int64
	Crashes int64
	// FloorBreaches counts carrier-floor excursions longer than the
	// invariant window, observed by a monitor probing over the wire.
	// Meaningful only for the Ethernet cell.
	FloorBreaches int
	// Stats is the daemon's final per-resource accounting.
	Stats gridd.StatsReply
}

// GriddSubmitCell runs n submitters of discipline d against a
// daemon-hosted descriptor table for the window (virtual time). Every
// resource operation is a real HTTP round-trip; the engine monitor is
// released around each one, so wire waits cost the cell real time but
// no virtual time beyond what the scenario sleeps.
func GriddSubmitCell(opt Options, seed int64, n int, window time.Duration, d core.Discipline, tr *trace.Tracer) (*GriddSubmitResult, error) {
	url, stop, err := opt.GriddDaemon()
	if err != nil {
		return nil, err
	}
	defer stop()
	ts := opt.griddTimescale()
	eng := live.New(seed, ts)
	c := griddclient.New(url, ts)
	// Unique per cell, so an external shared daemon keeps cells apart.
	fds := fmt.Sprintf("fds-%s-n%d-s%d", d, n, seed)
	if err := c.CreateResource(context.Background(), gridd.CreateRequest{
		Name:                fds,
		Capacity:            int64(griddFDsPerN * n),
		QuantumNS:           int64(c.ToReal(griddSubmitQuantum)),
		HousekeepUnits:      int64(n),
		HousekeepIntervalNS: int64(c.ToReal(griddHousekeepEvery)),
		RestartDelayNS:      int64(c.ToReal(griddRestartDelay)),
		CrashHolder:         "schedd",
	}); err != nil {
		return nil, err
	}

	threshold := griddThresholdPerN * n
	ctx, cancel := eng.WithTimeout(eng.Context(), window)
	defer cancel()

	res := &GriddSubmitResult{}
	var mu sync.Mutex

	if d == core.Ethernet {
		spawnGriddFloorMonitor(eng, ctx, c, fds, threshold/2, window, &mu, &res.FloorBreaches)
	}
	for i := 0; i < n; i++ {
		var tc *trace.Client
		if tr != nil {
			tc = tr.NewClient(d.String(), fmt.Sprintf("submitter-%d", i), eng.Elapsed)
		}
		eng.Spawn(fmt.Sprintf("submitter-%d", i), func(p core.Proc) {
			griddSubmitLoop(p, ctx, c, fds, d, threshold, window, tc, &mu, &res.Jobs)
		})
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	st, err := c.Stats(context.Background(), fds)
	if err != nil {
		return nil, err
	}
	res.Stats = st
	res.Crashes = st.Crashes
	return res, nil
}

// spawnGriddFloorMonitor watches the carrier floor from outside the
// socket: probing every virtual second, it counts excursions where
// free descriptors stayed below floor for longer than the invariant
// window — the same claim chaos.Invariants.CarrierFloor makes
// in-process. Crash outages don't count: a down resource has no
// carrier to sense.
func spawnGriddFloorMonitor(eng *live.Engine, ctx context.Context, c *griddclient.Client, fds string, floor int, window time.Duration, mu *sync.Mutex, breaches *int) {
	eng.Spawn("floor-monitor", func(p core.Proc) {
		blocker, _ := p.(griddclient.Blocker)
		var belowSince time.Duration
		sampled, inBreach := false, false
		for ctx.Err() == nil {
			if p.Sleep(ctx, time.Second) != nil {
				return
			}
			var pr gridd.ProbeReply
			var err error
			griddclient.Block(blocker, func() { pr, err = c.Probe(context.Background(), fds) })
			if err != nil {
				continue
			}
			if pr.Down || pr.Free >= int64(floor) {
				sampled, inBreach = false, false
				continue
			}
			now := p.Elapsed()
			if !sampled {
				sampled, belowSince = true, now
				continue
			}
			if !inBreach && now-belowSince > invariantWindow(window) {
				inBreach = true
				mu.Lock()
				*breaches++
				mu.Unlock()
			}
		}
	})
}

// griddSubmitLoop is one submitter process: an endless sequence of
// jobs, each wrapped in the discipline's try via core.Client — the
// identical retry machinery the in-process scenarios use — with
// carrier sense and acquisition crossing the socket.
func griddSubmitLoop(p core.Proc, ctx context.Context, c *griddclient.Client, fds string, d core.Discipline, threshold int, window time.Duration, tc *trace.Client, mu *sync.Mutex, jobs *int64) {
	p.SetTracer(tc)
	blocker, _ := p.(griddclient.Blocker)
	sense := func(context.Context) error {
		var pr gridd.ProbeReply
		var err error
		griddclient.Block(blocker, func() { pr, err = c.Probe(context.Background(), fds) })
		if err != nil || pr.Down || pr.Free < int64(threshold) {
			return core.Deferred(fds)
		}
		return nil
	}
	client := &core.Client{
		Rt:         p,
		Discipline: d,
		Limit:      core.For(window),
		Sense:      sense,
		// Cap the backoff at half a tenure quantum so a deferred client
		// re-senses within the reclamation cycle (same rationale as
		// LeaseCell's in-process backoff).
		Backoff: &core.Backoff{Base: time.Second, Cap: griddSubmitQuantum / 2, Factor: 2, RandMin: 1, RandMax: 2},
		Trace:   tc,
		Site:    fds,
		Span:    "submit",
	}
	for ctx.Err() == nil {
		err := client.Do(ctx, func(ctx context.Context) error {
			return griddSubmitOnce(p, ctx, c, blocker, tc, fds)
		})
		switch {
		case err == nil:
			mu.Lock()
			*jobs++
			mu.Unlock()
			if p.Sleep(ctx, time.Second) != nil { // think time
				return
			}
		case ctx.Err() != nil:
			return
		}
	}
}

// griddSubmitOnce is one submission attempt over the wire: pin the
// client's descriptors, pay the setup time, have the schedd's accept
// side find its own descriptors (failure crashes it — the broadcast
// jam), then the service time, then everything home.
func griddSubmitOnce(p core.Proc, ctx context.Context, c *griddclient.Client, blocker griddclient.Blocker, tc *trace.Client, fds string) error {
	realQ := int64(c.ToReal(griddSubmitQuantum))
	units := int64(10 + int(p.Rand()*8)) // the submission's descriptor footprint
	var lease *griddclient.Lease
	var err error
	griddclient.Block(blocker, func() {
		lease, err = c.Acquire(context.Background(), gridd.AcquireRequest{
			Resource: fds, Holder: p.Name(), Units: units, QuantumNS: realQ,
		})
	})
	if err != nil {
		// Busy or down: the connection setup was wasted either way.
		// Pay it before reporting the collision, so even the Fixed
		// discipline is paced by reality, not by the socket's RTT.
		_ = p.Sleep(ctx, time.Second)
		return core.Collision(fds, err)
	}
	if tc != nil {
		tc.Acquire(fds, units)
	}
	if p.Sleep(ctx, 200*time.Millisecond) != nil { // client-side setup
		griddRetire(blocker, tc, lease, fds, units)
		return ctx.Err()
	}
	var sl *griddclient.Lease
	var serr error
	griddclient.Block(blocker, func() {
		sl, serr = c.Acquire(context.Background(), gridd.AcquireRequest{
			Resource: fds, Holder: "schedd", Units: griddScheddUnits, QuantumNS: realQ,
		})
	})
	if serr != nil {
		// The schedd could not serve the accept: the resource crashed
		// (CrashHolder) and the jam revoked our grant with everyone
		// else's. Retire it anyway — griddRetire books the revoke.
		griddRetire(blocker, tc, lease, fds, units)
		_ = p.Sleep(ctx, time.Second)
		return core.Collision(fds, serr)
	}
	sleepErr := p.Sleep(ctx, time.Duration(float64(1500*time.Millisecond)*(0.5+p.Rand()))) // service
	griddclient.Block(blocker, func() { _ = sl.Release(context.Background()) })
	griddRetire(blocker, tc, lease, fds, units)
	if sleepErr != nil {
		return ctx.Err()
	}
	return nil
}

// griddRetire sends the lease home and books the outcome on the trace:
// a clean release, or — when the daemon already moved past it (watchdog
// or broadcast jam) — the revoke the stale verdict proves happened.
func griddRetire(blocker griddclient.Blocker, tc *trace.Client, lease *griddclient.Lease, res string, units int64) {
	var err error
	griddclient.Block(blocker, func() { err = lease.Release(context.Background()) })
	if tc == nil {
		return
	}
	if err != nil {
		tc.Revoke(res, units)
	} else {
		tc.Release(res, units)
	}
}

// ---------------------------------------------------------------------
// Lease scenario over the wire
// ---------------------------------------------------------------------

// GriddLeaseResult is the wire lease cell's accounting; the fields
// mirror LeaseCellResult so the differential assertions read the same.
type GriddLeaseResult struct {
	Jobs      int64
	PerClient []float64
	Jain      float64
	// Revokes is the daemon watchdog's reclamation count.
	Revokes int64
	// Starved counts clients whose longest single wait for a unit
	// exceeded the no-starvation budget (virtual time, client-side).
	Starved int
	// MaxWait is the longest any client waited for a grant (virtual).
	MaxWait time.Duration
	Stats   gridd.StatsReply
}

// GriddLeaseCell runs n clients against a daemon-hosted pool of n/2
// units with the given tenure quantum (virtual): each client parks in
// the daemon's FIFO queue via long-poll rounds, holds, and releases —
// except that a quarter of tenures wedge past the deadline, so the
// daemon-side watchdog must revoke them or the whole cell starves.
// The no-starvation claim is measured client-side in virtual time
// against the same 4-quantum budget as the in-process cell.
func GriddLeaseCell(opt Options, seed int64, n int, window, quantum time.Duration, tr *trace.Tracer) (*GriddLeaseResult, error) {
	url, stop, err := opt.GriddDaemon()
	if err != nil {
		return nil, err
	}
	defer stop()
	ts := opt.griddTimescale()
	eng := live.New(seed, ts)
	c := griddclient.New(url, ts)
	pool := fmt.Sprintf("pool-n%d-s%d", n, seed)
	capacity := n / 2
	if capacity < 1 {
		capacity = 1
	}
	if err := c.CreateResource(context.Background(), gridd.CreateRequest{
		Name: pool, Capacity: int64(capacity), QuantumNS: int64(c.ToReal(quantum)),
	}); err != nil {
		return nil, err
	}
	ctx, cancel := eng.WithTimeout(eng.Context(), window)
	defer cancel()

	res := &GriddLeaseResult{PerClient: make([]float64, n)}
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		i := i
		var tc *trace.Client
		if tr != nil {
			tc = tr.NewClient("ethernet-gridd", fmt.Sprintf("submitter-%d", i), eng.Elapsed)
		}
		eng.Spawn(fmt.Sprintf("leaser-%d", i), func(p core.Proc) {
			griddLeaseLoop(p, ctx, c, pool, quantum, tc, &mu, res, i)
		})
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	st, err := c.Stats(context.Background(), pool)
	if err != nil {
		return nil, err
	}
	res.Stats = st
	res.Revokes = st.Revokes
	res.Jain = metrics.JainIndex(res.PerClient)
	return res, nil
}

// griddLeaseLoop is one client: park FIFO for a unit, then either hold
// honestly and release, or wedge past the deadline and let the
// watchdog take it back.
func griddLeaseLoop(p core.Proc, ctx context.Context, c *griddclient.Client, pool string, quantum time.Duration, tc *trace.Client, mu *sync.Mutex, res *GriddLeaseResult, idx int) {
	p.SetTracer(tc)
	blocker, _ := p.(griddclient.Blocker)
	budget := 4 * quantum
	realQ := int64(c.ToReal(quantum))
	for ctx.Err() == nil {
		wantSince := p.Elapsed()
		var lease *griddclient.Lease
		for lease == nil {
			if ctx.Err() != nil {
				return
			}
			var err error
			griddclient.Block(blocker, func() {
				lease, err = c.Acquire(context.Background(), gridd.AcquireRequest{
					Resource: pool, Holder: p.Name(), Units: 1,
					WaitNS: realQ, QuantumNS: realQ,
				})
			})
			if err != nil {
				lease = nil
				if errors.Is(err, griddclient.ErrBusy) || errors.Is(err, griddclient.ErrUnavailable) {
					continue // next long-poll round
				}
				return
			}
		}
		wait := p.Elapsed() - wantSince
		mu.Lock()
		if wait > res.MaxWait {
			res.MaxWait = wait
		}
		if wait > budget {
			res.Starved++
		}
		mu.Unlock()
		if tc != nil {
			tc.Acquire(pool, 1)
		}
		if p.Rand() < 0.25 {
			// Wedge: sleep through two quanta. The watchdog revokes at
			// one; the renew afterwards must land stale — unless timer
			// jitter kept us alive, in which case retire honestly.
			if p.Sleep(ctx, 2*quantum) != nil {
				griddRetire(blocker, tc, lease, pool, 1)
				return
			}
			var rerr error
			griddclient.Block(blocker, func() { _, rerr = lease.Renew(context.Background(), 0) })
			if rerr == nil {
				griddRetire(blocker, tc, lease, pool, 1)
			} else if tc != nil {
				tc.Revoke(pool, 1)
			}
		} else {
			if p.Sleep(ctx, 1500*time.Millisecond) != nil {
				griddRetire(blocker, tc, lease, pool, 1)
				return
			}
			griddRetire(blocker, tc, lease, pool, 1)
			mu.Lock()
			res.Jobs++
			res.PerClient[idx]++
			mu.Unlock()
		}
		if p.Sleep(ctx, time.Second) != nil {
			return
		}
	}
}

// ---------------------------------------------------------------------
// Socket-level chaos: the fenced-vs-unfenced ablation over a real,
// lossy transport
// ---------------------------------------------------------------------

// GriddNetCell runs concurrent clients against a daemon-hosted
// resource through a fault-injecting RoundTripper that duplicates
// requests and drops replies — the channel-fault model applied at the
// HTTP boundary instead of inside the simulator. With fencing on, a
// duplicated release's replay lands stale and the ledger stays exact;
// unfenced, replays double-free and admit phantom grants. The cell
// runs entirely on real goroutines and small real durations: the
// claim under test is wire-protocol integrity, not scenario timing.
// It returns the daemon's final accounting after quiescence (every
// orphaned grant reclaimed by the watchdog).
func GriddNetCell(opt Options, seed int64, unfenced bool) (gridd.StatsReply, error) {
	url, stop, err := opt.GriddDaemon()
	if err != nil {
		return gridd.StatsReply{}, err
	}
	defer stop()
	name := fmt.Sprintf("lanes-f%v-s%d", !unfenced, seed)
	plain := griddclient.New(url, 1)
	const quantum = 60 * time.Millisecond // watchdog reclaims orphans fast
	if err := plain.CreateResource(context.Background(), gridd.CreateRequest{
		Name: name, Capacity: 4, QuantumNS: int64(quantum), Unfenced: unfenced,
	}); err != nil {
		return gridd.StatsReply{}, err
	}

	faults := griddclient.NewFaults(seed)
	faults.PDup = 0.5
	faults.PDropRep = 0.15
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const clients, opsPer = 6, 12
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := griddclient.New(url, 1)
			c.HTTP = &http.Client{Transport: &griddclient.FaultTripper{F: faults}}
			for j := 0; j < opsPer && ctx.Err() == nil; j++ {
				lease, err := c.Acquire(ctx, gridd.AcquireRequest{
					Resource: name, Holder: fmt.Sprintf("c%d", i), Units: 1,
					WaitNS: int64(50 * time.Millisecond),
				})
				if err != nil {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				time.Sleep(time.Duration(1+j%3) * time.Millisecond)
				// The release itself crosses the lossy channel: this is
				// where duplication double-frees an unfenced ledger.
				_ = lease.Release(ctx)
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()

	// Quiescence: the watchdog owes us every orphan back.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := plain.Stats(ctx, name)
		if err != nil {
			return st, err
		}
		if st.Outstanding == 0 || time.Now().After(deadline) {
			return st, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ---------------------------------------------------------------------
// Conformance checklist (gridbench -fig gridd)
// ---------------------------------------------------------------------

// GriddConformance runs the deterministic wire-protocol checklist
// against the daemon at url, writing one fixed "ok" line per property
// proven. The output carries no timing numbers, so gridbench can pin
// it with a golden file; any failed property returns an error naming
// it instead.
func GriddConformance(url string, w io.Writer) error {
	c := griddclient.New(url, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const name = "conformance"

	if err := c.CreateResource(ctx, gridd.CreateRequest{
		Name: name, Capacity: 2, QuantumNS: int64(time.Hour),
	}); err != nil {
		return fmt.Errorf("create: %w", err)
	}
	pr, err := c.Probe(ctx, name)
	if err != nil || pr.Free != 2 || pr.InUse != 0 || pr.Queue != 0 {
		return fmt.Errorf("probe idle: %+v, %v", pr, err)
	}
	fmt.Fprintln(w, "ok probe: idle carrier reads all units free")

	lease, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: name, Holder: "a", Units: 1})
	if err != nil {
		return fmt.Errorf("acquire: %w", err)
	}
	if pr, err = c.Probe(ctx, name); err != nil || pr.InUse != 1 {
		return fmt.Errorf("probe after acquire: %+v, %v", pr, err)
	}
	fmt.Fprintln(w, "ok acquire: lease grants a unit and the probe sees it")

	if _, err = c.Acquire(ctx, gridd.AcquireRequest{Resource: name, Holder: "b", Units: 2}); !errors.Is(err, griddclient.ErrBusy) {
		return fmt.Errorf("immediate over-acquire = %v; want busy", err)
	}
	fmt.Fprintln(w, "ok emfile: immediate verdict on a unit shortfall")

	if err = lease.Release(ctx); err != nil {
		return fmt.Errorf("release: %w", err)
	}
	if err = lease.Release(ctx); !errors.Is(err, core.ErrStale) {
		return fmt.Errorf("duplicate release = %v; want stale", err)
	}
	fmt.Fprintln(w, "ok fencing: duplicate release lands stale")

	// Watchdog: a tenure nobody renews comes home by revocation.
	if _, err = c.Acquire(ctx, gridd.AcquireRequest{
		Resource: name, Holder: "wedged", Units: 1, QuantumNS: int64(30 * time.Millisecond),
	}); err != nil {
		return fmt.Errorf("wedged acquire: %w", err)
	}
	reclaimed := false
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); time.Sleep(5 * time.Millisecond) {
		st, err := c.Stats(ctx, name)
		if err != nil {
			return fmt.Errorf("stats: %w", err)
		}
		if st.Revokes >= 1 && st.Outstanding == 0 {
			reclaimed = true
			break
		}
	}
	if !reclaimed {
		return errors.New("watchdog never revoked the overstayed tenure")
	}
	fmt.Fprintln(w, "ok watchdog: overstayed tenure revoked server-side")

	// Admission book: a full window rejects with its shortfall, a
	// booked window claims into a lease fenced at the window's end.
	bk, err := c.Reserve(ctx, gridd.ReserveRequest{
		Resource: name, Holder: "r1", Units: 2, TenureNS: int64(10 * time.Second),
	})
	if err != nil {
		return fmt.Errorf("reserve: %w", err)
	}
	_, err = c.Reserve(ctx, gridd.ReserveRequest{
		Resource: name, Holder: "r2", Units: 1, TenureNS: int64(10 * time.Second),
	})
	if re := core.Rejection(err); re == nil || re.Shortfall != 1 {
		return fmt.Errorf("over-book = %v; want rejected, 1 short", err)
	}
	cl, err := c.Claim(ctx, gridd.ClaimRequest{Resource: name, BookingID: bk.BookingID})
	if err != nil {
		return fmt.Errorf("claim: %w", err)
	}
	if cl.DeadlineNS != bk.EndNS {
		return fmt.Errorf("claimed deadline %d != window end %d", cl.DeadlineNS, bk.EndNS)
	}
	if err = cl.Release(ctx); err != nil {
		return fmt.Errorf("claimed release: %w", err)
	}
	fmt.Fprintln(w, "ok reservation: full book rejects with shortfall; claim is window-fenced")

	st, err := c.Stats(ctx, name)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if st.Outstanding != 0 || st.Phantoms != 0 || st.Grants != st.Releases+st.Revokes {
		return fmt.Errorf("conservation: %+v", st)
	}
	fmt.Fprintln(w, "ok conservation: every grant retired exactly once, no phantoms")
	return nil
}
