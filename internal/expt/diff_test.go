package expt

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fsbuffer"
	"repro/internal/replica"
	"repro/internal/trace"
)

// The differential harness: every paper scenario runs on both backends
// — the deterministic simulator and the live wall-clock engine — across
// several seeds, and the same qualitative claims must hold on each.
// Sim runs are byte-reproducible, so they get exact assertions
// elsewhere (expt_test.go, the gridbench goldens); here both backends
// are held to ordering claims with tolerance bands, because a live run
// is a real concurrent execution whose interleaving the seed does not
// pin. Every cell's trace additionally passes the causal
// well-formedness checker (trace.Check): whatever the scheduler did,
// each client's own timeline must follow the discipline grammar.
//
// `make diff-smoke` runs exactly these tests.

// diffTimescale compresses live-backend time for the harness: 1 virtual
// second per 0.5 real milliseconds. Higher compression would shave CI
// seconds but squeezes virtual-time gaps (backoff quanta, lease
// renewal slack) toward the scheduler's jitter floor.
const diffTimescale = 2000

// Scenario-specific compression. A timescale is only faithful while
// the scenario's smallest load-bearing virtual duration still maps to
// real time comfortably above the Go timer granularity (~1.25ms on a
// typical host):
//
//   - the paper's buffer scenario works in 64 KB chunks, ~21ms of
//     virtual time each, so any useful compression lands every chunk
//     in timer-jitter territory and throughput collapses for all
//     disciplines alike — the differential buffer cell below therefore
//     runs a coarse-grained variant (8 MB chunks, 500ms+ durations)
//     with identical parameters on both backends;
//   - the submit scenario's backoff base is 1s virtual, which must not
//     compress below the floor or Ethernet's politeness turns into
//     lost throughput;
//   - the lease watchdog's quantum is 12s virtual, and at timescale
//     2000 a single 1ms timer overshoot reads as 2s of virtual
//     starvation, eroding the 4-quantum no-starvation budget. The
//     budget is a hard liveness claim, so this scenario gets the most
//     real time per virtual second (the race detector multiplies the
//     jitter, and CI runs this harness under -race too).
//
// See EXPERIMENTS.md ("Choosing a timescale").
const (
	submitTimescale = 200
	bufferTimescale = 100
	leaseTimescale  = 100
)

// diffSeeds are the seeds every differential scenario sweeps.
var diffSeeds = []int64{1, 2, 3}

// diffBackends returns one Options per backend under test.
func diffBackends() []Options {
	return []Options{
		{Backend: BackendSim},
		{Backend: BackendLive, Timescale: diffTimescale},
	}
}

// forEachDiff fans a scenario out over backends × seeds as subtests.
func forEachDiff(t *testing.T, fn func(t *testing.T, opt Options, seed int64)) {
	for _, opt := range diffBackends() {
		opt := opt
		name := opt.Backend
		if name == "" {
			name = BackendSim
		}
		t.Run(name, func(t *testing.T) {
			for _, seed := range diffSeeds {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					fn(t, opt, seed)
				})
			}
		})
	}
}

// atLeast asserts got >= want*(1-tol): the ordering claim with a
// tolerance band absorbing live-run scheduling noise.
func atLeast(t *testing.T, what string, got, want float64, tol float64) {
	t.Helper()
	if got < want*(1-tol) {
		t.Errorf("%s: got %v, want >= %v within %v%%", what, got, want, tol*100)
	}
}

// checkTrace runs the causal well-formedness oracle on a cell's trace.
func checkTrace(t *testing.T, tr *trace.Tracer) {
	t.Helper()
	if err := trace.Check(tr); err != nil {
		t.Errorf("trace not well-formed: %v", err)
	}
	if tr.Len() == 0 {
		t.Error("cell emitted no trace events")
	}
}

// TestDiffSubmitOrdering runs the job-submission scenario (Figures 1-3)
// at an over-threshold population on both backends: Ethernet must beat
// Aloha, Aloha must beat Fixed, and the Ethernet cell must hold the
// carrier floor (the invariant suite samples free FDs throughout).
func TestDiffSubmitOrdering(t *testing.T) {
	forEachDiff(t, func(t *testing.T, opt Options, seed int64) {
		opt.Scale = 0.2
		if opt.Backend == BackendLive {
			opt.Timescale = submitTimescale
		}
		window := opt.scaleD(SubmitWindow)
		n := opt.scaleN(475) // well past the collapse point
		jobs := map[core.Discipline]float64{}
		var ethRec chaos.Recorder
		for _, d := range core.Disciplines {
			subCfg, clCfg := scaledConfigs(opt, d)
			tr := trace.New()
			var rec *chaos.Recorder
			if d == core.Ethernet {
				rec = &ethRec
			}
			j, _ := submitCellTraced(opt, seed, n, window, subCfg, clCfg, nil, rec, tr)
			checkTrace(t, tr)
			jobs[d] = float64(j)
		}
		t.Logf("jobs at n=%d: Ethernet=%v Aloha=%v Fixed=%v",
			n, jobs[core.Ethernet], jobs[core.Aloha], jobs[core.Fixed])
		if jobs[core.Ethernet] == 0 {
			t.Fatal("Ethernet submitted nothing")
		}
		atLeast(t, "Ethernet >= Aloha jobs", jobs[core.Ethernet], jobs[core.Aloha], 0.15)
		atLeast(t, "Aloha >= Fixed jobs", jobs[core.Aloha], jobs[core.Fixed], 0.15)
		// The headline gap: carrier sense keeps the system out of
		// congestion collapse, so Ethernet clears Fixed by a wide margin.
		atLeast(t, "Ethernet >= 2x Fixed jobs", jobs[core.Ethernet], 2*jobs[core.Fixed], 0)
		if !ethRec.Ok() {
			t.Errorf("Ethernet invariants violated: %v", ethRec.Err())
		}
	})
}

// diffBufferCell is the differential harness's coarse-grained buffer
// cell: the same producer/consumer contention as Figures 4-5, but with
// every load-bearing duration at 500ms of virtual time or more, so a
// compressed live run stays above the timer-jitter floor. Both
// backends run these exact parameters.
func diffBufferCell(opt Options, seed int64, n int, window time.Duration, d core.Discipline, tr *trace.Tracer) *fsbuffer.Buffer {
	e := opt.newEngine(seed)
	b := fsbuffer.New(e, fsbuffer.Config{
		Capacity:     120 * fsbuffer.MB,
		WriteChunk:   8 * fsbuffer.MB, // 500ms of server time per chunk
		WriteRate:    16 * fsbuffer.MB,
		DrainRate:    8 * fsbuffer.MB,
		MetaTime:     500 * time.Millisecond,
		ScanInterval: time.Second,
		FailTime:     time.Second,
	})
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	e.Spawn("consumer", func(p core.Proc) { b.Consumer(p, ctx) })
	for j := 0; j < n; j++ {
		j := j
		cfg := fsbuffer.DefaultProducerConfig(d)
		cfg.MaxFileSize = 32 * fsbuffer.MB // 1-4 chunks per file
		if tr != nil {
			cfg.Trace = tr.NewClient(d.String(), fmt.Sprintf("producer-%d", j), e.Elapsed)
		}
		e.Spawn("producer", func(p core.Proc) {
			var pr fsbuffer.Producer
			pr.Loop(p, ctx, b, j, cfg)
		})
	}
	if err := e.Run(); err != nil {
		panic("expt: " + err.Error())
	}
	return b
}

// TestDiffBufferOrdering runs the shared-buffer scenario (Figures 4-5)
// at a contended producer count on both backends: Ethernet consumes the
// most, and collisions order Fixed >= Aloha >= Ethernet.
func TestDiffBufferOrdering(t *testing.T) {
	forEachDiff(t, func(t *testing.T, opt Options, seed int64) {
		if opt.Backend == BackendLive {
			opt.Timescale = bufferTimescale
		}
		window := 2 * time.Minute
		n := 20
		consumed := map[core.Discipline]float64{}
		collisions := map[core.Discipline]float64{}
		for _, d := range core.Disciplines {
			tr := trace.New()
			b := diffBufferCell(opt, seed, n, window, d, tr)
			checkTrace(t, tr)
			consumed[d] = float64(b.Consumed)
			collisions[d] = float64(b.Collisions)
		}
		t.Logf("consumed: E=%v A=%v F=%v  collisions: E=%v A=%v F=%v",
			consumed[core.Ethernet], consumed[core.Aloha], consumed[core.Fixed],
			collisions[core.Ethernet], collisions[core.Aloha], collisions[core.Fixed])
		if consumed[core.Ethernet] == 0 {
			t.Fatal("Ethernet consumed nothing")
		}
		atLeast(t, "Ethernet >= Aloha consumed", consumed[core.Ethernet], consumed[core.Aloha], 0.15)
		atLeast(t, "Ethernet >= Fixed consumed", consumed[core.Ethernet], consumed[core.Fixed], 0.15)
		atLeast(t, "Fixed >= Aloha collisions", collisions[core.Fixed], collisions[core.Aloha], 0.15)
		atLeast(t, "Aloha >= Ethernet collisions", collisions[core.Aloha], collisions[core.Ethernet], 0.15)
		// Carrier sense must do real work, not merely tie: Fixed pays at
		// least double Ethernet's collision bill.
		atLeast(t, "Fixed >= 2x Ethernet collisions", collisions[core.Fixed], 2*collisions[core.Ethernet], 0)
	})
}

// TestDiffReaderOrdering runs the black-hole scenario (Figures 6-7) on
// both backends: Ethernet transfers at least as much as Aloha and all
// but avoids black-hole collisions, deferring instead.
func TestDiffReaderOrdering(t *testing.T) {
	forEachDiff(t, func(t *testing.T, opt Options, seed int64) {
		opt.Scale = 0.2
		window := opt.scaleD(ReaderWindow)
		run := func(d core.Discipline) *ReaderTimeline {
			rcfg := replica.DefaultReaderConfig(d)
			rcfg.OuterLimit = window
			tr := trace.New()
			tl := readerCellTraced(opt, seed, window, rcfg, nil, nil, tr)
			checkTrace(t, tr)
			return tl
		}
		eth := run(core.Ethernet)
		aloha := run(core.Aloha)
		t.Logf("transfers: E=%d A=%d  collisions: E=%d A=%d  deferrals: E=%d",
			eth.TotalTransfers, aloha.TotalTransfers,
			eth.TotalCollisions, aloha.TotalCollisions, eth.TotalDeferrals)
		if eth.TotalTransfers == 0 {
			t.Fatal("Ethernet transferred nothing")
		}
		atLeast(t, "Ethernet >= Aloha transfers",
			float64(eth.TotalTransfers), float64(aloha.TotalTransfers), 0.15)
		if eth.TotalDeferrals == 0 {
			t.Error("Ethernet never deferred: carrier sense inactive")
		}
		// The sim is exactly collision-free; a live run may book a stray
		// collision when compressed-time jitter expires a transfer lease.
		if max := collisionBudget(opt); eth.TotalCollisions > max {
			t.Errorf("Ethernet collisions = %d, want <= %d", eth.TotalCollisions, max)
		}
	})
}

// collisionBudget is the Ethernet reader's allowed black-hole
// collisions: zero in the simulator, a whisker above on the live
// backend.
func collisionBudget(opt Options) int64 {
	if opt.Backend == BackendLive {
		return 2
	}
	return 0
}

// TestDiffReservationRegimes runs the reservation-vs-Ethernet cells on
// both backends, both regimes. Fault-free, admission control must win
// (and structurally cannot crash the schedd: the client descriptor
// share lives in the book, not the FD table); under the res-flap plan
// it must collapse below Ethernet, because the book keeps charging for
// wedged holders' windows until each boundary. Every cell's trace runs
// the causal checker, which now enforces the reserve → admit/reject
// grammar for the fourth discipline.
func TestDiffReservationRegimes(t *testing.T) {
	forEachDiff(t, func(t *testing.T, opt Options, seed int64) {
		if opt.Backend == BackendLive {
			opt.Timescale = leaseTimescale
		}
		window := 2 * time.Minute
		const n = 20
		quantum := leaseQuantum(window)
		run := func(plan *chaos.Plan) (*ResCellResult, *LeaseCellResult) {
			rtr := trace.New()
			ropt := opt
			ropt.Trace = rtr
			rs := ResCell(ropt, seed, n, window, plan, nil)
			checkTrace(t, rtr)
			etr := trace.New()
			eopt := opt
			eopt.Trace = etr
			es := LeaseCell(eopt, seed, n, window, quantum, plan, nil)
			checkTrace(t, etr)
			return rs, es
		}

		rs, es := run(nil)
		t.Logf("steady: res jobs=%d rejects=%d revokes=%d crashes=%d  eth jobs=%d crashes=%d",
			rs.Jobs, rs.Rejects, rs.Revokes, rs.Crashes, es.Jobs, es.Crashes)
		if rs.Jobs == 0 {
			t.Fatal("reservation cell submitted nothing")
		}
		if rs.Rejects == 0 {
			t.Error("book never rejected: admission capacity is not binding")
		}
		if rs.Crashes != 0 {
			t.Errorf("admission control let the schedd crash %d times", rs.Crashes)
		}
		if opt.Backend == BackendLive {
			atLeast(t, "steady res >= eth jobs", float64(rs.Jobs), float64(es.Jobs), 0.15)
			// Compressed-time jitter may expire a whisker of honest claims.
			if rs.Revokes > 2 {
				t.Errorf("steady revokes = %d, want <= 2 on live", rs.Revokes)
			}
		} else {
			if rs.Jobs < es.Jobs {
				t.Errorf("steady regime inverted: res=%d < eth=%d", rs.Jobs, es.Jobs)
			}
			if rs.Revokes != 0 {
				t.Errorf("steady cell revoked %d claims: windows too tight", rs.Revokes)
			}
		}

		plan, err := chaos.Preset("res-flap", seed)
		if err != nil {
			t.Fatal(err)
		}
		rf, ef := run(plan)
		t.Logf("flap:   res jobs=%d rejects=%d revokes=%d  eth jobs=%d revokes=%d",
			rf.Jobs, rf.Rejects, rf.Revokes, ef.Jobs, ef.Revokes)
		if rf.Revokes == 0 {
			t.Error("flap cell never revoked a claim: no dead windows")
		}
		if opt.Backend == BackendLive {
			// The live Ethernet flap arm's absolute throughput swings with
			// crash phasing the deterministic engine never explores, so the
			// cross-arm flap ordering stays a sim-only claim. What must
			// survive real concurrency: the flap arm did work, and the
			// reservation book's collapse relative to its own steady state.
			if ef.Jobs == 0 {
				t.Fatal("ethernet flap arm did no work")
			}
			atLeast(t, "res collapse: steady >= 2x flap", float64(rs.Jobs), 2*float64(rf.Jobs), 0.15)
		} else {
			if rf.Jobs >= ef.Jobs {
				t.Errorf("collapse regime inverted: res-flap=%d >= eth-flap=%d", rf.Jobs, ef.Jobs)
			}
			if rf.Jobs*2 >= rs.Jobs {
				t.Errorf("res collapse too shallow: flap=%d vs steady=%d", rf.Jobs, rs.Jobs)
			}
			if rf.Rejects <= rs.Rejects {
				t.Errorf("flap rejections %d not above steady %d: dead windows did not fill the book",
					rf.Rejects, rs.Rejects)
			}
		}
	})
}

// TestDiffReservationReader runs the black-hole scenario's reservation
// reader on both backends: per-server admission books divert readers
// from busy replicas without consuming them, so the reservation reader
// transfers at least as much as Aloha while its trace satisfies the
// booked-window grammar.
func TestDiffReservationReader(t *testing.T) {
	forEachDiff(t, func(t *testing.T, opt Options, seed int64) {
		opt.Scale = 0.2
		window := opt.scaleD(ReaderWindow)
		run := func(d core.Discipline) *ReaderTimeline {
			rcfg := replica.DefaultReaderConfig(d)
			rcfg.OuterLimit = window
			tr := trace.New()
			tl := readerCellTraced(opt, seed, window, rcfg, nil, nil, tr)
			checkTrace(t, tr)
			return tl
		}
		res := run(core.Reservation)
		aloha := run(core.Aloha)
		t.Logf("transfers: R=%d A=%d  rejections: R=%d  collisions: R=%d A=%d",
			res.TotalTransfers, aloha.TotalTransfers,
			res.TotalRejections, res.TotalCollisions, aloha.TotalCollisions)
		if res.TotalTransfers == 0 {
			t.Fatal("reservation reader transferred nothing")
		}
		if res.TotalRejections == 0 {
			t.Error("books never rejected: single-lane admission is not binding")
		}
		atLeast(t, "Reservation >= Aloha transfers",
			float64(res.TotalTransfers), float64(aloha.TotalTransfers), 0.15)
	})
}

// TestDiffLeaseNoStarvation runs the limited-allocation cell under the
// stuck-holder fault plan on both backends: the watchdog must revoke
// wedged tenures and no client may starve past the budget.
func TestDiffLeaseNoStarvation(t *testing.T) {
	forEachDiff(t, func(t *testing.T, opt Options, seed int64) {
		if opt.Backend == BackendLive {
			opt.Timescale = leaseTimescale
		}
		window := 2 * time.Minute
		plan, err := chaos.Preset("stuck-holder", seed)
		if err != nil {
			t.Fatal(err)
		}
		res := LeaseCell(opt, seed, 50, window, leaseQuantum(window), plan, nil)
		t.Logf("jobs=%d revokes=%d starved=%d maxWait=%v jain=%.2f",
			res.Jobs, res.Revokes, res.Starved, res.MaxWait, res.Jain)
		if res.Jobs == 0 {
			t.Fatal("leased cell submitted nothing")
		}
		if res.Revokes == 0 {
			t.Error("watchdog never revoked a wedged holder")
		}
		// The simulator's no-starvation claim is exact. A live run is a
		// real concurrent execution: scheduler phasing the deterministic
		// engine never explores (a holder wedged the instant it was
		// granted, backoffs landing in lockstep) plus compressed-time
		// jitter can push the hungriest client past the 4-quantum budget
		// occasionally — so the live band is "bounded, within 2x the
		// reclamation budget", not "never over it".
		budget := leaseBudget(window)
		if opt.Backend == BackendLive {
			if res.Starved > 1 {
				t.Errorf("starvation excursions = %d, want <= 1 on live (maxWait %v)", res.Starved, res.MaxWait)
			}
			if res.MaxWait > 2*budget {
				t.Errorf("maxWait = %v, want <= 2x budget %v on live", res.MaxWait, budget)
			}
		} else if res.Starved != 0 {
			t.Errorf("starvation excursions = %d, want 0 (maxWait %v)", res.Starved, res.MaxWait)
		}
	})
}

// ---------------------------------------------------------------------
// The third backend: gridd, over a real socket
// ---------------------------------------------------------------------

// TestDiffGriddSubmitOrdering is the submit differential over the
// wire: the same Ethernet >= Aloha >= Fixed ordering the sim and live
// cells prove, with the descriptor table living in an in-process gridd
// daemon and every carrier sense, acquisition, and release a real HTTP
// round-trip. Each discipline's trace must still pass the grammar
// checker — the wire changes the substrate, not the client's timeline.
func TestDiffGriddSubmitOrdering(t *testing.T) {
	for _, seed := range diffSeeds {
		seed := seed
		t.Run(fmt.Sprintf("gridd/seed=%d", seed), func(t *testing.T) {
			opt := Options{Backend: BackendGridd}
			const n = 12
			window := 40 * time.Second
			jobs := map[core.Discipline]float64{}
			floorBreaches := 0
			for _, d := range core.Disciplines {
				tr := trace.New()
				res, err := GriddSubmitCell(opt, seed, n, window, d, tr)
				if err != nil {
					t.Fatalf("%s cell: %v", d, err)
				}
				checkTrace(t, tr)
				jobs[d] = float64(res.Jobs)
				if d == core.Ethernet {
					floorBreaches = res.FloorBreaches
				}
				t.Logf("%s: jobs=%d crashes=%d grants=%d rejects=%d revokes=%d stales=%d",
					d, res.Jobs, res.Crashes, res.Stats.Grants, res.Stats.Rejects,
					res.Stats.Revokes, res.Stats.Stales)
			}
			if jobs[core.Ethernet] == 0 {
				t.Fatal("Ethernet submitted nothing over the wire")
			}
			atLeast(t, "Ethernet >= Aloha jobs", jobs[core.Ethernet], jobs[core.Aloha], 0.15)
			atLeast(t, "Aloha >= Fixed jobs", jobs[core.Aloha], jobs[core.Fixed], 0.15)
			atLeast(t, "Ethernet >= 2x Fixed jobs", jobs[core.Ethernet], 2*jobs[core.Fixed], 0)
			// The carrier floor, observed through the socket: a real
			// concurrent run over HTTP gets the same single-excursion
			// allowance as the live backend.
			if floorBreaches > 1 {
				t.Errorf("carrier-floor excursions = %d, want <= 1", floorBreaches)
			}
		})
	}
}

// TestDiffGriddLeaseNoStarvation is the lease differential over the
// wire: wedged holders must be revoked by the daemon-side watchdog —
// running on the server's wall clock, with no client cooperation — and
// no client may wait past the live-band starvation budget.
func TestDiffGriddLeaseNoStarvation(t *testing.T) {
	for _, seed := range diffSeeds {
		seed := seed
		t.Run(fmt.Sprintf("gridd/seed=%d", seed), func(t *testing.T) {
			opt := Options{Backend: BackendGridd}
			const n = 16
			window := 80 * time.Second
			quantum := 8 * time.Second
			tr := trace.New()
			res, err := GriddLeaseCell(opt, seed, n, window, quantum, tr)
			if err != nil {
				t.Fatalf("lease cell: %v", err)
			}
			checkTrace(t, tr)
			t.Logf("jobs=%d revokes=%d starved=%d maxWait=%v jain=%.2f",
				res.Jobs, res.Revokes, res.Starved, res.MaxWait, res.Jain)
			if res.Jobs == 0 {
				t.Fatal("leased cell completed nothing over the wire")
			}
			if res.Revokes == 0 {
				t.Error("daemon watchdog never revoked a wedged holder")
			}
			// Same band as the live backend: a real socket adds RTT
			// jitter on top of scheduler phasing, so the claim is
			// "bounded", not "never".
			budget := 4 * quantum
			if res.Starved > 1 {
				t.Errorf("starvation excursions = %d, want <= 1 (maxWait %v)", res.Starved, res.MaxWait)
			}
			if res.MaxWait > 2*budget {
				t.Errorf("maxWait = %v, want <= 2x budget %v", res.MaxWait, budget)
			}
		})
	}
}
