package expt

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------
// Limited-allocation ablation (figure "la")
// ---------------------------------------------------------------------
//
// The paper's fourth Ethernet principle asks holders of a limited
// resource to release it periodically so competitors are not starved.
// This figure makes that principle load-bearing: the same Ethernet
// submitter population runs twice under a stuck-holder fault plan —
// once with leased FD tenure (the watchdog revokes wedged holders
// after a quantum) and once with the legacy unlimited allocation — and
// we measure what discipline alone cannot save: throughput, Jain's
// fairness index over per-client submissions, and how long the
// hungriest client went without the resource.

// LeaseSweep is the submitter counts swept in the ablation.
var LeaseSweep = []int{50, 100, 200, 400}

// LeaseCellResult is one ablation cell's accounting.
type LeaseCellResult struct {
	// Jobs is total jobs submitted; PerClient the per-submitter split.
	Jobs      int64
	PerClient []float64
	// Jain is Jain's fairness index over PerClient.
	Jain float64
	// Revokes counts FD tenures the lease watchdog reclaimed.
	Revokes int64
	// Starved counts no-starvation invariant violations: excursions
	// where some live client wanted FDs for more than the budget.
	Starved int
	// MaxWait is the longest any client went wanting FDs.
	MaxWait time.Duration
	// Crashes counts schedd crashes during the run.
	Crashes int64
}

// leaseQuantum derives the tenure quantum from the experiment window:
// a tenth of the window, the same knob at every scale.
func leaseQuantum(window time.Duration) time.Duration { return window / 10 }

// leaseBudget is the no-starvation budget: a stuck holder costs at
// most one quantum before revocation, so K=4 quanta of continuous
// wanting means reclamation is not working.
func leaseBudget(window time.Duration) time.Duration { return 4 * leaseQuantum(window) }

// LeaseCell runs n Ethernet submitters against a cluster whose FD
// table grants tenure with the given quantum (0 = the unleased legacy
// ablation) for the window, optionally under a fault plan. Violations
// are counted into the result's Starved; when rec is non-nil they are
// also forwarded to it, so an acceptance suite can demand a clean run.
func LeaseCell(opt Options, seed int64, n int, window, quantum time.Duration, plan *chaos.Plan, rec *chaos.Recorder) *LeaseCellResult {
	e := opt.newEngine(seed)
	cl := condor.NewCluster(e, condor.Config{
		// Capacity comfortably fits the live steady-state load (~35%
		// duty cycle × 18 FDs each ≈ 6n, with the 3s think time below)
		// but not that load plus a population of wedged holders pinning
		// 15 FDs each: stuck holders, not honest congestion, are what
		// exhausts the table.
		FDCapacity:   12 * n,
		ServiceSlots: n,
		LeaseQuantum: quantum,
	})
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	cl.StartHousekeeping(ctx)
	if plan != nil {
		plan.Arm(e, chaos.Targets{Window: window, Cluster: cl, Trace: opt.Trace})
	}
	// Starvation is detected locally even for the ablation cell, whose
	// violations are the expected result, not an experiment failure.
	priv := &chaos.Recorder{}
	inv := chaos.NewInvariants(e, priv, 0)
	inv.Monotone("jobs", func() float64 { return float64(cl.Schedd.Jobs) })
	inv.Horizon(window)
	inv.NoStarvation("fds", cl.FDs.LongestWait, leaseBudget(window))
	inv.Start(ctx)

	label := "ethernet-leased"
	if quantum <= 0 {
		label = "ethernet-unleased"
	}
	if opt.obsCell == "" {
		opt.obsCell = fmt.Sprintf("la/%s/n%d", label, n)
	}
	finish := armObs(opt, e, window, opt.obsCell, func(sc *obs.Scope) { obsCluster(sc, cl) })
	subs := make([]*condor.Submitter, n)
	for i := 0; i < n; i++ {
		subs[i] = &condor.Submitter{}
		sub := subs[i]
		cfg := condor.SubmitterConfig{
			Discipline: core.Ethernet,
			// One work unit spans the whole window: a wedged unleased
			// holder pins its FDs until the run ends, which is exactly
			// the failure mode under test.
			TryLimit:  window,
			Threshold: 4 * n,
			ThinkTime: 3 * time.Second,
			// Cap the backoff at half a quantum in both cells so a
			// deferred client re-senses within the reclamation cycle
			// instead of sleeping through the grant it was waiting for;
			// the cap must not differ between cells or it would
			// confound the ablation.
			Backoff: &core.Backoff{Base: time.Second, Cap: leaseQuantum(window) / 2, Factor: 2, RandMin: 1, RandMax: 2},
		}
		if opt.Trace != nil {
			cfg.Trace = opt.Trace.NewClient(label, fmt.Sprintf("submitter-%d", i), e.Elapsed)
		}
		// Unique process names: the lease ledger keys holders by name.
		e.Spawn(fmt.Sprintf("submitter-%d", i), func(p core.Proc) {
			sub.Loop(p, ctx, cl, cfg)
		})
	}
	if err := e.Run(); err != nil {
		panic("expt: " + err.Error())
	}
	finish()
	inv.Finish()

	res := &LeaseCellResult{
		Jobs:      cl.Schedd.Jobs,
		PerClient: make([]float64, n),
		Revokes:   cl.FDs.Manager().Revokes,
		MaxWait:   cl.FDs.Manager().MaxStarvation(),
		Crashes:   cl.Schedd.Crashes,
	}
	for i, sub := range subs {
		res.PerClient[i] = float64(sub.Submitted)
	}
	res.Jain = metrics.JainIndex(res.PerClient)
	for _, v := range priv.Violations {
		if v.Check == "no-starvation" {
			res.Starved++
		}
		if rec != nil {
			rec.Add(v)
		}
	}
	return res
}

// LeaseAblation holds the figure's two tables.
type LeaseAblation struct {
	// Throughput: jobs submitted, leased vs unleased.
	Throughput *metrics.SweepTable
	// Fairness: Jain's index (×100), watchdog revocations, starvation
	// excursions, and the hungriest client's wait in seconds.
	Fairness *metrics.SweepTable
}

// FigLA runs the limited-allocation ablation: each population size in
// LeaseSweep runs leased and unleased under the stuck-holder plan
// (opt.Chaos overrides it). Invariant violations from the leased cells
// go to opt.Check — the leased universe must stay starvation-free;
// the unleased cells' violations are the measurement, not a failure.
//
// Unlike the paper figures, the sweep population is not scaled down
// and the window is floored at two minutes: starvation statistics on
// a handful of clients over a few seconds are noise (one wedged
// client is 20% of a 5-client population), so opt.Scale only shortens
// the window, never below where the quantum cycle is meaningful.
func FigLA(opt Options) *LeaseAblation {
	window := opt.scaleD(SubmitWindow)
	if window < 2*time.Minute {
		window = 2 * time.Minute
	}
	quantum := leaseQuantum(window)
	xs := append([]int(nil), LeaseSweep...)
	la := &LeaseAblation{
		Throughput: &metrics.SweepTable{XLabel: "submitters", Xs: xs},
		Fairness:   &metrics.SweepTable{XLabel: "submitters", Xs: xs},
	}
	cols := struct {
		jobsL, jobsU, jainL, jainU, revokes, starved, wait metrics.SweepCol
	}{
		jobsL:   metrics.SweepCol{Name: "leased"},
		jobsU:   metrics.SweepCol{Name: "unleased"},
		jainL:   metrics.SweepCol{Name: "jain-leased"},
		jainU:   metrics.SweepCol{Name: "jain-unleased"},
		revokes: metrics.SweepCol{Name: "revokes"},
		starved: metrics.SweepCol{Name: "starved"},
		wait:    metrics.SweepCol{Name: "wait-unleased"},
	}
	// Two cells per population: leased (even index) then unleased (odd),
	// matching the serial emission order of traces and violations.
	results := make([]*LeaseCellResult, 2*len(xs))
	runCells(opt, len(results), func(c int, tr *trace.Tracer, rec *chaos.Recorder, reg *obs.Registry) {
		i := c / 2
		seed := opt.seed() + int64(i)
		plan := opt.Chaos
		if plan == nil {
			plan, _ = chaos.Preset("stuck-holder", seed)
		}
		copt := opt
		copt.Trace = tr
		copt.cellObs = reg
		if c%2 == 0 {
			results[c] = LeaseCell(copt, seed, xs[i], window, quantum, plan, rec)
		} else {
			// The unleased arm's violations are the measurement, not a
			// failure: they stay out of the experiment's recorder.
			results[c] = LeaseCell(copt, seed, xs[i], window, 0, plan, nil)
		}
	})
	for i := range xs {
		leased, unleased := results[2*i], results[2*i+1]
		cols.jobsL.Vals = append(cols.jobsL.Vals, float64(leased.Jobs))
		cols.jobsU.Vals = append(cols.jobsU.Vals, float64(unleased.Jobs))
		cols.jainL.Vals = append(cols.jainL.Vals, 100*leased.Jain)
		cols.jainU.Vals = append(cols.jainU.Vals, 100*unleased.Jain)
		cols.revokes.Vals = append(cols.revokes.Vals, float64(leased.Revokes))
		cols.starved.Vals = append(cols.starved.Vals, float64(unleased.Starved))
		cols.wait.Vals = append(cols.wait.Vals, unleased.MaxWait.Seconds())
	}
	la.Throughput.Cols = []metrics.SweepCol{cols.jobsL, cols.jobsU}
	la.Fairness.Cols = []metrics.SweepCol{cols.jainL, cols.jainU, cols.revokes, cols.starved, cols.wait}
	return la
}
