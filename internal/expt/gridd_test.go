package expt

import (
	"bytes"
	"strings"
	"testing"
)

// TestGriddNetFencedVsUnfenced is the fenced-vs-unfenced ablation of
// the channel-fault model, applied at the real HTTP boundary instead
// of inside the simulator: the same duplicated requests and dropped
// replies cross an actual socket. Fencing must keep the daemon's
// ledger exact — zero phantom grants, zero double-frees, every replay
// landing stale — while the unfenced arm shows the corruption the
// epochs exist to prevent.
func TestGriddNetFencedVsUnfenced(t *testing.T) {
	opt := Options{Backend: BackendGridd}

	fenced, err := GriddNetCell(opt, 1, false)
	if err != nil {
		t.Fatalf("fenced cell: %v", err)
	}
	t.Logf("fenced: %+v", fenced)
	if fenced.Phantoms != 0 {
		t.Errorf("fenced phantoms = %d, want 0", fenced.Phantoms)
	}
	if fenced.DoubleFrees != 0 {
		t.Errorf("fenced double-frees = %d, want 0", fenced.DoubleFrees)
	}
	if fenced.Stales == 0 {
		t.Error("fenced cell saw no stale verdicts — the lossy channel never replayed anything?")
	}
	if fenced.Outstanding != 0 {
		t.Errorf("fenced outstanding = %d after quiescence, want 0", fenced.Outstanding)
	}

	unfenced, err := GriddNetCell(opt, 1, true)
	if err != nil {
		t.Fatalf("unfenced cell: %v", err)
	}
	t.Logf("unfenced: %+v", unfenced)
	if unfenced.DoubleFrees == 0 {
		t.Error("unfenced cell never double-freed — the ablation proved nothing")
	}
}

// TestGriddConformance runs the wire-protocol checklist against a
// fresh in-process daemon — the same checklist gridbench -fig gridd
// pins with a golden file.
func TestGriddConformance(t *testing.T) {
	url, _, stop, err := SpawnGridd()
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var buf bytes.Buffer
	if err := GriddConformance(url, &buf); err != nil {
		t.Fatalf("conformance: %v\noutput so far:\n%s", err, buf.String())
	}
	out := buf.String()
	got := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "ok ") {
			got++
		}
	}
	if got != 7 {
		t.Fatalf("conformance emitted %d ok lines, want 7:\n%s", got, out)
	}
}
