package expt

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestFigScaleDeterministicAcrossShards is the scale figure's smoke
// acceptance: the deterministic columns must be identical run-to-run
// and at every shard count — sharding is an engine-internal structure
// choice, never a semantic one.
func TestFigScaleDeterministicAcrossShards(t *testing.T) {
	opt := Options{Seed: 1, Scale: 0.001} // 10/100/1000-client cells
	base := FigScale(opt)
	if got := FigScale(opt); !reflect.DeepEqual(base.Table, got.Table) {
		t.Fatal("same seed produced different scale tables")
	}
	for _, shards := range []int{2, 8} {
		sopt := opt
		sopt.Shards = shards
		if got := FigScale(sopt); !reflect.DeepEqual(base.Table, got.Table) {
			t.Fatalf("shards=%d changed the scale table", shards)
		}
	}
	// Sanity: the biggest cell did real work.
	last := base.Cells[len(base.Cells)-1]
	if last.Clients != 1000 || last.Events == 0 || last.Attempts == 0 {
		t.Fatalf("smoke cell degenerate: %+v", last)
	}
}

// TestScaleWheelHealthExported asserts the wheel-health gauges carry
// real data through the flight recorder on a scale cell: cascades and
// slot occupancy must be nonzero (the sweep's 10s think timers live a
// level up and must cascade down), and the beyond-horizon watchdog
// must appear in the overflow gauge's samples.
func TestScaleWheelHealthExported(t *testing.T) {
	reg := obs.New()
	opt := Options{Seed: 1, Scale: 0.01, Obs: reg}
	r := ScaleCell(opt, 1, 1000)
	if r.Events == 0 {
		t.Fatal("cell ran no events")
	}
	if v := reg.CurrentTotal(MWheelCascades); v <= 0 {
		t.Errorf("%s = %v, want > 0", MWheelCascades, v)
	}
	if v := reg.CurrentTotal(MWheelMaxSlot); v <= 0 {
		t.Errorf("%s = %v, want > 0", MWheelMaxSlot, v)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	maxPoint := map[string]float64{}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Family string      `json:"family"`
			Points [][]float64 `json:"points"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad JSONL line: %v\n%s", err, line)
		}
		for _, p := range rec.Points {
			if len(p) == 2 && p[1] > maxPoint[rec.Family] {
				maxPoint[rec.Family] = p[1]
			}
		}
	}
	for _, fam := range []string{MWheelCascades, MWheelMaxSlot, MWheelOverflow} {
		if maxPoint[fam] <= 0 {
			t.Errorf("family %s never sampled a nonzero value", fam)
		}
	}
}
