package expt

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/ftsh/interp"
	"repro/internal/ftsh/parser"
	"repro/internal/proc"
	"repro/internal/sim"
)

// These tests run scenario one with clients that are *actual ftsh
// scripts* — the paper's own artifacts — executed by the interpreter in
// virtual time, and check that they reproduce the same dynamics as the
// core-API clients used by the figure generators. This is the
// end-to-end integration proof: language → interpreter → discipline →
// substrate.

// Both scripts begin with `sleep ${start}`: clients of a real pool do
// not all boot within the same few milliseconds, and without the
// stagger the t=0 herd passes carrier sense en masse before anyone has
// finished acquiring (every client sees near-full free FDs).
const alohaSubmitScript = `
sleep ${start}
while true
  try for 5 minutes
    condor_submit submit.job
  end
end
`

// The §5 Ethernet submitter, verbatim shape.
const ethernetSubmitScript = `
sleep ${start}
while true
  try for 5 minutes
    cut -f2 /proc/sys/fs/file-nr -> n
    if ${n} .lt. %d
      failure
    else
      condor_submit submit.job
    end
  end
end
`

// runScriptedSubmitters drives n interpreter clients of the given
// script against a small cluster for the window.
func runScriptedSubmitters(t *testing.T, seed int64, script string, n int, window time.Duration) *condor.Cluster {
	t.Helper()
	parsed, err := parser.Parse(script)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	e := sim.New(seed)
	cl := condor.NewCluster(e.RT(), condor.Config{FDCapacity: 2048})
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	cl.StartHousekeeping(ctx)

	runner := proc.NewMapRunner()
	runner.Register("condor_submit", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		return cl.Schedd.Submit(rt.(*sim.Proc), ctx)
	})
	runner.Register("cut", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		fmt.Fprintln(cmd.Stdout, cl.FDs.Free())
		return nil
	})
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("client", func(p *sim.Proc) {
			in := interp.New(interp.Config{Runner: runner, Runtime: p})
			// Spread client start times over 10 s.
			in.SetVar("start", fmt.Sprintf("%.3f", 10*float64(i)/float64(n)))
			_ = in.Run(ctx, parsed)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestScriptedEthernetAvoidsCrashes(t *testing.T) {
	n := 130 // demand ≈ 130×20.5 ≈ 2665 > 2048: genuine contention
	window := 10 * time.Minute
	// Threshold 400: wide enough that the carrier-sense race (several
	// clients passing the sense during one setup window) cannot starve
	// the schedd's 50-FD housekeeping.
	eth := runScriptedSubmitters(t, 1, fmt.Sprintf(ethernetSubmitScript, 400), n, window)
	aloha := runScriptedSubmitters(t, 1, alohaSubmitScript, n, window)

	if eth.Schedd.Crashes != 0 {
		t.Errorf("scripted Ethernet crashes = %d, want 0", eth.Schedd.Crashes)
	}
	if aloha.Schedd.Crashes == 0 {
		t.Error("scripted Aloha never crashed the schedd under overload")
	}
	if eth.Schedd.Jobs <= aloha.Schedd.Jobs {
		t.Errorf("scripted Ethernet jobs %d not above Aloha %d", eth.Schedd.Jobs, aloha.Schedd.Jobs)
	}
	if eth.FDs.InUse() != 0 || aloha.FDs.InUse() != 0 {
		t.Errorf("FD leaks: eth=%d aloha=%d", eth.FDs.InUse(), aloha.FDs.InUse())
	}
}

func TestScriptedMatchesCoreClients(t *testing.T) {
	// The same scenario driven by ftsh scripts and by core.Client must
	// land in the same throughput regime (they share the discipline
	// logic, but the script path adds the parser/interpreter and the
	// carrier sense via `cut`/`if` instead of the Sense hook).
	n := 130
	window := 10 * time.Minute
	scripted := runScriptedSubmitters(t, 1, fmt.Sprintf(ethernetSubmitScript, 250), n, window)

	cfg := condor.DefaultSubmitterConfig(core.Ethernet)
	cfg.Threshold = 250
	coreJobs, coreCrashes := SubmitCell(1, n, window, cfg, condor.Config{FDCapacity: 2048})

	// The 250-FD margin is deliberately thin; the occasional crash is
	// seed luck, not a divergence between the two client stacks.
	if coreCrashes > 2 {
		t.Fatalf("core crashes = %d, want at most the occasional one", coreCrashes)
	}
	sj, cj := float64(scripted.Schedd.Jobs), float64(coreJobs)
	if sj < 0.7*cj || sj > 1.3*cj {
		t.Errorf("scripted jobs %v vs core jobs %v: beyond ±30%%", sj, cj)
	}
}

func TestScriptedClientsAreKillableAtWindowEnd(t *testing.T) {
	// The window context must unwind every interpreter cleanly so the
	// engine quiesces — the script equivalent of ftsh session kill.
	cl := runScriptedSubmitters(t, 2, alohaSubmitScript, 20, time.Minute)
	if cl.Schedd.Jobs == 0 {
		t.Fatal("no jobs submitted")
	}
}
