package expt

import (
	"time"

	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/fsbuffer"
	"repro/internal/lease"
	"repro/internal/obs"
	"repro/internal/replica"
)

// ---------------------------------------------------------------------
// Flight-recorder instrumentation (internal/obs wiring)
// ---------------------------------------------------------------------
//
// Every simulation cell can sample an observability registry on its
// own backend clock: engine internals (run-queue depth, timer-heap
// size, cumulative events, compactions), the carrier each scenario
// contends for (occupancy, queue depth), and the lease/book ledgers
// (grants, rejects, revocations, dead-window units). The sampler is a
// read-only timer — it draws no randomness and changes no workload
// decision — so an instrumented run produces exactly the figures an
// uninstrumented one does, and with Options.Obs nil the whole layer
// costs one pointer check per cell.
//
// Determinism contract: on the sim backend every runCells cell
// instruments a private registry which is merged into Options.Obs in
// cell order, whether the sweep ran serially or on the worker pool —
// so a -metrics dump is byte-identical at any -parallel value. Cells
// never share instrument identities: each cell's scope carries a
// unique cell label stamped by the figure code. On the live backend
// cells instrument Options.Obs directly instead, so a mid-run HTTP
// exporter sees data as it arrives; live runs are not reproducible
// anyway.

// Family names sampled by the flight recorder.
const (
	MEngineEvents  = "grid_engine_events_total"
	MEngineRunq    = "grid_engine_runq_depth"
	MEngineTimers  = "grid_engine_timer_heap"
	MEngineCompact = "grid_engine_compactions_total"

	MWheelCascades = "grid_engine_wheel_cascades_total"
	MWheelMaxSlot  = "grid_engine_wheel_slot_max"
	MWheelOverflow = "grid_engine_wheel_overflow"

	MCarrierOccupancy = "grid_carrier_occupancy"
	MCarrierInUse     = "grid_carrier_inuse"
	MCarrierQueue     = "grid_carrier_queue_depth"
	MJobs             = "grid_jobs_total"
	MCrashes          = "grid_crashes_total"

	MBufferUsed      = "grid_buffer_used_bytes"
	MBufferOccupancy = "grid_buffer_occupancy"
	MCollisions      = "grid_collisions_total"
	MCompleted       = "grid_completed_total"
	MConsumed        = "grid_consumed_total"

	MServerBusy  = "grid_server_busy"
	MServerQueue = "grid_server_queue_depth"

	MLeaseGrants       = "grid_lease_grants_total"
	MLeaseRejects      = "grid_lease_rejects_total"
	MLeaseTimeouts     = "grid_lease_timeouts_total"
	MLeaseRevokes      = "grid_lease_revokes_total"
	MLeaseInUse        = "grid_lease_units_inuse"
	MLeaseQueue        = "grid_lease_queue_depth"
	MLeaseRevokedUnits = "grid_lease_revoked_units_total"
	MLeaseDrops        = "grid_lease_msg_drops_total"
	MLeaseDups         = "grid_lease_msg_dups_total"
	MLeaseStales       = "grid_lease_stale_total"

	MNetDrops   = "grid_net_drops_total"
	MNetDeduped = "grid_net_deduped_total"

	MBookReserves = "grid_book_reserves_total"
	MBookRejects  = "grid_book_rejects_total"
	MBookAdmits   = "grid_book_admits_total"
	MBookCancels  = "grid_book_cancels_total"
	MBookLapses   = "grid_book_lapses_total"
)

// DefaultObsInterval is the default sampling interval on the backend
// clock (virtual time): the same 5s cadence the paper's timeline
// figures use.
const DefaultObsInterval = 5 * time.Second

func (o Options) obsInterval() time.Duration {
	if o.ObsInterval <= 0 {
		return DefaultObsInterval
	}
	return o.ObsInterval
}

// obsReg resolves the registry a cell instruments: the per-cell
// registry handed out by runCells when sweeping on the sim backend,
// or Obs itself (single-cell figures; live backend).
func (o Options) obsReg() *obs.Registry {
	if o.cellObs != nil {
		return o.cellObs
	}
	return o.Obs
}

// engineObserver is the backend surface the engine gauges poll; both
// sim.RT and *live.Engine satisfy it.
type engineObserver interface {
	RunQueueLen() int
	TimerHeapLen() int
	Compactions() int64
}

// wheelObserver is the sim engine's hierarchical-timer-wheel health
// surface; the live backend has no wheel and simply lacks it.
type wheelObserver interface {
	WheelCascades() int64
	MaxSlotOccupancy() int
	TimerOverflowLen() int
}

// armObs builds a cell's instrumentation scope — the engine gauges
// plus whatever scenario gauges inst registers — and schedules the
// periodic sampler on the backend clock for the window. The returned
// finish func must be called after the backend's Run returns: it
// takes the final sample, so end-of-run totals are always recorded.
// With no registry armed, armObs is a no-op returning a no-op.
//
// cell names this cell uniquely within the figure (stamped as the
// "cell" label); extra labels alternate key, value.
func armObs(opt Options, e core.Backend, window time.Duration, cell string, inst func(sc *obs.Scope)) func() {
	reg := opt.obsReg()
	if reg == nil {
		return func() {}
	}
	sc := reg.NewScope(e.Elapsed, "cell", cell)
	sc.GaugeFunc(MEngineEvents, "Cumulative scheduling steps executed by the backend.",
		func() float64 { return float64(e.Events()) })
	if eo, ok := e.(engineObserver); ok {
		sc.GaugeFunc(MEngineRunq, "Runnable processes (live-process count on the live backend).",
			func() float64 { return float64(eo.RunQueueLen()) })
		sc.GaugeFunc(MEngineTimers, "Timer-heap entries, including canceled entries awaiting compaction.",
			func() float64 { return float64(eo.TimerHeapLen()) })
		sc.GaugeFunc(MEngineCompact, "Canceled-timer heap compactions performed.",
			func() float64 { return float64(eo.Compactions()) })
	}
	if wo, ok := e.(wheelObserver); ok {
		sc.GaugeFunc(MWheelCascades, "Timer nodes re-dispersed by wheel level cascades.",
			func() float64 { return float64(wo.WheelCascades()) })
		sc.GaugeFunc(MWheelMaxSlot, "High-water mark of timers sharing one wheel slot.",
			func() float64 { return float64(wo.MaxSlotOccupancy()) })
		sc.GaugeFunc(MWheelOverflow, "Timers parked beyond the wheel horizon.",
			func() float64 { return float64(wo.TimerOverflowLen()) })
	}
	if inst != nil {
		inst(sc)
	}
	interval := opt.obsInterval()
	var tick func()
	tick = func() {
		sc.Sample()
		if e.Elapsed() < window {
			e.Schedule(interval, tick)
		}
	}
	e.Schedule(0, tick)
	return func() { sc.Sample() }
}

// obsLease registers the ledger counters and occupancy gauges for one
// lease manager under the resource label.
func obsLease(sc *obs.Scope, m *lease.Manager, resource string) {
	m.SetHooks(lease.Hooks{
		Grants:       sc.Counter(MLeaseGrants, "Tenures granted (leased or raw).", "resource", resource),
		Rejects:      sc.Counter(MLeaseRejects, "Try-acquire failures.", "resource", resource),
		Timeouts:     sc.Counter(MLeaseTimeouts, "Waiters abandoned by cancellation.", "resource", resource),
		Revokes:      sc.Counter(MLeaseRevokes, "Tenures reclaimed by the expiry watchdog.", "resource", resource),
		RevokedUnits: sc.Counter(MLeaseRevokedUnits, "Units reclaimed by revocation (dead-window capacity).", "resource", resource),
		Drops:        sc.Counter(MLeaseDrops, "Lease-control messages the channel dropped.", "resource", resource),
		Dups:         sc.Counter(MLeaseDups, "Lease-control messages the channel duplicated.", "resource", resource),
		Stales:       sc.Counter(MLeaseStales, "Stale-epoch messages the fence rejected.", "resource", resource),
	})
	sc.GaugeFunc(MLeaseInUse, "Units currently held.",
		func() float64 { return float64(m.InUse()) }, "resource", resource)
	sc.GaugeFunc(MLeaseQueue, "Processes waiting to acquire.",
		func() float64 { return float64(m.QueueLen()) }, "resource", resource)
}

// obsBook registers the admission ledger for one reservation book,
// plus its embedded tenure manager (whose revoked-units counter is
// exactly the dead-window capacity FigRes measures).
func obsBook(sc *obs.Scope, b *lease.Book, resource string) {
	b.SetHooks(lease.BookHooks{
		Reserves: sc.Counter(MBookReserves, "Bookings admitted.", "resource", resource),
		Rejects:  sc.Counter(MBookRejects, "Bookings refused (book full over the window).", "resource", resource),
		Admits:   sc.Counter(MBookAdmits, "Booked windows claimed.", "resource", resource),
		Cancels:  sc.Counter(MBookCancels, "Bookings canceled before a claim.", "resource", resource),
		Lapses:   sc.Counter(MBookLapses, "Bookings whose window ended unclaimed.", "resource", resource),
	})
	obsLease(sc, b.Tenure(), resource+"-tenure")
}

// obsCluster registers the submit scenario's carrier: the kernel FD
// table is the shared medium, so its occupancy is the figure-2-style
// "carrier occupancy vs time" observable.
func obsCluster(sc *obs.Scope, cl *condor.Cluster) {
	fds := cl.FDs
	sc.GaugeFunc(MCarrierOccupancy, "Fraction of the carrier's units in use (FD table).",
		func() float64 {
			c := fds.Capacity()
			if c == 0 {
				return 0
			}
			return float64(fds.InUse()) / float64(c)
		})
	sc.GaugeFunc(MCarrierInUse, "Carrier units in use (FD table).",
		func() float64 { return float64(fds.InUse()) })
	sc.GaugeFunc(MCarrierQueue, "Processes queued on the carrier (FD table).",
		func() float64 { return float64(fds.Manager().QueueLen()) })
	sc.GaugeFunc(MJobs, "Jobs successfully submitted.",
		func() float64 { return float64(cl.Schedd.Jobs) })
	sc.GaugeFunc(MCrashes, "Schedd crashes.",
		func() float64 { return float64(cl.Schedd.Crashes) })
	sc.GaugeFunc(MNetDrops, "Submit requests or replies the channel swallowed.",
		func() float64 { return float64(cl.Schedd.NetDrops) })
	sc.GaugeFunc(MNetDeduped, "Duplicate submissions the idempotency keys absorbed.",
		func() float64 { return float64(cl.Schedd.Deduped) })
	obsLease(sc, fds.Manager(), "fds")
}

// obsBuffer registers the buffer scenario's carrier: shared disk
// space, plus the throughput and collision counters both figures plot.
func obsBuffer(sc *obs.Scope, b *fsbuffer.Buffer) {
	sc.GaugeFunc(MBufferOccupancy, "Fraction of the buffer in use (carrier occupancy).",
		func() float64 {
			c := b.Capacity()
			if c == 0 {
				return 0
			}
			return float64(b.Used()) / float64(c)
		})
	sc.GaugeFunc(MBufferUsed, "Bytes in the buffer, complete and partial.",
		func() float64 { return float64(b.Used()) })
	sc.GaugeFunc(MCollisions, "Write collisions (out-of-space failures).",
		func() float64 { return float64(b.Collisions) })
	sc.GaugeFunc(MCompleted, "Files written to completion.",
		func() float64 { return float64(b.Completed) })
	sc.GaugeFunc(MConsumed, "Files drained by the consumer.",
		func() float64 { return float64(b.Consumed) })
}

// obsServers registers the reader scenario's carrier: each replica
// server's single service lane, one labeled child per server.
func obsServers(sc *obs.Scope, servers []*replica.Server) {
	for _, s := range servers {
		s := s
		sc.GaugeFunc(MServerBusy, "Whether the server's service lane is held (1) or free (0).",
			func() float64 {
				if s.Busy() {
					return 1
				}
				return 0
			}, "server", s.Name)
		sc.GaugeFunc(MServerQueue, "Clients queued on the server's service lane.",
			func() float64 { return float64(s.QueueLen()) }, "server", s.Name)
		obsLease(sc, s.Lane(), s.Name)
	}
}
