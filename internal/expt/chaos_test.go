package expt

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/trace"
)

// The chaos sweeps below re-run each scenario under ~20 seeded fault
// plans (every preset crossed with several schedule seeds) and assert
// that the paper's qualitative result — Ethernet >= Aloha >= Fixed —
// survives injected faults, and that the invariant suite stays clean.
// Individual plans get a little slack (a well-aimed burst can nick any
// discipline); the aggregate over all plans must be strictly ordered.

// sweepOrder lists the disciplines worst-to-best, so index i of the
// result arrays below is [fixed, aloha, ethernet].
var sweepOrder = []core.Discipline{core.Fixed, core.Aloha, core.Ethernet}

// chaosPlans returns every preset armed with each of the given seeds.
func chaosPlans(t *testing.T, seeds ...int64) []*chaos.Plan {
	t.Helper()
	var plans []*chaos.Plan
	for _, name := range chaos.Names() {
		if name == "stuck-holder" {
			// Covered by the dedicated lease-ablation sweep (lease_test.go):
			// against unleased legacy cells a wedged holder pins the
			// resource by design, which is the point of that sweep, not a
			// regression in the discipline ordering measured here.
			continue
		}
		if name == "res-flap" {
			// Covered by the reservation sweep (res_test.go) for the same
			// reason: its stuck holders wedge the legacy cells by design.
			continue
		}
		if name == "part-flap" || name == "dup-storm" {
			// Covered by the channel-ablation sweep (net_test.go): these
			// plans sever or scramble the lease control wires, so dropped
			// releases pin descriptors as zombies by design — a regime the
			// net cells provision for and the legacy geometry does not.
			continue
		}
		for _, s := range seeds {
			p, err := chaos.Preset(name, s)
			if err != nil {
				t.Fatal(err)
			}
			plans = append(plans, p)
		}
	}
	return plans
}

// orderedWithSlack checks eth >= aloha*slack && aloha >= fixed*slack.
func orderedWithSlack(eth, aloha, fixed float64, slack float64) bool {
	return eth >= aloha*slack && aloha >= fixed*slack
}

func TestChaosSweepCondor(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is not short")
	}
	opt := Options{Scale: 0.1}
	window := opt.scaleD(SubmitWindow)
	n := opt.scaleN(400)
	plans := chaosPlans(t, 1, 2, 3)
	if len(plans) < 18 {
		t.Fatalf("only %d plans", len(plans))
	}
	rec := &chaos.Recorder{}
	opt.Check = rec
	// Four arms per plan: the three legacy disciplines plus Reservation.
	arms := len(sweepOrder) + 1
	cells := make([]float64, len(plans)*arms)
	runCells(opt, len(cells), func(c int, tr *trace.Tracer, cellRec *chaos.Recorder, _ *obs.Registry) {
		plan := plans[c/arms]
		arm := c % arms
		if arm == len(sweepOrder) {
			// The reservation arm runs its own cell geometry (admission
			// book over the client FD share). Its starvation acceptance
			// has a dedicated budget in res_test.go, so only throughput is
			// measured here.
			cells[c] = float64(ResCell(Options{Trace: tr}, opt.seed(), n, window, plan, nil).Jobs)
			return
		}
		d := sweepOrder[arm]
		subCfg, clCfg := scaledConfigs(opt, d)
		j, _ := submitCellTraced(Options{}, opt.seed(), n, window, subCfg, clCfg, plan, cellRec, tr)
		cells[c] = float64(j)
	})
	var sum [4]float64
	for pi, plan := range plans {
		jobs := cells[pi*arms : pi*arms+arms]
		for i := range sum {
			sum[i] += jobs[i]
		}
		t.Logf("%-8s seed=%d: fixed=%5.0f aloha=%5.0f ethernet=%5.0f res=%5.0f",
			plan.Name, plan.Seed, jobs[0], jobs[1], jobs[2], jobs[3])
		if !orderedWithSlack(jobs[2], jobs[1], jobs[0], 0.85) {
			t.Errorf("plan %s seed %d: ordering broken: fixed=%v aloha=%v ethernet=%v",
				plan.Name, plan.Seed, jobs[0], jobs[1], jobs[2])
		}
		if jobs[3] == 0 {
			t.Errorf("plan %s seed %d: reservation arm did no work", plan.Name, plan.Seed)
		}
	}
	if !(sum[2] > sum[1] && sum[1] > sum[0]) {
		t.Errorf("aggregate ordering broken: fixed=%v aloha=%v ethernet=%v", sum[0], sum[1], sum[2])
	}
	// Admission control must at least beat the discipline-free baseline
	// in aggregate across the whole fault matrix.
	if sum[3] <= sum[0] {
		t.Errorf("aggregate reservation=%v not above fixed=%v", sum[3], sum[0])
	}
	if err := rec.Err(); err != nil {
		t.Errorf("invariants under chaos: %v", err)
	}
}

func TestChaosSweepBuffer(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is not short")
	}
	opt := Options{Scale: 0.1}
	window := opt.scaleD(BufferWindow)
	n := 25 // paper-scale producer count; the cell itself is cheap
	plans := chaosPlans(t, 1, 2, 3)
	rec := &chaos.Recorder{}
	opt.Check = rec
	arms := len(sweepOrder) + 1
	cells := make([]float64, len(plans)*arms)
	runCells(opt, len(cells), func(c int, tr *trace.Tracer, cellRec *chaos.Recorder, _ *obs.Registry) {
		plan := plans[c/arms]
		arm := c % arms
		d := core.Reservation
		if arm < len(sweepOrder) {
			d = sweepOrder[arm]
		}
		b := bufferCellTraced(Options{}, opt.seed(), n, window, d, plan, cellRec, tr)
		cells[c] = float64(b.Consumed)
	})
	var sum [4]float64
	for pi, plan := range plans {
		consumed := cells[pi*arms : pi*arms+arms]
		for i := range sum {
			sum[i] += consumed[i]
		}
		t.Logf("%-8s seed=%d: fixed=%5.0f aloha=%5.0f ethernet=%5.0f res=%5.0f",
			plan.Name, plan.Seed, consumed[0], consumed[1], consumed[2], consumed[3])
		if !orderedWithSlack(consumed[2], consumed[1], consumed[0], 0.85) {
			t.Errorf("plan %s seed %d: ordering broken: fixed=%v aloha=%v ethernet=%v",
				plan.Name, plan.Seed, consumed[0], consumed[1], consumed[2])
		}
		if consumed[3] == 0 {
			t.Errorf("plan %s seed %d: reservation arm did no work", plan.Name, plan.Seed)
		}
	}
	if !(sum[2] > sum[1] && sum[1] > sum[0]) {
		t.Errorf("aggregate ordering broken: fixed=%v aloha=%v ethernet=%v", sum[0], sum[1], sum[2])
	}
	if sum[3] <= sum[0] {
		t.Errorf("aggregate reservation=%v not above fixed=%v", sum[3], sum[0])
	}
	if err := rec.Err(); err != nil {
		t.Errorf("invariants under chaos: %v", err)
	}
}

// fixedReaderConfig models the paper's Fixed reader: no per-attempt
// timeout at all, so a black hole absorbs the client until the outer
// work-unit budget expires.
func fixedReaderConfig(window time.Duration) replica.ReaderConfig {
	rcfg := replica.DefaultReaderConfig(core.Fixed)
	rcfg.OuterLimit = window
	rcfg.DataTimeout = window
	return rcfg
}

func TestChaosSweepReader(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is not short")
	}
	opt := Options{Scale: 1.0}
	window := opt.scaleD(ReaderWindow)
	plans := chaosPlans(t, 1, 2, 3)
	rec := &chaos.Recorder{}
	mk := func(d core.Discipline) replica.ReaderConfig {
		if d == core.Fixed {
			return fixedReaderConfig(window)
		}
		rcfg := replica.DefaultReaderConfig(d)
		rcfg.OuterLimit = window
		return rcfg
	}
	opt.Check = rec
	arms := len(sweepOrder) + 1
	cells := make([]float64, len(plans)*arms)
	runCells(opt, len(cells), func(c int, tr *trace.Tracer, cellRec *chaos.Recorder, _ *obs.Registry) {
		plan := plans[c/arms]
		rcfg := replica.DefaultReaderConfig(core.Reservation)
		rcfg.OuterLimit = window
		if arm := c % arms; arm < len(sweepOrder) {
			rcfg = mk(sweepOrder[arm])
		}
		tl := readerCellTraced(Options{}, opt.seed(), window, rcfg, plan, cellRec, tr)
		cells[c] = float64(tl.TotalTransfers)
	})
	var sum [4]float64
	for pi, plan := range plans {
		transfers := cells[pi*arms : pi*arms+arms]
		for i := range sum {
			sum[i] += transfers[i]
		}
		t.Logf("%-8s seed=%d: fixed=%5.0f aloha=%5.0f ethernet=%5.0f res=%5.0f",
			plan.Name, plan.Seed, transfers[0], transfers[1], transfers[2], transfers[3])
		if !orderedWithSlack(transfers[2], transfers[1], transfers[0], 0.85) {
			t.Errorf("plan %s seed %d: ordering broken: fixed=%v aloha=%v ethernet=%v",
				plan.Name, plan.Seed, transfers[0], transfers[1], transfers[2])
		}
		if transfers[3] == 0 {
			t.Errorf("plan %s seed %d: reservation arm did no work", plan.Name, plan.Seed)
		}
	}
	if !(sum[2] > sum[1] && sum[1] > sum[0]) {
		t.Errorf("aggregate ordering broken: fixed=%v aloha=%v ethernet=%v", sum[0], sum[1], sum[2])
	}
	if sum[3] <= sum[0] {
		t.Errorf("aggregate reservation=%v not above fixed=%v", sum[3], sum[0])
	}
	if err := rec.Err(); err != nil {
		t.Errorf("invariants under chaos: %v", err)
	}
}

// TestChaosCellDeterminism re-runs one cell of each scenario under the
// same plan and seed and demands bit-identical results: fault schedules
// are drawn from the plan's own RNG, so they must never perturb (or be
// perturbed by) the client RNG.
func TestChaosCellDeterminism(t *testing.T) {
	plan := func() *chaos.Plan {
		p, err := chaos.Preset("mixed", 5)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	opt := Options{Scale: 0.1}
	subCfg, clCfg := scaledConfigs(opt, core.Ethernet)
	window := opt.scaleD(SubmitWindow)
	j1, c1 := SubmitCellChaos(7, 40, window, subCfg, clCfg, plan(), nil)
	j2, c2 := SubmitCellChaos(7, 40, window, subCfg, clCfg, plan(), nil)
	if j1 != j2 || c1 != c2 {
		t.Errorf("condor cell diverged: (%d,%d) vs (%d,%d)", j1, c1, j2, c2)
	}

	bw := opt.scaleD(BufferWindow)
	b1 := BufferCell(7, 25, bw, core.Ethernet, plan(), nil)
	b2 := BufferCell(7, 25, bw, core.Ethernet, plan(), nil)
	if b1.Consumed != b2.Consumed || b1.Collisions != b2.Collisions || b1.Completed != b2.Completed {
		t.Errorf("buffer cell diverged: %+v vs %+v",
			[3]int64{b1.Consumed, b1.Collisions, b1.Completed},
			[3]int64{b2.Consumed, b2.Collisions, b2.Completed})
	}

	rw := opt.scaleD(ReaderWindow)
	rcfg := replica.DefaultReaderConfig(core.Ethernet)
	rcfg.OuterLimit = rw
	tl1 := ReaderCellChaos(7, rw, rcfg, plan(), nil)
	tl2 := ReaderCellChaos(7, rw, rcfg, plan(), nil)
	if tl1.TotalTransfers != tl2.TotalTransfers || tl1.TotalDeferrals != tl2.TotalDeferrals {
		t.Errorf("reader cell diverged: (%d,%d) vs (%d,%d)",
			tl1.TotalTransfers, tl1.TotalDeferrals, tl2.TotalTransfers, tl2.TotalDeferrals)
	}
	if !tl1.Transfers.Equal(tl2.Transfers) {
		t.Error("reader transfer series diverged between identical seeded runs")
	}
}

// TestChaosInvariantsCleanWithoutChaos guards the checker itself: a
// fault-free run of every scenario must pass the whole invariant suite,
// at paper scale ratios, for every discipline that carries one.
func TestChaosInvariantsCleanWithoutChaos(t *testing.T) {
	opt := Options{Scale: 0.1}
	rec := &chaos.Recorder{}
	for _, d := range core.Disciplines {
		subCfg, clCfg := scaledConfigs(opt, d)
		SubmitCellChaos(1, opt.scaleN(400), opt.scaleD(SubmitWindow), subCfg, clCfg, nil, rec)
		BufferCell(1, 25, opt.scaleD(BufferWindow), d, nil, rec)
	}
	rcfg := replica.DefaultReaderConfig(core.Ethernet)
	rcfg.OuterLimit = opt.scaleD(ReaderWindow)
	ReaderCellChaos(1, rcfg.OuterLimit, rcfg, nil, rec)
	// The fourth discipline's fault-free universes must be equally clean,
	// including the admission book's own no-starvation budget.
	ResCell(Options{}, 1, opt.scaleN(400), opt.scaleD(SubmitWindow), nil, rec)
	BufferCell(1, 25, opt.scaleD(BufferWindow), core.Reservation, nil, rec)
	rcfgR := replica.DefaultReaderConfig(core.Reservation)
	rcfgR.OuterLimit = opt.scaleD(ReaderWindow)
	ReaderCellChaos(1, rcfgR.OuterLimit, rcfgR, nil, rec)
	if err := rec.Err(); err != nil {
		t.Errorf("fault-free run violated invariants: %v", err)
	}
}

// TestFDTableSetCapacity covers the capacity squeeze seam directly:
// shrinking below in-use drives Free negative (carrier sense must see
// the overload), and restoring recovers exactly.
func TestFDTableSetCapacity(t *testing.T) {
	fd := condor.NewFDTable(100)
	if !fd.TryAcquire(60) {
		t.Fatal("acquire failed")
	}
	fd.SetCapacity(40)
	if got := fd.Free(); got != -20 {
		t.Errorf("Free after squeeze = %d, want -20", got)
	}
	fd.SetCapacity(100)
	if got := fd.Free(); got != 40 {
		t.Errorf("Free after restore = %d, want 40", got)
	}
	fd.SetCapacity(-5)
	if got := fd.Capacity(); got != 0 {
		t.Errorf("Capacity clamped = %d, want 0", got)
	}
}
