// Package metrics collects the time series and counters from which the
// paper's figures are regenerated. It is deliberately simple: everything
// is single-writer under the simulation token, so there is no locking.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one sample of a time series: a value observed at a virtual
// time offset from the start of the experiment.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series with a name used in table output.
// By default it retains every sample; SetCap bounds its memory so
// clock-sampled series survive arbitrarily long runs (see Add).
type Series struct {
	Name   string
	Points []Point

	// cap bounds len(Points); 0 (the default) retains everything.
	cap int
	// stride is the current downsampling factor: only every stride-th
	// Add is recorded once the cap has been hit. Zero means 1.
	stride int64
	// tick counts Adds since the stride was last consulted.
	tick int64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// NewBoundedSeries returns an empty named series that retains at most
// cap points (see SetCap).
func NewBoundedSeries(name string, cap int) *Series {
	s := NewSeries(name)
	s.SetCap(cap)
	return s
}

// SetCap bounds the series to at most n retained points. When an Add
// would grow past the cap, the series halves itself in place (keeping
// every other point) and doubles its sampling stride, so from then on
// only every stride-th Add is recorded: memory stays O(cap) while the
// retained points still span the whole run. n <= 0 restores the
// default unbounded behavior (an already-raised stride is kept).
// Downsampling is purely count-driven, so identical Add sequences
// yield identical retained points — the determinism tests rely on it.
func (s *Series) SetCap(n int) {
	if n < 0 {
		n = 0
	}
	s.cap = n
	if s.stride == 0 {
		s.stride = 1
	}
}

// Cap reports the retention bound (0 = unbounded).
func (s *Series) Cap() int { return s.cap }

// Add appends a sample, downsampling when a cap is set (see SetCap).
func (s *Series) Add(t time.Duration, v float64) {
	if s.cap > 0 {
		s.tick++
		if s.stride > 1 && s.tick%s.stride != 0 {
			return
		}
	}
	s.Points = append(s.Points, Point{T: t, V: v})
	if s.cap > 0 && len(s.Points) >= s.cap {
		half := s.Points[:0]
		for i := 0; i < len(s.Points); i += 2 {
			half = append(half, s.Points[i])
		}
		s.Points = half
		if s.stride < 1 {
			s.stride = 1
		}
		s.stride *= 2
	}
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the most recent sample, or a zero Point if empty.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// Max returns the largest value in the series (0 if empty).
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Min returns the smallest value, or 0 if the series is empty.
func (s *Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values (0 if empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Monotone reports whether the series never decreases — the defining
// property of a cumulative series (jobs submitted, files consumed). It
// requires samples in time order, as Add produces.
func (s *Series) Monotone() bool {
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].V < s.Points[i-1].V {
			return false
		}
	}
	return true
}

// Equal reports whether two series are sample-for-sample identical:
// same name, same length, same (T, V) at every index. Determinism tests
// use it to assert that identical seeds yield identical runs.
func (s *Series) Equal(o *Series) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Name != o.Name || len(s.Points) != len(o.Points) {
		return false
	}
	for i, p := range s.Points {
		if o.Points[i] != p {
			return false
		}
	}
	return true
}

// At returns the value in effect at time t: the last sample with T <= t,
// or 0 if none. Samples must have been appended in time order.
func (s *Series) At(t time.Duration) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].V
}

// Counter is a monotonically increasing event count that can also record
// its own history for timeline figures.
type Counter struct {
	Name  string
	N     int64
	trace *Series
}

// NewCounter returns a named counter. If traced, every increment is also
// recorded as a time-series sample.
func NewCounter(name string, traced bool) *Counter {
	c := &Counter{Name: name}
	if traced {
		c.trace = NewSeries(name)
	}
	return c
}

// Inc adds one at virtual time t.
func (c *Counter) Inc(t time.Duration) { c.AddN(t, 1) }

// AddN adds n at virtual time t.
func (c *Counter) AddN(t time.Duration, n int64) {
	c.N += n
	if c.trace != nil {
		c.trace.Add(t, float64(c.N))
	}
}

// Trace returns the counter's cumulative time series (nil if untraced).
func (c *Counter) Trace() *Series { return c.trace }

// ReservoirSize is the number of samples a Histogram retains for
// quantile estimation. Up to this many observations the quantiles are
// exact; beyond it they come from a uniform random subsample of fixed
// size (algorithm R), so memory stays O(1) regardless of Count.
const ReservoirSize = 1024

// Histogram accumulates values into summary statistics plus a
// fixed-size reservoir for quantile estimation. The reservoir's
// replacement draws come from a private splitmix64 stream seeded at
// construction, never from the simulation RNG, so observing values
// neither consumes simulation randomness nor varies between runs:
// identical observation sequences retain identical samples.
type Histogram struct {
	Name       string
	Count      int64
	Sum        float64
	SumSquares float64
	MinV, MaxV float64

	samples []float64
	rng     uint64
}

// NewHistogram returns an empty named histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{Name: name, MinV: math.Inf(1), MaxV: math.Inf(-1), rng: 0x9e3779b97f4a7c15}
}

// splitmix64 advances the reservoir's private random stream.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.Count++
	h.Sum += v
	h.SumSquares += v * v
	if v < h.MinV {
		h.MinV = v
	}
	if v > h.MaxV {
		h.MaxV = v
	}
	if len(h.samples) < ReservoirSize {
		h.samples = append(h.samples, v)
	} else if r := splitmix64(&h.rng) % uint64(h.Count); r < ReservoirSize {
		h.samples[r] = v
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) of the observed
// values, estimated from the reservoir with linear interpolation
// between order statistics. It returns 0 before any Observe. The
// reservoir itself is never reordered, so Quantile may be interleaved
// with Observe without perturbing which samples are retained.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	sort.Float64s(sorted)
	rank := q * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// P50 returns the median of the observed values (0 before any Observe).
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 returns the 95th-percentile observed value.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 returns the 99th-percentile observed value.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// Min returns the smallest observed value, or 0 before any Observe
// (the raw MinV field is +Inf in that state).
func (h *Histogram) Min() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.MinV
}

// Max returns the largest observed value, or 0 before any Observe
// (the raw MaxV field is -Inf in that state).
func (h *Histogram) Max() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.MaxV
}

// Mean returns the mean of observed values (0 if none).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Stddev returns the population standard deviation (0 if fewer than two
// observations).
func (h *Histogram) Stddev() float64 {
	if h.Count < 2 {
		return 0
	}
	m := h.Mean()
	v := h.SumSquares/float64(h.Count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// JainIndex returns Jain's fairness index over per-client allocations:
// (Σx)² / (n·Σx²). It is 1 when every client received the same amount
// and approaches 1/n as one client monopolizes the resource. An empty
// or all-zero slice is perfectly fair by convention (nobody got more
// than anybody else) and returns 1.
func JainIndex(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Table renders one or more series that share an x-axis as an aligned
// text table, in the spirit of the paper's figures: the first column is
// the x value, subsequent columns are each series' value at that x.
// Rows are the union of all x values.
type Table struct {
	XLabel string
	Series []*Series
}

// xUnion returns the sorted union of all x values across the table's
// series — the shared row axis of both renderings.
func (t *Table) xUnion() []time.Duration {
	xs := map[time.Duration]struct{}{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			xs[p.T] = struct{}{}
		}
	}
	order := make([]time.Duration, 0, len(xs))
	for x := range xs {
		order = append(order, x)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return order
}

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	order := t.xUnion()

	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range order {
		fmt.Fprintf(&b, "%-12.0f", x.Seconds())
		for _, s := range t.Series {
			fmt.Fprintf(&b, " %14.1f", s.At(x))
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteTSVTo renders the table as tab-separated values, one row per x,
// ready for gnuplot or a spreadsheet.
func (t *Table) WriteTSVTo(w io.Writer) (int64, error) {
	order := t.xUnion()

	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, s := range t.Series {
		b.WriteByte('\t')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for _, x := range order {
		fmt.Fprintf(&b, "%g", x.Seconds())
		for _, s := range t.Series {
			fmt.Fprintf(&b, "\t%g", s.At(x))
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// SweepTable renders series whose x-axis is an integer parameter (for
// example "number of submitters") rather than time.
type SweepTable struct {
	XLabel string
	Xs     []int
	// Cols maps a column label to values parallel to Xs.
	Cols []SweepCol
}

// SweepCol is one column of a SweepTable.
type SweepCol struct {
	Name string
	Vals []float64
}

// val returns the column's value for row i, or NaN when the column is
// shorter than the x axis.
func (c SweepCol) val(i int) float64 {
	if i < len(c.Vals) {
		return c.Vals[i]
	}
	return math.NaN()
}

// WriteTo renders the sweep table. It implements io.WriterTo.
func (t *SweepTable) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", t.XLabel)
	for _, c := range t.Cols {
		fmt.Fprintf(&b, " %14s", c.Name)
	}
	b.WriteByte('\n')
	for i, x := range t.Xs {
		fmt.Fprintf(&b, "%-14d", x)
		for _, c := range t.Cols {
			fmt.Fprintf(&b, " %14.1f", c.val(i))
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteTSVTo renders the sweep table as tab-separated values.
func (t *SweepTable) WriteTSVTo(w io.Writer) (int64, error) {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, c := range t.Cols {
		b.WriteByte('\t')
		b.WriteString(c.Name)
	}
	b.WriteByte('\n')
	for i, x := range t.Xs {
		fmt.Fprintf(&b, "%d", x)
		for _, c := range t.Cols {
			fmt.Fprintf(&b, "\t%g", c.val(i))
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
