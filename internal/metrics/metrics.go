// Package metrics collects the time series and counters from which the
// paper's figures are regenerated. It is deliberately simple: everything
// is single-writer under the simulation token, so there is no locking.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one sample of a time series: a value observed at a virtual
// time offset from the start of the experiment.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series with a name used in table output.
type Series struct {
	Name   string
	Points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len reports the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the most recent sample, or a zero Point if empty.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// Max returns the largest value in the series (0 if empty).
func (s *Series) Max() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Min returns the smallest value, or 0 if the series is empty.
func (s *Series) Min() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	m := s.Points[0].V
	for _, p := range s.Points {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// Mean returns the arithmetic mean of the values (0 if empty).
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Monotone reports whether the series never decreases — the defining
// property of a cumulative series (jobs submitted, files consumed). It
// requires samples in time order, as Add produces.
func (s *Series) Monotone() bool {
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].V < s.Points[i-1].V {
			return false
		}
	}
	return true
}

// Equal reports whether two series are sample-for-sample identical:
// same name, same length, same (T, V) at every index. Determinism tests
// use it to assert that identical seeds yield identical runs.
func (s *Series) Equal(o *Series) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Name != o.Name || len(s.Points) != len(o.Points) {
		return false
	}
	for i, p := range s.Points {
		if o.Points[i] != p {
			return false
		}
	}
	return true
}

// At returns the value in effect at time t: the last sample with T <= t,
// or 0 if none. Samples must have been appended in time order.
func (s *Series) At(t time.Duration) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].V
}

// Counter is a monotonically increasing event count that can also record
// its own history for timeline figures.
type Counter struct {
	Name  string
	N     int64
	trace *Series
}

// NewCounter returns a named counter. If traced, every increment is also
// recorded as a time-series sample.
func NewCounter(name string, traced bool) *Counter {
	c := &Counter{Name: name}
	if traced {
		c.trace = NewSeries(name)
	}
	return c
}

// Inc adds one at virtual time t.
func (c *Counter) Inc(t time.Duration) { c.AddN(t, 1) }

// AddN adds n at virtual time t.
func (c *Counter) AddN(t time.Duration, n int64) {
	c.N += n
	if c.trace != nil {
		c.trace.Add(t, float64(c.N))
	}
}

// Trace returns the counter's cumulative time series (nil if untraced).
func (c *Counter) Trace() *Series { return c.trace }

// Histogram accumulates values into summary statistics without retaining
// samples.
type Histogram struct {
	Name       string
	Count      int64
	Sum        float64
	SumSquares float64
	MinV, MaxV float64
}

// NewHistogram returns an empty named histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{Name: name, MinV: math.Inf(1), MaxV: math.Inf(-1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.Count++
	h.Sum += v
	h.SumSquares += v * v
	if v < h.MinV {
		h.MinV = v
	}
	if v > h.MaxV {
		h.MaxV = v
	}
}

// Min returns the smallest observed value, or 0 before any Observe
// (the raw MinV field is +Inf in that state).
func (h *Histogram) Min() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.MinV
}

// Max returns the largest observed value, or 0 before any Observe
// (the raw MaxV field is -Inf in that state).
func (h *Histogram) Max() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.MaxV
}

// Mean returns the mean of observed values (0 if none).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Stddev returns the population standard deviation (0 if fewer than two
// observations).
func (h *Histogram) Stddev() float64 {
	if h.Count < 2 {
		return 0
	}
	m := h.Mean()
	v := h.SumSquares/float64(h.Count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// JainIndex returns Jain's fairness index over per-client allocations:
// (Σx)² / (n·Σx²). It is 1 when every client received the same amount
// and approaches 1/n as one client monopolizes the resource. An empty
// or all-zero slice is perfectly fair by convention (nobody got more
// than anybody else) and returns 1.
func JainIndex(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Table renders one or more series that share an x-axis as an aligned
// text table, in the spirit of the paper's figures: the first column is
// the x value, subsequent columns are each series' value at that x.
// Rows are the union of all x values.
type Table struct {
	XLabel string
	Series []*Series
}

// xUnion returns the sorted union of all x values across the table's
// series — the shared row axis of both renderings.
func (t *Table) xUnion() []time.Duration {
	xs := map[time.Duration]struct{}{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			xs[p.T] = struct{}{}
		}
	}
	order := make([]time.Duration, 0, len(xs))
	for x := range xs {
		order = append(order, x)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return order
}

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	order := t.xUnion()

	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range order {
		fmt.Fprintf(&b, "%-12.0f", x.Seconds())
		for _, s := range t.Series {
			fmt.Fprintf(&b, " %14.1f", s.At(x))
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteTSVTo renders the table as tab-separated values, one row per x,
// ready for gnuplot or a spreadsheet.
func (t *Table) WriteTSVTo(w io.Writer) (int64, error) {
	order := t.xUnion()

	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, s := range t.Series {
		b.WriteByte('\t')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for _, x := range order {
		fmt.Fprintf(&b, "%g", x.Seconds())
		for _, s := range t.Series {
			fmt.Fprintf(&b, "\t%g", s.At(x))
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// SweepTable renders series whose x-axis is an integer parameter (for
// example "number of submitters") rather than time.
type SweepTable struct {
	XLabel string
	Xs     []int
	// Cols maps a column label to values parallel to Xs.
	Cols []SweepCol
}

// SweepCol is one column of a SweepTable.
type SweepCol struct {
	Name string
	Vals []float64
}

// val returns the column's value for row i, or NaN when the column is
// shorter than the x axis.
func (c SweepCol) val(i int) float64 {
	if i < len(c.Vals) {
		return c.Vals[i]
	}
	return math.NaN()
}

// WriteTo renders the sweep table. It implements io.WriterTo.
func (t *SweepTable) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", t.XLabel)
	for _, c := range t.Cols {
		fmt.Fprintf(&b, " %14s", c.Name)
	}
	b.WriteByte('\n')
	for i, x := range t.Xs {
		fmt.Fprintf(&b, "%-14d", x)
		for _, c := range t.Cols {
			fmt.Fprintf(&b, " %14.1f", c.val(i))
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteTSVTo renders the sweep table as tab-separated values.
func (t *SweepTable) WriteTSVTo(w io.Writer) (int64, error) {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, c := range t.Cols {
		b.WriteByte('\t')
		b.WriteString(c.Name)
	}
	b.WriteByte('\n')
	for i, x := range t.Xs {
		fmt.Fprintf(&b, "%d", x)
		for _, c := range t.Cols {
			fmt.Fprintf(&b, "\t%g", c.val(i))
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
