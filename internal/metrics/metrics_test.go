package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("jobs")
	s.Add(1*time.Second, 10)
	s.Add(2*time.Second, 30)
	s.Add(3*time.Second, 20)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Max() != 30 || s.Min() != 10 {
		t.Fatalf("Max/Min = %v/%v", s.Max(), s.Min())
	}
	if s.Mean() != 20 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Last().V != 20 {
		t.Fatalf("Last = %v", s.Last())
	}
}

func TestSeriesAtStepFunction(t *testing.T) {
	s := NewSeries("x")
	s.Add(10*time.Second, 1)
	s.Add(20*time.Second, 2)
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 0}, {9 * time.Second, 0}, {10 * time.Second, 1},
		{15 * time.Second, 1}, {20 * time.Second, 2}, {time.Hour, 2},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries("e")
	if s.Max() != 0 || s.Min() != 0 || s.Mean() != 0 || s.At(time.Hour) != 0 {
		t.Fatal("empty series should report zeros")
	}
	if p := s.Last(); p.V != 0 || p.T != 0 {
		t.Fatalf("Last = %v", p)
	}
}

func TestCounterTrace(t *testing.T) {
	c := NewCounter("submits", true)
	c.Inc(time.Second)
	c.AddN(2*time.Second, 4)
	if c.N != 5 {
		t.Fatalf("N = %d", c.N)
	}
	tr := c.Trace()
	if tr.Len() != 2 || tr.Last().V != 5 {
		t.Fatalf("trace = %+v", tr.Points)
	}
}

func TestUntracedCounter(t *testing.T) {
	c := NewCounter("x", false)
	c.Inc(0)
	if c.Trace() != nil {
		t.Fatal("untraced counter has trace")
	}
	if c.N != 1 {
		t.Fatalf("N = %d", c.N)
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram("lat")
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if h.Count != 8 || h.Mean() != 5 {
		t.Fatalf("count=%d mean=%v", h.Count, h.Mean())
	}
	if math.Abs(h.Stddev()-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", h.Stddev())
	}
	if h.Min() != 2 || h.Max() != 9 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("e")
	if h.Mean() != 0 || h.Stddev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	// The raw fields are ±Inf before any Observe; the accessors must not
	// leak that sentinel state.
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty min/max = %v/%v, want 0/0", h.Min(), h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("lat")
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	if p := h.P50(); math.Abs(p-50.5) > 1 {
		t.Errorf("P50 = %v, want ~50.5", p)
	}
	if p := h.P95(); math.Abs(p-95) > 1.5 {
		t.Errorf("P95 = %v, want ~95", p)
	}
	if p := h.P99(); math.Abs(p-99) > 1.5 {
		t.Errorf("P99 = %v, want ~99", p)
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 100 {
		t.Errorf("Quantile(0)/Quantile(1) = %v/%v, want 1/100", h.Quantile(0), h.Quantile(1))
	}
	if NewHistogram("e").P99() != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

// The reservoir must be bounded, deterministic, and still representative
// past ReservoirSize observations.
func TestHistogramReservoirBoundedDeterministic(t *testing.T) {
	a, b := NewHistogram("a"), NewHistogram("b")
	n := 50 * ReservoirSize
	for i := 0; i < n; i++ {
		v := float64(i % 1000)
		a.Observe(v)
		b.Observe(v)
	}
	if len(a.samples) != ReservoirSize {
		t.Fatalf("reservoir grew to %d, want %d", len(a.samples), ReservoirSize)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("identical observation sequences disagree at q=%v: %v vs %v", q, a.Quantile(q), b.Quantile(q))
		}
	}
	// Uniform values in [0,1000): the estimated median should be near 500.
	if p := a.P50(); p < 350 || p > 650 {
		t.Errorf("P50 of uniform [0,1000) = %v, want near 500", p)
	}
	// Interleaving Quantile with Observe must not change what is retained.
	c, d := NewHistogram("c"), NewHistogram("d")
	for i := 0; i < 3*ReservoirSize; i++ {
		v := float64(i % 777)
		c.Observe(v)
		d.Observe(v)
		if i%100 == 0 {
			_ = c.Quantile(0.5)
		}
	}
	if c.Quantile(0.95) != d.Quantile(0.95) {
		t.Error("Quantile interleaved with Observe perturbed the reservoir")
	}
}

// A bounded series must stay within its cap no matter how many samples
// are added — the flight recorder's guard for million-client runs.
func TestSeriesCapBounds10MPoints(t *testing.T) {
	const cap = 4096
	s := NewBoundedSeries("events", cap)
	const n = 10_000_000
	for i := 0; i < n; i++ {
		s.Add(time.Duration(i)*time.Millisecond, float64(i))
	}
	if s.Len() > cap {
		t.Fatalf("len = %d exceeds cap %d after %d adds", s.Len(), cap, n)
	}
	if s.Len() < cap/4 {
		t.Fatalf("len = %d; downsampling dropped too much (cap %d)", s.Len(), cap)
	}
	// Retained points must still be in time order and span the run.
	for i := 1; i < s.Len(); i++ {
		if s.Points[i].T <= s.Points[i-1].T {
			t.Fatalf("points out of order at %d", i)
		}
	}
	if s.Points[0].T != 0 {
		t.Errorf("first point = %v, want 0", s.Points[0].T)
	}
	if last := s.Last().T; last < time.Duration(n/2)*time.Millisecond {
		t.Errorf("last retained point %v does not span the run", last)
	}
}

// Downsampling is count-driven, so two identical Add sequences retain
// identical points — the parallel-vs-serial merge equality depends on it.
func TestSeriesCapDeterministic(t *testing.T) {
	a, b := NewBoundedSeries("a", 64), NewBoundedSeries("b", 64)
	for i := 0; i < 10_000; i++ {
		a.Add(time.Duration(i)*time.Second, float64(i*i%913))
		b.Add(time.Duration(i)*time.Second, float64(i*i%913))
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %v vs %v", i, a.Points[i], b.Points[i])
		}
	}
	if a.Cap() != 64 {
		t.Errorf("Cap = %d", a.Cap())
	}
	// Unbounded series keep everything, exactly as before.
	u := NewSeries("u")
	for i := 0; i < 1000; i++ {
		u.Add(time.Duration(i), 1)
	}
	if u.Len() != 1000 {
		t.Errorf("unbounded series dropped points: %d", u.Len())
	}
}

func TestTableRendersUnionOfXs(t *testing.T) {
	a := NewSeries("fds")
	a.Add(1*time.Second, 100)
	a.Add(3*time.Second, 50)
	b := NewSeries("jobs")
	b.Add(2*time.Second, 7)
	tb := &Table{XLabel: "t(s)", Series: []*Series{a, b}}
	var sb strings.Builder
	if _, err := tb.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 x values
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "fds") || !strings.Contains(lines[0], "jobs") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "100.0") || !strings.Contains(lines[2], "7.0") {
		t.Fatalf("row at t=2 wrong: %q", lines[2])
	}
}

func TestSweepTable(t *testing.T) {
	tb := &SweepTable{
		XLabel: "producers",
		Xs:     []int{5, 10},
		Cols: []SweepCol{
			{Name: "Ethernet", Vals: []float64{50, 48}},
			{Name: "Aloha", Vals: []float64{40}},
		},
	}
	var sb strings.Builder
	if _, err := tb.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Ethernet") || !strings.Contains(out, "50.0") {
		t.Fatalf("out = %q", out)
	}
	if !strings.Contains(out, "NaN") {
		t.Fatalf("short column should render NaN: %q", out)
	}
}

// Property: Series.At is consistent with a linear scan for sorted input.
func TestQuickSeriesAt(t *testing.T) {
	f := func(offsets []uint16, probe uint16) bool {
		sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
		s := NewSeries("q")
		for i, o := range offsets {
			s.Add(time.Duration(o)*time.Millisecond, float64(i+1))
		}
		pt := time.Duration(probe) * time.Millisecond
		want := 0.0
		for i, o := range offsets {
			if time.Duration(o)*time.Millisecond <= pt {
				want = float64(i + 1)
			}
		}
		return s.At(pt) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram mean is bounded by min and max.
func TestQuickHistogramBounds(t *testing.T) {
	f := func(vals []float64) bool {
		h := NewHistogram("q")
		any := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(v, 1e6) // keep sums finite
			h.Observe(v)
			any = true
		}
		if !any {
			return true
		}
		m := h.Mean()
		return m >= h.Min()-1e-9*math.Abs(h.Min())-1e-9 && m <= h.Max()+1e-9*math.Abs(h.Max())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableTSV(t *testing.T) {
	a := NewSeries("fds")
	a.Add(5*time.Second, 100)
	b := NewSeries("jobs")
	b.Add(10*time.Second, 7)
	tb := &Table{XLabel: "t", Series: []*Series{a, b}}
	var sb strings.Builder
	if _, err := tb.WriteTSVTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := "t\tfds\tjobs\n5\t100\t0\n10\t100\t7\n"
	if sb.String() != want {
		t.Fatalf("tsv = %q, want %q", sb.String(), want)
	}
}

func TestSweepTableTSV(t *testing.T) {
	tb := &SweepTable{
		XLabel: "n",
		Xs:     []int{5, 10},
		Cols:   []SweepCol{{Name: "A", Vals: []float64{1.5, 2}}},
	}
	var sb strings.Builder
	if _, err := tb.WriteTSVTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := "n\tA\n5\t1.5\n10\t2\n"
	if sb.String() != want {
		t.Fatalf("tsv = %q, want %q", sb.String(), want)
	}
}
