// Package lexer tokenizes ftsh source text.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/ftsh/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans ftsh source into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// All scans the entire input, returning every token up to and including
// EOF, or the first error.
func All(src string) ([]token.Token, error) {
	lx := New(src)
	var toks []token.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

// isWordByte reports whether c may appear in an unquoted word.
func isWordByte(c byte) bool {
	switch c {
	case 0, ' ', '\t', '\n', '\r', '#', '>', '<', '"', '\'', ';':
		return false
	}
	return true
}

// Next returns the next token.
func (l *Lexer) Next() (token.Token, error) {
	// Skip horizontal whitespace, comments, and line continuations.
	for {
		c := l.peek()
		if c == ' ' || c == '\t' || c == '\r' {
			l.advance()
			continue
		}
		if c == '#' {
			for l.peek() != 0 && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		if c == '\\' && l.peekAt(1) == '\n' {
			l.advance()
			l.advance()
			continue
		}
		break
	}

	pos := l.pos()
	switch c := l.peek(); {
	case c == 0:
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	case c == '\n' || c == ';':
		l.advance()
		return token.Token{Kind: token.NEWLINE, Pos: pos, Text: string(c)}, nil
	case c == '>':
		l.advance()
		switch l.peek() {
		case '>':
			l.advance()
			return token.Token{Kind: token.GTGT, Pos: pos, Text: ">>"}, nil
		case '&':
			l.advance()
			return token.Token{Kind: token.GTAMP, Pos: pos, Text: ">&"}, nil
		}
		return token.Token{Kind: token.GT, Pos: pos, Text: ">"}, nil
	case c == '<':
		l.advance()
		return token.Token{Kind: token.LT, Pos: pos, Text: "<"}, nil
	case c == '-' && (l.peekAt(1) == '>' || l.peekAt(1) == '<'):
		l.advance()
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.DASHLT, Pos: pos, Text: "-<"}, nil
		}
		l.advance() // '>'
		switch l.peek() {
		case '>':
			l.advance()
			return token.Token{Kind: token.DASHGTGT, Pos: pos, Text: "->>"}, nil
		case '&':
			l.advance()
			return token.Token{Kind: token.DASHGTAMP, Pos: pos, Text: "->&"}, nil
		}
		return token.Token{Kind: token.DASHGT, Pos: pos, Text: "->"}, nil
	default:
		return l.word(pos)
	}
}

// word scans a (possibly quoted, possibly variable-bearing) word.
func (l *Lexer) word(pos token.Pos) (token.Token, error) {
	w := &wordBuilder{}
	for {
		c := l.peek()
		switch {
		case c == '\'':
			w.quoted = true
			w.raw.WriteByte(l.advance())
			for {
				if l.peek() == 0 {
					return token.Token{}, &Error{Pos: pos, Msg: "unterminated single-quoted string"}
				}
				ch := l.advance()
				w.raw.WriteByte(ch)
				if ch == '\'' {
					break
				}
				w.writeLit(ch, true)
			}
		case c == '"':
			w.quoted = true
			if err := l.scanDQuote(pos, w); err != nil {
				return token.Token{}, err
			}
		case c == '$':
			if err := l.scanVar(w, false); err != nil {
				return token.Token{}, err
			}
		case c == '\\':
			w.raw.WriteByte(l.advance())
			if l.peek() == 0 || l.peek() == '\n' {
				return token.Token{}, &Error{Pos: pos, Msg: "trailing backslash"}
			}
			ch := l.advance()
			w.raw.WriteByte(ch)
			w.writeLit(ch, false)
		case isWordByte(c) && !(c == '-' && (l.peekAt(1) == '>' || l.peekAt(1) == '<') && w.raw.Len() > 0):
			// A redirection arrow may begin immediately after a word
			// (e.g. `run->out`); stop the word there. A leading '-'
			// arrow was already handled by Next.
			ch := l.advance()
			w.raw.WriteByte(ch)
			w.writeLit(ch, false)
		default:
			w.flushLit()
			if len(w.segs) == 0 && !w.quoted {
				return token.Token{}, &Error{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
			return token.Token{Kind: token.WORD, Pos: pos, Text: w.raw.String(), Segs: w.segs, Quoted: w.quoted}, nil
		}
	}
}

// wordBuilder accumulates a word's segments, flushing the pending
// literal run whenever the quoting context changes so each literal
// segment carries an accurate Quoted flag.
type wordBuilder struct {
	segs      []token.Segment
	lit       strings.Builder
	litQuoted bool
	raw       strings.Builder
	quoted    bool
}

// writeLit appends one literal byte produced in the given quoting
// context.
func (w *wordBuilder) writeLit(c byte, quoted bool) {
	if w.lit.Len() > 0 && w.litQuoted != quoted {
		w.flushLit()
	}
	w.litQuoted = quoted
	w.lit.WriteByte(c)
}

// flushLit closes the pending literal run into a segment.
func (w *wordBuilder) flushLit() {
	if w.lit.Len() > 0 {
		w.segs = append(w.segs, token.Segment{Kind: token.SegLit, Text: w.lit.String(), Quoted: w.litQuoted})
		w.lit.Reset()
	}
}

// scanDQuote consumes a double-quoted string (opening quote included),
// handling escapes and variable references.
func (l *Lexer) scanDQuote(pos token.Pos, w *wordBuilder) error {
	w.raw.WriteByte(l.advance()) // opening '"'
	for {
		switch l.peek() {
		case 0:
			return &Error{Pos: pos, Msg: "unterminated double-quoted string"}
		case '"':
			w.raw.WriteByte(l.advance())
			return nil
		case '\\':
			w.raw.WriteByte(l.advance())
			if l.peek() == 0 {
				return &Error{Pos: pos, Msg: "trailing backslash in string"}
			}
			esc := l.advance()
			w.raw.WriteByte(esc)
			switch esc {
			case 'n':
				w.writeLit('\n', true)
			case 't':
				w.writeLit('\t', true)
			default:
				w.writeLit(esc, true)
			}
		case '$':
			if err := l.scanVar(w, true); err != nil {
				return err
			}
		default:
			ch := l.advance()
			w.raw.WriteByte(ch)
			w.writeLit(ch, true)
		}
	}
}

// scanVar consumes `$name` or `${name}` at the current offset.
func (l *Lexer) scanVar(w *wordBuilder, quoted bool) error {
	start := l.pos()
	w.raw.WriteByte(l.advance()) // '$'
	var nameB strings.Builder
	if c := l.peek(); c == '*' || c == '#' {
		// The positional specials $* (all args) and $# (arg count).
		w.raw.WriteByte(l.advance())
		w.flushLit()
		w.segs = append(w.segs, token.Segment{Kind: token.SegVar, Text: string(c)})
		return nil
	}
	if l.peek() == '{' {
		w.raw.WriteByte(l.advance())
		for l.peek() != '}' {
			if l.peek() == 0 || l.peek() == '\n' {
				return &Error{Pos: start, Msg: "unterminated ${...}"}
			}
			ch := l.advance()
			w.raw.WriteByte(ch)
			nameB.WriteByte(ch)
		}
		w.raw.WriteByte(l.advance()) // '}'
	} else {
		for isVarByte(l.peek()) {
			ch := l.advance()
			w.raw.WriteByte(ch)
			nameB.WriteByte(ch)
		}
	}
	name := nameB.String()
	if name == "" {
		// A bare '$' is literal, as in most shells.
		w.writeLit('$', quoted)
		return nil
	}
	w.flushLit()
	w.segs = append(w.segs, token.Segment{Kind: token.SegVar, Text: name})
	return nil
}

// isVarByte reports whether c may appear in an un-braced variable name.
func isVarByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
