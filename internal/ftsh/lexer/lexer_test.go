package lexer

import (
	"testing"
	"testing/quick"

	"repro/internal/ftsh/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := All(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func TestSimpleCommand(t *testing.T) {
	got := kinds(t, "wget http://server/file.tar.gz\n")
	want := []token.Kind{token.WORD, token.WORD, token.NEWLINE, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("kinds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestRedirectionOperators(t *testing.T) {
	cases := []struct {
		src  string
		want token.Kind
	}{
		{"cmd > f", token.GT},
		{"cmd >> f", token.GTGT},
		{"cmd < f", token.LT},
		{"cmd >& f", token.GTAMP},
		{"cmd -> v", token.DASHGT},
		{"cmd ->> v", token.DASHGTGT},
		{"cmd -< v", token.DASHLT},
		{"cmd ->& v", token.DASHGTAMP},
	}
	for _, c := range cases {
		toks, err := All(c.src)
		if err != nil {
			t.Fatalf("lex %q: %v", c.src, err)
		}
		if toks[1].Kind != c.want {
			t.Errorf("%q: second token = %v, want %v", c.src, toks[1].Kind, c.want)
		}
		if toks[2].Kind != token.WORD {
			t.Errorf("%q: third token = %v, want WORD", c.src, toks[2].Kind)
		}
	}
}

func TestDashWordsAreNotRedirections(t *testing.T) {
	toks, err := All("rm -f file")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != token.WORD || toks[1].Text != "-f" {
		t.Fatalf("second token = %v %q", toks[1].Kind, toks[1].Text)
	}
}

func TestVariableForms(t *testing.T) {
	toks, err := All("echo ${server} $port http://${server}/x")
	if err != nil {
		t.Fatal(err)
	}
	// ${server}
	if s := toks[1].Segs; len(s) != 1 || s[0].Kind != token.SegVar || s[0].Text != "server" {
		t.Fatalf("segs = %+v", s)
	}
	// $port
	if s := toks[2].Segs; len(s) != 1 || s[0].Kind != token.SegVar || s[0].Text != "port" {
		t.Fatalf("segs = %+v", s)
	}
	// mixed word
	s := toks[3].Segs
	if len(s) != 3 || s[0].Text != "http://" || s[1].Kind != token.SegVar || s[1].Text != "server" || s[2].Text != "/x" {
		t.Fatalf("mixed segs = %+v", s)
	}
}

func TestQuoting(t *testing.T) {
	toks, err := All(`echo "hello world" 'lit ${x}' "tab\tend"`)
	if err != nil {
		t.Fatal(err)
	}
	if lit := toks[1].Segs[0].Text; lit != "hello world" {
		t.Fatalf("dquote lit = %q", lit)
	}
	if lit := toks[2].Segs[0].Text; lit != "lit ${x}" {
		t.Fatalf("squote lit = %q (single quotes must not expand)", lit)
	}
	if lit := toks[3].Segs[0].Text; lit != "tab\tend" {
		t.Fatalf("escape lit = %q", lit)
	}
	for _, i := range []int{1, 2, 3} {
		if !toks[i].Quoted {
			t.Errorf("token %d not marked quoted", i)
		}
	}
}

func TestDquoteExpansion(t *testing.T) {
	toks, err := All(`echo "got file from ${server}!"`)
	if err != nil {
		t.Fatal(err)
	}
	s := toks[1].Segs
	if len(s) != 3 || s[1].Kind != token.SegVar || s[1].Text != "server" || s[2].Text != "!" {
		t.Fatalf("segs = %+v", s)
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "echo hi # a comment\necho bye")
	want := []token.Kind{token.WORD, token.WORD, token.NEWLINE, token.WORD, token.WORD, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestSemicolonSeparates(t *testing.T) {
	got := kinds(t, "a; b")
	want := []token.Kind{token.WORD, token.NEWLINE, token.WORD, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestLineContinuation(t *testing.T) {
	got := kinds(t, "echo a \\\n b")
	want := []token.Kind{token.WORD, token.WORD, token.WORD, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestEmptyQuotedWord(t *testing.T) {
	toks, err := All(`echo ""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != token.WORD || !toks[1].Quoted || len(toks[1].Segs) != 0 {
		t.Fatalf("tok = %+v", toks[1])
	}
}

func TestRedirArrowAfterWord(t *testing.T) {
	toks, err := All("cut -f2 /proc/sys/fs/file-nr -> n")
	if err != nil {
		t.Fatal(err)
	}
	// file-nr must stay a single word: '-' not followed by > or <.
	if toks[2].Text != "/proc/sys/fs/file-nr" {
		t.Fatalf("word = %q", toks[2].Text)
	}
	if toks[3].Kind != token.DASHGT {
		t.Fatalf("op = %v", toks[3].Kind)
	}
}

func TestErrors(t *testing.T) {
	for _, src := range []string{
		`echo "unterminated`,
		`echo 'unterminated`,
		"echo ${unclosed\n",
		"echo trailing\\",
	} {
		if _, err := All(src); err == nil {
			t.Errorf("lex %q: expected error", src)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := All("a\n  bb ccc")
	if err != nil {
		t.Fatal(err)
	}
	if p := toks[0].Pos; p.Line != 1 || p.Col != 1 {
		t.Fatalf("a at %v", p)
	}
	if p := toks[2].Pos; p.Line != 2 || p.Col != 3 {
		t.Fatalf("bb at %v", p)
	}
	if p := toks[3].Pos; p.Line != 2 || p.Col != 6 {
		t.Fatalf("ccc at %v", p)
	}
}

func TestBareDollar(t *testing.T) {
	toks, err := All("echo a$ b")
	if err != nil {
		t.Fatal(err)
	}
	if lit := toks[1].Segs[0].Text; lit != "a$" {
		t.Fatalf("lit = %q", lit)
	}
}

// Property: lexing never panics and always terminates with EOF or error,
// for arbitrary printable input.
func TestQuickLexerTotal(t *testing.T) {
	f := func(raw []byte) bool {
		// Map bytes into mostly-printable space to hit interesting paths.
		src := make([]byte, len(raw))
		for i, b := range raw {
			src[i] = 32 + b%95
			if b%17 == 0 {
				src[i] = '\n'
			}
		}
		toks, err := All(string(src))
		if err != nil {
			return true // errors are fine; panics are not
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPositionalSpecials(t *testing.T) {
	toks, err := All("echo $* $# ${3}")
	if err != nil {
		t.Fatal(err)
	}
	if s := toks[1].Segs; len(s) != 1 || s[0].Kind != token.SegVar || s[0].Text != "*" {
		t.Fatalf("$* segs = %+v", s)
	}
	if s := toks[2].Segs; len(s) != 1 || s[0].Kind != token.SegVar || s[0].Text != "#" {
		t.Fatalf("$# segs = %+v", s)
	}
	if s := toks[3].Segs; len(s) != 1 || s[0].Kind != token.SegVar || s[0].Text != "3" {
		t.Fatalf("${3} segs = %+v", s)
	}
}
