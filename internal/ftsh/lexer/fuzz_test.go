package lexer

import (
	"testing"

	"repro/internal/ftsh/token"
)

// FuzzLex checks the lexer's totality and basic stream invariants on
// arbitrary bytes: Next must never panic, must terminate (every call
// consumes input or ends the stream), positions must be sane, and
// lexing must be deterministic.
func FuzzLex(f *testing.F) {
	seeds := []string{
		"",
		"wget http://server/file\n",
		"try for 1 hour or 3 times every 10 seconds\n x\nend\n",
		`echo "quoted ${x} \" text" 'literal'`,
		"a=b c d\ncmd ${a} -> out\nrun >& log\ncat -< out\n",
		"echo $* $# ${9} ${name}\n",
		"cmd ->> v\ncmd -< v\n# comment to end of line\n",
		"if ${n} .lt. 1000\n ok\nend\n",
		"\"unterminated",
		"'also unterminated",
		"${unclosed",
		"\x00\xff\xfe weird bytes\n",
		"line\\\ncontinuation\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := All(src)
		if err != nil {
			// Rejection is fine; it just must be repeatable.
			if _, err2 := All(src); err2 == nil || err.Error() != err2.Error() {
				t.Fatalf("lex error not deterministic: %v vs %v", err, err2)
			}
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != token.EOF {
			t.Fatalf("token stream does not end in EOF: %v", toks)
		}
		for i, tok := range toks[:len(toks)-1] {
			if tok.Kind == token.EOF {
				t.Fatalf("EOF at %d before end of stream", i)
			}
			if tok.Pos.Line < 1 || tok.Pos.Col < 1 {
				t.Fatalf("token %d has impossible position %+v", i, tok.Pos)
			}
		}
		// Determinism: a second pass yields the identical stream.
		again, err := All(src)
		if err != nil {
			t.Fatalf("second lex of accepted input failed: %v", err)
		}
		if len(again) != len(toks) {
			t.Fatalf("second lex produced %d tokens, first %d", len(again), len(toks))
		}
		for i := range toks {
			if toks[i].Kind != again[i].Kind || toks[i].Pos != again[i].Pos {
				t.Fatalf("token %d diverged between identical lexes: %+v vs %+v", i, toks[i], again[i])
			}
		}
	})
}
