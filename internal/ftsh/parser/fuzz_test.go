package parser

import (
	"testing"

	"repro/internal/ftsh/ast"
)

// FuzzParse checks the parser's totality and the printer round trip on
// arbitrary input: Parse must never panic, and when it accepts an
// input, printing and re-parsing the result must converge.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"wget http://server/file\n",
		"try for 30 minutes\n  x\nend\n",
		"try 5 times\n  a\ncatch\n  b\nend\n",
		"try for 1 hour or 3 times every 10 seconds\n x\nend\n",
		"forany s in a b c\n  wget ${s}\nend\n",
		"forall f in x y\n  get ${f}\nend\n",
		"if ${n} .lt. 1000\n  failure\nelse\n  submit\nend\n",
		"while true\n  step\nend\n",
		"function f\n  echo ${1}\nend\nf arg\n",
		"a=b c d\ncmd ${a} -> out\nrun >& log\ncat -< out\n",
		`echo "quoted ${x} \" text" 'literal'`,
		"if .exists. file\n ok\nend\n",
		"echo $* $# ${9}\n",
		"cmd ->> v\ncmd -< v\n# comment\n",
		// Nested try/catch with all three limit forms (times, for, every)
		// stacked inside one another, as §3 composes them.
		"try 3 times\n try for 2 hours\n  try for 1 day or 5 times every 30 seconds\n   fetch\n  catch\n   inner\n  end\n catch\n  mid\n end\ncatch\n outer\nend\n",
		"try for 90 seconds\n try 2 times every 5 minutes\n  x\n end\nend\n",
		"try every 15 seconds\n poll\nend\n",
		// Deep forany/forall nesting over host and file lists.
		"forany h in a b c\n forall f in x y z\n  forany r in 1 2\n   copy ${f} ${h} ${r}\n  end\n end\nend\n",
		"forall a in 1 2\n forall b in 3 4\n  forall c in 5 6\n   step ${a}${b}${c}\n  end\n end\nend\n",
		"forany s in ${servers}\n try for 60 seconds\n  wget ${s}\n catch\n  note ${s}\n end\nend\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		script, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := ast.String(script)
		re, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed output does not re-parse:\ninput: %q\nprinted: %q\nerr: %v", src, printed, err)
		}
		second := ast.String(re)
		if printed != second {
			t.Fatalf("printer not stable:\nfirst: %q\nsecond: %q", printed, second)
		}
	})
}
