// Package parser builds an ftsh syntax tree from source text.
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/ftsh/ast"
	"repro/internal/ftsh/lexer"
	"repro/internal/ftsh/token"
)

// Error is a syntax error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses an ftsh script.
func Parse(src string) (*ast.Script, error) {
	toks, err := lexer.All(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	body, err := p.stmts(atEOF)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != token.EOF {
		return nil, p.errf("unexpected %s", p.cur().Kind)
	}
	return &ast.Script{Body: body}, nil
}

type parser struct {
	toks []token.Token
	i    int
}

func (p *parser) cur() token.Token  { return p.toks[p.i] }
func (p *parser) next() token.Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...any) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipNewlines() {
	for p.cur().Kind == token.NEWLINE {
		p.next()
	}
}

// endStmt consumes the separator after a statement.
func (p *parser) endStmt() error {
	switch p.cur().Kind {
	case token.NEWLINE:
		p.next()
		return nil
	case token.EOF:
		return nil
	default:
		return p.errf("expected newline after statement, found %s %q", p.cur().Kind, p.cur().Text)
	}
}

// terminator classifies the bare words that close a block.
type terminator func(token.Token) (stop bool, err error)

func atEOF(t token.Token) (bool, error) {
	return t.Kind == token.EOF, nil
}

// until returns a terminator that stops at any of the named keywords and
// rejects EOF.
func until(kws ...string) terminator {
	return func(t token.Token) (bool, error) {
		if t.Kind == token.EOF {
			return false, fmt.Errorf("unexpected end of file, expected %s", strings.Join(kws, " or "))
		}
		for _, kw := range kws {
			if t.IsBare(kw) {
				return true, nil
			}
		}
		return false, nil
	}
}

// stmts parses statements until the terminator matches; it does not
// consume the terminating token.
func (p *parser) stmts(stop terminator) (*ast.Block, error) {
	blk := &ast.Block{StartPos: p.cur().Pos}
	for {
		p.skipNewlines()
		ok, err := stop(p.cur())
		if err != nil {
			return nil, &Error{Pos: p.cur().Pos, Msg: err.Error()}
		}
		if ok {
			return blk, nil
		}
		st, err := p.stmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, st)
		if err := p.endStmt(); err != nil {
			// Allow block terminators directly after a statement's last
			// word only when separated by newline; anything else is a
			// genuine error.
			if ok2, _ := stop(p.cur()); !ok2 {
				return nil, err
			}
		}
	}
}

// stmt parses one statement.
func (p *parser) stmt() (ast.Stmt, error) {
	t := p.cur()
	if t.Kind != token.WORD {
		return nil, p.errf("expected command, found %s", t.Kind)
	}
	switch {
	case t.IsBare("try"):
		return p.tryStmt()
	case t.IsBare("forany"):
		return p.loopStmt("forany")
	case t.IsBare("forall"):
		return p.loopStmt("forall")
	case t.IsBare("for"):
		return p.loopStmt("for")
	case t.IsBare("while"):
		return p.whileStmt()
	case t.IsBare("if"):
		return p.ifStmt()
	case t.IsBare("function"):
		return p.functionStmt()
	case t.IsBare("failure"):
		pos := p.next().Pos
		return &ast.FailureStmt{FailPos: pos}, nil
	case t.IsBare("success"):
		pos := p.next().Pos
		return &ast.SuccessStmt{OKPos: pos}, nil
	case t.IsBare("end"), t.IsBare("catch"), t.IsBare("else"), t.IsBare("elif"), t.IsBare("in"), t.IsBare("or"):
		return nil, p.errf("unexpected keyword %q", t.Text)
	}
	if name, value, ok := splitAssign(t); ok {
		p.next()
		st := &ast.AssignStmt{NamePos: t.Pos, Name: name}
		if value != nil {
			st.Values = append(st.Values, value)
		}
		// The value extends to the end of the line.
		for p.cur().Kind == token.WORD {
			w, err := p.word()
			if err != nil {
				return nil, err
			}
			st.Values = append(st.Values, w)
		}
		return st, nil
	}
	return p.commandStmt()
}

// splitAssign recognizes `name=value` words. The `name=` prefix must be
// unquoted (`"a=b"` is a command, `a="b c"` an assignment).
func splitAssign(t token.Token) (string, *ast.Word, bool) {
	if len(t.Segs) == 0 || t.Segs[0].Kind != token.SegLit || t.Segs[0].Quoted {
		return "", nil, false
	}
	lit := t.Segs[0].Text
	eq := strings.IndexByte(lit, '=')
	if eq <= 0 {
		return "", nil, false
	}
	name := lit[:eq]
	for i := 0; i < len(name); i++ {
		c := name[i]
		alpha := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		digit := c >= '0' && c <= '9'
		if !alpha && !(i > 0 && digit) {
			return "", nil, false
		}
	}
	var segs []token.Segment
	if rest := lit[eq+1:]; rest != "" {
		segs = append(segs, token.Segment{Kind: token.SegLit, Text: rest, Quoted: t.Segs[0].Quoted})
	}
	segs = append(segs, t.Segs[1:]...)
	if len(segs) == 0 {
		return name, nil, true // `name=` clears the variable
	}
	val := &ast.Word{WordPos: t.Pos, Segs: segs, Quoted: t.Quoted, Raw: t.Text}
	return name, val, true
}

// word converts the current WORD token into an ast.Word.
func (p *parser) word() (*ast.Word, error) {
	t := p.cur()
	if t.Kind != token.WORD {
		return nil, p.errf("expected word, found %s", t.Kind)
	}
	p.next()
	return &ast.Word{WordPos: t.Pos, Segs: t.Segs, Quoted: t.Quoted, Raw: t.Text}, nil
}

// commandStmt parses `word+ {redir}`, with redirections allowed anywhere
// after the first word.
func (p *parser) commandStmt() (ast.Stmt, error) {
	cmd := &ast.CommandStmt{}
	w, err := p.word()
	if err != nil {
		return nil, err
	}
	cmd.Words = append(cmd.Words, w)
	for {
		switch p.cur().Kind {
		case token.WORD:
			w, err := p.word()
			if err != nil {
				return nil, err
			}
			cmd.Words = append(cmd.Words, w)
		case token.GT, token.GTGT, token.LT, token.GTAMP,
			token.DASHGT, token.DASHGTGT, token.DASHLT, token.DASHGTAMP:
			op := p.next().Kind
			target, err := p.word()
			if err != nil {
				return nil, fmt.Errorf("%s target: %w", op, err)
			}
			cmd.Redirs = append(cmd.Redirs, &ast.Redir{Op: op, Target: target})
		default:
			return cmd, nil
		}
	}
}

// bareWord consumes an unquoted literal word and returns its text.
func (p *parser) bareWord(what string) (string, token.Pos, error) {
	t := p.cur()
	if t.Kind != token.WORD || t.Quoted || len(t.Segs) != 1 ||
		t.Segs[0].Kind != token.SegLit || t.Segs[0].Quoted {
		return "", t.Pos, p.errf("expected %s", what)
	}
	p.next()
	return t.Segs[0].Text, t.Pos, nil
}

// number consumes a numeric literal word.
func (p *parser) number() (float64, error) {
	s, _, err := p.bareWord("number")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, p.errf("invalid number %q", s)
	}
	return v, nil
}

// timeUnits maps unit words to durations.
var timeUnits = map[string]time.Duration{
	"ms": time.Millisecond, "millisecond": time.Millisecond, "milliseconds": time.Millisecond,
	"second": time.Second, "seconds": time.Second, "sec": time.Second, "secs": time.Second, "s": time.Second,
	"minute": time.Minute, "minutes": time.Minute, "min": time.Minute, "mins": time.Minute, "m": time.Minute,
	"hour": time.Hour, "hours": time.Hour, "h": time.Hour,
	"day": 24 * time.Hour, "days": 24 * time.Hour,
}

// duration parses `N <unit>`.
func (p *parser) duration() (time.Duration, error) {
	n, err := p.number()
	if err != nil {
		return 0, err
	}
	u, _, err := p.bareWord("time unit (seconds, minutes, hours, ...)")
	if err != nil {
		return 0, err
	}
	d, ok := timeUnits[u]
	if !ok {
		return 0, p.errf("unknown time unit %q", u)
	}
	return time.Duration(n * float64(d)), nil
}

// limitSpec parses a try budget:
//
//	for N <unit> [or M times]
//	N times [or for N <unit>]
func (p *parser) limitSpec() (ast.LimitSpec, error) {
	var lim ast.LimitSpec
	parseClause := func() error {
		if p.cur().IsBare("for") {
			if lim.HasTime {
				return p.errf("duplicate time limit in try")
			}
			p.next()
			d, err := p.duration()
			if err != nil {
				return err
			}
			if d <= 0 {
				return p.errf("try time limit must be positive")
			}
			lim.Time = d
			lim.HasTime = true
			return nil
		}
		// Attempt clause: `N times`.
		if lim.HasAttempts {
			return p.errf("duplicate attempt limit in try")
		}
		n, err := p.number()
		if err != nil {
			return err
		}
		kw, _, err := p.bareWord("'times'")
		if err != nil {
			return err
		}
		if kw != "times" && kw != "time" {
			return p.errf("expected 'times' after attempt count, found %q", kw)
		}
		if n < 1 {
			return p.errf("try attempt limit must be at least 1")
		}
		lim.Attempts = int(n)
		lim.HasAttempts = true
		return nil
	}
	if err := parseClause(); err != nil {
		return lim, err
	}
	if p.cur().IsBare("or") {
		p.next()
		if err := parseClause(); err != nil {
			return lim, err
		}
	}
	// Optional fixed retry interval: `every 30 seconds`.
	if p.cur().IsBare("every") {
		p.next()
		d, err := p.duration()
		if err != nil {
			return lim, err
		}
		if d <= 0 {
			return lim, p.errf("try retry interval must be positive")
		}
		lim.Every = d
	}
	return lim, nil
}

func (p *parser) tryStmt() (ast.Stmt, error) {
	pos := p.next().Pos // 'try'
	lim, err := p.limitSpec()
	if err != nil {
		return nil, err
	}
	if err := p.endStmt(); err != nil {
		return nil, err
	}
	body, err := p.stmts(until("catch", "end"))
	if err != nil {
		return nil, err
	}
	st := &ast.TryStmt{TryPos: pos, Limit: lim, Body: body}
	if p.cur().IsBare("catch") {
		p.next()
		if err := p.endStmt(); err != nil {
			return nil, err
		}
		st.Catch, err = p.stmts(until("end"))
		if err != nil {
			return nil, err
		}
	}
	p.next() // 'end'
	return st, nil
}

// loopStmt parses forany/forall/for, which share the shape
// `<kw> VAR in word... NEWLINE stmts end`.
func (p *parser) loopStmt(kw string) (ast.Stmt, error) {
	pos := p.next().Pos
	name, _, err := p.bareWord("loop variable name")
	if err != nil {
		return nil, err
	}
	if !p.cur().IsBare("in") {
		return nil, p.errf("expected 'in' after %s variable", kw)
	}
	p.next()
	var list []*ast.Word
	for p.cur().Kind == token.WORD {
		w, err := p.word()
		if err != nil {
			return nil, err
		}
		list = append(list, w)
	}
	if len(list) == 0 {
		return nil, p.errf("%s requires at least one alternative", kw)
	}
	if err := p.endStmt(); err != nil {
		return nil, err
	}
	body, err := p.stmts(until("end"))
	if err != nil {
		return nil, err
	}
	p.next() // 'end'
	switch kw {
	case "forany":
		return &ast.ForanyStmt{AnyPos: pos, Var: name, List: list, Body: body}, nil
	case "forall":
		return &ast.ForallStmt{AllPos: pos, Var: name, List: list, Body: body}, nil
	default:
		return &ast.ForStmt{ForPos: pos, Var: name, List: list, Body: body}, nil
	}
}

// cond parses `true`, `false`, or `word OP word`.
func (p *parser) cond() (*ast.Cond, error) {
	pos := p.cur().Pos
	if p.cur().IsBare("true") {
		p.next()
		return &ast.Cond{CondPos: pos, IsLit: true, Lit: true}, nil
	}
	if p.cur().IsBare("false") {
		p.next()
		return &ast.Cond{CondPos: pos, IsLit: true, Lit: false}, nil
	}
	if p.cur().IsBare(".exists.") {
		p.next()
		target, err := p.word()
		if err != nil {
			return nil, err
		}
		return &ast.Cond{CondPos: pos, Op: ".exists.", Right: target}, nil
	}
	left, err := p.word()
	if err != nil {
		return nil, err
	}
	opWord, opPos, err := p.bareWord("comparison operator (.lt. .gt. .le. .ge. .eq. .ne. .eql. .neql.)")
	if err != nil {
		return nil, err
	}
	if !token.CompareOps[opWord] {
		return nil, &Error{Pos: opPos, Msg: fmt.Sprintf("unknown comparison operator %q", opWord)}
	}
	right, err := p.word()
	if err != nil {
		return nil, err
	}
	return &ast.Cond{CondPos: pos, Left: left, Op: ast.CompareOp(opWord), Right: right}, nil
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	pos := p.next().Pos // 'if'
	c, err := p.cond()
	if err != nil {
		return nil, err
	}
	if err := p.endStmt(); err != nil {
		return nil, err
	}
	then, err := p.stmts(until("elif", "else", "end"))
	if err != nil {
		return nil, err
	}
	st := &ast.IfStmt{IfPos: pos, Cond: c, Then: then}
	for p.cur().IsBare("elif") {
		p.next()
		ec, err := p.cond()
		if err != nil {
			return nil, err
		}
		if err := p.endStmt(); err != nil {
			return nil, err
		}
		body, err := p.stmts(until("elif", "else", "end"))
		if err != nil {
			return nil, err
		}
		st.Elifs = append(st.Elifs, ast.ElifClause{Cond: ec, Body: body})
	}
	if p.cur().IsBare("else") {
		p.next()
		if err := p.endStmt(); err != nil {
			return nil, err
		}
		st.Else, err = p.stmts(until("end"))
		if err != nil {
			return nil, err
		}
	}
	p.next() // 'end'
	return st, nil
}

func (p *parser) whileStmt() (ast.Stmt, error) {
	pos := p.next().Pos // 'while'
	c, err := p.cond()
	if err != nil {
		return nil, err
	}
	if err := p.endStmt(); err != nil {
		return nil, err
	}
	body, err := p.stmts(until("end"))
	if err != nil {
		return nil, err
	}
	p.next() // 'end'
	return &ast.WhileStmt{WhilePos: pos, Cond: c, Body: body}, nil
}

func (p *parser) functionStmt() (ast.Stmt, error) {
	pos := p.next().Pos // 'function'
	name, _, err := p.bareWord("function name")
	if err != nil {
		return nil, err
	}
	if token.Keywords[name] {
		return nil, p.errf("cannot use keyword %q as function name", name)
	}
	if err := p.endStmt(); err != nil {
		return nil, err
	}
	body, err := p.stmts(until("end"))
	if err != nil {
		return nil, err
	}
	p.next() // 'end'
	return &ast.FunctionStmt{FuncPos: pos, Name: name, Body: body}, nil
}
