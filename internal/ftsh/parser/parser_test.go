package parser

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ftsh/ast"
	"repro/internal/ftsh/token"
)

func parse(t *testing.T, src string) *ast.Script {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestSimpleGroup(t *testing.T) {
	s := parse(t, "wget http://server/file.tar.gz\ngunzip file.tar.gz\ntar xvf file.tar\n")
	if len(s.Body.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(s.Body.Stmts))
	}
	cmd := s.Body.Stmts[0].(*ast.CommandStmt)
	if lit, _ := cmd.Words[0].Lit(); lit != "wget" {
		t.Fatalf("first word = %q", lit)
	}
}

func TestTryForDuration(t *testing.T) {
	s := parse(t, "try for 30 minutes\n  wget http://server/f\nend\n")
	try := s.Body.Stmts[0].(*ast.TryStmt)
	if try.Limit.Time != 30*time.Minute || try.Limit.HasAttempts {
		t.Fatalf("limit = %+v", try.Limit)
	}
	if len(try.Body.Stmts) != 1 || try.Catch != nil {
		t.Fatalf("try = %+v", try)
	}
}

func TestTryTimes(t *testing.T) {
	s := parse(t, "try 5 times\n  x\nend\n")
	try := s.Body.Stmts[0].(*ast.TryStmt)
	if try.Limit.Attempts != 5 || try.Limit.HasTime {
		t.Fatalf("limit = %+v", try.Limit)
	}
}

func TestTryForOrTimes(t *testing.T) {
	s := parse(t, "try for 1 hour or 3 times\n  x\nend\n")
	try := s.Body.Stmts[0].(*ast.TryStmt)
	if try.Limit.Time != time.Hour || try.Limit.Attempts != 3 {
		t.Fatalf("limit = %+v", try.Limit)
	}
}

func TestTryTimesOrFor(t *testing.T) {
	s := parse(t, "try 3 times or for 1 minute\n  x\nend\n")
	try := s.Body.Stmts[0].(*ast.TryStmt)
	if try.Limit.Time != time.Minute || try.Limit.Attempts != 3 {
		t.Fatalf("limit = %+v", try.Limit)
	}
}

func TestTryCatch(t *testing.T) {
	src := `try 5 times
  wget http://server/file.tar.gz
catch
  rm -f file.tar.gz
  failure
end
`
	s := parse(t, src)
	try := s.Body.Stmts[0].(*ast.TryStmt)
	if try.Catch == nil || len(try.Catch.Stmts) != 2 {
		t.Fatalf("catch = %+v", try.Catch)
	}
	if _, ok := try.Catch.Stmts[1].(*ast.FailureStmt); !ok {
		t.Fatalf("catch[1] = %T", try.Catch.Stmts[1])
	}
}

func TestNestedTryMatchesPaperExample(t *testing.T) {
	src := `try for 30 minutes
  try for 5 minutes
    wget http://server/file.tar.gz
  end
  try for 1 minute or 3 times
    gunzip file.tar.gz
    tar xvf file.tar
  end
end
`
	s := parse(t, src)
	outer := s.Body.Stmts[0].(*ast.TryStmt)
	if outer.Limit.Time != 30*time.Minute {
		t.Fatalf("outer = %+v", outer.Limit)
	}
	if len(outer.Body.Stmts) != 2 {
		t.Fatalf("outer body = %d stmts", len(outer.Body.Stmts))
	}
	inner2 := outer.Body.Stmts[1].(*ast.TryStmt)
	if inner2.Limit.Time != time.Minute || inner2.Limit.Attempts != 3 {
		t.Fatalf("inner2 = %+v", inner2.Limit)
	}
}

func TestForany(t *testing.T) {
	src := `forany server in xxx yyy zzz
  wget http://${server}/file.tar.gz
end
echo "got file from ${server}"
`
	s := parse(t, src)
	fa := s.Body.Stmts[0].(*ast.ForanyStmt)
	if fa.Var != "server" || len(fa.List) != 3 {
		t.Fatalf("forany = %+v", fa)
	}
}

func TestForall(t *testing.T) {
	s := parse(t, "forall file in xxx yyy zzz\n  wget http://${server}/${file}\nend\n")
	fa := s.Body.Stmts[0].(*ast.ForallStmt)
	if fa.Var != "file" || len(fa.List) != 3 {
		t.Fatalf("forall = %+v", fa)
	}
}

func TestPaperEthernetSubmitter(t *testing.T) {
	src := `try for 5 minutes
  cut -f2 /proc/sys/fs/file-nr -> n
  if ${n} .lt. 1000
    failure
  else
    condor_submit submit.job
  end
end
`
	s := parse(t, src)
	try := s.Body.Stmts[0].(*ast.TryStmt)
	cmd := try.Body.Stmts[0].(*ast.CommandStmt)
	if len(cmd.Redirs) != 1 || cmd.Redirs[0].Op != token.DASHGT {
		t.Fatalf("redir = %+v", cmd.Redirs)
	}
	ifst := try.Body.Stmts[1].(*ast.IfStmt)
	if ifst.Cond.Op != ".lt." {
		t.Fatalf("op = %q", ifst.Cond.Op)
	}
	if ifst.Else == nil {
		t.Fatal("missing else")
	}
}

func TestIfElifElse(t *testing.T) {
	src := `if ${x} .eq. 1
  a
elif ${x} .eq. 2
  b
elif ${x} .eq. 3
  c
else
  d
end
`
	s := parse(t, src)
	ifst := s.Body.Stmts[0].(*ast.IfStmt)
	if len(ifst.Elifs) != 2 || ifst.Else == nil {
		t.Fatalf("if = %+v", ifst)
	}
}

func TestWhileTrue(t *testing.T) {
	s := parse(t, "while true\n  produce\nend\n")
	w := s.Body.Stmts[0].(*ast.WhileStmt)
	if !w.Cond.IsLit || !w.Cond.Lit {
		t.Fatalf("cond = %+v", w.Cond)
	}
}

func TestWhileComparison(t *testing.T) {
	s := parse(t, "while ${n} .lt. 10\n  step\nend\n")
	w := s.Body.Stmts[0].(*ast.WhileStmt)
	if w.Cond.Op != ".lt." {
		t.Fatalf("cond = %+v", w.Cond)
	}
}

func TestAssignment(t *testing.T) {
	s := parse(t, "count=0\nurl=http://${server}/x\nempty=\n")
	a0 := s.Body.Stmts[0].(*ast.AssignStmt)
	if a0.Name != "count" {
		t.Fatalf("a0 = %+v", a0)
	}
	if lit, ok := a0.Values[0].Lit(); !ok || lit != "0" {
		t.Fatalf("a0 value = %+v", a0.Values)
	}
	a1 := s.Body.Stmts[1].(*ast.AssignStmt)
	if a1.Name != "url" || len(a1.Values) != 1 || len(a1.Values[0].Segs) != 3 {
		t.Fatalf("a1 = %+v values=%v", a1, a1.Values)
	}
	a2 := s.Body.Stmts[2].(*ast.AssignStmt)
	if a2.Name != "empty" || len(a2.Values) != 0 {
		t.Fatalf("a2 = %+v", a2)
	}
}

func TestEqualsInArgumentIsNotAssignment(t *testing.T) {
	s := parse(t, "submit queue=long job\n")
	cmd, ok := s.Body.Stmts[0].(*ast.CommandStmt)
	if !ok {
		t.Fatalf("stmt = %T", s.Body.Stmts[0])
	}
	if len(cmd.Words) != 3 {
		t.Fatalf("words = %d", len(cmd.Words))
	}
}

func TestFunction(t *testing.T) {
	src := `function fetch
  wget http://${1}/data
end
fetch xxx
`
	s := parse(t, src)
	fn := s.Body.Stmts[0].(*ast.FunctionStmt)
	if fn.Name != "fetch" || len(fn.Body.Stmts) != 1 {
		t.Fatalf("fn = %+v", fn)
	}
	if _, ok := s.Body.Stmts[1].(*ast.CommandStmt); !ok {
		t.Fatalf("call = %T", s.Body.Stmts[1])
	}
}

func TestRedirectionsToVariables(t *testing.T) {
	s := parse(t, "run-simulation ->& tmp\ncat -< tmp\n")
	c0 := s.Body.Stmts[0].(*ast.CommandStmt)
	if c0.Redirs[0].Op != token.DASHGTAMP {
		t.Fatalf("op = %v", c0.Redirs[0].Op)
	}
	c1 := s.Body.Stmts[1].(*ast.CommandStmt)
	if c1.Redirs[0].Op != token.DASHLT {
		t.Fatalf("op = %v", c1.Redirs[0].Op)
	}
}

func TestFileRedirections(t *testing.T) {
	s := parse(t, "run >& tmp\ncat < tmp > out\nlog >> all.log\n")
	ops := []token.Kind{
		s.Body.Stmts[0].(*ast.CommandStmt).Redirs[0].Op,
		s.Body.Stmts[1].(*ast.CommandStmt).Redirs[0].Op,
		s.Body.Stmts[1].(*ast.CommandStmt).Redirs[1].Op,
		s.Body.Stmts[2].(*ast.CommandStmt).Redirs[0].Op,
	}
	want := []token.Kind{token.GTAMP, token.LT, token.GT, token.GTGT}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestKeywordAsArgumentIsAllowed(t *testing.T) {
	s := parse(t, "echo try end in\n")
	cmd := s.Body.Stmts[0].(*ast.CommandStmt)
	if len(cmd.Words) != 4 {
		t.Fatalf("words = %d", len(cmd.Words))
	}
}

func TestQuotedKeywordIsCommand(t *testing.T) {
	s := parse(t, "\"try\" arg\n")
	if _, ok := s.Body.Stmts[0].(*ast.CommandStmt); !ok {
		t.Fatalf("stmt = %T", s.Body.Stmts[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"try for 30 bogons\n x\nend\n",            // unknown unit
		"try for 30\n x\nend\n",                   // missing unit
		"try\n x\nend\n",                          // missing limit
		"try for 1 hour\n x\n",                    // missing end
		"forany in a b\n x\nend\n",                // missing variable
		"forany s a b\n x\nend\n",                 // missing 'in'
		"forany s in\n x\nend\n",                  // empty list
		"if ${x} .weird. 3\n a\nend\n",            // bad operator
		"if ${x} .lt.\n a\nend\n",                 // missing rhs
		"end\n",                                   // stray end
		"catch\n",                                 // stray catch
		"function end\n x\nend\n",                 // keyword name
		"try -1 times\n x\nend\n",                 // nonpositive attempts
		"try for 0 seconds\n x\nend\n",            // nonpositive time
		"try for 1 hour or for 2 hours\nx\nend\n", // duplicate clause
		"cmd >\n",                                 // missing redir target
		"while true\n x\n",                        // unterminated while
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestSemicolonSeparatedStatements(t *testing.T) {
	s := parse(t, "a; b; c\n")
	if len(s.Body.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(s.Body.Stmts))
	}
}

func TestBlankLinesAndComments(t *testing.T) {
	src := `
# header comment

echo one

# middle
echo two
`
	s := parse(t, src)
	if len(s.Body.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(s.Body.Stmts))
	}
}

func TestFractionalDuration(t *testing.T) {
	s := parse(t, "try for 0.5 seconds\n x\nend\n")
	try := s.Body.Stmts[0].(*ast.TryStmt)
	if try.Limit.Time != 500*time.Millisecond {
		t.Fatalf("limit = %v", try.Limit.Time)
	}
}

func TestDeeplyNestedBlocks(t *testing.T) {
	var b strings.Builder
	depth := 30
	for i := 0; i < depth; i++ {
		b.WriteString("try 1 times\n")
	}
	b.WriteString("work\n")
	for i := 0; i < depth; i++ {
		b.WriteString("end\n")
	}
	s := parse(t, b.String())
	cur := s.Body
	for i := 0; i < depth; i++ {
		try := cur.Stmts[0].(*ast.TryStmt)
		cur = try.Body
	}
	if _, ok := cur.Stmts[0].(*ast.CommandStmt); !ok {
		t.Fatal("innermost statement missing")
	}
}

// Property: the parser is total — it returns a tree or an error, never
// panics, on arbitrary near-printable input.
func TestQuickParserTotal(t *testing.T) {
	words := []string{"try", "end", "forany", "in", "if", "else", "echo",
		"${x}", "5", "times", "for", "minutes", ">", "->", "\n", ";", "\"q\"", "a=b"}
	f := func(idxs []uint8) bool {
		var b strings.Builder
		for _, ix := range idxs {
			b.WriteString(words[int(ix)%len(words)])
			b.WriteByte(' ')
		}
		_, err := Parse(b.String())
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExistsCondParse(t *testing.T) {
	s := parse(t, "if .exists. ${dir}/flag\n  ok\nend\nwhile .exists. lock\n  sleep 1\nend\n")
	ifst := s.Body.Stmts[0].(*ast.IfStmt)
	if ifst.Cond.Op != ".exists." || ifst.Cond.Left != nil || ifst.Cond.Right == nil {
		t.Fatalf("cond = %+v", ifst.Cond)
	}
	w := s.Body.Stmts[1].(*ast.WhileStmt)
	if w.Cond.Op != ".exists." {
		t.Fatalf("while cond = %+v", w.Cond)
	}
}

func TestTryEveryClause(t *testing.T) {
	s := parse(t, "try for 1 hour every 5 minutes\n  x\nend\n")
	try := s.Body.Stmts[0].(*ast.TryStmt)
	if try.Limit.Time != time.Hour || try.Limit.Every != 5*time.Minute {
		t.Fatalf("limit = %+v", try.Limit)
	}
	s = parse(t, "try 10 times every 30 seconds\n  x\nend\n")
	try = s.Body.Stmts[0].(*ast.TryStmt)
	if try.Limit.Attempts != 10 || try.Limit.Every != 30*time.Second {
		t.Fatalf("limit = %+v", try.Limit)
	}
	if _, err := Parse("try for 1 hour every 0 seconds\n x\nend\n"); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := Parse("try for 1 hour every\n x\nend\n"); err == nil {
		t.Error("missing interval accepted")
	}
}
