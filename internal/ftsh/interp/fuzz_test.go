package interp_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ftsh/interp"
	"repro/internal/ftsh/parser"
	"repro/internal/sim"
)

// FuzzInterp executes arbitrary parseable scripts end to end — lexer,
// parser, interpreter, simulator — inside the conformance corpus's
// deterministic world. The property is crash-freedom: any input must
// run to a clean success or failure in bounded virtual time, never
// panic, overflow the stack, or wedge the engine. Parse failures are
// skipped (FuzzParse owns input robustness), as are scripts containing
// `while`, whose loops can be legitimately infinite (quick_test.go
// excludes them for the same reason).
func FuzzInterp(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.ftsh"))
	if err != nil || len(files) == 0 {
		f.Fatalf("no conformance corpus to seed from: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			t.Skip("oversized input")
		}
		// Sound over-approximation: the while keyword must appear
		// literally in any script that parses to a WhileStmt.
		if strings.Contains(src, "while") {
			t.Skip("while loops may be legitimately infinite")
		}
		script, err := parser.Parse(src)
		if err != nil {
			t.Skip("parse failure is FuzzParse's territory")
		}
		w := corpusWorld(1)
		// Bound runaway virtual-time loops (e.g. a try that retries a
		// zero-cost failure under an enormous budget): the engine stops
		// with a "likely livelock" error instead of spinning.
		w.eng.MaxEvents = 2_000_000
		w.eng.Spawn("script", func(p *sim.Proc) {
			cfg := interp.Config{
				Runner:  w.runner,
				Runtime: p,
				Stdout:  &w.out,
				Stderr:  &w.out,
				FS:      w.fs,
			}
			in := interp.New(cfg)
			ctx, cancel := p.WithTimeout(w.eng.Context(), 24*time.Hour)
			defer cancel()
			_ = in.Run(ctx, script) // success and failure are both fine
		})
		if err := w.eng.Run(); err != nil {
			t.Skip("hit the event bound: unbounded but legal script")
		}
	})
}
