package interp_test

import (
	"context"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/ftsh/ast"
	"repro/internal/ftsh/interp"
	"repro/internal/ftsh/parser"
	"repro/internal/proc"
	"repro/internal/sim"
)

// genScript emits a random, always-terminating ftsh program: nested
// try/forany/forall/for/if over the commands ok, fail, and flaky.
// While loops are excluded (they could be infinite); try budgets are
// attempt-bounded so exhaustion is guaranteed to terminate.
func genScript(rng *rand.Rand, depth int) string {
	var b strings.Builder
	genBlock(rng, &b, depth, 1+rng.Intn(3))
	return b.String()
}

func genBlock(rng *rand.Rand, b *strings.Builder, depth, stmts int) {
	for i := 0; i < stmts; i++ {
		genStmt(rng, b, depth)
	}
}

func genStmt(rng *rand.Rand, b *strings.Builder, depth int) {
	if depth <= 0 {
		genLeaf(rng, b)
		return
	}
	switch rng.Intn(8) {
	case 0:
		b.WriteString("try ")
		if rng.Intn(2) == 0 {
			b.WriteString("2 times\n")
		} else {
			b.WriteString("for 1 hour or 3 times\n")
		}
		genBlock(rng, b, depth-1, 1+rng.Intn(2))
		if rng.Intn(2) == 0 {
			b.WriteString("catch\n")
			genBlock(rng, b, depth-1, 1)
		}
		b.WriteString("end\n")
	case 1:
		b.WriteString("forany v in a b c\n")
		genBlock(rng, b, depth-1, 1+rng.Intn(2))
		b.WriteString("end\n")
	case 2:
		b.WriteString("forall v in x y\n")
		genBlock(rng, b, depth-1, 1)
		b.WriteString("end\n")
	case 3:
		b.WriteString("for v in 1 2 3\n")
		genBlock(rng, b, depth-1, 1)
		b.WriteString("end\n")
	case 4:
		b.WriteString("if ${v} .eql. a\n")
		genBlock(rng, b, depth-1, 1)
		if rng.Intn(2) == 0 {
			b.WriteString("else\n")
			genBlock(rng, b, depth-1, 1)
		}
		b.WriteString("end\n")
	case 5:
		b.WriteString("n=")
		b.WriteString([]string{"1", "2", "hello"}[rng.Intn(3)])
		b.WriteByte('\n')
	default:
		genLeaf(rng, b)
	}
}

func genLeaf(rng *rand.Rand, b *strings.Builder) {
	switch rng.Intn(6) {
	case 0:
		b.WriteString("ok\n")
	case 1:
		b.WriteString("flaky ${v}\n")
	case 2:
		b.WriteString("echo hi ${n} -> out\n")
	case 3:
		b.WriteString("sleep 0.5\n")
	case 4:
		b.WriteString("expr 1 + 2 -> n\n")
	default:
		b.WriteString("ok arg1 ${v}\n")
	}
}

// TestQuickRandomProgramsTerminate runs random programs end to end in
// virtual time: they must parse (by construction), print-round-trip,
// and execute to a clean success or failure without panicking, leaking
// processes, or stalling the engine.
func TestQuickRandomProgramsTerminate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genScript(rng, 3)

		script, err := parser.Parse(src)
		if err != nil {
			t.Logf("generated script did not parse:\n%s\nerr: %v", src, err)
			return false
		}
		// Printer round trip.
		printed := ast.String(script)
		if _, err := parser.Parse(printed); err != nil {
			t.Logf("printed form did not re-parse:\n%s\nerr: %v", printed, err)
			return false
		}

		e := sim.New(seed)
		runner := proc.NewMapRunner()
		runner.Register("ok", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
			return nil
		})
		flakyN := 0
		runner.Register("flaky", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
			flakyN++
			if flakyN%3 == 0 {
				return core.ErrFailure
			}
			return rt.Sleep(ctx, 100*time.Millisecond)
		})
		done := false
		e.Spawn("script", func(p *sim.Proc) {
			in := interp.New(interp.Config{Runner: runner, Runtime: p, Stdout: io.Discard})
			ctx, cancel := p.WithTimeout(e.Context(), 24*time.Hour)
			defer cancel()
			_ = in.Run(ctx, script) // success or failure both fine
			done = true
		})
		if err := e.Run(); err != nil {
			t.Logf("engine: %v\nscript:\n%s", err, src)
			return false
		}
		if !done {
			t.Logf("script did not finish:\n%s", src)
			return false
		}
		if e.Live() != 0 {
			t.Logf("leaked %d processes:\n%s", e.Live(), src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
