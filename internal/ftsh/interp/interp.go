// Package interp executes ftsh syntax trees.
//
// The interpreter realizes the paper's semantics: a statement either
// succeeds or fails (untyped), groups stop at the first failure, try
// repeats its body with randomized exponential backoff inside a time
// and/or attempt budget, forany seeks one succeeding alternative, and
// forall runs alternatives in parallel, aborting the rest when one
// fails. All timing is delegated to a core.Runtime, so scripts run
// identically against the wall clock and the discrete-event simulator.
package interp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ftsh/ast"
	"repro/internal/ftsh/parser"
	"repro/internal/ftsh/token"
	"repro/internal/trace"
)

// Runner executes external commands on behalf of the interpreter.
// internal/proc provides both a real (os/exec) and a simulated
// implementation. Dispatch order is shell-like: user-defined functions
// shadow builtins, which shadow the Runner.
type Runner interface {
	// Run executes the command and returns nil on success (exit code
	// zero). It must honor ctx: when the enclosing try budget expires
	// the runner is expected to terminate the command and everything it
	// spawned, mirroring ftsh's process-session kill.
	Run(ctx context.Context, rt core.Runtime, cmd *Command) error
}

// Command is a fully expanded external command invocation.
type Command struct {
	Name   string
	Args   []string
	Stdin  io.Reader
	Stdout io.Writer
	Stderr io.Writer
}

// FS abstracts file redirection targets so simulations need not touch
// the real filesystem. OSFS adapts the host filesystem.
type FS interface {
	OpenRead(name string) (io.ReadCloser, error)
	OpenWrite(name string, appendTo bool) (io.WriteCloser, error)
}

// Config assembles an interpreter.
type Config struct {
	// Runner executes external commands; required.
	Runner Runner
	// Runtime supplies time, randomness, and parallelism; required.
	Runtime core.Runtime
	// Stdout and Stderr receive unredirected command output. Nil means
	// discard.
	Stdout, Stderr io.Writer
	// FS resolves file redirections. Nil forbids file redirection.
	FS FS
	// Log, if non-nil, receives a trace of command executions, retries,
	// and backoffs ("ftsh keeps a log of varying detail", §4).
	Log io.Writer
	// ShuffleForany randomizes forany order per execution, breaking herd
	// behaviour between identical clients.
	ShuffleForany bool
	// MaxForall bounds how many forall branches run at once; branches
	// beyond the bound queue for admission. Zero means unlimited. (§4:
	// "the creation of processes must be governed by an Ethernet-like
	// algorithm similar to that of try".)
	MaxForall int
	// Backoff overrides try's paper-default backoff parameters. The
	// struct is copied per try.
	Backoff *core.Backoff
	// Observer receives core discipline events from every try.
	Observer core.Observer
	// Trace, when non-nil, records every try's attempt/backoff timeline
	// and wraps try/forany/forall constructs in spans named by script
	// position. Forall branches trace on forked threads of the same
	// client.
	Trace *trace.Client
}

// Interp executes scripts. An Interp carries variable state between
// Run calls, like an interactive shell session.
type Interp struct {
	cfg   Config
	vars  map[string]string
	fns   map[string]*ast.FunctionStmt
	args  []string // positional parameters of the current function frame
	depth int      // current user-function call depth
	stats *Stats
}

// maxCallDepth bounds user-function call nesting so unbounded recursion
// fails the script like any other error instead of overflowing the Go
// stack.
const maxCallDepth = 200

// New returns an interpreter.
func New(cfg Config) *Interp {
	if cfg.Runner == nil {
		panic("interp: Config.Runner is required")
	}
	if cfg.Runtime == nil {
		panic("interp: Config.Runtime is required")
	}
	return &Interp{
		cfg:   cfg,
		vars:  make(map[string]string),
		fns:   make(map[string]*ast.FunctionStmt),
		stats: newStats(),
	}
}

// Stats returns the interpreter's execution record (§4's post-mortem
// analysis): per-command run/failure counts, per-try attempt and
// exhaustion counts with accumulated backoff, and forany winner
// frequencies. It accumulates across Run calls.
func (in *Interp) Stats() *Stats { return in.stats }

// errSuccess unwinds a `success` statement to the enclosing function or
// script boundary.
var errSuccess = errors.New("ftsh: success")

// PosError wraps a runtime failure with its script position.
type PosError struct {
	Pos token.Pos
	Err error
}

// Error implements the error interface.
func (e *PosError) Error() string { return fmt.Sprintf("%s: %v", e.Pos, e.Err) }

// Unwrap exposes the cause.
func (e *PosError) Unwrap() error { return e.Err }

// wrapPos attaches pos to err unless the chain already carries a script
// position: the innermost position names the statement that actually
// failed, and re-wrapping at every enclosing call frame would bury it
// (a 200-deep recursion would prefix 200 call-site positions).
func wrapPos(pos token.Pos, err error) error {
	var pe *PosError
	if errors.As(err, &pe) {
		return err
	}
	return &PosError{Pos: pos, Err: err}
}

// Var returns the value of a shell variable ("" if unset).
func (in *Interp) Var(name string) string { return in.vars[name] }

// SetVar sets a shell variable, e.g. to parameterize a script.
func (in *Interp) SetVar(name, value string) { in.vars[name] = value }

// SetArgs sets the script-level positional parameters ${1}..${9}, $*,
// and $#. Function calls shadow them for the duration of the call.
func (in *Interp) SetArgs(args []string) { in.args = args }

// RunSource parses and runs an ftsh script.
func (in *Interp) RunSource(ctx context.Context, src string) error {
	s, err := parser.Parse(src)
	if err != nil {
		return err
	}
	return in.Run(ctx, s)
}

// Run executes a parsed script. It returns nil if the script succeeded.
func (in *Interp) Run(ctx context.Context, s *ast.Script) error {
	err := in.execBlock(ctx, s.Body)
	if errors.Is(err, errSuccess) {
		return nil
	}
	return err
}

func (in *Interp) logf(format string, args ...any) {
	if in.cfg.Log != nil {
		fmt.Fprintf(in.cfg.Log, "[%s] ", in.cfg.Runtime.Now().Format("15:04:05.000"))
		fmt.Fprintf(in.cfg.Log, format, args...)
		fmt.Fprintln(in.cfg.Log)
	}
}

// execBlock runs a group: sequential, stopping at the first failure.
func (in *Interp) execBlock(ctx context.Context, b *ast.Block) error {
	for _, st := range b.Stmts {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := in.execStmt(ctx, st); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) execStmt(ctx context.Context, st ast.Stmt) error {
	switch st := st.(type) {
	case *ast.CommandStmt:
		return in.execCommand(ctx, st)
	case *ast.AssignStmt:
		parts := make([]string, 0, len(st.Values))
		for _, w := range st.Values {
			val, err := in.expandWord(w)
			if err != nil {
				return &PosError{Pos: st.Pos(), Err: err}
			}
			parts = append(parts, val)
		}
		in.vars[st.Name] = strings.Join(parts, " ")
		return nil
	case *ast.TryStmt:
		return in.execTry(ctx, st)
	case *ast.ForanyStmt:
		return in.execForany(ctx, st)
	case *ast.ForallStmt:
		return in.execForall(ctx, st)
	case *ast.ForStmt:
		return in.execFor(ctx, st)
	case *ast.WhileStmt:
		return in.execWhile(ctx, st)
	case *ast.IfStmt:
		return in.execIf(ctx, st)
	case *ast.FailureStmt:
		return &PosError{Pos: st.Pos(), Err: core.ErrFailure}
	case *ast.SuccessStmt:
		return errSuccess
	case *ast.FunctionStmt:
		in.fns[st.Name] = st
		return nil
	default:
		return fmt.Errorf("interp: unknown statement %T", st)
	}
}

// execTry implements the try construct on top of core.Try.
func (in *Interp) execTry(ctx context.Context, st *ast.TryStmt) error {
	lim := core.Limit{Duration: st.Limit.Time, Attempts: st.Limit.Attempts}
	sawSuccess := false
	ts := in.stats.try(st.Pos().String())
	obs := &tryObserver{rt: in.cfg.Runtime, inner: in.cfg.Observer, ts: ts, stats: in.stats}
	cfg := core.TryConfig{Observer: obs, Trace: in.cfg.Trace, Span: fmt.Sprintf("try@%s", st.Pos())}
	switch {
	case st.Limit.Every > 0:
		// `every N`: a fixed interval replaces the exponential backoff.
		cfg.Backoff = &core.Backoff{
			Base: st.Limit.Every, Cap: st.Limit.Every,
			Factor: 1, RandMin: 1, RandMax: 1,
		}
	case in.cfg.Backoff != nil:
		bo := *in.cfg.Backoff
		cfg.Backoff = &bo
	}
	in.stats.mu.Lock()
	ts.Trys++
	in.stats.mu.Unlock()
	attempt := 0
	err := core.Try(ctx, in.cfg.Runtime, lim, cfg, func(ctx context.Context) error {
		attempt++
		if attempt > 1 {
			in.logf("try %s: attempt %d", st.Pos(), attempt)
		}
		err := in.execBlock(ctx, st.Body)
		if errors.Is(err, errSuccess) {
			sawSuccess = true
			return nil
		}
		if err != nil {
			in.logf("try %s: attempt %d failed: %v", st.Pos(), attempt, err)
		}
		return err
	})
	obs.finish()
	if sawSuccess && err == nil {
		return errSuccess
	}
	var ex *core.ExhaustedError
	if errors.As(err, &ex) {
		in.stats.mu.Lock()
		ts.Exhausted++
		in.stats.mu.Unlock()
		if st.Catch != nil {
			in.stats.mu.Lock()
			ts.CaughtBy++
			in.stats.mu.Unlock()
			in.logf("try %s: exhausted, running catch", st.Pos())
			cerr := in.execBlock(ctx, st.Catch)
			if cerr != nil {
				return cerr
			}
			return nil
		}
	}
	return err
}

// tryObserver feeds a try's events into Stats (attempt counts, backoff
// time) and forwards them to any user observer.
type tryObserver struct {
	rt    core.Runtime
	inner core.Observer
	ts    *TryStats
	stats *Stats

	backoffStart time.Time
	inBackoff    bool
}

// Observe implements core.Observer.
func (o *tryObserver) Observe(ev core.Event, at time.Time, detail error) {
	o.stats.mu.Lock()
	if o.inBackoff {
		o.ts.BackoffTotal += at.Sub(o.backoffStart)
		o.inBackoff = false
	}
	switch ev {
	case core.EvAttempt:
		o.ts.Attempts++
	case core.EvBackoff:
		o.backoffStart = at
		o.inBackoff = true
	}
	o.stats.mu.Unlock()
	if o.inner != nil {
		o.inner.Observe(ev, at, detail)
	}
}

// finish closes out a backoff that was cut short by the budget.
func (o *tryObserver) finish() {
	o.stats.mu.Lock()
	defer o.stats.mu.Unlock()
	if o.inBackoff {
		o.ts.BackoffTotal += o.rt.Now().Sub(o.backoffStart)
		o.inBackoff = false
	}
}

// execForany tries each alternative until one succeeds. The loop
// variable retains the winning value after the construct, as in the
// paper's `echo "got file from ${server}"` example.
func (in *Interp) execForany(ctx context.Context, st *ast.ForanyStmt) error {
	items, err := in.expandList(st.List)
	if err != nil {
		return &PosError{Pos: st.Pos(), Err: err}
	}
	if len(items) == 0 {
		return &PosError{Pos: st.Pos(), Err: errors.New("forany: empty alternative list")}
	}
	sawSuccess := false
	tr := in.cfg.Trace
	span := tr.SpanBegin(fmt.Sprintf("forany@%s", st.Pos()))
	defer tr.SpanEnd(span)
	winner, err := core.Forany(ctx, in.cfg.Runtime, items, in.cfg.ShuffleForany, func(ctx context.Context, item string) error {
		in.vars[st.Var] = item
		err := in.execBlock(ctx, st.Body)
		if errors.Is(err, errSuccess) {
			sawSuccess = true
			return nil
		}
		return err
	})
	if err != nil {
		return &PosError{Pos: st.Pos(), Err: err}
	}
	in.stats.recordForanyWin(st.Pos().String(), winner)
	if sawSuccess {
		return errSuccess
	}
	return nil
}

// execForall runs alternatives in parallel; each branch gets a private
// copy of the variable state, like a subshell, so branches cannot race.
func (in *Interp) execForall(ctx context.Context, st *ast.ForallStmt) error {
	items, err := in.expandList(st.List)
	if err != nil {
		return &PosError{Pos: st.Pos(), Err: err}
	}
	tr := in.cfg.Trace
	span := tr.SpanBegin(fmt.Sprintf("forall@%s", st.Pos()))
	defer tr.SpanEnd(span)
	err = core.ForallN(ctx, in.cfg.Runtime, in.cfg.MaxForall, items, func(ctx context.Context, rt core.Runtime, item string) error {
		branch := in.cloneForBranch(rt, tr.Fork(fmt.Sprintf("forall@%s %s", st.Pos(), item)))
		branch.vars[st.Var] = item
		err := branch.execBlock(ctx, st.Body)
		if errors.Is(err, errSuccess) {
			return nil // success unwinds only to the branch boundary
		}
		return err
	})
	if err != nil {
		return &PosError{Pos: st.Pos(), Err: err}
	}
	return nil
}

// cloneForBranch copies variable state for a forall branch running under
// runtime rt and tracing to tc. Functions are shared (they are immutable
// once defined).
func (in *Interp) cloneForBranch(rt core.Runtime, tc *trace.Client) *Interp {
	cfg := in.cfg
	cfg.Runtime = rt
	cfg.Trace = tc
	vars := make(map[string]string, len(in.vars))
	for k, v := range in.vars {
		vars[k] = v
	}
	return &Interp{cfg: cfg, vars: vars, fns: in.fns, args: in.args, stats: in.stats}
}

// execFor runs the body once per item, sequentially, failing fast.
func (in *Interp) execFor(ctx context.Context, st *ast.ForStmt) error {
	items, err := in.expandList(st.List)
	if err != nil {
		return &PosError{Pos: st.Pos(), Err: err}
	}
	for _, item := range items {
		if err := ctx.Err(); err != nil {
			return err
		}
		in.vars[st.Var] = item
		if err := in.execBlock(ctx, st.Body); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) execWhile(ctx context.Context, st *ast.WhileStmt) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ok, err := in.evalCond(st.Cond)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := in.execBlock(ctx, st.Body); err != nil {
			return err
		}
	}
}

func (in *Interp) execIf(ctx context.Context, st *ast.IfStmt) error {
	ok, err := in.evalCond(st.Cond)
	if err != nil {
		return err
	}
	if ok {
		return in.execBlock(ctx, st.Then)
	}
	for _, e := range st.Elifs {
		ok, err := in.evalCond(e.Cond)
		if err != nil {
			return err
		}
		if ok {
			return in.execBlock(ctx, e.Body)
		}
	}
	if st.Else != nil {
		return in.execBlock(ctx, st.Else)
	}
	return nil
}

// evalCond evaluates a condition to a boolean.
func (in *Interp) evalCond(c *ast.Cond) (bool, error) {
	if c.IsLit {
		return c.Lit, nil
	}
	if c.Op == ".exists." {
		name, err := in.expandWord(c.Right)
		if err != nil {
			return false, &PosError{Pos: c.Pos(), Err: err}
		}
		if in.cfg.FS == nil {
			return false, &PosError{Pos: c.Pos(), Err: errors.New(".exists. requires a filesystem")}
		}
		r, err := in.cfg.FS.OpenRead(name)
		if err != nil {
			return false, nil
		}
		r.Close()
		return true, nil
	}
	l, err := in.expandWord(c.Left)
	if err != nil {
		return false, &PosError{Pos: c.Pos(), Err: err}
	}
	r, err := in.expandWord(c.Right)
	if err != nil {
		return false, &PosError{Pos: c.Pos(), Err: err}
	}
	switch c.Op {
	case ".eql.":
		return l == r, nil
	case ".neql.":
		return l != r, nil
	}
	lf, errL := strconv.ParseFloat(l, 64)
	rf, errR := strconv.ParseFloat(r, 64)
	if errL != nil || errR != nil {
		return false, &PosError{Pos: c.Pos(), Err: fmt.Errorf("numeric comparison %s on non-numeric operands %q, %q", c.Op, l, r)}
	}
	switch c.Op {
	case ".lt.":
		return lf < rf, nil
	case ".gt.":
		return lf > rf, nil
	case ".le.":
		return lf <= rf, nil
	case ".ge.":
		return lf >= rf, nil
	case ".eq.":
		return lf == rf, nil
	case ".ne.":
		return lf != rf, nil
	default:
		return false, &PosError{Pos: c.Pos(), Err: fmt.Errorf("unknown operator %q", c.Op)}
	}
}

// callFunction invokes a user-defined function with positional args.
func (in *Interp) callFunction(ctx context.Context, fn *ast.FunctionStmt, args []string) error {
	if in.depth >= maxCallDepth {
		return &PosError{Pos: fn.Pos(), Err: fmt.Errorf("call depth exceeds %d: unbounded recursion in function %q", maxCallDepth, fn.Name)}
	}
	in.depth++
	saved := in.args
	in.args = args
	err := in.execBlock(ctx, fn.Body)
	in.args = saved
	in.depth--
	if errors.Is(err, errSuccess) {
		return nil
	}
	return err
}

// durationArg parses builtin sleep's argument: a float number of seconds
// or a Go-style duration like 500ms.
func durationArg(s string) (time.Duration, error) {
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		return time.Duration(secs * float64(time.Second)), nil
	}
	return time.ParseDuration(s)
}
