package interp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/ftsh/ast"
	"repro/internal/ftsh/token"
)

// execCommand expands, resolves redirections, and dispatches a command
// to a function, builtin, or the Runner.
func (in *Interp) execCommand(ctx context.Context, st *ast.CommandStmt) error {
	argv, err := in.expandList(st.Words)
	if err != nil {
		return &PosError{Pos: st.Pos(), Err: err}
	}
	if len(argv) == 0 {
		return &PosError{Pos: st.Pos(), Err: errors.New("command expanded to nothing")}
	}

	io_, finish, err := in.setupRedirs(st.Redirs)
	if err != nil {
		_ = finish() // release any redirection targets opened before the error
		return &PosError{Pos: st.Pos(), Err: err}
	}

	runErr := in.dispatch(ctx, argv, io_)
	// Redirection targets (variables, files) are finalized regardless of
	// the command's outcome, matching shell behaviour.
	if ferr := finish(); ferr != nil && runErr == nil {
		runErr = ferr
	}
	if runErr != nil && !errors.Is(runErr, errSuccess) {
		in.logf("command %s failed: %v", argv[0], runErr)
		return wrapPos(st.Pos(), runErr)
	}
	return runErr
}

// cmdIO is the resolved I/O plumbing for one command.
type cmdIO struct {
	stdin          io.Reader
	stdout, stderr io.Writer
}

// setupRedirs resolves redirections into readers/writers plus a finish
// function that flushes variable captures and closes files.
func (in *Interp) setupRedirs(redirs []*ast.Redir) (*cmdIO, func() error, error) {
	io_ := &cmdIO{
		stdin:  strings.NewReader(""),
		stdout: in.cfg.Stdout,
		stderr: in.cfg.Stderr,
	}
	if io_.stdout == nil {
		io_.stdout = io.Discard
	}
	if io_.stderr == nil {
		io_.stderr = io.Discard
	}
	var finishers []func() error
	finish := func() error {
		var first error
		for _, f := range finishers {
			if err := f(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	for _, r := range redirs {
		target, err := in.expandWord(r.Target)
		if err != nil {
			return nil, finish, err
		}
		switch r.Op {
		case token.GT, token.GTGT, token.GTAMP:
			if in.cfg.FS == nil {
				return nil, finish, fmt.Errorf("file redirection %s unavailable (no filesystem)", r.Op)
			}
			w, err := in.cfg.FS.OpenWrite(target, r.Op == token.GTGT)
			if err != nil {
				return nil, finish, err
			}
			finishers = append(finishers, w.Close)
			io_.stdout = w
			if r.Op == token.GTAMP {
				io_.stderr = w
			}
		case token.LT:
			if in.cfg.FS == nil {
				return nil, finish, fmt.Errorf("file redirection < unavailable (no filesystem)")
			}
			rd, err := in.cfg.FS.OpenRead(target)
			if err != nil {
				return nil, finish, err
			}
			finishers = append(finishers, rd.Close)
			io_.stdin = rd
		case token.DASHGT, token.DASHGTGT, token.DASHGTAMP:
			name := target
			var buf bytes.Buffer
			if r.Op == token.DASHGTGT && in.vars[name] != "" {
				// Re-insert the newline stripped by the previous capture
				// so appended records stay line-separated.
				buf.WriteString(in.vars[name])
				buf.WriteByte('\n')
			}
			io_.stdout = &buf
			if r.Op == token.DASHGTAMP {
				io_.stderr = &buf
			}
			finishers = append(finishers, func() error {
				// ftsh strips the trailing newline when capturing into a
				// variable, so `cut ... -> n` compares cleanly.
				in.vars[name] = strings.TrimRight(buf.String(), "\n")
				return nil
			})
		case token.DASHLT:
			io_.stdin = strings.NewReader(in.vars[target])
		default:
			return nil, finish, fmt.Errorf("unsupported redirection %v", r.Op)
		}
	}
	return io_, finish, nil
}

// dispatch routes argv to a shell function, a builtin, or the Runner.
func (in *Interp) dispatch(ctx context.Context, argv []string, io_ *cmdIO) error {
	name := argv[0]
	if fn, ok := in.fns[name]; ok {
		return in.callFunction(ctx, fn, argv[1:])
	}
	if bi, ok := builtins[name]; ok {
		return bi(ctx, in, argv[1:], io_)
	}
	in.logf("exec %s", strings.Join(argv, " "))
	err := in.cfg.Runner.Run(ctx, in.cfg.Runtime, &Command{
		Name:   name,
		Args:   argv[1:],
		Stdin:  io_.stdin,
		Stdout: io_.stdout,
		Stderr: io_.stderr,
	})
	in.stats.recordCommand(name, err != nil)
	return err
}

// builtin is an internal command. Builtins exist for operations that
// must interact with the interpreter state or the virtual clock.
type builtin func(ctx context.Context, in *Interp, args []string, io_ *cmdIO) error

var builtins map[string]builtin

func init() {
	// Initialized in init to avoid an initialization cycle through the
	// help builtin referencing the table itself.
	builtins = map[string]builtin{
		"echo":  biEcho,
		"true":  biTrue,
		"false": biFalse,
		"sleep": biSleep,
		"expr":  biExpr,
		"cat":   biCat,
		"rm":    biRm,
	}
}

// biRm removes files through the FS abstraction. With -f, missing files
// are not an error — the idempotence §4 demands of repeated actions
// ("the rm command used above is given the -f option to instruct it to
// return success if the named file does not exist").
func biRm(ctx context.Context, in *Interp, args []string, io_ *cmdIO) error {
	force := false
	if len(args) > 0 && args[0] == "-f" {
		force = true
		args = args[1:]
	}
	if len(args) == 0 {
		return errors.New("rm: missing operand")
	}
	type remover interface{ Remove(name string) }
	type statter interface {
		ReadFile(name string) ([]byte, bool)
	}
	switch fs := in.cfg.FS.(type) {
	case *MemFS:
		for _, name := range args {
			if _, ok := fs.ReadFile(name); !ok && !force {
				return fmt.Errorf("rm: %s: no such file", name)
			}
			fs.Remove(name)
		}
		return nil
	case OSFS:
		for _, name := range args {
			if err := osRemove(name); err != nil && !force {
				return fmt.Errorf("rm: %w", err)
			}
		}
		return nil
	case nil:
		return errors.New("rm: no filesystem available")
	default:
		// Custom FS implementations may support removal.
		rm, ok := in.cfg.FS.(remover)
		if !ok {
			return errors.New("rm: filesystem does not support removal")
		}
		if st, ok := in.cfg.FS.(statter); ok && !force {
			for _, name := range args {
				if _, exists := st.ReadFile(name); !exists {
					return fmt.Errorf("rm: %s: no such file", name)
				}
			}
		}
		for _, name := range args {
			rm.Remove(name)
		}
		return nil
	}
}

// biEcho writes its arguments to stdout separated by spaces.
func biEcho(ctx context.Context, in *Interp, args []string, io_ *cmdIO) error {
	_, err := fmt.Fprintln(io_.stdout, strings.Join(args, " "))
	return err
}

// biTrue succeeds.
func biTrue(ctx context.Context, in *Interp, args []string, io_ *cmdIO) error { return nil }

// biFalse fails.
func biFalse(ctx context.Context, in *Interp, args []string, io_ *cmdIO) error {
	return core.ErrFailure
}

// biSleep pauses in runtime time: `sleep 5`, `sleep 0.25`, `sleep 500ms`.
// Under the simulator this advances the virtual clock.
func biSleep(ctx context.Context, in *Interp, args []string, io_ *cmdIO) error {
	if len(args) != 1 {
		return errors.New("sleep: want exactly one duration argument")
	}
	d, err := durationArg(args[0])
	if err != nil {
		return fmt.Errorf("sleep: %w", err)
	}
	return in.cfg.Runtime.Sleep(ctx, d)
}

// biExpr evaluates a left-to-right arithmetic expression and prints the
// result: `expr ${n} + 1 -> n`. Supported operators: + - * / %.
func biExpr(ctx context.Context, in *Interp, args []string, io_ *cmdIO) error {
	if len(args) == 0 || len(args)%2 == 0 {
		return errors.New("expr: want `value (op value)...`")
	}
	acc, err := strconv.ParseFloat(args[0], 64)
	if err != nil {
		return fmt.Errorf("expr: bad operand %q", args[0])
	}
	for i := 1; i < len(args); i += 2 {
		rhs, err := strconv.ParseFloat(args[i+1], 64)
		if err != nil {
			return fmt.Errorf("expr: bad operand %q", args[i+1])
		}
		switch args[i] {
		case "+":
			acc += rhs
		case "-":
			acc -= rhs
		case "*":
			acc *= rhs
		case "/":
			if rhs == 0 {
				return errors.New("expr: division by zero")
			}
			acc /= rhs
		case "%":
			if int64(rhs) == 0 {
				return errors.New("expr: modulo by zero")
			}
			acc = float64(int64(acc) % int64(rhs))
		default:
			return fmt.Errorf("expr: unknown operator %q", args[i])
		}
	}
	if acc == float64(int64(acc)) {
		fmt.Fprintln(io_.stdout, strconv.FormatInt(int64(acc), 10))
	} else {
		fmt.Fprintln(io_.stdout, strconv.FormatFloat(acc, 'g', -1, 64))
	}
	return nil
}

// biCat copies stdin to stdout, enabling the paper's
//
//	try 5 times
//	  run-simulation ->& tmp
//	end
//	cat -< tmp
//
// I/O-transaction idiom without an external cat.
func biCat(ctx context.Context, in *Interp, args []string, io_ *cmdIO) error {
	if len(args) > 0 {
		// `cat file...` still goes through the FS abstraction.
		if in.cfg.FS == nil {
			return errors.New("cat: no filesystem available")
		}
		for _, name := range args {
			r, err := in.cfg.FS.OpenRead(name)
			if err != nil {
				return err
			}
			_, cerr := io.Copy(io_.stdout, r)
			r.Close()
			if cerr != nil {
				return cerr
			}
		}
		return nil
	}
	_, err := io.Copy(io_.stdout, io_.stdin)
	return err
}
