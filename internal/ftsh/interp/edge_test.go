package interp_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ftsh/interp"
	"repro/internal/sim"
)

func TestBuiltinsTrueFalse(t *testing.T) {
	w := newWorld(1)
	if err := w.run(t, "true\n", nil); err != nil {
		t.Fatalf("true failed: %v", err)
	}
	if err := w.run(t, "false\n", nil); err == nil {
		t.Fatal("false succeeded")
	}
}

func TestBuiltinSleepErrors(t *testing.T) {
	w := newWorld(1)
	if err := w.run(t, "sleep\n", nil); err == nil {
		t.Fatal("sleep with no args succeeded")
	}
	if err := w.run(t, "sleep abc\n", nil); err == nil {
		t.Fatal("sleep with bad duration succeeded")
	}
	if err := w.run(t, "sleep 250ms\n", nil); err != nil {
		t.Fatalf("go-style duration rejected: %v", err)
	}
}

func TestBuiltinExprFull(t *testing.T) {
	w := newWorld(1)
	src := `expr 10 - 3 -> a
expr ${a} * 4 -> b
expr ${b} / 2 -> c
expr ${c} % 4 -> d
expr 1.5 + 1 -> e
echo ${a} ${b} ${c} ${d} ${e}
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(w.out.String(), "7 28 14 2 2.5") {
		t.Fatalf("out = %q", w.out.String())
	}
}

func TestBuiltinExprErrors(t *testing.T) {
	w := newWorld(1)
	for _, src := range []string{
		"expr\n",          // no args
		"expr 1 +\n",      // missing operand
		"expr 1 + pear\n", // bad operand
		"expr pear + 1\n", // bad first operand
		"expr 1 ? 2\n",    // unknown operator
		"expr 1 / 0\n",    // division by zero
		"expr 1 % 0\n",    // modulo by zero
	} {
		if err := w.run(t, src, nil); err == nil {
			t.Errorf("%q succeeded", src)
		}
	}
}

func TestCatMissingFile(t *testing.T) {
	w := newWorld(1)
	if err := w.run(t, "cat missing.txt\n", nil); err == nil {
		t.Fatal("cat of missing file succeeded")
	}
}

func TestStdinRedirectionMissingFile(t *testing.T) {
	w := newWorld(1)
	if err := w.run(t, "cat < nope.txt\n", nil); err == nil {
		t.Fatal("redirect from missing file succeeded")
	}
}

func TestFileRedirectionWithoutFS(t *testing.T) {
	w := newWorld(1)
	err := w.run(t, "echo x > f\n", func(cfg *interp.Config) { cfg.FS = nil })
	if err == nil || !strings.Contains(err.Error(), "redirection") {
		t.Fatalf("err = %v", err)
	}
	err = w.run(t, "cat < f\n", func(cfg *interp.Config) { cfg.FS = nil })
	if err == nil {
		t.Fatal("read redirection without FS succeeded")
	}
}

func TestEmptyCommandAfterExpansion(t *testing.T) {
	w := newWorld(1)
	err := w.run(t, "${nothing}\n", nil)
	if err == nil || !strings.Contains(err.Error(), "expanded to nothing") {
		t.Fatalf("err = %v", err)
	}
}

func TestPositionalParamEdgeCases(t *testing.T) {
	w := newWorld(1)
	var out string
	w.eng.Spawn("script", func(p *sim.Proc) {
		in := interp.New(interp.Config{Runner: w.runner, Runtime: p, Stdout: &w.out})
		in.SetArgs([]string{"one", "two"})
		if err := in.RunSource(w.eng.Context(), "echo [${1}] [${3}] [$*] [$#]\n"); err != nil {
			t.Errorf("err = %v", err)
		}
		out = w.out.String()
	})
	if err := w.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[one] [] [one two] [2]") {
		t.Fatalf("out = %q", out)
	}
}

func TestInvalidPositionalZero(t *testing.T) {
	w := newWorld(1)
	if err := w.run(t, "echo ${0}\n", nil); err == nil {
		t.Fatal("$0 accepted")
	}
}

func TestForEmptyListViaVariable(t *testing.T) {
	w := newWorld(1)
	// ${empty} expands to no fields: for runs zero iterations and
	// succeeds; forany with an empty list fails (no alternative won).
	if err := w.run(t, "for x in ${empty}\n  false\nend\n", nil); err != nil {
		t.Fatalf("empty for failed: %v", err)
	}
	if err := w.run(t, "forany x in ${empty}\n  true\nend\n", nil); err == nil {
		t.Fatal("empty forany succeeded")
	}
}

func TestForallEmptyListSucceeds(t *testing.T) {
	w := newWorld(1)
	if err := w.run(t, "forall x in ${empty}\n  false\nend\n", nil); err != nil {
		t.Fatalf("empty forall failed: %v", err)
	}
}

func TestWhileConditionErrorFailsLoop(t *testing.T) {
	w := newWorld(1)
	if err := w.run(t, "while pear .lt. 3\n  true\nend\n", nil); err == nil {
		t.Fatal("bad while condition succeeded")
	}
}

func TestWhileBodyFailureFailsLoop(t *testing.T) {
	w := newWorld(1)
	if err := w.run(t, "n=0\nwhile ${n} .lt. 3\n  false\nend\n", nil); err == nil {
		t.Fatal("failing body did not fail the while")
	}
}

func TestElifConditionError(t *testing.T) {
	w := newWorld(1)
	if err := w.run(t, "if 1 .eq. 2\n  a\nelif pear .lt. 1\n  b\nend\n", nil); err == nil {
		t.Fatal("bad elif condition succeeded")
	}
}

func TestWhileHonorsContextCancel(t *testing.T) {
	w := newWorld(1)
	w.eng.Schedule(time.Minute, func() {}) // keep engine alive
	var err error
	w.eng.Spawn("script", func(p *sim.Proc) {
		ctx, cancel := p.WithTimeout(w.eng.Context(), 10*time.Second)
		defer cancel()
		in := interp.New(interp.Config{Runner: w.runner, Runtime: p, Stdout: &w.out})
		err = in.RunSource(ctx, "while true\n  sleep 1\nend\n")
	})
	if runErr := w.eng.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if err == nil {
		t.Fatal("infinite while survived cancellation")
	}
}

func TestRunSourceParseError(t *testing.T) {
	w := newWorld(1)
	if err := w.run(t, "try for 3 bogons\nx\nend\n", nil); err == nil {
		t.Fatal("parse error not reported")
	}
}

func TestNewPanicsWithoutRunnerOrRuntime(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("no runner", func() {
		interp.New(interp.Config{Runtime: core.NewReal(1)})
	})
	assertPanics("no runtime", func() {
		w := newWorld(1)
		interp.New(interp.Config{Runner: w.runner})
	})
}

func TestMemFSOperations(t *testing.T) {
	fs := interp.NewMemFS()
	fs.WriteFile("a", []byte("1"))
	fs.WriteFile("b", []byte("2"))
	if names := fs.Names(); len(names) != 2 || names[0] != "a" {
		t.Fatalf("Names = %v", names)
	}
	fs.Remove("a")
	fs.Remove("a") // rm -f semantics
	if _, ok := fs.ReadFile("a"); ok {
		t.Fatal("removed file still present")
	}
	// Write-after-close is rejected.
	wtr, err := fs.OpenWrite("c", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := wtr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wtr.Close(); err != nil { // double close ok
		t.Fatal(err)
	}
	if _, err := wtr.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestRedirWithBadTargetExpansion(t *testing.T) {
	w := newWorld(1)
	// ${0} in a redirection target is an expansion error.
	if err := w.run(t, "echo hi > ${0}\n", nil); err == nil {
		t.Fatal("bad redirect target accepted")
	}
}

func TestForanyListExpansionError(t *testing.T) {
	w := newWorld(1)
	if err := w.run(t, "forany x in ${0}\n  true\nend\n", nil); err == nil {
		t.Fatal("bad list expansion accepted")
	}
}

func TestContextCanceledBeforeRun(t *testing.T) {
	w := newWorld(1)
	var err error
	w.eng.Spawn("script", func(p *sim.Proc) {
		ctx, cancel := p.WithCancel(w.eng.Context())
		cancel()
		in := interp.New(interp.Config{Runner: w.runner, Runtime: p})
		err = in.RunSource(ctx, "echo hi\n")
	})
	if runErr := w.eng.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
}

func TestRmBuiltin(t *testing.T) {
	w := newWorld(1)
	w.fs.WriteFile("a.tar.gz", []byte("x"))
	// Plain rm of an existing file succeeds; of a missing file fails;
	// -f is idempotent, as §4's catch example requires.
	if err := w.run(t, "rm a.tar.gz\n", nil); err != nil {
		t.Fatalf("rm existing: %v", err)
	}
	if _, ok := w.fs.ReadFile("a.tar.gz"); ok {
		t.Fatal("file survived rm")
	}
	if err := w.run(t, "rm a.tar.gz\n", nil); err == nil {
		t.Fatal("rm of missing file succeeded")
	}
	if err := w.run(t, "rm -f a.tar.gz\n", nil); err != nil {
		t.Fatalf("rm -f missing: %v", err)
	}
	if err := w.run(t, "rm\n", nil); err == nil {
		t.Fatal("rm with no operand succeeded")
	}
}

func TestPaperCatchExampleVerbatim(t *testing.T) {
	// §4's catch example, as printed in the paper.
	w := newWorld(1)
	gets := 0
	w.runner.Register("wget", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		gets++
		w.fs.WriteFile("file.tar.gz", []byte("partial")) // failed partial download
		return core.ErrFailure
	})
	src := `try 5 times
  wget http://server/file.tar.gz
catch
  rm -f file.tar.gz
  failure
end
`
	if err := w.run(t, src, nil); err == nil {
		t.Fatal("script must fail after catch re-raises")
	}
	if gets != 5 {
		t.Fatalf("gets = %d", gets)
	}
	if _, ok := w.fs.ReadFile("file.tar.gz"); ok {
		t.Fatal("partial download not cleaned up by catch")
	}
}
